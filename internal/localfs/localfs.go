// Package localfs implements s3api.Backend over a directory tree on the
// local filesystem: objects live at <root>/<bucket>/<key>, with key
// slashes mapped to subdirectories. It is the "fast local tier" backend —
// by default it advertises cloudsim.LocalFSProfile (wide, sub-millisecond,
// no dollar cost), which is exactly what makes the planner's per-backend
// pricing interesting: the same join that warrants a Bloom pushdown
// against remote S3 is usually cheapest as a plain baseline load here.
//
// S3 Select requests execute in-process against the file bytes (the
// storage node and the file server are the same machine), so pushdown
// still works — it just costs nothing extra on the wire.
package localfs

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/selectengine"
)

// Backend stores objects under a root directory.
type Backend struct {
	root    string
	caps    selectengine.Capabilities
	profile s3api.Profile
}

// Option configures New.
type Option func(*Backend)

// WithCapabilities sets the advertised S3 Select extension flags.
func WithCapabilities(caps selectengine.Capabilities) Option {
	return func(b *Backend) { b.caps = caps }
}

// WithProfile overrides the advertised performance/pricing profile
// (default cloudsim.LocalFSProfile).
func WithProfile(p s3api.Profile) Option {
	return func(b *Backend) { b.profile = p }
}

// New returns a Backend rooted at dir (created lazily by Put).
func New(dir string, opts ...Option) *Backend {
	b := &Backend{root: dir, profile: cloudsim.LocalFSProfile()}
	for _, o := range opts {
		o(b)
	}
	return b
}

// objectPath validates bucket/key and maps them under the root. Empty or
// escaping names (".." elements, absolute keys) are rejected rather than
// resolved.
func (b *Backend) objectPath(bucket, key string) (string, error) {
	if bucket == "" || bucket == "." || bucket == ".." || strings.ContainsAny(bucket, `/\`) {
		return "", fmt.Errorf("localfs: bad bucket %q", bucket)
	}
	if key == "" || strings.HasPrefix(key, "/") || path.Clean("/"+key) != "/"+key {
		return "", fmt.Errorf("localfs: bad key %q", key)
	}
	return filepath.Join(b.root, bucket, filepath.FromSlash(key)), nil
}

// read loads a whole object, classifying the error.
func (b *Backend) read(op string, bucket, key string) ([]byte, error) {
	p, err := b.objectPath(bucket, key)
	if err != nil {
		return nil, s3api.NewError(op, bucket, key, s3api.KindBadRequest, err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		kind := s3api.KindInternal
		if os.IsNotExist(err) {
			kind = s3api.KindNotFound
		}
		return nil, s3api.NewError(op, bucket, key, kind, err)
	}
	return data, nil
}

func ctxErr(ctx context.Context, op, bucket, key string) error {
	if err := ctx.Err(); err != nil {
		return s3api.NewError(op, bucket, key, s3api.KindCanceled, err)
	}
	return nil
}

// sliceRange cuts [first, last] out of data with the shared Backend range
// semantics: last clamps to the end, a first at/past the end is invalid.
func sliceRange(op, bucket, key string, data []byte, first, last int64) ([]byte, error) {
	if first < 0 || first >= int64(len(data)) || last < first {
		return nil, s3api.NewError(op, bucket, key, s3api.KindInvalidRange,
			fmt.Errorf("localfs: range [%d,%d] for %s/%s (len %d)", first, last, bucket, key, len(data)))
	}
	if last >= int64(len(data)) {
		last = int64(len(data)) - 1
	}
	return data[first : last+1], nil
}

// Get implements s3api.Backend.
func (b *Backend) Get(ctx context.Context, bucket, key string) ([]byte, error) {
	if err := ctxErr(ctx, "get", bucket, key); err != nil {
		return nil, err
	}
	return b.read("get", bucket, key)
}

// GetRange implements s3api.Backend.
func (b *Backend) GetRange(ctx context.Context, bucket, key string, first, last int64) ([]byte, error) {
	if err := ctxErr(ctx, "get_range", bucket, key); err != nil {
		return nil, err
	}
	data, err := b.read("get_range", bucket, key)
	if err != nil {
		return nil, err
	}
	return sliceRange("get_range", bucket, key, data, first, last)
}

// GetRanges implements s3api.Backend.
func (b *Backend) GetRanges(ctx context.Context, bucket, key string, ranges [][2]int64) ([][]byte, error) {
	if err := ctxErr(ctx, "get_ranges", bucket, key); err != nil {
		return nil, err
	}
	data, err := b.read("get_ranges", bucket, key)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, len(ranges))
	for i, r := range ranges {
		frag, err := sliceRange("get_ranges", bucket, key, data, r[0], r[1])
		if err != nil {
			return nil, err
		}
		out[i] = frag
	}
	return out, nil
}

// Select implements s3api.Backend. As on every backend, the request's
// capabilities are clamped to what this backend advertises; asking for a
// switched-off extension fails with s3api.KindUnsupported.
func (b *Backend) Select(ctx context.Context, bucket, key string, req selectengine.Request) (*selectengine.Result, error) {
	if err := ctxErr(ctx, "select", bucket, key); err != nil {
		return nil, err
	}
	data, err := b.read("select", bucket, key)
	if err != nil {
		return nil, err
	}
	req.Capabilities = req.Capabilities.Intersect(b.caps)
	res, err := selectengine.Execute(data, req)
	if err != nil {
		kind := s3api.KindBadRequest
		if errors.Is(err, selectengine.ErrUnsupported) {
			kind = s3api.KindUnsupported
		}
		return nil, s3api.NewError("select", bucket, key, kind, err)
	}
	return res, nil
}

// List implements s3api.Backend. A missing bucket directory lists empty.
func (b *Backend) List(ctx context.Context, bucket, prefix string) ([]string, error) {
	if err := ctxErr(ctx, "list", bucket, prefix); err != nil {
		return nil, err
	}
	dir := filepath.Join(b.root, bucket)
	var keys []string
	err := filepath.WalkDir(dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			if os.IsNotExist(err) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(dir, p)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, s3api.NewError("list", bucket, prefix, s3api.KindInternal, err)
	}
	sort.Strings(keys)
	return keys, nil
}

// Size implements s3api.Backend.
func (b *Backend) Size(ctx context.Context, bucket, key string) (int64, error) {
	if err := ctxErr(ctx, "size", bucket, key); err != nil {
		return 0, err
	}
	p, err := b.objectPath(bucket, key)
	if err != nil {
		return 0, s3api.NewError("size", bucket, key, s3api.KindBadRequest, err)
	}
	fi, err := os.Stat(p)
	if err != nil {
		kind := s3api.KindInternal
		if os.IsNotExist(err) {
			kind = s3api.KindNotFound
		}
		return 0, s3api.NewError("size", bucket, key, kind, err)
	}
	return fi.Size(), nil
}

// Put implements s3api.Putter (loading helper).
func (b *Backend) Put(ctx context.Context, bucket, key string, data []byte) error {
	if err := ctxErr(ctx, "put", bucket, key); err != nil {
		return err
	}
	p, err := b.objectPath(bucket, key)
	if err != nil {
		return s3api.NewError("put", bucket, key, s3api.KindBadRequest, err)
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return s3api.NewError("put", bucket, key, s3api.KindInternal, err)
	}
	if err := os.WriteFile(p, data, 0o644); err != nil {
		return s3api.NewError("put", bucket, key, s3api.KindInternal, err)
	}
	return nil
}

// Capabilities implements s3api.Backend.
func (b *Backend) Capabilities() selectengine.Capabilities { return b.caps }

// Profile implements s3api.Backend.
func (b *Backend) Profile() s3api.Profile { return b.profile }
