package localfs_test

import (
	"context"
	"testing"

	"pushdowndb/internal/localfs"
	"pushdowndb/internal/s3api/conformancetest"
)

func TestLocalFSConformance(t *testing.T) {
	conformancetest.Run(t, func(t *testing.T) conformancetest.Env {
		b := localfs.New(t.TempDir())
		return conformancetest.Env{
			Backend: b,
			Put: func(bucket, key string, data []byte) {
				if err := b.Put(context.Background(), bucket, key, data); err != nil {
					t.Fatalf("seed put %s/%s: %v", bucket, key, err)
				}
			},
		}
	})
}

func TestLocalFSRejectsEscapingKeys(t *testing.T) {
	b := localfs.New(t.TempDir())
	ctx := context.Background()
	for _, key := range []string{"../outside", "a/../../b", "/abs", ""} {
		if err := b.Put(ctx, "bkt", key, []byte("x")); err == nil {
			t.Errorf("Put(%q) should be rejected", key)
		}
		if _, err := b.Get(ctx, "bkt", key); err == nil {
			t.Errorf("Get(%q) should be rejected", key)
		}
	}
	// Buckets cannot escape the root either.
	for _, bucket := range []string{"..", ".", "", "a/b", `a\b`} {
		if err := b.Put(ctx, bucket, "k", []byte("x")); err == nil {
			t.Errorf("Put(bucket %q) should be rejected", bucket)
		}
		if _, err := b.Get(ctx, bucket, "k"); err == nil {
			t.Errorf("Get(bucket %q) should be rejected", bucket)
		}
	}
}
