package colformat

import (
	"testing"

	"pushdowndb/internal/value"
)

// Regression: encoding an empty partition (zero rows) must produce a
// readable object with NumRows 0 and no row groups, for every schema.
func TestEmptyPartition(t *testing.T) {
	for _, compress := range []bool{false, true} {
		r := roundTrip(t, nil, 16, compress)
		if r.NumRows() != 0 {
			t.Fatalf("NumRows = %d", r.NumRows())
		}
		if r.NumRowGroups() != 0 {
			t.Fatalf("groups = %d", r.NumRowGroups())
		}
		if len(r.Schema()) != len(testSchema) {
			t.Fatalf("schema lost: %v", r.Schema())
		}
	}
}

// Regression: a zero-column schema panicked in Append (pending[0]) and
// again in Finish via flushGroup. Rows must still be counted.
func TestZeroColumnSchema(t *testing.T) {
	w := NewWriter(Schema{}, 4, false)
	for i := 0; i < 10; i++ {
		if err := w.Append(nil); err != nil {
			t.Fatal(err)
		}
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 10 {
		t.Fatalf("NumRows = %d", r.NumRows())
	}
	if r.NumRowGroups() != 0 {
		t.Fatalf("groups = %d", r.NumRowGroups())
	}
}

// Regression: columns that are entirely NULL must round-trip — the chunk
// is a null bitmap with no payload and no stats.
func TestAllNullColumns(t *testing.T) {
	rows := make([][]value.Value, 37)
	for i := range rows {
		rows[i] = []value.Value{value.Null(), value.Null(), value.Null(), value.Null()}
	}
	for _, compress := range []bool{false, true} {
		r := roundTrip(t, rows, 8, compress)
		if r.NumRows() != 37 {
			t.Fatalf("NumRows = %d", r.NumRows())
		}
		for ci := range testSchema {
			got := readAll(t, r, ci)
			if len(got) != 37 {
				t.Fatalf("col %d len = %d", ci, len(got))
			}
			for i, v := range got {
				if !v.IsNull() {
					t.Fatalf("col %d row %d = %v, want NULL", ci, i, v)
				}
			}
			for g := 0; g < r.NumRowGroups(); g++ {
				if _, _, ok := r.ChunkStats(g, ci); ok {
					t.Fatalf("col %d group %d: stats over all-NULL chunk", ci, g)
				}
			}
		}
	}
}

// Regression: a group boundary landing exactly on the last row must not
// emit a trailing empty row group.
func TestExactGroupBoundary(t *testing.T) {
	r := roundTrip(t, sampleRows(32), 16, false)
	if r.NumRowGroups() != 2 {
		t.Fatalf("groups = %d", r.NumRowGroups())
	}
	if got := readAll(t, r, 0); len(got) != 32 {
		t.Fatalf("len = %d", len(got))
	}
}
