// Package colformat implements the columnar object format PushdownDB uses
// as its Parquet stand-in (Section IX of the paper). Objects contain row
// groups; each row group stores one chunk per column with a null bitmap,
// optional flate compression (the stdlib substitute for Parquet's Snappy)
// and per-chunk min/max statistics. A JSON footer at the object tail
// (Parquet-style) indexes the chunks, so a reader touches only the bytes of
// the columns a query references — the property that drives the paper's
// Fig. 11 CSV-vs-Parquet comparison.
package colformat

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"pushdowndb/internal/value"
)

// Magic trails every object.
const Magic = "PCOL1"

// ColumnDef declares one column of the schema.
type ColumnDef struct {
	Name string     `json:"name"`
	Kind value.Kind `json:"kind"`
}

// Schema is the ordered column list.
type Schema []ColumnDef

// chunkMeta locates one column chunk within the object.
type chunkMeta struct {
	Offset     int64  `json:"offset"`
	Len        int64  `json:"len"`
	RawLen     int64  `json:"raw_len"`
	Compressed bool   `json:"compressed"`
	Min        string `json:"min,omitempty"`
	Max        string `json:"max,omitempty"`
	HasStats   bool   `json:"has_stats"`
}

type groupMeta struct {
	NumRows int         `json:"num_rows"`
	Chunks  []chunkMeta `json:"chunks"`
}

type footer struct {
	Version   int         `json:"version"`
	NumRows   int64       `json:"num_rows"`
	Columns   Schema      `json:"columns"`
	RowGroups []groupMeta `json:"row_groups"`
}

// Writer builds a columnar object in memory.
type Writer struct {
	schema    Schema
	groupRows int
	compress  bool

	buf     bytes.Buffer
	meta    footer
	pending [][]value.Value // column-major buffer for the open row group
	nRows   int
}

// NewWriter returns a writer with the given schema, rows-per-row-group and
// compression setting. groupRows <= 0 defaults to 64k rows.
func NewWriter(schema Schema, groupRows int, compress bool) *Writer {
	if groupRows <= 0 {
		groupRows = 1 << 16
	}
	w := &Writer{schema: schema, groupRows: groupRows, compress: compress}
	w.meta.Version = 1
	w.meta.Columns = schema
	w.pending = make([][]value.Value, len(schema))
	return w
}

// Append adds one row. Values must match the schema kinds (NULL always
// allowed; INT is accepted into FLOAT columns).
func (w *Writer) Append(row []value.Value) error {
	if len(row) != len(w.schema) {
		return fmt.Errorf("colformat: row has %d values, schema has %d", len(row), len(w.schema))
	}
	for i, v := range row {
		cv, err := coerce(v, w.schema[i].Kind)
		if err != nil {
			return fmt.Errorf("colformat: column %s: %w", w.schema[i].Name, err)
		}
		w.pending[i] = append(w.pending[i], cv)
	}
	w.nRows++
	if len(w.pending) > 0 && len(w.pending[0]) >= w.groupRows {
		return w.flushGroup()
	}
	return nil
}

func coerce(v value.Value, k value.Kind) (value.Value, error) {
	if v.IsNull() || v.Kind() == k {
		return v, nil
	}
	switch k {
	case value.KindFloat:
		return value.CastFloat(v)
	case value.KindInt:
		if v.Kind() == value.KindDate {
			return value.Int(v.Days()), nil
		}
		return value.CastInt(v)
	case value.KindString:
		return value.CastString(v), nil
	case value.KindDate:
		return value.CastDate(v)
	}
	return value.Null(), fmt.Errorf("cannot store %s into %s column", v.Kind(), k)
}

func (w *Writer) flushGroup() error {
	if len(w.pending) == 0 {
		// Zero-column schema: rows are counted (NumRows) but there is
		// nothing to chunk. Without this guard both Append and Finish
		// panicked indexing pending[0].
		return nil
	}
	n := len(w.pending[0])
	if n == 0 {
		return nil
	}
	g := groupMeta{NumRows: n}
	for ci, col := range w.pending {
		raw := encodeChunk(w.schema[ci].Kind, col)
		payload := raw
		compressed := false
		if w.compress {
			var cb bytes.Buffer
			fw, err := flate.NewWriter(&cb, flate.BestSpeed)
			if err != nil {
				return err
			}
			if _, err := fw.Write(raw); err != nil {
				return err
			}
			if err := fw.Close(); err != nil {
				return err
			}
			if cb.Len() < len(raw) {
				payload = cb.Bytes()
				compressed = true
			}
		}
		cm := chunkMeta{
			Offset:     int64(w.buf.Len()),
			Len:        int64(len(payload)),
			RawLen:     int64(len(raw)),
			Compressed: compressed,
		}
		if mn, mx, ok := stats(col); ok {
			cm.Min, cm.Max, cm.HasStats = mn.String(), mx.String(), true
		}
		w.buf.Write(payload)
		g.Chunks = append(g.Chunks, cm)
	}
	w.meta.RowGroups = append(w.meta.RowGroups, g)
	for i := range w.pending {
		w.pending[i] = w.pending[i][:0]
	}
	return nil
}

func stats(col []value.Value) (mn, mx value.Value, ok bool) {
	for _, v := range col {
		if v.IsNull() {
			continue
		}
		if !ok {
			mn, mx, ok = v, v, true
			continue
		}
		if value.Compare(v, mn) < 0 {
			mn = v
		}
		if value.Compare(v, mx) > 0 {
			mx = v
		}
	}
	return mn, mx, ok
}

// Finish flushes the open row group and appends footer + magic, returning
// the complete object payload.
func (w *Writer) Finish() ([]byte, error) {
	if err := w.flushGroup(); err != nil {
		return nil, err
	}
	w.meta.NumRows = int64(w.nRows)
	fj, err := json.Marshal(&w.meta)
	if err != nil {
		return nil, err
	}
	w.buf.Write(fj)
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(fj)))
	w.buf.Write(lenBuf[:])
	w.buf.WriteString(Magic)
	return w.buf.Bytes(), nil
}

// encodeChunk serializes one column: null bitmap then kind-specific values.
func encodeChunk(k value.Kind, col []value.Value) []byte {
	n := len(col)
	bitmap := make([]byte, (n+7)/8)
	var body bytes.Buffer
	for i, v := range col {
		if v.IsNull() {
			bitmap[i/8] |= 1 << uint(i%8)
			continue
		}
		switch k {
		case value.KindInt, value.KindDate:
			var b [8]byte
			var x int64
			if v.Kind() == value.KindDate {
				x = v.Days()
			} else {
				x = v.AsInt()
			}
			binary.LittleEndian.PutUint64(b[:], uint64(x))
			body.Write(b[:])
		case value.KindFloat:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.AsFloat()))
			body.Write(b[:])
		case value.KindString:
			s := v.AsString()
			var lb [binary.MaxVarintLen64]byte
			m := binary.PutUvarint(lb[:], uint64(len(s)))
			body.Write(lb[:m])
			body.WriteString(s)
		}
	}
	out := make([]byte, 0, 4+len(bitmap)+body.Len())
	var nb [4]byte
	binary.LittleEndian.PutUint32(nb[:], uint32(n))
	out = append(out, nb[:]...)
	out = append(out, bitmap...)
	out = append(out, body.Bytes()...)
	return out
}

func decodeChunk(k value.Kind, raw []byte) ([]value.Value, error) {
	if len(raw) < 4 {
		return nil, fmt.Errorf("colformat: chunk too short")
	}
	n := int(binary.LittleEndian.Uint32(raw[:4]))
	bmLen := (n + 7) / 8
	if len(raw) < 4+bmLen {
		return nil, fmt.Errorf("colformat: chunk bitmap truncated")
	}
	bitmap := raw[4 : 4+bmLen]
	body := raw[4+bmLen:]
	out := make([]value.Value, n)
	pos := 0
	for i := 0; i < n; i++ {
		if bitmap[i/8]&(1<<uint(i%8)) != 0 {
			out[i] = value.Null()
			continue
		}
		switch k {
		case value.KindInt, value.KindDate:
			if pos+8 > len(body) {
				return nil, fmt.Errorf("colformat: int chunk truncated")
			}
			x := int64(binary.LittleEndian.Uint64(body[pos : pos+8]))
			pos += 8
			if k == value.KindDate {
				out[i] = value.Date(x)
			} else {
				out[i] = value.Int(x)
			}
		case value.KindFloat:
			if pos+8 > len(body) {
				return nil, fmt.Errorf("colformat: float chunk truncated")
			}
			out[i] = value.Float(math.Float64frombits(binary.LittleEndian.Uint64(body[pos : pos+8])))
			pos += 8
		case value.KindString:
			l, m := binary.Uvarint(body[pos:])
			if m <= 0 || l > uint64(len(body)) || pos+m+int(l) > len(body) {
				return nil, fmt.Errorf("colformat: string chunk truncated")
			}
			pos += m
			out[i] = value.Str(string(body[pos : pos+int(l)]))
			pos += int(l)
		default:
			return nil, fmt.Errorf("colformat: unsupported column kind %s", k)
		}
	}
	return out, nil
}

// Reader decodes a columnar object.
type Reader struct {
	data []byte
	meta footer
	cols map[string]int
}

// Open parses the footer of a columnar object.
func Open(data []byte) (*Reader, error) {
	tail := len(Magic) + 8
	if len(data) < tail {
		return nil, fmt.Errorf("colformat: object too small")
	}
	if string(data[len(data)-len(Magic):]) != Magic {
		return nil, fmt.Errorf("colformat: bad magic")
	}
	fl := binary.LittleEndian.Uint64(data[len(data)-tail : len(data)-len(Magic)])
	if fl > uint64(len(data)-tail) {
		return nil, fmt.Errorf("colformat: bad footer length %d", fl)
	}
	fStart := int64(len(data)-tail) - int64(fl)
	r := &Reader{data: data, cols: map[string]int{}}
	if err := json.Unmarshal(data[fStart:int64(len(data)-tail)], &r.meta); err != nil {
		return nil, fmt.Errorf("colformat: footer: %w", err)
	}
	for i, c := range r.meta.Columns {
		r.cols[c.Name] = i
	}
	return r, nil
}

// IsColumnar reports whether data looks like a colformat object.
func IsColumnar(data []byte) bool {
	return len(data) >= len(Magic) && string(data[len(data)-len(Magic):]) == Magic
}

// Schema returns the column definitions.
func (r *Reader) Schema() Schema { return r.meta.Columns }

// NumRows returns the total row count.
func (r *Reader) NumRows() int64 { return r.meta.NumRows }

// NumRowGroups returns the row-group count.
func (r *Reader) NumRowGroups() int { return len(r.meta.RowGroups) }

// GroupRows returns the row count of group g.
func (r *Reader) GroupRows(g int) int { return r.meta.RowGroups[g].NumRows }

// ColumnIndex resolves a column name, or -1.
func (r *Reader) ColumnIndex(name string) int {
	if i, ok := r.cols[name]; ok {
		return i
	}
	return -1
}

// ChunkRawLen returns the uncompressed size of chunk (g, col) when the
// chunk is stored compressed, and 0 for stored-raw chunks (no inflate
// work needed).
func (r *Reader) ChunkRawLen(g, col int) int64 {
	cm := r.meta.RowGroups[g].Chunks[col]
	if !cm.Compressed {
		return 0
	}
	return cm.RawLen
}

// ChunkStats returns the min/max statistics of chunk (g, col). ok is false
// when the chunk is all NULL.
func (r *Reader) ChunkStats(g, col int) (mn, mx value.Value, ok bool) {
	cm := r.meta.RowGroups[g].Chunks[col]
	if !cm.HasStats {
		return value.Null(), value.Null(), false
	}
	k := r.meta.Columns[col].Kind
	return parseStat(cm.Min, k), parseStat(cm.Max, k), true
}

func parseStat(s string, k value.Kind) value.Value {
	switch k {
	case value.KindInt:
		v, err := value.CastInt(value.Str(s))
		if err == nil {
			return v
		}
	case value.KindFloat:
		v, err := value.CastFloat(value.Str(s))
		if err == nil {
			return v
		}
	case value.KindDate:
		v, err := value.ParseDate(s)
		if err == nil {
			return v
		}
	}
	return value.Str(s)
}

// ReadColumn decodes chunk (g, col), returning the values and the number of
// object bytes that had to be read (the compressed chunk size — this is the
// "bytes scanned" a column-pruning scan pays).
func (r *Reader) ReadColumn(g, col int) ([]value.Value, int64, error) {
	if g < 0 || g >= len(r.meta.RowGroups) {
		return nil, 0, fmt.Errorf("colformat: row group %d out of range", g)
	}
	if col < 0 || col >= len(r.meta.Columns) {
		return nil, 0, fmt.Errorf("colformat: column %d out of range", col)
	}
	cms := r.meta.RowGroups[g].Chunks
	if col >= len(cms) {
		return nil, 0, fmt.Errorf("colformat: row group %d has %d chunks, column %d out of range", g, len(cms), col)
	}
	cm := cms[col]
	end := cm.Offset + cm.Len
	if cm.Offset < 0 || cm.Len < 0 || end < cm.Offset || end > int64(len(r.data)) {
		return nil, 0, fmt.Errorf("colformat: chunk (%d,%d) range [%d,%d) outside object", g, col, cm.Offset, end)
	}
	raw := r.data[cm.Offset:end]
	if cm.Compressed {
		fr := flate.NewReader(bytes.NewReader(raw))
		dec, err := io.ReadAll(fr)
		if err != nil {
			return nil, 0, fmt.Errorf("colformat: decompress: %w", err)
		}
		raw = dec
	}
	vals, err := decodeChunk(r.meta.Columns[col].Kind, raw)
	if err != nil {
		return nil, 0, err
	}
	return vals, cm.Len, nil
}

// Encode is a convenience that writes an entire row-major table.
func Encode(schema Schema, rows [][]value.Value, groupRows int, compress bool) ([]byte, error) {
	w := NewWriter(schema, groupRows, compress)
	for _, r := range rows {
		if err := w.Append(r); err != nil {
			return nil, err
		}
	}
	return w.Finish()
}
