package colformat

import (
	"testing"
	"testing/quick"

	"pushdowndb/internal/value"
)

var testSchema = Schema{
	{Name: "id", Kind: value.KindInt},
	{Name: "price", Kind: value.KindFloat},
	{Name: "name", Kind: value.KindString},
	{Name: "day", Kind: value.KindDate},
}

func sampleRows(n int) [][]value.Value {
	rows := make([][]value.Value, n)
	for i := range rows {
		rows[i] = []value.Value{
			value.Int(int64(i)),
			value.Float(float64(i) * 1.5),
			value.Str("name-" + value.Int(int64(i)).String()),
			value.Date(int64(8000 + i)),
		}
	}
	return rows
}

func roundTrip(t *testing.T, rows [][]value.Value, groupRows int, compress bool) *Reader {
	t.Helper()
	data, err := Encode(testSchema, rows, groupRows, compress)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func readAll(t *testing.T, r *Reader, col int) []value.Value {
	t.Helper()
	var out []value.Value
	for g := 0; g < r.NumRowGroups(); g++ {
		vals, _, err := r.ReadColumn(g, col)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, vals...)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	rows := sampleRows(100)
	for _, compress := range []bool{false, true} {
		r := roundTrip(t, rows, 16, compress)
		if r.NumRows() != 100 {
			t.Fatalf("NumRows = %d", r.NumRows())
		}
		if r.NumRowGroups() != 7 { // ceil(100/16)
			t.Fatalf("groups = %d", r.NumRowGroups())
		}
		for ci := range testSchema {
			got := readAll(t, r, ci)
			if len(got) != 100 {
				t.Fatalf("col %d len = %d", ci, len(got))
			}
			for i := range got {
				if value.Compare(got[i], rows[i][ci]) != 0 {
					t.Fatalf("col %d row %d = %v, want %v (compress=%v)",
						ci, i, got[i], rows[i][ci], compress)
				}
			}
		}
	}
}

func TestNulls(t *testing.T) {
	rows := [][]value.Value{
		{value.Int(1), value.Null(), value.Str("a"), value.Null()},
		{value.Null(), value.Float(2), value.Null(), value.Date(10)},
	}
	r := roundTrip(t, rows, 0, false)
	for ci := range testSchema {
		got := readAll(t, r, ci)
		for i := range rows {
			if got[i].IsNull() != rows[i][ci].IsNull() {
				t.Errorf("col %d row %d nullness mismatch", ci, i)
			}
		}
	}
}

func TestStats(t *testing.T) {
	rows := sampleRows(50)
	r := roundTrip(t, rows, 0, false)
	mn, mx, ok := r.ChunkStats(0, 0)
	if !ok || mn.AsInt() != 0 || mx.AsInt() != 49 {
		t.Errorf("id stats = %v..%v ok=%v", mn, mx, ok)
	}
	mn, mx, ok = r.ChunkStats(0, 1)
	if !ok || mn.AsFloat() != 0 || mx.AsFloat() != 49*1.5 {
		t.Errorf("price stats = %v..%v ok=%v", mn, mx, ok)
	}
	mn, mx, ok = r.ChunkStats(0, 3)
	if !ok || mn.Kind() != value.KindDate || mn.Days() != 8000 {
		t.Errorf("date stats = %v ok=%v kind=%v", mn, ok, mn.Kind())
	}

	// All-null column has no stats.
	nullRows := [][]value.Value{{value.Null(), value.Null(), value.Null(), value.Null()}}
	r2 := roundTrip(t, nullRows, 0, false)
	if _, _, ok := r2.ChunkStats(0, 0); ok {
		t.Error("all-null chunk should have no stats")
	}
}

func TestColumnIndex(t *testing.T) {
	r := roundTrip(t, sampleRows(1), 0, false)
	if r.ColumnIndex("price") != 1 || r.ColumnIndex("nosuch") != -1 {
		t.Error("ColumnIndex broken")
	}
	if len(r.Schema()) != 4 {
		t.Error("schema lost")
	}
}

func TestCompressionShrinks(t *testing.T) {
	// Highly repetitive data must compress.
	rows := make([][]value.Value, 2000)
	for i := range rows {
		rows[i] = []value.Value{value.Int(7), value.Float(1), value.Str("constant"), value.Date(1)}
	}
	raw, _ := Encode(testSchema, rows, 0, false)
	comp, _ := Encode(testSchema, rows, 0, true)
	if len(comp) >= len(raw) {
		t.Errorf("compressed %d >= raw %d", len(comp), len(raw))
	}
	// And still round trips.
	r, err := Open(comp)
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, r, 2)
	if got[1999].AsString() != "constant" {
		t.Error("compressed round trip broken")
	}
}

func TestBytesReadPerColumn(t *testing.T) {
	rows := sampleRows(1000)
	r := roundTrip(t, rows, 0, false)
	_, idBytes, err := r.ReadColumn(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reading one column should cost roughly 1/N of the data region, far
	// less than the whole object: the column-pruning effect of Fig. 11.
	if idBytes <= 0 || idBytes > int64(8*1000+4+125+64) {
		t.Errorf("id column bytes = %d", idBytes)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(nil); err == nil {
		t.Error("nil object should fail")
	}
	if _, err := Open([]byte("definitely not columnar")); err == nil {
		t.Error("bad magic should fail")
	}
	good, _ := Encode(testSchema, sampleRows(2), 0, false)
	// Corrupt the footer length.
	bad := append([]byte{}, good...)
	bad[len(bad)-6] = 0xFF
	if _, err := Open(bad); err == nil {
		t.Error("corrupt footer length should fail")
	}
	if IsColumnar([]byte("x")) {
		t.Error("IsColumnar false positive")
	}
	if !IsColumnar(good) {
		t.Error("IsColumnar false negative")
	}
}

func TestReadColumnBounds(t *testing.T) {
	r := roundTrip(t, sampleRows(3), 0, false)
	if _, _, err := r.ReadColumn(5, 0); err == nil {
		t.Error("bad group should error")
	}
	if _, _, err := r.ReadColumn(0, 99); err == nil {
		t.Error("bad column should error")
	}
}

func TestSchemaMismatch(t *testing.T) {
	w := NewWriter(testSchema, 0, false)
	if err := w.Append([]value.Value{value.Int(1)}); err == nil {
		t.Error("short row should error")
	}
	// A string cannot enter an INT column.
	if err := w.Append([]value.Value{value.Str("xx"), value.Float(1), value.Str("a"), value.Date(1)}); err == nil {
		t.Error("uncastable value should error")
	}
	// But an int can enter a FLOAT column.
	if err := w.Append([]value.Value{value.Int(1), value.Int(2), value.Str("a"), value.Date(1)}); err != nil {
		t.Errorf("int into float column: %v", err)
	}
}

// Property: round trip preserves int and float columns exactly.
func TestQuickRoundTrip(t *testing.T) {
	schema := Schema{{Name: "i", Kind: value.KindInt}, {Name: "f", Kind: value.KindFloat}}
	f := func(is []int64, fs []float64) bool {
		n := len(is)
		if len(fs) < n {
			n = len(fs)
		}
		if n == 0 {
			return true
		}
		rows := make([][]value.Value, n)
		for i := 0; i < n; i++ {
			rows[i] = []value.Value{value.Int(is[i]), value.Float(fs[i])}
		}
		data, err := Encode(schema, rows, 3, true)
		if err != nil {
			return false
		}
		r, err := Open(data)
		if err != nil || r.NumRows() != int64(n) {
			return false
		}
		var gotI, gotF []value.Value
		for g := 0; g < r.NumRowGroups(); g++ {
			vi, _, err1 := r.ReadColumn(g, 0)
			vf, _, err2 := r.ReadColumn(g, 1)
			if err1 != nil || err2 != nil {
				return false
			}
			gotI = append(gotI, vi...)
			gotF = append(gotF, vf...)
		}
		for i := 0; i < n; i++ {
			if gotI[i].AsInt() != is[i] {
				return false
			}
			gf := gotF[i].AsFloat()
			if gf != fs[i] && !(gf != gf && fs[i] != fs[i]) { // NaN-safe
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
