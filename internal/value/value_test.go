package value

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindBool: "BOOL", KindInt: "INT",
		KindFloat: "FLOAT", KindString: "STRING", KindDate: "DATE",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() || v.Kind() != KindNull {
		t.Fatalf("zero Value should be NULL, got %v", v.Kind())
	}
	if v.String() != "" {
		t.Fatalf("NULL renders as empty string, got %q", v.String())
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool round trip failed")
	}
	if Int(-42).AsInt() != -42 {
		t.Error("Int round trip failed")
	}
	if Float(2.5).AsFloat() != 2.5 {
		t.Error("Float round trip failed")
	}
	if Str("abc").AsString() != "abc" {
		t.Error("Str round trip failed")
	}
	if Date(19000).Days() != 19000 {
		t.Error("Date round trip failed")
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { Int(1).AsBool() },
		func() { Str("x").AsInt() },
		func() { Int(1).AsFloat() },
		func() { Int(1).AsString() },
		func() { Int(1).Days() },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestDateFromYMDAndFormat(t *testing.T) {
	v := DateFromYMD(1995, time.March, 15)
	if got := v.String(); got != "1995-03-15" {
		t.Errorf("date format = %q, want 1995-03-15", got)
	}
	epoch := DateFromYMD(1970, time.January, 1)
	if epoch.Days() != 0 {
		t.Errorf("epoch days = %d, want 0", epoch.Days())
	}
}

func TestParseDate(t *testing.T) {
	v, err := ParseDate("1992-06-01")
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "1992-06-01" {
		t.Errorf("round trip = %q", v.String())
	}
	if _, err := ParseDate("1992-13-01"); err == nil {
		t.Error("expected error for month 13")
	}
	if _, err := ParseDate("junk"); err == nil {
		t.Error("expected error for junk")
	}
}

func TestLooksLikeDate(t *testing.T) {
	good := []string{"1992-03-01", "2020-12-31", "0001-01-01"}
	bad := []string{"", "1992-3-01", "1992/03/01", "19920301xx", "abcd-ef-gh", "1992-03-011"}
	for _, s := range good {
		if !LooksLikeDate(s) {
			t.Errorf("LooksLikeDate(%q) = false", s)
		}
	}
	for _, s := range bad {
		if LooksLikeDate(s) {
			t.Errorf("LooksLikeDate(%q) = true", s)
		}
	}
}

func TestFromCSV(t *testing.T) {
	cases := []struct {
		in   string
		kind Kind
	}{
		{"", KindNull},
		{"42", KindInt},
		{"-7", KindInt},
		{"3.14", KindFloat},
		{"1995-01-01", KindDate},
		{"BUILDING", KindString},
		{"12abc", KindString},
	}
	for _, c := range cases {
		if got := FromCSV(c.in).Kind(); got != c.kind {
			t.Errorf("FromCSV(%q).Kind() = %v, want %v", c.in, got, c.kind)
		}
	}
}

func TestCasts(t *testing.T) {
	if v, err := CastInt(Str(" 42 ")); err != nil || v.AsInt() != 42 {
		t.Errorf("CastInt(' 42 ') = %v, %v", v, err)
	}
	if v, err := CastInt(Float(3.9)); err != nil || v.AsInt() != 3 {
		t.Errorf("CastInt(3.9) = %v, %v (want truncation)", v, err)
	}
	if v, err := CastInt(Str("3.9")); err != nil || v.AsInt() != 3 {
		t.Errorf("CastInt('3.9') = %v, %v", v, err)
	}
	if _, err := CastInt(Str("zzz")); err == nil {
		t.Error("CastInt('zzz') should fail")
	}
	if v, err := CastFloat(Str("2.5")); err != nil || v.AsFloat() != 2.5 {
		t.Errorf("CastFloat('2.5') = %v, %v", v, err)
	}
	if v, err := CastFloat(Int(7)); err != nil || v.AsFloat() != 7 {
		t.Errorf("CastFloat(7) = %v, %v", v, err)
	}
	if _, err := CastFloat(Str("zzz")); err == nil {
		t.Error("CastFloat('zzz') should fail")
	}
	if v := CastString(Int(5)); v.AsString() != "5" {
		t.Errorf("CastString(5) = %v", v)
	}
	if !CastString(Null()).IsNull() {
		t.Error("CastString(NULL) should be NULL")
	}
	if v, err := CastDate(Str("1994-01-01")); err != nil || v.String() != "1994-01-01" {
		t.Errorf("CastDate = %v, %v", v, err)
	}
	if n, err := CastInt(Null()); err != nil || !n.IsNull() {
		t.Error("CastInt(NULL) should be NULL")
	}
}

func TestCompareNumeric(t *testing.T) {
	if Compare(Int(1), Int(2)) != -1 || Compare(Int(2), Int(1)) != 1 || Compare(Int(3), Int(3)) != 0 {
		t.Error("int comparison broken")
	}
	if Compare(Int(1), Float(1.5)) != -1 {
		t.Error("int vs float comparison broken")
	}
	if Compare(Float(2.0), Int(2)) != 0 {
		t.Error("numeric equality across kinds broken")
	}
}

func TestCompareStringsAndMixed(t *testing.T) {
	if Compare(Str("a"), Str("b")) != -1 {
		t.Error("string comparison broken")
	}
	// Numeric string vs number compares numerically (CSV semantics).
	if Compare(Str("10"), Int(9)) != 1 {
		t.Error("'10' should compare greater than 9 numerically")
	}
	if Compare(Str("abc"), Int(9)) == 0 {
		t.Error("non-numeric string should not equal number")
	}
	// Date vs string compares textually, preserving order for ISO dates.
	d, _ := ParseDate("1994-01-01")
	if Compare(d, Str("1995-01-01")) != -1 {
		t.Error("date < later date string")
	}
	if Compare(Str("1993-06-30"), d) != -1 {
		t.Error("earlier date string < date")
	}
}

func TestCompareNulls(t *testing.T) {
	if Compare(Null(), Null()) != 0 {
		t.Error("NULL compares equal to NULL for sorting")
	}
	if Compare(Null(), Int(0)) != -1 || Compare(Int(0), Null()) != 1 {
		t.Error("NULL sorts first")
	}
	if Equal(Null(), Null()) {
		t.Error("NULL != NULL under SQL equality")
	}
}

func TestTruthy(t *testing.T) {
	if !Truthy(Bool(true)) || Truthy(Bool(false)) || Truthy(Int(1)) || Truthy(Null()) {
		t.Error("Truthy semantics broken")
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	if Int(5).Hash() != Float(5).Hash() {
		t.Error("numerically equal values must hash equal")
	}
	if Int(5).Hash() == Int(6).Hash() {
		t.Error("expected different hashes for 5 and 6")
	}
	if Str("a").Hash() == Str("b").Hash() {
		t.Error("expected different hashes for distinct strings")
	}
}

func TestFloatRendering(t *testing.T) {
	if got := Float(0.1).String(); got != "0.1" {
		t.Errorf("Float(0.1) = %q", got)
	}
	if got := Float(100).String(); got != "100" {
		t.Errorf("Float(100) = %q", got)
	}
}

// Property: FromCSV(v.String()) preserves numeric meaning for ints.
func TestQuickIntRoundTrip(t *testing.T) {
	f := func(i int64) bool {
		v := FromCSV(strconv.FormatInt(i, 10))
		return v.Kind() == KindInt && v.AsInt() == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric and Compare(a,a)==0 for finite floats.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		va, vb := Float(a), Float(b)
		return Compare(va, vb) == -Compare(vb, va) && Compare(va, va) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: date round trip through formatting for a plausible day range.
func TestQuickDateRoundTrip(t *testing.T) {
	f := func(d uint16) bool {
		days := int64(d) // 1970..2149
		v, err := ParseDate(FormatDays(days))
		return err == nil && v.Days() == days
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Hash agrees across Int/Float for whole numbers.
func TestQuickHashIntFloatAgree(t *testing.T) {
	f := func(i int32) bool {
		return Int(int64(i)).Hash() == Float(float64(i)).Hash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
