// Package value defines the SQL value model shared by the S3 Select engine
// and the PushdownDB executor: a compact tagged union over the types the
// S3 Select dialect knows about (NULL, BOOL, INT, FLOAT, STRING, DATE),
// together with coercion, comparison and hashing rules.
//
// Dates are stored as days since 1970-01-01 and formatted as YYYY-MM-DD,
// which matches how TPC-H data is laid out in CSV and how the paper's
// queries compare order dates.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The supported value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindDate
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindDate:
		return "DATE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64   // BOOL (0/1), INT, DATE (days since epoch)
	f    float64 // FLOAT
	s    string  // STRING
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Bool wraps a boolean.
func Bool(b bool) Value {
	v := Value{kind: KindBool}
	if b {
		v.i = 1
	}
	return v
}

// Int wraps an integer.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float wraps a float.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Str wraps a string.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Date wraps a date expressed as days since 1970-01-01.
func Date(days int64) Value { return Value{kind: KindDate, i: days} }

// DateFromYMD builds a date value from a calendar day.
func DateFromYMD(year int, month time.Month, day int) Value {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Date(t.Unix() / 86400)
}

// Kind reports the runtime type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload. It panics unless Kind is BOOL.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic("value: AsBool on " + v.kind.String())
	}
	return v.i != 0
}

// AsInt returns the integer payload. It panics unless Kind is INT or DATE.
func (v Value) AsInt() int64 {
	if v.kind != KindInt && v.kind != KindDate {
		panic("value: AsInt on " + v.kind.String())
	}
	return v.i
}

// AsFloat returns the float payload. It panics unless Kind is FLOAT.
func (v Value) AsFloat() float64 {
	if v.kind != KindFloat {
		panic("value: AsFloat on " + v.kind.String())
	}
	return v.f
}

// AsString returns the string payload. It panics unless Kind is STRING.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic("value: AsString on " + v.kind.String())
	}
	return v.s
}

// Days returns the date payload in days since epoch. It panics unless Kind is DATE.
func (v Value) Days() int64 {
	if v.kind != KindDate {
		panic("value: Days on " + v.kind.String())
	}
	return v.i
}

// IsNumeric reports whether the value is INT or FLOAT.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Num returns the value as a float64 for arithmetic, coercing INT and DATE.
// NULL and non-numeric kinds return (0, false).
func (v Value) Num() (float64, bool) {
	switch v.kind {
	case KindInt, KindDate:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	case KindBool:
		return float64(v.i), true
	default:
		return 0, false
	}
}

// IntNum returns the value as an int64, coercing FLOAT by truncation.
func (v Value) IntNum() (int64, bool) {
	switch v.kind {
	case KindInt, KindDate, KindBool:
		return v.i, true
	case KindFloat:
		return int64(v.f), true
	default:
		return 0, false
	}
}

// String renders the value the way S3 Select renders CSV results: NULL as
// the empty string, floats with minimal digits, dates as YYYY-MM-DD.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'f', -1, 64)
	case KindString:
		return v.s
	case KindDate:
		return FormatDays(v.i)
	default:
		return ""
	}
}

// FormatDays renders days-since-epoch as YYYY-MM-DD.
func FormatDays(days int64) string {
	t := time.Unix(days*86400, 0).UTC()
	return t.Format("2006-01-02")
}

// ParseDate parses YYYY-MM-DD into a DATE value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null(), fmt.Errorf("value: bad date %q: %w", s, err)
	}
	return Date(t.Unix() / 86400), nil
}

// LooksLikeDate reports whether s has the YYYY-MM-DD shape.
func LooksLikeDate(s string) bool {
	if len(s) != 10 || s[4] != '-' || s[7] != '-' {
		return false
	}
	for i, c := range s {
		if i == 4 || i == 7 {
			continue
		}
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// FromCSV interprets a raw CSV field: S3 Select treats all CSV fields as
// strings until CAST; PushdownDB's loaders use FromCSV to infer INT, FLOAT
// and DATE where unambiguous.
func FromCSV(field string) Value {
	if field == "" {
		return Null()
	}
	if LooksLikeDate(field) {
		if v, err := ParseDate(field); err == nil {
			return v
		}
	}
	if i, err := strconv.ParseInt(field, 10, 64); err == nil {
		return Int(i)
	}
	if f, err := strconv.ParseFloat(field, 64); err == nil {
		return Float(f)
	}
	return Str(field)
}

// CastInt implements CAST(x AS INT).
func CastInt(v Value) (Value, error) {
	switch v.kind {
	case KindNull:
		return Null(), nil
	case KindInt:
		return v, nil
	case KindFloat:
		return Int(int64(v.f)), nil
	case KindBool, KindDate:
		return Int(v.i), nil
	case KindString:
		s := strings.TrimSpace(v.s)
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(s, 64)
			if ferr != nil {
				return Null(), fmt.Errorf("value: cannot CAST %q AS INT", v.s)
			}
			return Int(int64(f)), nil
		}
		return Int(i), nil
	}
	return Null(), fmt.Errorf("value: cannot CAST %s AS INT", v.kind)
}

// CastFloat implements CAST(x AS FLOAT) / AS DECIMAL.
func CastFloat(v Value) (Value, error) {
	switch v.kind {
	case KindNull:
		return Null(), nil
	case KindFloat:
		return v, nil
	case KindInt, KindBool, KindDate:
		return Float(float64(v.i)), nil
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		if err != nil {
			return Null(), fmt.Errorf("value: cannot CAST %q AS FLOAT", v.s)
		}
		return Float(f), nil
	}
	return Null(), fmt.Errorf("value: cannot CAST %s AS FLOAT", v.kind)
}

// CastString implements CAST(x AS STRING).
func CastString(v Value) Value {
	if v.IsNull() {
		return Null()
	}
	return Str(v.String())
}

// CastDate implements CAST(x AS DATE) / the TIMESTAMP literal coercion.
func CastDate(v Value) (Value, error) {
	switch v.kind {
	case KindNull:
		return Null(), nil
	case KindDate:
		return v, nil
	case KindInt:
		return Date(v.i), nil
	case KindString:
		return ParseDate(strings.TrimSpace(v.s))
	}
	return Null(), fmt.Errorf("value: cannot CAST %s AS DATE", v.kind)
}

// Compare orders a and b, returning -1, 0 or +1. NULL sorts before
// everything and equals only NULL. Numeric kinds (INT, FLOAT, BOOL, DATE)
// compare numerically with each other; a numeric compared with a STRING
// attempts to parse the string as a number first (this mirrors S3 Select's
// behaviour on CSV where every field is textual), falling back to string
// comparison of the rendered forms.
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == KindNull && b.kind == KindNull:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.kind == KindString && b.kind == KindString {
		// CSV semantics: S3 Select sees every CSV field as text, so two
		// fields that both parse as numbers compare numerically (account
		// balances, keys); otherwise lexicographically (names, dates).
		if an, aok := coerceNum(a); aok {
			if bn, bok := coerceNum(b); bok {
				return cmpFloat(an, bn)
			}
		}
		return strings.Compare(a.s, b.s)
	}
	if a.kind == KindString || b.kind == KindString {
		// Try numeric comparison; dates compare as their textual form,
		// which is order-preserving for YYYY-MM-DD.
		if a.kind == KindDate || b.kind == KindDate {
			return strings.Compare(a.String(), b.String())
		}
		an, aok := coerceNum(a)
		bn, bok := coerceNum(b)
		if aok && bok {
			return cmpFloat(an, bn)
		}
		return strings.Compare(a.String(), b.String())
	}
	an, _ := a.Num()
	bn, _ := b.Num()
	return cmpFloat(an, bn)
}

func coerceNum(v Value) (float64, bool) {
	if v.kind == KindString {
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		return f, err == nil
	}
	return v.Num()
}

// cmpFloat orders floats totally: NaN equals only NaN and sorts after
// every number (otherwise `x = lit` would hold for any x when either side
// is NaN, since both < and > are false).
func cmpFloat(a, b float64) int {
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return 1
	case bn:
		return -1
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports Compare(a,b)==0 with the extra rule that NULL != NULL
// under SQL equality; use Compare for sorting and Equal for predicates.
func Equal(a, b Value) bool {
	if a.kind == KindNull || b.kind == KindNull {
		return false
	}
	return Compare(a, b) == 0
}

// Hash returns a 64-bit hash consistent with Equal for non-NULL values:
// numerically equal INT/FLOAT/DATE values hash identically.
func (v Value) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	switch v.kind {
	case KindNull:
		mix(0)
	case KindString:
		for i := 0; i < len(v.s); i++ {
			mix(v.s[i])
		}
	default:
		f, _ := v.Num()
		if f == math.Trunc(f) && !math.IsInf(f, 0) {
			u := uint64(int64(f))
			for i := 0; i < 8; i++ {
				mix(byte(u >> (8 * i)))
			}
		} else {
			u := math.Float64bits(f)
			for i := 0; i < 8; i++ {
				mix(byte(u >> (8 * i)))
			}
		}
	}
	return h
}

// Truthy interprets a value in a WHERE context: only BOOL true is true;
// NULL and everything else are false.
func Truthy(v Value) bool {
	return v.kind == KindBool && v.i != 0
}
