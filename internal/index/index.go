// Package index implements PushdownDB's S3-side secondary indexes
// (Section IV-A of the paper, grown into a persistent subsystem). An index
// on a table column is a set of per-partition index objects — sorted
// |value|first_byte_offset|last_byte_offset| CSV rows, partition-aligned
// with the data objects — plus one manifest object per table that records
// which indexes exist, so a fresh engine.DB rediscovers them from storage
// alone.
//
// Querying an index is a two-hop access path: push the predicate (over the
// "value" column) into an S3 Select against the index objects, coalesce
// the returned byte ranges, then fetch only those ranges of the data
// objects with batched multi-range GETs (Suggestion 1). The engine's
// IndexScan strategy (internal/engine) and its cost model
// (cloudsim.EstimateIndexScan) both build on the layout and coalescing
// rules defined here.
package index

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"pushdowndb/internal/csvx"
	"pushdowndb/internal/value"
)

// Header is the schema of every index object, matching the paper's
// |value|first_byte_offset|last_byte_offset| table.
var Header = []string{"value", "first_byte_offset", "last_byte_offset"}

// DefaultCoalesceGap is how many unselected bytes two matched ranges may be
// apart and still merge into one fetched range. One byte covers the row
// separator between adjacent matched rows; a few extra bytes let tiny
// slivers (a short unmatched row between two matches) ride along — the
// fetched superset is re-filtered on the server anyway.
const DefaultCoalesceGap = 32

// DefaultMaxRangesPerGet caps how many coalesced ranges one multi-range GET
// request carries; larger probes split into several batched requests.
const DefaultMaxRangesPerGet = 256

// ManifestVersion is bumped when the manifest layout changes.
const ManifestVersion = 1

// Prefix is the key namespace of a table's index artifacts. It deliberately
// does not start with the "<table>/part" partition prefix, so data-partition
// listings never see index objects.
func Prefix(table string) string { return table + "/_index" }

// ManifestKey is the object key of a table's index manifest.
func ManifestKey(table string) string { return Prefix(table) + "/manifest.json" }

// Table is the pseudo-table name of one index: its objects live under
// Table(...)+"/partNNNN.csv", so the engine's partition listing and select
// fan-out work on index objects unchanged.
func Table(table, column string) string {
	return Prefix(table) + "/" + strings.ToLower(column)
}

// ObjectKey is the key of partition part of an index.
func ObjectKey(table, column string, part int) string {
	return fmt.Sprintf("%s/part%04d.csv", Table(table, column), part)
}

// Entry describes one index in a table's manifest.
type Entry struct {
	// Name is the index's SQL-visible name (CREATE INDEX name ON ...).
	Name string `json:"name"`
	// Column is the indexed data column, as spelled in the data header.
	Column string `json:"column"`
	// Partitions is the index object count (== data partitions at build).
	Partitions int `json:"partitions"`
	// IndexBytes is the total size of the index objects (planner input).
	IndexBytes int64 `json:"index_bytes"`
	// DataSizes are the byte sizes of the data partition objects the index
	// was built from, in listing order. An index is only valid while the
	// live partitions still have exactly these sizes; a reloaded table
	// fails the check and the engine drops the index instead of serving
	// byte ranges into the wrong rows.
	DataSizes []int64 `json:"data_sizes"`
}

// Stale reports whether the index no longer matches the live data
// partitions (count or any size differs).
func (e Entry) Stale(liveSizes []int64) bool {
	if len(liveSizes) != len(e.DataSizes) {
		return true
	}
	for i, n := range e.DataSizes {
		if liveSizes[i] != n {
			return true
		}
	}
	return false
}

// Manifest is a table's persistent index catalog.
type Manifest struct {
	Version int `json:"version"`
	// Generation counts manifest rewrites (builds and drops), so observers
	// can tell a rebuilt index from the one they saw before.
	Generation uint64 `json:"generation"`
	// Indexes maps lower(column) to its index entry.
	Indexes map[string]Entry `json:"indexes"`
}

// NewManifest returns an empty manifest at the current version.
func NewManifest() *Manifest {
	return &Manifest{Version: ManifestVersion, Indexes: map[string]Entry{}}
}

// Lookup returns the entry indexing column (case-insensitive).
func (m *Manifest) Lookup(column string) (Entry, bool) {
	if m == nil {
		return Entry{}, false
	}
	e, ok := m.Indexes[strings.ToLower(column)]
	return e, ok
}

// Set records an entry (keyed by its column) and bumps the generation.
func (m *Manifest) Set(e Entry) {
	m.Indexes[strings.ToLower(e.Column)] = e
	m.Generation++
}

// Remove drops the entry for column, reporting whether one existed;
// removal bumps the generation.
func (m *Manifest) Remove(column string) bool {
	k := strings.ToLower(column)
	if _, ok := m.Indexes[k]; !ok {
		return false
	}
	delete(m.Indexes, k)
	m.Generation++
	return true
}

// Encode renders the manifest as its stored JSON object.
func (m *Manifest) Encode() []byte {
	data, _ := json.MarshalIndent(m, "", "  ")
	return data
}

// DecodeManifest parses a stored manifest, rejecting unknown versions (a
// newer writer's layout must not be half-read as valid).
func DecodeManifest(data []byte) (*Manifest, error) {
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("index: bad manifest: %w", err)
	}
	if m.Version != ManifestVersion {
		return nil, fmt.Errorf("index: manifest version %d, want %d", m.Version, ManifestVersion)
	}
	if m.Indexes == nil {
		m.Indexes = map[string]Entry{}
	}
	return m, nil
}

// BuildPartition builds the index rows of one data partition: every data
// row's column value and inclusive byte range, sorted by value (numeric
// values in numeric order, strings lexically — value.Compare's total
// order). Sorting follows the paper's layout; correctness does not depend
// on it because index probes scan the whole index object.
func BuildPartition(data []byte, column string) ([]byte, error) {
	sc := csvx.NewScanner(data)
	if !sc.Scan() {
		return nil, fmt.Errorf("index: empty data partition")
	}
	col := -1
	for i, h := range sc.Fields() {
		if strings.EqualFold(h, column) {
			col = i
			break
		}
	}
	if col < 0 {
		return nil, fmt.Errorf("index: column %q not in header %v", column, sc.Fields())
	}
	type idxRow struct {
		val         string
		first, last int64
	}
	var rows []idxRow
	for sc.Scan() {
		fields := sc.Fields()
		if col >= len(fields) {
			return nil, fmt.Errorf("index: row with %d fields, column %q is #%d", len(fields), column, col+1)
		}
		first, last := sc.Range()
		rows = append(rows, idxRow{val: fields[col], first: first, last: last})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return value.Compare(value.FromCSV(rows[i].val), value.FromCSV(rows[j].val)) < 0
	})
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.val, fmt.Sprint(r.first), fmt.Sprint(r.last)}
	}
	return csvx.Encode(Header, out), nil
}

// Coalesce sorts ranges by start offset and merges ranges that overlap or
// sit within gap bytes of each other, returning the fetch list. Merged
// ranges may cover unselected rows in the gaps; callers re-filter the
// decoded rows, so the merge trades a few extra bytes for fewer ranges.
func Coalesce(ranges [][2]int64, gap int64) [][2]int64 {
	if len(ranges) == 0 {
		return nil
	}
	if gap < 0 {
		gap = 0
	}
	sorted := make([][2]int64, len(ranges))
	copy(sorted, ranges)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i][0] != sorted[j][0] {
			return sorted[i][0] < sorted[j][0]
		}
		return sorted[i][1] < sorted[j][1]
	})
	out := sorted[:1]
	for _, r := range sorted[1:] {
		last := &out[len(out)-1]
		if r[0] <= last[1]+1+gap {
			if r[1] > last[1] {
				last[1] = r[1]
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// Batches splits coalesced ranges into chunks of at most maxPerReq ranges,
// one chunk per multi-range GET request (maxPerReq <= 0 uses the default).
func Batches(ranges [][2]int64, maxPerReq int) [][][2]int64 {
	if maxPerReq <= 0 {
		maxPerReq = DefaultMaxRangesPerGet
	}
	var out [][][2]int64
	for len(ranges) > 0 {
		n := maxPerReq
		if n > len(ranges) {
			n = len(ranges)
		}
		out = append(out, ranges[:n])
		ranges = ranges[n:]
	}
	return out
}
