package index

import (
	"reflect"
	"strconv"
	"testing"

	"pushdowndb/internal/csvx"
)

func TestKeys(t *testing.T) {
	if ManifestKey("t") != "t/_index/manifest.json" {
		t.Errorf("ManifestKey = %q", ManifestKey("t"))
	}
	if Table("t", "Col") != "t/_index/col" {
		t.Errorf("Table = %q", Table("t", "Col"))
	}
	if ObjectKey("t", "c", 3) != "t/_index/c/part0003.csv" {
		t.Errorf("ObjectKey = %q", ObjectKey("t", "c", 3))
	}
	// Index keys must never collide with the data-partition listing prefix.
	if pfx := Prefix("t"); pfx == "t/part" || pfx[:6] == "t/part" {
		t.Errorf("index prefix %q collides with the partition prefix", pfx)
	}
}

func TestManifestRoundTripAndStaleness(t *testing.T) {
	m := NewManifest()
	m.Set(Entry{Name: "ix1", Column: "Price", Partitions: 2, IndexBytes: 99, DataSizes: []int64{10, 20}})
	if m.Generation != 1 {
		t.Errorf("generation after Set = %d", m.Generation)
	}
	got, err := DecodeManifest(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	e, ok := got.Lookup("price") // case-insensitive
	if !ok || e.Name != "ix1" || e.IndexBytes != 99 {
		t.Fatalf("Lookup after round trip = %+v, %v", e, ok)
	}
	if e.Stale([]int64{10, 20}) {
		t.Error("matching sizes must not be stale")
	}
	if !e.Stale([]int64{10, 21}) || !e.Stale([]int64{10}) {
		t.Error("size or count drift must mark the index stale")
	}
	if !got.Remove("PRICE") || got.Remove("price") {
		t.Error("Remove must drop exactly once, case-insensitively")
	}
	if _, err := DecodeManifest([]byte(`{"version":99}`)); err == nil {
		t.Error("unknown manifest version must be rejected")
	}
	if _, err := DecodeManifest([]byte(`not json`)); err == nil {
		t.Error("garbage manifest must be rejected")
	}
}

func TestBuildPartitionSortedWithExactRanges(t *testing.T) {
	data := csvx.Encode([]string{"k", "v"}, [][]string{
		{"1", "30"}, {"2", "7"}, {"3", "100"},
	})
	idx, err := BuildPartition(data, "v")
	if err != nil {
		t.Fatal(err)
	}
	header, rows, err := csvx.Decode(idx, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(header, Header) {
		t.Errorf("index header = %v", header)
	}
	// Sorted numerically: 7, 30, 100 (string sort would give 100, 30, 7).
	if rows[0][0] != "7" || rows[1][0] != "30" || rows[2][0] != "100" {
		t.Fatalf("index rows not value-sorted: %v", rows)
	}
	// Every recorded range must slice back to exactly the original row.
	for _, r := range rows {
		first, _ := strconv.ParseInt(r[1], 10, 64)
		last, _ := strconv.ParseInt(r[2], 10, 64)
		row := string(data[first : last+1])
		if row != "1,30" && row != "2,7" && row != "3,100" {
			t.Errorf("range [%d,%d] slices to %q", first, last, row)
		}
	}
}

func TestBuildPartitionErrors(t *testing.T) {
	if _, err := BuildPartition(nil, "v"); err == nil {
		t.Error("empty partition must fail")
	}
	data := csvx.Encode([]string{"k"}, [][]string{{"1"}})
	if _, err := BuildPartition(data, "nosuch"); err == nil {
		t.Error("missing column must fail")
	}
}

func TestCoalesce(t *testing.T) {
	// Unsorted input, overlap, adjacency (1-byte newline gap), and a gap
	// larger than the tolerance.
	in := [][2]int64{{50, 60}, {0, 9}, {11, 20}, {25, 30}, {100, 110}, {58, 70}}
	got := Coalesce(in, 4)
	want := [][2]int64{{0, 30}, {50, 70}, {100, 110}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Coalesce = %v, want %v", got, want)
	}
	if Coalesce(nil, 4) != nil {
		t.Error("empty input must coalesce to nil")
	}
	// gap 0 still merges strictly adjacent ranges ([a,b] + [b+1,c]).
	got = Coalesce([][2]int64{{0, 4}, {5, 9}, {11, 12}}, 0)
	want = [][2]int64{{0, 9}, {11, 12}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Coalesce(gap 0) = %v, want %v", got, want)
	}
}

func TestBatches(t *testing.T) {
	ranges := make([][2]int64, 10)
	for i := range ranges {
		ranges[i] = [2]int64{int64(i * 10), int64(i*10 + 5)}
	}
	b := Batches(ranges, 4)
	if len(b) != 3 || len(b[0]) != 4 || len(b[2]) != 2 {
		t.Errorf("Batches sizes = %v", []int{len(b[0]), len(b[1]), len(b[2])})
	}
	if len(Batches(nil, 4)) != 0 {
		t.Error("no ranges, no batches")
	}
	if got := Batches(ranges, 0); len(got) != 1 {
		t.Errorf("default cap should hold all 10 ranges in one batch, got %d", len(got))
	}
}
