package tpch

import (
	"fmt"
	"strings"

	"pushdowndb/internal/colformat"
	"pushdowndb/internal/engine"
	"pushdowndb/internal/store"
	"pushdowndb/internal/value"
)

// Section IX also evaluates the TPC-H queries over Parquet data. These
// helpers load the generated tables in the columnar stand-in format so the
// same queries can run against both layouts.

// columnKind infers a column's storage kind from its TPC-H name.
func columnKind(name string) value.Kind {
	switch {
	case strings.HasSuffix(name, "key") || name == "o_shippriority" ||
		name == "l_linenumber" || name == "p_size" || name == "l_quantity":
		return value.KindInt
	case strings.HasSuffix(name, "price") || strings.HasSuffix(name, "bal") ||
		name == "l_discount" || name == "l_tax":
		return value.KindFloat
	case strings.HasSuffix(name, "date"):
		return value.KindDate
	default:
		return value.KindString
	}
}

// SchemaFor builds the columnar schema for a TPC-H table header.
func SchemaFor(header []string) colformat.Schema {
	s := make(colformat.Schema, len(header))
	for i, h := range header {
		s[i] = colformat.ColumnDef{Name: h, Kind: columnKind(h)}
	}
	return s
}

// typedRows converts generated CSV rows to typed rows per the schema.
func typedRows(schema colformat.Schema, rows [][]string) ([][]value.Value, error) {
	out := make([][]value.Value, len(rows))
	for i, r := range rows {
		tr := make([]value.Value, len(r))
		for j, f := range r {
			if f == "" {
				tr[j] = value.Null()
				continue
			}
			var v value.Value
			var err error
			switch schema[j].Kind {
			case value.KindInt:
				v, err = value.CastInt(value.Str(f))
			case value.KindFloat:
				v, err = value.CastFloat(value.Str(f))
			case value.KindDate:
				v, err = value.ParseDate(f)
			default:
				v = value.Str(f)
			}
			if err != nil {
				return nil, fmt.Errorf("tpch: column %s value %q: %w", schema[j].Name, f, err)
			}
			tr[j] = v
		}
		out[i] = tr
	}
	return out, nil
}

// LoadColumnar generates the TPC-H tables and writes them in the columnar
// (Parquet stand-in) format, under table names suffixed "_col" so a store
// can hold both layouts side by side (Section IX compares them).
func LoadColumnar(st *store.Store, d Dataset) (Dataset, error) {
	d = d.WithDefaults()
	orders := GenOrders(d.SF, d.Seed)
	steps := []struct {
		table  string
		header []string
		rows   [][]string
		parts  int
	}{
		{"customer_col", CustomerHeader, GenCustomers(d.SF, d.Seed), d.Partitions},
		{"orders_col", OrdersHeader, orders, d.Partitions},
		{"lineitem_col", LineitemHeader, GenLineitems(d.SF, d.Seed, orders), d.Partitions},
		{"part_col", PartHeader, GenParts(d.SF, d.Seed), d.Partitions},
	}
	for _, s := range steps {
		schema := SchemaFor(s.header)
		typed, err := typedRows(schema, s.rows)
		if err != nil {
			return d, err
		}
		groupRows := len(typed)/s.parts/4 + 1
		if err := engine.PartitionTableColumnar(st, d.Bucket, s.table, schema, typed,
			s.parts, groupRows, true); err != nil {
			return d, fmt.Errorf("tpch: loading %s: %w", s.table, err)
		}
	}
	return d, nil
}
