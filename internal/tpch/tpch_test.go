package tpch

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"pushdowndb/internal/engine"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/store"
)

func testDB(t *testing.T, sf float64) *engine.DB {
	t.Helper()
	st := store.New()
	ds, err := Load(context.Background(), st, Dataset{SF: sf, Seed: 42, Bucket: "tpch", Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	db, err := engine.Open(ds.Bucket, engine.WithBackend("s3sim", s3api.NewInProc(st)))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSizesFor(t *testing.T) {
	s := SizesFor(1)
	if s.Customers != 150_000 || s.Orders != 1_500_000 || s.Parts != 200_000 || s.Suppliers != 10_000 {
		t.Errorf("SF=1 sizes wrong: %+v", s)
	}
	tiny := SizesFor(0.000001)
	if tiny.Customers < 1 || tiny.Orders < 1 {
		t.Error("sizes must be at least 1")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := GenCustomers(0.001, 7)
	b := GenCustomers(0.001, 7)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed must generate identical data")
	}
	c := GenCustomers(0.001, 8)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds should differ")
	}
}

func TestCustomerDistributions(t *testing.T) {
	rows := GenCustomers(0.01, 1)
	if len(rows) != 1500 {
		t.Fatalf("rows = %d", len(rows))
	}
	segs := map[string]int{}
	var below float64
	for _, r := range rows {
		if len(r) != len(CustomerHeader) {
			t.Fatalf("row arity %d", len(r))
		}
		segs[r[6]]++
		var bal float64
		fmt.Sscanf(r[5], "%f", &bal)
		if bal < -999.99 || bal > 9999.99 {
			t.Fatalf("acctbal %v out of spec range", bal)
		}
		if bal <= -950 {
			below++
		}
	}
	if len(segs) != 5 {
		t.Errorf("mktsegments = %v", segs)
	}
	// P(acctbal <= -950) = 50/11000 ~ 0.0045; allow generous tolerance.
	frac := below / float64(len(rows))
	if frac > 0.02 {
		t.Errorf("acctbal <= -950 fraction = %v, expected ~0.0045", frac)
	}
}

func TestOrdersDates(t *testing.T) {
	rows := GenOrders(0.001, 1)
	for _, r := range rows {
		d := r[4]
		if d < "1992-01-01" || d > "1998-08-02" {
			t.Fatalf("order date %s out of range", d)
		}
	}
	if DaysFromStart("1992-01-01") != 0 {
		t.Error("DaysFromStart epoch wrong")
	}
	if DaysFromStart("1992-01-31") != 30 {
		t.Errorf("DaysFromStart: %d", DaysFromStart("1992-01-31"))
	}
}

func TestLineitemsPerOrder(t *testing.T) {
	orders := GenOrders(0.001, 1)
	lines := GenLineitems(0.001, 1, orders)
	perOrder := map[string]int{}
	for _, l := range lines {
		perOrder[l[0]]++
		if len(l) != len(LineitemHeader) {
			t.Fatalf("lineitem arity %d", len(l))
		}
		// shipdate within 121 days of order date: spot-check format only.
		if !strings.Contains(l[10], "-") {
			t.Fatalf("bad shipdate %q", l[10])
		}
	}
	if len(perOrder) != len(orders) {
		t.Errorf("orders with lines = %d, want %d", len(perOrder), len(orders))
	}
	avg := float64(len(lines)) / float64(len(orders))
	if avg < 3 || avg > 5 {
		t.Errorf("avg lines per order = %v, want ~4", avg)
	}
	for k, n := range perOrder {
		if n < 1 || n > 7 {
			t.Fatalf("order %s has %d lines", k, n)
		}
	}
}

func TestPartsVocabulary(t *testing.T) {
	rows := GenParts(0.01, 1)
	brands := map[string]bool{}
	for _, r := range rows {
		if !strings.HasPrefix(r[3], "Brand#") {
			t.Fatalf("brand %q", r[3])
		}
		brands[r[3]] = true
		if len(strings.Fields(r[4])) != 3 {
			t.Fatalf("type %q", r[4])
		}
		if len(strings.Fields(r[6])) != 2 {
			t.Fatalf("container %q", r[6])
		}
	}
	if len(brands) != 25 {
		t.Errorf("distinct brands = %d, want 25", len(brands))
	}
}

func TestNationRegionFixed(t *testing.T) {
	if len(GenNations()) != 25 || len(GenRegions()) != 5 {
		t.Error("fixed tables wrong size")
	}
}

func TestLoadCreatesAllTables(t *testing.T) {
	st := store.New()
	ds, err := LoadWithIndexes(context.Background(), st, Dataset{SF: 0.001, Seed: 1, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, table := range []string{"customer", "orders", "lineitem", "part", "supplier", "nation", "region", "lineitem_index_l_extendedprice"} {
		if parts := st.TableParts(ds.Bucket, table); len(parts) == 0 {
			t.Errorf("table %s missing", table)
		}
	}
}

// relKey renders a relation into comparable sorted strings with numeric
// rounding (baseline and optimized paths legitimately differ in float
// summation order).
func relKey(rel *engine.Relation) []string {
	out := make([]string, 0, len(rel.Rows))
	for _, r := range rel.Rows {
		var parts []string
		for _, v := range r {
			if f, ok := v.Num(); ok && v.Kind() != 0 {
				parts = append(parts, fmt.Sprintf("%.2f", f))
				continue
			}
			parts = append(parts, v.String())
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

func TestQueriesBaselineVsOptimized(t *testing.T) {
	db := testDB(t, 0.002)
	for _, q := range Queries() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			base, be, err := q.Baseline(db)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			opt, oe, err := q.Optimized(db)
			if err != nil {
				t.Fatalf("optimized: %v", err)
			}
			if len(base.Rows) != len(opt.Rows) {
				t.Fatalf("row counts differ: baseline %d vs optimized %d\nbase:\n%s\nopt:\n%s",
					len(base.Rows), len(opt.Rows), base, opt)
			}
			bk, ok := relKey(base), relKey(opt)
			for i := range bk {
				if bk[i] != ok[i] {
					t.Errorf("row %d differs:\n  baseline  %s\n  optimized %s", i, bk[i], ok[i])
				}
			}
			// The optimized plan must move fewer bytes to the server.
			_, _, bRet, bGet := be.Metrics.Totals()
			_, _, oRet, oGet := oe.Metrics.Totals()
			if oRet+oGet >= bRet+bGet {
				t.Errorf("optimized moved %d bytes, baseline %d — pushdown ineffective",
					oRet+oGet, bRet+bGet)
			}
		})
	}
}

func TestQ6ValueIsPlausible(t *testing.T) {
	db := testDB(t, 0.002)
	rel, _, err := Q6Optimized(db)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := rel.Rows[0][0].Num()
	if !ok || math.IsNaN(v) || v <= 0 {
		t.Errorf("Q6 revenue = %v", rel.Rows[0][0])
	}
}

func TestQ1GroupCount(t *testing.T) {
	db := testDB(t, 0.002)
	rel, _, err := Q1Optimized(db)
	if err != nil {
		t.Fatal(err)
	}
	// A/F, N/F, N/O, R/F are the classic four groups.
	if len(rel.Rows) < 3 || len(rel.Rows) > 4 {
		t.Errorf("Q1 groups = %d, want 3-4:\n%s", len(rel.Rows), rel)
	}
	for _, r := range rel.Rows {
		cnt, _ := r[9].IntNum()
		avgQty, _ := r[6].Num()
		if cnt <= 0 || avgQty <= 0 || avgQty > 51 {
			t.Errorf("implausible Q1 row: %v", r)
		}
	}
}
