// Package tpch generates TPC-H tables (a dbgen stand-in), loads them into
// the simulated S3 store, and implements the paper's six evaluation
// queries (Q1, Q3, Q6, Q14, Q17, Q19) in both baseline and optimized form.
//
// The generator reproduces the schema and the distributions the paper's
// experiments depend on — uniform c_acctbal in [-999.99, 9999.99] (the
// Fig. 2 selectivity axis), uniform o_orderdate in [1992-01-01, 1998-08-02]
// (the Fig. 3 axis), 1–7 lineitems per order, TPC-H brand/container/type
// vocabularies — with deterministic seeding so experiments are exactly
// repeatable. Row counts scale linearly with the scale factor: SF=1 is
// 150k customers / 1.5M orders / ~6M lineitems, as in TPC-H.
package tpch

import (
	"fmt"
	"math/rand"
	"time"

	"pushdowndb/internal/value"
)

// Dates bounding o_orderdate per the TPC-H spec.
var (
	startDate = time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)
	endDate   = time.Date(1998, 8, 2, 0, 0, 0, 0, time.UTC)
)

const orderDateRangeDays = 2405 // days in [1992-01-01, 1998-08-02)

var (
	segments    = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities  = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipModes   = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	instructs   = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	types1      = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	types2      = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	types3      = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	containers1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
	containers2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}
	nations     = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
		"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
		"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
		"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
		"UNITED STATES",
	}
	regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	// nationRegion maps nation key to region key per the TPC-H seed data.
	nationRegion = []int{0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1}
)

// Sizes holds per-table row counts at a scale factor.
type Sizes struct {
	Customers int
	Orders    int
	Parts     int
	Suppliers int
}

// SizesFor returns TPC-H row counts at scale factor sf.
func SizesFor(sf float64) Sizes {
	atLeast := func(n int) int {
		if n < 1 {
			return 1
		}
		return n
	}
	return Sizes{
		Customers: atLeast(int(150_000 * sf)),
		Orders:    atLeast(int(1_500_000 * sf)),
		Parts:     atLeast(int(200_000 * sf)),
		Suppliers: atLeast(int(10_000 * sf)),
	}
}

func dateStr(days int) string {
	return startDate.AddDate(0, 0, days).Format("2006-01-02")
}

// DaysFromStart converts a YYYY-MM-DD date into days after 1992-01-01
// (used by experiments sweeping o_orderdate selectivity).
func DaysFromStart(date string) int {
	v, err := value.ParseDate(date)
	if err != nil {
		return 0
	}
	epochStart := startDate.Unix() / 86400
	return int(v.Days() - epochStart)
}

// retailPrice follows the TPC-H p_retailprice formula.
func retailPrice(partkey int) float64 {
	return float64(90000+((partkey%200001)/10)+100*(partkey%1000)) / 100
}

// CustomerHeader lists the customer columns.
var CustomerHeader = []string{
	"c_custkey", "c_name", "c_address", "c_nationkey", "c_phone",
	"c_acctbal", "c_mktsegment", "c_comment",
}

// GenCustomers generates the customer table at scale factor sf.
func GenCustomers(sf float64, seed int64) [][]string {
	n := SizesFor(sf).Customers
	rng := rand.New(rand.NewSource(seed ^ 0xC05))
	rows := make([][]string, n)
	for i := 0; i < n; i++ {
		key := i + 1
		nation := rng.Intn(25)
		rows[i] = []string{
			fmt.Sprint(key),
			fmt.Sprintf("Customer#%09d", key),
			randAddress(rng),
			fmt.Sprint(nation),
			randPhone(rng, nation),
			fmt.Sprintf("%.2f", -999.99+rng.Float64()*(9999.99+999.99)),
			segments[rng.Intn(len(segments))],
			randText(rng, 30),
		}
	}
	return rows
}

// OrdersHeader lists the orders columns.
var OrdersHeader = []string{
	"o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice",
	"o_orderdate", "o_orderpriority", "o_clerk", "o_shippriority", "o_comment",
}

// GenOrders generates the orders table. Each order's date is uniform over
// the spec's range; customers are drawn uniformly.
func GenOrders(sf float64, seed int64) [][]string {
	sizes := SizesFor(sf)
	rng := rand.New(rand.NewSource(seed ^ 0x0DE5))
	rows := make([][]string, sizes.Orders)
	for i := 0; i < sizes.Orders; i++ {
		key := i + 1
		days := rng.Intn(orderDateRangeDays)
		status := "F"
		if days > orderDateRangeDays-365 {
			status = "O"
		} else if rng.Intn(20) == 0 {
			status = "P"
		}
		rows[i] = []string{
			fmt.Sprint(key),
			fmt.Sprint(rng.Intn(sizes.Customers) + 1),
			status,
			fmt.Sprintf("%.2f", 1000+rng.Float64()*450000),
			dateStr(days),
			priorities[rng.Intn(len(priorities))],
			fmt.Sprintf("Clerk#%09d", rng.Intn(1000)+1),
			"0",
			randText(rng, 24),
		}
	}
	return rows
}

// LineitemHeader lists the lineitem columns.
var LineitemHeader = []string{
	"l_orderkey", "l_partkey", "l_suppkey", "l_linenumber", "l_quantity",
	"l_extendedprice", "l_discount", "l_tax", "l_returnflag", "l_linestatus",
	"l_shipdate", "l_commitdate", "l_receiptdate", "l_shipinstruct",
	"l_shipmode", "l_comment",
}

// GenLineitems generates the lineitem table: 1..7 lines per order, ship
// dates 1..121 days after the order date, return flags and line statuses
// derived from the spec's date rules. The orders slice must come from
// GenOrders with the same sf (order dates are re-derived from it).
func GenLineitems(sf float64, seed int64, orders [][]string) [][]string {
	sizes := SizesFor(sf)
	rng := rand.New(rand.NewSource(seed ^ 0x11E1))
	cutoff, _ := value.ParseDate("1995-06-17")
	var rows [][]string
	for _, o := range orders {
		orderkey := o[0]
		odate, err := value.ParseDate(o[4])
		if err != nil {
			continue
		}
		lines := 1 + rng.Intn(7)
		for ln := 1; ln <= lines; ln++ {
			partkey := rng.Intn(sizes.Parts) + 1
			suppkey := rng.Intn(sizes.Suppliers) + 1
			qty := 1 + rng.Intn(50)
			price := float64(qty) * retailPrice(partkey)
			discount := float64(rng.Intn(11)) / 100
			tax := float64(rng.Intn(9)) / 100
			shipDays := odate.Days() + int64(1+rng.Intn(121))
			commitDays := odate.Days() + int64(30+rng.Intn(61))
			receiptDays := shipDays + int64(1+rng.Intn(30))
			returnflag := "N"
			if receiptDays <= cutoff.Days() {
				if rng.Intn(2) == 0 {
					returnflag = "R"
				} else {
					returnflag = "A"
				}
			}
			linestatus := "O"
			if shipDays <= cutoff.Days() {
				linestatus = "F"
			}
			rows = append(rows, []string{
				orderkey,
				fmt.Sprint(partkey),
				fmt.Sprint(suppkey),
				fmt.Sprint(ln),
				fmt.Sprint(qty),
				fmt.Sprintf("%.2f", price),
				fmt.Sprintf("%.2f", discount),
				fmt.Sprintf("%.2f", tax),
				returnflag,
				linestatus,
				value.FormatDays(shipDays),
				value.FormatDays(commitDays),
				value.FormatDays(receiptDays),
				instructs[rng.Intn(len(instructs))],
				shipModes[rng.Intn(len(shipModes))],
				randText(rng, 16),
			})
		}
	}
	return rows
}

// PartHeader lists the part columns.
var PartHeader = []string{
	"p_partkey", "p_name", "p_mfgr", "p_brand", "p_type", "p_size",
	"p_container", "p_retailprice", "p_comment",
}

// GenParts generates the part table with the spec's brand/type/container
// vocabularies.
func GenParts(sf float64, seed int64) [][]string {
	n := SizesFor(sf).Parts
	rng := rand.New(rand.NewSource(seed ^ 0x9A27))
	rows := make([][]string, n)
	for i := 0; i < n; i++ {
		key := i + 1
		mfgr := rng.Intn(5) + 1
		brand := mfgr*10 + rng.Intn(5) + 1
		rows[i] = []string{
			fmt.Sprint(key),
			randPartName(rng),
			fmt.Sprintf("Manufacturer#%d", mfgr),
			fmt.Sprintf("Brand#%d", brand),
			types1[rng.Intn(len(types1))] + " " + types2[rng.Intn(len(types2))] + " " + types3[rng.Intn(len(types3))],
			fmt.Sprint(1 + rng.Intn(50)),
			containers1[rng.Intn(len(containers1))] + " " + containers2[rng.Intn(len(containers2))],
			fmt.Sprintf("%.2f", retailPrice(key)),
			randText(rng, 10),
		}
	}
	return rows
}

// SupplierHeader lists the supplier columns.
var SupplierHeader = []string{
	"s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone", "s_acctbal", "s_comment",
}

// GenSuppliers generates the supplier table.
func GenSuppliers(sf float64, seed int64) [][]string {
	n := SizesFor(sf).Suppliers
	rng := rand.New(rand.NewSource(seed ^ 0x5CDD))
	rows := make([][]string, n)
	for i := 0; i < n; i++ {
		key := i + 1
		nation := rng.Intn(25)
		rows[i] = []string{
			fmt.Sprint(key),
			fmt.Sprintf("Supplier#%09d", key),
			randAddress(rng),
			fmt.Sprint(nation),
			randPhone(rng, nation),
			fmt.Sprintf("%.2f", -999.99+rng.Float64()*(9999.99+999.99)),
			randText(rng, 20),
		}
	}
	return rows
}

// NationHeader lists the nation columns.
var NationHeader = []string{"n_nationkey", "n_name", "n_regionkey", "n_comment"}

// GenNations returns the 25 fixed nations.
func GenNations() [][]string {
	rows := make([][]string, len(nations))
	for i, n := range nations {
		rows[i] = []string{fmt.Sprint(i), n, fmt.Sprint(nationRegion[i]), "fixed nation"}
	}
	return rows
}

// RegionHeader lists the region columns.
var RegionHeader = []string{"r_regionkey", "r_name", "r_comment"}

// GenRegions returns the 5 fixed regions.
func GenRegions() [][]string {
	rows := make([][]string, len(regions))
	for i, r := range regions {
		rows[i] = []string{fmt.Sprint(i), r, "fixed region"}
	}
	return rows
}
