package tpch

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pushdowndb/internal/engine"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/store"
)

// TPC-H golden-answer regression: a scale-tiny generated dataset with
// checked-in expected results for the SQL-front-end query set, executed
// through concurrent QueryContext calls sharing one DB with the result
// cache on. Under -race this hammers the cache's locking; the goldens pin
// the answers byte-for-byte so neither caching, planning changes nor
// worker-pool reshuffles can silently move a result.
//
// Regenerate with: go test ./internal/tpch -run TestGoldenQueries -update

var updateGolden = flag.Bool("update", false, "rewrite the TPC-H golden files")

// goldenQueries is the SQL query set: the paper's TPC-H subset where it is
// expressible through the SQL front end (Q1, Q3, Q6, Q14, Q19; Q17's
// correlated subquery is not SQL-front-end expressible).
var goldenQueries = []struct{ name, sql string }{
	{"q1", "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, " +
		"SUM(l_extendedprice) AS sum_base_price, " +
		"SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price, " +
		"SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, " +
		"AVG(l_quantity) AS avg_qty, AVG(l_extendedprice) AS avg_price, " +
		"AVG(l_discount) AS avg_disc, COUNT(*) AS count_order " +
		"FROM lineitem WHERE l_shipdate <= '1998-09-02' " +
		"GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus"},
	{"q3", "SELECT l_orderkey, SUM(l_extendedprice * (1 - l_discount)) AS revenue, " +
		"o_orderdate, o_shippriority " +
		"FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey " +
		"JOIN lineitem l ON o.o_orderkey = l.l_orderkey " +
		"WHERE c.c_mktsegment = 'BUILDING' AND o.o_orderdate < '1995-03-15' AND l.l_shipdate > '1995-03-15' " +
		"GROUP BY l_orderkey, o_orderdate, o_shippriority " +
		"ORDER BY revenue DESC, o_orderdate LIMIT 10"},
	{"q6", "SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem " +
		"WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01' " +
		"AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24"},
	{"q14", "SELECT 100.0 * SUM(CASE WHEN p_type LIKE 'PROMO%' THEN l_extendedprice * (1 - l_discount) ELSE 0 END) " +
		"/ SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue " +
		"FROM lineitem l JOIN part p ON l.l_partkey = p.p_partkey " +
		"WHERE l.l_shipdate >= '1995-09-01' AND l.l_shipdate < '1995-10-01'"},
	{"q19", "SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue " +
		"FROM lineitem l JOIN part p ON l.l_partkey = p.p_partkey " +
		"WHERE l.l_shipmode IN ('AIR', 'AIR REG') AND l.l_shipinstruct = 'DELIVER IN PERSON' " +
		"AND l.l_quantity BETWEEN 1 AND 30 " +
		"AND ((p.p_brand = 'Brand#12' AND l.l_quantity BETWEEN 1 AND 11) " +
		"OR (p.p_brand = 'Brand#23' AND l.l_quantity BETWEEN 10 AND 20) " +
		"OR (p.p_brand = 'Brand#34' AND l.l_quantity BETWEEN 20 AND 30))"},
}

// goldenDB builds the tiny deterministic dataset behind a counting backend
// with the result cache enabled.
func goldenDB(t *testing.T) (*engine.DB, *s3api.Counting) {
	t.Helper()
	st := store.New()
	ds, err := Load(context.Background(), st, Dataset{SF: 0.002, Seed: 42, Bucket: "tpch", Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	counting := s3api.NewCounting(s3api.NewInProc(st))
	db, err := engine.Open(ds.Bucket,
		engine.WithBackend("s3sim", counting),
		engine.WithResultCache(64<<20))
	if err != nil {
		t.Fatal(err)
	}
	return db, counting
}

func renderGolden(rel *engine.Relation) string {
	var b strings.Builder
	b.WriteString(strings.Join(rel.Cols, "|"))
	b.WriteByte('\n')
	for _, row := range rel.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		b.WriteString(strings.Join(parts, "|"))
		b.WriteByte('\n')
	}
	return b.String()
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".golden")
}

func TestGoldenQueries(t *testing.T) {
	db, _ := goldenDB(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range goldenQueries {
		t.Run(q.name, func(t *testing.T) {
			rel, _, err := db.QueryContext(context.Background(), q.sql)
			if err != nil {
				t.Fatal(err)
			}
			got := renderGolden(rel)
			if *updateGolden {
				if err := os.WriteFile(goldenPath(q.name), []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath(q.name))
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("answer drifted from golden\ngot:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// TestGoldenQueriesConcurrent runs the whole query set from many
// goroutines sharing one DB — every result must still match its golden,
// cold or warm, and the warm tail must be served with zero backend Select
// requests. Run under -race this is the locking stress test for the result
// cache, the stats cache and the metrics.
func TestGoldenQueriesConcurrent(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens are being rewritten")
	}
	db, counting := goldenDB(t)
	want := map[string]string{}
	for _, q := range goldenQueries {
		data, err := os.ReadFile(goldenPath(q.name))
		if err != nil {
			t.Fatalf("missing golden (regenerate with -update): %v", err)
		}
		want[q.name] = string(data)
	}

	const rounds = 4
	run := func() error {
		var wg sync.WaitGroup
		errs := make(chan error, len(goldenQueries)*rounds)
		for _, q := range goldenQueries {
			for r := 0; r < rounds; r++ {
				wg.Add(1)
				go func(name, sql string) {
					defer wg.Done()
					rel, _, err := db.QueryContext(context.Background(), sql)
					if err != nil {
						errs <- fmt.Errorf("%s: %w", name, err)
						return
					}
					if got := renderGolden(rel); got != want[name] {
						errs <- fmt.Errorf("%s: concurrent answer drifted\ngot:\n%s\nwant:\n%s", name, got, want[name])
					}
				}(q.name, q.sql)
			}
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return err
		}
		return nil
	}
	if err := run(); err != nil { // cold: fills caches concurrently
		t.Fatal(err)
	}
	before := counting.Selects()
	if err := run(); err != nil { // warm: everything resident
		t.Fatal(err)
	}
	if d := counting.Selects() - before; d != 0 {
		t.Errorf("warm concurrent round issued %d backend Select requests, want 0", d)
	}
}
