package tpch

import (
	"context"
	"os"
	"testing"

	"pushdowndb/internal/engine"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/store"
)

// Vectorized-vs-row differential over the TPC-H goldens: the same query set
// on the same dataset must render byte-identically through the vectorized
// local operators (the default goldenDB path, which TestGoldenQueries
// already pins against checked-in answers) and through the row-at-a-time
// path, cold and warm. Under -race this also exercises the vec kernels'
// span-parallel bitmap writes on real query shapes.
func TestGoldenVecRowDifferential(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens are being rewritten")
	}
	st := store.New()
	ds, err := Load(context.Background(), st, Dataset{SF: 0.002, Seed: 42, Bucket: "tpch", Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	open := func(vectorized bool) *engine.DB {
		db, err := engine.Open(ds.Bucket,
			engine.WithBackend("s3sim", s3api.NewInProc(st)),
			engine.WithResultCache(64<<20),
			engine.WithVectorized(vectorized))
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	dbVec, dbRow := open(true), open(false)
	for _, q := range goldenQueries {
		t.Run(q.name, func(t *testing.T) {
			want, err := os.ReadFile(goldenPath(q.name))
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			for _, pass := range []string{"cold", "warm"} {
				vecRel, _, err := dbVec.QueryContext(context.Background(), q.sql)
				if err != nil {
					t.Fatalf("vec %s: %v", pass, err)
				}
				rowRel, _, err := dbRow.QueryContext(context.Background(), q.sql)
				if err != nil {
					t.Fatalf("row %s: %v", pass, err)
				}
				vecOut, rowOut := renderGolden(vecRel), renderGolden(rowRel)
				if vecOut != rowOut {
					t.Errorf("%s: vectorized differs from row path\nvec:\n%s\nrow:\n%s", pass, vecOut, rowOut)
				}
				if vecOut != string(want) {
					t.Errorf("%s: vectorized answer drifted from golden\ngot:\n%s\nwant:\n%s", pass, vecOut, want)
				}
			}
		})
	}
}
