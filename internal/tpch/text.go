package tpch

import (
	"math/rand"
	"strings"
)

// Word lists for the dbgen-style pseudo text and part names.
var (
	nouns = []string{
		"packages", "requests", "accounts", "deposits", "foxes", "ideas",
		"theodolites", "pinto beans", "instructions", "dependencies",
		"excuses", "platelets", "asymptotes", "courts", "dolphins",
	}
	verbs = []string{
		"sleep", "wake", "nag", "haggle", "cajole", "detect", "integrate",
		"snooze", "doze", "boost", "engage", "affix", "use", "doubt",
	}
	adjectives = []string{
		"furious", "sly", "careful", "blithe", "quick", "fluffy", "slow",
		"quiet", "ruthless", "thin", "close", "dogged", "bold", "ironic",
	}
	partAdjs = []string{
		"almond", "antique", "aquamarine", "azure", "beige", "bisque",
		"black", "blanched", "blue", "blush", "brown", "burlywood",
		"chartreuse", "chiffon", "chocolate", "coral", "cornflower",
	}
)

// randText produces dbgen-flavoured filler text of roughly maxWords words.
func randText(rng *rand.Rand, maxWords int) string {
	n := 3 + rng.Intn(maxWords)
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		switch i % 3 {
		case 0:
			b.WriteString(adjectives[rng.Intn(len(adjectives))])
		case 1:
			b.WriteString(nouns[rng.Intn(len(nouns))])
		default:
			b.WriteString(verbs[rng.Intn(len(verbs))])
		}
	}
	return b.String()
}

// randPartName produces a part name: five space-separated colour words.
func randPartName(rng *rand.Rand) string {
	parts := make([]string, 5)
	for i := range parts {
		parts[i] = partAdjs[rng.Intn(len(partAdjs))]
	}
	return strings.Join(parts, " ")
}

const addressChars = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ,"

// randAddress produces a random address string.
func randAddress(rng *rand.Rand) string {
	n := 10 + rng.Intn(25)
	b := make([]byte, n)
	for i := range b {
		b[i] = addressChars[rng.Intn(len(addressChars))]
	}
	return strings.TrimSpace(string(b))
}

// randPhone produces the spec's phone format CC-DDD-DDD-DDDD where CC is
// 10 + nationkey.
func randPhone(rng *rand.Rand, nation int) string {
	digits := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('0' + rng.Intn(10))
		}
		return string(b)
	}
	cc := 10 + nation
	return strings.Join([]string{itoa2(cc), digits(3), digits(3), digits(4)}, "-")
}

func itoa2(n int) string {
	return string([]byte{byte('0' + n/10), byte('0' + n%10)})
}
