package tpch

import (
	"testing"
)

func TestExtendedQueriesBaselineVsOptimized(t *testing.T) {
	db := testDB(t, 0.002)
	for _, q := range ExtendedQueries() {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			base, be, err := q.Baseline(db)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			opt, oe, err := q.Optimized(db)
			if err != nil {
				t.Fatalf("optimized: %v", err)
			}
			if len(base.Rows) != len(opt.Rows) {
				t.Fatalf("row counts differ: %d vs %d\nbase:\n%s\nopt:\n%s",
					len(base.Rows), len(opt.Rows), base, opt)
			}
			bk, ok := relKey(base), relKey(opt)
			for i := range bk {
				if bk[i] != ok[i] {
					t.Errorf("row %d:\n  baseline  %s\n  optimized %s", i, bk[i], ok[i])
				}
			}
			_, _, bRet, bGet := be.Metrics.Totals()
			_, _, oRet, oGet := oe.Metrics.Totals()
			if oRet+oGet >= bRet+bGet {
				t.Errorf("optimized moved %d bytes, baseline %d", oRet+oGet, bRet+bGet)
			}
		})
	}
}

func TestQ4SemiJoinCountsOrdersOnce(t *testing.T) {
	// An order with several qualifying lineitems must count once (EXISTS
	// semantics, not join multiplicity).
	db := testDB(t, 0.002)
	rel, _, err := Q4Optimized(db)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range rel.Rows {
		n, _ := r[1].IntNum()
		if n <= 0 {
			t.Errorf("non-positive priority count: %v", r)
		}
		total += n
	}
	// Compare with the number of distinct qualifying orders.
	e := db.NewExec()
	ords, err := e.SelectRows("check", e.NextStage(), "orders",
		"SELECT o_orderkey FROM S3Object WHERE "+q4OrdersFilter)
	if err != nil {
		t.Fatal(err)
	}
	if total > int64(len(ords.Rows)) {
		t.Errorf("semi-join counted %d orders, only %d qualify by date", total, len(ords.Rows))
	}
}

func TestQ12HighPlusLowEqualsJoin(t *testing.T) {
	db := testDB(t, 0.002)
	rel, _, err := Q12Optimized(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) == 0 || len(rel.Rows) > 2 {
		t.Fatalf("Q12 ship modes = %d (want 1-2: MAIL, SHIP)", len(rel.Rows))
	}
	for _, r := range rel.Rows {
		mode := r[0].String()
		if mode != "MAIL" && mode != "SHIP" {
			t.Errorf("unexpected ship mode %q", mode)
		}
		hi, _ := r[1].IntNum()
		lo, _ := r[2].IntNum()
		if hi < 0 || lo < 0 || hi+lo == 0 {
			t.Errorf("implausible counts for %s: %d/%d", mode, hi, lo)
		}
	}
}

func TestQ10LimitAndOrdering(t *testing.T) {
	db := testDB(t, 0.002)
	rel, _, err := Q10Optimized(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) > 20 {
		t.Fatalf("Q10 must return at most 20 rows, got %d", len(rel.Rows))
	}
	ri := rel.ColIndex("revenue")
	for i := 1; i < len(rel.Rows); i++ {
		a, _ := rel.Rows[i-1][ri].Num()
		b, _ := rel.Rows[i][ri].Num()
		if a < b {
			t.Fatalf("Q10 not sorted by revenue desc at %d", i)
		}
	}
}
