package tpch

import (
	"context"
	"fmt"

	"pushdowndb/internal/engine"
	"pushdowndb/internal/store"
)

// Dataset describes one generated TPC-H instance.
type Dataset struct {
	// SF is the TPC-H scale factor (the paper uses 10; tests use much
	// smaller values — selectivities are scale-invariant).
	SF float64
	// Seed makes generation deterministic.
	Seed int64
	// Bucket receives the table objects.
	Bucket string
	// Partitions is the object count per large table (the paper
	// partitions each table for parallel loading; 32 matches the paper's
	// compute parallelism).
	Partitions int
}

// WithDefaults fills unset fields.
func (d Dataset) WithDefaults() Dataset {
	if d.SF <= 0 {
		d.SF = 0.01
	}
	if d.Bucket == "" {
		d.Bucket = "tpch"
	}
	if d.Partitions <= 0 {
		d.Partitions = 32
	}
	return d
}

// Load generates every TPC-H table at the dataset's scale factor and
// writes the partitioned CSV objects into the store. Canceling ctx stops
// the load between tables.
func Load(ctx context.Context, st *store.Store, d Dataset) (Dataset, error) {
	d = d.WithDefaults()
	orders := GenOrders(d.SF, d.Seed)
	steps := []struct {
		table  string
		header []string
		rows   [][]string
		parts  int
	}{
		{"customer", CustomerHeader, GenCustomers(d.SF, d.Seed), d.Partitions},
		{"orders", OrdersHeader, orders, d.Partitions},
		{"lineitem", LineitemHeader, GenLineitems(d.SF, d.Seed, orders), d.Partitions},
		{"part", PartHeader, GenParts(d.SF, d.Seed), d.Partitions},
		{"supplier", SupplierHeader, GenSuppliers(d.SF, d.Seed), 1},
		{"nation", NationHeader, GenNations(), 1},
		{"region", RegionHeader, GenRegions(), 1},
	}
	for _, s := range steps {
		if err := engine.PartitionTable(ctx, st, d.Bucket, s.table, s.header, s.rows, s.parts); err != nil {
			return d, fmt.Errorf("tpch: loading %s: %w", s.table, err)
		}
	}
	return d, nil
}

// LoadWithIndexes loads the dataset and builds the index tables the
// Fig. 1 indexing experiment needs (lineitem.l_extendedprice).
func LoadWithIndexes(ctx context.Context, st *store.Store, d Dataset) (Dataset, error) {
	d, err := Load(ctx, st, d)
	if err != nil {
		return d, err
	}
	if err := engine.BuildIndexTable(st, d.Bucket, "lineitem", "l_extendedprice"); err != nil {
		return d, err
	}
	return d, nil
}
