package tpch

import (
	"fmt"

	"pushdowndb/internal/engine"
	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/value"
)

// QueryFunc executes one query against a DB and returns the result plus
// the execution context carrying the virtual clock and cost.
type QueryFunc func(db *engine.DB) (*engine.Relation, *engine.Exec, error)

// Query pairs the baseline (no S3 Select) and optimized (pushdown)
// implementations of one TPC-H query, as compared in Fig. 10.
type Query struct {
	Name      string
	Baseline  QueryFunc
	Optimized QueryFunc
}

// Queries returns the paper's TPC-H subset: Q1, Q3, Q6, Q14, Q17, Q19.
func Queries() []Query {
	return []Query{
		{Name: "Q1", Baseline: Q1Baseline, Optimized: Q1Optimized},
		{Name: "Q3", Baseline: Q3Baseline, Optimized: Q3Optimized},
		{Name: "Q6", Baseline: Q6Baseline, Optimized: Q6Optimized},
		{Name: "Q14", Baseline: Q14Baseline, Optimized: Q14Optimized},
		{Name: "Q17", Baseline: Q17Baseline, Optimized: Q17Optimized},
		{Name: "Q19", Baseline: Q19Baseline, Optimized: Q19Optimized},
	}
}

// --- Q1: pricing summary report ---

const q1Filter = "l_shipdate <= '1998-09-02'" // 1998-12-01 minus 90 days

const q1Items = `l_returnflag, l_linestatus,
	SUM(l_quantity) AS sum_qty,
	SUM(l_extendedprice) AS sum_base_price,
	SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
	SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
	AVG(l_quantity) AS avg_qty,
	AVG(l_extendedprice) AS avg_price,
	AVG(l_discount) AS avg_disc,
	COUNT(*) AS count_order`

// Q1Baseline loads lineitem in full and evaluates everything locally.
func Q1Baseline(db *engine.DB) (*engine.Relation, *engine.Exec, error) {
	e := db.NewExec()
	rel, err := e.LoadTable("load lineitem", e.NextStage(), "lineitem")
	if err != nil {
		return nil, e, err
	}
	rel, err = engine.FilterLocal(rel, q1Filter)
	if err != nil {
		return nil, e, err
	}
	out, err := engine.GroupByLocal(rel, "l_returnflag, l_linestatus", q1Items)
	if err != nil {
		return nil, e, err
	}
	out, err = engine.SortLocal(out, "l_returnflag, l_linestatus")
	return out, e, err
}

// Q1Optimized pushes the filter and the per-group SUM/COUNT aggregates to
// S3 using the S3-side group-by over the composite (returnflag, linestatus)
// key; the averages are recovered from the pushed sums and counts.
func Q1Optimized(db *engine.DB) (*engine.Relation, *engine.Exec, error) {
	e := db.NewExec()
	aggs := []engine.GroupAgg{
		{Func: sqlparse.AggSum, Expr: "l_quantity", As: "sum_qty"},
		{Func: sqlparse.AggSum, Expr: "l_extendedprice", As: "sum_base_price"},
		{Func: sqlparse.AggSum, Expr: "l_extendedprice * (1 - l_discount)", As: "sum_disc_price"},
		{Func: sqlparse.AggSum, Expr: "l_extendedprice * (1 - l_discount) * (1 + l_tax)", As: "sum_charge"},
		{Func: sqlparse.AggSum, Expr: "l_discount", As: "sum_disc"},
		{Func: sqlparse.AggCount, As: "count_order"},
	}
	grouped, err := e.S3SideGroupBy("lineitem", "l_returnflag || l_linestatus", aggs, q1Filter)
	if err != nil {
		return nil, e, err
	}
	out := &engine.Relation{Cols: []string{
		"l_returnflag", "l_linestatus", "sum_qty", "sum_base_price",
		"sum_disc_price", "sum_charge", "avg_qty", "avg_price", "avg_disc",
		"count_order",
	}}
	for _, r := range grouped.Rows {
		key := r[0].String()
		if len(key) != 2 {
			return nil, e, fmt.Errorf("tpch: unexpected Q1 group key %q", key)
		}
		num := func(v value.Value) float64 { f, _ := v.Num(); return f }
		count := num(r[6])
		if count == 0 {
			continue
		}
		out.Rows = append(out.Rows, engine.Row{
			value.Str(key[:1]), value.Str(key[1:]),
			r[1], r[2], r[3], r[4],
			value.Float(num(r[1]) / count),
			value.Float(num(r[2]) / count),
			value.Float(num(r[5]) / count),
			value.Int(int64(count)),
		})
	}
	out, err = engine.SortLocal(out, "l_returnflag, l_linestatus")
	return out, e, err
}

// --- Q3: shipping priority ---

const (
	q3Segment   = "BUILDING"
	q3Date      = "1995-03-15"
	q3Revenue   = "SUM(l_extendedprice * (1 - l_discount)) AS revenue"
	q3GroupCols = "l_orderkey, o_orderdate, o_shippriority"
)

// Q3Baseline loads customer, orders and lineitem in full and runs both
// joins, the group-by and the top-10 locally.
func Q3Baseline(db *engine.DB) (*engine.Relation, *engine.Exec, error) {
	e := db.NewExec()
	stage := e.NextStage()
	var cust, ords, line *engine.Relation
	errs := make(chan error, 3)
	go func() { var err error; cust, err = e.LoadTable("load customer", stage, "customer"); errs <- err }()
	go func() { var err error; ords, err = e.LoadTable("load orders", stage, "orders"); errs <- err }()
	go func() { var err error; line, err = e.LoadTable("load lineitem", stage, "lineitem"); errs <- err }()
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			return nil, e, err
		}
	}
	var err error
	if cust, err = engine.FilterLocal(cust, "c_mktsegment = '"+q3Segment+"'"); err != nil {
		return nil, e, err
	}
	if ords, err = engine.FilterLocal(ords, "o_orderdate < '"+q3Date+"'"); err != nil {
		return nil, e, err
	}
	if line, err = engine.FilterLocal(line, "l_shipdate > '"+q3Date+"'"); err != nil {
		return nil, e, err
	}
	return q3Finish(e, cust, ords, line)
}

// Q3Optimized pushes the three selections to S3 and runs both joins as
// Bloom joins: customer keys filter the orders scan, then the surviving
// order keys filter the lineitem scan.
func Q3Optimized(db *engine.DB) (*engine.Relation, *engine.Exec, error) {
	e := db.NewExec()
	custOrders, err := e.BloomJoin(engine.JoinSpec{
		LeftTable: "customer", RightTable: "orders",
		LeftKey: "c_custkey", RightKey: "o_custkey",
		LeftFilter:   "c_mktsegment = '" + q3Segment + "'",
		RightFilter:  "o_orderdate < '" + q3Date + "'",
		LeftProject:  []string{"c_custkey"},
		RightProject: []string{"o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"},
		Seed:         3,
	})
	if err != nil {
		return nil, e, err
	}
	line, _, err := e.BloomProbe(custOrders, "o_orderkey", "lineitem", "l_orderkey",
		"l_shipdate > '"+q3Date+"'",
		[]string{"l_orderkey", "l_extendedprice", "l_discount"}, 0.01, false, 3)
	if err != nil {
		return nil, e, err
	}
	joined, err := engine.HashJoinLocal(custOrders, line, "o_orderkey", "l_orderkey")
	if err != nil {
		return nil, e, err
	}
	out, err := engine.GroupByLocal(joined, q3GroupCols, q3GroupCols+", "+q3Revenue)
	if err != nil {
		return nil, e, err
	}
	if out, err = engine.SortLocal(out, "revenue DESC, o_orderdate"); err != nil {
		return nil, e, err
	}
	return engine.LimitLocal(out, 10), e, nil
}

func q3Finish(e *engine.Exec, cust, ords, line *engine.Relation) (*engine.Relation, *engine.Exec, error) {
	co, err := engine.HashJoinLocal(cust, ords, "c_custkey", "o_custkey")
	if err != nil {
		return nil, e, err
	}
	col, err := engine.HashJoinLocal(co, line, "o_orderkey", "l_orderkey")
	if err != nil {
		return nil, e, err
	}
	out, err := engine.GroupByLocal(col, q3GroupCols, q3GroupCols+", "+q3Revenue)
	if err != nil {
		return nil, e, err
	}
	if out, err = engine.SortLocal(out, "revenue DESC, o_orderdate"); err != nil {
		return nil, e, err
	}
	return engine.LimitLocal(out, 10), e, nil
}

// --- Q6: forecasting revenue change ---

const q6Filter = "l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01'" +
	" AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24"

// Q6Baseline loads lineitem and filters/aggregates locally.
func Q6Baseline(db *engine.DB) (*engine.Relation, *engine.Exec, error) {
	e := db.NewExec()
	rel, err := e.LoadTable("load lineitem", e.NextStage(), "lineitem")
	if err != nil {
		return nil, e, err
	}
	if rel, err = engine.FilterLocal(rel, q6Filter); err != nil {
		return nil, e, err
	}
	out, err := engine.AggregateLocal(rel, "SUM(l_extendedprice * l_discount) AS revenue")
	return out, e, err
}

// Q6Optimized pushes the whole query (filter + aggregate) into S3 Select —
// the paper's ideal case.
func Q6Optimized(db *engine.DB) (*engine.Relation, *engine.Exec, error) {
	e := db.NewExec()
	row, err := e.SelectAgg("q6 pushdown", e.NextStage(), "lineitem",
		"SELECT SUM(l_extendedprice * l_discount) FROM S3Object WHERE "+q6Filter,
		[]sqlparse.AggFunc{sqlparse.AggSum})
	if err != nil {
		return nil, e, err
	}
	return &engine.Relation{Cols: []string{"revenue"}, Rows: []engine.Row{row}}, e, nil
}

// --- Q14: promotion effect ---

const (
	q14Filter = "l_shipdate >= '1995-09-01' AND l_shipdate < '1995-10-01'"
	q14Items  = "100.0 * SUM(CASE WHEN p_type LIKE 'PROMO%' THEN l_extendedprice * (1 - l_discount) ELSE 0 END)" +
		" / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue"
)

// Q14Baseline loads lineitem and part in full, joins and aggregates locally.
func Q14Baseline(db *engine.DB) (*engine.Relation, *engine.Exec, error) {
	e := db.NewExec()
	stage := e.NextStage()
	var line, part *engine.Relation
	errs := make(chan error, 2)
	go func() { var err error; line, err = e.LoadTable("load lineitem", stage, "lineitem"); errs <- err }()
	go func() { var err error; part, err = e.LoadTable("load part", stage, "part"); errs <- err }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			return nil, e, err
		}
	}
	line, err := engine.FilterLocal(line, q14Filter)
	if err != nil {
		return nil, e, err
	}
	joined, err := engine.HashJoinLocal(line, part, "l_partkey", "p_partkey")
	if err != nil {
		return nil, e, err
	}
	out, err := engine.AggregateLocal(joined, q14Items)
	return out, e, err
}

// Q14Optimized pushes the date filter and projection into the lineitem
// scan, then Bloom-filters the part scan with the surviving part keys.
func Q14Optimized(db *engine.DB) (*engine.Relation, *engine.Exec, error) {
	e := db.NewExec()
	line, err := e.SelectRows("q14 lineitem scan", e.NextStage(), "lineitem",
		"SELECT l_partkey, l_extendedprice, l_discount FROM S3Object WHERE "+q14Filter)
	if err != nil {
		return nil, e, err
	}
	part, _, err := e.BloomProbe(line, "l_partkey", "part", "p_partkey", "",
		[]string{"p_partkey", "p_type"}, 0.01, false, 14)
	if err != nil {
		return nil, e, err
	}
	joined, err := engine.HashJoinLocal(line, part, "l_partkey", "p_partkey")
	if err != nil {
		return nil, e, err
	}
	out, err := engine.AggregateLocal(joined, q14Items)
	return out, e, err
}

// --- Q17: small-quantity-order revenue ---

const q17PartFilter = "p_brand = 'Brand#23' AND p_container = 'MED BOX'"

// Q17Baseline loads part and lineitem in full and computes the correlated
// average locally.
func Q17Baseline(db *engine.DB) (*engine.Relation, *engine.Exec, error) {
	e := db.NewExec()
	stage := e.NextStage()
	var line, part *engine.Relation
	errs := make(chan error, 2)
	go func() { var err error; line, err = e.LoadTable("load lineitem", stage, "lineitem"); errs <- err }()
	go func() { var err error; part, err = e.LoadTable("load part", stage, "part"); errs <- err }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			return nil, e, err
		}
	}
	part, err := engine.FilterLocal(part, q17PartFilter)
	if err != nil {
		return nil, e, err
	}
	out, err := q17Finish(part, line)
	return out, e, err
}

// Q17Optimized pushes the part filter, then Bloom-filters the (huge)
// lineitem scan down to the matching part keys.
func Q17Optimized(db *engine.DB) (*engine.Relation, *engine.Exec, error) {
	e := db.NewExec()
	part, err := e.SelectRows("q17 part scan", e.NextStage(), "part",
		"SELECT p_partkey FROM S3Object WHERE "+q17PartFilter)
	if err != nil {
		return nil, e, err
	}
	line, _, err := e.BloomProbe(part, "p_partkey", "lineitem", "l_partkey", "",
		[]string{"l_partkey", "l_quantity", "l_extendedprice"}, 0.01, false, 17)
	if err != nil {
		return nil, e, err
	}
	out, err := q17Finish(part, line)
	return out, e, err
}

func q17Finish(part, line *engine.Relation) (*engine.Relation, error) {
	joined, err := engine.HashJoinLocal(part, line, "p_partkey", "l_partkey")
	if err != nil {
		return nil, err
	}
	avg, err := engine.GroupByLocal(joined, "p_partkey", "p_partkey AS avg_key, AVG(l_quantity) AS avg_qty")
	if err != nil {
		return nil, err
	}
	withAvg, err := engine.HashJoinLocal(joined, avg, "p_partkey", "avg_key")
	if err != nil {
		return nil, err
	}
	small, err := engine.FilterLocal(withAvg, "l_quantity < 0.2 * avg_qty")
	if err != nil {
		return nil, err
	}
	return engine.AggregateLocal(small, "SUM(l_extendedprice) / 7.0 AS avg_yearly")
}

// --- Q19: discounted revenue ---

const (
	q19LineFilter = "l_shipmode IN ('AIR', 'AIR REG') AND l_shipinstruct = 'DELIVER IN PERSON'" +
		" AND l_quantity BETWEEN 1 AND 30"
	q19PartFilter = "(p_brand = 'Brand#12' AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG') AND p_size BETWEEN 1 AND 5)" +
		" OR (p_brand = 'Brand#23' AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK') AND p_size BETWEEN 1 AND 10)" +
		" OR (p_brand = 'Brand#34' AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG') AND p_size BETWEEN 1 AND 15)"
	q19Residual = "(p_brand = 'Brand#12' AND l_quantity BETWEEN 1 AND 11)" +
		" OR (p_brand = 'Brand#23' AND l_quantity BETWEEN 10 AND 20)" +
		" OR (p_brand = 'Brand#34' AND l_quantity BETWEEN 20 AND 30)"
	q19Items = "SUM(l_extendedprice * (1 - l_discount)) AS revenue"
)

// Q19Baseline loads both tables and evaluates the whole disjunctive
// predicate locally.
func Q19Baseline(db *engine.DB) (*engine.Relation, *engine.Exec, error) {
	e := db.NewExec()
	stage := e.NextStage()
	var line, part *engine.Relation
	errs := make(chan error, 2)
	go func() { var err error; line, err = e.LoadTable("load lineitem", stage, "lineitem"); errs <- err }()
	go func() { var err error; part, err = e.LoadTable("load part", stage, "part"); errs <- err }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			return nil, e, err
		}
	}
	line, err := engine.FilterLocal(line, q19LineFilter)
	if err != nil {
		return nil, e, err
	}
	if part, err = engine.FilterLocal(part, q19PartFilter); err != nil {
		return nil, e, err
	}
	return q19Finish(e, part, line)
}

// Q19Optimized pushes both sides' filters; the filtered part keys Bloom-
// filter the lineitem scan; the brand/quantity correlation is checked
// locally as a residual.
func Q19Optimized(db *engine.DB) (*engine.Relation, *engine.Exec, error) {
	e := db.NewExec()
	part, err := e.SelectRows("q19 part scan", e.NextStage(), "part",
		"SELECT p_partkey, p_brand FROM S3Object WHERE "+q19PartFilter)
	if err != nil {
		return nil, e, err
	}
	line, _, err := e.BloomProbe(part, "p_partkey", "lineitem", "l_partkey",
		q19LineFilter,
		[]string{"l_partkey", "l_quantity", "l_extendedprice", "l_discount"}, 0.01, false, 19)
	if err != nil {
		return nil, e, err
	}
	return q19Finish(e, part, line)
}

func q19Finish(e *engine.Exec, part, line *engine.Relation) (*engine.Relation, *engine.Exec, error) {
	joined, err := engine.HashJoinLocal(part, line, "p_partkey", "l_partkey")
	if err != nil {
		return nil, e, err
	}
	matched, err := engine.FilterLocal(joined, q19Residual)
	if err != nil {
		return nil, e, err
	}
	out, err := engine.AggregateLocal(matched, q19Items)
	return out, e, err
}
