package tpch

import (
	"context"
	"os"
	"regexp"
	"strings"
	"testing"
)

// EXPLAIN ANALYZE golden for TPC-H Q3: the full annotated render —
// estimated vs. actual rows, per-step cost and bytes, the phase table and
// the billing totals — is pinned byte-for-byte. Everything in the render
// is virtual-clock deterministic except the single trailing wall line,
// which is masked before comparison.
//
// Regenerate with: go test ./internal/tpch -run TestExplainAnalyzeQ3Golden -update

var wallLine = regexp.MustCompile(`(?m)^wall: .*$`)

func TestExplainAnalyzeQ3Golden(t *testing.T) {
	db, _ := goldenDB(t)
	var q3 string
	for _, q := range goldenQueries {
		if q.name == "q3" {
			q3 = q.sql
		}
	}
	if q3 == "" {
		t.Fatal("q3 missing from goldenQueries")
	}
	text, e, err := db.ExplainAnalyze(context.Background(), q3)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity on the annotations before golden comparison: estimates AND
	// actuals on every join step.
	for _, want := range []string{"join plan (3 tables)", "rows:   est ~", "cost:   est", "bytes:  actual", "phases:", "totals:"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
	for i, st := range e.QueryPlan().Steps {
		if st.ActualRows < 0 || st.ActualSec <= 0 {
			t.Errorf("step %d actuals not filled: rows=%d sec=%v", i+1, st.ActualRows, st.ActualSec)
		}
	}

	got := wallLine.ReplaceAllString(text, "wall: <masked>")
	path := goldenPath("q3_explain")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("EXPLAIN ANALYZE drifted from golden\ngot:\n%s\nwant:\n%s", got, want)
	}
}
