package tpch

import (
	"pushdowndb/internal/engine"
)

// Extended queries beyond the paper's six: Q4, Q10 and Q12 exercise the
// same decompositions (Bloom semi-joins, selection/projection pushdown,
// multi-table pipelines) on query shapes the paper did not evaluate. They
// are not part of Fig. 10; ExtendedQueries exposes them for users and for
// the extended test suite.

// ExtendedQueries returns Q4, Q10 and Q12.
func ExtendedQueries() []Query {
	return []Query{
		{Name: "Q4", Baseline: Q4Baseline, Optimized: Q4Optimized},
		{Name: "Q10", Baseline: Q10Baseline, Optimized: Q10Optimized},
		{Name: "Q12", Baseline: Q12Baseline, Optimized: Q12Optimized},
	}
}

// --- Q4: order priority checking ---
//
// SELECT o_orderpriority, COUNT(*) FROM orders
// WHERE o_orderdate >= 1993-07-01 AND o_orderdate < 1993-10-01
//   AND EXISTS (SELECT * FROM lineitem
//               WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate)
// GROUP BY o_orderpriority ORDER BY o_orderpriority

const (
	q4OrdersFilter = "o_orderdate >= '1993-07-01' AND o_orderdate < '1993-10-01'"
	q4LineFilter   = "l_commitdate < l_receiptdate"
)

// Q4Baseline loads both tables and evaluates the semi-join locally.
func Q4Baseline(db *engine.DB) (*engine.Relation, *engine.Exec, error) {
	e := db.NewExec()
	stage := e.NextStage()
	var ords, line *engine.Relation
	errs := make(chan error, 2)
	go func() { var err error; ords, err = e.LoadTable("load orders", stage, "orders"); errs <- err }()
	go func() { var err error; line, err = e.LoadTable("load lineitem", stage, "lineitem"); errs <- err }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			return nil, e, err
		}
	}
	ords, err := engine.FilterLocal(ords, q4OrdersFilter)
	if err != nil {
		return nil, e, err
	}
	if line, err = engine.FilterLocal(line, q4LineFilter); err != nil {
		return nil, e, err
	}
	out, err := q4Finish(ords, line)
	return out, e, err
}

// Q4Optimized pushes the orders date filter, then Bloom-filters the
// lineitem scan to the qualifying order keys (a pushed semi-join).
func Q4Optimized(db *engine.DB) (*engine.Relation, *engine.Exec, error) {
	e := db.NewExec()
	ords, err := e.SelectRows("q4 orders scan", e.NextStage(), "orders",
		"SELECT o_orderkey, o_orderpriority FROM S3Object WHERE "+q4OrdersFilter)
	if err != nil {
		return nil, e, err
	}
	line, _, err := e.BloomProbe(ords, "o_orderkey", "lineitem", "l_orderkey",
		q4LineFilter, []string{"l_orderkey"}, 0.01, false, 4)
	if err != nil {
		return nil, e, err
	}
	out, err := q4Finish(ords, line)
	return out, e, err
}

func q4Finish(ords, line *engine.Relation) (*engine.Relation, error) {
	// Semi-join: orders with at least one qualifying lineitem.
	oi := line.ColIndex("l_orderkey")
	if oi < 0 {
		return nil, errMissing("l_orderkey", line)
	}
	hasLine := map[int64]bool{}
	for _, r := range line.Rows {
		if k, ok := r[oi].IntNum(); ok {
			hasLine[k] = true
		}
	}
	ki := ords.ColIndex("o_orderkey")
	if ki < 0 {
		return nil, errMissing("o_orderkey", ords)
	}
	matched := &engine.Relation{Cols: ords.Cols}
	for _, r := range ords.Rows {
		if k, ok := r[ki].IntNum(); ok && hasLine[k] {
			matched.Rows = append(matched.Rows, r)
		}
	}
	out, err := engine.GroupByLocal(matched, "o_orderpriority",
		"o_orderpriority, COUNT(*) AS order_count")
	if err != nil {
		return nil, err
	}
	return engine.SortLocal(out, "o_orderpriority")
}

// --- Q10: returned item reporting ---
//
// SELECT c_custkey, c_name, SUM(l_extendedprice*(1-l_discount)) AS revenue,
//        c_acctbal, n_name
// FROM customer, orders, lineitem, nation
// WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey
//   AND o_orderdate >= 1993-10-01 AND o_orderdate < 1994-01-01
//   AND l_returnflag = 'R' AND c_nationkey = n_nationkey
// GROUP BY c_custkey, c_name, c_acctbal, n_name
// ORDER BY revenue DESC LIMIT 20

const (
	q10OrdersFilter = "o_orderdate >= '1993-10-01' AND o_orderdate < '1994-01-01'"
	q10LineFilter   = "l_returnflag = 'R'"
	q10Group        = "c_custkey, c_name, c_acctbal, n_name"
	q10Items        = q10Group + ", SUM(l_extendedprice * (1 - l_discount)) AS revenue"
)

// Q10Baseline loads all four tables and runs the pipeline locally.
func Q10Baseline(db *engine.DB) (*engine.Relation, *engine.Exec, error) {
	e := db.NewExec()
	stage := e.NextStage()
	tables := []string{"customer", "orders", "lineitem", "nation"}
	rels := make([]*engine.Relation, len(tables))
	errs := make(chan error, len(tables))
	for i, table := range tables {
		i, table := i, table
		go func() {
			var err error
			rels[i], err = e.LoadTable("load "+table, stage, table)
			errs <- err
		}()
	}
	for range tables {
		if err := <-errs; err != nil {
			return nil, e, err
		}
	}
	ords, err := engine.FilterLocal(rels[1], q10OrdersFilter)
	if err != nil {
		return nil, e, err
	}
	line, err := engine.FilterLocal(rels[2], q10LineFilter)
	if err != nil {
		return nil, e, err
	}
	out, err := q10Finish(rels[0], ords, line, rels[3])
	return out, e, err
}

// Q10Optimized pushes both filters, Bloom-filters lineitem by the
// qualifying order keys and customer by the qualifying customer keys, and
// loads the tiny nation table directly.
func Q10Optimized(db *engine.DB) (*engine.Relation, *engine.Exec, error) {
	e := db.NewExec()
	ords, err := e.SelectRows("q10 orders scan", e.NextStage(), "orders",
		"SELECT o_orderkey, o_custkey FROM S3Object WHERE "+q10OrdersFilter)
	if err != nil {
		return nil, e, err
	}
	line, _, err := e.BloomProbe(ords, "o_orderkey", "lineitem", "l_orderkey",
		q10LineFilter, []string{"l_orderkey", "l_extendedprice", "l_discount"}, 0.01, false, 10)
	if err != nil {
		return nil, e, err
	}
	cust, _, err := e.BloomProbe(ords, "o_custkey", "customer", "c_custkey",
		"", []string{"c_custkey", "c_name", "c_acctbal", "c_nationkey"}, 0.01, false, 11)
	if err != nil {
		return nil, e, err
	}
	nation, err := e.LoadTable("load nation", e.NextStage(), "nation")
	if err != nil {
		return nil, e, err
	}
	out, err := q10Finish(cust, ords, line, nation)
	return out, e, err
}

func q10Finish(cust, ords, line, nation *engine.Relation) (*engine.Relation, error) {
	co, err := engine.HashJoinLocal(cust, ords, "c_custkey", "o_custkey")
	if err != nil {
		return nil, err
	}
	col, err := engine.HashJoinLocal(co, line, "o_orderkey", "l_orderkey")
	if err != nil {
		return nil, err
	}
	withNation, err := engine.HashJoinLocal(col, nation, "c_nationkey", "n_nationkey")
	if err != nil {
		return nil, err
	}
	out, err := engine.GroupByLocal(withNation, q10Group, q10Items)
	if err != nil {
		return nil, err
	}
	if out, err = engine.SortLocal(out, "revenue DESC, c_custkey"); err != nil {
		return nil, err
	}
	return engine.LimitLocal(out, 20), nil
}

// --- Q12: shipping modes and order priority ---
//
// SELECT l_shipmode,
//        SUM(CASE WHEN o_orderpriority IN ('1-URGENT','2-HIGH') THEN 1 ELSE 0 END) AS high_line_count,
//        SUM(CASE WHEN o_orderpriority NOT IN ('1-URGENT','2-HIGH') THEN 1 ELSE 0 END) AS low_line_count
// FROM orders, lineitem
// WHERE o_orderkey = l_orderkey AND l_shipmode IN ('MAIL','SHIP')
//   AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate
//   AND l_receiptdate >= 1994-01-01 AND l_receiptdate < 1995-01-01
// GROUP BY l_shipmode ORDER BY l_shipmode

const (
	q12LineFilter = "l_shipmode IN ('MAIL', 'SHIP') AND l_commitdate < l_receiptdate" +
		" AND l_shipdate < l_commitdate AND l_receiptdate >= '1994-01-01'" +
		" AND l_receiptdate < '1995-01-01'"
	q12Items = "l_shipmode, " +
		"SUM(CASE WHEN o_orderpriority IN ('1-URGENT', '2-HIGH') THEN 1 ELSE 0 END) AS high_line_count, " +
		"SUM(CASE WHEN o_orderpriority NOT IN ('1-URGENT', '2-HIGH') THEN 1 ELSE 0 END) AS low_line_count"
)

// Q12Baseline loads both tables and evaluates everything locally.
func Q12Baseline(db *engine.DB) (*engine.Relation, *engine.Exec, error) {
	e := db.NewExec()
	stage := e.NextStage()
	var ords, line *engine.Relation
	errs := make(chan error, 2)
	go func() { var err error; ords, err = e.LoadTable("load orders", stage, "orders"); errs <- err }()
	go func() { var err error; line, err = e.LoadTable("load lineitem", stage, "lineitem"); errs <- err }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			return nil, e, err
		}
	}
	line, err := engine.FilterLocal(line, q12LineFilter)
	if err != nil {
		return nil, e, err
	}
	out, err := q12Finish(ords, line)
	return out, e, err
}

// Q12Optimized pushes the multi-column lineitem filter (including the
// cross-column date comparisons), then Bloom-filters the orders scan.
func Q12Optimized(db *engine.DB) (*engine.Relation, *engine.Exec, error) {
	e := db.NewExec()
	line, err := e.SelectRows("q12 lineitem scan", e.NextStage(), "lineitem",
		"SELECT l_orderkey, l_shipmode FROM S3Object WHERE "+q12LineFilter)
	if err != nil {
		return nil, e, err
	}
	ords, _, err := e.BloomProbe(line, "l_orderkey", "orders", "o_orderkey",
		"", []string{"o_orderkey", "o_orderpriority"}, 0.01, false, 12)
	if err != nil {
		return nil, e, err
	}
	out, err := q12Finish(ords, line)
	return out, e, err
}

func q12Finish(ords, line *engine.Relation) (*engine.Relation, error) {
	joined, err := engine.HashJoinLocal(ords, line, "o_orderkey", "l_orderkey")
	if err != nil {
		return nil, err
	}
	out, err := engine.GroupByLocal(joined, "l_shipmode", q12Items)
	if err != nil {
		return nil, err
	}
	return engine.SortLocal(out, "l_shipmode")
}

type missingColumnError struct {
	col  string
	cols []string
}

func (e *missingColumnError) Error() string {
	return "tpch: column " + e.col + " not found in relation"
}

func errMissing(col string, rel *engine.Relation) error {
	return &missingColumnError{col: col, cols: rel.Cols}
}
