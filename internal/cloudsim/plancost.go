package cloudsim

import "math"

// Planner-facing cost estimation. The join planner (internal/engine)
// gathers per-table statistics with pushed-down COUNT(*) probes, then asks
// this file what each join strategy would cost. Estimates are produced by
// replaying the strategy's request pattern against a scratch Metrics under
// the same Config/Scale the query runs with, so the planner's model and
// the executor's accounting can never drift apart.

// PlanTableStats describes one join input for planning: the base table's
// size, how many rows survive its pushed-down filter, and the shape
// numbers the virtual clock needs (columns, partitions, filter complexity).
type PlanTableStats struct {
	Bytes        int64 // total object bytes across all partitions
	Rows         int64 // total rows
	FilteredRows int64 // rows passing the pushed filter (== Rows if none)
	Cols         int   // column count (cell-decode cost)
	Partitions   int
	FilterNodes  int64 // per-row expr AST nodes of the pushed scan SQL
	// ProjCols is how many columns the pushed scan returns (0 = all).
	// Returned-byte estimates shrink proportionally; scan and cell-decode
	// costs do not (CSV scans decode every cell regardless).
	ProjCols int
	// Columnar marks tables stored in the columnar (Parquet stand-in)
	// format, whose scans decode only the referenced columns. The
	// cell-decode term then scales with ProjCols instead of Cols, which is
	// exactly the advantage Fig. 11 measures — and it feeds strategy
	// choice, so a join that is Bloom-cheapest over CSV can price
	// filtered-scan-cheapest over the same table stored columnar.
	Columnar bool
	// Profile is the performance/pricing profile of the backend the table
	// lives on; the zero profile estimates at the base Config/Pricing.
	// This is what makes strategy choice backend-aware: the same join can
	// price baseline-cheapest on a fast free store and Bloom-cheapest on a
	// slow metered one.
	Profile Profile
	// CachedFrac is the fraction of the table's partitions whose *plain
	// pushed scan* (this query's selection + projection, no extra
	// predicates) is resident in the compute-tier result cache. Strategies
	// that push exactly that scan — the filtered scan and the Bloom build
	// side — price the resident partitions as cache hits (no request, no
	// scan, no transfer; decode only). Bloom *probe* scans embed a Bloom
	// predicate the cache can only hold if the identical query already ran,
	// so they are conservatively priced cold; plain-GET loads never touch
	// the select cache. This asymmetry is what lets an already-resident
	// probe side flip the planner from a Bloom probe to a filtered scan.
	CachedFrac float64
}

// Selectivity is the fraction of rows passing the table's filter.
func (s PlanTableStats) Selectivity() float64 {
	if s.Rows <= 0 {
		return 1
	}
	return float64(s.FilteredRows) / float64(s.Rows)
}

func (s PlanTableStats) parts() int {
	if s.Partitions <= 0 {
		return 1
	}
	return s.Partitions
}

// projFrac approximates the byte share of the projected columns (uniform
// column widths assumed).
func (s PlanTableStats) projFrac() float64 {
	if s.ProjCols <= 0 || s.Cols <= 0 || s.ProjCols >= s.Cols {
		return 1
	}
	return float64(s.ProjCols) / float64(s.Cols)
}

// PlanEstimate is a strategy's predicted virtual runtime and total dollar
// cost, plus the score the planner ranks strategies by: the billed cost
// with the runtime valued once more at the compute rate. The USD figure
// already contains a compute-time component, so the score deliberately
// double-weights runtime — a slow query occupies the node and the user
// beyond what the bill shows (the trade-off the paper's follow-up work
// optimizes for).
type PlanEstimate struct {
	Seconds float64
	USD     float64
	Score   float64
}

// Cheaper reports whether e beats other on score, breaking ties on raw
// cost, then runtime.
func (e PlanEstimate) Cheaper(other PlanEstimate) bool {
	if e.Score != other.Score {
		return e.Score < other.Score
	}
	if e.USD != other.USD {
		return e.USD < other.USD
	}
	return e.Seconds < other.Seconds
}

// estimate snapshots a scratch metrics replay into a PlanEstimate.
func estimate(m *Metrics, pricing Pricing) PlanEstimate {
	sec := m.RuntimeSeconds()
	usd := m.Cost(pricing).Total()
	return PlanEstimate{
		Seconds: sec,
		USD:     usd,
		Score:   usd + sec/3600*pricing.ComputePerHour,
	}
}

// EstimateBaselineJoin prices the paper's baseline join: both tables
// fetched in full with plain GETs (parallel, one stage), filters and the
// hash join evaluated on the server.
func EstimateBaselineJoin(cfg Config, scale Scale, pricing Pricing, build, probe PlanTableStats) PlanEstimate {
	m := NewMetricsScaled(cfg, scale)
	load := func(name string, s PlanTableStats) {
		ph := m.PhaseProfile(name, 0, s.Profile)
		per := s.Bytes / int64(s.parts())
		for i := 0; i < s.parts(); i++ {
			ph.AddGetRequest(per)
		}
		ph.AddServerRows(s.Rows) // local filter pass over every row
	}
	load("load build", build)
	load("load probe", probe)
	j := m.Phase("hash join", 0)
	j.AddServerRows(build.FilteredRows + probe.FilteredRows)
	return estimate(m, pricing)
}

// EstimateBloomJoin prices the paper's Bloom join: the build side scanned
// via S3 Select with selection+projection pushed down, then the probe side
// scanned with the Bloom predicate (plus its own filter) pushed down.
// matchFrac is the planner's estimate of the probe-row fraction whose join
// key lands in the Bloom filter (before false positives); fpr is the
// filter's target false-positive rate.
func EstimateBloomJoin(cfg Config, scale Scale, pricing Pricing, build, probe PlanTableStats, matchFrac, fpr float64) PlanEstimate {
	m := NewMetricsScaled(cfg, scale)

	// Stage 0: build-side scan with pushdown (the table's plain scan, so a
	// resident result cache applies).
	bp := m.PhaseProfile("bloom build", 0, build.Profile)
	addScan(bp, build, build.Selectivity(), build.FilterNodes, build.CachedFrac)
	bp.AddServerRows(build.FilteredRows * 2) // hash table + filter insert

	// Stage 1: probe-side scan with the Bloom predicate pushed down. The
	// predicate makes the pushed SQL query-specific, so it is priced cold
	// regardless of probe.CachedFrac.
	pp := m.PhaseProfile("bloom probe", 1, probe.Profile)
	retFrac := probe.Selectivity() * math.Min(1, matchFrac+fpr)
	addScan(pp, probe, retFrac, probe.FilterNodes+bloomPredicateNodes(fpr), 0)

	// Local hash join over the surviving rows.
	j := m.Phase("hash join", 1)
	j.AddServerRows(build.FilteredRows + int64(retFrac*float64(probe.Rows)))
	return estimate(m, pricing)
}

// EstimateScanJoin prices joining an already-materialized intermediate
// relation (buildRows rows, on the server) against a base table scanned via
// S3 Select with only its own filter pushed down — the "filtered" step of a
// multi-join pipeline.
func EstimateScanJoin(cfg Config, scale Scale, pricing Pricing, buildRows int64, probe PlanTableStats) PlanEstimate {
	m := NewMetricsScaled(cfg, scale)
	ph := m.PhaseProfile("filtered scan", 0, probe.Profile)
	addScan(ph, probe, probe.Selectivity(), probe.FilterNodes, probe.CachedFrac)
	j := m.Phase("hash join", 0)
	j.AddServerRows(buildRows + probe.FilteredRows)
	return estimate(m, pricing)
}

// EstimateBloomProbe prices joining a materialized intermediate relation
// against a base table with a Bloom filter over the intermediate's keys
// pushed into the probe scan (engine.BloomProbe). matchFrac and fpr are as
// in EstimateBloomJoin.
func EstimateBloomProbe(cfg Config, scale Scale, pricing Pricing, buildRows int64, probe PlanTableStats, matchFrac, fpr float64) PlanEstimate {
	m := NewMetricsScaled(cfg, scale)
	bp := m.Phase("bloom build", 0)
	bp.AddServerRows(buildRows) // filter insert over the intermediate
	pp := m.PhaseProfile("bloom probe", 1, probe.Profile)
	retFrac := probe.Selectivity() * math.Min(1, matchFrac+fpr)
	// Bloom-predicate SQL is query-specific: priced cold (see CachedFrac).
	addScan(pp, probe, retFrac, probe.FilterNodes+bloomPredicateNodes(fpr), 0)
	j := m.Phase("hash join", 1)
	j.AddServerRows(buildRows + int64(retFrac*float64(probe.Rows)))
	return estimate(m, pricing)
}

// IndexScanStats describes a secondary index as a planning input: the
// index objects' total size, how many rows the indexable predicate keeps,
// the predicate's per-row expression work on the index scan, and the
// range-batching cap execution will use.
type IndexScanStats struct {
	// IndexBytes is the total size of the per-partition index objects.
	IndexBytes int64
	// MatchedRows is how many data rows the indexed predicate selects
	// (from the same pushed probe that fills PlanTableStats).
	MatchedRows int64
	// PredNodes is the per-row expression node count of the predicate
	// pushed to the index objects.
	PredNodes int64
	// MaxRangesPerGet caps how many coalesced ranges one multi-range GET
	// carries (0 = engine default of 256).
	MaxRangesPerGet int
}

func (x IndexScanStats) maxRanges() int {
	if x.MaxRangesPerGet <= 0 {
		return 256
	}
	return x.MaxRangesPerGet
}

// ExpectedCoalescedRanges estimates how many discontiguous byte ranges
// survive adjacent-row coalescing when matched of rows uniformly scattered
// rows are selected: the expected Bernoulli run count matched×(1−p).
// Clustered data coalesces better than this, so the estimate is
// conservative against the index strategy.
func ExpectedCoalescedRanges(matched, rows int64) int64 {
	if matched <= 0 {
		return 0
	}
	if rows <= 0 || matched >= rows {
		return 1
	}
	p := float64(matched) / float64(rows)
	est := int64(math.Ceil(float64(matched) * (1 - p)))
	if est < 1 {
		est = 1
	}
	return est
}

// EstimateIndexScan prices the paper's Section IV-A index strategy through
// the manifest-backed subsystem: push the indexable predicate to the
// per-partition index objects with S3 Select, coalesce the returned byte
// ranges, fetch them with batched multi-range GETs, and re-filter the
// candidate rows on the server. The replay mirrors the execution path's
// metering exactly (index select per partition, one header probe, one
// AddRangedGetRequest per batch, one local-filter pass over the fetched
// candidates).
func EstimateIndexScan(cfg Config, scale Scale, pricing Pricing, s PlanTableStats, idx IndexScanStats) PlanEstimate {
	m := NewMetricsScaled(cfg, scale)
	addIndexScan(m, s, idx)
	return estimate(m, pricing)
}

// EstimateIndexScanJoin prices joining an already-materialized intermediate
// relation (buildRows rows) against a base table accessed through its
// secondary index — the IndexScan alternative to EstimateScanJoin for the
// probe side of a chain join.
func EstimateIndexScanJoin(cfg Config, scale Scale, pricing Pricing, buildRows int64, s PlanTableStats, idx IndexScanStats) PlanEstimate {
	m := NewMetricsScaled(cfg, scale)
	addIndexScan(m, s, idx)
	j := m.Phase("hash join", 1)
	j.AddServerRows(buildRows + s.FilteredRows)
	return estimate(m, pricing)
}

// addIndexScan replays the IndexScan request pattern into m (stages 0/1).
func addIndexScan(m *Metrics, s PlanTableStats, idx IndexScanStats) {
	parts := int64(s.parts())

	// Stage 0: predicate pushed to the index objects. The index rows are
	// value + two offsets, so three cells per data row; the returned bytes
	// are the offset pairs of the matched rows.
	ip := m.PhaseProfile("index select", 0, s.Profile)
	idxRowBytes := int64(1)
	if s.Rows > 0 {
		idxRowBytes = max(int64(1), idx.IndexBytes/s.Rows)
	}
	perScan := idx.IndexBytes / parts
	perRows := s.Rows / parts
	perRet := idx.MatchedRows / parts * idxRowBytes
	for i := int64(0); i < parts; i++ {
		ip.AddSelectRequest(SelectReq{
			ScanBytes:     perScan,
			ReturnedBytes: perRet,
			Rows:          perRows,
			ExprNodes:     idx.PredNodes,
			Cells:         perRows * 3,
		})
	}
	ip.AddGetRequest(4096) // header probe on the data table

	// Stage 1: batched multi-range fetch of the matching data rows, then a
	// local pass re-applying the filter over the fetched candidates (gap
	// coalescing may pull in neighbouring rows).
	fp := m.PhaseProfile("index fetch", 1, s.Profile)
	ranges := ExpectedCoalescedRanges(idx.MatchedRows, s.Rows)
	perPartRanges := (ranges + parts - 1) / parts
	fetchBytes := int64(float64(s.Bytes) * float64(idx.MatchedRows) / math.Max(1, float64(s.Rows)))
	if perPartRanges > 0 {
		batches := (perPartRanges + int64(idx.maxRanges()) - 1) / int64(idx.maxRanges())
		perBatchBytes := fetchBytes / parts / batches
		perBatchRanges := perPartRanges / batches
		for i := int64(0); i < parts; i++ {
			for b := int64(0); b < batches; b++ {
				fp.AddRangedGetRequest(perBatchBytes, perBatchRanges)
			}
		}
	}
	fp.AddServerRows(idx.MatchedRows)
}

// EstimateFilteredScan prices a table's plain pushed scan on its own: one
// S3 Select per partition with selection+projection pushed down, resident
// partitions served from the result cache. This is the single-table
// comparator the access-path planner weighs IndexScan against.
func EstimateFilteredScan(cfg Config, scale Scale, pricing Pricing, s PlanTableStats) PlanEstimate {
	m := NewMetricsScaled(cfg, scale)
	ph := m.PhaseProfile("filtered scan", 0, s.Profile)
	addScan(ph, s, s.Selectivity(), s.FilterNodes, s.CachedFrac)
	return estimate(m, pricing)
}

// EstimateBaselineScan prices the server-side baseline for one table: every
// partition fetched whole with plain GETs and the filter evaluated locally.
func EstimateBaselineScan(cfg Config, scale Scale, pricing Pricing, s PlanTableStats) PlanEstimate {
	m := NewMetricsScaled(cfg, scale)
	ph := m.PhaseProfile("load", 0, s.Profile)
	per := s.Bytes / int64(s.parts())
	for i := 0; i < s.parts(); i++ {
		ph.AddGetRequest(per)
	}
	ph.AddServerRows(s.Rows)
	return estimate(m, pricing)
}

// addScan records a full-table S3 Select scan over s returning retFrac of
// its rows (narrowed by the pushed projection), with nodes per-row
// expression work, one request per partition. cachedFrac of the partitions
// are priced as result-cache hits (decode only, nothing billed); callers
// pass s.CachedFrac when the strategy pushes the table's plain scan and 0
// when the pushed SQL differs from what the cache could hold.
func addScan(ph *Phase, s PlanTableStats, retFrac float64, nodes int64, cachedFrac float64) {
	parts := s.parts()
	cached := int(math.Round(cachedFrac * float64(parts)))
	if cached > parts {
		cached = parts
	}
	perBytes := s.Bytes / int64(parts)
	perRows := s.Rows / int64(parts)
	perRet := int64(retFrac * s.projFrac() * float64(s.Bytes) / float64(parts))
	// CSV scans decode every cell of every row; columnar scans decode only
	// the referenced columns (selectengine's CellsDecoded contract).
	decCols := max(s.Cols, 1)
	if s.Columnar && s.ProjCols > 0 && s.ProjCols < decCols {
		decCols = s.ProjCols
	}
	for i := 0; i < parts; i++ {
		if i < cached {
			ph.AddCacheHit(perRet)
			continue
		}
		ph.AddSelectRequest(SelectReq{
			ScanBytes:     perBytes,
			ReturnedBytes: perRet,
			Rows:          perRows,
			ExprNodes:     nodes,
			Cells:         perRows * int64(decCols),
		})
	}
}

// bloomPredicateNodes approximates the per-row expression work of the
// paper's '0'/'1'-string SUBSTRING Bloom predicate: one SUBSTRING + a few
// arithmetic nodes per hash function, with the optimal hash count
// k = log2(1/fpr).
func bloomPredicateNodes(fpr float64) int64 {
	if fpr <= 0 || fpr >= 1 {
		fpr = 0.01
	}
	k := math.Ceil(math.Log2(1 / fpr))
	const nodesPerHash = 12
	return int64(math.Max(1, k)) * nodesPerHash
}
