package cloudsim

import "testing"

// The columnar cell-decode advantage (Fig. 11): a pushed scan over a
// columnar table decodes only the referenced columns, so with a narrow
// projection the filtered-scan estimate must price below the identical CSV
// table — and without a projection the two must price identically, since
// the scan then touches every column either way.
func TestColumnarScanEstimate(t *testing.T) {
	base := PlanTableStats{
		Bytes: 64 << 20, Rows: 1_000_000, FilteredRows: 100_000,
		Cols: 16, Partitions: 8, FilterNodes: 5, ProjCols: 2,
	}
	csv := base
	col := base
	col.Columnar = true

	csvEst := EstimateFilteredScan(DefaultConfig(), Scale{}, DefaultPricing(), csv)
	colEst := EstimateFilteredScan(DefaultConfig(), Scale{}, DefaultPricing(), col)
	if !(colEst.Seconds < csvEst.Seconds) {
		t.Errorf("columnar scan with 2/16 columns projected should be faster: columnar %.4fs, csv %.4fs",
			colEst.Seconds, csvEst.Seconds)
	}

	wide := col
	wide.ProjCols = 0 // no projection: every column decodes regardless
	wideEst := EstimateFilteredScan(DefaultConfig(), Scale{}, DefaultPricing(), wide)
	csvWide := csv
	csvWide.ProjCols = 0
	csvWideEst := EstimateFilteredScan(DefaultConfig(), Scale{}, DefaultPricing(), csvWide)
	if wideEst != csvWideEst {
		t.Errorf("unprojected columnar scan should price like CSV: columnar %+v, csv %+v", wideEst, csvWideEst)
	}
}
