package cloudsim

import "strings"

// Scale maps a laptop-sized run onto the paper's testbed dimensions so the
// virtual clock and the cost model report paper-scale numbers.
//
//   - DataRatio is paperBytes/actualBytes (e.g. TPC-H SF 10 generated at
//     SF 0.01 gives 1000). Every data-proportional term — transfer, parse,
//     scan volume, row work, per-row requests — is multiplied by it.
//   - PartRatio is paperPartitions/actualPartitions (the paper partitions
//     tables 32 ways; tests may use 4, giving 8). Per-partition streams
//     (storage-side scan time, storage-side expression evaluation) divide
//     the data ratio by it, and per-partition bulk requests multiply by it.
//
// The composition keeps the bottleneck structure intact: selectivities,
// row mixes, and per-row request counts all scale linearly with data,
// while per-partition stream times land exactly where a 32-way-partitioned
// full-size table would put them.
type Scale struct {
	DataRatio float64
	PartRatio float64
}

// Unit is the identity scale (measure what actually ran).
func Unit() Scale { return Scale{DataRatio: 1, PartRatio: 1} }

func (s Scale) normalized() Scale {
	if s.DataRatio <= 0 {
		s.DataRatio = 1
	}
	if s.PartRatio <= 0 {
		s.PartRatio = 1
	}
	return s
}

// perPartition is the factor converting actual per-partition quantities to
// paper-scale per-partition quantities.
func (s Scale) perPartition() float64 { return s.DataRatio / s.PartRatio }

// PhaseSeconds sums the virtual durations of the phases whose name starts
// with prefix (phases in different stages are sequential, so summation is
// the right composition). Used by experiments that report per-phase
// breakdowns, e.g. Fig. 6 (server- vs S3-side time) and Fig. 8 (sampling
// vs scanning phase).
func (m *Metrics) PhaseSeconds(prefix string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total float64
	for _, p := range m.phases {
		if strings.HasPrefix(p.Name, prefix) {
			total += p.snapshot().seconds(m.cfg, m.scale)
		}
	}
	return total
}

// StageOf reports the stage of the first phase whose name starts with
// prefix (tests use it to check operator work lands in the right stage).
func (m *Metrics) StageOf(prefix string) (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.phases {
		if strings.HasPrefix(p.Name, prefix) {
			return p.Stage, true
		}
	}
	return 0, false
}

// PhaseReturnedBytes sums the paper-scale bytes returned to the server
// (select returns plus GETs) by phases whose name starts with prefix.
func (m *Metrics) PhaseReturnedBytes(prefix string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, p := range m.phases {
		if strings.HasPrefix(p.Name, prefix) {
			t := p.snapshot()
			total += t.selectReturnBytes + t.getBytes
		}
	}
	return int64(float64(total) * m.scale.DataRatio)
}
