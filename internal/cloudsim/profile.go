package cloudsim

// Profile describes the performance and pricing characteristics of one
// storage backend: the link between the compute node and the store, the
// per-request latency, and the dollar rates the store bills for requests,
// scans and transfers. Backends advertise a Profile (s3api.Backend.Profile)
// and the engine threads it into both the virtual clock (per-phase network
// and RTT terms) and the planner's per-strategy cost estimates, so the same
// query can legitimately plan differently on a fast local store than on a
// slow remote one.
//
// A zero Profile (Name == "") means "inherit the base Config/Pricing" — the
// calibration the paper's figures were fitted against.
type Profile struct {
	// Name identifies the backend class ("s3", "localfs", ...); the zero
	// name marks the profile as absent.
	Name string
	// NetworkBytesPerSec is the compute-node link bandwidth to this
	// backend; <= 0 inherits Config.NetworkBytesPerSec.
	NetworkBytesPerSec float64
	// RequestRTTSec is one request round trip to this backend; <= 0
	// inherits Config.RequestRTTSec.
	RequestRTTSec float64
	// RequestPer1000, ScanPerGB, ReturnPerGB and TransferPerGB are the
	// backend's billing rates (zero is meaningful: in-region transfer and
	// local disks are free).
	RequestPer1000 float64
	ScanPerGB      float64
	ReturnPerGB    float64
	TransferPerGB  float64
}

// Defined reports whether the profile carries backend-specific values.
func (p Profile) Defined() bool { return p.Name != "" }

// S3Profile is the paper's in-region S3: a 10 GigE link, 10 ms round
// trips, and the Section II-B request/scan/transfer prices. It matches
// DefaultConfig/DefaultPricing exactly, so backends simulating AWS S3
// (the in-process store, the HTTP wire) cost the same as before profiles
// existed.
func S3Profile() Profile {
	return Profile{
		Name:               "s3",
		NetworkBytesPerSec: 1.25e9,
		RequestRTTSec:      0.010,
		RequestPer1000:     0.0004,
		ScanPerGB:          0.002,
		ReturnPerGB:        0.0007,
		TransferPerGB:      0,
	}
}

// CrossRegionS3Profile is S3 reached across regions: a thin WAN link,
// long round trips, and per-GB egress billed on every byte pulled out.
func CrossRegionS3Profile() Profile {
	return Profile{
		Name:               "s3-cross-region",
		NetworkBytesPerSec: 30e6,
		RequestRTTSec:      0.080,
		RequestPer1000:     0.0004,
		ScanPerGB:          0.002,
		ReturnPerGB:        0.0007,
		TransferPerGB:      0.09,
	}
}

// LocalFSProfile is an NVMe-class local filesystem: wide, sub-millisecond,
// and free — no per-request or per-byte dollar cost.
func LocalFSProfile() Profile {
	return Profile{
		Name:               "localfs",
		NetworkBytesPerSec: 2.5e9,
		RequestRTTSec:      0.0002,
	}
}

// ForProfile returns the config with the profile's performance terms
// substituted (when defined and positive).
func (c Config) ForProfile(p Profile) Config {
	if !p.Defined() {
		return c
	}
	if p.NetworkBytesPerSec > 0 {
		c.NetworkBytesPerSec = p.NetworkBytesPerSec
	}
	if p.RequestRTTSec > 0 {
		c.RequestRTTSec = p.RequestRTTSec
	}
	return c
}

// ForProfile returns the pricing with the profile's request and transfer
// rates substituted (when defined). ComputePerHour stays: the compute node
// is the same whatever store the bytes come from.
func (pr Pricing) ForProfile(p Profile) Pricing {
	if !p.Defined() {
		return pr
	}
	pr.RequestPer1000 = p.RequestPer1000
	pr.ScanPerGB = p.ScanPerGB
	pr.ReturnPerGB = p.ReturnPerGB
	pr.TransferPerGB = p.TransferPerGB
	return pr
}
