package cloudsim

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestDefaultPricingMatchesPaper(t *testing.T) {
	p := DefaultPricing()
	if p.ScanPerGB != 0.002 || p.ReturnPerGB != 0.0007 || p.RequestPer1000 != 0.0004 || p.ComputePerHour != 2.128 {
		t.Errorf("pricing drifted from Section II-B: %+v", p)
	}
	if p.TransferPerGB != 0 {
		t.Error("same-region transfer must be free")
	}
}

func TestPhaseBottleneckModel(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMetrics(cfg)
	p := m.Phase("scan", 0)
	// One select request scanning 300 MB, returning 1 MB: storage-bound.
	p.AddSelectRequest(SelectReq{ScanBytes: 300e6, ReturnedBytes: 1e6, Rows: 1e6,
		ExprNodes: 5, Cells: 16e6, DecompressBytes: 1e6})
	sec := m.RuntimeSeconds()
	wantScan := cfg.RequestRTTSec + 300e6/cfg.S3ScanBytesPerSec +
		16e6*cfg.S3CellSecPerCell + 1e6/cfg.S3DecompressBytesPerSec +
		1e6*5*cfg.S3NodeSecPerRow
	if math.Abs(sec-wantScan) > 1e-9 {
		t.Errorf("runtime = %v, want scan-bound %v", sec, wantScan)
	}
}

func TestServerBoundPhase(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMetrics(cfg)
	p := m.Phase("load", 0)
	// A GET returning 1 GB: server parse should dominate the transfer.
	p.AddGetRequest(1e9)
	sec := m.RuntimeSeconds()
	parse := 1e9 / cfg.BulkParseBytesPerSec
	if math.Abs(sec-(parse+cfg.RequestCPUSec)) > 1e-6 {
		t.Errorf("runtime = %v, want parse-bound ~%v", sec, parse)
	}
}

func TestStagesSumPhasesOverlap(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMetrics(cfg)
	// Two phases in stage 0 overlap: total is the max.
	a := m.Phase("a", 0)
	b := m.Phase("b", 0)
	a.AddServerSeconds(2)
	b.AddServerSeconds(5)
	c := m.Phase("c", 1)
	c.AddServerSeconds(3)
	if got := m.RuntimeSeconds(); math.Abs(got-8) > 1e-9 {
		t.Errorf("runtime = %v, want max(2,5)+3 = 8", got)
	}
}

func TestPhaseReuseByName(t *testing.T) {
	m := NewMetrics(DefaultConfig())
	p1 := m.Phase("x", 0)
	p2 := m.Phase("x", 0)
	if p1 != p2 {
		t.Error("same name+stage must return the same phase")
	}
	if p3 := m.Phase("x", 1); p3 == p1 {
		t.Error("different stage must be a different phase")
	}
}

func TestCostComponents(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMetrics(cfg)
	p := m.Phase("scan", 0)
	p.AddSelectRequest(SelectReq{ScanBytes: 1 << 30, ReturnedBytes: 1 << 29, Rows: 0, ExprNodes: 0}) // scan 1 GB, return 0.5 GB
	for i := 0; i < 999; i++ {
		p.AddGetRequest(0)
	}
	c := m.Cost(DefaultPricing())
	if math.Abs(c.ScanUSD-0.002) > 1e-12 {
		t.Errorf("scan cost = %v, want 0.002", c.ScanUSD)
	}
	if math.Abs(c.TransferUSD-0.00035) > 1e-12 {
		t.Errorf("transfer cost = %v, want 0.00035", c.TransferUSD)
	}
	if math.Abs(c.RequestUSD-0.0004) > 1e-12 { // 1000 requests total
		t.Errorf("request cost = %v, want 0.0004", c.RequestUSD)
	}
	if c.ComputeUSD <= 0 {
		t.Error("compute cost must be positive")
	}
	if math.Abs(c.Total()-(c.ComputeUSD+c.RequestUSD+c.ScanUSD+c.TransferUSD)) > 1e-15 {
		t.Error("Total() mismatch")
	}
	if !strings.Contains(c.String(), "compute") {
		t.Error("String() should mention components")
	}
}

func TestPlainGetTransferIsFree(t *testing.T) {
	m := NewMetrics(DefaultConfig())
	m.Phase("load", 0).AddGetRequest(10 << 30)
	c := m.Cost(DefaultPricing())
	if c.TransferUSD != 0 || c.ScanUSD != 0 {
		t.Errorf("plain GET should cost no scan/transfer: %+v", c)
	}
}

func TestComputationAwarePricing(t *testing.T) {
	m := NewMetrics(DefaultConfig())
	m.Phase("scan", 0).AddSelectRequest(SelectReq{ScanBytes: 1 << 30, ReturnedBytes: 0, Rows: 0, ExprNodes: 0})
	cap := DefaultComputationAwarePricing()
	light := m.CostComputationAware(cap, 0)
	heavy := m.CostComputationAware(cap, 1000)
	flat := m.Cost(cap.Pricing)
	if light.ScanUSD >= heavy.ScanUSD {
		t.Error("light scans must be cheaper than heavy scans")
	}
	if math.Abs(light.ScanUSD-flat.ScanUSD*cap.BaseFraction) > 1e-12 {
		t.Errorf("light scan = %v, want base fraction of %v", light.ScanUSD, flat.ScanUSD)
	}
	if math.Abs(heavy.ScanUSD-flat.ScanUSD) > 1e-12 {
		t.Error("saturated scan should pay full price")
	}
}

func TestPaperScaleAnchors(t *testing.T) {
	// Sanity anchors from Fig. 1a at 10 GB TPC-H scale: the model should
	// land in the right decade, and S3-side filter should be ~10x faster
	// than server-side filter.
	cfg := DefaultConfig()
	lineitem := int64(7.25 * 1e9)
	parts := int64(32)

	server := NewMetrics(cfg)
	p := server.Phase("load", 0)
	for i := int64(0); i < parts; i++ {
		p.AddGetRequest(lineitem / parts)
	}
	serverSec := server.RuntimeSeconds()

	s3side := NewMetrics(cfg)
	q := s3side.Phase("scan", 0)
	rowsPerPart := int64(60e6) / parts
	for i := int64(0); i < parts; i++ {
		// 16 columns per lineitem row: the CSV scan decodes them all.
		q.AddSelectRequest(SelectReq{ScanBytes: lineitem / parts, ReturnedBytes: 1000,
			Rows: rowsPerPart, ExprNodes: 8, Cells: rowsPerPart * 16})
	}
	s3Sec := s3side.RuntimeSeconds()

	if serverSec < 50 || serverSec > 110 {
		t.Errorf("server-side filter = %.1fs, expected ~72s (Fig 1a)", serverSec)
	}
	if s3Sec < 4 || s3Sec > 12 {
		t.Errorf("s3-side filter = %.1fs, expected ~8s (Fig 1a)", s3Sec)
	}
	ratio := serverSec / s3Sec
	if ratio < 6 || ratio > 16 {
		t.Errorf("speedup = %.1fx, paper reports ~10x", ratio)
	}
}

func TestConcurrentPhaseUpdates(t *testing.T) {
	m := NewMetrics(DefaultConfig())
	p := m.Phase("par", 0)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				p.AddSelectRequest(SelectReq{ScanBytes: 10, ReturnedBytes: 1, Rows: 1, ExprNodes: 1})
				p.AddGetRequest(5)
				p.AddServerRows(3)
			}
		}()
	}
	wg.Wait()
	requests, scan, selRet, get := m.Totals()
	if requests != 6400 || scan != 32000 || selRet != 3200 || get != 16000 {
		t.Errorf("totals = %d %d %d %d", requests, scan, selRet, get)
	}
}

func TestReport(t *testing.T) {
	m := NewMetrics(DefaultConfig())
	m.Phase("alpha", 1).AddGetRequest(100)
	m.Phase("beta", 0).AddSelectRequest(SelectReq{ScanBytes: 100, ReturnedBytes: 10, Rows: 1, ExprNodes: 1})
	r := m.Report()
	if !strings.Contains(r, "alpha") || !strings.Contains(r, "beta") {
		t.Errorf("report missing phases:\n%s", r)
	}
	// beta (stage 0) should be listed before alpha (stage 1)
	if strings.Index(r, "beta") > strings.Index(r, "alpha") {
		t.Error("report should sort by stage")
	}
}

// Property: runtime is monotonic in added work.
func TestQuickRuntimeMonotonic(t *testing.T) {
	f := func(scans []uint32) bool {
		m := NewMetrics(DefaultConfig())
		p := m.Phase("s", 0)
		prev := 0.0
		for _, s := range scans {
			p.AddSelectRequest(SelectReq{ScanBytes: int64(s % 1e6), ReturnedBytes: int64(s % 1e3), Rows: int64(s % 1e4), ExprNodes: 3})
			now := m.RuntimeSeconds()
			if now+1e-12 < prev {
				return false
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: cost components are non-negative and scale with bytes.
func TestQuickCostNonNegative(t *testing.T) {
	f := func(scan, ret uint32) bool {
		m := NewMetrics(DefaultConfig())
		m.Phase("s", 0).AddSelectRequest(SelectReq{ScanBytes: int64(scan), ReturnedBytes: int64(ret)})
		c := m.Cost(DefaultPricing())
		return c.ComputeUSD >= 0 && c.ScanUSD >= 0 && c.TransferUSD >= 0 && c.RequestUSD >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSharedSelectRequestSplitsBilling(t *testing.T) {
	cfg := DefaultConfig()
	pricing := DefaultPricing()
	req := SelectReq{ScanBytes: 1 << 30, ReturnedBytes: 1 << 28, Rows: 1e6, ExprNodes: 3, Cells: 8e6}

	// n sharers each record the same pass with sharers=n: their summed
	// bill must equal one direct pass, and each pays exactly 1/n of the
	// storage components.
	direct := NewMetrics(cfg)
	direct.Phase("scan", 0).AddSelectRequest(req)
	dc := direct.Cost(pricing)

	const n = 4
	var sumScan, sumReq, sumTransfer float64
	for i := 0; i < n; i++ {
		m := NewMetrics(cfg)
		m.Phase("scan", 0).AddSharedSelectRequest(req, n, 500)
		c := m.Cost(pricing)
		if math.Abs(c.ScanUSD-dc.ScanUSD/n) > 1e-15 {
			t.Fatalf("sharer scan cost = %v, want %v", c.ScanUSD, dc.ScanUSD/n)
		}
		sumScan += c.ScanUSD
		sumReq += c.RequestUSD
		sumTransfer += c.TransferUSD
	}
	if math.Abs(sumScan-dc.ScanUSD) > 1e-12 ||
		math.Abs(sumReq-dc.RequestUSD) > 1e-12 ||
		math.Abs(sumTransfer-dc.TransferUSD) > 1e-12 {
		t.Fatalf("summed sharer bill (scan %v, req %v, transfer %v) != one direct pass (%v, %v, %v)",
			sumScan, sumReq, sumTransfer, dc.ScanUSD, dc.RequestUSD, dc.TransferUSD)
	}
}

func TestSharedSelectRequestTimeIsNotDivided(t *testing.T) {
	cfg := DefaultConfig()
	req := SelectReq{ScanBytes: 300e6, ReturnedBytes: 50e6, Rows: 1e6, ExprNodes: 5, Cells: 16e6}

	direct := NewMetrics(cfg)
	direct.Phase("scan", 0).AddSelectRequest(req)

	shared := NewMetrics(cfg)
	shared.Phase("scan", 0).AddSharedSelectRequest(req, 8, 0)

	// The storage stream and the response transfer happen in full for
	// every sharer: a shared pass saves dollars, not stream time.
	if d, s := direct.RuntimeSeconds(), shared.RuntimeSeconds(); s < d-1e-9 {
		t.Fatalf("shared runtime %v < direct %v; stream time must not be divided", s, d)
	}
}

func TestSharedSelectRequestLocalRowsPriced(t *testing.T) {
	cfg := DefaultConfig()
	without := NewMetrics(cfg)
	without.Phase("scan", 0).AddSharedSelectRequest(SelectReq{}, 2, 0)
	with := NewMetrics(cfg)
	with.Phase("scan", 0).AddSharedSelectRequest(SelectReq{}, 2, 5e9)
	if with.RuntimeSeconds() <= without.RuntimeSeconds() {
		t.Fatal("local re-filter rows must add server-side row work")
	}
}

func TestSharedSelectRequestSoloDelegates(t *testing.T) {
	cfg := DefaultConfig()
	a := NewMetrics(cfg)
	a.Phase("scan", 0).AddSharedSelectRequest(SelectReq{ScanBytes: 1 << 20}, 1, 0)
	b := NewMetrics(cfg)
	b.Phase("scan", 0).AddSelectRequest(SelectReq{ScanBytes: 1 << 20})
	if a.RuntimeSeconds() != b.RuntimeSeconds() {
		t.Fatal("sharers=1 must account exactly like a direct select")
	}
	ar, as, _, _ := a.SharedTotals()
	if ar != 0 || as != 0 {
		t.Fatal("sharers=1 must not record shared totals")
	}
	req, _, _, _ := a.Totals()
	if req != 1 {
		t.Fatalf("requests = %d, want 1", req)
	}
}

func TestSharedTotals(t *testing.T) {
	m := NewMetrics(DefaultConfig())
	m.Phase("scan", 0).AddSharedSelectRequest(SelectReq{ScanBytes: 1000, ReturnedBytes: 400}, 4, 0)
	m.Phase("scan", 0).AddSharedSelectRequest(SelectReq{ScanBytes: 1000, ReturnedBytes: 400}, 4, 0)
	reqShare, scanShare, retShare, wire := m.SharedTotals()
	if math.Abs(reqShare-0.5) > 1e-12 || math.Abs(scanShare-500) > 1e-9 || math.Abs(retShare-200) > 1e-9 {
		t.Fatalf("SharedTotals = %v, %v, %v", reqShare, scanShare, retShare)
	}
	if wire != 800 {
		t.Fatalf("wire bytes = %d, want 800 (full response per pass)", wire)
	}
	// Shared fractional requests stay out of the integer request count.
	req, _, _, _ := m.Totals()
	if req != 0 {
		t.Fatalf("Totals requests = %d, want 0", req)
	}
}

func TestCostBreakdownSharedAcrossN(t *testing.T) {
	c := CostBreakdown{ComputeUSD: 1, RequestUSD: 0.4, ScanUSD: 2, TransferUSD: 0.8}
	s := c.SharedAcrossN(4)
	if s.ComputeUSD != 1 {
		t.Fatal("compute must not split across sharers")
	}
	if s.RequestUSD != 0.1 || s.ScanUSD != 0.5 || s.TransferUSD != 0.2 {
		t.Fatalf("SharedAcrossN(4) = %+v", s)
	}
	if c.SharedAcrossN(1) != c || c.SharedAcrossN(0) != c {
		t.Fatal("n <= 1 must be the identity")
	}
}
