// Package cloudsim models the performance and dollar cost of queries that
// move data between the simulated S3 store and the compute node.
//
// Why a model: the paper's headline results (Figures 1–10) are data-movement
// effects measured on real AWS — a 10 GigE network between an r4.8xlarge
// EC2 instance and S3, S3-side scan parallelism across object partitions,
// and Python-level per-request CPU overheads. Running everything in one
// process erases those bottlenecks, so PushdownDB-Go executes queries for
// real (verifying answers) while every S3 interaction is *accounted* here
// under a deterministic virtual clock. The model is the classic bottleneck
// (roofline) composition: a query is a sequence of stages; concurrent
// phases within a stage overlap; each phase's duration is the maximum of
// its storage-side time, its network transfer time and its server-side CPU
// time.
//
// Calibration: the constants in DefaultConfig are fitted once against the
// absolute runtimes the paper reports (Section III: r4.8xlarge, 32 cores,
// 10 GigE, 10 GB TPC-H CSV in 32-way partitioned objects) and are shared by
// every experiment — no per-figure tuning. EXPERIMENTS.md records where the
// resulting factors deviate from the paper's.
package cloudsim

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Pricing holds the US-East prices from Section II-B of the paper.
type Pricing struct {
	ScanPerGB      float64 // S3 Select data scanned
	ReturnPerGB    float64 // S3 Select data returned
	TransferPerGB  float64 // plain GET egress (0 within region)
	RequestPer1000 float64 // HTTP GET/Select requests
	ComputePerHour float64 // EC2 instance (r4.8xlarge)
}

// DefaultPricing returns the paper's prices.
func DefaultPricing() Pricing {
	return Pricing{
		ScanPerGB:      0.002,
		ReturnPerGB:    0.0007,
		TransferPerGB:  0, // same-region transfer is free
		RequestPer1000: 0.0004,
		ComputePerHour: 2.128,
	}
}

// ComputationAwarePricing implements the paper's Suggestion 5: scanning is
// charged in proportion to how much storage-side computation the request
// actually performs, instead of a flat per-GB rate. Light scans (plain
// projections) pay baseFraction of the list price; heavier expressions ramp
// up to the full price.
type ComputationAwarePricing struct {
	Pricing
	// BaseFraction is the share of ScanPerGB charged for a scan that does
	// no per-row computation (pure projection).
	BaseFraction float64
	// NodesAtFullPrice is the per-row expression node count at which the
	// full ScanPerGB applies.
	NodesAtFullPrice float64
}

// DefaultComputationAwarePricing charges 25% of list price for plain scans.
func DefaultComputationAwarePricing() ComputationAwarePricing {
	return ComputationAwarePricing{
		Pricing:          DefaultPricing(),
		BaseFraction:     0.25,
		NodesAtFullPrice: 64,
	}
}

// Config holds the performance-model constants.
type Config struct {
	// Cores on the compute node (r4.8xlarge has 32 physical cores).
	Cores int
	// Workers is how many goroutines the server's local operators spread
	// their row work across (hash join build/probe, group-by partials,
	// filter, top-K heaps, CSV decode). The budget is capped at Cores;
	// 0 or 1 means sequential execution, the configuration the other
	// constants were calibrated against. The parallelizable server terms
	// of the bottleneck model — bulk parse, select-response parse and
	// per-row work — divide their wall-clock by WorkerBudget() while the
	// total CPU seconds consumed stay the same; request issuance stays
	// serial.
	Workers int
	// RequestRTTSec is the latency of one S3 HTTP round trip.
	RequestRTTSec float64
	// S3ScanBytesPerSec is the per-partition raw IO rate of an S3 Select
	// scan. Together with S3CellSecPerCell it is fitted so a 32-way-
	// partitioned 7.25 GB lineitem S3-side filter takes ~7.5 s (Fig. 1a).
	S3ScanBytesPerSec float64
	// S3CellSecPerCell is the per-partition cost of materializing one
	// column value during a scan. CSV scans decode every cell of every
	// row; columnar scans decode only referenced columns — this term is
	// why Parquet wins on narrow queries (Fig. 11) but only modestly on
	// TPC-H (Section IX).
	S3CellSecPerCell float64
	// S3DecompressBytesPerSec is the per-partition inflate rate for
	// compressed columnar chunks.
	S3DecompressBytesPerSec float64
	// S3NodeSecPerRow is the storage-side cost of evaluating one
	// expression AST node over one row. Fitted so the Fig. 5 S3-side
	// group-by crosses filtered group-by between 8 and 32 groups.
	S3NodeSecPerRow float64
	// NetworkBytesPerSec is the compute node's NIC (10 GigE).
	NetworkBytesPerSec float64
	// BulkParseBytesPerSec is the node-aggregate rate at which the server
	// ingests whole objects fetched with plain GETs (Pandas CSV path).
	// Fitted so a server-side filter over 7.25 GB takes ~72 s (Fig. 1a).
	BulkParseBytesPerSec float64
	// SelectParseBytesPerSec is the node-aggregate rate for ingesting
	// S3 Select responses (event-stream framing reassembled in Python is
	// slower than the bulk path). Fitted to Fig. 5's filtered group-by.
	SelectParseBytesPerSec float64
	// RequestCPUSec is the node-aggregate CPU cost of issuing one HTTP
	// request. Fitted to the Fig. 1 indexing degradation past 1e-4.
	RequestCPUSec float64
	// RowWorkSecPerRow is the node-aggregate cost of one unit of row work
	// (hash build/probe, heap push, group update).
	RowWorkSecPerRow float64
	// RangedGetSecPerRange is the per-discontiguous-range overhead of a
	// batched multi-range GET (Suggestion 1): storage-side seek and
	// response framing plus server-side part reassembly, paid per range
	// even when thousands of ranges share one HTTP request. This is what
	// makes the IndexScan strategy degrade as its predicate loosens — the
	// range count scales with matched rows — while staying far below
	// RequestCPUSec, the cost of a whole per-row request.
	RangedGetSecPerRange float64
}

// WorkerBudget is the effective server-side parallelism: Workers clamped
// to [1, Cores].
func (c Config) WorkerBudget() int {
	w := c.Workers
	if w < 1 {
		w = 1
	}
	if c.Cores > 0 && w > c.Cores {
		w = c.Cores
	}
	return w
}

// DefaultConfig returns the calibrated model (see field comments).
func DefaultConfig() Config {
	return Config{
		Cores:                   32,
		Workers:                 1,
		RequestRTTSec:           0.010,
		S3ScanBytesPerSec:       200e6,
		S3CellSecPerCell:        2.1e-7,
		S3DecompressBytesPerSec: 80e6,
		S3NodeSecPerRow:         2.5e-8,
		NetworkBytesPerSec:      1.25e9,
		BulkParseBytesPerSec:    100e6,
		SelectParseBytesPerSec:  80e6,
		RequestCPUSec:           0.0005,
		RowWorkSecPerRow:        2e-7,
		RangedGetSecPerRange:    2e-5,
	}
}

// Phase accumulates the activity of one pipeline phase (e.g. "build side
// load", "probe side scan"). Phases in the same Stage overlap in time;
// stages execute sequentially.
type Phase struct {
	Name  string
	Stage int
	// cfg is the metrics' config with the phase's backend profile applied
	// (network bandwidth, request RTT).
	cfg Config
	// profile is the backend profile the phase's requests run against; the
	// zero profile prices at the metrics' base Pricing.
	profile Profile
	scale   Scale

	mu                sync.Mutex
	requests          int64 // bulk requests (scans, whole/partition GETs)
	rowFetchRequests  int64 // per-row GETs (index strategy): these scale with data
	rangedRanges      int64 // discontiguous ranges inside batched multi-range GETs
	scanBytes         int64 // S3 Select bytes scanned
	selectReturnBytes int64 // S3 Select bytes returned
	getBytes          int64 // plain GET bytes returned
	cacheHits         int64 // select responses served from the result cache
	cacheReturnBytes  int64 // response bytes served from the result cache
	// Shared-scan accounting (scanshare): billing counters carry this
	// query's 1/sharers slice of each shared pass, while sharedWireBytes
	// carries the full pass response — the query still receives and
	// parses every merged byte even though it only pays its share.
	sharedRequests    float64
	sharedScanBytes   float64
	sharedReturnBytes float64
	sharedWireBytes   int64
	s3MaxStreamSec    float64
	serverExtraSec    float64
	serverRows        int64
}

// SelectReq describes one S3 Select request for accounting: scanned
// object bytes, returned (encoded) bytes, rows scanned, per-row expression
// node count, column cells materialized, and raw bytes inflated from
// compressed chunks.
type SelectReq struct {
	ScanBytes       int64
	ReturnedBytes   int64
	Rows            int64
	ExprNodes       int64
	Cells           int64
	DecompressBytes int64
}

// AddSelectRequest records one S3 Select request against this phase. The
// storage-side stream time is IO + cell materialization + decompression +
// per-row expression evaluation, all at per-partition scale.
func (p *Phase) AddSelectRequest(r SelectReq) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.requests++
	p.scanBytes += r.ScanBytes
	p.selectReturnBytes += r.ReturnedBytes
	pp := p.scale.perPartition()
	t := p.cfg.RequestRTTSec +
		float64(r.ScanBytes)*pp/p.cfg.S3ScanBytesPerSec +
		float64(r.Cells)*pp*p.cfg.S3CellSecPerCell +
		float64(r.DecompressBytes)*pp/p.cfg.S3DecompressBytesPerSec +
		float64(r.Rows)*pp*float64(r.ExprNodes)*p.cfg.S3NodeSecPerRow
	if t > p.s3MaxStreamSec {
		p.s3MaxStreamSec = t
	}
}

// AddSharedSelectRequest records this query's participation in one S3
// Select pass shared by `sharers` concurrent queries (scanshare): the
// storage side ran the pass once, so each sharer is billed 1/sharers of
// its request, scan and return volume — every sharer records the same
// pass with the same count, so the fleet's total equals exactly one
// direct pass. Time is not divided: the storage stream ran in full
// before any sharer's rows existed, the whole merged response crossed
// the network to the node, and localRows counts the merged rows this
// query re-filtered locally at server row-work rates (zero for unmerged
// singleflight shares).
func (p *Phase) AddSharedSelectRequest(r SelectReq, sharers, localRows int64) {
	if sharers <= 1 {
		p.AddSelectRequest(r)
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	share := float64(sharers)
	p.sharedRequests += 1 / share
	p.sharedScanBytes += float64(r.ScanBytes) / share
	p.sharedReturnBytes += float64(r.ReturnedBytes) / share
	p.sharedWireBytes += r.ReturnedBytes
	p.serverRows += localRows
	pp := p.scale.perPartition()
	t := p.cfg.RequestRTTSec +
		float64(r.ScanBytes)*pp/p.cfg.S3ScanBytesPerSec +
		float64(r.Cells)*pp*p.cfg.S3CellSecPerCell +
		float64(r.DecompressBytes)*pp/p.cfg.S3DecompressBytesPerSec +
		float64(r.Rows)*pp*float64(r.ExprNodes)*p.cfg.S3NodeSecPerRow
	if t > p.s3MaxStreamSec {
		p.s3MaxStreamSec = t
	}
}

// AddCacheHit records one S3 Select response served from the compute-tier
// result cache instead of the backend: no storage request is issued, no
// bytes cross the network and nothing is billed — the server only re-parses
// the cached response bytes at local bandwidth. This is what makes a warm
// cached scan the cheapest scan of all in the cost model.
func (p *Phase) AddCacheHit(returnedBytes int64) {
	p.mu.Lock()
	p.cacheHits++
	p.cacheReturnBytes += returnedBytes
	p.mu.Unlock()
}

// AddGetRequest records one bulk GET (a whole partition or a batched
// multi-range fetch) returning n bytes.
func (p *Phase) AddGetRequest(n int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.requests++
	p.getBytes += n
	t := p.cfg.RequestRTTSec + float64(n)*p.scale.perPartition()/p.cfg.NetworkBytesPerSec
	if t > p.s3MaxStreamSec {
		p.s3MaxStreamSec = t
	}
}

// AddRowFetchRequest records one per-row ranged GET returning n bytes (the
// Section IV-A index strategy). Unlike bulk requests, the number of these
// scales with the data: their request-CPU and request-pricing terms are
// multiplied by the data ratio.
func (p *Phase) AddRowFetchRequest(n int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rowFetchRequests++
	p.getBytes += n
	if p.cfg.RequestRTTSec > p.s3MaxStreamSec {
		p.s3MaxStreamSec = p.cfg.RequestRTTSec
	}
}

// AddRangedGetRequest records one batched multi-range GET returning n
// bytes across nRanges discontiguous byte ranges (the IndexScan strategy's
// fetch, Suggestion 1). The batch envelope is a bulk request — like a
// partition GET, it does not scale with the data ratio — while every range
// inside it pays RangedGetSecPerRange on both the storage stream (seek +
// framing) and the server (part reassembly), scaled with the data: the
// range count is exactly what grows with matching rows.
func (p *Phase) AddRangedGetRequest(n, nRanges int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.requests++
	p.rangedRanges += nRanges
	p.getBytes += n
	pp := p.scale.perPartition()
	t := p.cfg.RequestRTTSec +
		float64(n)*pp/p.cfg.NetworkBytesPerSec +
		float64(nRanges)*pp*p.cfg.RangedGetSecPerRange
	if t > p.s3MaxStreamSec {
		p.s3MaxStreamSec = t
	}
}

// AddServerRows records n units of server-side row work.
func (p *Phase) AddServerRows(n int64) {
	p.mu.Lock()
	p.serverRows += n
	p.mu.Unlock()
}

// AddServerSeconds records explicit server-side CPU seconds.
func (p *Phase) AddServerSeconds(s float64) {
	p.mu.Lock()
	p.serverExtraSec += s
	p.mu.Unlock()
}

// snapshot returns a copy of the accumulated counters.
func (p *Phase) snapshot() phaseTotals {
	p.mu.Lock()
	defer p.mu.Unlock()
	return phaseTotals{
		requests:          p.requests,
		rowFetchRequests:  p.rowFetchRequests,
		rangedRanges:      p.rangedRanges,
		scanBytes:         p.scanBytes,
		selectReturnBytes: p.selectReturnBytes,
		getBytes:          p.getBytes,
		cacheHits:         p.cacheHits,
		cacheReturnBytes:  p.cacheReturnBytes,
		sharedRequests:    p.sharedRequests,
		sharedScanBytes:   p.sharedScanBytes,
		sharedReturnBytes: p.sharedReturnBytes,
		sharedWireBytes:   p.sharedWireBytes,
		s3MaxStreamSec:    p.s3MaxStreamSec,
		serverExtraSec:    p.serverExtraSec,
		serverRows:        p.serverRows,
	}
}

type phaseTotals struct {
	requests          int64
	rowFetchRequests  int64
	rangedRanges      int64
	scanBytes         int64
	selectReturnBytes int64
	getBytes          int64
	cacheHits         int64
	cacheReturnBytes  int64
	sharedRequests    float64
	sharedScanBytes   float64
	sharedReturnBytes float64
	sharedWireBytes   int64
	s3MaxStreamSec    float64
	serverExtraSec    float64
	serverRows        int64
}

// seconds evaluates the phase duration under the bottleneck model at the
// given scale. Server-side work that the engine partitions across worker
// goroutines — parsing fetched bytes and per-row operator work — divides
// its wall-clock by the worker budget (full CPU seconds are still spent,
// across more cores); request issuance and explicit extra seconds remain
// serial. Per-row work is priced as fully parallelizable: the engine's
// only serial per-row residue (Bloom-filter bit inserts, a few hashes
// per build row) is below the roofline model's granularity.
func (t phaseTotals) seconds(cfg Config, scale Scale) float64 {
	dr := scale.DataRatio
	// Shared passes ship their full merged response to the node (wire
	// bytes), even though the query is only billed its share.
	transfer := float64(t.selectReturnBytes+t.getBytes+t.sharedWireBytes) * dr / cfg.NetworkBytesPerSec
	// Cache-served response bytes never touch the network or the storage
	// side; they only pay the (parallelizable) select-response parse.
	parallel := float64(t.getBytes)*dr/cfg.BulkParseBytesPerSec +
		float64(t.selectReturnBytes+t.cacheReturnBytes+t.sharedWireBytes)*dr/cfg.SelectParseBytesPerSec +
		float64(t.serverRows)*dr*cfg.RowWorkSecPerRow
	server := parallel/float64(cfg.WorkerBudget()) +
		(float64(t.requests)+t.sharedRequests)*scale.PartRatio*cfg.RequestCPUSec +
		float64(t.rowFetchRequests)*dr*cfg.RequestCPUSec +
		float64(t.rangedRanges)*dr*cfg.RangedGetSecPerRange +
		t.serverExtraSec
	return math.Max(t.s3MaxStreamSec, math.Max(transfer, server))
}

// Seconds evaluates this phase's duration alone under the roofline model
// (per-span observability; RuntimeSeconds is the authority for whole-query
// time — it overlaps phases within a stage).
func (p *Phase) Seconds() float64 {
	return p.snapshot().seconds(p.cfg, p.scale)
}

// BilledCost prices this phase's storage activity alone under base
// pricing, mirroring Metrics.Cost for a single phase. Compute is a
// whole-query quantity and is not attributed to individual phases.
func (p *Phase) BilledCost(base Pricing) CostBreakdown {
	t := p.snapshot()
	pp := base.ForProfile(p.profile)
	dr := p.scale.DataRatio
	requests := (float64(t.requests)+t.sharedRequests)*p.scale.PartRatio +
		float64(t.rowFetchRequests)*dr
	return CostBreakdown{
		RequestUSD: requests / 1000 * pp.RequestPer1000,
		ScanUSD:    (float64(t.scanBytes) + t.sharedScanBytes) * dr / gb * pp.ScanPerGB,
		TransferUSD: (float64(t.selectReturnBytes)+t.sharedReturnBytes)*dr/gb*pp.ReturnPerGB +
			float64(t.getBytes)*dr/gb*pp.TransferPerGB,
	}
}

// Metrics collects the phases of one query execution.
type Metrics struct {
	mu     sync.Mutex
	cfg    Config
	scale  Scale
	phases []*Phase
}

// NewMetrics returns an empty Metrics using cfg for time accounting, at
// unit scale.
func NewMetrics(cfg Config) *Metrics {
	return NewMetricsScaled(cfg, Unit())
}

// NewMetricsScaled returns an empty Metrics reporting paper-scale time and
// cost per the given Scale.
func NewMetricsScaled(cfg Config, scale Scale) *Metrics {
	return &Metrics{cfg: cfg, scale: scale.normalized()}
}

// Phase opens (or returns) the named phase in the given stage, priced at
// the metrics' base Config/Pricing.
func (m *Metrics) Phase(name string, stage int) *Phase {
	return m.PhaseProfile(name, stage, Profile{})
}

// PhaseProfile opens (or returns) the named phase in the given stage, with
// the phase's storage requests timed and priced under the given backend
// profile. The profile binds on first open; later opens of the same
// (name, stage) reuse the existing phase.
func (m *Metrics) PhaseProfile(name string, stage int, profile Profile) *Phase {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.phases {
		if p.Name == name && p.Stage == stage {
			return p
		}
	}
	p := &Phase{
		Name: name, Stage: stage,
		cfg:     m.cfg.ForProfile(profile),
		profile: profile,
		scale:   m.scale,
	}
	m.phases = append(m.phases, p)
	return p
}

// Phases returns the opened phases (live pointers in a copied slice), in
// open order.
func (m *Metrics) Phases() []*Phase {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Phase{}, m.phases...)
}

// RuntimeSeconds evaluates the virtual runtime: within a stage phases
// overlap (max); stages are sequential (sum).
func (m *Metrics) RuntimeSeconds() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	byStage := map[int]float64{}
	for _, p := range m.phases {
		t := p.snapshot().seconds(p.cfg, m.scale)
		if t > byStage[p.Stage] {
			byStage[p.Stage] = t
		}
	}
	// Sum in sorted stage order: float addition is not associative, and the
	// runtime must be byte-identical run to run (the figures diff on it).
	stages := make([]int, 0, len(byStage))
	for s := range byStage {
		stages = append(stages, s)
	}
	sort.Ints(stages)
	var total float64
	for _, s := range stages {
		total += byStage[s]
	}
	return total
}

// Totals sums raw (unscaled) counters across phases. Row-fetch requests
// are included in the request count.
func (m *Metrics) Totals() (requests, scanBytes, selectReturnBytes, getBytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.phases {
		t := p.snapshot()
		requests += t.requests + t.rowFetchRequests
		scanBytes += t.scanBytes
		selectReturnBytes += t.selectReturnBytes
		getBytes += t.getBytes
	}
	return
}

// CacheTotals sums result-cache activity across phases: how many select
// responses were served from the compute-tier cache and how many response
// bytes that avoided re-buying from storage. Cache hits are deliberately
// absent from Totals' request count — they issue no storage request.
func (m *Metrics) CacheTotals() (hits, returnedBytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.phases {
		t := p.snapshot()
		hits += t.cacheHits
		returnedBytes += t.cacheReturnBytes
	}
	return
}

// SharedTotals sums shared-scan accounting across phases: the fractional
// request/scan/return shares this query was billed for its participation
// in shared passes, and the full response bytes those passes shipped to
// the node. Shared requests are fractional by construction (1/sharers
// each) and therefore deliberately absent from Totals' integer counts.
func (m *Metrics) SharedTotals() (requestShare, scanByteShare, returnByteShare float64, wireBytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, p := range m.phases {
		t := p.snapshot()
		requestShare += t.sharedRequests
		scanByteShare += t.sharedScanBytes
		returnByteShare += t.sharedReturnBytes
		wireBytes += t.sharedWireBytes
	}
	return
}

// CostBreakdown is the paper's four cost components (Fig. 1b etc.).
type CostBreakdown struct {
	ComputeUSD  float64
	RequestUSD  float64
	ScanUSD     float64
	TransferUSD float64
}

// Total sums the components.
func (c CostBreakdown) Total() float64 {
	return c.ComputeUSD + c.RequestUSD + c.ScanUSD + c.TransferUSD
}

// SharedAcrossN predicts the breakdown of the same work when its storage
// pass is shared by n concurrent queries (scanshare): the request, scan
// and transfer components split n ways, while compute stays whole — the
// node still parses the full response and re-filters locally. Planner
// estimates use it to see what admission-level sharing would save.
func (c CostBreakdown) SharedAcrossN(n int) CostBreakdown {
	if n <= 1 {
		return c
	}
	share := float64(n)
	return CostBreakdown{
		ComputeUSD:  c.ComputeUSD,
		RequestUSD:  c.RequestUSD / share,
		ScanUSD:     c.ScanUSD / share,
		TransferUSD: c.TransferUSD / share,
	}
}

// String renders the breakdown compactly.
func (c CostBreakdown) String() string {
	return fmt.Sprintf("$%.6f (compute %.6f, request %.6f, scan %.6f, transfer %.6f)",
		c.Total(), c.ComputeUSD, c.RequestUSD, c.ScanUSD, c.TransferUSD)
}

const gb = 1 << 30

// Cost prices the query under pricing p at the metrics' scale: byte
// volumes and per-row request counts are reported at paper size; bulk
// (per-partition) requests scale only by the partition ratio. Phases whose
// requests ran against a backend profile are billed at that profile's
// request/scan/transfer rates; the compute component always uses p's
// ComputePerHour (the node is the same wherever the bytes come from).
func (m *Metrics) Cost(p Pricing) CostBreakdown {
	m.mu.Lock()
	dr := m.scale.DataRatio
	var c CostBreakdown
	for _, ph := range m.phases {
		t := ph.snapshot()
		pp := p.ForProfile(ph.profile)
		requests := (float64(t.requests)+t.sharedRequests)*m.scale.PartRatio +
			float64(t.rowFetchRequests)*dr
		c.RequestUSD += requests / 1000 * pp.RequestPer1000
		c.ScanUSD += (float64(t.scanBytes) + t.sharedScanBytes) * dr / gb * pp.ScanPerGB
		c.TransferUSD += (float64(t.selectReturnBytes)+t.sharedReturnBytes)*dr/gb*pp.ReturnPerGB +
			float64(t.getBytes)*dr/gb*pp.TransferPerGB
	}
	m.mu.Unlock()
	c.ComputeUSD = m.RuntimeSeconds() / 3600 * p.ComputePerHour
	return c
}

// CostComputationAware prices the query under Suggestion-5 pricing: the
// scan component is scaled by per-phase expression weight. Phases that
// scanned without per-row compute pay BaseFraction of list price.
func (m *Metrics) CostComputationAware(p ComputationAwarePricing, avgNodesPerRow float64) CostBreakdown {
	c := m.Cost(p.Pricing)
	frac := p.BaseFraction + (1-p.BaseFraction)*math.Min(avgNodesPerRow/p.NodesAtFullPrice, 1)
	c.ScanUSD *= frac
	return c
}

// Report renders a per-phase table (debugging and EXPERIMENTS.md evidence).
func (m *Metrics) Report() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	sorted := make([]*Phase, len(m.phases))
	copy(sorted, m.phases)
	// Stage first, name as the tie-break: phases opened concurrently within
	// a stage land in racy creation order, and the report must be
	// deterministic (EXPLAIN ANALYZE goldens pin it byte-for-byte).
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Stage != sorted[j].Stage {
			return sorted[i].Stage < sorted[j].Stage
		}
		return sorted[i].Name < sorted[j].Name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %5s %10s %12s %12s %10s\n",
		"phase", "stage", "requests", "scanMB", "returnMB", "sec")
	for _, p := range sorted {
		t := p.snapshot()
		// Shared-pass slices fold into the billed scan/return columns so
		// the table still sums to what the query paid for.
		fmt.Fprintf(&b, "%-24s %5d %10d %12.2f %12.2f %10.3f\n",
			p.Name, p.Stage, t.requests+t.rowFetchRequests,
			(float64(t.scanBytes)+t.sharedScanBytes)/1e6,
			(float64(t.selectReturnBytes+t.getBytes)+t.sharedReturnBytes)/1e6,
			t.seconds(p.cfg, m.scale))
	}
	return b.String()
}
