package cloudsim

import "testing"

func TestWorkerBudget(t *testing.T) {
	cases := []struct {
		cores, workers, want int
	}{
		{32, 0, 1}, // unset: sequential
		{32, 1, 1},
		{32, 8, 8},
		{32, 64, 32}, // capped at the node's cores
		{0, 5, 5},    // no core count known: trust the knob
		{32, -3, 1},
	}
	for _, tc := range cases {
		cfg := Config{Cores: tc.cores, Workers: tc.workers}
		if got := cfg.WorkerBudget(); got != tc.want {
			t.Errorf("Cores=%d Workers=%d: budget %d, want %d", tc.cores, tc.workers, got, tc.want)
		}
	}
}

// TestWorkersShrinkServerWallClock: row work and parse terms divide their
// wall-clock across the worker budget; pure request latency does not, and
// byte-based pricing is untouched.
func TestWorkersShrinkServerWallClock(t *testing.T) {
	run := func(workers int) (*Metrics, *Phase) {
		cfg := DefaultConfig()
		cfg.Workers = workers
		m := NewMetrics(cfg)
		ph := m.Phase("load", 0)
		ph.AddGetRequest(1 << 30)    // 1 GB bulk load: parse-bound
		ph.AddServerRows(50_000_000) // plus heavy row work
		return m, ph
	}
	m1, _ := run(1)
	m8, _ := run(8)
	m32, _ := run(32)
	s1, s8, s32 := m1.RuntimeSeconds(), m8.RuntimeSeconds(), m32.RuntimeSeconds()
	if !(s32 < s8 && s8 < s1) {
		t.Fatalf("wall-clock must shrink with workers: %g, %g, %g", s1, s8, s32)
	}
	// The 1 GB load: ~10.7s parse + 10s row work at 1 worker; at 32 the
	// network transfer (~0.86s) becomes the bound.
	if s1 < 10 {
		t.Errorf("sequential run should be parse/row-work bound, got %gs", s1)
	}

	// Pricing is wall-clock (compute) plus byte volumes; the byte terms
	// must not change with the budget.
	p := DefaultPricing()
	c1, c32 := m1.Cost(p), m32.Cost(p)
	if c1.ScanUSD != c32.ScanUSD || c1.TransferUSD != c32.TransferUSD || c1.RequestUSD != c32.RequestUSD {
		t.Error("worker budget changed byte/request pricing")
	}
	if c32.ComputeUSD >= c1.ComputeUSD {
		t.Error("faster wall-clock should cost less compute")
	}

	// A phase that is pure request latency is unaffected.
	lat := func(workers int) float64 {
		cfg := DefaultConfig()
		cfg.Workers = workers
		m := NewMetrics(cfg)
		m.Phase("probe", 0).AddRowFetchRequest(100)
		return m.RuntimeSeconds()
	}
	if lat(1) != lat(32) {
		t.Error("request latency must not divide across workers")
	}
}

// TestJoinPlanFlipsWithWorkers: at a loose build-side filter the Bloom
// join beats the baseline on a sequential server, but a 32-worker server
// parses its full-table loads fast enough that the baseline wins — the
// planner decision the harness Parallel figure shows flipping.
func TestJoinPlanFlipsWithWorkers(t *testing.T) {
	build := PlanTableStats{
		Bytes: 250e6, Rows: 1_500_000, FilteredRows: 750_000,
		Cols: 8, Partitions: 32, FilterNodes: 5, ProjCols: 1,
	}
	probe := PlanTableStats{
		Bytes: 1_700e6, Rows: 15_000_000, FilteredRows: 15_000_000,
		Cols: 9, Partitions: 32,
	}
	matchFrac := build.Selectivity()
	pick := func(workers int) (string, PlanEstimate, PlanEstimate) {
		cfg := DefaultConfig()
		cfg.Workers = workers
		base := EstimateBaselineJoin(cfg, Unit(), DefaultPricing(), build, probe)
		bloom := EstimateBloomJoin(cfg, Unit(), DefaultPricing(), build, probe, matchFrac, 0.01)
		if bloom.Cheaper(base) {
			return "bloom", base, bloom
		}
		return "baseline", base, bloom
	}
	seqPick, seqBase, _ := pick(1)
	parPick, parBase, _ := pick(32)
	if seqPick != "bloom" {
		t.Errorf("sequential server should pick bloom, got %s", seqPick)
	}
	if parPick != "baseline" {
		t.Errorf("32-worker server should pick baseline, got %s", parPick)
	}
	if parBase.Seconds >= seqBase.Seconds {
		t.Errorf("baseline estimate should shrink with workers: %.3fs -> %.3fs",
			seqBase.Seconds, parBase.Seconds)
	}
}
