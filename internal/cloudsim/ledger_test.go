package cloudsim

import (
	"fmt"
	"sync"
	"testing"
)

func TestLedgerBillAccumulates(t *testing.T) {
	l := NewLedger()
	l.Bill("a", 1.5, CostBreakdown{ComputeUSD: 1, ScanUSD: 2}, false)
	l.Bill("a", 0.5, CostBreakdown{RequestUSD: 3, TransferUSD: 4}, true)
	l.Bill("b", 1, CostBreakdown{ComputeUSD: 10}, false)

	a := l.Usage("a")
	if a.Queries != 2 || a.Errors != 1 {
		t.Fatalf("tenant a: got %d queries, %d errors", a.Queries, a.Errors)
	}
	if a.RuntimeSec != 2.0 {
		t.Fatalf("tenant a runtime: got %g", a.RuntimeSec)
	}
	want := CostBreakdown{ComputeUSD: 1, RequestUSD: 3, ScanUSD: 2, TransferUSD: 4}
	if a.Cost != want {
		t.Fatalf("tenant a cost: got %+v want %+v", a.Cost, want)
	}
	if got := a.Cost.Total(); got != 10 {
		t.Fatalf("tenant a total: got %g", got)
	}
	if u := l.Usage("missing"); u != (TenantUsage{}) {
		t.Fatalf("unknown tenant not zero: %+v", u)
	}
	if names := l.Tenants(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("tenants: %v", names)
	}
	snap := l.Snapshot()
	if len(snap) != 2 || snap["b"].Cost.ComputeUSD != 10 {
		t.Fatalf("snapshot: %+v", snap)
	}
}

func TestLedgerConcurrentBilling(t *testing.T) {
	l := NewLedger()
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", w%2)
			for i := 0; i < per; i++ {
				l.Bill(tenant, 0.01, CostBreakdown{ComputeUSD: 0.001}, false)
			}
		}(w)
	}
	wg.Wait()
	total := l.Usage("t0").Queries + l.Usage("t1").Queries
	if total != workers*per {
		t.Fatalf("lost bills: got %d want %d", total, workers*per)
	}
}

func TestCostBreakdownScale(t *testing.T) {
	c := CostBreakdown{ComputeUSD: 2, RequestUSD: 4, ScanUSD: 6, TransferUSD: 8}
	half := c.Scale(0.5)
	want := CostBreakdown{ComputeUSD: 1, RequestUSD: 2, ScanUSD: 3, TransferUSD: 4}
	if half != want {
		t.Fatalf("scale: got %+v want %+v", half, want)
	}
}
