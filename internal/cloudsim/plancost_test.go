package cloudsim

import "testing"

// Stats shaped like a TPC-H customer ⋈ orders join at paper scale.
func planStats(filteredBuild int64) (build, probe PlanTableStats) {
	build = PlanTableStats{
		Bytes: 200 << 10, Rows: 1500, FilteredRows: filteredBuild,
		Cols: 8, Partitions: 4, FilterNodes: 3,
	}
	probe = PlanTableStats{
		Bytes: 2 << 20, Rows: 15000, FilteredRows: 15000,
		Cols: 9, Partitions: 4,
	}
	return
}

func paperScale() Scale { return Scale{DataRatio: 1000, PartRatio: 8} }

func TestEstimateJoinSelectiveBuildFavorsBloom(t *testing.T) {
	cfg, pricing := DefaultConfig(), DefaultPricing()
	build, probe := planStats(15) // 1% of customers survive
	base := EstimateBaselineJoin(cfg, paperScale(), pricing, build, probe)
	bloom := EstimateBloomJoin(cfg, paperScale(), pricing, build, probe, build.Selectivity(), 0.01)
	if !bloom.Cheaper(base) {
		t.Errorf("selective build at scale: bloom %+v should beat baseline %+v", bloom, base)
	}
	if bloom.Seconds <= 0 || bloom.USD <= 0 || base.Seconds <= 0 {
		t.Errorf("estimates must be positive: bloom %+v baseline %+v", bloom, base)
	}
}

func TestEstimateJoinUnselectiveTinyFavorsBaseline(t *testing.T) {
	cfg, pricing := DefaultConfig(), DefaultPricing()
	build, probe := planStats(1500) // no filter: everything survives
	base := EstimateBaselineJoin(cfg, Unit(), pricing, build, probe)
	bloom := EstimateBloomJoin(cfg, Unit(), pricing, build, probe, 1, 0.01)
	if !base.Cheaper(bloom) {
		t.Errorf("unselective at unit scale: baseline %+v should beat bloom %+v", base, bloom)
	}
}

func TestEstimateChainStepBloomWinsWhenIntermediateSmall(t *testing.T) {
	cfg, pricing := DefaultConfig(), DefaultPricing()
	_, probe := planStats(0)
	small := EstimateBloomProbe(cfg, paperScale(), pricing, 20, probe, 20.0/15000, 0.01)
	scan := EstimateScanJoin(cfg, paperScale(), pricing, 20, probe)
	if !small.Cheaper(scan) {
		t.Errorf("tiny intermediate: bloom probe %+v should beat full scan %+v", small, scan)
	}
}

func TestPlanEstimateCheaperTieBreaks(t *testing.T) {
	a := PlanEstimate{Seconds: 1, USD: 2, Score: 3}
	b := PlanEstimate{Seconds: 2, USD: 2, Score: 3}
	if !a.Cheaper(b) || b.Cheaper(a) {
		t.Error("runtime should break score/USD ties")
	}
}

func TestSelectivityBounds(t *testing.T) {
	if s := (PlanTableStats{}).Selectivity(); s != 1 {
		t.Errorf("empty table selectivity = %v", s)
	}
	if s := (PlanTableStats{Rows: 100, FilteredRows: 25}).Selectivity(); s != 0.25 {
		t.Errorf("selectivity = %v", s)
	}
}

func TestNarrowProjectionCheapensPushdownEstimate(t *testing.T) {
	cfg, pricing := DefaultConfig(), DefaultPricing()
	build, probe := planStats(15)
	wide := EstimateBloomJoin(cfg, paperScale(), pricing, build, probe, build.Selectivity(), 0.01)
	probe.ProjCols = 2 // of 9 columns
	narrow := EstimateBloomJoin(cfg, paperScale(), pricing, build, probe, build.Selectivity(), 0.01)
	if !narrow.Cheaper(wide) {
		t.Errorf("projected scan %+v should be cheaper than full-width %+v", narrow, wide)
	}
}

func TestBloomPredicateNodesMonotonic(t *testing.T) {
	if bloomPredicateNodes(0.0001) <= bloomPredicateNodes(0.1) {
		t.Error("tighter FPR means more hash functions, so more per-row work")
	}
	if bloomPredicateNodes(-1) <= 0 {
		t.Error("bad FPR should fall back to a positive default")
	}
}

// --- result-cache-aware estimates ---

func TestCachedFracMakesFilteredScanCheaper(t *testing.T) {
	cfg, pricing := DefaultConfig(), DefaultPricing()
	_, probe := planStats(0)
	cold := EstimateScanJoin(cfg, paperScale(), pricing, 500, probe)
	probe.CachedFrac = 1
	warm := EstimateScanJoin(cfg, paperScale(), pricing, 500, probe)
	if !warm.Cheaper(cold) || warm.USD >= cold.USD || warm.Seconds >= cold.Seconds {
		t.Errorf("fully resident scan must be strictly cheaper: warm %+v vs cold %+v", warm, cold)
	}
	// Partial residency lands in between.
	probe.CachedFrac = 0.5
	half := EstimateScanJoin(cfg, paperScale(), pricing, 500, probe)
	if !half.Cheaper(cold) || !warm.Cheaper(half) {
		t.Errorf("partial residency must price between cold %+v and warm %+v: %+v", cold, warm, half)
	}
}

func TestCachedScanPaysNoRequestScanTransfer(t *testing.T) {
	cfg, pricing := DefaultConfig(), DefaultPricing()
	_, probe := planStats(0)
	probe.Profile = CrossRegionS3Profile() // every billed component non-zero
	probe.CachedFrac = 1
	m := NewMetricsScaled(cfg, paperScale())
	ph := m.PhaseProfile("scan", 0, probe.Profile)
	addScan(ph, probe, 1, 0, probe.CachedFrac)
	c := m.Cost(pricing)
	if c.RequestUSD != 0 || c.ScanUSD != 0 || c.TransferUSD != 0 {
		t.Errorf("cache hits billed storage components: %+v", c)
	}
	if hits, bytes := m.CacheTotals(); hits != int64(probe.Partitions) || bytes == 0 {
		t.Errorf("cache totals = %d hits / %d bytes, want %d hits", hits, bytes, probe.Partitions)
	}
	if m.RuntimeSeconds() <= 0 {
		t.Error("cached scans still take decode time on the virtual clock")
	}
}

func TestCachedFracFlipsChainStrategy(t *testing.T) {
	cfg, pricing := DefaultConfig(), DefaultPricing()
	// A transfer-dominated probe on a metered cross-region link, with a
	// moderately selective intermediate: cold, the Bloom probe's smaller
	// return wins; with the plain scan resident, the filtered scan is free
	// of storage cost and must win.
	probe := PlanTableStats{
		Bytes: 4 << 20, Rows: 8000, FilteredRows: 8000,
		Cols: 3, Partitions: 4, ProjCols: 1,
		Profile: CrossRegionS3Profile(),
	}
	const buildRows, matchFrac = 4000, 0.5
	coldScan := EstimateScanJoin(cfg, paperScale(), pricing, buildRows, probe)
	bloom := EstimateBloomProbe(cfg, paperScale(), pricing, buildRows, probe, matchFrac, 0.01)
	if !bloom.Cheaper(coldScan) {
		t.Fatalf("cold: bloom %+v should beat filtered %+v (transfer-dominated setup)", bloom, coldScan)
	}
	probe.CachedFrac = 1
	warmScan := EstimateScanJoin(cfg, paperScale(), pricing, buildRows, probe)
	warmBloom := EstimateBloomProbe(cfg, paperScale(), pricing, buildRows, probe, matchFrac, 0.01)
	if !warmScan.Cheaper(warmBloom) {
		t.Errorf("warm: resident filtered scan %+v should beat bloom %+v (bloom probes are priced cold)",
			warmScan, warmBloom)
	}
}

func TestBloomBuildSideUsesCachedFrac(t *testing.T) {
	cfg, pricing := DefaultConfig(), DefaultPricing()
	build, probe := planStats(15)
	cold := EstimateBloomJoin(cfg, paperScale(), pricing, build, probe, build.Selectivity(), 0.01)
	build.CachedFrac = 1
	warm := EstimateBloomJoin(cfg, paperScale(), pricing, build, probe, build.Selectivity(), 0.01)
	if warm.USD >= cold.USD {
		t.Errorf("resident build scan must lower the bloom estimate: warm %+v vs cold %+v", warm, cold)
	}
	// The probe side is priced cold even when marked resident (the pushed
	// bloom predicate is query-specific).
	probe.CachedFrac = 1
	same := EstimateBloomJoin(cfg, paperScale(), pricing, build, probe, build.Selectivity(), 0.01)
	if same.USD != warm.USD || same.Seconds != warm.Seconds {
		t.Errorf("probe CachedFrac leaked into the bloom probe estimate: %+v vs %+v", same, warm)
	}
}

// --- index-scan estimates ---

// lineitemStats is a TPC-H lineitem-shaped table (paper scale via
// paperScale): ~7 GB equivalent, 16 columns, uniformly scattered values in
// the indexed column.
func lineitemStats(matched int64) (PlanTableStats, IndexScanStats) {
	s := PlanTableStats{
		Bytes: 1500 << 10, Rows: 12000, FilteredRows: matched,
		Cols: 16, Partitions: 4, FilterNodes: 3,
		Profile: S3Profile(),
	}
	idx := IndexScanStats{
		IndexBytes:  360 << 10, // value + two offsets per row
		MatchedRows: matched,
		PredNodes:   3,
	}
	return s, idx
}

func TestIndexScanCrossesOverWithSelectivity(t *testing.T) {
	cfg, pricing := DefaultConfig(), DefaultPricing()
	// 1% selectivity: the index resolves the predicate with a small scan
	// over the index objects and a handful of ranged fetches — strictly
	// cheaper than scanning the whole table through S3 Select.
	s, idx := lineitemStats(120)
	indexed := EstimateIndexScan(cfg, paperScale(), pricing, s, idx)
	filtered := EstimateFilteredScan(cfg, paperScale(), pricing, s)
	if indexed.USD >= filtered.USD || !indexed.Cheaper(filtered) {
		t.Errorf("1%% selectivity: index %+v should beat filtered scan %+v", indexed, filtered)
	}
	// 50% selectivity: millions of scattered ranges dominate; the filtered
	// scan must win strictly.
	s, idx = lineitemStats(6000)
	indexed = EstimateIndexScan(cfg, paperScale(), pricing, s, idx)
	filtered = EstimateFilteredScan(cfg, paperScale(), pricing, s)
	if filtered.USD >= indexed.USD || !filtered.Cheaper(indexed) {
		t.Errorf("50%% selectivity: filtered scan %+v should beat index %+v", filtered, indexed)
	}
}

func TestEstimateBaselineScanTransferDominated(t *testing.T) {
	cfg, pricing := DefaultConfig(), DefaultPricing()
	s, _ := lineitemStats(12000)
	base := EstimateBaselineScan(cfg, paperScale(), pricing, s)
	filtered := EstimateFilteredScan(cfg, paperScale(), pricing, s)
	if base.Seconds <= 0 || base.USD <= 0 {
		t.Fatalf("baseline estimate must be positive: %+v", base)
	}
	// With everything surviving the filter, both strategies move the whole
	// table; the baseline avoids the scan charge but parses in bulk.
	if base.USD >= filtered.USD+filtered.USD {
		t.Errorf("unselective baseline %+v wildly above filtered %+v", base, filtered)
	}
}

func TestExpectedCoalescedRanges(t *testing.T) {
	if n := ExpectedCoalescedRanges(0, 1000); n != 0 {
		t.Errorf("no matches should need no ranges, got %d", n)
	}
	if n := ExpectedCoalescedRanges(1000, 1000); n != 1 {
		t.Errorf("full selection coalesces to one range, got %d", n)
	}
	low := ExpectedCoalescedRanges(10, 100000)
	if low < 9 || low > 10 {
		t.Errorf("sparse matches barely coalesce: got %d for 10 matches", low)
	}
	half := ExpectedCoalescedRanges(50000, 100000)
	if half >= 50000 || half <= 0 {
		t.Errorf("half selection must coalesce meaningfully: got %d", half)
	}
}

func TestAddRangedGetRequestScalesWithRanges(t *testing.T) {
	cfg := DefaultConfig()
	few := NewMetricsScaled(cfg, paperScale())
	few.Phase("fetch", 0).AddRangedGetRequest(1<<20, 10)
	many := NewMetricsScaled(cfg, paperScale())
	many.Phase("fetch", 0).AddRangedGetRequest(1<<20, 10000)
	if many.RuntimeSeconds() <= few.RuntimeSeconds() {
		t.Errorf("more ranges in a batch must cost more time: %v vs %v",
			many.RuntimeSeconds(), few.RuntimeSeconds())
	}
	// The batch is one data-scaled request in the totals.
	req, _, _, getBytes := few.Totals()
	if req != 1 || getBytes != 1<<20 {
		t.Errorf("totals = %d requests / %d bytes, want 1 / %d", req, getBytes, 1<<20)
	}
}
