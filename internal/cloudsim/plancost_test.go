package cloudsim

import "testing"

// Stats shaped like a TPC-H customer ⋈ orders join at paper scale.
func planStats(filteredBuild int64) (build, probe PlanTableStats) {
	build = PlanTableStats{
		Bytes: 200 << 10, Rows: 1500, FilteredRows: filteredBuild,
		Cols: 8, Partitions: 4, FilterNodes: 3,
	}
	probe = PlanTableStats{
		Bytes: 2 << 20, Rows: 15000, FilteredRows: 15000,
		Cols: 9, Partitions: 4,
	}
	return
}

func paperScale() Scale { return Scale{DataRatio: 1000, PartRatio: 8} }

func TestEstimateJoinSelectiveBuildFavorsBloom(t *testing.T) {
	cfg, pricing := DefaultConfig(), DefaultPricing()
	build, probe := planStats(15) // 1% of customers survive
	base := EstimateBaselineJoin(cfg, paperScale(), pricing, build, probe)
	bloom := EstimateBloomJoin(cfg, paperScale(), pricing, build, probe, build.Selectivity(), 0.01)
	if !bloom.Cheaper(base) {
		t.Errorf("selective build at scale: bloom %+v should beat baseline %+v", bloom, base)
	}
	if bloom.Seconds <= 0 || bloom.USD <= 0 || base.Seconds <= 0 {
		t.Errorf("estimates must be positive: bloom %+v baseline %+v", bloom, base)
	}
}

func TestEstimateJoinUnselectiveTinyFavorsBaseline(t *testing.T) {
	cfg, pricing := DefaultConfig(), DefaultPricing()
	build, probe := planStats(1500) // no filter: everything survives
	base := EstimateBaselineJoin(cfg, Unit(), pricing, build, probe)
	bloom := EstimateBloomJoin(cfg, Unit(), pricing, build, probe, 1, 0.01)
	if !base.Cheaper(bloom) {
		t.Errorf("unselective at unit scale: baseline %+v should beat bloom %+v", base, bloom)
	}
}

func TestEstimateChainStepBloomWinsWhenIntermediateSmall(t *testing.T) {
	cfg, pricing := DefaultConfig(), DefaultPricing()
	_, probe := planStats(0)
	small := EstimateBloomProbe(cfg, paperScale(), pricing, 20, probe, 20.0/15000, 0.01)
	scan := EstimateScanJoin(cfg, paperScale(), pricing, 20, probe)
	if !small.Cheaper(scan) {
		t.Errorf("tiny intermediate: bloom probe %+v should beat full scan %+v", small, scan)
	}
}

func TestPlanEstimateCheaperTieBreaks(t *testing.T) {
	a := PlanEstimate{Seconds: 1, USD: 2, Score: 3}
	b := PlanEstimate{Seconds: 2, USD: 2, Score: 3}
	if !a.Cheaper(b) || b.Cheaper(a) {
		t.Error("runtime should break score/USD ties")
	}
}

func TestSelectivityBounds(t *testing.T) {
	if s := (PlanTableStats{}).Selectivity(); s != 1 {
		t.Errorf("empty table selectivity = %v", s)
	}
	if s := (PlanTableStats{Rows: 100, FilteredRows: 25}).Selectivity(); s != 0.25 {
		t.Errorf("selectivity = %v", s)
	}
}

func TestNarrowProjectionCheapensPushdownEstimate(t *testing.T) {
	cfg, pricing := DefaultConfig(), DefaultPricing()
	build, probe := planStats(15)
	wide := EstimateBloomJoin(cfg, paperScale(), pricing, build, probe, build.Selectivity(), 0.01)
	probe.ProjCols = 2 // of 9 columns
	narrow := EstimateBloomJoin(cfg, paperScale(), pricing, build, probe, build.Selectivity(), 0.01)
	if !narrow.Cheaper(wide) {
		t.Errorf("projected scan %+v should be cheaper than full-width %+v", narrow, wide)
	}
}

func TestBloomPredicateNodesMonotonic(t *testing.T) {
	if bloomPredicateNodes(0.0001) <= bloomPredicateNodes(0.1) {
		t.Error("tighter FPR means more hash functions, so more per-row work")
	}
	if bloomPredicateNodes(-1) <= 0 {
		t.Error("bad FPR should fall back to a positive default")
	}
}

// --- result-cache-aware estimates ---

func TestCachedFracMakesFilteredScanCheaper(t *testing.T) {
	cfg, pricing := DefaultConfig(), DefaultPricing()
	_, probe := planStats(0)
	cold := EstimateScanJoin(cfg, paperScale(), pricing, 500, probe)
	probe.CachedFrac = 1
	warm := EstimateScanJoin(cfg, paperScale(), pricing, 500, probe)
	if !warm.Cheaper(cold) || warm.USD >= cold.USD || warm.Seconds >= cold.Seconds {
		t.Errorf("fully resident scan must be strictly cheaper: warm %+v vs cold %+v", warm, cold)
	}
	// Partial residency lands in between.
	probe.CachedFrac = 0.5
	half := EstimateScanJoin(cfg, paperScale(), pricing, 500, probe)
	if !half.Cheaper(cold) || !warm.Cheaper(half) {
		t.Errorf("partial residency must price between cold %+v and warm %+v: %+v", cold, warm, half)
	}
}

func TestCachedScanPaysNoRequestScanTransfer(t *testing.T) {
	cfg, pricing := DefaultConfig(), DefaultPricing()
	_, probe := planStats(0)
	probe.Profile = CrossRegionS3Profile() // every billed component non-zero
	probe.CachedFrac = 1
	m := NewMetricsScaled(cfg, paperScale())
	ph := m.PhaseProfile("scan", 0, probe.Profile)
	addScan(ph, probe, 1, 0, probe.CachedFrac)
	c := m.Cost(pricing)
	if c.RequestUSD != 0 || c.ScanUSD != 0 || c.TransferUSD != 0 {
		t.Errorf("cache hits billed storage components: %+v", c)
	}
	if hits, bytes := m.CacheTotals(); hits != int64(probe.Partitions) || bytes == 0 {
		t.Errorf("cache totals = %d hits / %d bytes, want %d hits", hits, bytes, probe.Partitions)
	}
	if m.RuntimeSeconds() <= 0 {
		t.Error("cached scans still take decode time on the virtual clock")
	}
}

func TestCachedFracFlipsChainStrategy(t *testing.T) {
	cfg, pricing := DefaultConfig(), DefaultPricing()
	// A transfer-dominated probe on a metered cross-region link, with a
	// moderately selective intermediate: cold, the Bloom probe's smaller
	// return wins; with the plain scan resident, the filtered scan is free
	// of storage cost and must win.
	probe := PlanTableStats{
		Bytes: 4 << 20, Rows: 8000, FilteredRows: 8000,
		Cols: 3, Partitions: 4, ProjCols: 1,
		Profile: CrossRegionS3Profile(),
	}
	const buildRows, matchFrac = 4000, 0.5
	coldScan := EstimateScanJoin(cfg, paperScale(), pricing, buildRows, probe)
	bloom := EstimateBloomProbe(cfg, paperScale(), pricing, buildRows, probe, matchFrac, 0.01)
	if !bloom.Cheaper(coldScan) {
		t.Fatalf("cold: bloom %+v should beat filtered %+v (transfer-dominated setup)", bloom, coldScan)
	}
	probe.CachedFrac = 1
	warmScan := EstimateScanJoin(cfg, paperScale(), pricing, buildRows, probe)
	warmBloom := EstimateBloomProbe(cfg, paperScale(), pricing, buildRows, probe, matchFrac, 0.01)
	if !warmScan.Cheaper(warmBloom) {
		t.Errorf("warm: resident filtered scan %+v should beat bloom %+v (bloom probes are priced cold)",
			warmScan, warmBloom)
	}
}

func TestBloomBuildSideUsesCachedFrac(t *testing.T) {
	cfg, pricing := DefaultConfig(), DefaultPricing()
	build, probe := planStats(15)
	cold := EstimateBloomJoin(cfg, paperScale(), pricing, build, probe, build.Selectivity(), 0.01)
	build.CachedFrac = 1
	warm := EstimateBloomJoin(cfg, paperScale(), pricing, build, probe, build.Selectivity(), 0.01)
	if warm.USD >= cold.USD {
		t.Errorf("resident build scan must lower the bloom estimate: warm %+v vs cold %+v", warm, cold)
	}
	// The probe side is priced cold even when marked resident (the pushed
	// bloom predicate is query-specific).
	probe.CachedFrac = 1
	same := EstimateBloomJoin(cfg, paperScale(), pricing, build, probe, build.Selectivity(), 0.01)
	if same.USD != warm.USD || same.Seconds != warm.Seconds {
		t.Errorf("probe CachedFrac leaked into the bloom probe estimate: %+v vs %+v", same, warm)
	}
}
