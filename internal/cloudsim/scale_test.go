package cloudsim

import (
	"math"
	"testing"
)

func TestUnitScaleIsIdentity(t *testing.T) {
	s := Unit()
	if s.DataRatio != 1 || s.PartRatio != 1 {
		t.Fatalf("unit scale = %+v", s)
	}
	if got := (Scale{}).normalized(); got.DataRatio != 1 || got.PartRatio != 1 {
		t.Errorf("zero scale must normalize to unit: %+v", got)
	}
}

// The core scaling invariant: a run over 1/R of the data on 1/P of the
// partitions, scaled by {R, P}, reports the same time and cost as the
// full-size run at unit scale.
func TestScaleEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	const (
		fullBytes = int64(8e9)
		fullRows  = int64(60e6)
		fullParts = 32
		dataRatio = 1000.0
		partRatio = 8.0 // 4 partitions instead of 32
	)

	full := NewMetrics(cfg)
	fp := full.Phase("scan", 0)
	for i := 0; i < fullParts; i++ {
		fp.AddSelectRequest(SelectReq{
			ScanBytes: fullBytes / fullParts, ReturnedBytes: 4e6,
			Rows: fullRows / fullParts, ExprNodes: 10, Cells: fullRows / fullParts * 16,
		})
	}
	fp.AddServerRows(1e6)

	small := NewMetricsScaled(cfg, Scale{DataRatio: dataRatio, PartRatio: partRatio})
	sp := small.Phase("scan", 0)
	smallParts := fullParts / int(partRatio)
	smallBytes := int64(float64(fullBytes) / dataRatio)
	smallRows := int64(float64(fullRows) / dataRatio)
	for i := 0; i < smallParts; i++ {
		// Each small partition stands for partRatio paper partitions, so
		// it carries partRatio x the per-paper-partition returned bytes
		// (divided by the data ratio).
		sp.AddSelectRequest(SelectReq{
			ScanBytes: smallBytes / int64(smallParts), ReturnedBytes: int64(4e6 * partRatio / dataRatio),
			Rows: smallRows / int64(smallParts), ExprNodes: 10,
			Cells: smallRows / int64(smallParts) * 16,
		})
	}
	sp.AddServerRows(int64(1e6 / dataRatio))

	ft, st := full.RuntimeSeconds(), small.RuntimeSeconds()
	if math.Abs(ft-st)/ft > 0.02 {
		t.Errorf("scaled runtime %.3fs differs from full-size %.3fs", st, ft)
	}
	fc, sc := full.Cost(DefaultPricing()), small.Cost(DefaultPricing())
	if math.Abs(fc.ScanUSD-sc.ScanUSD)/fc.ScanUSD > 0.02 {
		t.Errorf("scaled scan cost %v differs from full-size %v", sc.ScanUSD, fc.ScanUSD)
	}
	if math.Abs(fc.TransferUSD-sc.TransferUSD)/fc.TransferUSD > 0.02 {
		t.Errorf("scaled transfer cost %v differs from full-size %v", sc.TransferUSD, fc.TransferUSD)
	}
}

func TestRowFetchScalesWithData(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMetricsScaled(cfg, Scale{DataRatio: 1000, PartRatio: 8})
	p := m.Phase("fetch", 0)
	for i := 0; i < 10; i++ {
		p.AddRowFetchRequest(100)
	}
	// 10 actual fetches stand for 10k paper-scale fetches.
	c := m.Cost(DefaultPricing())
	wantReq := 10.0 * 1000 / 1000 * 0.0004
	if math.Abs(c.RequestUSD-wantReq) > 1e-12 {
		t.Errorf("request cost = %v, want %v", c.RequestUSD, wantReq)
	}
	// CPU term: 10 * 1000 * 0.5ms = 5s.
	if sec := m.RuntimeSeconds(); math.Abs(sec-10*1000*cfg.RequestCPUSec) > 0.02*sec {
		t.Errorf("runtime = %v", sec)
	}
}

func TestBulkRequestsScaleWithPartitions(t *testing.T) {
	m := NewMetricsScaled(DefaultConfig(), Scale{DataRatio: 1000, PartRatio: 8})
	m.Phase("scan", 0).AddGetRequest(10)
	c := m.Cost(DefaultPricing())
	// 1 actual bulk request stands for 8 paper-scale partition requests.
	want := 8.0 / 1000 * 0.0004
	if math.Abs(c.RequestUSD-want) > 1e-15 {
		t.Errorf("request cost = %v, want %v", c.RequestUSD, want)
	}
}

func TestPhaseSecondsPrefix(t *testing.T) {
	m := NewMetrics(DefaultConfig())
	m.Phase("sample lineitem", 0).AddServerSeconds(2)
	m.Phase("sample orders", 1).AddServerSeconds(3)
	m.Phase("threshold scan", 2).AddServerSeconds(5)
	if got := m.PhaseSeconds("sample"); math.Abs(got-5) > 1e-9 {
		t.Errorf("PhaseSeconds(sample) = %v, want 5", got)
	}
	if got := m.PhaseSeconds("threshold"); math.Abs(got-5) > 1e-9 {
		t.Errorf("PhaseSeconds(threshold) = %v, want 5", got)
	}
	if got := m.PhaseSeconds("nope"); got != 0 {
		t.Errorf("PhaseSeconds(nope) = %v", got)
	}
}

func TestPhaseReturnedBytesScaled(t *testing.T) {
	m := NewMetricsScaled(DefaultConfig(), Scale{DataRatio: 100, PartRatio: 1})
	m.Phase("scan a", 0).AddSelectRequest(SelectReq{ScanBytes: 10, ReturnedBytes: 7})
	m.Phase("scan b", 0).AddGetRequest(3)
	if got := m.PhaseReturnedBytes("scan"); got != 1000 {
		t.Errorf("returned = %d, want (7+3)*100", got)
	}
}
