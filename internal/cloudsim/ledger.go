package cloudsim

import (
	"sort"
	"sync"
)

// Add returns the component-wise sum of two cost breakdowns.
func (c CostBreakdown) Add(o CostBreakdown) CostBreakdown {
	return CostBreakdown{
		ComputeUSD:  c.ComputeUSD + o.ComputeUSD,
		RequestUSD:  c.RequestUSD + o.RequestUSD,
		ScanUSD:     c.ScanUSD + o.ScanUSD,
		TransferUSD: c.TransferUSD + o.TransferUSD,
	}
}

// Scale returns the breakdown with every component multiplied by f
// (f = 1/n averages n summed queries).
func (c CostBreakdown) Scale(f float64) CostBreakdown {
	return CostBreakdown{
		ComputeUSD:  c.ComputeUSD * f,
		RequestUSD:  c.RequestUSD * f,
		ScanUSD:     c.ScanUSD * f,
		TransferUSD: c.TransferUSD * f,
	}
}

// TenantUsage is one tenant's accumulated metered activity: every query is
// priced by the cost model anyway, so the same numbers the figures plot
// double as the currency a multi-tenant server bills and throttles with.
type TenantUsage struct {
	// Queries counts completed executions billed to the tenant (successful
	// or not — a failed query still spent whatever it accrued before the
	// error).
	Queries int64
	// Errors counts the billed executions that ended in an error.
	Errors int64
	// RuntimeSec sums the queries' virtual runtimes.
	RuntimeSec float64
	// Cost sums the queries' simulated dollar cost.
	Cost CostBreakdown
}

// Ledger accumulates per-tenant query usage. All methods are safe for
// concurrent use; the zero Ledger is ready.
type Ledger struct {
	mu      sync.Mutex
	tenants map[string]*TenantUsage
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger { return &Ledger{} }

// Bill charges one executed query to the tenant.
func (l *Ledger) Bill(tenant string, runtimeSec float64, cost CostBreakdown, failed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.tenants == nil {
		l.tenants = map[string]*TenantUsage{}
	}
	u := l.tenants[tenant]
	if u == nil {
		u = &TenantUsage{}
		l.tenants[tenant] = u
	}
	u.Queries++
	if failed {
		u.Errors++
	}
	u.RuntimeSec += runtimeSec
	u.Cost = u.Cost.Add(cost)
}

// Usage returns the tenant's accumulated totals (zero for an unknown
// tenant).
func (l *Ledger) Usage(tenant string) TenantUsage {
	l.mu.Lock()
	defer l.mu.Unlock()
	if u := l.tenants[tenant]; u != nil {
		return *u
	}
	return TenantUsage{}
}

// Tenants lists the billed tenant names, sorted.
func (l *Ledger) Tenants() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	names := make([]string, 0, len(l.tenants))
	for n := range l.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot copies the whole ledger.
func (l *Ledger) Snapshot() map[string]TenantUsage {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]TenantUsage, len(l.tenants))
	for n, u := range l.tenants {
		out[n] = *u
	}
	return out
}
