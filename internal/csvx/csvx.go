// Package csvx implements CSV encoding and decoding with exact byte-offset
// tracking. PushdownDB's index tables (Section IV-A of the paper) store the
// first and last byte offset of every data row so that individual rows can
// be fetched with ranged GET requests; the standard library csv package
// does not expose offsets, hence this implementation.
//
// The dialect is RFC-4180-ish: comma separator, \n row terminator, fields
// containing comma, quote or newline are double-quoted with "" escaping.
package csvx

import (
	"fmt"
	"io"
	"strings"
)

// Writer encodes rows and tracks the byte offset of each.
type Writer struct {
	w   io.Writer
	off int64
	buf []byte
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Offset returns the byte offset the next row will start at.
func (w *Writer) Offset() int64 { return w.off }

// WriteRow writes one row and returns the inclusive byte range [first, last]
// of the row's bytes excluding the trailing newline, matching the paper's
// |value|first_byte_offset|last_byte_offset| index-table convention.
func (w *Writer) WriteRow(fields []string) (first, last int64, err error) {
	w.buf = w.buf[:0]
	for i, f := range fields {
		if i > 0 {
			w.buf = append(w.buf, ',')
		}
		w.buf = appendField(w.buf, f)
	}
	rowLen := int64(len(w.buf))
	w.buf = append(w.buf, '\n')
	if _, err := w.w.Write(w.buf); err != nil {
		return 0, 0, err
	}
	first = w.off
	last = w.off + rowLen - 1
	w.off += rowLen + 1
	return first, last, nil
}

func appendField(buf []byte, f string) []byte {
	if !strings.ContainsAny(f, ",\"\n\r") {
		return append(buf, f...)
	}
	buf = append(buf, '"')
	for i := 0; i < len(f); i++ {
		if f[i] == '"' {
			buf = append(buf, '"', '"')
		} else {
			buf = append(buf, f[i])
		}
	}
	return append(buf, '"')
}

// Encode renders rows (with optional header) to a byte slice.
func Encode(header []string, rows [][]string) []byte {
	var sb strings.Builder
	w := NewWriter(&sb)
	if header != nil {
		_, _, _ = w.WriteRow(header)
	}
	for _, r := range rows {
		_, _, _ = w.WriteRow(r)
	}
	return []byte(sb.String())
}

// Scanner iterates rows of CSV data, reporting each row's byte range.
type Scanner struct {
	data   []byte
	pos    int64
	fields []string
	first  int64
	last   int64
	err    error
}

// NewScanner returns a scanner over data.
func NewScanner(data []byte) *Scanner { return &Scanner{data: data} }

// Scan advances to the next row, returning false at end of input or error.
func (s *Scanner) Scan() bool {
	if s.err != nil || s.pos >= int64(len(s.data)) {
		return false
	}
	s.fields = s.fields[:0]
	s.first = s.pos
	var field strings.Builder
	inQuotes := false
	startedQuoted := false
	fieldHasData := false
	flush := func() {
		s.fields = append(s.fields, field.String())
		field.Reset()
		fieldHasData = false
		startedQuoted = false
	}
	for s.pos < int64(len(s.data)) {
		c := s.data[s.pos]
		if inQuotes {
			if c == '"' {
				if s.pos+1 < int64(len(s.data)) && s.data[s.pos+1] == '"' {
					field.WriteByte('"')
					s.pos += 2
					continue
				}
				inQuotes = false
				s.pos++
				continue
			}
			field.WriteByte(c)
			s.pos++
			continue
		}
		switch c {
		case '"':
			if !fieldHasData {
				inQuotes = true
				startedQuoted = true
				fieldHasData = true
			} else {
				field.WriteByte(c)
			}
			s.pos++
		case ',':
			flush()
			s.pos++
		case '\r':
			s.pos++
		case '\n':
			s.last = s.pos - 1
			if s.last >= 1 && s.data[s.last] == '\r' {
				s.last--
			}
			s.pos++
			flush()
			return true
		default:
			field.WriteByte(c)
			fieldHasData = true
			s.pos++
		}
	}
	if inQuotes {
		s.err = fmt.Errorf("csvx: unterminated quoted field at offset %d", s.first)
		return false
	}
	_ = startedQuoted
	// Final row without trailing newline.
	s.last = int64(len(s.data)) - 1
	flush()
	return true
}

// Fields returns the current row's fields; valid until the next Scan.
func (s *Scanner) Fields() []string { return s.fields }

// Range returns the inclusive byte range of the current row (newline
// excluded).
func (s *Scanner) Range() (first, last int64) { return s.first, s.last }

// Err reports a scan error, if any.
func (s *Scanner) Err() error { return s.err }

// Decode parses all rows. If hasHeader, the first row is returned
// separately.
func Decode(data []byte, hasHeader bool) (header []string, rows [][]string, err error) {
	sc := NewScanner(data)
	for sc.Scan() {
		row := make([]string, len(sc.Fields()))
		copy(row, sc.Fields())
		if hasHeader && header == nil {
			header = row
			continue
		}
		rows = append(rows, row)
	}
	return header, rows, sc.Err()
}

// RowRanges parses data and returns the byte range of every data row
// (skipping the header when hasHeader). Index-table construction uses this.
func RowRanges(data []byte, hasHeader bool) ([][2]int64, error) {
	sc := NewScanner(data)
	var out [][2]int64
	first := true
	for sc.Scan() {
		if hasHeader && first {
			first = false
			continue
		}
		first = false
		a, b := sc.Range()
		out = append(out, [2]int64{a, b})
	}
	return out, sc.Err()
}
