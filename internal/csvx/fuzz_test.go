package csvx

import (
	"reflect"
	"testing"
)

// FuzzCSVDecode checks the decoder/encoder pair on arbitrary bytes: Decode
// must never panic, and whatever it accepts must survive an encode/decode
// round trip unchanged (Encode canonicalizes quoting, so re-decoding the
// encoding must reproduce the exact header and rows). Byte-range tracking
// is exercised through RowRanges on the same input.
func FuzzCSVDecode(f *testing.F) {
	seeds := [][]byte{
		[]byte("a,b,c\n1,2,3\n4,5,6\n"),
		[]byte("k,g,v\n1,x,9.5\n2,,NaN\n"),
		[]byte(`name,q` + "\n" + `"Smith, Al",3` + "\n" + `"O""Hara",4` + "\n"),
		[]byte("a\r\nb\r\n"),
		[]byte("unterminated,last,row"),
		[]byte("\n\n\n"),
		[]byte(""),
		[]byte(`"quoted`),
		[]byte("00501,1e3,-0.0,Inf\n"),
	}
	for _, s := range seeds {
		f.Add(s, true)
		f.Add(s, false)
	}
	f.Fuzz(func(t *testing.T, data []byte, hasHeader bool) {
		header, rows, err := Decode(data, hasHeader)
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		if _, err := RowRanges(data, hasHeader); err != nil {
			t.Fatalf("Decode accepted input RowRanges rejects: %v", err)
		}
		enc := Encode(header, rows)
		h2, r2, err := Decode(enc, hasHeader && header != nil)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v\nencoded: %q", err, enc)
		}
		if !reflect.DeepEqual(header, h2) {
			t.Fatalf("header not stable: %q -> %q (encoded %q)", header, h2, enc)
		}
		if !sameRows(rows, r2) {
			t.Fatalf("rows not stable:\nfirst:  %q\nsecond: %q\nencoded: %q", rows, r2, enc)
		}
	})
}

// sameRows compares row sets treating nil and empty as equal.
func sameRows(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
