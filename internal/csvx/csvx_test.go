package csvx

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	header := []string{"a", "b", "c"}
	rows := [][]string{
		{"1", "plain", "2.5"},
		{"2", "with,comma", "x"},
		{"3", `with"quote`, "y"},
		{"4", "with\nnewline", "z"},
		{"5", "", "empty-mid"},
	}
	data := Encode(header, rows)
	h2, r2, err := Decode(data, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h2, header) {
		t.Errorf("header = %v", h2)
	}
	if !reflect.DeepEqual(r2, rows) {
		t.Errorf("rows = %v, want %v", r2, rows)
	}
}

func TestWriterOffsets(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	f1, l1, err := w.WriteRow([]string{"ab", "cd"}) // "ab,cd\n" bytes 0..4
	if err != nil {
		t.Fatal(err)
	}
	if f1 != 0 || l1 != 4 {
		t.Errorf("row1 range = [%d,%d], want [0,4]", f1, l1)
	}
	f2, l2, _ := w.WriteRow([]string{"x"}) // starts at 6
	if f2 != 6 || l2 != 6 {
		t.Errorf("row2 range = [%d,%d], want [6,6]", f2, l2)
	}
	// The ranges must slice the raw bytes back to the row text.
	data := sb.String()
	if data[f1:l1+1] != "ab,cd" || data[f2:l2+1] != "x" {
		t.Errorf("slicing by range broken: %q, %q", data[f1:l1+1], data[f2:l2+1])
	}
}

func TestScannerRanges(t *testing.T) {
	data := Encode(nil, [][]string{{"aa", "bb"}, {"c,c", "d"}, {"e"}})
	sc := NewScanner(data)
	var got [][2]int64
	for sc.Scan() {
		a, b := sc.Range()
		got = append(got, [2]int64{a, b})
	}
	if sc.Err() != nil {
		t.Fatal(sc.Err())
	}
	if len(got) != 3 {
		t.Fatalf("rows = %d", len(got))
	}
	// Every range must slice to a parseable single row with same fields.
	_, rows, _ := Decode(data, false)
	for i, r := range got {
		frag := data[r[0] : r[1]+1]
		_, one, err := Decode(frag, false)
		if err != nil || len(one) != 1 {
			t.Fatalf("row %d fragment %q: %v", i, frag, err)
		}
		if !reflect.DeepEqual(one[0], rows[i]) {
			t.Errorf("row %d fragment fields = %v, want %v", i, one[0], rows[i])
		}
	}
}

func TestNoTrailingNewline(t *testing.T) {
	_, rows, err := Decode([]byte("a,b\nc,d"), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1][0] != "c" || rows[1][1] != "d" {
		t.Errorf("rows = %v", rows)
	}
}

func TestCRLF(t *testing.T) {
	_, rows, err := Decode([]byte("a,b\r\nc,d\r\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0][1] != "b" {
		t.Errorf("rows = %v", rows)
	}
}

func TestQuotedEdgeCases(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{`"a","b"` + "\n", []string{"a", "b"}},
		{`"a""b",c` + "\n", []string{`a"b`, "c"}},
		{`"",x` + "\n", []string{"", "x"}},
		{`a"b,c` + "\n", []string{`a"b`, "c"}}, // quote mid-field is literal
	}
	for _, c := range cases {
		_, rows, err := Decode([]byte(c.in), false)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if !reflect.DeepEqual(rows[0], c.want) {
			t.Errorf("Decode(%q) = %v, want %v", c.in, rows[0], c.want)
		}
	}
}

func TestUnterminatedQuote(t *testing.T) {
	sc := NewScanner([]byte(`"abc`))
	for sc.Scan() {
	}
	if sc.Err() == nil {
		t.Error("expected error for unterminated quote")
	}
}

func TestRowRanges(t *testing.T) {
	data := Encode([]string{"h1", "h2"}, [][]string{{"1", "2"}, {"3", "4"}})
	ranges, err := RowRanges(data, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranges) != 2 {
		t.Fatalf("ranges = %v", ranges)
	}
	if string(data[ranges[0][0]:ranges[0][1]+1]) != "1,2" {
		t.Errorf("first row slice = %q", data[ranges[0][0]:ranges[0][1]+1])
	}
	if string(data[ranges[1][0]:ranges[1][1]+1]) != "3,4" {
		t.Errorf("second row slice = %q", data[ranges[1][0]:ranges[1][1]+1])
	}
}

func TestEmptyInput(t *testing.T) {
	_, rows, err := Decode(nil, false)
	if err != nil || rows != nil {
		t.Errorf("empty input: %v %v", rows, err)
	}
}

// Property: encode/decode round trip for arbitrary field contents.
func TestQuickRoundTrip(t *testing.T) {
	f := func(a, b, c string) bool {
		// \r is normalized away by the scanner; exclude it from the property.
		clean := func(s string) string { return strings.ReplaceAll(s, "\r", "") }
		row := []string{clean(a), clean(b), clean(c)}
		data := Encode(nil, [][]string{row})
		_, rows, err := Decode(data, false)
		return err == nil && len(rows) == 1 && reflect.DeepEqual(rows[0], row)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every row range slices to bytes that reparse to the same fields.
func TestQuickRangesSliceToRows(t *testing.T) {
	f := func(vals [][3]uint16) bool {
		if len(vals) == 0 {
			return true
		}
		var rows [][]string
		for _, v := range vals {
			rows = append(rows, []string{
				strings.Repeat("x", int(v[0]%7)),
				"q\"" + strings.Repeat(",", int(v[1]%3)),
				strings.Repeat("\n", int(v[2]%2)) + "z",
			})
		}
		data := Encode(nil, rows)
		ranges, err := RowRanges(data, false)
		if err != nil || len(ranges) != len(rows) {
			return false
		}
		for i, r := range ranges {
			_, one, err := Decode(data[r[0]:r[1]+1], false)
			if err != nil || len(one) != 1 || !reflect.DeepEqual(one[0], rows[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
