package csvx

import (
	"fmt"
	"testing"
)

func benchData(rows int) []byte {
	data := make([][]string, rows)
	for i := range data {
		data[i] = []string{
			fmt.Sprint(i), "some,quoted", fmt.Sprintf("%.4f", float64(i)*1.5),
			"plain-text-field",
		}
	}
	return Encode([]string{"a", "b", "c", "d"}, data)
}

func BenchmarkScan(b *testing.B) {
	data := benchData(10000)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := NewScanner(data)
		n := 0
		for sc.Scan() {
			n += len(sc.Fields())
		}
		if sc.Err() != nil {
			b.Fatal(sc.Err())
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	rows := make([][]string, 10000)
	for i := range rows {
		rows[i] = []string{fmt.Sprint(i), "x", "1.5"}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Encode([]string{"a", "b", "c"}, rows)
	}
}

func BenchmarkRowRanges(b *testing.B) {
	data := benchData(10000)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RowRanges(data, true); err != nil {
			b.Fatal(err)
		}
	}
}
