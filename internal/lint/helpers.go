package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Import paths the analyzers key on. The suite is repo-specific by design:
// the invariants are this module's, not generic Go style.
const (
	pkgPrefix    = "pushdowndb/internal/"
	pkgS3api     = "pushdowndb/internal/s3api"
	pkgCloudsim  = "pushdowndb/internal/cloudsim"
	pkgEngine    = "pushdowndb/internal/engine"
	pkgIndex     = "pushdowndb/internal/index"
	pkgExpr      = "pushdowndb/internal/expr"
	pkgHarness   = "pushdowndb/internal/harness"
	pkgScanshare = "pushdowndb/internal/scanshare"
	pkgVec       = "pushdowndb/internal/vec"
	pkgObs       = "pushdowndb/internal/obs"
)

// scopeOf builds an InScope predicate admitting exactly the given paths.
func scopeOf(paths ...string) func(string) bool {
	set := map[string]bool{}
	for _, p := range paths {
		set[p] = true
	}
	return func(p string) bool { return set[p] }
}

// walk visits every node of every file, passing the ancestor stack
// (outermost first, n itself last).
func walk(files []*ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			fn(n, stack)
			return true
		})
	}
}

// enclosingFuncs returns the stack's function nodes, innermost first.
func enclosingFuncs(stack []ast.Node) []ast.Node {
	var out []ast.Node
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			out = append(out, stack[i])
		}
	}
	return out
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// namedAs reports whether t — through one pointer — is the named type
// path.name.
func namedAs(t types.Type, path, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == path && obj.Name() == name
}

func isContext(t types.Type) bool  { return namedAs(t, "context", "Context") }
func isPhasePtr(t types.Type) bool { return namedAs(t, pkgCloudsim, "Phase") }

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// staticCallee resolves the function object a call statically invokes, or
// nil for calls through function values, builtins and type conversions.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// calleeIs reports whether call statically invokes pkgPath.name.
func calleeIs(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := staticCallee(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// backendMethod returns the method name when call is a method call on the
// s3api.Backend or s3api.Putter interface.
func backendMethod(info *types.Info, call *ast.CallExpr) (name string, ok bool) {
	sel, isSel := unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return "", false
	}
	recv := s.Recv()
	if namedAs(recv, pkgS3api, "Backend") || namedAs(recv, pkgS3api, "Putter") {
		return sel.Sel.Name, true
	}
	return "", false
}

// ctxParam returns the name of fn's first named context.Context parameter.
func ctxParam(info *types.Info, fn ast.Node) (string, bool) {
	var ft *ast.FuncType
	switch f := fn.(type) {
	case *ast.FuncDecl:
		ft = f.Type
	case *ast.FuncLit:
		ft = f.Type
	default:
		return "", false
	}
	if ft.Params == nil {
		return "", false
	}
	for _, field := range ft.Params.List {
		for _, n := range field.Names {
			if n.Name == "_" {
				continue
			}
			if obj := info.Defs[n]; obj != nil && isContext(obj.Type()) {
				return n.Name, true
			}
		}
	}
	return "", false
}

// phaseVisible reports whether any of the functions declares — as a
// parameter or a local, at or before pos — a *cloudsim.Phase.
func phaseVisible(info *types.Info, fns []ast.Node, pos token.Pos) bool {
	for _, fn := range fns {
		found := false
		ast.Inspect(fn, func(n ast.Node) bool {
			id, isIdent := n.(*ast.Ident)
			if !isIdent {
				return true
			}
			if obj := info.Defs[id]; obj != nil && id.Pos() < pos && isPhasePtr(obj.Type()) {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// ownReturns collects fn's return statements, excluding those belonging to
// nested function literals.
func ownReturns(fn ast.Node) []*ast.ReturnStmt {
	var body *ast.BlockStmt
	switch f := fn.(type) {
	case *ast.FuncDecl:
		body = f.Body
	case *ast.FuncLit:
		body = f.Body
	}
	if body == nil {
		return nil
	}
	var out []*ast.ReturnStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch r := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			out = append(out, r)
		}
		return true
	})
	return out
}

// rootIdent returns the base identifier of an lvalue expression
// (x, x.f, x.f[i].g → x).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// exprText renders a short expression for structural comparison
// (x = x + y recognition). Good enough for idents and selector chains.
func exprText(e ast.Expr) string {
	switch v := unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprText(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return exprText(v.X) + "[" + exprText(v.Index) + "]"
	case *ast.BasicLit:
		return v.Value
	case *ast.StarExpr:
		return "*" + exprText(v.X)
	default:
		return "?"
	}
}

// accumulatesInto reports whether the assignment grows its left-hand side
// from its own previous value (x += y, or x = x + y), returning the LHS.
func accumulatesInto(as *ast.AssignStmt) (ast.Expr, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, false
	}
	lhs := as.Lhs[0]
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return lhs, true
	case token.ASSIGN:
		bin, ok := unparen(as.Rhs[0]).(*ast.BinaryExpr)
		if !ok {
			return nil, false
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			if exprText(bin.X) == exprText(lhs) || exprText(bin.Y) == exprText(lhs) {
				return lhs, true
			}
		}
	}
	return nil, false
}

func hasPrefixAny(s string, prefixes ...string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(s, p) {
			return true
		}
	}
	return false
}
