// Package analysis is a dependency-free work-alike of the
// golang.org/x/tools/go/analysis vocabulary, sized for this repo's
// pushdownlint suite. It exists because the engine's invariants (context
// threading, cost metering, structured error kinds, byte-identical
// determinism) must be enforced by machine without pulling a module the
// build environment cannot fetch: everything here runs on the standard
// library's go/ast and go/types.
//
// An Analyzer inspects one type-checked package at a time through a Pass
// and reports Diagnostics. The driver (internal/lint.Run, used by both
// cmd/pushdownlint and the linttest fixtures) applies the suite-wide
// suppression convention before diagnostics reach the user:
//
//	//lint:ignore <analyzer> <reason>
//
// placed either on the flagged line or on the line directly above it
// silences that analyzer there. The reason is mandatory — a suppression
// documents *why* the invariant may be broken at that site (an API
// boundary wrapper, an unmetered catalog read), and an ignore without one
// is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the analyzer's identifier — what diagnostics are tagged
	// with and what //lint:ignore directives must name.
	Name string
	// Doc is the one-paragraph description printed by pushdownlint -help:
	// the invariant the analyzer encodes and why the repo has it.
	Doc string
	// InScope reports whether the analyzer applies to a package import
	// path. A nil InScope means every package. The driver consults it;
	// linttest bypasses it so fixtures exercise the rule body directly.
	InScope func(pkgPath string) bool
	// Run inspects one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings recorded so far, position-sorted so
// the driver's output is deterministic (the suite eats its own cooking).
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diags, func(i, j int) bool {
		a, b := p.diags[i].Pos, p.diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return p.diags
}

// ignoreRe matches the suppression directive. Group 1 is the analyzer
// name (or * for all), group 2 the reason.
var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s*(.*)$`)

// Suppression is one //lint:ignore directive.
type Suppression struct {
	Pos      token.Position
	Analyzer string // "*" silences every analyzer
	Reason   string
}

// Suppressions extracts every //lint:ignore directive from the files.
// Directives with an empty reason are returned with Reason == "" so the
// driver can reject them.
func Suppressions(fset *token.FileSet, files []*ast.File) []Suppression {
	var out []Suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				out = append(out, Suppression{
					Pos:      fset.Position(c.Pos()),
					Analyzer: m[1],
					Reason:   strings.TrimSpace(m[2]),
				})
			}
		}
	}
	return out
}

// Filter drops diagnostics silenced by a suppression on the same line or
// on the line directly above, and reports suppressions that are missing
// their mandatory reason as diagnostics in their own right (tagged
// "lint"). Unused suppressions are harmless — the code they guard may
// only trip the analyzer under older rule versions — so they are not
// reported.
func Filter(diags []Diagnostic, sups []Suppression) []Diagnostic {
	type key struct {
		file string
		line int
	}
	byLine := map[key][]Suppression{}
	for _, s := range sups {
		k := key{s.Pos.Filename, s.Pos.Line}
		byLine[k] = append(byLine[k], s)
	}
	matches := func(d Diagnostic, line int) bool {
		for _, s := range byLine[key{d.Pos.Filename, line}] {
			if (s.Analyzer == d.Analyzer || s.Analyzer == "*") && s.Reason != "" {
				return true
			}
		}
		return false
	}
	var out []Diagnostic
	for _, d := range diags {
		if matches(d, d.Pos.Line) || matches(d, d.Pos.Line-1) {
			continue
		}
		out = append(out, d)
	}
	for _, s := range sups {
		if s.Reason == "" {
			out = append(out, Diagnostic{
				Pos:      s.Pos,
				Analyzer: "lint",
				Message:  fmt.Sprintf("//lint:ignore %s needs a reason: every suppression documents why the invariant may be broken here", s.Analyzer),
			})
		}
	}
	return out
}
