package lint

import (
	"testing"

	"pushdowndb/internal/lint/linttest"
)

// Each analyzer runs against its fixture package under testdata/src/ (a
// location `go list ./...` never expands, so the fixtures stay out of the
// build and out of pushdownlint's own sweep). The want-comments pin both
// the findings and the suppression convention.

func TestCtxflow(t *testing.T)        { linttest.Run(t, Ctxflow, "testdata/src/ctxflow") }
func TestMetered(t *testing.T)        { linttest.Run(t, Metered, "testdata/src/metered") }
func TestErrkind(t *testing.T)        { linttest.Run(t, Errkind, "testdata/src/errkind") }
func TestMapDeterminism(t *testing.T) { linttest.Run(t, MapDeterminism, "testdata/src/mapdet") }
func TestExactAgg(t *testing.T)       { linttest.Run(t, ExactAgg, "testdata/src/exactagg") }
func TestSpanphase(t *testing.T)      { linttest.Run(t, Spanphase, "testdata/src/spanphase") }

// The expr fixture type-checks as pushdowndb/internal/expr, exercising
// exactagg's stricter expr-layer rule (all float accumulation banned).
func TestExactAggExprLayer(t *testing.T) { linttest.Run(t, ExactAgg, "testdata/src/expr") }
