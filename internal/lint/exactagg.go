package lint

import (
	"go/ast"

	"pushdowndb/internal/lint/analysis"
)

// ExactAgg guards the exact-aggregation discipline (PR 2): merge results
// must not depend on the order partial results arrive in, which rules
// float64 accumulation out of two places.
//
// First, the expr package entirely: aggregation state (expr.AggState) sums
// in math/big.Float at fixed precision exactly so that merge order cannot
// perturb the final digits. Any float32/float64 accumulation introduced
// there reopens the hole, so inside pkgExpr every float accumulation is a
// finding.
//
// Second, anywhere in scope: accumulating a float into a variable
// captured from an enclosing scope, from inside a closure that runs
// concurrently (launched with `go`, or handed to another function as a
// callback — worker pools like forEachPart run those on many goroutines).
// Such sums add in completion order, which varies run to run. Accumulate
// into a per-worker slot instead and fold the slots in index order after
// the barrier.
var ExactAgg = &analysis.Analyzer{
	Name: "exactagg",
	Doc: "no float accumulation in expr's exact-aggregation layer, and no float " +
		"accumulation into captured variables from concurrently-run closures — " +
		"merge order must not perturb results",
	InScope: scopeOf(pkgExpr, pkgEngine, pkgHarness, pkgVec),
	Run:     runExactAgg,
}

func runExactAgg(pass *analysis.Pass) error {
	inExpr := pass.Pkg.Path() == pkgExpr
	walk(pass.Files, func(n ast.Node, stack []ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		lhs, acc := accumulatesInto(as)
		if !acc {
			return
		}
		t := pass.Info.Types[lhs].Type
		if t == nil || !isFloat(t) {
			return
		}
		if inExpr {
			pass.Reportf(as.Pos(),
				"float accumulation in the exact-aggregation layer; sum through big.Float (AggState) so merge order cannot perturb results")
			return
		}
		lit, how := concurrentClosure(stack)
		if lit == nil {
			return
		}
		root := rootIdent(lhs)
		if root == nil {
			return
		}
		obj := pass.Info.Uses[root]
		if obj == nil {
			obj = pass.Info.Defs[root]
		}
		if obj == nil || (obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()) {
			return // accumulator is local to the closure: per-worker, fine
		}
		pass.Reportf(as.Pos(),
			"float accumulation into captured %q from a closure %s sums in completion order, which varies run to run; accumulate per worker and merge in index order",
			root.Name, how)
	})
	return nil
}

// concurrentClosure returns the innermost enclosing FuncLit when that
// closure may run concurrently with its definer: launched by a go
// statement, or passed to another function as an argument.
func concurrentClosure(stack []ast.Node) (*ast.FuncLit, string) {
	for i := len(stack) - 1; i >= 0; i-- {
		lit, ok := stack[i].(*ast.FuncLit)
		if !ok {
			continue
		}
		// How is this literal used? Look at its parents.
		for j := i - 1; j >= 0; j-- {
			switch p := stack[j].(type) {
			case *ast.CallExpr:
				for _, arg := range p.Args {
					if unparen(arg) == lit {
						return lit, "passed as a callback"
					}
				}
				if k := j - 1; k >= 0 {
					if _, isGo := stack[k].(*ast.GoStmt); isGo && unparen(p.Fun) == lit {
						return lit, "launched with go"
					}
				}
				return nil, ""
			case *ast.ParenExpr:
				continue
			default:
				return nil, ""
			}
		}
		return nil, ""
	}
	return nil, ""
}
