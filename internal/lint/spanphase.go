package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"pushdowndb/internal/lint/analysis"
)

// Spanphase requires every cloudsim phase opened in the engine to have an
// *obs.Span declared lexically before it in the enclosing function: the
// span is how the phase's work becomes visible to query traces and EXPLAIN
// ANALYZE. A phase opened with no span in scope is metered for billing but
// invisible to tracing, so span trees silently drift from the phase table.
//
// A "phase open" is any call whose result is a *cloudsim.Phase —
// Metrics.Phase, Metrics.PhaseProfile and the engine's own wrappers alike,
// including counter-only re-opens (Metrics.Phase(...).AddServerRows(...)).
// Functions that themselves return a *cloudsim.Phase are exempt: they are
// phase-opening helpers (tablePhase) whose callers own the span.
var Spanphase = &analysis.Analyzer{
	Name: "spanphase",
	Doc: "require an *obs.Span declared before every cloudsim phase open in the " +
		"engine so no execution phase is invisible to query traces",
	InScope: scopeOf(pkgEngine),
	Run:     runSpanphase,
}

func isSpanPtr(t types.Type) bool { return namedAs(t, pkgObs, "Span") }

// spanVisible is phaseVisible's twin: does any enclosing function declare —
// as a parameter or a local, at or before pos — an *obs.Span?
func spanVisible(info *types.Info, fns []ast.Node, pos token.Pos) bool {
	for _, fn := range fns {
		found := false
		ast.Inspect(fn, func(n ast.Node) bool {
			id, isIdent := n.(*ast.Ident)
			if !isIdent {
				return true
			}
			if obj := info.Defs[id]; obj != nil && id.Pos() < pos && isSpanPtr(obj.Type()) {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// returnsPhase reports whether the function node's result list includes a
// *cloudsim.Phase.
func returnsPhase(info *types.Info, fn ast.Node) bool {
	var ft *ast.FuncType
	switch f := fn.(type) {
	case *ast.FuncDecl:
		ft = f.Type
	case *ast.FuncLit:
		ft = f.Type
	default:
		return false
	}
	if ft.Results == nil {
		return false
	}
	for _, field := range ft.Results.List {
		if t := info.TypeOf(field.Type); t != nil && isPhasePtr(t) {
			return true
		}
	}
	return false
}

// opensPhase reports whether the call's (single) result is a
// *cloudsim.Phase.
func opensPhase(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	return t != nil && isPhasePtr(t)
}

func runSpanphase(pass *analysis.Pass) error {
	walk(pass.Files, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || !opensPhase(pass.Info, call) {
			return
		}
		fns := enclosingFuncs(stack)
		// Phase-opening helpers return the phase for their caller to own;
		// the span obligation travels with it.
		for _, fn := range fns {
			if returnsPhase(pass.Info, fn) {
				return
			}
		}
		if spanVisible(pass.Info, fns, call.Pos()) {
			return
		}
		pass.Reportf(call.Pos(),
			"cloudsim phase opened with no *obs.Span declared before it in the enclosing function: this execution phase is invisible to query traces (begin a span first, or suppress a documented case)")
	})
	return nil
}
