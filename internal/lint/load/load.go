// Package load type-checks the module's packages for pushdownlint using
// only the standard library and the go tool. It shells out to
// `go list -deps -export` — which compiles export data for every
// dependency (standard library included) into the build cache — and
// resolves imports through go/importer's gc reader, so analyzers see
// fully typed ASTs without golang.org/x/tools or network access.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader resolves imports from `go list -export` build-cache artifacts.
// One Loader amortizes the export index and the importer's package cache
// across every package it checks.
type Loader struct {
	// ModuleDir is the module root the go tool runs in.
	ModuleDir string

	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// listEntry is the subset of `go list -json` output the loader reads.
type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	Name       string
	GoFiles    []string
}

// extraStdlib is export-indexed alongside the module's own dependency
// closure so test fixtures may import common standard packages even if
// the module itself happens not to.
var extraStdlib = []string{
	"context", "errors", "fmt", "io", "math", "math/big",
	"os", "sort", "strings", "sync", "time",
}

// NewLoader builds the export index over the module's full dependency
// closure (plus extraStdlib) rooted at moduleDir.
func NewLoader(moduleDir string) (*Loader, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Export", "./..."}, extraStdlib...)
	entries, err := goList(moduleDir, args...)
	if err != nil {
		return nil, fmt.Errorf("load: indexing export data: %w", err)
	}
	l := &Loader{
		ModuleDir: moduleDir,
		fset:      token.NewFileSet(),
		exports:   map[string]string{},
	}
	for _, e := range entries {
		if e.Export != "" {
			l.exports[e.ImportPath] = e.Export
		}
	}
	l.imp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q (is it imported by the module?)", path)
		}
		return os.Open(file)
	})
	return l, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load type-checks the packages matched by the go list patterns
// (non-test files only — the invariants the suite enforces are
// production-code rules, and test code is exempt by design).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	entries, err := goList(l.ModuleDir, append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, fmt.Errorf("load: resolving %v: %w", patterns, err)
	}
	var pkgs []*Package
	for _, e := range entries {
		if len(e.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(e.GoFiles))
		for i, f := range e.GoFiles {
			files[i] = filepath.Join(e.Dir, f)
		}
		p, err := l.Check(e.ImportPath, e.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Check parses and type-checks one package from explicit source files.
// linttest uses it directly on fixture directories, which `go list`
// pattern expansion deliberately skips (they live under testdata).
func (l *Loader) Check(pkgPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []string
	conf := types.Config{
		Importer: l.imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, err := conf.Check(pkgPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("load: type-checking %s:\n\t%s", pkgPath, strings.Join(typeErrs, "\n\t"))
	}
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// CheckDir is Check over every non-test .go file in dir, with the
// package path defaulting to the directory's base name.
func (l *Loader) CheckDir(pkgPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	if pkgPath == "" {
		pkgPath = filepath.Base(dir)
	}
	return l.Check(pkgPath, dir, files)
}

// ModuleRoot locates the enclosing module's root directory for dir by
// asking the go tool for the go.mod in effect there.
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("load: go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("load: %s is not inside a module", dir)
	}
	return filepath.Dir(gomod), nil
}

// goList runs the go tool in dir and decodes its -json stream.
func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var entries []listEntry
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}
