package lint

import (
	"go/ast"
	"strings"

	"pushdowndb/internal/lint/analysis"
)

// Ctxflow forbids context.Background() and context.TODO() in library code.
//
// Per-request deadlines and cancellation (PR 6) only work if the caller's
// context reaches every backend call; a Background() anywhere on the path
// silently detaches everything below it from the request — exactly the bug
// this analyzer was built around (Explain's cached-scan-frac probe ran on
// Background and so ignored the server's per-request timeout).
//
// Package main is out of scope (a main function is where root contexts are
// born), as are tests. The few legitimate library sites — exported
// context-free wrappers kept for API compatibility, or calls beneath
// interfaces whose methods take no context — carry a documented
// //lint:ignore ctxflow suppression.
var Ctxflow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "forbid context.Background()/context.TODO() in library code: " +
		"thread the caller's context so per-request deadlines reach every backend call",
	InScope: func(path string) bool {
		// conformancetest is test infrastructure that happens to live in a
		// non-_test file so backends outside this module can reuse it.
		return strings.HasPrefix(path, pkgPrefix) && !strings.HasSuffix(path, "/conformancetest")
	},
	Run: runCtxflow,
}

func runCtxflow(pass *analysis.Pass) error {
	walk(pass.Files, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		var which string
		switch {
		case calleeIs(pass.Info, call, "context", "Background"):
			which = "Background"
		case calleeIs(pass.Info, call, "context", "TODO"):
			which = "TODO"
		default:
			return
		}
		for _, fn := range enclosingFuncs(stack) {
			if name, ok := ctxParam(pass.Info, fn); ok {
				pass.Reportf(call.Pos(),
					"context.%s() discards the context %q already in scope; thread it so deadlines and cancellation propagate",
					which, name)
				return
			}
		}
		pass.Reportf(call.Pos(),
			"context.%s() in library code detaches callees from request deadlines; accept a context.Context from the caller (suppress only at a documented API boundary)",
			which)
	})
	return nil
}
