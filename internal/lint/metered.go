package lint

import (
	"go/ast"

	"pushdowndb/internal/lint/analysis"
)

// meteredOps are the s3api.Backend storage operations whose cost the
// cloudsim model prices. List is deliberately exempt: partition listings
// are the engine's own catalog traffic, never billed to a query (the paper
// pre-resolves the partition layout), and Capabilities/Profile are local
// metadata. Put is dataset preparation (loaders, index builds), also
// outside every query's virtual clock.
var meteredOps = map[string]bool{
	"Get":       true,
	"GetRange":  true,
	"GetRanges": true,
	"Select":    true,
	"Size":      true,
}

// Metered requires every priced s3api.Backend call in the engine and index
// layers to happen with an open *cloudsim.Phase in the enclosing function
// — the hook through which the operation's requests and bytes enter the
// cost model. An S3 op issued with no phase in scope cannot have been
// metered, so planner estimates and the paper figures silently drift from
// what the engine actually did.
//
// The check is lexical: a *cloudsim.Phase parameter or local declared
// before the call (in the function or any enclosing one) satisfies it.
// DB-level catalog reads that are documented as unmetered carry a
// //lint:ignore metered suppression saying so.
var Metered = &analysis.Analyzer{
	Name: "metered",
	Doc: "require an open *cloudsim.Phase around every priced s3api.Backend call " +
		"in engine/index so no S3 operation escapes the cost model",
	InScope: scopeOf(pkgEngine, pkgIndex, pkgScanshare, pkgVec),
	Run:     runMetered,
}

func runMetered(pass *analysis.Pass) error {
	walk(pass.Files, func(n ast.Node, stack []ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		name, ok := backendMethod(pass.Info, call)
		if !ok || !meteredOps[name] {
			return
		}
		if phaseVisible(pass.Info, enclosingFuncs(stack), call.Pos()) {
			return
		}
		pass.Reportf(call.Pos(),
			"s3api.Backend.%s with no *cloudsim.Phase open in the enclosing function: this S3 operation escapes the cost model (open one via tablePhase/Metrics.Phase, or suppress a documented catalog read)",
			name)
	})
	return nil
}
