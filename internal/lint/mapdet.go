package lint

import (
	"go/ast"
	"go/types"

	"pushdowndb/internal/lint/analysis"
)

// MapDeterminism enforces the byte-identical invariant (PR 2) against Go's
// randomized map iteration order: inside a `range` over a map on result
// paths, nothing order-sensitive may happen. Three things are
// order-sensitive:
//
//   - accumulating floats or strings (float addition is not associative;
//     string concatenation is order itself),
//   - writing output (fmt printing, buffer/builder writes, stream
//     encoders),
//   - collecting values into a slice that is never sorted in the same
//     function (the collected order leaks to whoever reads the slice).
//
// Order-insensitive bodies — integer counting, max/min folds, writes into
// another map, deletes — pass. The idiomatic escape is collect-then-sort:
// append the keys (or values) and sort them before use, which the analyzer
// recognizes by a sort./slices. call on the collected slice anywhere in
// the enclosing function.
var MapDeterminism = &analysis.Analyzer{
	Name: "mapdeterminism",
	Doc: "no order-sensitive work (float/string accumulation, printing, unsorted " +
		"collection) inside range-over-map on result paths — byte-identical output invariant",
	InScope: scopeOf(
		pkgEngine, pkgExpr, pkgCloudsim, pkgHarness, pkgVec,
		"pushdowndb/internal/server",
		"pushdowndb/internal/value",
		"pushdowndb/internal/sqlparse",
		"pushdowndb/internal/colformat",
	),
	Run: runMapDeterminism,
}

func runMapDeterminism(pass *analysis.Pass) error {
	walk(pass.Files, func(n ast.Node, stack []ast.Node) {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || rs.X == nil {
			return
		}
		tv, ok := pass.Info.Types[rs.X]
		if !ok {
			return
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return
		}
		checkMapRange(pass, rs, stack)
	})
	return nil
}

func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node) {
	var collected []types.Object // slices grown via append inside the body
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			lhs, acc := accumulatesInto(v)
			if !acc {
				if obj := appendTarget(pass, v); obj != nil {
					collected = append(collected, obj)
				}
				return true
			}
			t := pass.Info.Types[lhs].Type
			if t == nil {
				return true
			}
			switch {
			case isFloat(t):
				pass.Reportf(v.Pos(),
					"float accumulation inside range over a map sums in random iteration order; iterate sorted keys (float addition is not associative)")
			case isString(t):
				pass.Reportf(v.Pos(),
					"string built up inside range over a map concatenates in random iteration order; iterate sorted keys")
			}
		case *ast.CallExpr:
			if isOutputCall(pass, v) {
				pass.Reportf(v.Pos(),
					"output written inside range over a map is emitted in random iteration order; iterate sorted keys")
			}
		}
		return true
	})
	if len(collected) == 0 {
		return
	}
	// Collect-then-sort escape: the slice must meet a sort in this function.
	fns := enclosingFuncs(stack)
	if len(fns) == 0 {
		return
	}
	seen := map[types.Object]bool{}
	for _, obj := range collected {
		if seen[obj] {
			continue
		}
		seen[obj] = true
		if !sortedInFunc(pass, fns[0], obj) {
			pass.Reportf(rs.Pos(),
				"values collected from a map range into %q are never sorted in this function; sort them (or iterate sorted keys) before they can reach output",
				obj.Name())
		}
	}
}

// appendTarget returns the object of s in `s = append(s, ...)`.
func appendTarget(pass *analysis.Pass, as *ast.AssignStmt) types.Object {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" || pass.Info.Uses[id] != nil && pass.Info.Uses[id].Pkg() != nil {
		return nil
	}
	root := rootIdent(as.Lhs[0])
	if root == nil {
		return nil
	}
	if obj := pass.Info.Uses[root]; obj != nil {
		return obj
	}
	return pass.Info.Defs[root]
}

// sortedInFunc reports whether fn contains a sort./slices. call whose
// first argument is rooted at obj.
func sortedInFunc(pass *analysis.Pass, fn ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		callee := staticCallee(pass.Info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		if p := callee.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		if root := rootIdent(call.Args[0]); root != nil {
			if o := pass.Info.Uses[root]; o == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// isOutputCall recognizes calls that emit bytes: fmt printing/formatting,
// Buffer/Builder writes, and stream encoders.
func isOutputCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := staticCallee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		return hasPrefixAny(fn.Name(), "Print", "Fprint", "Sprint")
	case "bytes", "strings":
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s := pass.Info.Selections[sel]; s != nil &&
				(namedAs(s.Recv(), "bytes", "Buffer") || namedAs(s.Recv(), "strings", "Builder")) {
				return hasPrefixAny(fn.Name(), "Write")
			}
		}
	case "encoding/json", "encoding/gob", "encoding/csv":
		return fn.Name() == "Encode" || fn.Name() == "Write"
	}
	return false
}
