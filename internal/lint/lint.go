// Package lint is the pushdownlint analyzer suite: repo-specific static
// checks that mechanize the engine's correctness conventions so they are
// enforced by machine rather than review. The six analyzers and the
// invariants they encode:
//
//   - ctxflow: no context.Background()/TODO() in library code — per-request
//     deadlines (PR 6) must reach every backend call.
//   - metered: every s3api.Backend storage call in engine/index runs under
//     an open *cloudsim.Phase — no S3 op escapes the cost model (PR 4/6).
//   - errkind: errors born on backend paths carry an s3api.Kind — a naked
//     fmt.Errorf surfaces at the server as "internal" (PR 6).
//   - mapdeterminism: no order-sensitive work (float/string accumulation,
//     printing, unsorted collection) inside a range over a map on result
//     paths — the byte-identical invariant (PR 2).
//   - exactagg: no float64 accumulation where merge order can perturb
//     results — aggregation merges through big.Float (PR 2).
//   - spanphase: every cloudsim phase open in the engine has an *obs.Span
//     declared before it — no execution phase invisible to query traces
//     (PR 10).
//
// See docs/ARCHITECTURE.md "Static analysis & invariants" for the rules
// and the //lint:ignore suppression convention.
package lint

import (
	"fmt"
	"sort"

	"pushdowndb/internal/lint/analysis"
	"pushdowndb/internal/lint/load"
)

// All returns the full pushdownlint suite.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{Ctxflow, Metered, Errkind, MapDeterminism, ExactAgg, Spanphase}
}

// Run applies the analyzers to the packages — each analyzer only where its
// InScope admits the package — filters the findings through the
// //lint:ignore suppression convention, and returns them position-sorted.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var out []analysis.Diagnostic
	for _, p := range pkgs {
		var diags []analysis.Diagnostic
		for _, a := range analyzers {
			if a.InScope != nil && !a.InScope(p.PkgPath) {
				continue
			}
			pass := &analysis.Pass{Analyzer: a, Fset: p.Fset, Files: p.Files, Pkg: p.Types, Info: p.Info}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, p.PkgPath, err)
			}
			diags = append(diags, pass.Diagnostics()...)
		}
		out = append(out, analysis.Filter(diags, analysis.Suppressions(p.Fset, p.Files))...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}
