// Package linttest runs a lint analyzer over a fixture directory and
// compares its findings against `// want "regexp"` comments, in the style
// of golang.org/x/tools/go/analysis/analysistest but built on the stdlib
// loader in internal/lint/load.
//
// A fixture is an ordinary Go package under testdata/src/<name>/ (a
// location `go list ./...` never expands, so fixtures stay out of the
// build and out of pushdownlint's own sweep). Every line expecting a
// diagnostic carries a trailing comment:
//
//	frac := db.cachedScanFrac(context.Background(), t) // want `context\.Background`
//
// The want pattern is a regexp matched against the diagnostic message;
// several `want` clauses on one line expect several diagnostics there.
// Lines without a want comment expect none. Suppressions (//lint:ignore)
// are applied before comparison, so fixtures also pin that an honored
// suppression really silences the analyzer.
//
// The analyzer's InScope is deliberately bypassed: fixtures live outside
// the real package tree and exist to exercise the rule body.
package linttest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"sync"
	"testing"

	"pushdowndb/internal/lint/analysis"
	"pushdowndb/internal/lint/load"
)

var (
	loaderOnce sync.Once
	loader     *load.Loader
	loaderErr  error
)

// sharedLoader builds the export index once per test binary — it shells
// out to `go list -deps -export ./...`, which is the expensive step.
func sharedLoader() (*load.Loader, error) {
	loaderOnce.Do(func() {
		root, err := load.ModuleRoot(".")
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = load.NewLoader(root)
	})
	return loader, loaderErr
}

// wantRe matches one expectation clause inside a comment. Patterns are
// quoted with backquotes or double quotes.
var wantRe = regexp.MustCompile("want\\s+(`([^`]+)`|\"([^\"]+)\")")

// Run checks analyzer a against the fixture package in dir (e.g.
// "testdata/src/ctxflow") and reports mismatches on t.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	// Fixtures type-check under pushdowndb/internal/<dir>, so analyzers
	// whose rules key on the package path (exactagg's expr-layer rule)
	// behave exactly as they would in the real tree.
	pkg, err := l.CheckDir("pushdowndb/internal/"+filepath.Base(dir), dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	pass := &analysis.Pass{Analyzer: a, Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info}
	if err := a.Run(pass); err != nil {
		t.Fatalf("linttest: %s: %v", a.Name, err)
	}
	diags := analysis.Filter(pass.Diagnostics(), analysis.Suppressions(pkg.Fset, pkg.Files))

	type expectation struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string][]*expectation{} // "file:line" -> clauses
	lineKey := func(pos token.Position) string { return fmt.Sprintf("%s:%d", pos.Filename, pos.Line) }
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pat := m[2]
					if pat == "" {
						pat = m[3]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("linttest: bad want pattern %q at %s: %v", pat, pkg.Fset.Position(c.Pos()), err)
					}
					k := lineKey(pkg.Fset.Position(c.Pos()))
					wants[k] = append(wants[k], &expectation{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		k := lineKey(d.Pos)
		found := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.re)
			}
		}
	}
}
