package lint

import (
	"go/ast"
	"go/constant"
	"strings"

	"pushdowndb/internal/lint/analysis"
)

// Errkind requires errors born on backend paths to carry an s3api.Kind.
//
// The server maps *s3api.Error kinds to wire error kinds (not_found and
// friends become "bad_request", context errors become "timeout"/
// "canceled"); anything else falls through to "internal" — a 500 — even
// when the real cause is a missing table the client could fix. So a
// function that talks to an s3api.Backend must not mint errors with a
// naked fmt.Errorf or errors.New: construct an *s3api.Error via
// s3api.NewError, or wrap an already-kinded error with %w (which the
// server unwraps via errors.As).
//
// "Backend path" is any function whose body (including its closures)
// calls an s3api.Backend or s3api.Putter method. Purely local validation
// helpers are out of scope — their errors never race a storage error to
// the server's classifier.
var Errkind = &analysis.Analyzer{
	Name: "errkind",
	Doc: "errors created in functions that call an s3api.Backend must carry an " +
		"s3api.Kind (s3api.NewError or %w-wrapping a kinded error), not naked fmt.Errorf/errors.New",
	InScope: scopeOf(pkgEngine, pkgIndex, pkgScanshare),
	Run:     runErrkind,
}

func runErrkind(pass *analysis.Pass) error {
	walk(pass.Files, func(n ast.Node, _ []ast.Node) {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
		default:
			return
		}
		if !subtreeCallsBackend(pass, n) {
			return
		}
		for _, ret := range ownReturns(n) {
			for _, res := range ret.Results {
				call, ok := unparen(res).(*ast.CallExpr)
				if !ok {
					continue
				}
				if src, naked := nakedErrorCtor(pass, call); naked {
					pass.Reportf(call.Pos(),
						"%s on a backend path builds an error with no s3api.Kind — the server will report it as \"internal\"; use s3api.NewError or wrap a kinded error with %%w",
						src)
				}
			}
		}
	})
	return nil
}

// subtreeCallsBackend reports whether fn's body (closures included) calls
// any s3api.Backend/Putter method.
func subtreeCallsBackend(pass *analysis.Pass, fn ast.Node) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := backendMethod(pass.Info, call); ok {
				found = true
			}
		}
		return !found
	})
	return found
}

// nakedErrorCtor reports whether call constructs an unkinded error:
// errors.New, or fmt.Errorf whose format does not wrap with %w.
func nakedErrorCtor(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	if calleeIs(pass.Info, call, "errors", "New") {
		return "errors.New", true
	}
	if !calleeIs(pass.Info, call, "fmt", "Errorf") {
		return "", false
	}
	if len(call.Args) > 0 {
		if tv, ok := pass.Info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			if strings.Contains(constant.StringVal(tv.Value), "%w") {
				return "", false
			}
		}
	}
	return "fmt.Errorf", true
}
