// Fixture for the mapdeterminism analyzer: order-sensitive work inside
// range-over-map (float/string accumulation, printing, unsorted
// collection) versus the order-insensitive and collect-then-sort escapes.
package mapdet

import (
	"fmt"
	"sort"
	"strings"
)

// Float addition is not associative: summing in map order varies run to run.
func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `float accumulation inside range over a map sums in random iteration order`
	}
	return total
}

// String concatenation is order itself.
func joinKeys(m map[string]int) string {
	out := ""
	for k := range m {
		out += k // want `string built up inside range over a map concatenates in random iteration order`
	}
	return out
}

// Output emitted mid-range lands in random order.
func dump(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `output written inside range over a map is emitted in random iteration order`
	}
}

// Builder writes are output too.
func render(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `output written inside range over a map is emitted in random iteration order`
	}
	return b.String()
}

// Collected but never sorted: the random order leaks to the caller.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `values collected from a map range into "keys" are never sorted in this function`
		keys = append(keys, k)
	}
	return keys
}

// The idiomatic escape: collect, then sort before anything reads the slice.
func sortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Integer folds, map writes, and deletes are order-insensitive: clean.
func countAndInvert(m map[string]int) (int, map[int]string) {
	n := 0
	inv := make(map[int]string, len(m))
	for k, v := range m {
		n += v
		inv[v] = k
	}
	return n, inv
}

// A documented suppression marks a merge proven deterministic by
// construction (one append per key, per-key order fixed elsewhere).
func provenDeterministic(parts []map[string][]int) map[string][]int {
	merged := map[string][]int{}
	for _, m := range parts {
		//lint:ignore mapdeterminism fixture: per-key append order is fixed by the part order, not the map order
		for k, idxs := range m {
			merged[k] = append(merged[k], idxs...)
		}
	}
	return merged
}
