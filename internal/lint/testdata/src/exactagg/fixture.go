// Fixture for the exactagg analyzer outside the expr package: float
// accumulation into captured variables from concurrently-run closures
// versus per-worker accumulation merged in index order.
package exactagg

import "sync"

// Accumulating into a captured float from goroutines sums in completion
// order — the result varies run to run even under a mutex.
func completionOrderSum(parts [][]float64) float64 {
	var (
		total float64
		mu    sync.Mutex
		wg    sync.WaitGroup
	)
	for _, p := range parts {
		wg.Add(1)
		go func(p []float64) {
			defer wg.Done()
			s := 0.0
			for _, v := range p {
				s += v // closure-local accumulator: per-worker, fine
			}
			mu.Lock()
			total += s // want `float accumulation into captured "total" from a closure launched with go sums in completion order`
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	return total
}

// Callbacks handed to another function may run on many goroutines
// (forEachPart-style worker pools): same hazard.
func callbackSum(parts [][]float64, forEach func(fn func(p []float64))) float64 {
	var total float64
	forEach(func(p []float64) {
		for _, v := range p {
			total += v // want `float accumulation into captured "total" from a closure passed as a callback sums in completion order`
		}
	})
	return total
}

// The sanctioned shape: per-worker slots folded in index order after the
// barrier. The slot accumulation indexes a slice owned by the worker and
// the final fold runs sequentially — no findings.
func perWorkerSum(parts [][]float64) float64 {
	sums := make([]float64, len(parts))
	var wg sync.WaitGroup
	for w, p := range parts {
		wg.Add(1)
		go func(w int, p []float64) {
			defer wg.Done()
			s := 0.0
			for _, v := range p {
				s += v
			}
			sums[w] = s
		}(w, p)
	}
	wg.Wait()
	var total float64
	for _, s := range sums {
		total += s
	}
	return total
}

// A documented suppression marks a site argued correct out of band.
func suppressedSum(parts []float64, each func(fn func(v float64))) float64 {
	var total float64
	each(func(v float64) {
		//lint:ignore exactagg fixture pins that an honored suppression silences the analyzer
		total += v
	})
	return total
}
