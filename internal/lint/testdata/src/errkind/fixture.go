// Fixture for the errkind analyzer: error construction on backend paths
// (functions whose subtree calls an s3api.Backend/Putter method) versus
// purely local helpers, plus the suppression escape.
package errkind

import (
	"context"
	"errors"
	"fmt"

	"pushdowndb/internal/s3api"
)

// Naked constructors on a backend path reach the server as "internal".
func nakedOnBackendPath(ctx context.Context, b s3api.Backend, bucket, key string) ([]byte, error) {
	data, err := b.Get(ctx, bucket, key)
	if err != nil {
		return nil, errors.New("object fetch failed") // want `errors\.New on a backend path builds an error with no s3api\.Kind`
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("object %s/%s is empty", bucket, key) // want `fmt\.Errorf on a backend path builds an error with no s3api\.Kind`
	}
	return data, nil
}

// Wrapping with %w preserves the kind of the underlying storage error.
func wrapped(ctx context.Context, b s3api.Backend, bucket, key string) ([]byte, error) {
	data, err := b.Get(ctx, bucket, key)
	if err != nil {
		return nil, fmt.Errorf("fixture load %s: %w", key, err)
	}
	return data, nil
}

// Minting a kinded error directly is the other sanctioned pattern.
func kinded(ctx context.Context, b s3api.Backend, bucket, key string) ([]byte, error) {
	data, err := b.Get(ctx, bucket, key)
	if err != nil {
		return nil, s3api.NewError("get", bucket, key, s3api.KindNotFound, err)
	}
	return data, nil
}

// A closure inside the function also makes it a backend path.
func backendViaClosure(ctx context.Context, b s3api.Backend, bucket string, keys []string) error {
	probe := func(key string) error {
		_, err := b.Size(ctx, bucket, key)
		return err
	}
	for _, key := range keys {
		if err := probe(key); err != nil {
			return errors.New("probe failed") // want `errors\.New on a backend path`
		}
	}
	return nil
}

// Local validation never races a storage error to the server's
// classifier: out of scope, naked constructors are fine here.
func localValidation(parts int) error {
	if parts < 1 {
		return fmt.Errorf("errkind fixture: need at least one partition, got %d", parts)
	}
	return nil
}

// A documented suppression overrides the rule at a deliberate site.
func suppressed(ctx context.Context, b s3api.Backend, bucket, key string) error {
	if _, err := b.Get(ctx, bucket, key); err != nil {
		//lint:ignore errkind fixture pins that an honored suppression silences the analyzer
		return errors.New("suppressed naked error")
	}
	return nil
}
