// Fixture for the spanphase analyzer: cloudsim phase opens with and
// without an *obs.Span declared first, the phase-returning-helper
// exemption, closure visibility, and the suppression escape.
package spanphase

import (
	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/obs"
)

// No span anywhere in the function: the phase is invisible to traces.
func untraced(m *cloudsim.Metrics) {
	phase := m.Phase("fixture scan", 0) // want `cloudsim phase opened with no \*obs\.Span declared before it`
	phase.AddGetRequest(1)
}

// A span begun before the phase open satisfies the invariant.
func traced(tr *obs.Trace, m *cloudsim.Metrics) {
	sp := tr.Root().Child("scan")
	phase := m.Phase("fixture scan", 0)
	phase.AddGetRequest(1)
	sp.End()
}

// An *obs.Span parameter counts: the caller began it.
func tracedByParam(sp *obs.Span, m *cloudsim.Metrics) {
	m.Phase("fixture count", 1).AddServerRows(10)
	sp.SetInt("rows", 10)
}

// A span in an enclosing function is visible inside closures.
func tracedInClosure(tr *obs.Trace, m *cloudsim.Metrics, keys []string) {
	sp := tr.Root().Child("sweep")
	for range keys {
		open := func() *cloudsim.Metrics {
			m.Phase("fixture part", 0).AddGetRequest(1)
			return m
		}
		open()
	}
	sp.End()
}

// The declaration must precede the open: a span begun afterwards cannot
// have covered it.
func spanBegunTooLate(tr *obs.Trace, m *cloudsim.Metrics) {
	m.Phase("fixture late", 0).AddServerRows(1) // want `cloudsim phase opened with no \*obs\.Span declared before it`
	sp := tr.Root().Child("late")
	sp.End()
}

// Functions returning a *cloudsim.Phase are phase-opening helpers: the
// span obligation travels to their callers with the returned phase.
func openHelper(m *cloudsim.Metrics, name string) *cloudsim.Phase {
	return m.Phase(name, 0)
}

// Calling a helper is still an open site and still needs a span.
func helperCallerUntraced(m *cloudsim.Metrics) {
	phase := openHelper(m, "fixture helper") // want `cloudsim phase opened with no \*obs\.Span declared before it`
	phase.AddGetRequest(1)
}

// The documented suppression escape.
func suppressed(m *cloudsim.Metrics) {
	//lint:ignore spanphase fixture: counter-only catalog accounting, never user-visible
	m.Phase("fixture catalog", 0).AddServerRows(1)
}
