// Fixture for the metered analyzer: priced s3api.Backend calls with and
// without an open *cloudsim.Phase in scope, exempt catalog operations,
// and the documented suppression escape.
package metered

import (
	"context"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/s3api"
)

// No phase anywhere in the function: the operation escapes the cost model.
func unmetered(ctx context.Context, b s3api.Backend, bucket, key string) ([]byte, error) {
	return b.Get(ctx, bucket, key) // want `s3api\.Backend\.Get with no \*cloudsim\.Phase open in the enclosing function`
}

// A phase opened before the call satisfies the invariant.
func meteredLocal(ctx context.Context, b s3api.Backend, m *cloudsim.Metrics, bucket, key string) ([]byte, error) {
	phase := m.Phase("fixture get", 0)
	data, err := b.Get(ctx, bucket, key)
	if err == nil {
		phase.AddGetRequest(int64(len(data)))
	}
	return data, err
}

// A *cloudsim.Phase parameter counts: the caller opened it.
func meteredByParam(ctx context.Context, b s3api.Backend, phase *cloudsim.Phase, bucket, key string) (int64, error) {
	n, err := b.Size(ctx, bucket, key)
	if err == nil {
		phase.AddGetRequest(0)
	}
	return n, err
}

// A phase in an enclosing function is visible inside closures.
func meteredInClosure(ctx context.Context, b s3api.Backend, m *cloudsim.Metrics, bucket string, keys []string) error {
	phase := m.Phase("fixture sweep", 0)
	for _, key := range keys {
		fetch := func() error {
			_, err := b.GetRange(ctx, bucket, key, 0, 15)
			return err
		}
		if err := fetch(); err != nil {
			return err
		}
		phase.AddRangedGetRequest(1, 1)
	}
	return nil
}

// The declaration must precede the call: a phase opened afterwards cannot
// have metered it.
func phaseOpenedTooLate(ctx context.Context, b s3api.Backend, m *cloudsim.Metrics, bucket, key string) (int64, error) {
	n, err := b.Size(ctx, bucket, key) // want `s3api\.Backend\.Size with no \*cloudsim\.Phase open`
	phase := m.Phase("fixture late", 0)
	phase.AddGetRequest(0)
	return n, err
}

// List is catalog traffic, never billed to a query: exempt by design.
func catalogList(ctx context.Context, b s3api.Backend, bucket, prefix string) ([]string, error) {
	return b.List(ctx, bucket, prefix)
}

// A documented suppression marks a deliberate catalog read.
func manifestRead(ctx context.Context, b s3api.Backend, bucket string) ([]byte, error) {
	//lint:ignore metered catalog read: fixture manifest is engine metadata, never billed to a query
	return b.Get(ctx, bucket, "manifest")
}
