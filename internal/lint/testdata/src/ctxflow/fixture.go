// Fixture for the ctxflow analyzer: context.Background()/TODO() in
// library code, with and without a context already in scope, and the
// documented suppression escape.
package ctxflow

import "context"

// A context parameter is already in scope: the diagnostic names it.
func withCtxInScope(ctx context.Context) error {
	detached := context.Background() // want `context\.Background\(\) discards the context "ctx" already in scope`
	return wait(detached)
}

// The enclosing function offers no context: the diagnostic asks for one.
func noCtxAnywhere() error {
	return wait(context.TODO()) // want `context\.TODO\(\) in library code detaches callees from request deadlines`
}

// The ctx param of an *outer* function still counts inside a closure.
func closureSeesOuterCtx(ctx context.Context) func() error {
	return func() error {
		inner := context.Background() // want `context\.Background\(\) discards the context "ctx" already in scope`
		return wait(inner)
	}
}

// A documented suppression on the line above silences the finding — the
// convention for context-free compatibility wrappers at API boundaries.
func compatWrapper() error {
	//lint:ignore ctxflow context-free wrapper kept for API compatibility; the root context is born here
	return wait(context.Background())
}

// Threading the caller's context is the clean pattern: no findings.
func clean(ctx context.Context) error {
	return wait(ctx)
}

func wait(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}
