// Fixture for the exactagg analyzer's expr-layer rule: linttest checks
// this directory as pushdowndb/internal/expr, where *any* float
// accumulation is a finding — aggregation state must sum through
// big.Float (AggState) so merge order cannot perturb the final digits.
package expr

import "math/big"

// Plain sequential float accumulation is still banned here: the moment a
// float64 sum exists, a future refactor can merge through it.
func meanFloat(vs []float64) float64 {
	var sum float64
	for _, v := range vs {
		sum += v // want `float accumulation in the exact-aggregation layer; sum through big\.Float`
	}
	return sum / float64(len(vs))
}

// The sanctioned pattern: accumulate in big.Float at fixed precision.
func meanExact(vs []float64) float64 {
	sum := new(big.Float).SetPrec(128)
	for _, v := range vs {
		sum.Add(sum, big.NewFloat(v))
	}
	out, _ := new(big.Float).SetPrec(128).Quo(sum, big.NewFloat(float64(len(vs)))).Float64()
	return out
}
