package sqlparse

import "testing"

// FuzzParseRoundTrip checks the parser/printer pair: anything that parses
// must print to SQL that re-parses, and the canonical form must be a fixed
// point (print → parse → print is the identity). A panic anywhere in the
// lexer/parser fails the target by itself.
func FuzzParseRoundTrip(f *testing.F) {
	seeds := []string{
		"SELECT * FROM S3Object",
		"SELECT a, b AS x FROM t WHERE a > 1 AND b <= 'z' LIMIT 3",
		"SELECT COUNT(*), SUM(v * (1 - d)) AS s FROM t GROUP BY g ORDER BY s DESC, g",
		"SELECT c_mktsegment, COUNT(*) AS n FROM customer GROUP BY c_mktsegment ORDER BY n DESC",
		"SELECT SUM(o.price) AS total FROM cust c JOIN ords o ON c.ck = o.ck WHERE c.bal <= -950",
		"SELECT x FROM a, b WHERE a.k = b.k AND a.v BETWEEN 1 AND 10",
		"SELECT CASE WHEN g = 'a' THEN 1 ELSE 0 END FROM t",
		"SELECT * FROM t WHERE s LIKE 'PROMO%' OR z IN ('00501', '99999')",
		"SELECT * FROM t WHERE v IS NOT NULL AND NOT (q < 3)",
		"SELECT SUBSTRING(s, 1 + MOD(k, 8), 1) FROM t WHERE CAST(v AS INT) = 4",
		"SELECT -x, 'it''s', 1.5e3, .5 FROM t WHERE a <> b",
		"SELECT \"quoted col\" FROM t ORDER BY 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		sel, err := Parse(src)
		if err != nil {
			return // rejecting garbage is fine; panicking or looping is not
		}
		printed := sel.String()
		sel2, err := Parse(printed)
		if err != nil {
			t.Fatalf("canonical form does not re-parse\ninput:  %q\nprinted: %q\nerr: %v", src, printed, err)
		}
		if printed2 := sel2.String(); printed2 != printed {
			t.Fatalf("canonical form is not a fixed point\ninput: %q\nfirst:  %q\nsecond: %q", src, printed, printed2)
		}
	})
}
