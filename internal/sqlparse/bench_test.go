package sqlparse

import "testing"

var benchQueries = []string{
	"SELECT * FROM S3Object",
	"SELECT l_orderkey, l_extendedprice FROM S3Object WHERE l_shipdate >= '1994-01-01' AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
	"SELECT SUM(CASE WHEN g = 1 THEN v ELSE 0 END), SUM(CASE WHEN g = 2 THEN v ELSE 0 END), COUNT(*) FROM S3Object",
	"SELECT c FROM t WHERE SUBSTRING('101010101', ((69 * CAST(c AS INT) + 92) % 97) % 9 + 1, 1) = '1'",
}

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, q := range benchQueries {
			if _, err := Parse(q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRender(b *testing.B) {
	var sels []*Select
	for _, q := range benchQueries {
		s, err := Parse(q)
		if err != nil {
			b.Fatal(err)
		}
		sels = append(sels, s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range sels {
			_ = s.String()
		}
	}
}
