package sqlparse

import (
	"strconv"
	"strings"

	"pushdowndb/internal/value"
)

// Expr is any expression node. String renders the node back to SQL text
// accepted by this parser (used to build S3 Select request bodies, e.g. the
// Bloom-filter SUBSTRING predicate and the CASE-based group-by queries).
type Expr interface {
	String() string
}

// Column references a column by name (optionally qualified, e.g. s.c_custkey
// or the S3 Select positional form _1).
type Column struct {
	Qualifier string // optional table alias
	Name      string
}

func (c *Column) String() string {
	if c.Qualifier != "" {
		return quoteIdent(c.Qualifier) + "." + quoteIdent(c.Name)
	}
	return quoteIdent(c.Name)
}

// quoteIdent renders an identifier, double-quoting it when the bare text
// would not re-lex as the same identifier (specials or spaces, a leading
// digit, or a keyword collision). Identifier text cannot contain a double
// quote — the lexer has no escape for one — so plain wrapping round-trips.
func quoteIdent(s string) string {
	if isPlainIdent(s) {
		return s
	}
	return `"` + s + `"`
}

func isPlainIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
		case i > 0 && c >= '0' && c <= '9':
		default:
			return false
		}
	}
	return !keywords[strings.ToUpper(s)]
}

// Literal is a constant value.
type Literal struct {
	Val value.Value
}

func (l *Literal) String() string {
	switch l.Val.Kind() {
	case value.KindString:
		return "'" + strings.ReplaceAll(l.Val.AsString(), "'", "''") + "'"
	case value.KindDate:
		return "DATE '" + l.Val.String() + "'"
	case value.KindNull:
		return "NULL"
	case value.KindBool:
		if l.Val.AsBool() {
			return "TRUE"
		}
		return "FALSE"
	default:
		return l.Val.String()
	}
}

// Star is the bare `*` in a select list or COUNT(*).
type Star struct{}

func (*Star) String() string { return "*" }

// BinaryOp enumerates binary operators.
type BinaryOp uint8

// Binary operators.
const (
	OpAnd BinaryOp = iota
	OpOr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpConcat
)

var binOpText = map[BinaryOp]string{
	OpAnd: "AND", OpOr: "OR", OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpMod: "%", OpConcat: "||",
}

// Binary is a binary operation.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

func (b *Binary) String() string {
	return "(" + b.L.String() + " " + binOpText[b.Op] + " " + b.R.String() + ")"
}

// Unary is NOT expr or -expr.
type Unary struct {
	Op string // "NOT" or "-"
	X  Expr
}

func (u *Unary) String() string {
	if u.Op == "NOT" {
		return "(NOT " + u.X.String() + ")"
	}
	return "(-" + u.X.String() + ")"
}

// IsNull is `expr IS [NOT] NULL`.
type IsNull struct {
	X   Expr
	Not bool
}

func (n *IsNull) String() string {
	if n.Not {
		return "(" + n.X.String() + " IS NOT NULL)"
	}
	return "(" + n.X.String() + " IS NULL)"
}

// Between is `expr [NOT] BETWEEN lo AND hi`.
type Between struct {
	X, Lo, Hi Expr
	Not       bool
}

func (b *Between) String() string {
	not := ""
	if b.Not {
		not = "NOT "
	}
	return "(" + b.X.String() + " " + not + "BETWEEN " + b.Lo.String() + " AND " + b.Hi.String() + ")"
}

// In is `expr [NOT] IN (e1, e2, ...)`.
type In struct {
	X    Expr
	List []Expr
	Not  bool
}

func (i *In) String() string {
	var b strings.Builder
	b.WriteString("(" + i.X.String())
	if i.Not {
		b.WriteString(" NOT")
	}
	b.WriteString(" IN (")
	for j, e := range i.List {
		if j > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.String())
	}
	b.WriteString("))")
	return b.String()
}

// Like is `expr [NOT] LIKE pattern` with % and _ wildcards.
type Like struct {
	X, Pattern Expr
	Not        bool
}

func (l *Like) String() string {
	not := ""
	if l.Not {
		not = "NOT "
	}
	return "(" + l.X.String() + " " + not + "LIKE " + l.Pattern.String() + ")"
}

// Case is a searched CASE expression: CASE WHEN c THEN v ... ELSE e END.
type Case struct {
	Whens []When
	Else  Expr // may be nil
}

// When is one WHEN/THEN arm of a Case.
type When struct {
	Cond, Result Expr
}

func (c *Case) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range c.Whens {
		b.WriteString(" WHEN " + w.Cond.String() + " THEN " + w.Result.String())
	}
	if c.Else != nil {
		b.WriteString(" ELSE " + c.Else.String())
	}
	b.WriteString(" END")
	return b.String()
}

// Cast is CAST(expr AS type).
type Cast struct {
	X  Expr
	To value.Kind
}

func (c *Cast) String() string {
	name := map[value.Kind]string{
		value.KindInt: "INT", value.KindFloat: "FLOAT",
		value.KindString: "STRING", value.KindDate: "TIMESTAMP",
		value.KindBool: "BOOL",
	}[c.To]
	return "CAST(" + c.X.String() + " AS " + name + ")"
}

// Call is a scalar function call (SUBSTRING, UPPER, LOWER, LENGTH, ABS,
// and the BLOOM_CONTAINS extension).
type Call struct {
	Name string // upper case
	Args []Expr
}

func (c *Call) String() string {
	if c.Name == "EXTRACT" && len(c.Args) == 2 {
		if lit, ok := c.Args[0].(*Literal); ok && lit.Val.Kind() == value.KindString {
			return "EXTRACT(" + lit.Val.AsString() + " FROM " + c.Args[1].String() + ")"
		}
	}
	var b strings.Builder
	b.WriteString(quoteIdent(c.Name) + "(")
	for i, a := range c.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteString(")")
	return b.String()
}

// AggFunc enumerates aggregate functions.
type AggFunc uint8

// Aggregate functions.
const (
	AggSum AggFunc = iota
	AggCount
	AggMin
	AggMax
	AggAvg
)

var aggText = map[AggFunc]string{
	AggSum: "SUM", AggCount: "COUNT", AggMin: "MIN", AggMax: "MAX", AggAvg: "AVG",
}

// Aggregate is SUM(x), COUNT(*), AVG(x), MIN(x), MAX(x). X is *Star for
// COUNT(*).
type Aggregate struct {
	Func AggFunc
	X    Expr
}

func (a *Aggregate) String() string { return aggText[a.Func] + "(" + a.X.String() + ")" }

// SelectItem is one entry of the select list.
type SelectItem struct {
	Expr  Expr   // *Star for `*`
	Alias string // optional AS alias
}

func (s SelectItem) String() string {
	if s.Alias != "" {
		return s.Expr.String() + " AS " + quoteIdent(s.Alias)
	}
	return s.Expr.String()
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (o OrderItem) String() string {
	if o.Desc {
		return o.Expr.String() + " DESC"
	}
	return o.Expr.String() + " ASC"
}

// Join is one additional table of the FROM clause: either an explicit
// `[INNER] JOIN table [alias] ON cond`, or an implicit comma join
// (`FROM a, b`) whose join condition lives in WHERE and has Cond == nil.
type Join struct {
	Table string
	Alias string // optional table alias
	Cond  Expr   // ON condition; nil for comma joins
	Comma bool   // true when written as `, table` rather than `JOIN table`
}

// Select is a parsed SELECT statement.
type Select struct {
	Items   []SelectItem
	Table   string // first FROM table (S3 Select: always "S3Object")
	Alias   string // optional table alias
	Joins   []Join // additional FROM tables; rejected by the select engine
	Where   Expr   // may be nil
	GroupBy []Expr // PushdownDB extension; rejected by the select engine
	OrderBy []OrderItem
	Limit   int64 // -1 when absent
}

// String renders the statement back to SQL.
func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString(" FROM " + quoteIdent(s.Table))
	if s.Alias != "" {
		b.WriteString(" AS " + quoteIdent(s.Alias))
	}
	for _, j := range s.Joins {
		if j.Comma {
			b.WriteString(", " + quoteIdent(j.Table))
		} else {
			b.WriteString(" JOIN " + quoteIdent(j.Table))
		}
		if j.Alias != "" {
			b.WriteString(" AS " + quoteIdent(j.Alias))
		}
		if j.Cond != nil {
			b.WriteString(" ON " + j.Cond.String())
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.String())
		}
	}
	if s.Limit >= 0 {
		b.WriteString(" LIMIT " + strconv.FormatInt(s.Limit, 10))
	}
	return b.String()
}

// HasAggregates reports whether any select item contains an aggregate.
func (s *Select) HasAggregates() bool {
	for _, it := range s.Items {
		if ContainsAggregate(it.Expr) {
			return true
		}
	}
	return false
}

// ContainsAggregate walks e looking for an Aggregate node.
func ContainsAggregate(e Expr) bool {
	switch t := e.(type) {
	case *Aggregate:
		return true
	case *Binary:
		return ContainsAggregate(t.L) || ContainsAggregate(t.R)
	case *Unary:
		return ContainsAggregate(t.X)
	case *Case:
		for _, w := range t.Whens {
			if ContainsAggregate(w.Cond) || ContainsAggregate(w.Result) {
				return true
			}
		}
		return t.Else != nil && ContainsAggregate(t.Else)
	case *Cast:
		return ContainsAggregate(t.X)
	case *Call:
		for _, a := range t.Args {
			if ContainsAggregate(a) {
				return true
			}
		}
	case *Between:
		return ContainsAggregate(t.X) || ContainsAggregate(t.Lo) || ContainsAggregate(t.Hi)
	case *In:
		if ContainsAggregate(t.X) {
			return true
		}
		for _, a := range t.List {
			if ContainsAggregate(a) {
				return true
			}
		}
	case *Like:
		return ContainsAggregate(t.X) || ContainsAggregate(t.Pattern)
	case *IsNull:
		return ContainsAggregate(t.X)
	}
	return false
}

// Conjuncts splits e on top-level ANDs, returning the flat conjunct list.
// A nil expression yields nil. The join planner classifies each conjunct
// independently (per-table pushdown, equi-join key, or local residual).
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// AndAll joins exprs back into a single conjunction (nil when empty).
func AndAll(exprs []Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if out == nil {
			out = e
		} else {
			out = &Binary{Op: OpAnd, L: out, R: e}
		}
	}
	return out
}

// Rewrite returns a structural copy of e with children rewritten first
// and f applied to every copied node (bottom-up). Nodes f leaves alone
// are returned as copies with rewritten children.
func Rewrite(e Expr, f func(Expr) Expr) Expr {
	switch t := e.(type) {
	case *Binary:
		e = &Binary{Op: t.Op, L: Rewrite(t.L, f), R: Rewrite(t.R, f)}
	case *Unary:
		e = &Unary{Op: t.Op, X: Rewrite(t.X, f)}
	case *Case:
		out := &Case{}
		for _, w := range t.Whens {
			out.Whens = append(out.Whens, When{Cond: Rewrite(w.Cond, f), Result: Rewrite(w.Result, f)})
		}
		if t.Else != nil {
			out.Else = Rewrite(t.Else, f)
		}
		e = out
	case *Cast:
		e = &Cast{X: Rewrite(t.X, f), To: t.To}
	case *Call:
		out := &Call{Name: t.Name}
		for _, a := range t.Args {
			out.Args = append(out.Args, Rewrite(a, f))
		}
		e = out
	case *Aggregate:
		e = &Aggregate{Func: t.Func, X: Rewrite(t.X, f)}
	case *Between:
		e = &Between{X: Rewrite(t.X, f), Lo: Rewrite(t.Lo, f), Hi: Rewrite(t.Hi, f), Not: t.Not}
	case *In:
		out := &In{X: Rewrite(t.X, f), Not: t.Not}
		for _, a := range t.List {
			out.List = append(out.List, Rewrite(a, f))
		}
		e = out
	case *Like:
		e = &Like{X: Rewrite(t.X, f), Pattern: Rewrite(t.Pattern, f), Not: t.Not}
	case *IsNull:
		e = &IsNull{X: Rewrite(t.X, f), Not: t.Not}
	}
	return f(e)
}

// StripQualifiers returns a copy of e with every column qualifier removed.
// SQL pushed into S3 Select addresses a single object, so table aliases
// from the multi-table query are meaningless (and rejected) there.
func StripQualifiers(e Expr) Expr {
	return Rewrite(e, func(n Expr) Expr {
		if c, ok := n.(*Column); ok && c.Qualifier != "" {
			return &Column{Name: c.Name}
		}
		return n
	})
}

// MapAggregates returns a copy of e with every Aggregate node replaced by
// f's result. Used to evaluate aggregate expressions over zero input rows
// (COUNT becomes 0, other aggregates become NULL).
func MapAggregates(e Expr, f func(*Aggregate) Expr) Expr {
	return Rewrite(e, func(n Expr) Expr {
		if a, ok := n.(*Aggregate); ok {
			return f(a)
		}
		return n
	})
}

// ColumnRefs collects every column node referenced by e (with qualifiers,
// duplicates included). The join planner resolves each reference against
// the FROM tables' headers.
func ColumnRefs(e Expr) []*Column {
	var out []*Column
	var walk func(Expr)
	walk = func(e Expr) {
		switch t := e.(type) {
		case *Column:
			out = append(out, t)
		case *Binary:
			walk(t.L)
			walk(t.R)
		case *Unary:
			walk(t.X)
		case *Case:
			for _, w := range t.Whens {
				walk(w.Cond)
				walk(w.Result)
			}
			if t.Else != nil {
				walk(t.Else)
			}
		case *Cast:
			walk(t.X)
		case *Call:
			for _, a := range t.Args {
				walk(a)
			}
		case *Aggregate:
			walk(t.X)
		case *Between:
			walk(t.X)
			walk(t.Lo)
			walk(t.Hi)
		case *In:
			walk(t.X)
			for _, a := range t.List {
				walk(a)
			}
		case *Like:
			walk(t.X)
			walk(t.Pattern)
		case *IsNull:
			walk(t.X)
		}
	}
	walk(e)
	return out
}

// Columns collects the distinct column names referenced by e, in first-seen
// order. Used for projection pushdown and columnar scans.
func Columns(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range ColumnRefs(e) {
		if !seen[c.Name] {
			seen[c.Name] = true
			out = append(out, c.Name)
		}
	}
	return out
}
