package sqlparse

import "strings"

// Statement is any parsed SQL statement: *Select, *Explain, *CreateIndex
// or *DropIndex. The DDL statements exist for PushdownDB's secondary-index
// subsystem (CREATE INDEX builds per-partition index objects on the
// table's storage backend; DROP INDEX retires them from the manifest) and
// are rejected everywhere a SELECT is required — Parse still returns
// *Select only.
type Statement interface {
	String() string
	stmt()
}

func (*Select) stmt()      {}
func (*CreateIndex) stmt() {}
func (*DropIndex) stmt()   {}
func (*Explain) stmt()     {}

// Explain is `EXPLAIN [ANALYZE] <select>`. Plain EXPLAIN renders the plan
// with the planner's estimates; ANALYZE also executes the query under a
// trace and annotates each step with actual rows, bytes and cost.
type Explain struct {
	Analyze bool
	Sel     *Select
}

func (e *Explain) String() string {
	s := "EXPLAIN "
	if e.Analyze {
		s += "ANALYZE "
	}
	return s + e.Sel.String()
}

// CreateIndex is `CREATE INDEX [name] ON table (column)`.
type CreateIndex struct {
	Name   string // optional; the engine derives one when empty
	Table  string
	Column string
}

func (c *CreateIndex) String() string {
	s := "CREATE INDEX "
	if c.Name != "" {
		s += quoteIdent(c.Name) + " "
	}
	return s + "ON " + quoteIdent(c.Table) + " (" + quoteIdent(c.Column) + ")"
}

// DropIndex is `DROP INDEX ON table (column)` or `DROP INDEX name ON
// table`; exactly one of Name and Column is set.
type DropIndex struct {
	Name   string
	Table  string
	Column string
}

func (d *DropIndex) String() string {
	if d.Name != "" {
		return "DROP INDEX " + quoteIdent(d.Name) + " ON " + quoteIdent(d.Table)
	}
	return "DROP INDEX ON " + quoteIdent(d.Table) + " (" + quoteIdent(d.Column) + ")"
}

// ParseStatement parses one statement of any supported kind. SELECTs parse
// exactly as Parse does.
func ParseStatement(src string) (Statement, error) {
	p := &parser{lex: NewLexer(src), src: src}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var (
		st  Statement
		err error
	)
	// CREATE/DROP/INDEX are contextual: they dispatch DDL only at the
	// statement head and stay usable as ordinary identifiers everywhere
	// else (SELECT "index" needs no quoting).
	switch {
	case p.isIdentWord("CREATE"):
		st, err = p.parseCreateIndex()
	case p.isIdentWord("DROP"):
		st, err = p.parseDropIndex()
	case p.isIdentWord("EXPLAIN"):
		st, err = p.parseExplain()
	default:
		st, err = p.parseSelect()
	}
	if err != nil {
		return nil, err
	}
	if p.tok.Type != TokEOF {
		return nil, p.errf("unexpected trailing input %s", p.tok)
	}
	return st, nil
}

// isIdentWord reports whether the current token is an identifier spelling
// word (case-insensitively) — the contextual-keyword check.
func (p *parser) isIdentWord(word string) bool {
	return p.tok.Type == TokIdent && strings.EqualFold(p.tok.Text, word)
}

// expectIdentWord consumes the contextual keyword word.
func (p *parser) expectIdentWord(word string) error {
	if !p.isIdentWord(word) {
		return p.errf("expected %s, got %s", word, p.tok)
	}
	return p.advance()
}

// parseCreateIndex parses `CREATE INDEX [name] ON table (column)` with the
// CREATE word current.
func (p *parser) parseCreateIndex() (*CreateIndex, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectIdentWord("INDEX"); err != nil {
		return nil, err
	}
	ci := &CreateIndex{}
	if p.tok.Type == TokIdent {
		ci.Name = p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	var err error
	if ci.Table, err = p.ident("table name"); err != nil {
		return nil, err
	}
	if ci.Column, err = p.parenColumn(); err != nil {
		return nil, err
	}
	return ci, nil
}

// parseExplain parses `EXPLAIN [ANALYZE] <select>` with EXPLAIN current.
// EXPLAIN and ANALYZE are contextual like CREATE/DROP: they only dispatch
// at the statement head.
func (p *parser) parseExplain() (*Explain, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	ex := &Explain{}
	if p.isIdentWord("ANALYZE") {
		ex.Analyze = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	var err error
	if ex.Sel, err = p.parseSelect(); err != nil {
		return nil, err
	}
	return ex, nil
}

// parseDropIndex parses both DROP INDEX forms with DROP current.
func (p *parser) parseDropIndex() (*DropIndex, error) {
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expectIdentWord("INDEX"); err != nil {
		return nil, err
	}
	di := &DropIndex{}
	var err error
	if p.tok.Type == TokIdent {
		di.Name = p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	if di.Table, err = p.ident("table name"); err != nil {
		return nil, err
	}
	if di.Name != "" {
		return di, nil
	}
	if di.Column, err = p.parenColumn(); err != nil {
		return nil, err
	}
	return di, nil
}

// ident consumes one identifier token.
func (p *parser) ident(what string) (string, error) {
	if p.tok.Type != TokIdent {
		return "", p.errf("expected %s, got %s", what, p.tok)
	}
	name := p.tok.Text
	if err := p.advance(); err != nil {
		return "", err
	}
	return name, nil
}

// parenColumn consumes `( column )`. Single-column only: the index objects
// store one value per row.
func (p *parser) parenColumn() (string, error) {
	if err := p.expectOp("("); err != nil {
		return "", err
	}
	col, err := p.ident("column name")
	if err != nil {
		return "", err
	}
	if p.isOp(",") {
		return "", p.errf("composite indexes are not supported (one column per index)")
	}
	if err := p.expectOp(")"); err != nil {
		return "", err
	}
	return col, nil
}
