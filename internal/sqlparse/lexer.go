package sqlparse

import (
	"fmt"
	"strings"
)

// Lexer splits SQL text into tokens. It is only used via Parse, but is
// exported for tests and for the select engine's expression-size checks.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token, or an error on malformed input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return Token{Type: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		l.pos++
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		up := strings.ToUpper(word)
		if keywords[up] {
			return Token{Type: TokKeyword, Text: up, Pos: start}, nil
		}
		return Token{Type: TokIdent, Text: word, Pos: start}, nil
	case c >= '0' && c <= '9':
		return l.lexNumber(start)
	case c == '\'':
		return l.lexString(start)
	case c == '"': // quoted identifier
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return Token{}, fmt.Errorf("sqlparse: unterminated quoted identifier at offset %d", start)
		}
		text := l.src[start+1 : l.pos]
		l.pos++
		return Token{Type: TokIdent, Text: text, Pos: start}, nil
	default:
		return l.lexOp(start)
	}
}

func (l *Lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
}

func (l *Lexer) lexNumber(start int) (Token, error) {
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	return Token{Type: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
}

func (l *Lexer) lexString(start int) (Token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a single quote
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Type: TokString, Text: b.String(), Pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("sqlparse: unterminated string literal at offset %d", start)
}

func (l *Lexer) lexOp(start int) (Token, error) {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "!=", "<>", "<=", ">=", "||":
		l.pos += 2
		return Token{Type: TokOp, Text: two, Pos: start}, nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', '.':
		l.pos++
		return Token{Type: TokOp, Text: string(c), Pos: start}, nil
	}
	return Token{}, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, start)
}

// Tokens lexes the whole input (for tests).
func Tokens(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Type == TokEOF {
			return out, nil
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
