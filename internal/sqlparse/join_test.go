package sqlparse

import (
	"strings"
	"testing"
)

func TestParseJoinOn(t *testing.T) {
	sel, err := Parse("SELECT c.c_name, o.o_totalprice FROM customer AS c JOIN orders o ON c.c_custkey = o.o_custkey WHERE c.c_acctbal <= -950")
	if err != nil {
		t.Fatal(err)
	}
	if sel.Table != "customer" || sel.Alias != "c" {
		t.Fatalf("first table = %q alias %q", sel.Table, sel.Alias)
	}
	if len(sel.Joins) != 1 {
		t.Fatalf("joins = %d", len(sel.Joins))
	}
	j := sel.Joins[0]
	if j.Table != "orders" || j.Alias != "o" || j.Comma {
		t.Fatalf("join = %+v", j)
	}
	b, ok := j.Cond.(*Binary)
	if !ok || b.Op != OpEq {
		t.Fatalf("cond = %v", j.Cond)
	}
	l := b.L.(*Column)
	if l.Qualifier != "c" || l.Name != "c_custkey" {
		t.Fatalf("cond left = %+v", l)
	}
}

func TestParseInnerJoin(t *testing.T) {
	sel, err := Parse("SELECT * FROM a INNER JOIN b ON a.x = b.y")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Joins) != 1 || sel.Joins[0].Table != "b" || sel.Joins[0].Cond == nil {
		t.Fatalf("joins = %+v", sel.Joins)
	}
}

func TestParseCommaJoin(t *testing.T) {
	sel, err := Parse("SELECT * FROM customer, orders WHERE c_custkey = o_custkey AND c_acctbal < 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Joins) != 1 {
		t.Fatalf("joins = %d", len(sel.Joins))
	}
	if j := sel.Joins[0]; j.Table != "orders" || !j.Comma || j.Cond != nil {
		t.Fatalf("join = %+v", sel.Joins[0])
	}
	if got := len(Conjuncts(sel.Where)); got != 2 {
		t.Fatalf("where conjuncts = %d", got)
	}
}

func TestParseMultiJoin(t *testing.T) {
	sel, err := Parse("SELECT COUNT(*) FROM a, b AS bb, c WHERE a.k = bb.k AND bb.j = c.j")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Joins) != 2 || sel.Joins[0].Alias != "bb" || sel.Joins[1].Table != "c" {
		t.Fatalf("joins = %+v", sel.Joins)
	}
}

func TestJoinStringRoundTrip(t *testing.T) {
	for _, src := range []string{
		"SELECT * FROM a JOIN b ON (a.x = b.y)",
		"SELECT * FROM a AS s, b WHERE (s.x = b.y)",
		"SELECT x FROM a JOIN b AS t ON (a.x = t.y) WHERE (a.z > 3) LIMIT 7",
	} {
		sel, err := Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		got := sel.String()
		sel2, err := Parse(got)
		if err != nil {
			t.Fatalf("re-parse %q: %v", got, err)
		}
		if sel2.String() != got {
			t.Errorf("round trip unstable: %q -> %q", got, sel2.String())
		}
	}
}

func TestParseJoinErrors(t *testing.T) {
	for _, src := range []string{
		"SELECT * FROM a JOIN b",               // missing ON
		"SELECT * FROM a JOIN ON a.x = b.y",    // missing table
		"SELECT * FROM a INNER b ON a.x = b.y", // INNER without JOIN
		"SELECT * FROM a, WHERE a.x = 1",       // dangling comma
		"SELECT * FROM a JOIN b ON a.x = b.y,", // trailing comma
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q should not parse", src)
		}
	}
}

func TestParseRejectsOuterJoins(t *testing.T) {
	// LEFT/RIGHT/FULL/CROSS must not be swallowed as table aliases (that
	// would silently run an outer join as an inner join).
	for _, src := range []string{
		"SELECT * FROM a LEFT JOIN b ON a.x = b.y",
		"SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y",
		"SELECT * FROM a RIGHT JOIN b ON a.x = b.y",
		"SELECT * FROM a FULL JOIN b ON a.x = b.y",
		"SELECT * FROM a CROSS JOIN b",
	} {
		_, err := Parse(src)
		if err == nil || !strings.Contains(err.Error(), "unsupported join type") {
			t.Errorf("%q: err = %v, want unsupported-join-type error", src, err)
		}
	}
}

func TestConjunctsAndAndAll(t *testing.T) {
	e, err := ParseExpr("a = 1 AND b = 2 AND (c = 3 OR d = 4)")
	if err != nil {
		t.Fatal(err)
	}
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("conjuncts = %d", len(cs))
	}
	if Conjuncts(nil) != nil {
		t.Error("nil should have no conjuncts")
	}
	back := AndAll(cs)
	if got := len(Conjuncts(back)); got != 3 {
		t.Fatalf("AndAll round trip = %d conjuncts", got)
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) should be nil")
	}
}

func TestStripQualifiers(t *testing.T) {
	e, err := ParseExpr("c.c_acctbal <= -950 AND o.o_orderdate BETWEEN DATE '1994-01-01' AND DATE '1995-01-01'")
	if err != nil {
		t.Fatal(err)
	}
	s := StripQualifiers(e).String()
	if strings.Contains(s, "c.") || strings.Contains(s, "o.") {
		t.Errorf("qualifiers remain: %s", s)
	}
	for _, ref := range ColumnRefs(StripQualifiers(e)) {
		if ref.Qualifier != "" {
			t.Errorf("qualifier survived on %+v", ref)
		}
	}
}

func TestColumnRefsKeepsQualifiers(t *testing.T) {
	e, err := ParseExpr("c.c_custkey = o.o_custkey")
	if err != nil {
		t.Fatal(err)
	}
	refs := ColumnRefs(e)
	if len(refs) != 2 || refs[0].Qualifier != "c" || refs[1].Qualifier != "o" {
		t.Fatalf("refs = %+v", refs)
	}
}
