// Package sqlparse implements a lexer and recursive-descent parser for the
// SQL dialect used throughout PushdownDB. The dialect is a superset of what
// AWS S3 Select accepts: the select engine (internal/selectengine) enforces
// the S3 Select restrictions (no GROUP BY / ORDER BY / JOIN, single table,
// 256 KB expression limit) at execution time, while PushdownDB's own local
// executor uses the full grammar.
package sqlparse

import "fmt"

// TokenType classifies a lexical token.
type TokenType uint8

// Token types.
const (
	TokEOF TokenType = iota
	TokIdent
	TokNumber
	TokString
	TokOp      // punctuation and operators: ( ) , * + - / % = != <> < <= > >= .
	TokKeyword // reserved word, normalized to upper case
)

func (t TokenType) String() string {
	switch t {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokOp:
		return "operator"
	case TokKeyword:
		return "keyword"
	default:
		return fmt.Sprintf("TokenType(%d)", uint8(t))
	}
}

// Token is a single lexical token with its source position (byte offset).
type Token struct {
	Type TokenType
	Text string // keywords upper-cased; strings unquoted and unescaped
	Pos  int
}

func (t Token) String() string {
	if t.Type == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// keywords reserved by the dialect. Identifiers matching these (case
// insensitively) lex as TokKeyword.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "LIKE": true, "BETWEEN": true, "IS": true,
	"NULL": true, "TRUE": true, "FALSE": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true, "CAST": true, "ASC": true,
	"DESC": true, "SUM": true, "COUNT": true, "MIN": true, "MAX": true,
	"AVG": true, "SUBSTRING": true, "DATE": true, "INT": true,
	"INTEGER": true, "FLOAT": true, "DECIMAL": true, "STRING": true,
	"BOOL": true, "TIMESTAMP": true, "UTCNOW": true, "DISTINCT": true,
	"HAVING": true, "ESCAPE": true, "EXTRACT": true, "JOIN": true,
	"INNER": true, "ON": true, "LEFT": true, "RIGHT": true, "FULL": true,
	"OUTER": true, "CROSS": true,
}

// Note: CREATE, DROP and INDEX are deliberately NOT reserved. They only
// matter at the very front of a statement (ParseStatement matches them
// contextually), and reserving them would break queries over tables with
// an "index" column — a common name in exported datasets.
