package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"pushdowndb/internal/value"
)

// Parse parses a single SELECT statement.
func Parse(src string) (*Select, error) {
	p := &parser{lex: NewLexer(src), src: src}
	if err := p.advance(); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.tok.Type != TokEOF {
		return nil, p.errf("unexpected trailing input %s", p.tok)
	}
	return sel, nil
}

// ParseExpr parses a standalone expression (used in tests and by plan
// builders that assemble predicates from fragments).
func ParseExpr(src string) (Expr, error) {
	p := &parser{lex: NewLexer(src), src: src}
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.Type != TokEOF {
		return nil, p.errf("unexpected trailing input %s", p.tok)
	}
	return e, nil
}

type parser struct {
	lex *Lexer
	src string
	tok Token
}

func (p *parser) advance() error {
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: %s (at offset %d)", fmt.Sprintf(format, args...), p.tok.Pos)
}

func (p *parser) isKeyword(kw string) bool {
	return p.tok.Type == TokKeyword && p.tok.Text == kw
}

func (p *parser) isOp(op string) bool {
	return p.tok.Type == TokOp && p.tok.Text == op
}

func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errf("expected %s, got %s", kw, p.tok)
	}
	return p.advance()
}

func (p *parser) expectOp(op string) error {
	if !p.isOp(op) {
		return p.errf("expected %q, got %s", op, p.tok)
	}
	return p.advance()
}

func (p *parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if p.isOp(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, alias, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	sel.Table, sel.Alias = table, alias
	// Additional FROM tables: implicit comma joins (whose equality
	// predicates live in WHERE) and explicit [INNER] JOIN ... ON.
	for {
		switch {
		case p.isOp(","):
			if err := p.advance(); err != nil {
				return nil, err
			}
			t, a, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			sel.Joins = append(sel.Joins, Join{Table: t, Alias: a, Comma: true})
			continue
		case p.isKeyword("LEFT"), p.isKeyword("RIGHT"), p.isKeyword("FULL"), p.isKeyword("CROSS"), p.isKeyword("OUTER"):
			// Reserved so they cannot be swallowed as table aliases,
			// which would silently turn an outer join into an inner one.
			return nil, p.errf("unsupported join type %s (only [INNER] JOIN ... ON and comma joins are supported)", p.tok.Text)
		case p.isKeyword("JOIN"), p.isKeyword("INNER"):
			if p.isKeyword("INNER") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			t, a, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.Joins = append(sel.Joins, Join{Table: t, Alias: a, Cond: cond})
			continue
		}
		break
	}
	if p.isKeyword("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.isKeyword("GROUP") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, g)
			if p.isOp(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if p.isKeyword("ORDER") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.isKeyword("ASC") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			} else if p.isKeyword("DESC") {
				item.Desc = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.isOp(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	if p.isKeyword("LIMIT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Type != TokNumber {
			return nil, p.errf("expected number after LIMIT, got %s", p.tok)
		}
		n, err := strconv.ParseInt(p.tok.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad LIMIT %q", p.tok.Text)
		}
		sel.Limit = n
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return sel, nil
}

// parseTableRef parses `table [AS alias | alias]`.
func (p *parser) parseTableRef() (table, alias string, err error) {
	if p.tok.Type != TokIdent {
		return "", "", p.errf("expected table name, got %s", p.tok)
	}
	table = p.tok.Text
	if err := p.advance(); err != nil {
		return "", "", err
	}
	if p.isKeyword("AS") {
		if err := p.advance(); err != nil {
			return "", "", err
		}
		if p.tok.Type != TokIdent {
			return "", "", p.errf("expected alias after AS, got %s", p.tok)
		}
		alias = p.tok.Text
		if err := p.advance(); err != nil {
			return "", "", err
		}
	} else if p.tok.Type == TokIdent {
		alias = p.tok.Text
		if err := p.advance(); err != nil {
			return "", "", err
		}
	}
	return table, alias, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.isOp("*") {
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Expr: &Star{}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.isKeyword("AS") {
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
		if p.tok.Type != TokIdent {
			return SelectItem{}, p.errf("expected alias after AS, got %s", p.tok)
		}
		item.Alias = p.tok.Text
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
	} else if p.tok.Type == TokIdent {
		item.Alias = p.tok.Text
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
	}
	return item, nil
}

// Expression grammar, loosest to tightest:
//
//	expr     = and { OR and }
//	and      = not { AND not }
//	not      = NOT not | predicate
//	predicate= additive [ compOp additive | [NOT] BETWEEN .. | [NOT] IN (..) | [NOT] LIKE .. | IS [NOT] NULL ]
//	additive = mult { (+|-|'||') mult }
//	mult     = unary { (*|/|%) unary }
//	unary    = - unary | primary
func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("OR") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.isKeyword("AND") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.isKeyword("NOT") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parsePredicate()
}

var compOps = map[string]BinaryOp{
	"=": OpEq, "!=": OpNe, "<>": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parsePredicate() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.tok.Type == TokOp {
		if op, ok := compOps[p.tok.Text]; ok {
			if err := p.advance(); err != nil {
				return nil, err
			}
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	not := false
	if p.isKeyword("NOT") {
		// lookahead for NOT BETWEEN / NOT IN / NOT LIKE
		if err := p.advance(); err != nil {
			return nil, err
		}
		not = true
	}
	switch {
	case p.isKeyword("BETWEEN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Between{X: l, Lo: lo, Hi: hi, Not: not}, nil
	case p.isKeyword("IN"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.isOp(",") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &In{X: l, List: list, Not: not}, nil
	case p.isKeyword("LIKE"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Like{X: l, Pattern: pat, Not: not}, nil
	case p.isKeyword("IS"):
		if not {
			return nil, p.errf("NOT before IS is not supported; use IS NOT NULL")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		isNot := false
		if p.isKeyword("NOT") {
			isNot = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: l, Not: isNot}, nil
	}
	if not {
		return &Unary{Op: "NOT", X: l}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMult()
	if err != nil {
		return nil, err
	}
	for p.isOp("+") || p.isOp("-") || p.isOp("||") {
		op := OpAdd
		switch p.tok.Text {
		case "-":
			op = OpSub
		case "||":
			op = OpConcat
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseMult()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMult() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isOp("*") || p.isOp("/") || p.isOp("%") {
		op := OpMul
		switch p.tok.Text {
		case "/":
			op = OpDiv
		case "%":
			op = OpMod
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.isOp("-") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation of numeric literals so -950 is a Literal.
		if lit, ok := x.(*Literal); ok {
			switch lit.Val.Kind() {
			case value.KindInt:
				return &Literal{Val: value.Int(-lit.Val.AsInt())}, nil
			case value.KindFloat:
				f := -lit.Val.AsFloat()
				if f == 0 {
					// Normalize -0.0: it would print as "-0", which re-parses
					// as the integer 0 (so printing would not round-trip).
					f = 0
				}
				return &Literal{Val: value.Float(f)}, nil
			}
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

var aggFuncs = map[string]AggFunc{
	"SUM": AggSum, "COUNT": AggCount, "MIN": AggMin, "MAX": AggMax, "AVG": AggAvg,
}

var castKinds = map[string]value.Kind{
	"INT": value.KindInt, "INTEGER": value.KindInt,
	"FLOAT": value.KindFloat, "DECIMAL": value.KindFloat,
	"STRING": value.KindString, "TIMESTAMP": value.KindDate,
	"BOOL": value.KindBool,
}

func (p *parser) parsePrimary() (Expr, error) {
	switch {
	case p.isOp("("):
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil
	case p.tok.Type == TokNumber:
		text := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !strings.ContainsAny(text, ".eE") {
			i, err := strconv.ParseInt(text, 10, 64)
			if err == nil {
				return &Literal{Val: value.Int(i)}, nil
			}
		}
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", text)
		}
		return &Literal{Val: value.Float(f)}, nil
	case p.tok.Type == TokString:
		s := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Literal{Val: value.Str(s)}, nil
	case p.isKeyword("NULL"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Literal{Val: value.Null()}, nil
	case p.isKeyword("TRUE"), p.isKeyword("FALSE"):
		b := p.tok.Text == "TRUE"
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Literal{Val: value.Bool(b)}, nil
	case p.isKeyword("DATE"), p.isKeyword("TIMESTAMP"):
		// DATE '1994-01-01'
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.Type != TokString {
			return nil, p.errf("expected date string literal, got %s", p.tok)
		}
		v, err := value.ParseDate(p.tok.Text)
		if err != nil {
			return nil, p.errf("bad date literal %q", p.tok.Text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Literal{Val: v}, nil
	case p.isKeyword("CASE"):
		return p.parseCase()
	case p.isKeyword("CAST"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AS"); err != nil {
			return nil, err
		}
		if p.tok.Type != TokKeyword {
			return nil, p.errf("expected type name, got %s", p.tok)
		}
		kind, ok := castKinds[p.tok.Text]
		if !ok {
			return nil, p.errf("unsupported cast type %s", p.tok.Text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &Cast{X: x, To: kind}, nil
	case p.isKeyword("EXTRACT"):
		// EXTRACT(YEAR FROM expr) -> Call{EXTRACT, ['YEAR', expr]}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		if p.tok.Type != TokIdent {
			return nil, p.errf("expected date part (YEAR/MONTH/DAY), got %s", p.tok)
		}
		unit := strings.ToUpper(p.tok.Text)
		if unit != "YEAR" && unit != "MONTH" && unit != "DAY" {
			return nil, p.errf("unsupported EXTRACT part %q", unit)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("FROM"); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &Call{Name: "EXTRACT", Args: []Expr{&Literal{Val: value.Str(unit)}, x}}, nil
	case p.isKeyword("SUBSTRING"):
		name := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		args, err := p.parseArgs()
		if err != nil {
			return nil, err
		}
		if len(args) != 2 && len(args) != 3 {
			return nil, p.errf("SUBSTRING takes 2 or 3 arguments, got %d", len(args))
		}
		return &Call{Name: name, Args: args}, nil
	case p.tok.Type == TokKeyword:
		if fn, ok := aggFuncs[p.tok.Text]; ok {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var x Expr
			if p.isOp("*") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				x = &Star{}
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				x = e
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &Aggregate{Func: fn, X: x}, nil
		}
		return nil, p.errf("unexpected keyword %s", p.tok.Text)
	case p.tok.Type == TokIdent:
		name := p.tok.Text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.isOp("(") {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &Call{Name: strings.ToUpper(name), Args: args}, nil
		}
		if p.isOp(".") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.Type != TokIdent && p.tok.Type != TokOp {
				return nil, p.errf("expected column after %q., got %s", name, p.tok)
			}
			if p.isOp("*") {
				if err := p.advance(); err != nil {
					return nil, err
				}
				return &Star{}, nil
			}
			col := p.tok.Text
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &Column{Qualifier: name, Name: col}, nil
		}
		return &Column{Name: name}, nil
	default:
		return nil, p.errf("unexpected token %s", p.tok)
	}
}

func (p *parser) parseArgs() ([]Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var args []Expr
	if p.isOp(")") {
		return args, p.advance()
	}
	for {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.isOp(",") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.advance(); err != nil { // consume CASE
		return nil, err
	}
	c := &Case{}
	for p.isKeyword("WHEN") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, When{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN arm")
	}
	if p.isKeyword("ELSE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}
