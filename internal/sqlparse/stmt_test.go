package sqlparse

import "testing"

func TestParseCreateIndex(t *testing.T) {
	cases := []struct {
		src                 string
		name, table, column string
	}{
		{"CREATE INDEX ix ON t (col)", "ix", "t", "col"},
		{"create index on orders (o_custkey)", "", "orders", "o_custkey"},
		{`CREATE INDEX "my ix" ON "my table" ("weird col")`, "my ix", "my table", "weird col"},
	}
	for _, c := range cases {
		st, err := ParseStatement(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		ci, ok := st.(*CreateIndex)
		if !ok {
			t.Fatalf("%s parsed as %T", c.src, st)
		}
		if ci.Name != c.name || ci.Table != c.table || ci.Column != c.column {
			t.Errorf("%s = %+v", c.src, ci)
		}
		// The printed form must re-parse to the same statement.
		st2, err := ParseStatement(ci.String())
		if err != nil {
			t.Fatalf("round trip of %q: %v", ci.String(), err)
		}
		if st2.String() != ci.String() {
			t.Errorf("round trip drifted: %q vs %q", st2.String(), ci.String())
		}
	}
}

func TestParseDropIndex(t *testing.T) {
	st, err := ParseStatement("DROP INDEX ix ON t")
	if err != nil {
		t.Fatal(err)
	}
	di := st.(*DropIndex)
	if di.Name != "ix" || di.Table != "t" || di.Column != "" {
		t.Errorf("named drop = %+v", di)
	}
	st, err = ParseStatement("DROP INDEX ON t (col)")
	if err != nil {
		t.Fatal(err)
	}
	di = st.(*DropIndex)
	if di.Name != "" || di.Table != "t" || di.Column != "col" {
		t.Errorf("column drop = %+v", di)
	}
	for _, d := range []*DropIndex{
		{Name: "ix", Table: "t"},
		{Table: "t", Column: "col"},
	} {
		st, err := ParseStatement(d.String())
		if err != nil || st.String() != d.String() {
			t.Errorf("round trip of %q: %v, %v", d.String(), st, err)
		}
	}
}

func TestParseStatementSelect(t *testing.T) {
	st, err := ParseStatement("SELECT a FROM t WHERE b = 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*Select); !ok {
		t.Fatalf("SELECT parsed as %T", st)
	}
}

func TestParseIndexStatementErrors(t *testing.T) {
	bad := []string{
		"CREATE",
		"CREATE INDEX",
		"CREATE INDEX ON t",             // missing column list
		"CREATE INDEX ix ON t (a, b)",   // composite
		"CREATE INDEX ix ON t (a) junk", // trailing input
		"DROP INDEX ON t",               // neither name nor column
		"DROP TABLE t",
	}
	for _, src := range bad {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("%q must not parse", src)
		}
	}
	// Plain Parse keeps rejecting DDL (it only knows SELECT).
	if _, err := Parse("CREATE INDEX ix ON t (c)"); err == nil {
		t.Error("Parse must reject CREATE INDEX")
	}
}

func TestDDLWordsStayValidIdentifiers(t *testing.T) {
	// CREATE/DROP/INDEX are contextual (statement-head only), so columns
	// and tables named after them keep parsing everywhere else — exported
	// datasets commonly have an "index" column.
	for _, src := range []string{
		"SELECT index FROM t",
		"SELECT index, drop FROM create WHERE index = 5",
	} {
		sel, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if _, err := Parse(sel.String()); err != nil {
			t.Errorf("%q printed as %q, which does not re-parse: %v", src, sel.String(), err)
		}
	}
	// ParseStatement agrees: a SELECT over an index column is a SELECT.
	st, err := ParseStatement("SELECT index FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(*Select); !ok {
		t.Fatalf("parsed as %T", st)
	}
	// And an index named like a real keyword round-trips quoted.
	ci := &CreateIndex{Name: "on", Table: "t", Column: "c"}
	st, err = ParseStatement(ci.String())
	if err != nil || st.String() != ci.String() {
		t.Errorf("keyword-named index round trip: %v, %v", st, err)
	}
}
