package sqlparse

import (
	"strings"
	"testing"
	"testing/quick"

	"pushdowndb/internal/value"
)

func mustParse(t *testing.T, src string) *Select {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestLexerBasics(t *testing.T) {
	toks, err := Tokens("SELECT a, 1.5 FROM t WHERE x <> 'o''k' -- comment\n AND y >= 2")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Type != TokEOF {
			texts = append(texts, tok.Text)
		}
	}
	want := []string{"SELECT", "a", ",", "1.5", "FROM", "t", "WHERE", "x", "<>", "o'k", "AND", "y", ">=", "2"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Errorf("tokens = %v, want %v", texts, want)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "\"unterminated", "SELECT @"} {
		if _, err := Tokens(src); err == nil {
			t.Errorf("Tokens(%q): expected error", src)
		}
	}
}

func TestLexerNumberForms(t *testing.T) {
	for _, src := range []string{"1", "1.5", "0.25", "1e3", "1.5E-2", "2E+4"} {
		toks, err := Tokens(src)
		if err != nil {
			t.Fatalf("Tokens(%q): %v", src, err)
		}
		if toks[0].Type != TokNumber || toks[0].Text != src {
			t.Errorf("Tokens(%q) = %v", src, toks[0])
		}
	}
}

func TestParseSimpleSelect(t *testing.T) {
	s := mustParse(t, "SELECT * FROM S3Object")
	if s.Table != "S3Object" || len(s.Items) != 1 {
		t.Fatalf("bad select: %+v", s)
	}
	if _, ok := s.Items[0].Expr.(*Star); !ok {
		t.Error("expected star item")
	}
	if s.Limit != -1 || s.Where != nil {
		t.Error("unexpected limit/where")
	}
}

func TestParseProjectionAliases(t *testing.T) {
	s := mustParse(t, "SELECT c_custkey AS k, c_acctbal bal FROM customer")
	if s.Items[0].Alias != "k" || s.Items[1].Alias != "bal" {
		t.Errorf("aliases = %q, %q", s.Items[0].Alias, s.Items[1].Alias)
	}
}

func TestParseWherePrecedence(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := s.Where.(*Binary)
	if !ok || or.Op != OpOr {
		t.Fatalf("top must be OR, got %v", s.Where)
	}
	and, ok := or.R.(*Binary)
	if !ok || and.Op != OpAnd {
		t.Fatalf("right of OR must be AND, got %v", or.R)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	add := e.(*Binary)
	if add.Op != OpAdd {
		t.Fatalf("top = %v", add.Op)
	}
	if mul := add.R.(*Binary); mul.Op != OpMul {
		t.Fatalf("right = %v", mul.Op)
	}
}

func TestParseBloomStyleQuery(t *testing.T) {
	src := "SELECT o_totalprice FROM S3Object WHERE SUBSTRING('10001', ((69 * CAST(o_custkey AS INT) + 92) % 97) % 5 + 1, 1) = '1'"
	s := mustParse(t, src)
	if s.Where == nil {
		t.Fatal("missing where")
	}
	// Render and reparse: must be stable.
	again := mustParse(t, s.String())
	if again.String() != s.String() {
		t.Errorf("render not stable:\n%s\n%s", s.String(), again.String())
	}
}

func TestParseCaseWhen(t *testing.T) {
	src := "SELECT SUM(CASE WHEN c_nationkey = 0 THEN c_acctbal ELSE 0 END) FROM customer"
	s := mustParse(t, src)
	agg, ok := s.Items[0].Expr.(*Aggregate)
	if !ok || agg.Func != AggSum {
		t.Fatalf("expected SUM aggregate, got %T", s.Items[0].Expr)
	}
	c, ok := agg.X.(*Case)
	if !ok || len(c.Whens) != 1 || c.Else == nil {
		t.Fatalf("bad case: %+v", agg.X)
	}
}

func TestParseGroupOrderLimit(t *testing.T) {
	s := mustParse(t, "SELECT c_nationkey, SUM(c_acctbal) FROM customer GROUP BY c_nationkey ORDER BY c_nationkey DESC, c_custkey LIMIT 10")
	if len(s.GroupBy) != 1 || len(s.OrderBy) != 2 || s.Limit != 10 {
		t.Fatalf("bad clauses: %+v", s)
	}
	if !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Error("order directions wrong")
	}
}

func TestParseBetweenInLikeIsNull(t *testing.T) {
	s := mustParse(t, "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2, 3) AND c LIKE 'PROMO%' AND d IS NOT NULL AND e NOT IN (4) AND f NOT BETWEEN 0 AND 1 AND g NOT LIKE '%x' AND h IS NULL")
	rendered := s.Where.String()
	for _, frag := range []string{"BETWEEN", "IN (1, 2, 3)", "LIKE 'PROMO%'", "IS NOT NULL", "NOT IN (4)", "NOT BETWEEN", "NOT LIKE", "IS NULL"} {
		if !strings.Contains(rendered, frag) {
			t.Errorf("rendered %q missing %q", rendered, frag)
		}
	}
}

func TestParseDateLiteral(t *testing.T) {
	e, err := ParseExpr("o_orderdate < DATE '1995-01-01'")
	if err != nil {
		t.Fatal(err)
	}
	cmp := e.(*Binary)
	lit := cmp.R.(*Literal)
	if lit.Val.Kind() != value.KindDate || lit.Val.String() != "1995-01-01" {
		t.Errorf("bad date literal: %v", lit.Val)
	}
}

func TestParseNegativeNumberFolding(t *testing.T) {
	e, err := ParseExpr("c_acctbal <= -950")
	if err != nil {
		t.Fatal(err)
	}
	lit := e.(*Binary).R.(*Literal)
	if lit.Val.Kind() != value.KindInt || lit.Val.AsInt() != -950 {
		t.Errorf("expected folded -950, got %v", lit.Val)
	}
}

func TestParseCountStar(t *testing.T) {
	s := mustParse(t, "SELECT COUNT(*) FROM lineitem")
	agg := s.Items[0].Expr.(*Aggregate)
	if agg.Func != AggCount {
		t.Fatal("not COUNT")
	}
	if _, ok := agg.X.(*Star); !ok {
		t.Fatal("not COUNT(*)")
	}
}

func TestParseQualifiedColumns(t *testing.T) {
	e, err := ParseExpr("s.c_custkey = 5")
	if err != nil {
		t.Fatal(err)
	}
	col := e.(*Binary).L.(*Column)
	if col.Qualifier != "s" || col.Name != "c_custkey" {
		t.Errorf("bad qualified column: %+v", col)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t GROUP",
		"SELECT CAST(a AS VARCHAR2) FROM t",
		"SELECT SUBSTRING(a) FROM t",
		"SELECT CASE END FROM t",
		"SELECT a FROM t trailing garbage",
		"SELECT a b c FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestContainsAggregate(t *testing.T) {
	s := mustParse(t, "SELECT 100 * SUM(a) / SUM(b) FROM t")
	if !s.HasAggregates() {
		t.Error("should detect aggregates in arithmetic")
	}
	s2 := mustParse(t, "SELECT a + b FROM t")
	if s2.HasAggregates() {
		t.Error("false positive aggregate")
	}
}

func TestColumnsCollection(t *testing.T) {
	e, err := ParseExpr("CASE WHEN a = 1 THEN b ELSE c + d END + SUBSTRING(e, 1, 2)")
	if err != nil {
		t.Fatal(err)
	}
	got := Columns(e)
	want := []string{"a", "b", "c", "d", "e"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("Columns = %v, want %v", got, want)
	}
}

// Property: rendering a parsed statement and reparsing it is a fixed point.
func TestQuickRenderReparse(t *testing.T) {
	seeds := []string{
		"SELECT * FROM S3Object",
		"SELECT a, b AS x FROM t WHERE a < 5 AND b LIKE '%q' ORDER BY a DESC LIMIT 3",
		"SELECT SUM(CASE WHEN g = 1 THEN v ELSE 0 END), COUNT(*) FROM t WHERE d >= DATE '1994-01-01'",
		"SELECT CAST(a AS INT) % 7 FROM t WHERE a BETWEEN 1 AND 10 OR b IN ('x', 'y')",
		"SELECT AVG(0.2 * l_quantity) FROM lineitem WHERE NOT (a = 1)",
	}
	for _, src := range seeds {
		s1 := mustParse(t, src)
		s2 := mustParse(t, s1.String())
		if s1.String() != s2.String() {
			t.Errorf("not a fixed point:\n  %s\n  %s", s1.String(), s2.String())
		}
	}
}

// Property: the lexer never loops forever and token positions increase.
func TestQuickLexerProgress(t *testing.T) {
	f := func(raw []byte) bool {
		// Constrain to mostly printable input to hit interesting paths.
		src := strings.Map(func(r rune) rune {
			if r >= 32 && r < 127 {
				return r
			}
			return ' '
		}, string(raw))
		l := NewLexer(src)
		last := -1
		for i := 0; i < len(src)+2; i++ {
			tok, err := l.Next()
			if err != nil {
				return true // rejecting is fine
			}
			if tok.Type == TokEOF {
				return true
			}
			if tok.Pos <= last && i > 0 {
				return false
			}
			last = tok.Pos
		}
		return false // did not terminate
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
