package s3http

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/csvx"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/selectengine"
	"pushdowndb/internal/store"
)

// The shared backend behaviour (reads, error kinds, context handling) is
// covered by conformance_test.go; these tests pin wire-protocol details.

func ctxb() context.Context { return context.Background() }

func newPair(t *testing.T, opts ...ServerOption) (*store.Store, *Client) {
	t.Helper()
	st := store.New()
	srv := httptest.NewServer(NewServer(st, opts...))
	t.Cleanup(srv.Close)
	return st, NewClient(srv.URL, srv.Client())
}

func TestPutGetOverHTTP(t *testing.T) {
	_, c := newPair(t)
	if err := c.Put(ctxb(), "b", "dir/key.csv", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(ctxb(), "b", "dir/key.csv")
	if err != nil || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestErrorKindsSurviveTheWire(t *testing.T) {
	st, c := newPair(t)
	st.Put("b", "k", []byte("0123456789"))
	_, err := c.Get(ctxb(), "b", "missing")
	if s3api.KindOf(err) != s3api.KindNotFound {
		t.Errorf("missing key kind = %q (%v)", s3api.KindOf(err), err)
	}
	_, err = c.GetRange(ctxb(), "b", "k", 50, 60)
	if s3api.KindOf(err) != s3api.KindInvalidRange {
		t.Errorf("bad range kind = %q (%v)", s3api.KindOf(err), err)
	}
	_, err = c.Size(ctxb(), "b", "missing")
	if s3api.KindOf(err) != s3api.KindNotFound {
		t.Errorf("missing HEAD kind = %q (%v)", s3api.KindOf(err), err)
	}
}

func TestSelectOverHTTP(t *testing.T) {
	st, c := newPair(t)
	data := csvx.Encode([]string{"k", "v"}, [][]string{{"1", "10"}, {"2", "20"}, {"3", "30"}})
	st.Put("b", "t.csv", data)
	res, err := c.Select(ctxb(), "b", "t.csv", selectengine.Request{
		SQL:       "SELECT k FROM S3Object WHERE v >= 20",
		HasHeader: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != "2" {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Stats.BytesScanned != int64(len(data)) {
		t.Errorf("stats lost over the wire: %+v", res.Stats)
	}
	// Errors propagate with a structured kind.
	_, err = c.Select(ctxb(), "b", "t.csv", selectengine.Request{
		SQL: "SELECT k FROM S3Object ORDER BY k", HasHeader: true,
	})
	if s3api.KindOf(err) != s3api.KindBadRequest {
		t.Errorf("ORDER BY rejection kind = %q (%v)", s3api.KindOf(err), err)
	}
}

func TestSelectScanRangeOverHTTP(t *testing.T) {
	st, c := newPair(t)
	data := csvx.Encode([]string{"k"}, [][]string{{"1"}, {"2"}, {"3"}, {"4"}})
	st.Put("b", "t.csv", data)
	ranges, _ := csvx.RowRanges(data, true)
	res, err := c.Select(ctxb(), "b", "t.csv", selectengine.Request{
		SQL:       "SELECT k FROM S3Object",
		HasHeader: true,
		ScanRange: &selectengine.ScanRange{Start: ranges[2][0], End: int64(len(data))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != "3" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestDescribeEndpoint(t *testing.T) {
	// A server with capabilities and a custom profile is self-describing:
	// the client learns both over the wire.
	_, c := newPair(t,
		WithCapabilities(selectengine.Capabilities{AllowGroupBy: true}),
		WithProfile(cloudsim.CrossRegionS3Profile()))
	if !c.Capabilities().AllowGroupBy {
		t.Error("client should learn the server's capabilities from ?describe")
	}
	if c.Profile().Name != "s3-cross-region" {
		t.Errorf("client profile = %+v, want the server's", c.Profile())
	}
	// A plain server describes the defaults.
	_, plain := newPair(t)
	if plain.Capabilities().AllowGroupBy {
		t.Error("plain server must not advertise extensions")
	}
	if plain.Profile() != cloudsim.S3Profile() {
		t.Errorf("plain profile = %+v, want S3Profile", plain.Profile())
	}
}

func TestServerEnforcesItsCapabilities(t *testing.T) {
	// Even if a client hand-crafts a request claiming an extension, a
	// server that does not allow it rejects the select.
	st, c := newPair(t) // no capabilities
	st.Put("b", "t.csv", csvx.Encode([]string{"g", "v"}, [][]string{{"a", "1"}, {"a", "2"}}))
	_, err := c.Select(ctxb(), "b", "t.csv", selectengine.Request{
		SQL:          "SELECT g, SUM(v) FROM S3Object GROUP BY g",
		HasHeader:    true,
		Capabilities: selectengine.Capabilities{AllowGroupBy: true}, // a lie
	})
	if err == nil {
		t.Fatal("server without AllowGroupBy must reject a GROUP BY select")
	}
}

func TestClientSatisfiesInterface(t *testing.T) {
	var _ s3api.Backend = (*Client)(nil)
	var _ s3api.Backend = (*s3api.InProc)(nil)
	var _ s3api.Putter = (*Client)(nil)
}

func TestHTTPAndInProcAgree(t *testing.T) {
	st, httpClient := newPair(t)
	inproc := s3api.NewInProc(st)
	data := csvx.Encode([]string{"a", "b"}, [][]string{{"1", "x"}, {"2", "y"}})
	st.Put("b", "t.csv", data)

	req := selectengine.Request{SQL: "SELECT a, b FROM S3Object WHERE a = 2", HasHeader: true}
	r1, err1 := inproc.Select(ctxb(), "b", "t.csv", req)
	r2, err2 := httpClient.Select(ctxb(), "b", "t.csv", req)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(r1.Rows, r2.Rows) || r1.Stats != r2.Stats {
		t.Errorf("in-proc %+v != http %+v", r1, r2)
	}
}

func TestBadRequests(t *testing.T) {
	st := store.New()
	st.Put("b", "k", []byte("xyz"))
	srv := httptest.NewServer(NewServer(st))
	defer srv.Close()
	// Empty bucket path without ?describe is a bad request.
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("empty bucket path status = %d", resp.StatusCode)
	}
	if kind := resp.Header.Get("X-Pushdowndb-Error-Kind"); kind != string(s3api.KindBadRequest) {
		t.Errorf("error kind header = %q", kind)
	}
}

func TestParseRanges(t *testing.T) {
	good, err := parseRanges("bytes=1-2,4-9")
	if err != nil || !reflect.DeepEqual(good, [][2]int64{{1, 2}, {4, 9}}) {
		t.Errorf("parseRanges = %v, %v", good, err)
	}
	for _, bad := range []string{"1-2", "bytes=", "bytes=a-b", "bytes=5"} {
		if _, err := parseRanges(bad); err == nil {
			t.Errorf("parseRanges(%q) should fail", bad)
		}
	}
}
