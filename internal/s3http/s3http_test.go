package s3http

import (
	"net/http/httptest"
	"reflect"
	"testing"

	"pushdowndb/internal/csvx"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/selectengine"
	"pushdowndb/internal/store"
)

func newPair(t *testing.T) (*store.Store, *Client) {
	t.Helper()
	st := store.New()
	srv := httptest.NewServer(NewServer(st))
	t.Cleanup(srv.Close)
	return st, NewClient(srv.URL, srv.Client())
}

func TestPutGetOverHTTP(t *testing.T) {
	_, c := newPair(t)
	if err := c.Put("b", "dir/key.csv", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("b", "dir/key.csv")
	if err != nil || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if _, err := c.Get("b", "missing"); err == nil {
		t.Error("missing object should error")
	}
}

func TestRangeOverHTTP(t *testing.T) {
	st, c := newPair(t)
	st.Put("b", "k", []byte("0123456789"))
	got, err := c.GetRange("b", "k", 3, 6)
	if err != nil || string(got) != "3456" {
		t.Fatalf("GetRange = %q, %v", got, err)
	}
	if _, err := c.GetRange("b", "k", 50, 60); err == nil {
		t.Error("unsatisfiable range should error")
	}
}

func TestMultiRangeOverHTTP(t *testing.T) {
	st, c := newPair(t)
	st.Put("b", "k", []byte("abcdefghij"))
	parts, err := c.GetRanges("b", "k", [][2]int64{{0, 1}, {5, 6}, {9, 9}})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("ab"), []byte("fg"), []byte("j")}
	if !reflect.DeepEqual(parts, want) {
		t.Errorf("parts = %q", parts)
	}
	// Single range through the same API.
	parts, err = c.GetRanges("b", "k", [][2]int64{{2, 4}})
	if err != nil || string(parts[0]) != "cde" {
		t.Errorf("single-range GetRanges = %q, %v", parts, err)
	}
}

func TestSelectOverHTTP(t *testing.T) {
	st, c := newPair(t)
	data := csvx.Encode([]string{"k", "v"}, [][]string{{"1", "10"}, {"2", "20"}, {"3", "30"}})
	st.Put("b", "t.csv", data)
	res, err := c.Select("b", "t.csv", selectengine.Request{
		SQL:       "SELECT k FROM S3Object WHERE v >= 20",
		HasHeader: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != "2" {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Stats.BytesScanned != int64(len(data)) {
		t.Errorf("stats lost over the wire: %+v", res.Stats)
	}
	// Errors propagate.
	if _, err := c.Select("b", "t.csv", selectengine.Request{
		SQL: "SELECT k FROM S3Object ORDER BY k", HasHeader: true,
	}); err == nil {
		t.Error("ORDER BY rejection should propagate over HTTP")
	}
}

func TestSelectScanRangeOverHTTP(t *testing.T) {
	st, c := newPair(t)
	data := csvx.Encode([]string{"k"}, [][]string{{"1"}, {"2"}, {"3"}, {"4"}})
	st.Put("b", "t.csv", data)
	ranges, _ := csvx.RowRanges(data, true)
	res, err := c.Select("b", "t.csv", selectengine.Request{
		SQL:       "SELECT k FROM S3Object",
		HasHeader: true,
		ScanRange: &selectengine.ScanRange{Start: ranges[2][0], End: int64(len(data))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != "3" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestListAndSizeOverHTTP(t *testing.T) {
	st, c := newPair(t)
	st.Put("b", "t/part0000.csv", []byte("abc"))
	st.Put("b", "t/part0001.csv", []byte("defg"))
	st.Put("b", "u/part0000.csv", []byte("x"))
	keys, err := c.List("b", "t/")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, []string{"t/part0000.csv", "t/part0001.csv"}) {
		t.Errorf("keys = %v", keys)
	}
	n, err := c.Size("b", "t/part0001.csv")
	if err != nil || n != 4 {
		t.Errorf("Size = %d, %v", n, err)
	}
	if _, err := c.Size("b", "missing"); err == nil {
		t.Error("missing size should error")
	}
}

func TestClientSatisfiesInterface(t *testing.T) {
	var _ s3api.Client = (*Client)(nil)
	var _ s3api.Client = (*s3api.InProc)(nil)
}

func TestHTTPAndInProcAgree(t *testing.T) {
	st, httpClient := newPair(t)
	inproc := s3api.NewInProc(st)
	data := csvx.Encode([]string{"a", "b"}, [][]string{{"1", "x"}, {"2", "y"}})
	st.Put("b", "t.csv", data)

	req := selectengine.Request{SQL: "SELECT a, b FROM S3Object WHERE a = 2", HasHeader: true}
	r1, err1 := inproc.Select("b", "t.csv", req)
	r2, err2 := httpClient.Select("b", "t.csv", req)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(r1.Rows, r2.Rows) || r1.Stats != r2.Stats {
		t.Errorf("in-proc %+v != http %+v", r1, r2)
	}
}

func TestBadRequests(t *testing.T) {
	_, c := newPair(t)
	// Bad range header format.
	st2 := store.New()
	st2.Put("b", "k", []byte("xyz"))
	srv := httptest.NewServer(NewServer(st2))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("empty bucket path status = %d", resp.StatusCode)
	}
	_ = c
}

func TestParseRanges(t *testing.T) {
	good, err := parseRanges("bytes=1-2,4-9")
	if err != nil || !reflect.DeepEqual(good, [][2]int64{{1, 2}, {4, 9}}) {
		t.Errorf("parseRanges = %v, %v", good, err)
	}
	for _, bad := range []string{"1-2", "bytes=", "bytes=a-b", "bytes=5"} {
		if _, err := parseRanges(bad); err == nil {
			t.Errorf("parseRanges(%q) should fail", bad)
		}
	}
}
