// Package s3http exposes the simulated S3 service over HTTP and provides
// the matching client. The protocol mirrors the parts of the S3 REST API
// PushdownDB needs:
//
//	PUT    /{bucket}/{key}                 store an object
//	GET    /{bucket}/{key}                 fetch an object; honours Range
//	                                       (single "bytes=a-b" range, plus
//	                                       multiple ranges as the paper's
//	                                       Suggestion-1 extension)
//	POST   /{bucket}/{key}?select          run S3 Select (JSON body)
//	GET    /{bucket}?list&prefix=p         list keys
//	HEAD   /{bucket}/{key}                 object size
//
// S3 Select requests and responses use JSON rather than AWS's XML +
// event-stream framing; the framing overhead is represented in the
// cloudsim cost model instead of on this wire.
package s3http

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"pushdowndb/internal/selectengine"
	"pushdowndb/internal/store"
)

// SelectBody is the JSON body of a select POST.
type SelectBody struct {
	SQL          string                    `json:"sql"`
	HasHeader    bool                      `json:"has_header"`
	Capabilities selectengine.Capabilities `json:"capabilities"`
	ScanRange    *selectengine.ScanRange   `json:"scan_range,omitempty"`
}

// SelectResponse is the JSON response of a select POST.
type SelectResponse struct {
	Columns []string           `json:"columns"`
	Rows    [][]string         `json:"rows"`
	Stats   selectengine.Stats `json:"stats"`
}

// multiRangeResponse carries Suggestion-1 multi-range GET results.
type multiRangeResponse struct {
	Parts []string `json:"parts"` // base64
}

// Server serves a store over HTTP.
type Server struct {
	store *store.Store
}

// NewServer wraps st.
func NewServer(st *store.Store) *Server { return &Server{store: st} }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/")
	slash := strings.IndexByte(path, '/')
	var bucket, key string
	if slash < 0 {
		bucket = path
	} else {
		bucket, key = path[:slash], path[slash+1:]
	}
	if bucket == "" {
		http.Error(w, "missing bucket", http.StatusBadRequest)
		return
	}
	switch {
	case r.Method == http.MethodPut && key != "":
		s.put(w, r, bucket, key)
	case r.Method == http.MethodPost && key != "" && r.URL.Query().Has("select"):
		s.sel(w, r, bucket, key)
	case r.Method == http.MethodGet && key == "":
		s.list(w, r, bucket)
	case r.Method == http.MethodGet && key != "":
		s.get(w, r, bucket, key)
	case r.Method == http.MethodHead && key != "":
		s.head(w, bucket, key)
	default:
		http.Error(w, "unsupported operation", http.StatusMethodNotAllowed)
	}
}

func (s *Server) put(w http.ResponseWriter, r *http.Request, bucket, key string) {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.store.Put(bucket, key, data)
	w.WriteHeader(http.StatusOK)
}

func (s *Server) head(w http.ResponseWriter, bucket, key string) {
	n, err := s.store.Size(bucket, key)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
	w.WriteHeader(http.StatusOK)
}

func (s *Server) list(w http.ResponseWriter, r *http.Request, bucket string) {
	keys := s.store.List(bucket, r.URL.Query().Get("prefix"))
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(keys)
}

// parseRanges parses "bytes=a-b" or "bytes=a-b,c-d,...".
func parseRanges(h string) ([][2]int64, error) {
	if !strings.HasPrefix(h, "bytes=") {
		return nil, fmt.Errorf("s3http: bad Range header %q", h)
	}
	var out [][2]int64
	for _, part := range strings.Split(strings.TrimPrefix(h, "bytes="), ",") {
		dash := strings.IndexByte(part, '-')
		if dash <= 0 {
			return nil, fmt.Errorf("s3http: bad range %q", part)
		}
		first, err1 := strconv.ParseInt(strings.TrimSpace(part[:dash]), 10, 64)
		last, err2 := strconv.ParseInt(strings.TrimSpace(part[dash+1:]), 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("s3http: bad range %q", part)
		}
		out = append(out, [2]int64{first, last})
	}
	return out, nil
}

func (s *Server) get(w http.ResponseWriter, r *http.Request, bucket, key string) {
	rangeHeader := r.Header.Get("Range")
	if rangeHeader == "" {
		data, err := s.store.Get(bucket, key)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		_, _ = w.Write(data)
		return
	}
	ranges, err := parseRanges(rangeHeader)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(ranges) == 1 {
		data, err := s.store.GetRange(bucket, key, ranges[0][0], ranges[0][1])
		if err != nil {
			http.Error(w, err.Error(), http.StatusRequestedRangeNotSatisfiable)
			return
		}
		w.WriteHeader(http.StatusPartialContent)
		_, _ = w.Write(data)
		return
	}
	// Suggestion-1 extension: multiple ranges in one request.
	parts, err := s.store.GetRanges(bucket, key, ranges)
	if err != nil {
		http.Error(w, err.Error(), http.StatusRequestedRangeNotSatisfiable)
		return
	}
	resp := multiRangeResponse{Parts: make([]string, len(parts))}
	for i, p := range parts {
		resp.Parts[i] = base64.StdEncoding.EncodeToString(p)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusPartialContent)
	_ = json.NewEncoder(w).Encode(&resp)
}

func (s *Server) sel(w http.ResponseWriter, r *http.Request, bucket, key string) {
	var body SelectBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	data, err := s.store.Get(bucket, key)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	res, err := selectengine.Execute(data, selectengine.Request{
		SQL:          body.SQL,
		HasHeader:    body.HasHeader,
		Capabilities: body.Capabilities,
		ScanRange:    body.ScanRange,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&SelectResponse{Columns: res.Columns, Rows: res.Rows, Stats: res.Stats})
}

// Client is the HTTP implementation of s3api.Client.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for an s3http server at base (e.g.
// "http://127.0.0.1:9000").
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

func (c *Client) url(bucket, key string) string {
	if key == "" {
		return c.base + "/" + bucket
	}
	return c.base + "/" + bucket + "/" + key
}

func (c *Client) do(req *http.Request, wantStatus ...int) ([]byte, error) {
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	for _, s := range wantStatus {
		if resp.StatusCode == s {
			return body, nil
		}
	}
	return nil, fmt.Errorf("s3http: %s %s: %s: %s", req.Method, req.URL, resp.Status, strings.TrimSpace(string(body)))
}

// Put stores an object.
func (c *Client) Put(bucket, key string, data []byte) error {
	req, err := http.NewRequest(http.MethodPut, c.url(bucket, key), bytes.NewReader(data))
	if err != nil {
		return err
	}
	_, err = c.do(req, http.StatusOK)
	return err
}

// Get implements s3api.Client.
func (c *Client) Get(bucket, key string) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, c.url(bucket, key), nil)
	if err != nil {
		return nil, err
	}
	return c.do(req, http.StatusOK)
}

// GetRange implements s3api.Client.
func (c *Client) GetRange(bucket, key string, first, last int64) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, c.url(bucket, key), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", first, last))
	return c.do(req, http.StatusPartialContent)
}

// GetRanges implements s3api.Client (Suggestion-1 extension).
func (c *Client) GetRanges(bucket, key string, ranges [][2]int64) ([][]byte, error) {
	req, err := http.NewRequest(http.MethodGet, c.url(bucket, key), nil)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	sb.WriteString("bytes=")
	for i, r := range ranges {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d-%d", r[0], r[1])
	}
	req.Header.Set("Range", sb.String())
	body, err := c.do(req, http.StatusPartialContent)
	if err != nil {
		return nil, err
	}
	if len(ranges) == 1 {
		return [][]byte{body}, nil
	}
	var resp multiRangeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("s3http: decoding multi-range response: %w", err)
	}
	out := make([][]byte, len(resp.Parts))
	for i, p := range resp.Parts {
		out[i], err = base64.StdEncoding.DecodeString(p)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Select implements s3api.Client.
func (c *Client) Select(bucket, key string, sreq selectengine.Request) (*selectengine.Result, error) {
	body, err := json.Marshal(&SelectBody{
		SQL:          sreq.SQL,
		HasHeader:    sreq.HasHeader,
		Capabilities: sreq.Capabilities,
		ScanRange:    sreq.ScanRange,
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, c.url(bucket, key)+"?select", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	respBody, err := c.do(req, http.StatusOK)
	if err != nil {
		return nil, err
	}
	var resp SelectResponse
	if err := json.Unmarshal(respBody, &resp); err != nil {
		return nil, err
	}
	return &selectengine.Result{Columns: resp.Columns, Rows: resp.Rows, Stats: resp.Stats}, nil
}

// List implements s3api.Client.
func (c *Client) List(bucket, prefix string) ([]string, error) {
	req, err := http.NewRequest(http.MethodGet, c.url(bucket, "")+"?list&prefix="+prefix, nil)
	if err != nil {
		return nil, err
	}
	body, err := c.do(req, http.StatusOK)
	if err != nil {
		return nil, err
	}
	var keys []string
	if err := json.Unmarshal(body, &keys); err != nil {
		return nil, err
	}
	return keys, nil
}

// Size implements s3api.Client.
func (c *Client) Size(bucket, key string) (int64, error) {
	req, err := http.NewRequest(http.MethodHead, c.url(bucket, key), nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("s3http: HEAD %s/%s: %s", bucket, key, resp.Status)
	}
	return strconv.ParseInt(resp.Header.Get("Content-Length"), 10, 64)
}
