// Package s3http exposes the simulated S3 service over HTTP and provides
// the matching s3api.Backend client. The protocol mirrors the parts of the
// S3 REST API PushdownDB needs:
//
//	PUT    /{bucket}/{key}                 store an object
//	GET    /{bucket}/{key}                 fetch an object; honours Range
//	                                       (single "bytes=a-b" range, plus
//	                                       multiple ranges as the paper's
//	                                       Suggestion-1 extension)
//	POST   /{bucket}/{key}?select          run S3 Select (JSON body)
//	GET    /{bucket}?list&prefix=p         list keys
//	HEAD   /{bucket}/{key}                 object size
//	GET    /?describe                      the server's self-description
//	                                       (select capabilities + profile)
//
// S3 Select requests and responses use JSON rather than AWS's XML +
// event-stream framing; the framing overhead is represented in the
// cloudsim cost model instead of on this wire.
//
// Failed operations carry a structured error kind in the
// X-Pushdowndb-Error-Kind response header (s3api.Kind values), which the
// client folds back into *s3api.Error, so error classification survives
// the wire instead of being guessed from status codes.
package s3http

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/selectengine"
	"pushdowndb/internal/store"
)

// errorKindHeader carries the s3api.Kind of a failed operation.
const errorKindHeader = "X-Pushdowndb-Error-Kind"

// SelectBody is the JSON body of a select POST.
type SelectBody struct {
	SQL          string                    `json:"sql"`
	HasHeader    bool                      `json:"has_header"`
	Capabilities selectengine.Capabilities `json:"capabilities"`
	ScanRange    *selectengine.ScanRange   `json:"scan_range,omitempty"`
}

// SelectResponse is the JSON response of a select POST.
type SelectResponse struct {
	Columns []string           `json:"columns"`
	Rows    [][]string         `json:"rows"`
	Stats   selectengine.Stats `json:"stats"`
}

// DescribeResponse is the JSON self-description served at GET /?describe.
type DescribeResponse struct {
	Capabilities selectengine.Capabilities `json:"capabilities"`
	Profile      cloudsim.Profile          `json:"profile"`
}

// multiRangeResponse carries Suggestion-1 multi-range GET results.
type multiRangeResponse struct {
	Parts []string `json:"parts"` // base64
}

// Server serves a store over HTTP.
type Server struct {
	store   *store.Store
	caps    selectengine.Capabilities
	profile cloudsim.Profile
}

// ServerOption configures NewServer.
type ServerOption func(*Server)

// WithCapabilities sets the S3 Select extensions this server executes and
// advertises (all off by default, matching 2020 AWS). Select requests
// asking for extensions the server does not allow fail with an
// "unsupported" error kind.
func WithCapabilities(caps selectengine.Capabilities) ServerOption {
	return func(s *Server) { s.caps = caps }
}

// WithProfile sets the performance/pricing profile the server advertises
// (default cloudsim.S3Profile).
func WithProfile(p cloudsim.Profile) ServerOption {
	return func(s *Server) { s.profile = p }
}

// NewServer wraps st.
func NewServer(st *store.Store, opts ...ServerOption) *Server {
	s := &Server{store: st, profile: cloudsim.S3Profile()}
	for _, o := range opts {
		o(s)
	}
	return s
}

// httpError writes status plus the structured error kind header.
func httpError(w http.ResponseWriter, msg string, status int, kind s3api.Kind) {
	w.Header().Set(errorKindHeader, string(kind))
	http.Error(w, msg, status)
}

// storeError maps a store error to its HTTP rendering.
func storeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, store.ErrNotFound):
		httpError(w, err.Error(), http.StatusNotFound, s3api.KindNotFound)
	case errors.Is(err, store.ErrInvalidRange):
		httpError(w, err.Error(), http.StatusRequestedRangeNotSatisfiable, s3api.KindInvalidRange)
	default:
		httpError(w, err.Error(), http.StatusInternalServerError, s3api.KindInternal)
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/")
	slash := strings.IndexByte(path, '/')
	var bucket, key string
	if slash < 0 {
		bucket = path
	} else {
		bucket, key = path[:slash], path[slash+1:]
	}
	if bucket == "" {
		if r.Method == http.MethodGet && r.URL.Query().Has("describe") {
			s.describe(w)
			return
		}
		httpError(w, "missing bucket", http.StatusBadRequest, s3api.KindBadRequest)
		return
	}
	switch {
	case r.Method == http.MethodPut && key != "":
		s.put(w, r, bucket, key)
	case r.Method == http.MethodPost && key != "" && r.URL.Query().Has("select"):
		s.sel(w, r, bucket, key)
	case r.Method == http.MethodGet && key == "":
		s.list(w, r, bucket)
	case r.Method == http.MethodGet && key != "":
		s.get(w, r, bucket, key)
	case r.Method == http.MethodHead && key != "":
		s.head(w, bucket, key)
	default:
		httpError(w, "unsupported operation", http.StatusMethodNotAllowed, s3api.KindUnsupported)
	}
}

func (s *Server) describe(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&DescribeResponse{Capabilities: s.caps, Profile: s.profile})
}

func (s *Server) put(w http.ResponseWriter, r *http.Request, bucket, key string) {
	data, err := io.ReadAll(r.Body)
	if err != nil {
		httpError(w, err.Error(), http.StatusBadRequest, s3api.KindBadRequest)
		return
	}
	s.store.Put(bucket, key, data)
	w.WriteHeader(http.StatusOK)
}

func (s *Server) head(w http.ResponseWriter, bucket, key string) {
	n, err := s.store.Size(bucket, key)
	if err != nil {
		// HEAD responses have no body; the kind header is the only detail.
		w.Header().Set(errorKindHeader, string(s3api.KindNotFound))
		w.WriteHeader(http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
	w.WriteHeader(http.StatusOK)
}

func (s *Server) list(w http.ResponseWriter, r *http.Request, bucket string) {
	keys := s.store.List(bucket, r.URL.Query().Get("prefix"))
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(keys)
}

// parseRanges parses "bytes=a-b" or "bytes=a-b,c-d,...".
func parseRanges(h string) ([][2]int64, error) {
	if !strings.HasPrefix(h, "bytes=") {
		return nil, fmt.Errorf("s3http: bad Range header %q", h)
	}
	var out [][2]int64
	for _, part := range strings.Split(strings.TrimPrefix(h, "bytes="), ",") {
		dash := strings.IndexByte(part, '-')
		if dash <= 0 {
			return nil, fmt.Errorf("s3http: bad range %q", part)
		}
		first, err1 := strconv.ParseInt(strings.TrimSpace(part[:dash]), 10, 64)
		last, err2 := strconv.ParseInt(strings.TrimSpace(part[dash+1:]), 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("s3http: bad range %q", part)
		}
		out = append(out, [2]int64{first, last})
	}
	return out, nil
}

func (s *Server) get(w http.ResponseWriter, r *http.Request, bucket, key string) {
	rangeHeader := r.Header.Get("Range")
	if rangeHeader == "" {
		data, err := s.store.Get(bucket, key)
		if err != nil {
			storeError(w, err)
			return
		}
		_, _ = w.Write(data)
		return
	}
	ranges, err := parseRanges(rangeHeader)
	if err != nil {
		httpError(w, err.Error(), http.StatusBadRequest, s3api.KindBadRequest)
		return
	}
	if len(ranges) == 1 {
		data, err := s.store.GetRange(bucket, key, ranges[0][0], ranges[0][1])
		if err != nil {
			storeError(w, err)
			return
		}
		w.WriteHeader(http.StatusPartialContent)
		_, _ = w.Write(data)
		return
	}
	// Suggestion-1 extension: multiple ranges in one request.
	parts, err := s.store.GetRanges(bucket, key, ranges)
	if err != nil {
		storeError(w, err)
		return
	}
	resp := multiRangeResponse{Parts: make([]string, len(parts))}
	for i, p := range parts {
		resp.Parts[i] = base64.StdEncoding.EncodeToString(p)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusPartialContent)
	_ = json.NewEncoder(w).Encode(&resp)
}

func (s *Server) sel(w http.ResponseWriter, r *http.Request, bucket, key string) {
	var body SelectBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		httpError(w, err.Error(), http.StatusBadRequest, s3api.KindBadRequest)
		return
	}
	data, err := s.store.Get(bucket, key)
	if err != nil {
		storeError(w, err)
		return
	}
	// The server enforces its own capability set: requests may use at most
	// the extensions the server was started with.
	res, err := selectengine.Execute(data, selectengine.Request{
		SQL:          body.SQL,
		HasHeader:    body.HasHeader,
		Capabilities: body.Capabilities.Intersect(s.caps),
		ScanRange:    body.ScanRange,
	})
	if err != nil {
		kind := s3api.KindBadRequest
		if errors.Is(err, selectengine.ErrUnsupported) {
			kind = s3api.KindUnsupported
		}
		httpError(w, err.Error(), http.StatusBadRequest, kind)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&SelectResponse{Columns: res.Columns, Rows: res.Rows, Stats: res.Stats})
}

// Client is the HTTP implementation of s3api.Backend. It is
// self-describing by asking the server: the first Capabilities or Profile
// call fetches GET /?describe and caches the answer (falling back to zero
// capabilities and cloudsim.S3Profile when the endpoint is unavailable).
type Client struct {
	base string
	hc   *http.Client

	mu        sync.Mutex
	described bool
	caps      selectengine.Capabilities
	profile   cloudsim.Profile
}

// NewClient returns a client for an s3http server at base (e.g.
// "http://127.0.0.1:9000").
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

func (c *Client) url(bucket, key string) string {
	if key == "" {
		return c.base + "/" + bucket
	}
	return c.base + "/" + bucket + "/" + key
}

// kindFromResponse recovers the error kind: the wire header when present,
// else a status-code guess.
func kindFromResponse(resp *http.Response) s3api.Kind {
	if k := resp.Header.Get(errorKindHeader); k != "" {
		return s3api.Kind(k)
	}
	switch resp.StatusCode {
	case http.StatusNotFound:
		return s3api.KindNotFound
	case http.StatusRequestedRangeNotSatisfiable:
		return s3api.KindInvalidRange
	case http.StatusBadRequest:
		return s3api.KindBadRequest
	default:
		return s3api.KindInternal
	}
}

// do runs the request and returns the body, folding failures into
// structured *s3api.Error values.
func (c *Client) do(req *http.Request, op, bucket, key string, wantStatus ...int) ([]byte, error) {
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, s3api.NewError(op, bucket, key, s3api.KindInternal, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, s3api.NewError(op, bucket, key, s3api.KindInternal, err)
	}
	for _, s := range wantStatus {
		if resp.StatusCode == s {
			return body, nil
		}
	}
	return nil, s3api.NewError(op, bucket, key, kindFromResponse(resp),
		fmt.Errorf("s3http: %s %s: %s: %s", req.Method, req.URL, resp.Status, strings.TrimSpace(string(body))))
}

// Put stores an object (s3api.Putter).
func (c *Client) Put(ctx context.Context, bucket, key string, data []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.url(bucket, key), bytes.NewReader(data))
	if err != nil {
		return s3api.NewError("put", bucket, key, s3api.KindBadRequest, err)
	}
	_, err = c.do(req, "put", bucket, key, http.StatusOK)
	return err
}

// Get implements s3api.Backend.
func (c *Client) Get(ctx context.Context, bucket, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(bucket, key), nil)
	if err != nil {
		return nil, s3api.NewError("get", bucket, key, s3api.KindBadRequest, err)
	}
	return c.do(req, "get", bucket, key, http.StatusOK)
}

// checkRange rejects ranges the HTTP Range header cannot even express
// (negative offsets, inverted bounds) before they hit the wire, with the
// same error kind the server would use.
func checkRange(op, bucket, key string, first, last int64) error {
	if first < 0 || last < first {
		return s3api.NewError(op, bucket, key, s3api.KindInvalidRange,
			fmt.Errorf("s3http: range [%d,%d] for %s/%s: %w", first, last, bucket, key, store.ErrInvalidRange))
	}
	return nil
}

// GetRange implements s3api.Backend.
func (c *Client) GetRange(ctx context.Context, bucket, key string, first, last int64) ([]byte, error) {
	if err := checkRange("get_range", bucket, key, first, last); err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(bucket, key), nil)
	if err != nil {
		return nil, s3api.NewError("get_range", bucket, key, s3api.KindBadRequest, err)
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", first, last))
	return c.do(req, "get_range", bucket, key, http.StatusPartialContent)
}

// GetRanges implements s3api.Backend (Suggestion-1 extension).
func (c *Client) GetRanges(ctx context.Context, bucket, key string, ranges [][2]int64) ([][]byte, error) {
	if len(ranges) == 0 {
		// No Range header to send; a HEAD keeps the contract that a
		// missing object is KindNotFound even for an empty request.
		if _, err := c.Size(ctx, bucket, key); err != nil {
			kind := s3api.KindOf(err)
			if kind == "" {
				kind = s3api.KindInternal
			}
			return nil, s3api.NewError("get_ranges", bucket, key, kind, err)
		}
		return [][]byte{}, nil
	}
	for _, r := range ranges {
		if err := checkRange("get_ranges", bucket, key, r[0], r[1]); err != nil {
			return nil, err
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(bucket, key), nil)
	if err != nil {
		return nil, s3api.NewError("get_ranges", bucket, key, s3api.KindBadRequest, err)
	}
	var sb strings.Builder
	sb.WriteString("bytes=")
	for i, r := range ranges {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d-%d", r[0], r[1])
	}
	req.Header.Set("Range", sb.String())
	body, err := c.do(req, "get_ranges", bucket, key, http.StatusPartialContent)
	if err != nil {
		return nil, err
	}
	if len(ranges) == 1 {
		return [][]byte{body}, nil
	}
	var resp multiRangeResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, s3api.NewError("get_ranges", bucket, key, s3api.KindInternal,
			fmt.Errorf("s3http: decoding multi-range response: %w", err))
	}
	out := make([][]byte, len(resp.Parts))
	for i, p := range resp.Parts {
		out[i], err = base64.StdEncoding.DecodeString(p)
		if err != nil {
			return nil, s3api.NewError("get_ranges", bucket, key, s3api.KindInternal, err)
		}
	}
	return out, nil
}

// Select implements s3api.Backend.
func (c *Client) Select(ctx context.Context, bucket, key string, sreq selectengine.Request) (*selectengine.Result, error) {
	body, err := json.Marshal(&SelectBody{
		SQL:          sreq.SQL,
		HasHeader:    sreq.HasHeader,
		Capabilities: sreq.Capabilities,
		ScanRange:    sreq.ScanRange,
	})
	if err != nil {
		return nil, s3api.NewError("select", bucket, key, s3api.KindBadRequest, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url(bucket, key)+"?select", bytes.NewReader(body))
	if err != nil {
		return nil, s3api.NewError("select", bucket, key, s3api.KindBadRequest, err)
	}
	req.Header.Set("Content-Type", "application/json")
	respBody, err := c.do(req, "select", bucket, key, http.StatusOK)
	if err != nil {
		return nil, err
	}
	var resp SelectResponse
	if err := json.Unmarshal(respBody, &resp); err != nil {
		return nil, s3api.NewError("select", bucket, key, s3api.KindInternal, err)
	}
	return &selectengine.Result{Columns: resp.Columns, Rows: resp.Rows, Stats: resp.Stats}, nil
}

// List implements s3api.Backend.
func (c *Client) List(ctx context.Context, bucket, prefix string) ([]string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(bucket, "")+"?list&prefix="+prefix, nil)
	if err != nil {
		return nil, s3api.NewError("list", bucket, prefix, s3api.KindBadRequest, err)
	}
	body, err := c.do(req, "list", bucket, prefix, http.StatusOK)
	if err != nil {
		return nil, err
	}
	var keys []string
	if err := json.Unmarshal(body, &keys); err != nil {
		return nil, s3api.NewError("list", bucket, prefix, s3api.KindInternal, err)
	}
	return keys, nil
}

// Size implements s3api.Backend.
func (c *Client) Size(ctx context.Context, bucket, key string) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, c.url(bucket, key), nil)
	if err != nil {
		return 0, s3api.NewError("size", bucket, key, s3api.KindBadRequest, err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, s3api.NewError("size", bucket, key, s3api.KindInternal, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, s3api.NewError("size", bucket, key, kindFromResponse(resp),
			fmt.Errorf("s3http: HEAD %s/%s: %s", bucket, key, resp.Status))
	}
	n, err := strconv.ParseInt(resp.Header.Get("Content-Length"), 10, 64)
	if err != nil {
		return 0, s3api.NewError("size", bucket, key, s3api.KindInternal, err)
	}
	return n, nil
}

// describeTimeout bounds the self-description probe so a hung server
// cannot stall Capabilities/Profile (which have no context parameter).
const describeTimeout = 5 * time.Second

// describeOnce fetches the server's self-description, caching the result.
// Only a *successful* fetch (including a non-200 "endpoint absent"
// answer) is cached: a transport failure — server restarting, connection
// refused — leaves described unset so the next call retries instead of
// pinning zero capabilities for the life of the process.
func (c *Client) describeOnce() (selectengine.Capabilities, cloudsim.Profile) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.described {
		return c.caps, c.profile
	}
	fallback := cloudsim.S3Profile()
	// Capabilities()/Profile() are context-free interface methods, so the
	// lazy describe probe has no caller context to thread; the short local
	// timeout bounds it instead.
	//lint:ignore ctxflow no caller context exists beneath the context-free Capabilities/Profile interface methods
	ctx, cancel := context.WithTimeout(context.Background(), describeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/?describe", nil)
	if err != nil {
		return selectengine.Capabilities{}, fallback
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// Transport failure: answer with defaults but retry next time.
		return selectengine.Capabilities{}, fallback
	}
	defer resp.Body.Close()
	c.described = true
	c.profile = fallback
	if resp.StatusCode != http.StatusOK {
		return c.caps, c.profile // server without the endpoint
	}
	var d DescribeResponse
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return c.caps, c.profile
	}
	c.caps = d.Capabilities
	if d.Profile.Defined() {
		c.profile = d.Profile
	}
	return c.caps, c.profile
}

// Capabilities implements s3api.Backend, asking the server.
func (c *Client) Capabilities() selectengine.Capabilities {
	caps, _ := c.describeOnce()
	return caps
}

// Profile implements s3api.Backend, asking the server.
func (c *Client) Profile() s3api.Profile {
	_, profile := c.describeOnce()
	return profile
}
