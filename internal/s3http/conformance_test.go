package s3http_test

import (
	"net/http/httptest"
	"testing"

	"pushdowndb/internal/s3api/conformancetest"
	"pushdowndb/internal/s3http"
	"pushdowndb/internal/store"
)

func TestHTTPClientConformance(t *testing.T) {
	conformancetest.Run(t, func(t *testing.T) conformancetest.Env {
		st := store.New()
		srv := httptest.NewServer(s3http.NewServer(st))
		t.Cleanup(srv.Close)
		return conformancetest.Env{
			Backend: s3http.NewClient(srv.URL, srv.Client()),
			Put:     func(bucket, key string, data []byte) { st.Put(bucket, key, data) },
		}
	})
}
