package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// The daemon observability surface: /metrics scrapes parse as Prometheus
// text exposition, /debug/trace serves a completed request's span tree in
// both JSON and Chrome tracing form, request ids round-trip (or are
// generated) on every reply, and the slow-query log lands full span trees
// in the audit stream.

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// parsePromText is a strict parser for the subset of the Prometheus text
// format the server emits: every non-comment line must be
// `name{labels} value` or `name value` with a float value, and every
// series must be preceded by its # HELP and # TYPE headers.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	series := map[string]float64{}
	typed := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# ") {
			parts := strings.Fields(line)
			if len(parts) < 4 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Fatalf("bad comment line %q", line)
			}
			if parts[1] == "TYPE" {
				typed[parts[2]] = true
			}
			continue
		}
		// name{l="v",...} value  |  name value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("bad sample line %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(valStr, 64); err != nil && valStr != "+Inf" && valStr != "NaN" {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		v, _ := strconv.ParseFloat(valStr, 64)
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("unbalanced labels in %q", line)
			}
			name = key[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Fatalf("series %q has no # TYPE header", name)
		}
		if _, dup := series[key]; dup {
			t.Fatalf("duplicate series %q", key)
		}
		series[key] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return series
}

func TestMetricsEndpoint(t *testing.T) {
	f := newFixture(t, "inproc", Config{})
	c := NewClient(f.base)
	for _, q := range testQueries {
		if _, err := c.Query(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	// One guaranteed rejection for the rejections counter.
	if _, err := c.Query(context.Background(), "SELECT FROM nothing"); err == nil {
		t.Fatal("want parse rejection")
	}

	resp, body := get(t, f.base+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	series := parsePromText(t, string(body))

	if got := series[`pushdownd_queries_total{tenant="default",kind="select",status="ok"}`]; got < 1 {
		t.Errorf("select queries_total = %v, want >= 1\n%s", got, body)
	}
	if got := series[`pushdownd_queries_total{tenant="default",kind="join",status="ok"}`]; got != 1 {
		t.Errorf("join queries_total = %v, want 1", got)
	}
	if got := series[`pushdownd_rejections_total{kind="bad_request"}`]; got != 1 {
		t.Errorf("rejections_total = %v, want 1", got)
	}
	if got := series["pushdownd_max_clients"]; got != 32 {
		t.Errorf("max_clients gauge = %v, want 32 (the default)", got)
	}
	if got := series["pushdownd_queue_capacity"]; got != 128 {
		t.Errorf("queue_capacity gauge = %v, want 128", got)
	}
	if got := series[`pushdownd_query_wall_seconds_count{status="ok"}`]; got != float64(len(testQueries)) {
		t.Errorf("wall histogram count = %v, want %d", got, len(testQueries))
	}
	if got := series["pushdownd_query_sim_seconds_count"]; got != float64(len(testQueries)) {
		t.Errorf("sim histogram count = %v, want %d", got, len(testQueries))
	}
	if got := series[`pushdownd_join_steps_total{strategy="baseline"}`] +
		series[`pushdownd_join_steps_total{strategy="bloom"}`] +
		series[`pushdownd_join_steps_total{strategy="filtered"}`]; got != 1 {
		t.Errorf("join_steps_total sum = %v, want 1", got)
	}
	// Per-phase histogram uses normalized kinds, never raw table names.
	sawPhase := false
	for key := range series {
		if !strings.HasPrefix(key, "pushdownd_phase_sim_seconds_count") {
			continue
		}
		sawPhase = true
		if strings.Contains(key, "orders") || strings.Contains(key, "customers") {
			t.Errorf("phase label leaked a table name: %s", key)
		}
	}
	if !sawPhase {
		t.Error("no per-phase histogram series")
	}
	// Scrapes are deterministic given no traffic in between.
	_, body2 := get(t, f.base+"/metrics")
	// Uptime moves between scrapes; drop it before comparing.
	strip := func(b []byte) string {
		var keep []string
		for _, l := range strings.Split(string(b), "\n") {
			if !strings.Contains(l, "pushdownd_uptime_seconds") {
				keep = append(keep, l)
			}
		}
		return strings.Join(keep, "\n")
	}
	if strip(body) != strip(body2) {
		t.Error("idle scrapes differ")
	}
}

func TestRequestIDHeaderAndTrace(t *testing.T) {
	f := newFixture(t, "inproc", Config{})
	c := NewClient(f.base)

	// Server-generated id: present in the response body and header.
	res, err := c.Query(context.Background(), testQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestID == "" {
		t.Fatal("no generated request id")
	}

	// Client-chosen id round-trips.
	res2, err := c.QueryID(context.Background(), testQueries[3], "my-join-7")
	if err != nil {
		t.Fatal(err)
	}
	if res2.RequestID != "my-join-7" {
		t.Fatalf("request id = %q, want my-join-7", res2.RequestID)
	}

	// The header rides even on rejections.
	resp, err := http.Post(f.base+"/query", "application/json",
		strings.NewReader(`{"sql":"","request_id":"rej-1"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "rej-1" {
		t.Errorf("rejection header id = %q, want rej-1", got)
	}

	// The retained trace is fetchable by id and shaped like the query.
	d, err := c.Trace(context.Background(), "my-join-7")
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != "my-join-7" || d.Root == nil || d.Root.Name != "query" {
		t.Fatalf("trace = %+v", d)
	}
	if d.Find("select") == nil {
		t.Error("trace has no statement span")
	}
	if d.Find("join 1") == nil {
		t.Error("trace of a join has no join span")
	}
	sel := d.Root.Children[0]
	if rows, ok := sel.Int("rows"); !ok || rows != int64(len(res2.Relation.Rows)) {
		t.Errorf("trace rows attr = %d (ok=%v), want %d", rows, ok, len(res2.Relation.Rows))
	}

	// Unknown ids 404; the trace index lists retained ids oldest-first.
	resp404, _ := get(t, f.base+"/debug/trace/nope")
	if resp404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace = %d, want 404", resp404.StatusCode)
	}
	_, idsBody := get(t, f.base+"/debug/trace/")
	var ids []string
	if err := json.Unmarshal(idsBody, &ids); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[1] != "my-join-7" {
		t.Errorf("trace index = %v", ids)
	}

	// Chrome tracing format: a JSON array of complete ("X") events.
	_, chromeBody := get(t, f.base+"/debug/trace/my-join-7?format=chrome")
	var events []map[string]any
	if err := json.Unmarshal(chromeBody, &events); err != nil {
		t.Fatalf("chrome trace: %v", err)
	}
	if len(events) < 3 {
		t.Fatalf("chrome trace has %d events", len(events))
	}
	for _, ev := range events {
		if ev["ph"] != "X" || ev["name"] == "" {
			t.Fatalf("bad chrome event %v", ev)
		}
	}
}

func TestSlowQueryLog(t *testing.T) {
	// Threshold of one nanosecond: everything is slow.
	f := newFixture(t, "inproc", Config{SlowQuery: time.Nanosecond})
	c := NewClient(f.base)
	if _, err := c.QueryID(context.Background(), testQueries[1], "slow-1"); err != nil {
		t.Fatal(err)
	}
	var found bool
	sc := bufio.NewScanner(strings.NewReader(f.audit.String()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e auditEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad audit line %q: %v", sc.Text(), err)
		}
		if e.Status != "slow" {
			continue
		}
		found = true
		if e.ID != "slow-1" || e.WallSec <= 0 {
			t.Errorf("slow entry = %+v", e)
		}
		var d struct {
			ID   string `json:"id"`
			Root *struct {
				Name string `json:"name"`
			} `json:"root"`
		}
		if err := json.Unmarshal(e.Trace, &d); err != nil {
			t.Fatalf("slow entry trace does not parse: %v", err)
		}
		if d.ID != "slow-1" || d.Root == nil || d.Root.Name != "query" {
			t.Errorf("slow entry trace = %+v", d)
		}
	}
	if !found {
		t.Fatalf("no slow entry in audit log:\n%s", f.audit.String())
	}
}

func TestTraceRetentionEviction(t *testing.T) {
	f := newFixture(t, "inproc", Config{TraceRetain: 2})
	c := NewClient(f.base)
	for i := 0; i < 4; i++ {
		if _, err := c.QueryID(context.Background(), testQueries[0], fmt.Sprintf("r-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	_, idsBody := get(t, f.base+"/debug/trace/")
	var ids []string
	if err := json.Unmarshal(idsBody, &ids); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "r-2" || ids[1] != "r-3" {
		t.Errorf("retained ids = %v, want [r-2 r-3]", ids)
	}
}

func TestTracingDisabled(t *testing.T) {
	f := newFixture(t, "inproc", Config{TraceRetain: -1})
	c := NewClient(f.base)
	res, err := c.QueryID(context.Background(), testQueries[0], "off-1")
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestID != "off-1" {
		t.Errorf("request id still rides: got %q", res.RequestID)
	}
	if _, err := c.Trace(context.Background(), "off-1"); err == nil {
		t.Error("trace retained despite TraceRetain < 0")
	}
}

func TestPprofGated(t *testing.T) {
	off := newFixture(t, "inproc", Config{})
	resp, _ := get(t, off.base+"/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status = %d, want 404", resp.StatusCode)
	}
	on := newFixture(t, "inproc", Config{EnablePprof: true})
	resp, body := get(t, on.base+"/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Errorf("pprof on: status = %d, body %d bytes", resp.StatusCode, len(body))
	}
}

func TestStatsAdmissionCapacity(t *testing.T) {
	f := newFixture(t, "inproc", Config{MaxClients: 3, QueueDepth: 5})
	st, err := NewClient(f.base).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxClients != 3 || st.QueueCapacity != 5 {
		t.Errorf("capacity = %d/%d, want 3/5", st.MaxClients, st.QueueCapacity)
	}
}

// TestObsConcurrent hammers the whole observability surface from many
// goroutines — queries with client ids, /metrics scrapes and trace fetches
// racing each other. Run under -race in CI; assertions check that every
// retained trace is internally consistent (own id, one statement span).
func TestObsConcurrent(t *testing.T) {
	f := newFixture(t, "inproc", Config{SlowQuery: time.Nanosecond})
	c := NewClient(f.base)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("c-%d", i)
			res, err := c.QueryID(context.Background(), testQueries[i%len(testQueries)], id)
			if err != nil {
				t.Error(err)
				return
			}
			d, err := c.Trace(context.Background(), id)
			if err != nil {
				t.Errorf("trace %s: %v", id, err)
				return
			}
			if d.ID != id {
				t.Errorf("trace id = %q, want %q", d.ID, id)
			}
			if n := len(d.Root.Children); n != 1 {
				t.Errorf("trace %s: %d statement spans, want 1", id, n)
				return
			}
			if rows, ok := d.Root.Children[0].Int("rows"); !ok || rows != int64(len(res.Relation.Rows)) {
				t.Errorf("trace %s: rows attr = %d (ok=%v), want %d", id, rows, ok, len(res.Relation.Rows))
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := get(t, f.base+"/metrics")
			if resp.StatusCode != http.StatusOK {
				t.Errorf("scrape = %d", resp.StatusCode)
			}
			parsePromText(t, string(body))
		}()
	}
	wg.Wait()
}
