package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestStalledBackendCutByRequestTimeout is the fault-injection check the
// server layer exists for: a storage backend that stalls indefinitely
// must not hang the client — the per-request deadline cancels the
// engine's fan-out mid-flight and the client sees a structured timeout,
// promptly.
func TestStalledBackendCutByRequestTimeout(t *testing.T) {
	fx := newFixture(t, "inproc", Config{RequestTimeout: 150 * time.Millisecond})
	fx.fault.StallFor(30 * time.Second)
	fx.fault.OnOps("select")

	cl := NewClient(fx.base)
	start := time.Now()
	_, err := cl.Query(context.Background(), testQueries[0])
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("stalled query should fail")
	}
	var se *Error
	if !errors.As(err, &se) || se.Kind != KindTimeout {
		t.Fatalf("want structured KindTimeout, got %v (kind %q)", err, KindOf(err))
	}
	if elapsed > 10*time.Second {
		t.Fatalf("timeout did not cut the stall: client waited %v", elapsed)
	}

	// The failed attempt was billed for whatever it accrued and counted.
	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ten := st.Tenants["default"]; ten.Errors != 1 {
		t.Errorf("timed-out query not billed as an error: %+v", ten)
	}

	// Disarm the fault: the same query now succeeds on the same server.
	fx.fault.Reset()
	if _, err := cl.Query(context.Background(), testQueries[0]); err != nil {
		t.Fatalf("query after fault cleared: %v", err)
	}
}

// TestStalledGetAlsoCut covers the GET-based paths (baseline loads) —
// the deadline applies to every backend call, not just Select.
func TestStalledGetAlsoCut(t *testing.T) {
	fx := newFixture(t, "inproc", Config{RequestTimeout: 150 * time.Millisecond})
	fx.fault.StallFor(30 * time.Second)
	fx.fault.OnOps("get", "get_range", "get_ranges", "select", "list")

	start := time.Now()
	_, err := NewClient(fx.base).Query(context.Background(), testQueries[0])
	if KindOf(err) != KindTimeout {
		t.Fatalf("want timeout, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("client waited %v", elapsed)
	}
}

// TestFailingBackendSurfacesInternal pins the non-timeout failure path:
// a hard backend error maps to KindInternal, and recovery is immediate
// once the fault clears.
func TestFailingBackendSurfacesInternal(t *testing.T) {
	fx := newFixture(t, "inproc", Config{})
	fx.fault.FailWith(errors.New("injected: storage down"))
	fx.fault.OnOps("select")

	_, err := NewClient(fx.base).Query(context.Background(), testQueries[0])
	if KindOf(err) != KindInternal {
		t.Fatalf("want internal, got %v", err)
	}
	fx.fault.Reset()
	if _, err := NewClient(fx.base).Query(context.Background(), testQueries[0]); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
}
