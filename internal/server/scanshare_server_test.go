package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"pushdowndb/internal/engine"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/scanshare"
	"pushdowndb/internal/store"
)

// TestTenantRateLimit exercises the rolling-window rate gate: a burst past
// the limit is rejected with KindRateLimited (HTTP 429), other tenants are
// unaffected, and once the window rolls past the tenant is admitted again.
func TestTenantRateLimit(t *testing.T) {
	fx := newFixture(t, "inproc", Config{
		TenantRateLimit:  3,
		TenantRateWindow: 300 * time.Millisecond,
	})
	ctx := context.Background()
	cl := NewClient(fx.base)
	cl.Tenant = "bursty"

	const q = "SELECT COUNT(*) AS n FROM customers"
	var ok, limited int
	for i := 0; i < 6; i++ {
		_, err := cl.Query(ctx, q)
		switch {
		case err == nil:
			ok++
		case KindOf(err) == KindRateLimited:
			limited++
		default:
			t.Fatalf("query %d: unexpected error %v", i, err)
		}
	}
	if ok != 3 || limited != 3 {
		t.Fatalf("burst of 6 with limit 3: %d ok, %d rate-limited", ok, limited)
	}

	// The wire carries the kind as a 429 with the structured body intact.
	body, err := json.Marshal(queryRequest{SQL: q, Tenant: "bursty"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(fx.base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate-limited status = %d, want 429", resp.StatusCode)
	}

	// Another tenant's window is its own.
	other := NewClient(fx.base)
	other.Tenant = "calm"
	if _, err := other.Query(ctx, q); err != nil {
		t.Fatalf("other tenant caught in bursty's limit: %v", err)
	}

	// After the window rolls past, the bursty tenant is welcome again.
	time.Sleep(350 * time.Millisecond)
	if _, err := cl.Query(ctx, q); err != nil {
		t.Fatalf("post-window query still limited: %v", err)
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// 3 from the burst + 1 from the raw 429 probe above.
	if got := st.Rejected[KindRateLimited]; got != 4 {
		t.Fatalf("stats rejected[rate_limited] = %d, want 4", got)
	}
}

// TestStatsReportScanShare runs concurrent identical queries through a
// server whose DB shares scans and checks that GET /stats exposes the
// coordinator's counters, while a server without sharing omits the block.
func TestStatsReportScanShare(t *testing.T) {
	bucket, tables := testTables()
	st := store.New()
	for name, tb := range tables {
		if err := engine.PartitionTable(context.Background(), st, bucket, name, tb.header, tb.rows, 4); err != nil {
			t.Fatal(err)
		}
	}
	counting := s3api.NewCounting(s3api.NewInProc(st))
	db, err := engine.Open(bucket,
		engine.WithBackend("primary", counting),
		engine.WithScanSharing(scanshare.Config{Window: 300 * time.Millisecond}),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
			t.Errorf("serve: %v", err)
		}
	}()
	cl := NewClient("http://" + l.Addr().String())

	const clients = 4
	const q = "SELECT o_id, o_price FROM orders WHERE o_price > 500"
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, clients)
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			_, errs[i] = cl.Query(ctx, q)
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ss := stats.ScanShare
	if ss == nil {
		t.Fatal("stats omit scan_share on a sharing server")
	}
	if ss.Coalesced == 0 || ss.SharedPasses == 0 {
		t.Fatalf("no sharing observed across %d identical concurrent queries: %+v", clients, ss)
	}
	if ss.AvgSharersPerPass <= 1 {
		t.Fatalf("avg sharers per pass = %v, want > 1", ss.AvgSharersPerPass)
	}
	if ss.BackendSelects >= ss.Selects {
		t.Fatalf("backend selects %d not below coordinated selects %d", ss.BackendSelects, ss.Selects)
	}

	// The plain fixture's server has no coordinator and must omit the block.
	fx := newFixture(t, "inproc", Config{})
	plain, err := NewClient(fx.base).Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if plain.ScanShare != nil {
		t.Fatalf("plain server reports scan_share: %+v", plain.ScanShare)
	}
}
