// Package server is pushdownd's long-lived query front end: an HTTP/JSON
// server multiplexing concurrent clients over one shared engine.DB, its
// result cache and its cost meter. The production concerns live here, not
// in the engine: connection admission with a bounded wait queue, per-tenant
// concurrency lanes and simulated-dollar quotas billed from the cloudsim
// ledger, per-request deadlines wired into QueryContext cancellation,
// graceful drain on shutdown, and a structured audit log fed by the
// engine's query hook. The Go client in client.go is the same one the
// tests, the harness figure and the CLI use.
package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/engine"
	"pushdowndb/internal/rescache"
	"pushdowndb/internal/scanshare"
	"pushdowndb/internal/value"
)

// ErrorKind classifies a server rejection so clients can branch without
// parsing message strings — the same idea as s3api.Kind one layer up.
type ErrorKind string

const (
	// KindBadRequest: malformed request body, unparsable SQL, or a query
	// against data that does not exist.
	KindBadRequest ErrorKind = "bad_request"
	// KindOverloaded: admission control turned the request away — the wait
	// queue is full or the tenant's concurrency lane is.
	KindOverloaded ErrorKind = "overloaded"
	// KindOverQuota: the tenant spent its simulated-dollar budget.
	KindOverQuota ErrorKind = "over_quota"
	// KindRateLimited: the tenant exceeded its request rate over the
	// rolling window. Distinct from KindOverloaded (a capacity problem) so
	// clients can back off by the window rather than retrying immediately.
	KindRateLimited ErrorKind = "rate_limited"
	// KindTimeout: the per-request deadline cut the query.
	KindTimeout ErrorKind = "timeout"
	// KindCanceled: the client went away mid-query.
	KindCanceled ErrorKind = "canceled"
	// KindShuttingDown: the server is draining and takes no new queries.
	KindShuttingDown ErrorKind = "shutting_down"
	// KindInternal: everything else.
	KindInternal ErrorKind = "internal"
)

// Error is the structured error the server returns and the client
// reconstructs; Kind survives the wire intact.
type Error struct {
	Kind    ErrorKind `json:"kind"`
	Message string    `json:"message"`
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("pushdownd: %s: %s", e.Kind, e.Message) }

// KindOf returns the ErrorKind of err when it is (or wraps) a server
// *Error, and "" otherwise.
func KindOf(err error) ErrorKind {
	var se *Error
	if errors.As(err, &se) {
		return se.Kind
	}
	return ""
}

// httpStatus maps an error kind onto the HTTP status line; the JSON body
// remains the source of truth.
func httpStatus(k ErrorKind) int {
	switch k {
	case KindBadRequest:
		return http.StatusBadRequest
	case KindOverQuota, KindOverloaded, KindRateLimited:
		return http.StatusTooManyRequests
	case KindShuttingDown:
		return http.StatusServiceUnavailable
	case KindTimeout:
		return http.StatusGatewayTimeout
	case KindCanceled:
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError
	}
}

// Cell is the wire form of one engine value: a kind tag and a string
// payload chosen so decoding reproduces the exact value.Value (floats ride
// as round-tripping 'g' format, dates as epoch days).
type Cell struct {
	K string `json:"k,omitempty"` // "" null, "b" bool, "i" int, "f" float, "s" string, "d" date
	V string `json:"v,omitempty"`
}

func encodeCell(v value.Value) Cell {
	switch v.Kind() {
	case value.KindBool:
		if v.AsBool() {
			return Cell{K: "b", V: "t"}
		}
		return Cell{K: "b", V: "f"}
	case value.KindInt:
		return Cell{K: "i", V: strconv.FormatInt(v.AsInt(), 10)}
	case value.KindFloat:
		return Cell{K: "f", V: strconv.FormatFloat(v.AsFloat(), 'g', -1, 64)}
	case value.KindString:
		return Cell{K: "s", V: v.AsString()}
	case value.KindDate:
		return Cell{K: "d", V: strconv.FormatInt(v.Days(), 10)}
	default:
		return Cell{}
	}
}

func decodeCell(c Cell) (value.Value, error) {
	switch c.K {
	case "":
		return value.Null(), nil
	case "b":
		return value.Bool(c.V == "t"), nil
	case "i":
		i, err := strconv.ParseInt(c.V, 10, 64)
		if err != nil {
			return value.Null(), fmt.Errorf("server: bad int cell %q: %w", c.V, err)
		}
		return value.Int(i), nil
	case "f":
		f, err := strconv.ParseFloat(c.V, 64)
		if err != nil {
			return value.Null(), fmt.Errorf("server: bad float cell %q: %w", c.V, err)
		}
		return value.Float(f), nil
	case "s":
		return value.Str(c.V), nil
	case "d":
		d, err := strconv.ParseInt(c.V, 10, 64)
		if err != nil {
			return value.Null(), fmt.Errorf("server: bad date cell %q: %w", c.V, err)
		}
		return value.Date(d), nil
	default:
		return value.Null(), fmt.Errorf("server: unknown cell kind %q", c.K)
	}
}

func encodeRelation(rel *engine.Relation) ([]string, [][]Cell) {
	if rel == nil {
		return []string{}, [][]Cell{}
	}
	rows := make([][]Cell, len(rel.Rows))
	for i, row := range rel.Rows {
		cells := make([]Cell, len(row))
		for j, v := range row {
			cells[j] = encodeCell(v)
		}
		rows[i] = cells
	}
	cols := rel.Cols
	if cols == nil {
		cols = []string{}
	}
	return cols, rows
}

func decodeRelation(cols []string, rows [][]Cell) (*engine.Relation, error) {
	rel := &engine.Relation{Cols: cols, Rows: make([]engine.Row, len(rows))}
	for i, cells := range rows {
		row := make(engine.Row, len(cells))
		for j, c := range cells {
			v, err := decodeCell(c)
			if err != nil {
				return nil, err
			}
			row[j] = v
		}
		rel.Rows[i] = row
	}
	return rel, nil
}

// queryRequest is the POST /query body.
type queryRequest struct {
	SQL string `json:"sql"`
	// Tenant attributes the query for concurrency lanes, quotas and the
	// audit log; empty means the server's default tenant.
	Tenant string `json:"tenant,omitempty"`
	// RequestID correlates this query across the response, the audit log
	// and GET /debug/trace; the server generates one when omitted.
	RequestID string `json:"request_id,omitempty"`
}

// queryResponse is the success body of POST /query.
type queryResponse struct {
	Columns    []string               `json:"columns"`
	Rows       [][]Cell               `json:"rows"`
	RuntimeSec float64                `json:"runtime_sec"`
	Cost       cloudsim.CostBreakdown `json:"cost"`
	Requests   int64                  `json:"requests"`
	CacheHits  int64                  `json:"cache_hits"`
	Tenant     string                 `json:"tenant"`
	RequestID  string                 `json:"request_id"`
}

// errorResponse is the body of every non-2xx reply.
type errorResponse struct {
	Err Error `json:"error"`
}

// TenantStats is one tenant's slice of GET /stats.
type TenantStats struct {
	Queries    int64                  `json:"queries"`
	Errors     int64                  `json:"errors"`
	RuntimeSec float64                `json:"runtime_sec"`
	Cost       cloudsim.CostBreakdown `json:"cost"`
	TotalUSD   float64                `json:"total_usd"`
	BudgetUSD  float64                `json:"budget_usd"` // 0 = unlimited
	InFlight   int64                  `json:"in_flight"`
}

// CacheStats is the shared result cache's slice of GET /stats.
type CacheStats struct {
	rescache.Stats
	HitRate float64 `json:"hit_rate"`
}

// ShareStats is the scan-sharing coordinator's slice of GET /stats:
// how many Selects were coalesced into shared passes, how many sharers a
// shared pass carries on average, and the scan bytes those passes saved.
type ShareStats struct {
	scanshare.Stats
	AvgSharersPerPass float64 `json:"avg_sharers_per_pass"`
}

// Stats is the GET /stats body: what the shared process knows about
// itself — admission counters, per-tenant bills, and the result cache all
// tenants share.
type Stats struct {
	UptimeSec float64 `json:"uptime_sec"`
	InFlight  int64   `json:"in_flight"`
	Queued    int64   `json:"queued"`
	// MaxClients and QueueCapacity are the admission limits the InFlight
	// and Queued readings run against: InFlight saturates at MaxClients,
	// and arrivals past QueueCapacity queued are rejected.
	MaxClients    int64                  `json:"max_clients"`
	QueueCapacity int64                  `json:"queue_capacity"`
	Accepted      int64                  `json:"accepted"`
	Rejected      map[ErrorKind]int64    `json:"rejected"`
	Tenants       map[string]TenantStats `json:"tenants"`
	Cache         *CacheStats            `json:"cache,omitempty"`
	ScanShare     *ShareStats            `json:"scan_share,omitempty"`
	Draining      bool                   `json:"draining"`
}

// healthResponse is the GET /healthz body.
type healthResponse struct {
	Status   string `json:"status"` // "ok" or "draining"
	InFlight int64  `json:"in_flight"`
}
