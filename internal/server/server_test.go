package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pushdowndb/internal/engine"
	"pushdowndb/internal/localfs"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/store"
)

// testTables builds the deterministic two-table dataset every server test
// queries: 200 orders across 40 customers, partitioned 4 ways.
func testTables() (bucket string, tables map[string]struct {
	header []string
	rows   [][]string
}) {
	orders := make([][]string, 0, 200)
	for i := 0; i < 200; i++ {
		orders = append(orders, []string{
			fmt.Sprint(i + 1),              // o_id
			fmt.Sprint(i%40 + 1),           // o_cust
			fmt.Sprint((i*37 + 13) % 1000), // o_price
			fmt.Sprint(i%7 + 1),            // o_qty
		})
	}
	customers := make([][]string, 0, 40)
	for i := 0; i < 40; i++ {
		customers = append(customers, []string{
			fmt.Sprint(i + 1),           // c_id
			fmt.Sprintf("cust-%03d", i), // c_name
			fmt.Sprint((i * 71) % 500),  // c_balance
		})
	}
	return "shop", map[string]struct {
		header []string
		rows   [][]string
	}{
		"orders":    {header: []string{"o_id", "o_cust", "o_price", "o_qty"}, rows: orders},
		"customers": {header: []string{"c_id", "c_name", "c_balance"}, rows: customers},
	}
}

// testQueries is the corpus every battery round runs: pushed single-table
// scans, grouped aggregation, a join, and a whole-table aggregate.
var testQueries = []string{
	"SELECT o_id, o_price FROM orders WHERE o_price > 500 ORDER BY o_id",
	"SELECT o_cust, COUNT(*) AS n, SUM(o_price) AS total FROM orders GROUP BY o_cust ORDER BY o_cust",
	"SELECT COUNT(*) AS n, SUM(o_qty) AS q FROM orders",
	"SELECT c_name, o_price FROM customers c JOIN orders o ON c.c_id = o.o_cust " +
		"WHERE c_balance < 300 ORDER BY o_price, c_name LIMIT 10",
}

// fixture is one running server plus a direct DB over the same bytes.
type fixture struct {
	base     string // client base URL
	srv      *Server
	db       *engine.DB // the server's shared DB
	direct   *engine.DB // an independent DB over the same objects, no cache
	counting *s3api.Counting
	fault    *s3api.Fault
	audit    *bytes.Buffer
}

// newFixture loads the test tables onto the named backend flavor
// ("inproc" or "localfs"), starts a server over them (result cache on,
// audit log captured, fault wrapper armed-but-idle) and returns the
// running pieces. The server is shut down in t.Cleanup.
func newFixture(t *testing.T, flavor string, cfg Config) *fixture {
	t.Helper()
	bucket, tables := testTables()
	var raw s3api.Backend
	switch flavor {
	case "inproc":
		st := store.New()
		for name, tb := range tables {
			if err := engine.PartitionTable(context.Background(), st, bucket, name, tb.header, tb.rows, 4); err != nil {
				t.Fatal(err)
			}
		}
		raw = s3api.NewInProc(st)
	case "localfs":
		b := localfs.New(t.TempDir())
		for name, tb := range tables {
			if err := engine.PartitionTableTo(context.Background(), b, bucket, name, tb.header, tb.rows, 4); err != nil {
				t.Fatal(err)
			}
		}
		raw = b
	default:
		t.Fatalf("unknown backend flavor %q", flavor)
	}
	counting := s3api.NewCounting(raw)
	fault := s3api.NewFault(counting)
	db, err := engine.Open(bucket,
		engine.WithBackend("primary", fault),
		engine.WithResultCache(64<<20))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := engine.Open(bucket, engine.WithBackend("primary", raw))
	if err != nil {
		t.Fatal(err)
	}
	audit := &bytes.Buffer{}
	if cfg.AuditLog == nil {
		cfg.AuditLog = &syncWriter{w: audit}
	}
	srv := New(db, cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
			t.Errorf("serve: %v", err)
		}
	})
	return &fixture{
		base:     "http://" + l.Addr().String(),
		srv:      srv,
		db:       db,
		direct:   direct,
		counting: counting,
		fault:    fault,
		audit:    audit,
	}
}

// syncWriter serializes audit writes against test reads.
type syncWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// directAnswers runs the corpus on the independent DB and returns the
// rendered relations.
func directAnswers(t *testing.T, db *engine.DB) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, q := range testQueries {
		rel, _, err := db.Query(q)
		if err != nil {
			t.Fatalf("direct %q: %v", q, err)
		}
		out[q] = rel.String()
	}
	return out
}

// TestConcurrentClientsMatchDirect is the battery's core: N concurrent
// clients hammer the shared server (InProc and localfs backends alike)
// and every response must be byte-identical to the same query run
// directly on an independent DB over the same objects. Run under -race
// in CI, this doubles as the data-race check on the shared DB, cache and
// ledger.
func TestConcurrentClientsMatchDirect(t *testing.T) {
	for _, flavor := range []string{"inproc", "localfs"} {
		t.Run(flavor, func(t *testing.T) {
			fx := newFixture(t, flavor, Config{})
			want := directAnswers(t, fx.direct)
			const clients, rounds = 8, 3
			var wg sync.WaitGroup
			errCh := make(chan error, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					cl := NewClient(fx.base)
					cl.Tenant = fmt.Sprintf("tenant-%d", c%3)
					for r := 0; r < rounds; r++ {
						for _, q := range testQueries {
							res, err := cl.Query(context.Background(), q)
							if err != nil {
								errCh <- fmt.Errorf("client %d %q: %w", c, q, err)
								return
							}
							if got := res.Relation.String(); got != want[q] {
								errCh <- fmt.Errorf("client %d %q:\ngot:\n%s\nwant:\n%s", c, q, got, want[q])
								return
							}
						}
					}
				}(c)
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Error(err)
			}
			// The server billed every accepted query to its tenant.
			st, err := NewClient(fx.base).Stats(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			var billed int64
			for _, ten := range st.Tenants {
				billed += ten.Queries
			}
			if want := int64(clients * rounds * len(testQueries)); billed != want {
				t.Errorf("ledger billed %d queries, want %d", billed, want)
			}
			if st.Cache == nil {
				t.Error("stats carry no cache section despite WithResultCache")
			}
		})
	}
}

// TestWarmRoundIssuesZeroSelects pins the payoff of the shared result
// cache: after a cold round fills it, a full repeat of the corpus reaches
// the storage backend with zero Select requests.
func TestWarmRoundIssuesZeroSelects(t *testing.T) {
	fx := newFixture(t, "inproc", Config{})
	cl := NewClient(fx.base)
	for _, q := range testQueries {
		if _, err := cl.Query(context.Background(), q); err != nil {
			t.Fatalf("cold %q: %v", q, err)
		}
	}
	fx.counting.Reset()
	var hits int64
	for _, q := range testQueries {
		res, err := cl.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("warm %q: %v", q, err)
		}
		hits += res.CacheHits
	}
	if n := fx.counting.Selects(); n != 0 {
		t.Errorf("warm round issued %d backend Selects, want 0", n)
	}
	if hits == 0 {
		t.Error("warm round reported zero cache hits")
	}
}

// TestQuotaRejectionCarriesKind spends a tenant's simulated budget and
// asserts the structured over-quota error, while an unrelated tenant
// keeps working.
func TestQuotaRejectionCarriesKind(t *testing.T) {
	fx := newFixture(t, "inproc", Config{TenantBudgetUSD: 1e-12})
	broke := NewClient(fx.base)
	broke.Tenant = "broke"
	// First query is under budget (spent $0) and gets billed.
	if _, err := broke.Query(context.Background(), testQueries[0]); err != nil {
		t.Fatalf("first query should pass: %v", err)
	}
	_, err := broke.Query(context.Background(), testQueries[0])
	if err == nil {
		t.Fatal("second query should be over quota")
	}
	var se *Error
	if !errors.As(err, &se) || se.Kind != KindOverQuota {
		t.Fatalf("want structured KindOverQuota, got %v (kind %q)", err, KindOf(err))
	}
	// Another tenant is unaffected.
	rich := NewClient(fx.base)
	rich.Tenant = "rich"
	if _, err := rich.Query(context.Background(), testQueries[0]); err != nil {
		t.Fatalf("other tenant should pass: %v", err)
	}
	// The rejection shows up in stats.
	st, err := NewClient(fx.base).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected[KindOverQuota] == 0 {
		t.Errorf("stats count no over_quota rejections: %+v", st.Rejected)
	}
	if b := st.Tenants["broke"]; b.TotalUSD <= 0 {
		t.Errorf("broke tenant shows no spend: %+v", b)
	}
}

// TestTenantConcurrencyLane pins the per-tenant admission lane: with a
// lane of 1 and a stalled backend, a tenant's second concurrent query is
// rejected as overloaded while a different tenant still gets in.
func TestTenantConcurrencyLane(t *testing.T) {
	fx := newFixture(t, "inproc", Config{TenantConcurrency: 1, RequestTimeout: 10 * time.Second})
	fx.fault.StallFor(400 * time.Millisecond)
	fx.fault.OnOps("select")

	slow := NewClient(fx.base)
	slow.Tenant = "greedy"
	started := make(chan struct{})
	res := make(chan error, 1)
	go func() {
		close(started)
		_, err := slow.Query(context.Background(), testQueries[0])
		res <- err
	}()
	<-started
	time.Sleep(100 * time.Millisecond) // let the first query occupy the lane
	_, err := slow.Query(context.Background(), testQueries[2])
	if KindOf(err) != KindOverloaded {
		t.Fatalf("second concurrent query in the lane: want overloaded, got %v", err)
	}
	other := NewClient(fx.base)
	other.Tenant = "patient"
	if _, err := other.Query(context.Background(), testQueries[2]); err != nil {
		t.Fatalf("different tenant should be admitted: %v", err)
	}
	if err := <-res; err != nil {
		t.Fatalf("stalled-but-admitted query should finish: %v", err)
	}
}

// TestOverloadedQueueRejects fills the global queue and asserts the
// structured overload rejection.
func TestOverloadedQueueRejects(t *testing.T) {
	fx := newFixture(t, "inproc", Config{MaxClients: 1, QueueDepth: 1, RequestTimeout: 10 * time.Second})
	fx.fault.StallFor(500 * time.Millisecond)
	fx.fault.OnOps("select")

	cl := NewClient(fx.base)
	var wg sync.WaitGroup
	kinds := make(chan ErrorKind, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := cl.Query(context.Background(), testQueries[0])
			if err != nil {
				kinds <- KindOf(err)
			} else {
				kinds <- ""
			}
		}()
		time.Sleep(80 * time.Millisecond) // order arrivals: run, queue, reject
	}
	wg.Wait()
	close(kinds)
	var rejected, succeeded int
	for k := range kinds {
		switch k {
		case "":
			succeeded++
		case KindOverloaded:
			rejected++
		default:
			t.Errorf("unexpected kind %q", k)
		}
	}
	if rejected != 1 || succeeded != 2 {
		t.Errorf("want 2 served + 1 overloaded, got %d served, %d overloaded", succeeded, rejected)
	}
}

// TestGracefulShutdownDrains pins the drain contract: a query in flight
// when Shutdown starts completes with the right answer, and the server
// refuses new work while draining.
func TestGracefulShutdownDrains(t *testing.T) {
	bucket, tables := testTables()
	st := store.New()
	for name, tb := range tables {
		if err := engine.PartitionTable(context.Background(), st, bucket, name, tb.header, tb.rows, 4); err != nil {
			t.Fatal(err)
		}
	}
	raw := s3api.NewInProc(st)
	fault := s3api.NewFault(raw)
	db, err := engine.Open(bucket, engine.WithBackend("primary", fault))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := engine.Open(bucket, engine.WithBackend("primary", raw))
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := direct.Query(testQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, Config{RequestTimeout: 10 * time.Second})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() { _ = srv.Serve(l); close(serveDone) }()
	base := "http://" + l.Addr().String()

	fault.StallFor(500 * time.Millisecond)
	fault.OnOps("select")
	type answer struct {
		res *Result
		err error
	}
	inflight := make(chan answer, 1)
	go func() {
		res, err := NewClient(base).Query(context.Background(), testQueries[0])
		inflight <- answer{res, err}
	}()
	time.Sleep(150 * time.Millisecond) // the query is mid-stall now

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	<-serveDone

	got := <-inflight
	if got.err != nil {
		t.Fatalf("in-flight query dropped during drain: %v", got.err)
	}
	if got.res.Relation.String() != want.String() {
		t.Errorf("drained query answer changed:\ngot:\n%s\nwant:\n%s", got.res.Relation, want)
	}
	// New work is refused after shutdown (the listener is closed).
	if _, err := NewClient(base).Query(context.Background(), testQueries[0]); err == nil {
		t.Error("query after shutdown should fail")
	}
}

// TestBadSQLRejectedBeforeAdmission pins the parse gate and its error
// kind.
func TestBadSQLRejectedBeforeAdmission(t *testing.T) {
	fx := newFixture(t, "inproc", Config{})
	_, err := NewClient(fx.base).Query(context.Background(), "SELEKT everything FROM nowhere")
	if KindOf(err) != KindBadRequest {
		t.Fatalf("want bad_request, got %v", err)
	}
	st, err := NewClient(fx.base).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected[KindBadRequest] == 0 {
		t.Error("bad_request rejection not counted")
	}
	if st.Accepted != 0 {
		t.Errorf("parse failure consumed an admission: accepted=%d", st.Accepted)
	}
}

// TestAuditLogRecordsOutcomes asserts the audit log carries executed and
// rejected statements with tenant attribution.
func TestAuditLogRecordsOutcomes(t *testing.T) {
	fx := newFixture(t, "inproc", Config{TenantBudgetUSD: 1e-12})
	cl := NewClient(fx.base)
	cl.Tenant = "alice"
	if _, err := cl.Query(context.Background(), testQueries[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Query(context.Background(), "NOT SQL AT ALL"); KindOf(err) != KindBadRequest {
		t.Fatalf("want bad_request: %v", err)
	}
	if _, err := cl.Query(context.Background(), testQueries[2]); KindOf(err) != KindOverQuota {
		t.Fatalf("want over_quota: %v", err)
	}
	type line struct {
		Tenant  string  `json:"tenant"`
		SQL     string  `json:"sql"`
		Status  string  `json:"status"`
		CostUSD float64 `json:"cost_usd"`
	}
	var lines []line
	sc := bufio.NewScanner(strings.NewReader(fx.audit.String()))
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad audit line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if len(lines) != 3 {
		t.Fatalf("want 3 audit lines, got %d: %+v", len(lines), lines)
	}
	if lines[0].Status != "ok" || lines[0].Tenant != "alice" || lines[0].CostUSD <= 0 {
		t.Errorf("executed line: %+v", lines[0])
	}
	if lines[1].Status != string(KindBadRequest) {
		t.Errorf("parse-reject line: %+v", lines[1])
	}
	if lines[2].Status != string(KindOverQuota) {
		t.Errorf("quota-reject line: %+v", lines[2])
	}
}

// TestHealthAndStatsEndpoints covers the two GET surfaces.
func TestHealthAndStatsEndpoints(t *testing.T) {
	fx := newFixture(t, "inproc", Config{})
	cl := NewClient(fx.base)
	if err := cl.Health(context.Background()); err != nil {
		t.Fatalf("health: %v", err)
	}
	if _, err := cl.Query(context.Background(), testQueries[0]); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Accepted != 1 || st.InFlight != 0 {
		t.Errorf("counters: %+v", st)
	}
	if _, ok := st.Tenants["default"]; !ok {
		t.Errorf("default tenant missing from stats: %+v", st.Tenants)
	}
}

// TestDDLThroughServer runs CREATE/DROP INDEX through the wire and pins
// the empty-relation response shape.
func TestDDLThroughServer(t *testing.T) {
	fx := newFixture(t, "inproc", Config{})
	cl := NewClient(fx.base)
	res, err := cl.Query(context.Background(), "CREATE INDEX ON orders (o_price)")
	if err != nil {
		t.Fatalf("create index: %v", err)
	}
	if len(res.Relation.Cols) != 0 || len(res.Relation.Rows) != 0 {
		t.Errorf("DDL response should be empty, got %v", res.Relation)
	}
	if _, err := cl.Query(context.Background(), "SELECT o_id FROM orders WHERE o_price > 990 ORDER BY o_id"); err != nil {
		t.Fatalf("indexed query: %v", err)
	}
	if _, err := cl.Query(context.Background(), "DROP INDEX ON orders (o_price)"); err != nil {
		t.Fatalf("drop index: %v", err)
	}
}

// TestUnknownTableIsBadRequest pins the backend-path error-kind
// discipline: a syntactically valid query over a missing table is the
// client's mistake and must come back as bad_request, not fall through
// the classifier to internal (a 500).
func TestUnknownTableIsBadRequest(t *testing.T) {
	fx := newFixture(t, "inproc", Config{})
	_, err := NewClient(fx.base).Query(context.Background(), "SELECT * FROM nosuchtable")
	if KindOf(err) != KindBadRequest {
		t.Fatalf("unknown table: want %q, got %q (%v)", KindBadRequest, KindOf(err), err)
	}
}
