package server

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"pushdowndb/internal/engine"
	"pushdowndb/internal/obs"
	"pushdowndb/internal/sqlparse"
)

// The daemon's observability surface: a hand-rolled Prometheus registry
// scraped at GET /metrics, a last-N ring of completed query traces served
// from GET /debug/trace/<request-id> (JSON or Chrome tracing format), and
// the slow-query log feeding full span trees to the audit stream.

// RequestIDHeader is the response header carrying the request id on every
// POST /query reply, including rejections.
const RequestIDHeader = "X-Pushdowndb-Request-Id"

// serverObs bundles the server's metrics and trace retention. Constructed
// unconditionally: recording into an unscraped registry is cheap, and the
// trace ring is capped.
type serverObs struct {
	reg    *obs.Registry
	traces *obs.TraceLog

	queries    *obs.Counter // {tenant, kind, status}
	rejections *obs.Counter // {kind}
	joinSteps  *obs.Counter // {strategy}
	slow       *obs.Counter
	wallHist   *obs.Histogram // {status}
	simHist    *obs.Histogram
	phaseHist  *obs.Histogram // {phase}, names normalized by phaseKind
}

// wallBuckets resolve the in-process latencies (typically sub-ms to tens
// of ms) that DefBuckets, sized for virtual storage time, would flatten.
var wallBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

func newServerObs(s *Server) *serverObs {
	reg := obs.NewRegistry()
	o := &serverObs{
		reg:    reg,
		traces: obs.NewTraceLog(s.cfg.TraceRetain),
		queries: reg.Counter("pushdownd_queries_total",
			"Statements executed, by tenant, statement kind and outcome.",
			"tenant", "kind", "status"),
		rejections: reg.Counter("pushdownd_rejections_total",
			"Requests turned away by admission, quotas or execution failure, by error kind.",
			"kind"),
		joinSteps: reg.Counter("pushdownd_join_steps_total",
			"Join plan steps executed, by chosen strategy.",
			"strategy"),
		slow: reg.Counter("pushdownd_slow_queries_total",
			"Queries over the slow-query wall-clock threshold."),
		wallHist: reg.Histogram("pushdownd_query_wall_seconds",
			"Wall-clock query latency on the server, by outcome.",
			wallBuckets, "status"),
		simHist: reg.Histogram("pushdownd_query_sim_seconds",
			"Virtual (cloud-simulated) query runtime.",
			obs.DefBuckets),
		phaseHist: reg.Histogram("pushdownd_phase_sim_seconds",
			"Virtual runtime of execution phases, by normalized phase kind.",
			obs.DefBuckets, "phase"),
	}
	reg.GaugeFunc("pushdownd_in_flight",
		"Queries executing right now.",
		func() float64 { return float64(s.inFlight.Load()) })
	reg.GaugeFunc("pushdownd_queued",
		"Admitted requests waiting for an execution slot.",
		func() float64 { return float64(s.queued.Load()) })
	reg.GaugeFunc("pushdownd_max_clients",
		"Execution slot capacity (Config.MaxClients).",
		func() float64 { return float64(s.cfg.MaxClients) })
	reg.GaugeFunc("pushdownd_queue_capacity",
		"Wait queue capacity (Config.QueueDepth).",
		func() float64 { return float64(s.cfg.QueueDepth) })
	reg.GaugeFunc("pushdownd_uptime_seconds",
		"Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("pushdownd_cache_hit_rate",
		"Shared result cache hit rate in [0,1] (0 when the cache is off).",
		func() float64 {
			cs, ok := s.db.ResultCacheStats()
			if !ok {
				return 0
			}
			return cs.HitRate()
		})
	reg.GaugeFunc("pushdownd_scanshare_sharers_per_pass",
		"Average queries riding one shared scan pass (0 when sharing is off).",
		func() float64 {
			ss, ok := s.db.ScanShareStats()
			if !ok || ss.SharedPasses == 0 {
				return 0
			}
			return float64(ss.Sharers) / float64(ss.SharedPasses)
		})
	reg.Gauge("pushdownd_tenant_in_flight",
		"Queries executing right now, by tenant.",
		[]string{"tenant"}, func() []obs.Sample {
			s.tenMu.Lock()
			defer s.tenMu.Unlock()
			out := make([]obs.Sample, 0, len(s.tenants))
			for name, ts := range s.tenants {
				out = append(out, obs.Sample{Labels: []string{name}, Value: float64(ts.inFlight.Load())})
			}
			sort.Slice(out, func(i, j int) bool { return out[i].Labels[0] < out[j].Labels[0] })
			return out
		})
	return o
}

// observeQuery records one executed statement: counters, latency
// histograms, the per-phase breakdown, trace retention and the slow-query
// log. Rejections never reach here — they are counted by countReject.
func (s *Server) observeQuery(tenant, kind, id, sql string, tr *obs.Trace, exec *engine.Exec, wall time.Duration, err error) {
	status := "ok"
	if err != nil {
		status = string(classifyExecError(err).Kind)
	}
	s.obs.queries.Inc(tenant, kind, status)
	s.obs.wallHist.Observe(wall.Seconds(), status)
	if exec != nil {
		s.obs.simHist.Observe(exec.RuntimeSeconds())
		for _, p := range exec.Metrics.Phases() {
			s.obs.phaseHist.Observe(p.Seconds(), phaseKind(p.Name))
		}
		if plan := exec.QueryPlan(); plan != nil {
			for _, st := range plan.Steps {
				s.obs.joinSteps.Inc(st.Strategy)
			}
		}
	}
	d := tr.Snapshot()
	if d == nil {
		return
	}
	d.Root.SortChildren()
	s.obs.traces.Add(d)
	if s.cfg.SlowQuery > 0 && wall >= s.cfg.SlowQuery {
		s.obs.slow.Inc()
		s.auditWrite(auditEntry{
			Tenant: tenant, ID: id, SQL: sql, Status: "slow",
			WallSec: wall.Seconds(), Trace: json.RawMessage(d.JSON()),
		})
	}
}

// statementKind labels a parsed statement for the queries_total metric.
func statementKind(st sqlparse.Statement) string {
	switch t := st.(type) {
	case *sqlparse.Select:
		if len(t.Joins) > 0 {
			return "join"
		}
		return "select"
	case *sqlparse.Explain:
		if t.Analyze {
			return "explain_analyze"
		}
		return "explain"
	case *sqlparse.CreateIndex:
		return "create_index"
	case *sqlparse.DropIndex:
		return "drop_index"
	default:
		return "other"
	}
}

// phaseKinds maps cloudsim phase-name prefixes onto a bounded label set:
// phase names embed table names ("filtered scan lineitem"), which would
// explode metric cardinality. First match wins, so longer prefixes come
// first ("plan probe" before "probe", "index select" before "select").
var phaseKinds = []string{
	"plan header", "plan probe", "index select", "index fetch", "index lookup",
	"row fetch", "bloom build", "bloom probe", "filtered scan", "threshold scan",
	"tail scan", "hash join", "header", "load", "sample", "probe", "scan",
	"select", "local",
}

func phaseKind(name string) string {
	for _, k := range phaseKinds {
		if strings.HasPrefix(name, k) {
			return k
		}
	}
	return "other"
}

// handleMetrics serves the registry in the Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, &Error{Kind: KindBadRequest, Message: "GET only"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.obs.reg.WritePrometheus(w)
}

// handleTrace serves retained query traces: GET /debug/trace/ lists the
// retained request ids, GET /debug/trace/<id> returns that query's span
// tree as JSON, and ?format=chrome returns Chrome tracing events loadable
// in chrome://tracing or Perfetto.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, &Error{Kind: KindBadRequest, Message: "GET only"})
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
	if id == "" {
		writeJSON(w, http.StatusOK, s.obs.traces.IDs())
		return
	}
	d := s.obs.traces.Get(id)
	if d == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Err: Error{
			Kind: KindBadRequest, Message: "no retained trace for request id " + id}})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if r.URL.Query().Get("format") == "chrome" {
		_, _ = w.Write(d.ChromeTrace())
		return
	}
	_, _ = w.Write(d.JSON())
}

// mountPprof wires the net/http/pprof handlers onto the server's own mux
// (the package's init only touches http.DefaultServeMux, which pushdownd
// never serves).
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
