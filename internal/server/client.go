package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/engine"
	"pushdowndb/internal/obs"
)

// Client is the Go client for a pushdownd server; the tests, the harness
// figure, the example and the CLI all drive the server through it. The
// zero-value fields get defaults: a nil HTTPClient uses
// http.DefaultClient, an empty Tenant lets the server attribute the
// query to its default tenant.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8123".
	BaseURL string
	// Tenant attributes this client's queries for admission lanes,
	// quotas and the audit log.
	Tenant string
	// HTTPClient overrides the transport (timeouts belong to the passed
	// context, not here).
	HTTPClient *http.Client
}

// NewClient returns a client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// Result is one query's answer plus the server-side meter readings for it.
type Result struct {
	// Relation holds the rows, decoded to the exact values the engine
	// produced (empty, not nil, for DDL statements).
	Relation *engine.Relation
	// RuntimeSec is the query's virtual runtime on the server.
	RuntimeSec float64
	// Cost is the query's simulated dollar cost, as billed to the tenant.
	Cost cloudsim.CostBreakdown
	// Requests is how many storage requests the query issued.
	Requests int64
	// CacheHits is how many select responses the shared result cache
	// served without touching storage.
	CacheHits int64
	// Tenant is the tenant the server billed.
	Tenant string
	// RequestID identifies this query in the audit log and at
	// GET /debug/trace/<id> (client-chosen via QueryID, else
	// server-generated).
	RequestID string
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Query runs one SQL statement on the server. Server-side rejections and
// failures come back as *Error with the Kind intact; transport failures
// come back as-is.
func (c *Client) Query(ctx context.Context, sql string) (*Result, error) {
	return c.QueryID(ctx, sql, "")
}

// QueryID is Query with a client-chosen request id, for callers that want
// to correlate the query with their own logs and later fetch its trace;
// an empty id lets the server generate one (returned in Result.RequestID).
func (c *Client) QueryID(ctx context.Context, sql, requestID string) (*Result, error) {
	body, err := json.Marshal(queryRequest{SQL: sql, Tenant: c.Tenant, RequestID: requestID})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return nil, fmt.Errorf("server: bad query response: %w", err)
	}
	rel, err := decodeRelation(qr.Columns, qr.Rows)
	if err != nil {
		return nil, err
	}
	return &Result{
		Relation:   rel,
		RuntimeSec: qr.RuntimeSec,
		Cost:       qr.Cost,
		Requests:   qr.Requests,
		CacheHits:  qr.CacheHits,
		Tenant:     qr.Tenant,
		RequestID:  qr.RequestID,
	}, nil
}

// Trace fetches a completed query's span tree by request id from the
// server's retained-trace ring, decoded from the JSON the server serves at
// GET /debug/trace/<id>.
func (c *Client) Trace(ctx context.Context, requestID string) (*obs.TraceData, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/debug/trace/"+requestID, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var d obs.TraceData
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return nil, fmt.Errorf("server: bad trace response: %w", err)
	}
	return &d, nil
}

// Stats fetches the server's shared-state snapshot.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("server: bad stats response: %w", err)
	}
	return &st, nil
}

// Health probes /healthz; nil means the server is up and accepting.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return fmt.Errorf("server: bad health response: %w", err)
	}
	if h.Status != "ok" {
		return &Error{Kind: KindShuttingDown, Message: "server reports " + h.Status}
	}
	return nil
}

// decodeError reconstructs the server's structured error from a non-200
// reply, falling back to the raw body when it isn't ours.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var er errorResponse
	if err := json.Unmarshal(body, &er); err == nil && er.Err.Kind != "" {
		return &er.Err
	}
	return &Error{
		Kind:    KindInternal,
		Message: fmt.Sprintf("http %d: %s", resp.StatusCode, strings.TrimSpace(string(body))),
	}
}
