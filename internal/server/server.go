package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/engine"
	"pushdowndb/internal/obs"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/sqlparse"
)

// Config tunes the server's admission and quota layer. The zero value gets
// sensible defaults from New.
type Config struct {
	// MaxClients bounds how many queries execute concurrently across all
	// tenants (default 32). Arrivals beyond it wait in the bounded queue.
	MaxClients int
	// QueueDepth bounds how many admitted-but-waiting requests may queue
	// behind the MaxClients executing ones (default 4*MaxClients). A full
	// queue rejects new arrivals with KindOverloaded instead of building
	// unbounded backlog.
	QueueDepth int
	// RequestTimeout is the per-query deadline, wired into QueryContext so
	// a stalled storage backend is cut mid-flight (default 30s; <0 disables).
	RequestTimeout time.Duration
	// TenantConcurrency bounds each tenant's concurrently executing
	// queries (0 = unlimited). A full lane rejects with KindOverloaded —
	// one tenant's burst cannot occupy the whole server.
	TenantConcurrency int
	// TenantBudgetUSD is each tenant's simulated-dollar budget (0 =
	// unlimited). Every query is metered by the cost model anyway; once a
	// tenant's accumulated total reaches the budget, further queries are
	// rejected with KindOverQuota.
	TenantBudgetUSD float64
	// TenantRateLimit bounds how many queries each tenant may submit per
	// rolling TenantRateWindow (0 = unlimited). Unlike the dollar quota,
	// which is cumulative and terminal, the rate limit is a smoothing
	// control: a burst past it is rejected with KindRateLimited and the
	// tenant is admitted again as soon as the window rolls past.
	TenantRateLimit int
	// TenantRateWindow is the rolling window TenantRateLimit counts over
	// (default 1s when a limit is set).
	TenantRateWindow time.Duration
	// DefaultTenant attributes requests that name no tenant (default
	// "default").
	DefaultTenant string
	// AuditLog, when non-nil, receives one JSON line per statement —
	// executed or rejected — with tenant, outcome, runtime and cost.
	// Executed statements flow through the engine's query hook, so direct
	// DB users on the same shared DB are audited too.
	AuditLog io.Writer
	// TraceRetain is how many completed query traces the server keeps for
	// GET /debug/trace/<request-id> (default 64; <0 disables tracing
	// entirely, including the slow-query log).
	TraceRetain int
	// SlowQuery, when >0, is the wall-clock threshold past which a query's
	// full span tree is written to the audit log (status "slow").
	SlowQuery time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (off by
	// default: profiling endpoints on a query port are opt-in).
	EnablePprof bool
	// DisableMetrics turns off GET /metrics (served by default).
	DisableMetrics bool
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.MaxClients <= 0 {
		c.MaxClients = 32
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxClients
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DefaultTenant == "" {
		c.DefaultTenant = "default"
	}
	if c.TenantRateLimit > 0 && c.TenantRateWindow <= 0 {
		c.TenantRateWindow = time.Second
	}
	if c.TraceRetain == 0 {
		c.TraceRetain = 64
	}
	return c
}

// tenantState is one tenant's concurrency lane and rate window.
type tenantState struct {
	sem      chan struct{} // nil = unlimited
	inFlight atomic.Int64

	rateMu sync.Mutex
	// recent holds the admission times still inside the rolling rate
	// window, oldest first; bounded by TenantRateLimit.
	recent []time.Time
}

// allowRate records one arrival against the rolling window and reports
// whether it fits under limit. Expired entries are pruned first, so memory
// per tenant is bounded by the limit itself.
func (ts *tenantState) allowRate(now time.Time, limit int, window time.Duration) bool {
	ts.rateMu.Lock()
	defer ts.rateMu.Unlock()
	cutoff := now.Add(-window)
	i := 0
	for i < len(ts.recent) && !ts.recent[i].After(cutoff) {
		i++
	}
	if i > 0 {
		ts.recent = append(ts.recent[:0], ts.recent[i:]...)
	}
	if len(ts.recent) >= limit {
		return false
	}
	ts.recent = append(ts.recent, now)
	return true
}

// Server multiplexes concurrent clients over one shared engine.DB: every
// connection sees the same result cache, the same planner statistics and
// the same cost ledger. Construct with New, serve with Serve, stop with
// Shutdown (which drains in-flight queries).
type Server struct {
	db     *engine.DB
	cfg    Config
	ledger *cloudsim.Ledger
	start  time.Time

	slots    chan struct{} // MaxClients execution tokens
	queued   atomic.Int64
	inFlight atomic.Int64
	accepted atomic.Int64

	rejMu    sync.Mutex
	rejected map[ErrorKind]int64

	tenMu   sync.Mutex
	tenants map[string]*tenantState

	draining atomic.Bool
	wg       sync.WaitGroup // in-flight query executions

	auditMu sync.Mutex
	reqSeq  atomic.Int64

	obs *serverObs // metrics registry + retained traces

	httpMu  sync.Mutex
	httpSrv *http.Server
}

// New returns a Server over db. The server installs its audit hook on the
// DB (engine.SetQueryHook) when cfg.AuditLog is set; the DB must not have
// a competing hook installed.
func New(db *engine.DB, cfg Config) *Server {
	s := &Server{
		db:       db,
		cfg:      cfg.withDefaults(),
		ledger:   cloudsim.NewLedger(),
		start:    time.Now(),
		rejected: map[ErrorKind]int64{},
		tenants:  map[string]*tenantState{},
	}
	s.slots = make(chan struct{}, s.cfg.MaxClients)
	s.obs = newServerObs(s)
	if s.cfg.AuditLog != nil {
		db.SetQueryHook(s.auditQueryHook)
	}
	return s
}

// Ledger exposes the per-tenant cost ledger (the harness and the stats
// endpoint both read it).
func (s *Server) Ledger() *cloudsim.Ledger { return s.ledger }

// Handler returns the HTTP surface: POST /query, GET /stats, GET
// /healthz, GET /metrics (unless disabled), GET /debug/trace/<id>, and
// GET /debug/pprof/ when enabled.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealth)
	if !s.cfg.DisableMetrics {
		mux.HandleFunc("/metrics", s.handleMetrics)
	}
	mux.HandleFunc("/debug/trace/", s.handleTrace)
	if s.cfg.EnablePprof {
		mountPprof(mux)
	}
	return mux
}

// Serve accepts connections on l until Shutdown. It returns
// http.ErrServerClosed after a clean shutdown, any other error on accept
// failure.
func (s *Server) Serve(l net.Listener) error {
	srv := &http.Server{Handler: s.Handler()}
	s.httpMu.Lock()
	s.httpSrv = srv
	s.httpMu.Unlock()
	return srv.Serve(l)
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Shutdown drains the server: new queries are rejected with
// KindShuttingDown immediately, the listener closes, and Shutdown returns
// once every in-flight query has finished (or ctx expires). In-flight
// queries are never canceled by Shutdown — they keep their own deadlines.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv != nil {
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// tenant returns (lazily creating) the tenant's state.
func (s *Server) tenant(name string) *tenantState {
	s.tenMu.Lock()
	defer s.tenMu.Unlock()
	ts := s.tenants[name]
	if ts == nil {
		ts = &tenantState{}
		if s.cfg.TenantConcurrency > 0 {
			ts.sem = make(chan struct{}, s.cfg.TenantConcurrency)
		}
		s.tenants[name] = ts
	}
	return ts
}

// countReject tallies an admission/quota rejection for /stats and
// /metrics.
func (s *Server) countReject(k ErrorKind) {
	s.rejMu.Lock()
	s.rejected[k]++
	s.rejMu.Unlock()
	s.obs.rejections.Inc(string(k))
}

// acquireSlot is global admission: take an execution token immediately,
// or wait in the bounded queue until one frees, the client gives up, or
// the per-request deadline passes.
func (s *Server) acquireSlot(ctx context.Context) *Error {
	select {
	case s.slots <- struct{}{}:
		return nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		return &Error{Kind: KindOverloaded, Message: fmt.Sprintf(
			"wait queue full (%d executing, %d queued)", s.cfg.MaxClients, s.cfg.QueueDepth)}
	}
	defer s.queued.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return &Error{Kind: KindTimeout, Message: "deadline passed while queued for admission"}
		}
		return &Error{Kind: KindCanceled, Message: "client gone while queued for admission"}
	}
}

func (s *Server) releaseSlot() { <-s.slots }

// handleQuery runs one SQL statement through the shared DB under
// admission control, tenant quotas and the per-request deadline.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, &Error{Kind: KindBadRequest, Message: "POST only"})
		return
	}
	var req queryRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, &Error{Kind: KindBadRequest, Message: "bad request body: " + err.Error()})
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = s.cfg.DefaultTenant
	}
	// The request id correlates the response, the audit line, the metrics
	// and the retained trace; it rides a response header so even rejected
	// requests can be chased through the logs.
	id := req.RequestID
	if id == "" {
		id = fmt.Sprintf("q-%d", s.reqSeq.Add(1))
	}
	w.Header().Set(RequestIDHeader, id)
	reject := func(e *Error) {
		s.countReject(e.Kind)
		s.auditRejected(tenant, id, req.SQL, e)
		writeError(w, e)
	}
	if req.SQL == "" {
		reject(&Error{Kind: KindBadRequest, Message: "empty sql"})
		return
	}
	// Validate the statement before spending an admission slot on it; the
	// engine re-parses on execution (parsing is micro-cheap next to a scan).
	stmt, err := sqlparse.ParseStatement(req.SQL)
	if err != nil {
		reject(&Error{Kind: KindBadRequest, Message: err.Error()})
		return
	}
	kind := statementKind(stmt)
	if s.draining.Load() {
		reject(&Error{Kind: KindShuttingDown, Message: "server is draining"})
		return
	}
	// Quota gate: a tenant that has spent its budget is turned away before
	// it can occupy a slot.
	if s.cfg.TenantBudgetUSD > 0 {
		if spent := s.ledger.Usage(tenant).Cost.Total(); spent >= s.cfg.TenantBudgetUSD {
			reject(&Error{Kind: KindOverQuota, Message: fmt.Sprintf(
				"tenant %q spent $%.6f of its $%.6f budget", tenant, spent, s.cfg.TenantBudgetUSD)})
			return
		}
	}
	ts := s.tenant(tenant)
	// Rate gate: like the quota gate, applied before the request can
	// occupy a slot or a queue position.
	if s.cfg.TenantRateLimit > 0 {
		if !ts.allowRate(time.Now(), s.cfg.TenantRateLimit, s.cfg.TenantRateWindow) {
			reject(&Error{Kind: KindRateLimited, Message: fmt.Sprintf(
				"tenant %q over its rate limit (%d per %s)",
				tenant, s.cfg.TenantRateLimit, s.cfg.TenantRateWindow)})
			return
		}
	}
	if e := s.acquireSlot(r.Context()); e != nil {
		reject(e)
		return
	}
	defer s.releaseSlot()
	if ts.sem != nil {
		select {
		case ts.sem <- struct{}{}:
			defer func() { <-ts.sem }()
		default:
			reject(&Error{Kind: KindOverloaded, Message: fmt.Sprintf(
				"tenant %q at its concurrency limit (%d)", tenant, s.cfg.TenantConcurrency)})
			return
		}
	}

	s.wg.Add(1)
	defer s.wg.Done()
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	ts.inFlight.Add(1)
	defer ts.inFlight.Add(-1)
	s.accepted.Add(1)

	ctx := withRequestInfo(r.Context(), tenant, id)
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	var tr *obs.Trace
	if s.cfg.TraceRetain > 0 {
		tr = obs.New(id, "query")
		ctx = obs.WithTrace(ctx, tr)
	}
	wallStart := time.Now()
	rel, exec, err := s.db.ExecStatement(ctx, req.SQL)
	wall := time.Since(wallStart)
	tr.Finish()
	// Bill whatever the execution accrued, error or not: a query that died
	// halfway through a scan still bought that scan.
	var runtime float64
	var cost cloudsim.CostBreakdown
	if exec != nil {
		runtime = exec.RuntimeSeconds()
		cost = exec.Cost()
		s.ledger.Bill(tenant, runtime, cost, err != nil)
	}
	s.observeQuery(tenant, kind, id, req.SQL, tr, exec, wall, err)
	if err != nil {
		e := classifyExecError(err)
		s.countReject(e.Kind)
		writeError(w, e)
		return
	}
	cols, rows := encodeRelation(rel)
	resp := queryResponse{
		Columns:    cols,
		Rows:       rows,
		RuntimeSec: runtime,
		Cost:       cost,
		Tenant:     tenant,
		RequestID:  id,
	}
	if exec != nil {
		requests, _, _, _ := exec.Metrics.Totals()
		hits, _ := exec.Metrics.CacheTotals()
		resp.Requests = requests
		resp.CacheHits = hits
	}
	writeJSON(w, http.StatusOK, resp)
}

// classifyExecError maps an engine/storage failure onto the wire error
// kinds: deadline cuts are timeouts, client disconnects are canceled,
// storage-level "you asked for something that isn't there / isn't valid"
// kinds are bad requests, the rest is internal.
func classifyExecError(err error) *Error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return &Error{Kind: KindTimeout, Message: "query exceeded the per-request deadline"}
	case errors.Is(err, context.Canceled):
		return &Error{Kind: KindCanceled, Message: "query canceled"}
	}
	switch s3api.KindOf(err) {
	case s3api.KindNotFound, s3api.KindBadRequest, s3api.KindInvalidRange, s3api.KindUnsupported:
		return &Error{Kind: KindBadRequest, Message: err.Error()}
	}
	return &Error{Kind: KindInternal, Message: err.Error()}
}

// handleStats renders the shared-state snapshot.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, &Error{Kind: KindBadRequest, Message: "GET only"})
		return
	}
	st := Stats{
		UptimeSec:     time.Since(s.start).Seconds(),
		InFlight:      s.inFlight.Load(),
		Queued:        s.queued.Load(),
		MaxClients:    int64(s.cfg.MaxClients),
		QueueCapacity: int64(s.cfg.QueueDepth),
		Accepted:      s.accepted.Load(),
		Rejected:      map[ErrorKind]int64{},
		Tenants:       map[string]TenantStats{},
		Draining:      s.draining.Load(),
	}
	s.rejMu.Lock()
	for k, n := range s.rejected {
		st.Rejected[k] = n
	}
	s.rejMu.Unlock()
	for name, u := range s.ledger.Snapshot() {
		ten := TenantStats{
			Queries:    u.Queries,
			Errors:     u.Errors,
			RuntimeSec: u.RuntimeSec,
			Cost:       u.Cost,
			TotalUSD:   u.Cost.Total(),
			BudgetUSD:  s.cfg.TenantBudgetUSD,
		}
		s.tenMu.Lock()
		if ts := s.tenants[name]; ts != nil {
			ten.InFlight = ts.inFlight.Load()
		}
		s.tenMu.Unlock()
		st.Tenants[name] = ten
	}
	if cs, ok := s.db.ResultCacheStats(); ok {
		st.Cache = &CacheStats{Stats: cs, HitRate: cs.HitRate()}
	}
	if ss, ok := s.db.ScanShareStats(); ok {
		sh := &ShareStats{Stats: ss}
		if ss.SharedPasses > 0 {
			sh.AvgSharersPerPass = float64(ss.Sharers) / float64(ss.SharedPasses)
		}
		st.ScanShare = sh
	}
	writeJSON(w, http.StatusOK, st)
}

// handleHealth is the liveness probe.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, healthResponse{Status: status, InFlight: s.inFlight.Load()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, e *Error) {
	writeJSON(w, httpStatus(e.Kind), errorResponse{Err: *e})
}

// requestInfoKey carries the tenant and request id into the engine's
// query hook through the execution context.
type requestInfoKey struct{}

type requestInfo struct {
	tenant string
	id     string
}

func withRequestInfo(ctx context.Context, tenant, id string) context.Context {
	return context.WithValue(ctx, requestInfoKey{}, requestInfo{tenant: tenant, id: id})
}

// auditEntry is one JSON line in the audit log.
type auditEntry struct {
	TS         string  `json:"ts"`
	Tenant     string  `json:"tenant"`
	ID         string  `json:"id,omitempty"`
	SQL        string  `json:"sql"`
	Status     string  `json:"status"` // "ok", "slow" or an ErrorKind
	RuntimeSec float64 `json:"runtime_sec,omitempty"`
	CostUSD    float64 `json:"cost_usd,omitempty"`
	WallSec    float64 `json:"wall_sec,omitempty"`
	Err        string  `json:"err,omitempty"`
	// Trace is the query's full span tree; written only by the slow-query
	// log (status "slow").
	Trace json.RawMessage `json:"trace,omitempty"`
}

func (s *Server) auditWrite(e auditEntry) {
	if s.cfg.AuditLog == nil {
		return
	}
	e.TS = time.Now().UTC().Format(time.RFC3339Nano)
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	s.auditMu.Lock()
	_, _ = s.cfg.AuditLog.Write(append(line, '\n'))
	s.auditMu.Unlock()
}

// auditQueryHook is the engine.QueryHook the server installs: every
// statement the shared DB executes — through this server or by a direct
// in-process caller — lands in the audit log with its tenant attribution
// when it came through the server ("direct" otherwise).
func (s *Server) auditQueryHook(ctx context.Context, sql string, exec *engine.Exec, err error) {
	e := auditEntry{Tenant: "direct", SQL: sql, Status: "ok"}
	if info, ok := ctx.Value(requestInfoKey{}).(requestInfo); ok {
		e.Tenant = info.tenant
		e.ID = info.id
	}
	if exec != nil {
		e.RuntimeSec = exec.RuntimeSeconds()
		e.CostUSD = exec.Cost().Total()
	}
	if err != nil {
		e.Status = string(classifyExecError(err).Kind)
		e.Err = err.Error()
	}
	s.auditWrite(e)
}

// auditRejected logs a statement the admission/quota layer turned away
// before execution.
func (s *Server) auditRejected(tenant, id, sql string, rej *Error) {
	s.auditWrite(auditEntry{
		Tenant: tenant, ID: id, SQL: sql,
		Status: string(rej.Kind), Err: rej.Message,
	})
}
