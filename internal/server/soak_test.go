package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"testing"
	"time"
)

// stableGoroutines samples the goroutine count until two consecutive
// readings agree (HTTP keep-alive reapers and finished fan-out workers
// need a beat to unwind), returning the settled count.
func stableGoroutines() int {
	prev := runtime.NumGoroutine()
	for i := 0; i < 40; i++ {
		time.Sleep(50 * time.Millisecond)
		n := runtime.NumGoroutine()
		if n == prev {
			return n
		}
		prev = n
	}
	return prev
}

// settleGoroutines waits up to 5s for the goroutine count to drop to at
// most want, returning the last observed count.
func settleGoroutines(want int) int {
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > want && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		runtime.GC()
		n = runtime.NumGoroutine()
	}
	return n
}

// TestSoakNoGoroutineLeak runs a few hundred sequential requests —
// successes, cache hits, parse rejections and one timeout — through one
// server and asserts the process goroutine count returns to its
// post-warmup baseline: no per-request goroutine may outlive its request.
func TestSoakNoGoroutineLeak(t *testing.T) {
	fx := newFixture(t, "inproc", Config{RequestTimeout: 500 * time.Millisecond})
	cl := NewClient(fx.base)
	cl.HTTPClient = &http.Client{}
	ctx := context.Background()

	// Warm up: every query path touched once, connections established.
	for _, q := range testQueries {
		if _, err := cl.Query(ctx, q); err != nil {
			t.Fatalf("warmup %q: %v", q, err)
		}
	}
	baseline := stableGoroutines()
	t.Cleanup(func() {
		cl.HTTPClient.CloseIdleConnections()
		// The fixture's own cleanup shuts the server down after this; here
		// we only pin that the soak itself left nothing behind.
		if n := settleGoroutines(baseline + 5); n > baseline+5 {
			buf := make([]byte, 1<<20)
			t.Errorf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, n, buf[:runtime.Stack(buf, true)])
		}
	})

	const rounds = 300
	for i := 0; i < rounds; i++ {
		q := testQueries[i%len(testQueries)]
		switch {
		case i%50 == 25:
			// A parse rejection exercises the pre-admission path.
			if _, err := cl.Query(ctx, "DEFINITELY NOT SQL"); KindOf(err) != KindBadRequest {
				t.Fatalf("round %d: want bad_request, got %v", i, err)
			}
		case i == rounds/2:
			// One mid-soak timeout exercises the cancellation path.
			fx.fault.StallFor(30 * time.Second)
			fx.fault.OnOps("select")
			fx.db.InvalidateStats() // force the next query past the cache
			if _, err := cl.Query(ctx, q); KindOf(err) != KindTimeout {
				t.Fatalf("round %d: want timeout, got %v", i, err)
			}
			fx.fault.Reset()
		default:
			if _, err := cl.Query(ctx, q); err != nil {
				t.Fatalf("round %d %q: %v", i, q, err)
			}
		}
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("work left behind after soak: %+v", st)
	}
	if got := fmt.Sprint(st.Accepted); got == "0" {
		t.Error("nothing accepted?")
	}
}
