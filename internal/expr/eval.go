// Package expr evaluates sqlparse expression trees over rows. It is shared
// by the S3 Select engine (storage-side evaluation) and by PushdownDB's
// local operators (server-side evaluation), so the two sides agree exactly
// on the dialect's semantics.
package expr

import (
	"encoding/hex"
	"fmt"
	"math"
	"strings"

	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/value"
)

// Env resolves column references during evaluation.
type Env interface {
	// Lookup returns the value of the named column. Qualifier may be empty.
	Lookup(qualifier, name string) (value.Value, bool)
}

// MapEnv is a simple Env backed by a map (tests, constant folding).
type MapEnv map[string]value.Value

// Lookup implements Env.
func (m MapEnv) Lookup(_, name string) (value.Value, bool) {
	v, ok := m[strings.ToLower(name)]
	return v, ok
}

// Evaluator evaluates expressions, caching per-node compilations (LIKE
// patterns, Bloom filter bit arrays) across rows. A nil *Evaluator is not
// usable; construct with New.
type Evaluator struct {
	likeCache  map[*sqlparse.Like]*likeMatcher
	bloomCache map[*sqlparse.Call][]byte
	// AggValues supplies finalized aggregate results when evaluating a
	// select item that wraps aggregates (e.g. 100 * SUM(a) / SUM(b)).
	AggValues map[*sqlparse.Aggregate]value.Value
}

// New returns a fresh Evaluator.
func New() *Evaluator {
	return &Evaluator{
		likeCache:  map[*sqlparse.Like]*likeMatcher{},
		bloomCache: map[*sqlparse.Call][]byte{},
	}
}

// Eval computes e over env.
func (ev *Evaluator) Eval(e sqlparse.Expr, env Env) (value.Value, error) {
	switch t := e.(type) {
	case *sqlparse.Literal:
		return t.Val, nil
	case *sqlparse.Column:
		v, ok := env.Lookup(t.Qualifier, t.Name)
		if !ok {
			return value.Null(), fmt.Errorf("expr: unknown column %s", t.String())
		}
		return v, nil
	case *sqlparse.Star:
		return value.Null(), fmt.Errorf("expr: * is not a scalar expression")
	case *sqlparse.Binary:
		return ev.evalBinary(t, env)
	case *sqlparse.Unary:
		return ev.evalUnary(t, env)
	case *sqlparse.IsNull:
		v, err := ev.Eval(t.X, env)
		if err != nil {
			return value.Null(), err
		}
		if t.Not {
			return value.Bool(!v.IsNull()), nil
		}
		return value.Bool(v.IsNull()), nil
	case *sqlparse.Between:
		x, err := ev.Eval(t.X, env)
		if err != nil {
			return value.Null(), err
		}
		lo, err := ev.Eval(t.Lo, env)
		if err != nil {
			return value.Null(), err
		}
		hi, err := ev.Eval(t.Hi, env)
		if err != nil {
			return value.Null(), err
		}
		if x.IsNull() || lo.IsNull() || hi.IsNull() {
			return value.Null(), nil
		}
		in := value.Compare(x, lo) >= 0 && value.Compare(x, hi) <= 0
		if t.Not {
			in = !in
		}
		return value.Bool(in), nil
	case *sqlparse.In:
		x, err := ev.Eval(t.X, env)
		if err != nil {
			return value.Null(), err
		}
		if x.IsNull() {
			return value.Null(), nil
		}
		found := false
		for _, item := range t.List {
			v, err := ev.Eval(item, env)
			if err != nil {
				return value.Null(), err
			}
			if value.Equal(x, v) {
				found = true
				break
			}
		}
		if t.Not {
			found = !found
		}
		return value.Bool(found), nil
	case *sqlparse.Like:
		return ev.evalLike(t, env)
	case *sqlparse.Case:
		for _, w := range t.Whens {
			c, err := ev.Eval(w.Cond, env)
			if err != nil {
				return value.Null(), err
			}
			if value.Truthy(c) {
				return ev.Eval(w.Result, env)
			}
		}
		if t.Else != nil {
			return ev.Eval(t.Else, env)
		}
		return value.Null(), nil
	case *sqlparse.Cast:
		v, err := ev.Eval(t.X, env)
		if err != nil {
			return value.Null(), err
		}
		switch t.To {
		case value.KindInt:
			return value.CastInt(v)
		case value.KindFloat:
			return value.CastFloat(v)
		case value.KindString:
			return value.CastString(v), nil
		case value.KindDate:
			return value.CastDate(v)
		case value.KindBool:
			if v.Kind() == value.KindBool || v.IsNull() {
				return v, nil
			}
			return value.Null(), fmt.Errorf("expr: cannot CAST %s AS BOOL", v.Kind())
		}
		return value.Null(), fmt.Errorf("expr: unsupported cast")
	case *sqlparse.Call:
		return ev.evalCall(t, env)
	case *sqlparse.Aggregate:
		if ev.AggValues != nil {
			if v, ok := ev.AggValues[t]; ok {
				return v, nil
			}
		}
		return value.Null(), fmt.Errorf("expr: aggregate %s evaluated outside aggregation", t.String())
	default:
		return value.Null(), fmt.Errorf("expr: unsupported node %T", e)
	}
}

// EvalBool evaluates e and interprets the result as a predicate.
func (ev *Evaluator) EvalBool(e sqlparse.Expr, env Env) (bool, error) {
	v, err := ev.Eval(e, env)
	if err != nil {
		return false, err
	}
	return value.Truthy(v), nil
}

func (ev *Evaluator) evalUnary(t *sqlparse.Unary, env Env) (value.Value, error) {
	v, err := ev.Eval(t.X, env)
	if err != nil {
		return value.Null(), err
	}
	switch t.Op {
	case "NOT":
		if v.IsNull() {
			return value.Null(), nil
		}
		if v.Kind() != value.KindBool {
			return value.Null(), fmt.Errorf("expr: NOT applied to %s", v.Kind())
		}
		return value.Bool(!v.AsBool()), nil
	case "-":
		switch v.Kind() {
		case value.KindNull:
			return v, nil
		case value.KindInt:
			return value.Int(-v.AsInt()), nil
		case value.KindFloat:
			return value.Float(-v.AsFloat()), nil
		}
		return value.Null(), fmt.Errorf("expr: unary minus applied to %s", v.Kind())
	}
	return value.Null(), fmt.Errorf("expr: unknown unary op %q", t.Op)
}

func (ev *Evaluator) evalBinary(t *sqlparse.Binary, env Env) (value.Value, error) {
	// AND/OR get three-valued logic with short-circuiting.
	switch t.Op {
	case sqlparse.OpAnd:
		l, err := ev.Eval(t.L, env)
		if err != nil {
			return value.Null(), err
		}
		if l.Kind() == value.KindBool && !l.AsBool() {
			return value.Bool(false), nil
		}
		r, err := ev.Eval(t.R, env)
		if err != nil {
			return value.Null(), err
		}
		if r.Kind() == value.KindBool && !r.AsBool() {
			return value.Bool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return value.Null(), nil
		}
		return value.Bool(l.AsBool() && r.AsBool()), nil
	case sqlparse.OpOr:
		l, err := ev.Eval(t.L, env)
		if err != nil {
			return value.Null(), err
		}
		if l.Kind() == value.KindBool && l.AsBool() {
			return value.Bool(true), nil
		}
		r, err := ev.Eval(t.R, env)
		if err != nil {
			return value.Null(), err
		}
		if r.Kind() == value.KindBool && r.AsBool() {
			return value.Bool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return value.Null(), nil
		}
		return value.Bool(l.AsBool() || r.AsBool()), nil
	}

	l, err := ev.Eval(t.L, env)
	if err != nil {
		return value.Null(), err
	}
	r, err := ev.Eval(t.R, env)
	if err != nil {
		return value.Null(), err
	}
	switch t.Op {
	case sqlparse.OpEq, sqlparse.OpNe, sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpGt, sqlparse.OpGe:
		if l.IsNull() || r.IsNull() {
			return value.Null(), nil
		}
		c := value.Compare(l, r)
		var b bool
		switch t.Op {
		case sqlparse.OpEq:
			b = c == 0
		case sqlparse.OpNe:
			b = c != 0
		case sqlparse.OpLt:
			b = c < 0
		case sqlparse.OpLe:
			b = c <= 0
		case sqlparse.OpGt:
			b = c > 0
		case sqlparse.OpGe:
			b = c >= 0
		}
		return value.Bool(b), nil
	case sqlparse.OpConcat:
		if l.IsNull() || r.IsNull() {
			return value.Null(), nil
		}
		return value.Str(l.String() + r.String()), nil
	default:
		return evalArith(t.Op, l, r)
	}
}

func evalArith(op sqlparse.BinaryOp, l, r value.Value) (value.Value, error) {
	if l.IsNull() || r.IsNull() {
		return value.Null(), nil
	}
	// Integer arithmetic stays integral when both sides are integral
	// (modulo in the Bloom hash depends on this).
	li, lok := intOperand(l)
	ri, rok := intOperand(r)
	if lok && rok {
		switch op {
		case sqlparse.OpAdd:
			return value.Int(li + ri), nil
		case sqlparse.OpSub:
			return value.Int(li - ri), nil
		case sqlparse.OpMul:
			return value.Int(li * ri), nil
		case sqlparse.OpDiv:
			if ri == 0 {
				return value.Null(), fmt.Errorf("expr: division by zero")
			}
			return value.Int(li / ri), nil
		case sqlparse.OpMod:
			if ri == 0 {
				return value.Null(), fmt.Errorf("expr: modulo by zero")
			}
			m := li % ri
			if m < 0 {
				m += ri // SQL-style non-negative modulo for positive divisor
			}
			return value.Int(m), nil
		}
	}
	lf, lok2 := numOperand(l)
	rf, rok2 := numOperand(r)
	if !lok2 || !rok2 {
		return value.Null(), fmt.Errorf("expr: arithmetic on non-numeric %s and %s", l.Kind(), r.Kind())
	}
	switch op {
	case sqlparse.OpAdd:
		return value.Float(lf + rf), nil
	case sqlparse.OpSub:
		return value.Float(lf - rf), nil
	case sqlparse.OpMul:
		return value.Float(lf * rf), nil
	case sqlparse.OpDiv:
		if rf == 0 {
			return value.Null(), fmt.Errorf("expr: division by zero")
		}
		return value.Float(lf / rf), nil
	case sqlparse.OpMod:
		if rf == 0 {
			return value.Null(), fmt.Errorf("expr: modulo by zero")
		}
		return value.Float(math.Mod(lf, rf)), nil
	}
	return value.Null(), fmt.Errorf("expr: unknown arithmetic op")
}

func intOperand(v value.Value) (int64, bool) {
	switch v.Kind() {
	case value.KindInt:
		return v.AsInt(), true
	case value.KindString:
		// CSV semantics: an all-digit string behaves as an integer.
		s := strings.TrimSpace(v.AsString())
		if s == "" {
			return 0, false
		}
		neg := false
		i := 0
		if s[0] == '-' || s[0] == '+' {
			neg = s[0] == '-'
			i = 1
			if len(s) == 1 {
				return 0, false
			}
		}
		var n int64
		for ; i < len(s); i++ {
			c := s[i]
			if c < '0' || c > '9' {
				return 0, false
			}
			n = n*10 + int64(c-'0')
		}
		if neg {
			n = -n
		}
		return n, true
	default:
		return 0, false
	}
}

func numOperand(v value.Value) (float64, bool) {
	if v.Kind() == value.KindString {
		var f float64
		_, err := fmt.Sscanf(strings.TrimSpace(v.AsString()), "%g", &f)
		return f, err == nil
	}
	return v.Num()
}

func (ev *Evaluator) evalLike(t *sqlparse.Like, env Env) (value.Value, error) {
	x, err := ev.Eval(t.X, env)
	if err != nil {
		return value.Null(), err
	}
	if x.IsNull() {
		return value.Null(), nil
	}
	m := ev.likeCache[t]
	if m == nil {
		p, err := ev.Eval(t.Pattern, env)
		if err != nil {
			return value.Null(), err
		}
		if p.Kind() != value.KindString {
			return value.Null(), fmt.Errorf("expr: LIKE pattern must be a string")
		}
		m = compileLike(p.AsString())
		ev.likeCache[t] = m
	}
	ok := m.match(x.String())
	if t.Not {
		ok = !ok
	}
	return value.Bool(ok), nil
}

// LikeMatch reports whether s matches the SQL LIKE pattern (% = any run,
// _ = any one byte). Exported so the vectorized filter kernel shares the
// evaluator's matcher instead of reimplementing it.
func LikeMatch(pattern, s string) bool { return likeMatch(pattern, s) }

// likeMatcher matches SQL LIKE patterns (% = any run, _ = any one byte).
type likeMatcher struct {
	pattern string
}

func compileLike(pattern string) *likeMatcher { return &likeMatcher{pattern: pattern} }

func (m *likeMatcher) match(s string) bool { return likeMatch(m.pattern, s) }

func likeMatch(p, s string) bool {
	// Iterative two-pointer wildcard matching, linear-ish.
	pi, si := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			pi++
			si++
		case pi < len(p) && p[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

func (ev *Evaluator) evalCall(t *sqlparse.Call, env Env) (value.Value, error) {
	switch t.Name {
	case "SUBSTRING":
		s, err := ev.Eval(t.Args[0], env)
		if err != nil {
			return value.Null(), err
		}
		start, err := ev.Eval(t.Args[1], env)
		if err != nil {
			return value.Null(), err
		}
		if s.IsNull() || start.IsNull() {
			return value.Null(), nil
		}
		str := s.String()
		si, ok := start.IntNum()
		if !ok {
			return value.Null(), fmt.Errorf("expr: SUBSTRING start must be numeric")
		}
		length := int64(len(str))
		if len(t.Args) == 3 {
			lv, err := ev.Eval(t.Args[2], env)
			if err != nil {
				return value.Null(), err
			}
			if lv.IsNull() {
				return value.Null(), nil
			}
			length, ok = lv.IntNum()
			if !ok {
				return value.Null(), fmt.Errorf("expr: SUBSTRING length must be numeric")
			}
		}
		return value.Str(substr(str, si, length)), nil
	case "UPPER":
		return ev.stringFunc(t, env, strings.ToUpper)
	case "LOWER":
		return ev.stringFunc(t, env, strings.ToLower)
	case "TRIM":
		return ev.stringFunc(t, env, strings.TrimSpace)
	case "LENGTH", "CHAR_LENGTH", "CHARACTER_LENGTH":
		if len(t.Args) != 1 {
			return value.Null(), fmt.Errorf("expr: %s takes 1 argument", t.Name)
		}
		v, err := ev.Eval(t.Args[0], env)
		if err != nil || v.IsNull() {
			return value.Null(), err
		}
		return value.Int(int64(len(v.String()))), nil
	case "ABS":
		if len(t.Args) != 1 {
			return value.Null(), fmt.Errorf("expr: ABS takes 1 argument")
		}
		v, err := ev.Eval(t.Args[0], env)
		if err != nil || v.IsNull() {
			return value.Null(), err
		}
		switch v.Kind() {
		case value.KindInt:
			i := v.AsInt()
			if i < 0 {
				i = -i
			}
			return value.Int(i), nil
		case value.KindFloat:
			return value.Float(math.Abs(v.AsFloat())), nil
		}
		return value.Null(), fmt.Errorf("expr: ABS on %s", v.Kind())
	case "EXTRACT":
		return ev.evalExtract(t, env)
	case "COALESCE":
		for _, a := range t.Args {
			v, err := ev.Eval(a, env)
			if err != nil {
				return value.Null(), err
			}
			if !v.IsNull() {
				return v, nil
			}
		}
		return value.Null(), nil
	case "NULLIF":
		if len(t.Args) != 2 {
			return value.Null(), fmt.Errorf("expr: NULLIF takes 2 arguments")
		}
		a, err := ev.Eval(t.Args[0], env)
		if err != nil {
			return value.Null(), err
		}
		b, err := ev.Eval(t.Args[1], env)
		if err != nil {
			return value.Null(), err
		}
		if value.Equal(a, b) {
			return value.Null(), nil
		}
		return a, nil
	case "BLOOM_CONTAINS":
		return ev.evalBloomContains(t, env)
	default:
		return value.Null(), fmt.Errorf("expr: unknown function %s", t.Name)
	}
}

func (ev *Evaluator) stringFunc(t *sqlparse.Call, env Env, fn func(string) string) (value.Value, error) {
	if len(t.Args) != 1 {
		return value.Null(), fmt.Errorf("expr: %s takes 1 argument", t.Name)
	}
	v, err := ev.Eval(t.Args[0], env)
	if err != nil || v.IsNull() {
		return value.Null(), err
	}
	return value.Str(fn(v.String())), nil
}

// evalExtract implements EXTRACT(YEAR|MONTH|DAY FROM date). String
// arguments in YYYY-MM-DD form are accepted (CSV semantics).
func (ev *Evaluator) evalExtract(t *sqlparse.Call, env Env) (value.Value, error) {
	if len(t.Args) != 2 {
		return value.Null(), fmt.Errorf("expr: EXTRACT takes a part and a date")
	}
	part, err := ev.Eval(t.Args[0], env)
	if err != nil {
		return value.Null(), err
	}
	x, err := ev.Eval(t.Args[1], env)
	if err != nil || x.IsNull() {
		return value.Null(), err
	}
	d, err := value.CastDate(x)
	if err != nil {
		return value.Null(), fmt.Errorf("expr: EXTRACT from non-date %v: %w", x, err)
	}
	s := d.String() // YYYY-MM-DD
	switch part.String() {
	case "YEAR":
		return value.CastInt(value.Str(s[0:4]))
	case "MONTH":
		return value.CastInt(value.Str(s[5:7]))
	case "DAY":
		return value.CastInt(value.Str(s[8:10]))
	}
	return value.Null(), fmt.Errorf("expr: unsupported EXTRACT part %q", part.String())
}

// substr implements SQL SUBSTRING semantics: 1-based start, clamped.
func substr(s string, start, length int64) string {
	if length < 0 {
		length = 0
	}
	// SQL: positions before 1 consume length.
	if start < 1 {
		length += start - 1
		start = 1
	}
	if length <= 0 {
		return ""
	}
	i := start - 1
	if i >= int64(len(s)) {
		return ""
	}
	j := i + length
	if j > int64(len(s)) {
		j = int64(len(s))
	}
	return s[i:j]
}

// evalBloomContains implements the BLOOM_CONTAINS extension (paper's
// Suggestion 3: bitwise Bloom probe instead of the '0'/'1' string hack).
//
//	BLOOM_CONTAINS(bitsHex, m, n, a1, b1, a2, b2, ..., x)
//
// bitsHex is the bit array hex-encoded (bit i = byte i/8, LSB first);
// m is the bit-array length, n the hash prime, then k (a,b) pairs, and the
// final argument is the probed integer expression.
func (ev *Evaluator) evalBloomContains(t *sqlparse.Call, env Env) (value.Value, error) {
	if len(t.Args) < 6 || len(t.Args)%2 != 0 {
		return value.Null(), fmt.Errorf("expr: BLOOM_CONTAINS(bitsHex, m, n, a1, b1, ..., x)")
	}
	bits, ok := ev.bloomCache[t]
	if !ok {
		lit, isLit := t.Args[0].(*sqlparse.Literal)
		if !isLit || lit.Val.Kind() != value.KindString {
			return value.Null(), fmt.Errorf("expr: BLOOM_CONTAINS bits must be a string literal")
		}
		var err error
		bits, err = hex.DecodeString(lit.Val.AsString())
		if err != nil {
			return value.Null(), fmt.Errorf("expr: BLOOM_CONTAINS bad hex: %w", err)
		}
		ev.bloomCache[t] = bits
	}
	geti := func(e sqlparse.Expr) (int64, error) {
		v, err := ev.Eval(e, env)
		if err != nil {
			return 0, err
		}
		i, ok := v.IntNum()
		if !ok {
			return 0, fmt.Errorf("expr: BLOOM_CONTAINS numeric argument expected")
		}
		return i, nil
	}
	m, err := geti(t.Args[1])
	if err != nil {
		return value.Null(), err
	}
	n, err := geti(t.Args[2])
	if err != nil {
		return value.Null(), err
	}
	xv, err := ev.Eval(t.Args[len(t.Args)-1], env)
	if err != nil {
		return value.Null(), err
	}
	if xv.IsNull() {
		return value.Null(), nil
	}
	x, ok := xv.IntNum()
	if !ok {
		return value.Bool(false), nil
	}
	for i := 3; i+1 < len(t.Args)-1; i += 2 {
		a, err := geti(t.Args[i])
		if err != nil {
			return value.Null(), err
		}
		b, err := geti(t.Args[i+1])
		if err != nil {
			return value.Null(), err
		}
		pos := ((a*x + b) % n) % m
		if pos < 0 {
			pos += m
		}
		if int(pos/8) >= len(bits) || bits[pos/8]&(1<<uint(pos%8)) == 0 {
			return value.Bool(false), nil
		}
	}
	return value.Bool(true), nil
}
