package expr

import (
	"fmt"
	"math"
	"math/big"

	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/value"
)

// AggState accumulates one aggregate function over a stream of rows.
//
// Float sums accumulate exactly (a high-precision big.Float holds the
// exact sum of any set of float64s, rounding once at Final), so the
// result is independent of accumulation and merge order — the property
// the worker-parallel operators and partition-parallel scans rely on for
// byte-identical results at any parallelism.
type AggState struct {
	fn      sqlparse.AggFunc
	count   int64
	sumI    int64
	sumF    *big.Float // exact finite sum; non-nil once a float arrives
	tmp     big.Float  // reusable operand, keeps the hot path allocation-free
	isFloat bool
	sumNaN  bool // a NaN entered the sum (or infinities of mixed sign)
	sumInf  int  // -1 or +1 once an infinity entered the sum
	minV    value.Value
	maxV    value.Value
	seen    bool
}

// sumPrec comfortably covers the exact sum of float64s: the full exponent
// range (~2098 bits from the smallest subnormal ulp to the largest
// magnitude) plus headroom for the running count.
const sumPrec = 2200

// addFloat folds one float64 into the exact sum, promoting an integer
// accumulator on first use and tracking non-finite inputs separately
// (big.Float has no NaN, and opposite infinities must yield NaN).
func (a *AggState) addFloat(f float64) {
	if !a.isFloat {
		a.isFloat = true
		a.sumF = new(big.Float).SetPrec(sumPrec).SetInt64(a.sumI)
		a.sumI = 0
	}
	switch {
	case math.IsNaN(f):
		a.sumNaN = true
	case math.IsInf(f, 0):
		s := 1
		if f < 0 {
			s = -1
		}
		if a.sumInf != 0 && a.sumInf != s {
			a.sumNaN = true
		}
		a.sumInf = s
	default:
		a.sumF.Add(a.sumF, a.tmp.SetFloat64(f))
	}
}

// floatSum rounds the exact accumulator to the float64 result.
func (a *AggState) floatSum() float64 {
	switch {
	case a.sumNaN:
		return math.NaN()
	case a.sumInf != 0:
		return math.Inf(a.sumInf)
	default:
		f, _ := a.sumF.Float64()
		return f
	}
}

// NewAggState returns an accumulator for fn.
func NewAggState(fn sqlparse.AggFunc) *AggState { return &AggState{fn: fn} }

// Add folds one input value into the accumulator. NULLs are ignored, per
// SQL semantics (COUNT(*) callers pass a non-NULL marker).
func (a *AggState) Add(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	a.count++
	switch a.fn {
	case sqlparse.AggCount:
		return nil
	case sqlparse.AggSum, sqlparse.AggAvg:
		switch v.Kind() {
		case value.KindInt:
			if a.isFloat {
				a.sumF.Add(a.sumF, a.tmp.SetInt64(v.AsInt()))
			} else {
				a.sumI += v.AsInt()
			}
		case value.KindFloat:
			a.addFloat(v.AsFloat())
		case value.KindString:
			f, err := value.CastFloat(v)
			if err != nil {
				return fmt.Errorf("expr: SUM over non-numeric %q", v.AsString())
			}
			a.addFloat(f.AsFloat())
		default:
			return fmt.Errorf("expr: SUM over %s", v.Kind())
		}
	case sqlparse.AggMin:
		if !a.seen || value.Compare(v, a.minV) < 0 {
			a.minV = v
		}
	case sqlparse.AggMax:
		if !a.seen || value.Compare(v, a.maxV) > 0 {
			a.maxV = v
		}
	}
	a.seen = true
	return nil
}

// Merge combines another accumulator of the same function (used when
// partition-parallel scans each keep a local state).
func (a *AggState) Merge(b *AggState) error {
	if a.fn != b.fn {
		return fmt.Errorf("expr: merging mismatched aggregates")
	}
	a.count += b.count
	switch a.fn {
	case sqlparse.AggSum, sqlparse.AggAvg:
		if b.isFloat && !a.isFloat {
			a.isFloat = true
			a.sumF = new(big.Float).SetPrec(sumPrec).SetInt64(a.sumI)
			a.sumI = 0
		}
		if a.isFloat {
			if b.isFloat {
				a.sumF.Add(a.sumF, b.sumF)
				a.sumNaN = a.sumNaN || b.sumNaN
				if b.sumInf != 0 {
					if a.sumInf != 0 && a.sumInf != b.sumInf {
						a.sumNaN = true
					}
					a.sumInf = b.sumInf
				}
			} else {
				a.sumF.Add(a.sumF, a.tmp.SetInt64(b.sumI))
			}
		} else {
			a.sumI += b.sumI
		}
	case sqlparse.AggMin:
		if b.seen && (!a.seen || value.Compare(b.minV, a.minV) < 0) {
			a.minV = b.minV
		}
	case sqlparse.AggMax:
		if b.seen && (!a.seen || value.Compare(b.maxV, a.maxV) > 0) {
			a.maxV = b.maxV
		}
	}
	if b.seen {
		a.seen = true
	}
	return nil
}

// Final returns the aggregate result. Empty input yields NULL for all
// functions except COUNT, which yields 0.
func (a *AggState) Final() value.Value {
	switch a.fn {
	case sqlparse.AggCount:
		return value.Int(a.count)
	case sqlparse.AggSum:
		if a.count == 0 {
			return value.Null()
		}
		if a.isFloat {
			return value.Float(a.floatSum())
		}
		return value.Int(a.sumI)
	case sqlparse.AggAvg:
		if a.count == 0 {
			return value.Null()
		}
		s := float64(a.sumI)
		if a.isFloat {
			s = a.floatSum()
		}
		return value.Float(s / float64(a.count))
	case sqlparse.AggMin:
		if !a.seen {
			return value.Null()
		}
		return a.minV
	case sqlparse.AggMax:
		if !a.seen {
			return value.Null()
		}
		return a.maxV
	}
	return value.Null()
}

// CollectAggregates extracts every Aggregate node under the given
// expressions, in evaluation order. The same node appearing twice (shared
// subtree) is returned once.
func CollectAggregates(exprs []sqlparse.Expr) []*sqlparse.Aggregate {
	var out []*sqlparse.Aggregate
	seen := map[*sqlparse.Aggregate]bool{}
	var walk func(sqlparse.Expr)
	walk = func(e sqlparse.Expr) {
		switch t := e.(type) {
		case *sqlparse.Aggregate:
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		case *sqlparse.Binary:
			walk(t.L)
			walk(t.R)
		case *sqlparse.Unary:
			walk(t.X)
		case *sqlparse.Case:
			for _, w := range t.Whens {
				walk(w.Cond)
				walk(w.Result)
			}
			if t.Else != nil {
				walk(t.Else)
			}
		case *sqlparse.Cast:
			walk(t.X)
		case *sqlparse.Call:
			for _, a := range t.Args {
				walk(a)
			}
		case *sqlparse.Between:
			walk(t.X)
			walk(t.Lo)
			walk(t.Hi)
		case *sqlparse.In:
			walk(t.X)
			for _, a := range t.List {
				walk(a)
			}
		case *sqlparse.Like:
			walk(t.X)
			walk(t.Pattern)
		case *sqlparse.IsNull:
			walk(t.X)
		}
	}
	for _, e := range exprs {
		walk(e)
	}
	return out
}

// AggRunner evaluates a set of aggregate expressions over a row stream:
// the arguments of each aggregate are evaluated per row, and Final
// substitutes aggregate results back into the wrapping expressions.
type AggRunner struct {
	ev     *Evaluator
	aggs   []*sqlparse.Aggregate
	states []*AggState
}

// NewAggRunner builds a runner for the aggregates found in items.
func NewAggRunner(ev *Evaluator, items []sqlparse.Expr) *AggRunner {
	aggs := CollectAggregates(items)
	states := make([]*AggState, len(aggs))
	for i, a := range aggs {
		states[i] = NewAggState(a.Func)
	}
	return &AggRunner{ev: ev, aggs: aggs, states: states}
}

// Aggregates exposes the aggregate nodes (for pushdown rewriting).
func (r *AggRunner) Aggregates() []*sqlparse.Aggregate { return r.aggs }

// States exposes the accumulators (for merging partition-local runners).
func (r *AggRunner) States() []*AggState { return r.states }

// Add folds one row into every aggregate.
func (r *AggRunner) Add(env Env) error {
	for i, a := range r.aggs {
		if _, isStar := a.X.(*sqlparse.Star); isStar {
			if err := r.states[i].Add(value.Int(1)); err != nil {
				return err
			}
			continue
		}
		v, err := r.ev.Eval(a.X, env)
		if err != nil {
			return err
		}
		if err := r.states[i].Add(v); err != nil {
			return err
		}
	}
	return nil
}

// Merge combines another runner built over the same expressions.
func (r *AggRunner) Merge(o *AggRunner) error {
	if len(o.states) != len(r.states) {
		return fmt.Errorf("expr: merging mismatched agg runners")
	}
	for i := range r.states {
		if err := r.states[i].Merge(o.states[i]); err != nil {
			return err
		}
	}
	return nil
}

// Final evaluates item with every aggregate replaced by its result.
func (r *AggRunner) Final(item sqlparse.Expr, env Env) (value.Value, error) {
	vals := make(map[*sqlparse.Aggregate]value.Value, len(r.aggs))
	for i, a := range r.aggs {
		vals[a] = r.states[i].Final()
	}
	saved := r.ev.AggValues
	r.ev.AggValues = vals
	defer func() { r.ev.AggValues = saved }()
	return r.ev.Eval(item, env)
}
