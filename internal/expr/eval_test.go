package expr

import (
	"strings"
	"testing"
	"testing/quick"

	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/value"
)

func evalStr(t *testing.T, src string, env Env) value.Value {
	t.Helper()
	e, err := sqlparse.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := New().Eval(e, env)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func evalErr(t *testing.T, src string, env Env) error {
	t.Helper()
	e, err := sqlparse.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	_, err = New().Eval(e, env)
	return err
}

func TestArithmetic(t *testing.T) {
	cases := map[string]value.Value{
		"1 + 2":           value.Int(3),
		"7 - 10":          value.Int(-3),
		"6 * 7":           value.Int(42),
		"7 / 2":           value.Int(3),
		"7.0 / 2":         value.Float(3.5),
		"7 % 3":           value.Int(1),
		"-7 % 3":          value.Int(2), // non-negative modulo
		"1.5 + 1":         value.Float(2.5),
		"2 * 3 + 4":       value.Int(10),
		"2 + 3 * 4":       value.Int(14),
		"(2 + 3) * 4":     value.Int(20),
		"-(2 + 3)":        value.Int(-5),
		"10 % 4 % 3":      value.Int(2),
		"'5' + 2":         value.Int(7), // CSV string coercion
		"'a' || 'b'":      value.Str("ab"),
		"1 || 'x'":        value.Str("1x"),
		"2.5 % 1":         value.Float(0.5),
		"100.0 * 2 / 400": value.Float(0.5),
	}
	for src, want := range cases {
		got := evalStr(t, src, MapEnv{})
		if got.Kind() != want.Kind() || value.Compare(got, want) != 0 {
			t.Errorf("%s = %v (%v), want %v (%v)", src, got, got.Kind(), want, want.Kind())
		}
	}
}

func TestArithmeticErrors(t *testing.T) {
	for _, src := range []string{"1 / 0", "1 % 0", "1.0 / 0", "'a' + 1"} {
		if evalErr(t, src, MapEnv{}) == nil {
			t.Errorf("%s: expected error", src)
		}
	}
}

func TestComparisons(t *testing.T) {
	env := MapEnv{"a": value.Int(5), "s": value.Str("BUILDING"), "d": value.DateFromYMD(1994, 6, 1)}
	trueCases := []string{
		"a = 5", "a != 4", "a <> 4", "a < 6", "a <= 5", "a > 4", "a >= 5",
		"s = 'BUILDING'", "d < DATE '1995-01-01'", "d >= DATE '1994-01-01'",
		"a BETWEEN 1 AND 5", "a IN (3, 4, 5)", "a NOT IN (1, 2)",
		"s LIKE 'BUILD%'", "s LIKE '%ING'", "s LIKE 'B_ILDING'", "s NOT LIKE 'X%'",
		"NOT (a = 4)", "a = 5 AND s = 'BUILDING'", "a = 4 OR s = 'BUILDING'",
	}
	for _, src := range trueCases {
		if v := evalStr(t, src, env); !value.Truthy(v) {
			t.Errorf("%s should be true, got %v", src, v)
		}
	}
	falseCases := []string{"a = 4", "a BETWEEN 6 AND 9", "s LIKE 'ING%'", "a NOT BETWEEN 1 AND 9"}
	for _, src := range falseCases {
		if v := evalStr(t, src, env); value.Truthy(v) {
			t.Errorf("%s should be false", src)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	env := MapEnv{"n": value.Null(), "t": value.Bool(true), "f": value.Bool(false)}
	if v := evalStr(t, "n = 1", env); !v.IsNull() {
		t.Error("NULL = 1 should be NULL")
	}
	if v := evalStr(t, "f AND n = 1", env); v.Kind() != value.KindBool || v.AsBool() {
		t.Errorf("FALSE AND NULL = %v, want FALSE", v)
	}
	if v := evalStr(t, "t OR n = 1", env); !value.Truthy(v) {
		t.Error("TRUE OR NULL should be TRUE")
	}
	if v := evalStr(t, "t AND n = 1", env); !v.IsNull() {
		t.Error("TRUE AND NULL should be NULL")
	}
	if v := evalStr(t, "n IS NULL", env); !value.Truthy(v) {
		t.Error("NULL IS NULL should be true")
	}
	if v := evalStr(t, "t IS NOT NULL", env); !value.Truthy(v) {
		t.Error("TRUE IS NOT NULL should be true")
	}
	if v := evalStr(t, "NOT n = 1", env); !v.IsNull() {
		t.Error("NOT NULL should be NULL")
	}
}

func TestCase(t *testing.T) {
	env := MapEnv{"g": value.Int(1), "v": value.Float(2.5)}
	got := evalStr(t, "CASE WHEN g = 0 THEN 0 WHEN g = 1 THEN v ELSE -1 END", env)
	if got.AsFloat() != 2.5 {
		t.Errorf("case = %v", got)
	}
	got = evalStr(t, "CASE WHEN g = 9 THEN 1 END", env)
	if !got.IsNull() {
		t.Errorf("case without else should be NULL, got %v", got)
	}
}

func TestCasts(t *testing.T) {
	env := MapEnv{"s": value.Str("42")}
	if v := evalStr(t, "CAST(s AS INT)", env); v.AsInt() != 42 {
		t.Errorf("cast = %v", v)
	}
	if v := evalStr(t, "CAST('1994-01-01' AS TIMESTAMP)", env); v.Kind() != value.KindDate {
		t.Errorf("cast to date = %v", v)
	}
	if v := evalStr(t, "CAST(42 AS STRING)", env); v.AsString() != "42" {
		t.Errorf("cast to string = %v", v)
	}
}

func TestStringFuncs(t *testing.T) {
	env := MapEnv{"s": value.Str("hello")}
	cases := map[string]string{
		"SUBSTRING(s, 2, 3)":  "ell",
		"SUBSTRING(s, 1, 1)":  "h",
		"SUBSTRING(s, 4)":     "lo",
		"SUBSTRING(s, 0, 2)":  "h", // start before 1 consumes length
		"SUBSTRING(s, 99, 2)": "",
		"SUBSTRING(s, 2, 0)":  "",
		"UPPER(s)":            "HELLO",
		"LOWER('ABC')":        "abc",
		"TRIM('  x  ')":       "x",
		"SUBSTRING('10011', ((3 * 4 + 1) % 7) % 5 + 1, 1)": "0", // bloom-style probe: ((13%7)%5)+1 = 2
		"SUBSTRING('10011', ((3 * 4 + 2) % 7) % 5 + 1, 1)": "1", // ((14%7)%5)+1 = 1
		"SUBSTRING('10011', ((3 * 1 + 0) % 7) % 5 + 1, 1)": "1", // position 4
	}
	for src, want := range cases {
		if got := evalStr(t, src, env).String(); got != want {
			t.Errorf("%s = %q, want %q", src, got, want)
		}
	}
	if v := evalStr(t, "LENGTH(s)", env); v.AsInt() != 5 {
		t.Errorf("LENGTH = %v", v)
	}
	if v := evalStr(t, "ABS(-3)", env); v.AsInt() != 3 {
		t.Errorf("ABS = %v", v)
	}
	if v := evalStr(t, "ABS(-2.5)", env); v.AsFloat() != 2.5 {
		t.Errorf("ABS float = %v", v)
	}
}

func TestUnknownColumnAndFunction(t *testing.T) {
	if evalErr(t, "nosuch + 1", MapEnv{}) == nil {
		t.Error("unknown column should error")
	}
	if evalErr(t, "NOSUCHFN(1)", MapEnv{}) == nil {
		t.Error("unknown function should error")
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"%", "", true},
		{"%", "anything", true},
		{"a%", "abc", true},
		{"%c", "abc", true},
		{"a%c", "abc", true},
		{"a%c", "ac", true},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"%PROMO%", "xxPROMOyy", true},
		{"%PROMO%", "PROM", false},
		{"%a%b%", "xaybz", true},
		{"", "", true},
		{"", "x", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.pat, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}

func TestAggStates(t *testing.T) {
	sum := NewAggState(sqlparse.AggSum)
	for _, v := range []value.Value{value.Int(1), value.Int(2), value.Null(), value.Int(3)} {
		if err := sum.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if got := sum.Final(); got.AsInt() != 6 {
		t.Errorf("sum = %v", got)
	}

	sumF := NewAggState(sqlparse.AggSum)
	_ = sumF.Add(value.Int(1))
	_ = sumF.Add(value.Float(0.5))
	if got := sumF.Final(); got.AsFloat() != 1.5 {
		t.Errorf("mixed sum = %v", got)
	}

	avg := NewAggState(sqlparse.AggAvg)
	for i := 1; i <= 4; i++ {
		_ = avg.Add(value.Int(int64(i)))
	}
	if got := avg.Final(); got.AsFloat() != 2.5 {
		t.Errorf("avg = %v", got)
	}

	count := NewAggState(sqlparse.AggCount)
	_ = count.Add(value.Int(9))
	_ = count.Add(value.Null())
	if got := count.Final(); got.AsInt() != 1 {
		t.Errorf("count skips NULL: %v", got)
	}

	mn, mx := NewAggState(sqlparse.AggMin), NewAggState(sqlparse.AggMax)
	for _, v := range []value.Value{value.Float(3), value.Float(-1), value.Float(7)} {
		_ = mn.Add(v)
		_ = mx.Add(v)
	}
	if mn.Final().AsFloat() != -1 || mx.Final().AsFloat() != 7 {
		t.Errorf("min/max = %v/%v", mn.Final(), mx.Final())
	}

	empty := NewAggState(sqlparse.AggSum)
	if !empty.Final().IsNull() {
		t.Error("SUM of empty is NULL")
	}
	emptyCount := NewAggState(sqlparse.AggCount)
	if emptyCount.Final().AsInt() != 0 {
		t.Error("COUNT of empty is 0")
	}
}

func TestAggMerge(t *testing.T) {
	a, b := NewAggState(sqlparse.AggSum), NewAggState(sqlparse.AggSum)
	_ = a.Add(value.Int(10))
	_ = b.Add(value.Float(2.5))
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Final(); got.AsFloat() != 12.5 {
		t.Errorf("merged sum = %v", got)
	}

	mn1, mn2 := NewAggState(sqlparse.AggMin), NewAggState(sqlparse.AggMin)
	_ = mn2.Add(value.Int(-5))
	if err := mn1.Merge(mn2); err != nil {
		t.Fatal(err)
	}
	if got := mn1.Final(); got.AsInt() != -5 {
		t.Errorf("merged min = %v", got)
	}

	if err := mn1.Merge(NewAggState(sqlparse.AggMax)); err == nil {
		t.Error("mismatched merge should fail")
	}
}

func TestAggRunnerExpressionOverAggregates(t *testing.T) {
	// Q14 shape: 100.0 * SUM(CASE ...) / SUM(x)
	sel, err := sqlparse.Parse("SELECT 100.0 * SUM(CASE WHEN promo = 1 THEN v ELSE 0 END) / SUM(v) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	ev := New()
	items := []sqlparse.Expr{sel.Items[0].Expr}
	r := NewAggRunner(ev, items)
	rows := []MapEnv{
		{"promo": value.Int(1), "v": value.Float(10)},
		{"promo": value.Int(0), "v": value.Float(30)},
	}
	for _, row := range rows {
		if err := r.Add(row); err != nil {
			t.Fatal(err)
		}
	}
	got, err := r.Final(items[0], MapEnv{})
	if err != nil {
		t.Fatal(err)
	}
	if got.AsFloat() != 25 {
		t.Errorf("promo revenue = %v, want 25", got)
	}
}

func TestAggRunnerCountStarAndMerge(t *testing.T) {
	sel, _ := sqlparse.Parse("SELECT COUNT(*), SUM(v) FROM t")
	ev := New()
	items := []sqlparse.Expr{sel.Items[0].Expr, sel.Items[1].Expr}
	r1, r2 := NewAggRunner(ev, items), NewAggRunner(ev, items)
	if len(r1.Aggregates()) != 2 {
		t.Fatalf("aggregates = %d", len(r1.Aggregates()))
	}
	// Different runners over same exprs share the same agg nodes, so merge works.
	_ = r1.Add(MapEnv{"v": value.Int(1)})
	_ = r2.Add(MapEnv{"v": value.Int(2)})
	_ = r2.Add(MapEnv{"v": value.Null()})
	if err := r1.Merge(r2); err != nil {
		t.Fatal(err)
	}
	cnt, _ := r1.Final(items[0], MapEnv{})
	sum, _ := r1.Final(items[1], MapEnv{})
	if cnt.AsInt() != 3 || sum.AsInt() != 3 {
		t.Errorf("count=%v sum=%v", cnt, sum)
	}
}

func TestBloomContains(t *testing.T) {
	// bit array of m=16 bits: set bits {1, 5, 9}; hex bytes LSB-first:
	// byte0 bits 1,5 -> 0b00100010 = 0x22; byte1 bit 1 (bit 9) -> 0x02.
	env := MapEnv{"x": value.Int(4)}
	// one hash: ((1*x + 1) % 17) % 16 -> x=4 gives 5 (set), x=5 gives 6 (unset)
	src := "BLOOM_CONTAINS('2202', 16, 17, 1, 1, x)"
	if v := evalStr(t, src, env); !value.Truthy(v) {
		t.Errorf("x=4 should pass")
	}
	env["x"] = value.Int(5)
	if v := evalStr(t, src, env); value.Truthy(v) {
		t.Errorf("x=5 should fail")
	}
	// Invalid hex errors.
	if evalErr(t, "BLOOM_CONTAINS('zz', 16, 17, 1, 1, x)", env) == nil {
		t.Error("bad hex should error")
	}
	if evalErr(t, "BLOOM_CONTAINS('22', 16)", env) == nil {
		t.Error("short arg list should error")
	}
}

func TestEvalBool(t *testing.T) {
	e, _ := sqlparse.ParseExpr("1 = 1")
	ok, err := New().EvalBool(e, MapEnv{})
	if err != nil || !ok {
		t.Errorf("EvalBool = %v, %v", ok, err)
	}
}

// Property: likeMatch with pattern == string (no wildcards) is equality.
func TestQuickLikeExact(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "%_") {
			return true
		}
		return likeMatch(s, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: 'prefix%' matches any extension of prefix.
func TestQuickLikePrefix(t *testing.T) {
	f := func(prefix, rest string) bool {
		if strings.ContainsAny(prefix, "%_") {
			return true
		}
		return likeMatch(prefix+"%", prefix+rest)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: integer modulo in the dialect is always in [0, divisor).
func TestQuickModuloNonNegative(t *testing.T) {
	f := func(x int32, d uint8) bool {
		div := int64(d%100) + 1
		got, err := evalArith(sqlparse.OpMod, value.Int(int64(x)), value.Int(div))
		if err != nil {
			return false
		}
		return got.AsInt() >= 0 && got.AsInt() < div
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
