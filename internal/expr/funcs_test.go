package expr

import (
	"testing"

	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/value"
)

func TestExtract(t *testing.T) {
	env := MapEnv{"d": value.DateFromYMD(1995, 3, 17), "s": value.Str("1997-12-05")}
	cases := map[string]int64{
		"EXTRACT(YEAR FROM d)":  1995,
		"EXTRACT(MONTH FROM d)": 3,
		"EXTRACT(DAY FROM d)":   17,
		"EXTRACT(YEAR FROM s)":  1997, // CSV string form accepted
		"EXTRACT(MONTH FROM s)": 12,
	}
	for src, want := range cases {
		if got := evalStr(t, src, env); got.AsInt() != want {
			t.Errorf("%s = %v, want %d", src, got, want)
		}
	}
	if v := evalStr(t, "EXTRACT(YEAR FROM NULL)", env); !v.IsNull() {
		t.Error("EXTRACT over NULL should be NULL")
	}
	if evalErr(t, "EXTRACT(YEAR FROM 'junk')", env) == nil {
		t.Error("EXTRACT over non-date should error")
	}
}

func TestExtractParseAndRender(t *testing.T) {
	e, err := sqlparse.ParseExpr("EXTRACT(YEAR FROM o_orderdate) = 1997")
	if err != nil {
		t.Fatal(err)
	}
	rendered := e.String()
	if rendered != "(EXTRACT(YEAR FROM o_orderdate) = 1997)" {
		t.Errorf("render = %q", rendered)
	}
	// Render/reparse fixed point.
	again, err := sqlparse.ParseExpr(rendered)
	if err != nil || again.String() != rendered {
		t.Errorf("reparse: %v, %q", err, again)
	}
	// Bad parts rejected at parse time.
	if _, err := sqlparse.ParseExpr("EXTRACT(HOUR FROM d)"); err == nil {
		t.Error("unsupported EXTRACT part should fail to parse")
	}
	if _, err := sqlparse.ParseExpr("EXTRACT(YEAR d)"); err == nil {
		t.Error("EXTRACT without FROM should fail to parse")
	}
}

func TestCoalesce(t *testing.T) {
	env := MapEnv{"n": value.Null(), "x": value.Int(7)}
	if v := evalStr(t, "COALESCE(n, n, x, 9)", env); v.AsInt() != 7 {
		t.Errorf("COALESCE = %v", v)
	}
	if v := evalStr(t, "COALESCE(n, n)", env); !v.IsNull() {
		t.Errorf("all-NULL COALESCE = %v", v)
	}
	if v := evalStr(t, "COALESCE(1, x)", env); v.AsInt() != 1 {
		t.Errorf("COALESCE short-circuit = %v", v)
	}
}

func TestNullIf(t *testing.T) {
	env := MapEnv{"x": value.Int(5)}
	if v := evalStr(t, "NULLIF(x, 5)", env); !v.IsNull() {
		t.Errorf("NULLIF equal = %v", v)
	}
	if v := evalStr(t, "NULLIF(x, 6)", env); v.AsInt() != 5 {
		t.Errorf("NULLIF unequal = %v", v)
	}
	if evalErr(t, "NULLIF(x)", env) == nil {
		t.Error("NULLIF arity should error")
	}
	// Division-by-zero guard idiom.
	if v := evalStr(t, "COALESCE(10 / NULLIF(0, 0), -1)", env); v.AsInt() != -1 {
		t.Errorf("guarded division = %v", v)
	}
}
