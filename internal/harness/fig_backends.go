package harness

import (
	"context"
	"fmt"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/engine"
	"pushdowndb/internal/s3api"
)

// BackendProfiles is the storage-tier sweep of the Backends figure: the
// same TPC-H data served from a local NVMe tier, in-region S3 (the
// paper's testbed), cross-region S3, and a congested thin-WAN remote.
// Each profile is what an s3api.Backend of that class advertises.
func BackendProfiles() []cloudsim.Profile {
	return []cloudsim.Profile{
		cloudsim.LocalFSProfile(),
		cloudsim.S3Profile(),
		cloudsim.CrossRegionS3Profile(),
		{
			Name:               "thin-wan",
			NetworkBytesPerSec: 2e6,
			RequestRTTSec:      0.05,
			RequestPer1000:     0.0004,
			ScanPerGB:          0.002,
			ReturnPerGB:        0.0007,
			TransferPerGB:      0.09,
		},
	}
}

// RunBackends shows the planner reacting to the storage backend: the
// Listing-2 join is planned and executed against backends advertising the
// BackendProfiles sweep, at the loosest Fig. 2 customer filter and the
// full 32-core worker budget (where the baseline-vs-Bloom decision is
// closest — a parallel server can out-parse a fast link's full-table
// loads). Fast, free tiers make the baseline full-load join cheapest;
// thin metered links flip the choice to the Bloom pushdown, because no
// amount of server parallelism speeds up the wire and shrinking the
// probe-side transfer saves real seconds and egress dollars. Every
// backend must still produce the same answer — only the strategy and the
// bill move.
func RunBackends(ctx context.Context, env *Env) (*Result, error) {
	res := &Result{
		ID:     "Backends",
		Title:  "Join strategy choice vs storage backend (Listing-2 join, loosest filter)",
		XLabel: "backend",
	}
	acctbal := Fig2Acctbals[len(Fig2Acctbals)-1]
	sql := fmt.Sprintf(
		"SELECT SUM(o.o_totalprice) AS total, COUNT(*) AS n "+
			"FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey "+
			"WHERE c.c_acctbal <= %s", acctbal)

	var refCount int64
	seen := map[string]bool{}
	for _, profile := range BackendProfiles() {
		db, err := env.TPCH(ctx, s3api.WithProfile(profile))
		if err != nil {
			return nil, err
		}
		// Full worker budget: server-side parse and row work run across
		// all 32 cores, so the backend link is what differentiates.
		db.Cfg.Workers = db.Cfg.Cores
		rel, e, err := db.QueryContext(ctx, sql)
		if err != nil {
			return nil, fmt.Errorf("harness: backends on %s: %w", profile.Name, err)
		}
		plan := e.QueryPlan()
		if plan == nil || len(plan.Steps) != 1 {
			return nil, fmt.Errorf("harness: backends on %s produced no join plan", profile.Name)
		}
		step := plan.Steps[0]
		seen[step.Strategy] = true

		n, _ := rel.Rows[0][1].IntNum()
		if refCount == 0 {
			refCount = n
		} else if n != refCount {
			return nil, fmt.Errorf("harness: backend %s changed the answer: %d rows vs %d",
				profile.Name, n, refCount)
		}

		strategyCode := map[string]float64{
			engine.StrategyBaseline: 0, engine.StrategyBloom: 1,
		}[step.Strategy]
		res.add("Planner ("+step.Strategy+")", profile.Name, e, map[string]float64{
			"bloom":        strategyCode,
			"baseline_est": step.Estimates[engine.StrategyBaseline].Seconds,
			"bloom_est":    step.Estimates[engine.StrategyBloom].Seconds,
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("same Listing-2 join (c_acctbal <= %s) on every backend; answers are identical", acctbal),
		"series name records the strategy chosen per backend profile; est columns are its per-strategy runtime estimates",
		fmt.Sprintf("distinct strategies chosen across backends: %d", len(seen)))
	return res, nil
}
