package harness

import (
	"context"
	"fmt"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/engine"
)

// RunS5Pricing is the Suggestion-5 ablation: re-price representative
// scan-heavy queries under computation-aware pricing, where a scan's
// per-GB charge reflects how much storage-side computation it actually
// performed. The paper argues flat per-GB scan pricing overcharges simple
// queries (Section X, Suggestion 5: "data scan costs dominate a majority
// of queries ... the current pricing model may have overcharged").
func RunS5Pricing(ctx context.Context, env *Env) (*Result, error) {
	db, err := env.TPCH(ctx)
	if err != nil {
		return nil, err
	}
	capPricing := cloudsim.DefaultComputationAwarePricing()
	res := &Result{
		ID:     "S5",
		Title:  "Flat vs computation-aware scan pricing (Suggestion 5)",
		XLabel: "query",
	}
	cases := []struct {
		name string
		run  func() (*engine.Exec, int64, error) // exec, approx nodes/row
	}{
		{
			name: "plain projection",
			run: func() (*engine.Exec, int64, error) {
				e := db.NewExecContext(ctx)
				_, err := e.S3SideFilter("lineitem", "", "l_orderkey")
				return e, 2, err
			},
		},
		{
			name: "simple filter",
			run: func() (*engine.Exec, int64, error) {
				e := db.NewExecContext(ctx)
				_, err := e.S3SideFilter("lineitem", "l_quantity < 10", "l_orderkey, l_quantity")
				return e, 7, err
			},
		},
		{
			name: "bloom probe",
			run: func() (*engine.Exec, int64, error) {
				e := db.NewExecContext(ctx)
				_, err := e.JoinAggregate(listing2Spec("-950", "", 0.01), "bloom", joinAggItems)
				return e, 95, err
			},
		},
	}
	for _, c := range cases {
		e, nodes, err := c.run()
		if err != nil {
			return nil, fmt.Errorf("harness: S5 %s: %w", c.name, err)
		}
		flat := e.Cost()
		aware := e.Metrics.CostComputationAware(capPricing, float64(nodes))
		res.Points = append(res.Points,
			Point{Series: "Flat Pricing", X: c.name, RuntimeSec: e.RuntimeSeconds(), Cost: flat},
			Point{Series: "Computation-Aware", X: c.name, RuntimeSec: e.RuntimeSeconds(), Cost: aware,
				Extra: map[string]float64{"scanDiscountPct": 100 * (1 - aware.ScanUSD/maxPos(flat.ScanUSD))}},
		)
	}
	res.Notes = append(res.Notes,
		"computation-aware pricing discounts light scans; heavy expressions (large Bloom filters) converge to list price")
	return res, nil
}

func maxPos(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return x
}
