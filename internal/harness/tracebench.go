package harness

import (
	"context"
	"fmt"

	"pushdowndb/internal/engine"
	"pushdowndb/internal/obs"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/store"
	"pushdowndb/internal/tpch"
)

// The tracing-overhead benchmark: one query run end to end with and
// without an obs.Trace in context, shared by the root bench_vec_test.go
// (go test -bench=BenchmarkTraceOverhead) and cmd/benchvec -check, which
// gates the traced/untraced ratio. The query is a pushed filter +
// aggregate over lineitem — enough span traffic (per-partition selects, a
// decode, local operators) to expose per-span cost, small enough that the
// benchmark stays in milliseconds at smoke scale.

// TraceBenchFixture holds an open engine over the TPC-H fixture plus the
// query the overhead comparison runs.
type TraceBenchFixture struct {
	DB  *engine.DB
	SQL string
}

// NewTraceBenchFixture generates the TPC-H tables at sf (deterministic
// seed 42, 4 partitions) and opens an engine over them.
func NewTraceBenchFixture(ctx context.Context, sf float64) (*TraceBenchFixture, error) {
	st := store.New()
	ds, err := tpch.Load(ctx, st, tpch.Dataset{SF: sf, Seed: 42, Bucket: "tracebench", Partitions: 4})
	if err != nil {
		return nil, err
	}
	db, err := engine.Open(ds.Bucket, engine.WithBackend("s3sim", s3api.NewInProc(st)))
	if err != nil {
		return nil, err
	}
	sql := "SELECT l_returnflag, COUNT(*) AS n, SUM(l_quantity) AS qty " +
		"FROM lineitem WHERE l_quantity < 24 GROUP BY l_returnflag"
	return &TraceBenchFixture{DB: db, SQL: sql}, nil
}

// Run executes the fixture query once, with a trace in context when traced
// is set, and returns the output row count (the cross-path checksum).
func (f *TraceBenchFixture) Run(ctx context.Context, traced bool) (int, error) {
	if traced {
		tr := obs.New("tracebench", "query")
		ctx = obs.WithTrace(ctx, tr)
		defer tr.Finish()
	}
	rel, _, err := f.DB.QueryContext(ctx, f.SQL)
	if err != nil {
		return 0, err
	}
	return len(rel.Rows), nil
}

// TraceBenchVerify runs the query through both modes and errors unless the
// outputs agree and the traced run actually produced a span tree.
func (f *TraceBenchFixture) TraceBenchVerify(ctx context.Context) error {
	off, err := f.Run(ctx, false)
	if err != nil {
		return fmt.Errorf("untraced: %w", err)
	}
	on, err := f.Run(ctx, true)
	if err != nil {
		return fmt.Errorf("traced: %w", err)
	}
	if off != on {
		return fmt.Errorf("untraced run returned %d rows, traced %d", off, on)
	}
	tr := obs.New("tracebench-verify", "query")
	if _, _, err := f.DB.QueryContext(obs.WithTrace(ctx, tr), f.SQL); err != nil {
		return err
	}
	tr.Finish()
	d := tr.Snapshot()
	if d == nil || len(d.Root.Children) == 0 {
		return fmt.Errorf("traced run produced no spans — the overhead comparison would be vacuous")
	}
	return nil
}
