package harness

import (
	"context"
	"fmt"

	"pushdowndb/internal/engine"
	"pushdowndb/internal/tpch"
)

// fig8K scales the paper's K=100 (over 60M rows) to the generated
// lineitem's row count, keeping K << N so the sampling optimum is interior.
func fig8K(env *Env) int {
	n := approxLineitemRows(env)
	k := n / 500
	if k < 25 {
		k = 25
	}
	return k
}

func approxLineitemRows(env *Env) int {
	// GenLineitems averages 4 lines per order.
	return tpch.SizesFor(env.Scale.TPCHSF).Orders * 4
}

// RunFig8 reproduces Fig. 8: the sampling top-K's runtime split (sampling
// phase vs scanning phase) and bytes returned as the sample size S sweeps
// around the analytic optimum S* = sqrt(KN/alpha).
func RunFig8(ctx context.Context, env *Env) (*Result, error) {
	db, err := env.TPCH(ctx)
	if err != nil {
		return nil, err
	}
	k := fig8K(env)
	n := int64(approxLineitemRows(env))
	sStar := engine.OptimalSampleSize(k, n, 0.1)
	res := &Result{
		ID:     "Fig8",
		Title:  fmt.Sprintf("Sampling top-K vs sample size (K=%d, S*=%d)", k, sStar),
		XLabel: "sample size",
	}
	for _, mult := range []struct {
		label string
		f     float64
	}{
		{"S*/16", 1.0 / 16}, {"S*/4", 1.0 / 4}, {"S*", 1},
		{"4*S*", 4}, {"16*S*", 16},
	} {
		s := int64(float64(sStar) * mult.f)
		if s <= int64(k) {
			s = int64(k) + 1
		}
		if s > n {
			s = n
		}
		e := db.NewExecContext(ctx)
		rel, err := e.SamplingTopK("lineitem", "l_extendedprice", k, true,
			engine.SamplingTopKOptions{SampleSize: s})
		if err != nil {
			return nil, err
		}
		if len(rel.Rows) != k {
			return nil, fmt.Errorf("harness: Fig8 returned %d rows, want %d", len(rel.Rows), k)
		}
		extra := map[string]float64{
			"samplingSec": e.Metrics.PhaseSeconds("sample lineitem"),
			"scanningSec": e.Metrics.PhaseSeconds("threshold scan lineitem"),
			"returnedGB":  float64(e.Metrics.PhaseReturnedBytes("")) / 1e9,
			"S":           float64(s),
		}
		res.add("Sampling Top-K", mult.label, e, extra)
	}
	res.Notes = append(res.Notes,
		"samplingSec/scanningSec are the two bar segments of the paper's Fig. 8a; returnedGB is the line")
	return res, nil
}

// RunFig9 reproduces Fig. 9: server-side vs sampling top-K as K grows.
// The sampling algorithm derives S from the Section VII-B model.
func RunFig9(ctx context.Context, env *Env) (*Result, error) {
	db, err := env.TPCH(ctx)
	if err != nil {
		return nil, err
	}
	n := approxLineitemRows(env)
	res := &Result{
		ID:     "Fig9",
		Title:  "Top-K algorithms vs K",
		XLabel: "K",
	}
	for _, k := range []int{1, 10, 100, 1000} {
		if k >= n/4 {
			break
		}
		x := fmt.Sprint(k)
		e1 := db.NewExecContext(ctx)
		server, err := e1.ServerSideTopK("lineitem", "l_extendedprice", k, true)
		if err != nil {
			return nil, err
		}
		res.add("Server-Side Top-K", x, e1, nil)

		e2 := db.NewExecContext(ctx)
		sampled, err := e2.SamplingTopK("lineitem", "l_extendedprice", k, true,
			engine.SamplingTopKOptions{Alpha: 0.1})
		if err != nil {
			return nil, err
		}
		res.add("Sampling Top-K", x, e2, nil)

		if len(server.Rows) != k || len(sampled.Rows) != k {
			return nil, fmt.Errorf("harness: Fig9 K=%d row counts %d/%d",
				k, len(server.Rows), len(sampled.Rows))
		}
		vi := server.ColIndex("l_extendedprice")
		for i := range server.Rows {
			a, _ := server.Rows[i][vi].Num()
			b, _ := sampled.Rows[i][vi].Num()
			if a != b {
				return nil, fmt.Errorf("harness: Fig9 K=%d row %d differs: %v vs %v", k, i, a, b)
			}
		}
	}
	return res, nil
}

// RunTopKModel validates the Section VII-B analysis: measured bytes
// returned across sample sizes should be minimized near the analytic
// S* = sqrt(KN/alpha).
func RunTopKModel(ctx context.Context, env *Env) (*Result, error) {
	fig8, err := RunFig8(ctx, env)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "TopKModel",
		Title:  "Sampling top-K: analytic optimum vs measured data traffic",
		XLabel: "sample size",
		Points: fig8.Points,
	}
	best, bestVal := "", -1.0
	for _, p := range fig8.Points {
		gb := p.Extra["returnedGB"]
		if bestVal < 0 || gb < bestVal {
			bestVal, best = gb, p.X
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("minimum measured traffic at %s (model predicts S*)", best))
	return res, nil
}
