package harness

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

// TestRunServeWarmBeatsCold is the acceptance check for the Serve figure:
// at every client width of 4 or more, the warm round's simulated cost per
// query must be strictly below the cold round's — the shared result cache
// is the server's economic reason to exist.
func TestRunServeWarmBeatsCold(t *testing.T) {
	env := NewEnv(SmallScale())
	res, err := RunServe(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range serveFigClientCounts {
		cold, ok1 := res.Get("cold", strconv.Itoa(n))
		warm, ok2 := res.Get("warm", strconv.Itoa(n))
		if !ok1 || !ok2 {
			t.Fatalf("missing points at %d clients:\n%s", n, res)
		}
		if n >= 4 && warm.Cost.Total() >= cold.Cost.Total() {
			t.Errorf("%d clients: warm cost/query $%.8f not strictly below cold $%.8f",
				n, warm.Cost.Total(), cold.Cost.Total())
		}
		if warm.Extra["cache_hits"] == 0 {
			t.Errorf("%d clients: warm round recorded no cache hits", n)
		}
		// Diagnostics: the warm hits are real cache hits, not refills that
		// rode a neighbor's in-flight miss — those are counted separately.
		t.Logf("%d clients: warm cache_hits=%.0f inflight_dedup=%.0f",
			n, warm.Extra["cache_hits"], warm.Extra["inflight_dedup"])
	}
	if !strings.Contains(res.String(), "Serve") {
		t.Error("result does not render")
	}
}
