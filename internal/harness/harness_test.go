package harness

import (
	"context"
	"strings"
	"testing"
)

// The harness tests assert the paper's qualitative claims ("shapes") on
// the paper-scale virtual clock: who wins, roughly by what factor, and
// where crossovers fall.

func testEnv(t *testing.T) *Env {
	t.Helper()
	return NewEnv(SmallScale())
}

func point(t *testing.T, r *Result, series, x string) Point {
	t.Helper()
	p, ok := r.Get(series, x)
	if !ok {
		t.Fatalf("%s: missing point (%s, %s)\n%s", r.ID, series, x, r)
	}
	return p
}

func TestFig1Shapes(t *testing.T) {
	env := testEnv(t)
	r, err := RunFig1(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())

	// S3-side filter is ~10x faster than server-side, stable across the
	// sweep (paper: "a dramatic 10x ... remains stable").
	for _, x := range []string{"1e-07", "1e-04", "1e-02"} {
		server := point(t, r, "Server-Side Filter", x)
		s3 := point(t, r, "S3-Side Filter", x)
		speedup := server.RuntimeSec / s3.RuntimeSec
		if speedup < 5 || speedup > 20 {
			t.Errorf("at %s: S3-side speedup %.1fx, paper reports ~10x", x, speedup)
		}
	}
	// Indexing matches S3-side at high selectivity but degrades past 1e-4.
	idxHigh := point(t, r, "Indexing", "1e-07")
	s3High := point(t, r, "S3-Side Filter", "1e-07")
	if idxHigh.RuntimeSec > s3High.RuntimeSec*1.5 {
		t.Errorf("indexing at 1e-7 (%.1fs) should be comparable to s3-side (%.1fs)",
			idxHigh.RuntimeSec, s3High.RuntimeSec)
	}
	idxLow := point(t, r, "Indexing", "1e-02")
	s3Low := point(t, r, "S3-Side Filter", "1e-02")
	if idxLow.RuntimeSec < s3Low.RuntimeSec*2 {
		t.Errorf("indexing at 1e-2 (%.1fs) should degrade well past s3-side (%.1fs)",
			idxLow.RuntimeSec, s3Low.RuntimeSec)
	}
	// Indexing is cheapest at high selectivity; its cost explodes at 1e-2
	// from the per-row GET requests (paper Fig. 1b shows $0.30).
	if idxHigh.Cost.Total() >= point(t, r, "Server-Side Filter", "1e-07").Cost.Total() {
		t.Error("indexing at 1e-7 should be the cheapest strategy")
	}
	if idxLow.Cost.RequestUSD < 0.05 {
		t.Errorf("indexing request cost at 1e-2 = $%.4f, paper shows ~$0.24 of requests",
			idxLow.Cost.RequestUSD)
	}
}

func TestFig2Shapes(t *testing.T) {
	env := testEnv(t)
	r, err := RunFig2(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())

	// Baseline and filtered joins perform similarly (both load all of
	// orders); Bloom join is significantly faster at high selectivity.
	for _, x := range Fig2Acctbals {
		base := point(t, r, "Baseline Join", x)
		filt := point(t, r, "Filtered Join", x)
		ratio := base.RuntimeSec / filt.RuntimeSec
		if ratio < 0.5 || ratio > 2.2 {
			t.Errorf("at %s: baseline/filtered = %.2f, paper says they are similar", x, ratio)
		}
	}
	base := point(t, r, "Baseline Join", "-950")
	bloom := point(t, r, "Bloom Join", "-950")
	if base.RuntimeSec/bloom.RuntimeSec < 2.5 {
		t.Errorf("bloom join at -950 should be much faster: baseline %.1fs vs bloom %.1fs",
			base.RuntimeSec, bloom.RuntimeSec)
	}
	// Bloom join degrades as the customer filter loosens.
	bloomLoose := point(t, r, "Bloom Join", "-450")
	if bloomLoose.RuntimeSec <= bloom.RuntimeSec {
		t.Error("bloom join should slow down as selectivity drops")
	}
}

func TestFig3Shapes(t *testing.T) {
	env := testEnv(t)
	r, err := RunFig3(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())

	// Filtered join beats baseline when the orders filter is selective...
	baseTight := point(t, r, "Baseline Join", "1992-03-01")
	filtTight := point(t, r, "Filtered Join", "1992-03-01")
	if baseTight.RuntimeSec/filtTight.RuntimeSec < 1.5 {
		t.Errorf("filtered join should win with a tight orders filter: %.1fs vs %.1fs",
			baseTight.RuntimeSec, filtTight.RuntimeSec)
	}
	// ...and the advantage disappears with no filter.
	baseNone := point(t, r, "Baseline Join", "None")
	filtNone := point(t, r, "Filtered Join", "None")
	if filtNone.RuntimeSec < baseNone.RuntimeSec*0.6 {
		t.Error("filtered join advantage should disappear without an orders filter")
	}
	// Bloom join stays fast and fairly flat.
	bloomTight := point(t, r, "Bloom Join", "1992-03-01")
	bloomNone := point(t, r, "Bloom Join", "None")
	if bloomNone.RuntimeSec > bloomTight.RuntimeSec*4 {
		t.Errorf("bloom join should remain fairly constant: %.1fs -> %.1fs",
			bloomTight.RuntimeSec, bloomNone.RuntimeSec)
	}
	if bloomNone.RuntimeSec > filtNone.RuntimeSec {
		t.Error("bloom join should beat filtered join when orders are unfiltered")
	}
}

func TestFig4Shapes(t *testing.T) {
	env := testEnv(t)
	r, err := RunFig4(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())

	// The best FPR is in the middle (paper: 0.01): too-low FPR pays S3
	// compute for a huge filter, too-high FPR returns too much data.
	best := point(t, r, "Bloom Join", "0.01").RuntimeSec
	if lo := point(t, r, "Bloom Join", "0.0001").RuntimeSec; lo < best {
		t.Errorf("FPR 1e-4 (%.2fs) should not beat 0.01 (%.2fs)", lo, best)
	}
	if hi := point(t, r, "Bloom Join", "0.5").RuntimeSec; hi < best {
		t.Errorf("FPR 0.5 (%.2fs) should not beat 0.01 (%.2fs)", hi, best)
	}
	// More data returned at looser FPR.
	tight := point(t, r, "Bloom Join", "0.0001").Extra["returnedMB"]
	loose := point(t, r, "Bloom Join", "0.5").Extra["returnedMB"]
	if loose <= tight {
		t.Errorf("returned bytes should grow with FPR: %.2fMB -> %.2fMB", tight, loose)
	}
}

func TestFig5Shapes(t *testing.T) {
	env := testEnv(t)
	r, err := RunFig5(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())

	// Server-side and filtered are flat in the group count; filtered wins
	// by loading only 4+1 of 20 columns.
	for _, x := range []string{"2", "32"} {
		server := point(t, r, "Server-Side Group-By", x)
		filtered := point(t, r, "Filtered Group-By", x)
		if filtered.RuntimeSec >= server.RuntimeSec {
			t.Errorf("filtered group-by should beat server-side at %s groups", x)
		}
	}
	// S3-side wins at few groups and degrades as groups grow, crossing
	// filtered before 32 groups (paper Fig. 5a).
	s3At2 := point(t, r, "S3-Side Group-By", "2")
	filtAt2 := point(t, r, "Filtered Group-By", "2")
	if s3At2.RuntimeSec >= filtAt2.RuntimeSec {
		t.Errorf("s3-side at 2 groups (%.1fs) should beat filtered (%.1fs)",
			s3At2.RuntimeSec, filtAt2.RuntimeSec)
	}
	s3At32 := point(t, r, "S3-Side Group-By", "32")
	filtAt32 := point(t, r, "Filtered Group-By", "32")
	if s3At32.RuntimeSec <= filtAt32.RuntimeSec {
		t.Errorf("s3-side at 32 groups (%.1fs) should have crossed filtered (%.1fs)",
			s3At32.RuntimeSec, filtAt32.RuntimeSec)
	}
	if s3At32.RuntimeSec <= s3At2.RuntimeSec {
		t.Error("s3-side group-by should degrade with group count")
	}
}

func TestFig6Shapes(t *testing.T) {
	env := testEnv(t)
	r, err := RunFig6(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())

	// More S3-side groups: S3 time grows, server time and bytes shrink.
	first := point(t, r, "Hybrid Group-By", "1")
	last := point(t, r, "Hybrid Group-By", "12")
	if last.Extra["s3SideSec"] <= first.Extra["s3SideSec"] {
		t.Error("S3-side time should grow with pushed groups")
	}
	if last.Extra["serverSideSec"] >= first.Extra["serverSideSec"] {
		t.Error("server-side time should shrink with pushed groups")
	}
	if last.Extra["returnedGB"] >= first.Extra["returnedGB"] {
		t.Error("returned bytes should shrink with pushed groups")
	}
}

func TestFig7Shapes(t *testing.T) {
	env := testEnv(t)
	r, err := RunFig7(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())

	// Server-side and filtered are insensitive to skew.
	s0 := point(t, r, "Filtered Group-By", "0")
	s13 := point(t, r, "Filtered Group-By", "1.3")
	ratio := s13.RuntimeSec / s0.RuntimeSec
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("filtered group-by should be flat across skew, got ratio %.2f", ratio)
	}
	// Hybrid wins clearly at θ=1.3 (paper: 31% better than filtered).
	hybrid13 := point(t, r, "Hybrid Group-By", "1.3")
	filt13 := point(t, r, "Filtered Group-By", "1.3")
	if hybrid13.RuntimeSec >= filt13.RuntimeSec {
		t.Errorf("hybrid at θ=1.3 (%.1fs) should beat filtered (%.1fs)",
			hybrid13.RuntimeSec, filt13.RuntimeSec)
	}
	// At θ=0 hybrid has no meaningful advantage.
	hybrid0 := point(t, r, "Hybrid Group-By", "0")
	filt0 := point(t, r, "Filtered Group-By", "0")
	if hybrid0.RuntimeSec < filt0.RuntimeSec*0.7 {
		t.Error("hybrid should not have a large advantage at θ=0")
	}
}

func TestFig8Shapes(t *testing.T) {
	env := testEnv(t)
	r, err := RunFig8(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())

	// Sampling time grows with S; scanning time shrinks with S; traffic is
	// minimized near the model's S*.
	small := point(t, r, "Sampling Top-K", "S*/16")
	mid := point(t, r, "Sampling Top-K", "S*")
	large := point(t, r, "Sampling Top-K", "16*S*")
	if large.Extra["samplingSec"] <= small.Extra["samplingSec"] {
		t.Error("sampling phase should grow with S")
	}
	if small.Extra["scanningSec"] <= large.Extra["scanningSec"] {
		t.Error("scanning phase should shrink with S")
	}
	if mid.Extra["returnedGB"] > small.Extra["returnedGB"] ||
		mid.Extra["returnedGB"] > large.Extra["returnedGB"] {
		t.Errorf("traffic at S* (%.4fGB) should be below the extremes (%.4f, %.4f)",
			mid.Extra["returnedGB"], small.Extra["returnedGB"], large.Extra["returnedGB"])
	}
}

func TestFig9Shapes(t *testing.T) {
	env := testEnv(t)
	r, err := RunFig9(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())

	// Sampling top-K is consistently faster and cheaper than server-side.
	for _, x := range []string{"1", "10", "100"} {
		server := point(t, r, "Server-Side Top-K", x)
		sampling := point(t, r, "Sampling Top-K", x)
		if sampling.RuntimeSec >= server.RuntimeSec {
			t.Errorf("K=%s: sampling (%.1fs) should beat server-side (%.1fs)",
				x, sampling.RuntimeSec, server.RuntimeSec)
		}
		if sampling.Cost.Total() >= server.Cost.Total() {
			t.Errorf("K=%s: sampling ($%.4f) should be cheaper than server-side ($%.4f)",
				x, sampling.Cost.Total(), server.Cost.Total())
		}
	}
}

func TestFig10Shapes(t *testing.T) {
	env := testEnv(t)
	r, err := RunFig10(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())

	// Optimized beats baseline on every workload's runtime.
	for _, p := range r.Points {
		if p.Series != "PushdownDB (Optimized)" || p.X == "Geo-Mean" {
			continue
		}
		base := point(t, r, "PushdownDB (Baseline)", p.X)
		if p.RuntimeSec >= base.RuntimeSec {
			t.Errorf("%s: optimized (%.1fs) not faster than baseline (%.1fs)",
				p.X, p.RuntimeSec, base.RuntimeSec)
		}
	}
	// Headline: several-x geo-mean speedup and cheaper on average.
	bg := point(t, r, "PushdownDB (Baseline)", "Geo-Mean")
	og := point(t, r, "PushdownDB (Optimized)", "Geo-Mean")
	speedup := bg.RuntimeSec / og.RuntimeSec
	if speedup < 3 {
		t.Errorf("geo-mean speedup %.1fx, paper reports 6.7x — too far off", speedup)
	}
	if og.Cost.Total() >= bg.Cost.Total() {
		t.Errorf("optimized geo-mean cost ($%.4f) should be below baseline ($%.4f)",
			og.Cost.Total(), bg.Cost.Total())
	}
}

func TestFig11Shapes(t *testing.T) {
	env := testEnv(t)
	r, err := RunFig11(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())

	// Parquet wins clearly on wide tables at selective filters (column
	// pruning), and the advantage shrinks as more data is transferred.
	csv20 := point(t, r, "CSV 20-col", "0.01")
	col20 := point(t, r, "Parquet 20-col", "0.01")
	if col20.RuntimeSec >= csv20.RuntimeSec {
		t.Errorf("Parquet 20-col at sel 0.01 (%.2fs) should beat CSV (%.2fs)",
			col20.RuntimeSec, csv20.RuntimeSec)
	}
	adv001 := csv20.RuntimeSec / col20.RuntimeSec
	csvFull := point(t, r, "CSV 20-col", "1")
	colFull := point(t, r, "Parquet 20-col", "1")
	advFull := csvFull.RuntimeSec / colFull.RuntimeSec
	if advFull > adv001 {
		t.Errorf("Parquet advantage should shrink at selectivity 1: %.2fx -> %.2fx", adv001, advFull)
	}
	// On the 1-column table the formats are comparable.
	csv1 := point(t, r, "CSV 1-col", "0.1")
	col1 := point(t, r, "Parquet 1-col", "0.1")
	ratio := csv1.RuntimeSec / col1.RuntimeSec
	if ratio < 0.3 || ratio > 3.5 {
		t.Errorf("1-col CSV/Parquet ratio %.2f should be modest", ratio)
	}
}

func TestAblations(t *testing.T) {
	env := testEnv(t)
	rs, err := AblationFigures(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		t.Log("\n" + r.String())
	}
	// Suggestion 1: multi-range GET strictly cheaper in requests at low
	// selectivity.
	var s1 *Result
	for _, r := range rs {
		if r.ID == "Fig1-S1" {
			s1 = r
		}
	}
	perRow := point(t, s1, "Per-Row GETs", "1e-02")
	multi := point(t, s1, "Multi-Range GET", "1e-02")
	if multi.Cost.RequestUSD >= perRow.Cost.RequestUSD {
		t.Error("multi-range GET should cut request cost")
	}
	if multi.RuntimeSec >= perRow.RuntimeSec {
		t.Error("multi-range GET should cut runtime")
	}

	// Suggestion 5: light scans pay less under computation-aware pricing.
	var s5 *Result
	for _, r := range rs {
		if r.ID == "S5" {
			s5 = r
		}
	}
	flat := point(t, s5, "Flat Pricing", "plain projection")
	aware := point(t, s5, "Computation-Aware", "plain projection")
	if aware.Cost.ScanUSD >= flat.Cost.ScanUSD {
		t.Error("computation-aware pricing should discount plain projections")
	}

	// Section IX: columnar TPC-H scans agree and are not slower.
	var sec9 *Result
	for _, r := range rs {
		if r.ID == "Sec9" {
			sec9 = r
		}
	}
	csvQ6 := point(t, sec9, "CSV", "Q6 aggregate")
	colQ6 := point(t, sec9, "Parquet", "Q6 aggregate")
	if colQ6.RuntimeSec > csvQ6.RuntimeSec {
		t.Error("columnar Q6 scan should not be slower than CSV")
	}
}

func TestResultString(t *testing.T) {
	r := &Result{ID: "X", Title: "t", XLabel: "x"}
	r.Points = append(r.Points, Point{Series: "a", X: "1", RuntimeSec: 2})
	s := r.String()
	if !strings.Contains(s, "== X: t ==") || !strings.Contains(s, "2.00") {
		t.Errorf("render:\n%s", s)
	}
}
