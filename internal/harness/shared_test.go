package harness

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

// TestRunSharedCostFallsWithClients is the acceptance check for the Shared
// figure: the unshared series is flat in client count, so at every width of
// 4 or more the shared series must be strictly cheaper per query, and the
// shared series itself must fall as clients are added — one pushed pass
// serving the whole batch is the subsystem's economic reason to exist.
func TestRunSharedCostFallsWithClients(t *testing.T) {
	env := NewEnv(SmallScale())
	res, err := RunShared(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range sharedFigClientCounts {
		un, ok1 := res.Get("unshared", strconv.Itoa(n))
		sh, ok2 := res.Get("shared", strconv.Itoa(n))
		if !ok1 || !ok2 {
			t.Fatalf("missing points at %d clients:\n%s", n, res)
		}
		if n >= 4 {
			if sh.Cost.Total() >= un.Cost.Total() {
				t.Errorf("%d clients: shared cost/query $%.8f not strictly below unshared $%.8f",
					n, sh.Cost.Total(), un.Cost.Total())
			}
			if sh.Extra["coalesced"] == 0 {
				t.Errorf("%d clients: shared round coalesced nothing", n)
			}
			if avg := sh.Extra["sharers_avg"]; avg <= 1 {
				t.Errorf("%d clients: sharers per pass %.2f, want > 1", n, avg)
			}
		}
		t.Logf("%d clients: unshared $%.6f shared $%.6f (coalesced=%.0f, sharers_avg=%.1f, saved %.1f MB)",
			n, un.Cost.Total(), sh.Cost.Total(),
			sh.Extra["coalesced"], sh.Extra["sharers_avg"], sh.Extra["scan_saved_MB"])
	}
	wide, _ := res.Get("shared", strconv.Itoa(sharedFigClientCounts[len(sharedFigClientCounts)-1]))
	solo, _ := res.Get("shared", "1")
	if wide.Cost.Total() >= solo.Cost.Total() {
		t.Errorf("shared cost/query did not fall with width: $%.8f at %d clients vs $%.8f solo",
			wide.Cost.Total(), sharedFigClientCounts[len(sharedFigClientCounts)-1], solo.Cost.Total())
	}
	if !strings.Contains(res.String(), "Shared") {
		t.Error("result does not render")
	}
}
