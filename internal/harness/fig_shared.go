package harness

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/engine"
	"pushdowndb/internal/scanshare"
	"pushdowndb/internal/server"
)

// sharedFigClientCounts is the concurrency sweep (benchfig -fig Shared).
var sharedFigClientCounts = []int{1, 2, 4, 8}

// sharedFigWindow is the batching window the shared series runs with —
// generous, because the figure's clients arrive together by construction
// and the window is wall-clock only (it never touches the virtual meter).
const sharedFigWindow = 250 * time.Millisecond

// sharedFigQueries returns client c's round: one identical whole-table
// aggregate every client submits verbatim (exercising singleflight) and one
// per-client filter variant on the same table (exercising predicate
// merging — compatible shapes, different predicates). Predicates go
// through l_quantity, which has no secondary index, so every client takes
// the pushed-scan path where sharing applies.
func sharedFigQueries(c int) []struct{ name, sql string } {
	return []struct{ name, sql string }{
		{"agg", "SELECT l_returnflag, COUNT(*) AS n FROM lineitem " +
			"WHERE l_quantity < 30 GROUP BY l_returnflag ORDER BY l_returnflag"},
		{"filter", fmt.Sprintf(
			"SELECT l_returnflag, l_quantity FROM lineitem WHERE l_quantity < %d", 8+2*c)},
	}
}

// sharedRound accumulates one round's server-reported meter readings.
type sharedRound struct {
	queries    int
	runtimeSec float64
	cost       cloudsim.CostBreakdown
}

// runSharedRound drives n concurrent clients, step-locked per query: all n
// submit query k together and the round advances only when every client
// has its answer. The lockstep is the workload shape the figure studies —
// concurrent arrivals on the same table — and it makes the shared series
// deterministic (every round offers the coordinator the same batch).
// Per-client slots fold in client order, as in the Serve figure, so
// float totals cannot vary with goroutine scheduling.
func runSharedRound(ctx context.Context, base string, n int) (*sharedRound, error) {
	slots := make([]sharedRound, n)
	errs := make([]error, n)
	for k := range sharedFigQueries(0) {
		var wg sync.WaitGroup
		for c := 0; c < n; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				q := sharedFigQueries(c)[k]
				cl := server.NewClient(base)
				cl.Tenant = fmt.Sprintf("client-%d", c)
				mine := &slots[c]
				res, err := cl.Query(ctx, q.sql)
				if err != nil {
					errs[c] = fmt.Errorf("client %d %s: %w", c, q.name, err)
					return
				}
				mine.queries++
				mine.runtimeSec += res.RuntimeSec
				mine.cost = mine.cost.Add(res.Cost)
			}(c)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	var round sharedRound
	for _, s := range slots {
		round.queries += s.queries
		round.runtimeSec += s.runtimeSec
		round.cost = round.cost.Add(s.cost)
	}
	return &round, nil
}

// RunShared measures scan sharing under concurrency (benchfig -fig
// Shared): for each client count, n step-locked clients run the same
// two-query round over HTTP against a sharing server and against a plain
// one — no result cache in either, so every saving on the shared series is
// the coordinator's. On the unshared series cost per query is flat in n
// (every client buys its own scans); on the shared series it falls as
// clients are added, because one pushed pass per partition serves the
// whole batch and each sharer is billed 1/n of it.
func RunShared(ctx context.Context, env *Env) (*Result, error) {
	res := &Result{
		ID:     "Shared",
		Title:  "Scan sharing: simulated cost per query vs concurrent identical-table clients",
		XLabel: "clients",
	}
	for _, n := range sharedFigClientCounts {
		for _, mode := range []string{"unshared", "shared"} {
			var eopts []engine.Option
			if mode == "shared" {
				eopts = append(eopts, engine.WithScanSharing(scanshare.Config{
					Window: sharedFigWindow, MaxBatch: 64,
				}))
			}
			db, err := env.TPCHWith(ctx, eopts)
			if err != nil {
				return nil, err
			}
			srv := server.New(db, server.Config{
				MaxClients:     2 * n,
				RequestTimeout: time.Minute,
			})
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			serveDone := make(chan struct{})
			go func() { _ = srv.Serve(l); close(serveDone) }()

			round, err := runSharedRound(ctx, "http://"+l.Addr().String(), n)
			if err == nil {
				per := 1.0 / float64(round.queries)
				extra := map[string]float64{}
				if ss, ok := db.ScanShareStats(); ok {
					extra["coalesced"] = float64(ss.Coalesced)
					extra["backend_selects"] = float64(ss.BackendSelects)
					extra["scan_saved_MB"] = float64(ss.ScanBytesSaved) / 1e6
					if ss.SharedPasses > 0 {
						extra["sharers_avg"] = float64(ss.Sharers) / float64(ss.SharedPasses)
					}
				}
				res.Points = append(res.Points, Point{
					Series:     mode,
					X:          fmt.Sprint(n),
					RuntimeSec: round.runtimeSec * per,
					Cost:       round.cost.Scale(per),
					Extra:      extra,
				})
			}
			sdctx, cancel := context.WithTimeout(ctx, 30*time.Second)
			sderr := srv.Shutdown(sdctx)
			cancel()
			<-serveDone
			if err != nil {
				return nil, err
			}
			if sderr != nil {
				return nil, fmt.Errorf("harness: shared shutdown at %d clients: %w", n, sderr)
			}
		}
	}
	res.Notes = append(res.Notes,
		"fresh server + DB per point; no result cache in either mode, so the gap is scan sharing alone",
		"clients are step-locked per query: all n submit together, the batch the coordinator sees is exactly the client count",
		"unshared: every client buys its own pushed scans; shared: one pass per partition serves the batch, billed 1/n to each sharer",
		"scan_saved_MB counts bytes the coordinator did not re-scan; sharers_avg is the mean batch size of shared passes")
	return res, nil
}
