package harness

import (
	"context"
	"fmt"
	"math"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/engine"
	"pushdowndb/internal/tpch"
)

// RunFig10 reproduces Fig. 10: the four individual operators (filter,
// group-by, top-K, join) and the six TPC-H queries, each under the
// baseline PushdownDB (no S3 Select) and the optimized PushdownDB, plus
// the geometric means the paper's headline numbers come from.
func RunFig10(ctx context.Context, env *Env) (*Result, error) {
	db, err := env.TPCH(ctx)
	if err != nil {
		return nil, err
	}
	groupDB, err := env.GroupTable(ctx, -1)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "Fig10",
		Title:  "Operators and TPC-H queries: baseline vs optimized PushdownDB",
		XLabel: "workload",
	}

	type workItem struct {
		name      string
		baseline  func() (*engine.Exec, error)
		optimized func() (*engine.Exec, error)
	}

	maxOrder := tpch.SizesFor(env.Scale.TPCHSF).Orders
	filterPred := fmt.Sprintf("l_orderkey <= %d", maxOrder/1000+1) // ~1e-3

	k := fig8K(env)
	items := []workItem{
		{
			name: "Filter",
			baseline: func() (*engine.Exec, error) {
				e := db.NewExecContext(ctx)
				_, err := e.ServerSideFilter("lineitem", filterPred, "")
				return e, err
			},
			optimized: func() (*engine.Exec, error) {
				e := db.NewExecContext(ctx)
				_, err := e.S3SideFilter("lineitem", filterPred, "*")
				return e, err
			},
		},
		{
			name: "Group-by",
			baseline: func() (*engine.Exec, error) {
				e := groupDB.NewExecContext(ctx)
				_, err := e.ServerSideGroupBy("groups", "g3", fig5Aggs(), "")
				return e, err
			},
			optimized: func() (*engine.Exec, error) {
				e := groupDB.NewExecContext(ctx)
				_, err := e.S3SideGroupBy("groups", "g3", fig5Aggs(), "")
				return e, err
			},
		},
		{
			name: "Top-K",
			baseline: func() (*engine.Exec, error) {
				e := db.NewExecContext(ctx)
				_, err := e.ServerSideTopK("lineitem", "l_extendedprice", k, true)
				return e, err
			},
			optimized: func() (*engine.Exec, error) {
				e := db.NewExecContext(ctx)
				_, err := e.SamplingTopK("lineitem", "l_extendedprice", k, true,
					engine.SamplingTopKOptions{Alpha: 0.1})
				return e, err
			},
		},
		{
			name: "Join",
			baseline: func() (*engine.Exec, error) {
				e := db.NewExecContext(ctx)
				_, err := e.JoinAggregate(listing2Spec("-950", "", 0.01), "baseline", joinAggItems)
				return e, err
			},
			optimized: func() (*engine.Exec, error) {
				e := db.NewExecContext(ctx)
				_, err := e.JoinAggregate(listing2Spec("-950", "", 0.01), "bloom", joinAggItems)
				return e, err
			},
		},
	}
	for _, q := range tpch.Queries() {
		q := q
		items = append(items, workItem{
			name: "TPCH " + q.Name,
			baseline: func() (*engine.Exec, error) {
				_, e, err := q.Baseline(db)
				return e, err
			},
			optimized: func() (*engine.Exec, error) {
				_, e, err := q.Optimized(db)
				return e, err
			},
		})
	}

	type pair struct{ runtime, cost float64 }
	var basePairs, optPairs []pair
	for _, it := range items {
		be, err := it.baseline()
		if err != nil {
			return nil, fmt.Errorf("harness: %s baseline: %w", it.name, err)
		}
		res.add("PushdownDB (Baseline)", it.name, be, nil)
		basePairs = append(basePairs, pair{be.RuntimeSeconds(), be.Cost().Total()})

		oe, err := it.optimized()
		if err != nil {
			return nil, fmt.Errorf("harness: %s optimized: %w", it.name, err)
		}
		res.add("PushdownDB (Optimized)", it.name, oe, nil)
		optPairs = append(optPairs, pair{oe.RuntimeSeconds(), oe.Cost().Total()})
	}

	geo := func(ps []pair) pair {
		lr, lc := 0.0, 0.0
		for _, p := range ps {
			lr += math.Log(p.runtime)
			lc += math.Log(p.cost)
		}
		n := float64(len(ps))
		return pair{math.Exp(lr / n), math.Exp(lc / n)}
	}
	bg, og := geo(basePairs), geo(optPairs)
	res.Points = append(res.Points,
		Point{Series: "PushdownDB (Baseline)", X: "Geo-Mean", RuntimeSec: bg.runtime,
			Cost: costOf(bg.cost)},
		Point{Series: "PushdownDB (Optimized)", X: "Geo-Mean", RuntimeSec: og.runtime,
			Cost: costOf(og.cost)},
	)
	res.Notes = append(res.Notes, fmt.Sprintf(
		"geo-mean speedup %.1fx, cost ratio %.2f (paper: 6.7x faster, 30%% cheaper)",
		bg.runtime/og.runtime, og.cost/bg.cost))
	return res, nil
}

// costOf wraps a scalar total into a breakdown-shaped value (geo-means
// have no meaningful component split).
func costOf(total float64) (c cloudsim.CostBreakdown) {
	c.ComputeUSD = total
	return c
}
