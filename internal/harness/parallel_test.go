package harness

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

func TestParallelFigure(t *testing.T) {
	env := testEnv(t)
	r, err := RunParallel(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())

	// Server-side group-by wall-clock shrinks as the budget grows, and
	// substantially so by 32 workers (RunParallel itself verifies the
	// results stay byte-identical).
	seq := point(t, r, "Server-Side Group-By", "1")
	par := point(t, r, "Server-Side Group-By", "32")
	if par.RuntimeSec >= seq.RuntimeSec/2 {
		t.Errorf("32 workers (%.2fs) should be far below sequential (%.2fs)",
			par.RuntimeSec, seq.RuntimeSec)
	}
	for i := 1; i < len(ParallelWorkerCounts); i++ {
		prev := point(t, r, "Server-Side Group-By", fmt.Sprint(ParallelWorkerCounts[i-1]))
		cur := point(t, r, "Server-Side Group-By", fmt.Sprint(ParallelWorkerCounts[i]))
		if cur.RuntimeSec > prev.RuntimeSec {
			t.Errorf("runtime must not grow with workers: %.2fs@%d -> %.2fs@%d",
				prev.RuntimeSec, ParallelWorkerCounts[i-1], cur.RuntimeSec, ParallelWorkerCounts[i])
		}
	}

	// The planner's join-strategy decision flips across the sweep: bloom
	// wins against a sequential server, baseline against a well-parallel
	// one.
	var sawBloom, sawBaseline bool
	for _, p := range r.Points {
		if !strings.HasPrefix(p.Series, "Planner") {
			continue
		}
		if strings.Contains(p.Series, "bloom") {
			sawBloom = true
		}
		if strings.Contains(p.Series, "baseline") {
			sawBaseline = true
		}
	}
	if !sawBloom || !sawBaseline {
		t.Errorf("expected the planner decision to flip across the worker sweep (bloom=%v baseline=%v)",
			sawBloom, sawBaseline)
	}
	seqPlan := point(t, r, "Planner (bloom)", "1")
	if seqPlan.Extra["baseline_est"] <= seqPlan.Extra["bloom_est"] {
		t.Error("sequential baseline estimate should exceed the bloom estimate")
	}
}
