package harness

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// TestRunIndexCrossover is the acceptance check for the Index figure: on
// every metered profile the IndexScan must be strictly cheaper than the
// filtered scan at and below 1% selectivity and strictly more expensive at
// 50% — the paper's index-vs-scan crossover.
func TestRunIndexCrossover(t *testing.T) {
	env := NewEnv(SmallScale())
	res, err := RunIndex(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	for _, profile := range []string{"s3", "s3-cross-region"} {
		for _, pct := range []string{"0.1%", "1%"} {
			x := pct + " " + profile
			idx, ok1 := res.Get("IndexScan", x)
			scan, ok2 := res.Get("S3-side filter", x)
			if !ok1 || !ok2 {
				t.Fatalf("missing points at %s:\n%s", x, res)
			}
			if idx.Cost.Total() >= scan.Cost.Total() {
				t.Errorf("%s: IndexScan $%.6f not strictly below filtered scan $%.6f",
					x, idx.Cost.Total(), scan.Cost.Total())
			}
		}
		x := "50% " + profile
		idx, _ := res.Get("IndexScan", x)
		scan, _ := res.Get("S3-side filter", x)
		if idx.Cost.Total() <= scan.Cost.Total() {
			t.Errorf("%s: IndexScan $%.6f not strictly above filtered scan $%.6f",
				x, idx.Cost.Total(), scan.Cost.Total())
		}
		// The planner must follow the crossover: index at the selective
		// end, anything-but-index at the unselective end.
		if _, ok := res.Get("Planner (indexscan)", "0.1% "+profile); !ok {
			t.Errorf("planner did not choose indexscan at 0.1%% on %s:\n%s", profile, plannerSeries(res))
		}
		if _, ok := res.Get("Planner (indexscan)", "50% "+profile); ok {
			t.Errorf("planner chose indexscan at 50%% on %s", profile)
		}
	}
	// Every IndexScan point that returned rows issued multi-range GETs.
	for _, p := range res.Points {
		if p.Series == "IndexScan" && p.Extra["rows"] > 0 && p.Extra["ranged_gets"] == 0 {
			t.Errorf("IndexScan at %s returned rows with no multi-range GETs", p.X)
		}
	}
	if !strings.Contains(res.String(), "Index") {
		t.Error("result does not render")
	}
}

func plannerSeries(res *Result) string {
	var b strings.Builder
	for _, p := range res.Points {
		if strings.HasPrefix(p.Series, "Planner") {
			fmt.Fprintf(&b, "%s at %s\n", p.Series, p.X)
		}
	}
	return b.String()
}
