package harness

import (
	"context"
	"fmt"

	"pushdowndb/internal/engine"
	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/tpch"
)

// TPCHColumnar ensures the TPC-H tables are also loaded in the columnar
// format ("<table>_col") and returns the scaled DB (Section IX's TPC-H-on-
// Parquet comparison).
func (env *Env) TPCHColumnar(ctx context.Context) (*engine.DB, error) {
	db, err := env.TPCH(ctx) // ensures the store exists
	if err != nil {
		return nil, err
	}
	env.mu.Lock()
	defer env.mu.Unlock()
	if !env.tpchColumnar {
		if _, err := tpch.LoadColumnar(env.tpchStore, env.tpchDataset); err != nil {
			return nil, err
		}
		env.tpchColumnar = true
	}
	return db, nil
}

// RunSec9TPCHFormats reproduces Section IX's closing observation: unlike
// the synthetic single-column scans of Fig. 11, the TPC-H queries see very
// limited benefit from the columnar format, because their scans touch many
// columns and the returned data is CSV-encoded either way. We compare
// representative pushdown scans from Q1 and Q6 over both layouts.
func RunSec9TPCHFormats(ctx context.Context, env *Env) (*Result, error) {
	db, err := env.TPCHColumnar(ctx)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "Sec9",
		Title:  "TPC-H pushdown scans: CSV vs Parquet(stand-in)",
		XLabel: "query scan",
	}
	cases := []struct {
		name  string
		sql   string
		merge []sqlparse.AggFunc
	}{
		{
			name: "Q6 aggregate",
			sql: "SELECT SUM(l_extendedprice * l_discount) FROM S3Object WHERE " +
				"l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01'" +
				" AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24",
			merge: []sqlparse.AggFunc{sqlparse.AggSum},
		},
		{
			name: "Q1 aggregate",
			sql: "SELECT SUM(l_quantity), SUM(l_extendedprice), COUNT(*) FROM S3Object" +
				" WHERE l_shipdate <= '1998-09-02'",
			merge: []sqlparse.AggFunc{sqlparse.AggSum, sqlparse.AggSum, sqlparse.AggCount},
		},
	}
	for _, c := range cases {
		e1 := db.NewExecContext(ctx)
		csvRow, err := e1.SelectAgg("csv", e1.NextStage(), "lineitem", c.sql, c.merge)
		if err != nil {
			return nil, err
		}
		res.add("CSV", c.name, e1, nil)

		e2 := db.NewExecContext(ctx)
		colRow, err := e2.SelectAgg("columnar", e2.NextStage(), "lineitem_col", c.sql, c.merge)
		if err != nil {
			return nil, err
		}
		_, scanned, _, _ := e2.Metrics.Totals()
		res.add("Parquet", c.name, e2, map[string]float64{"scannedMB": float64(scanned) / 1e6})

		// The two layouts must agree on the answers.
		for i := range csvRow {
			a, _ := csvRow[i].Num()
			b, _ := colRow[i].Num()
			if diff := a - b; diff > 1e-6*a+1e-6 || diff < -1e-6*a-1e-6 {
				return nil, fmt.Errorf("harness: Sec9 %s item %d: CSV %v != columnar %v",
					c.name, i, a, b)
			}
		}
	}
	res.Notes = append(res.Notes,
		"the paper reports 'very limited (if any) performance advantage' for Parquet on TPC-H; both scans here are storage-scan-bound")
	return res, nil
}
