// Package harness regenerates every table and figure of the paper's
// evaluation (Figures 1-11). Each RunFigN function sets up the workload,
// executes the swept configurations on the engine, and returns a Result
// whose String() prints the same series the paper plots.
//
// Experiments run on laptop-sized datasets but report paper-scale virtual
// runtimes and costs via cloudsim's Scaled config/pricing (see
// cloudsim.Config.Scaled); selectivities, request counts and row mixes all
// scale linearly, so the figures' shapes — who wins, by what factor, where
// the crossovers fall — are preserved. EXPERIMENTS.md records paper-vs-
// measured values per figure.
package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/engine"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/store"
	"pushdowndb/internal/tpch"
	"pushdowndb/internal/workload"
)

// Scale controls dataset sizes. The paper's reference points: TPC-H SF 10
// (CSV, ~10 GB), synthetic 10 GB group-by tables, 100 MB-per-column format
// tables, all 32-way partitioned.
type Scale struct {
	// TPCHSF is the generated TPC-H scale factor.
	TPCHSF float64
	// PaperSF is the scale factor virtual time is reported at (10).
	PaperSF float64
	// GroupRows is the synthetic group-by table's row count; virtual time
	// reports it as the paper's 10 GB table.
	GroupRows int
	// FloatRows is the Fig. 11 per-table row count.
	FloatRows int
	// Partitions per table.
	Partitions int
	// Seed drives every generator.
	Seed int64
}

// SmallScale is sized for unit tests (sub-second figures).
func SmallScale() Scale {
	return Scale{TPCHSF: 0.002, PaperSF: 10, GroupRows: 4000, FloatRows: 3000, Partitions: 4, Seed: 42}
}

// DefaultScale is sized for the benchmark harness.
func DefaultScale() Scale {
	return Scale{TPCHSF: 0.01, PaperSF: 10, GroupRows: 20000, FloatRows: 10000, Partitions: 8, Seed: 42}
}

// Env lazily builds and caches the datasets experiments share.
type Env struct {
	Scale Scale

	mu           sync.Mutex
	tpchStore    *store.Store
	tpchDataset  tpch.Dataset
	tpchColumnar bool
	groupStores  map[string]*store.Store // key: "uniform" or "skew<theta>"
	floatStores  map[string]*store.Store // key: "<cols>"
}

// NewEnv returns an Env at the given scale.
func NewEnv(s Scale) *Env {
	return &Env{
		Scale:       s,
		groupStores: map[string]*store.Store{},
		floatStores: map[string]*store.Store{},
	}
}

// paperPartitions is the paper's per-table object count (Section III runs
// 32-way parallel loads).
const paperPartitions = 32

// scaledDB wraps a store in a DB reporting paper-scale virtual time and
// cost: dataRatio = paperBytes/actualBytes, and the partition ratio maps
// this run's partition count onto the paper's 32. The in-process backend
// simulates in-region S3 (cloudsim.S3Profile); bopts configure it, e.g.
// enabling Section-X select capabilities or swapping the profile; eopts add
// engine options (e.g. engine.WithResultCache for the Cache figure).
func (env *Env) scaledDB(st *store.Store, bucket string, dataRatio float64, eopts []engine.Option, bopts ...s3api.InProcOption) (*engine.DB, error) {
	opts := []engine.Option{
		engine.WithBackend("s3sim", s3api.NewInProc(st, bopts...)),
		engine.WithScale(cloudsim.Scale{
			DataRatio: dataRatio,
			PartRatio: float64(paperPartitions) / float64(env.Scale.Partitions),
		}),
	}
	opts = append(opts, eopts...)
	return engine.Open(bucket, opts...)
}

// TPCH returns a DB over the TPC-H dataset (with the Fig. 1 index tables),
// with virtual time reported at PaperSF. Backend options configure the
// simulated S3 backend (capabilities, profile). Canceling ctx aborts a
// first-call dataset build.
func (env *Env) TPCH(ctx context.Context, bopts ...s3api.InProcOption) (*engine.DB, error) {
	return env.TPCHWith(ctx, nil, bopts...)
}

// TPCHWith is TPCH with additional engine options.
func (env *Env) TPCHWith(ctx context.Context, eopts []engine.Option, bopts ...s3api.InProcOption) (*engine.DB, error) {
	env.mu.Lock()
	defer env.mu.Unlock()
	if env.tpchStore == nil {
		st := store.New()
		ds, err := tpch.LoadWithIndexes(ctx, st, tpch.Dataset{
			SF: env.Scale.TPCHSF, Seed: env.Scale.Seed,
			Bucket: "tpch", Partitions: env.Scale.Partitions,
		})
		if err != nil {
			return nil, err
		}
		if err := engine.BuildIndexTable(st, ds.Bucket, "lineitem", "l_orderkey"); err != nil {
			return nil, err
		}
		env.tpchStore = st
		env.tpchDataset = ds
	}
	ratio := env.Scale.PaperSF / env.Scale.TPCHSF
	return env.scaledDB(env.tpchStore, env.tpchDataset.Bucket, ratio, eopts, bopts...)
}

const paperGroupTableBytes = 10 << 30 // the 10 GB synthetic table

// GroupTable returns a DB over the synthetic group-by table: uniform
// (Fig. 5) when theta < 0, Zipf-skewed otherwise (Figs. 6-7).
func (env *Env) GroupTable(ctx context.Context, theta float64, bopts ...s3api.InProcOption) (*engine.DB, error) {
	key := "uniform"
	if theta >= 0 {
		key = fmt.Sprintf("skew%.1f", theta)
	}
	env.mu.Lock()
	st, ok := env.groupStores[key]
	env.mu.Unlock()
	if !ok {
		var spec workload.GroupTableSpec
		if theta < 0 {
			spec = workload.UniformSpec(env.Scale.GroupRows, env.Scale.Seed)
		} else {
			spec = workload.SkewedSpec(env.Scale.GroupRows, theta, env.Scale.Seed)
		}
		st = store.New()
		if err := engine.PartitionTable(ctx, st, "synth", "groups",
			spec.Header(), spec.Generate(), env.Scale.Partitions); err != nil {
			return nil, err
		}
		env.mu.Lock()
		env.groupStores[key] = st
		env.mu.Unlock()
	}
	ratio := float64(paperGroupTableBytes) / float64(st.TableSize("synth", "groups"))
	return env.scaledDB(st, "synth", ratio, nil, bopts...)
}

// FloatTables returns a DB over the Fig. 11 tables: for each column count,
// a CSV table "fcsv<cols>" and a columnar table "fcol<cols>". The returned
// ratio scales to the paper's 100 MB-per-column objects.
func (env *Env) FloatTables(ctx context.Context, cols int) (*engine.DB, error) {
	key := fmt.Sprint(cols)
	env.mu.Lock()
	st, ok := env.floatStores[key]
	env.mu.Unlock()
	if !ok {
		header, rows := workload.FloatTable(env.Scale.FloatRows, cols, env.Scale.Seed)
		st = store.New()
		if err := engine.PartitionTable(ctx, st, "fmt", "fcsv",
			header, rows, env.Scale.Partitions); err != nil {
			return nil, err
		}
		typed := workload.FloatRowsTyped(rows)
		groupRows := env.Scale.FloatRows/env.Scale.Partitions/4 + 1
		if err := engine.PartitionTableColumnar(st, "fmt", "fcol",
			workload.FloatSchema(cols), typed, env.Scale.Partitions, groupRows, true); err != nil {
			return nil, err
		}
		env.mu.Lock()
		env.floatStores[key] = st
		env.mu.Unlock()
	}
	paperBytes := float64(cols) * 100e6
	ratio := paperBytes / float64(st.TableSize("fmt", "fcsv"))
	return env.scaledDB(st, "fmt", ratio, nil)
}

// Point is one measured configuration of an experiment.
type Point struct {
	Series string
	X      string
	// RuntimeSec is the paper-scale virtual runtime.
	RuntimeSec float64
	// Cost is the paper-scale dollar cost.
	Cost cloudsim.CostBreakdown
	// Extra carries figure-specific values (bytes returned, phase splits).
	Extra map[string]float64
}

// Result is one regenerated figure/table.
type Result struct {
	ID     string
	Title  string
	XLabel string
	Points []Point
	Notes  []string
}

func (r *Result) add(series, x string, e *engine.Exec, extra map[string]float64) {
	r.Points = append(r.Points, Point{
		Series:     series,
		X:          x,
		RuntimeSec: e.RuntimeSeconds(),
		Cost:       e.Cost(),
		Extra:      extra,
	})
}

// SeriesNames returns the distinct series in first-seen order.
func (r *Result) SeriesNames() []string {
	var names []string
	seen := map[string]bool{}
	for _, p := range r.Points {
		if !seen[p.Series] {
			seen[p.Series] = true
			names = append(names, p.Series)
		}
	}
	return names
}

// Get returns the point for (series, x).
func (r *Result) Get(series, x string) (Point, bool) {
	for _, p := range r.Points {
		if p.Series == series && p.X == x {
			return p, true
		}
	}
	return Point{}, false
}

// String renders the paper-style table: one row per x value, runtime and
// cost columns per series.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	series := r.SeriesNames()
	var xs []string
	seenX := map[string]bool{}
	for _, p := range r.Points {
		if !seenX[p.X] {
			seenX[p.X] = true
			xs = append(xs, p.X)
		}
	}
	fmt.Fprintf(&b, "%-16s", r.XLabel)
	for _, s := range series {
		fmt.Fprintf(&b, " | %22s", s)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-16s", "")
	for range series {
		fmt.Fprintf(&b, " | %10s %11s", "runtime(s)", "cost($)")
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%-16s", x)
		for _, s := range series {
			if p, ok := r.Get(s, x); ok {
				fmt.Fprintf(&b, " | %10.2f %11.6f", p.RuntimeSec, p.Cost.Total())
			} else {
				fmt.Fprintf(&b, " | %10s %11s", "-", "-")
			}
		}
		b.WriteByte('\n')
	}
	// Extra columns, if any, rendered per point.
	extraKeys := map[string]bool{}
	for _, p := range r.Points {
		for k := range p.Extra {
			extraKeys[k] = true
		}
	}
	if len(extraKeys) > 0 {
		var keys []string
		for k := range extraKeys {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "-- extra: %s --\n", strings.Join(keys, ", "))
		for _, p := range r.Points {
			if len(p.Extra) == 0 {
				continue
			}
			fmt.Fprintf(&b, "%-16s %-24s", p.X, p.Series)
			for _, k := range keys {
				if v, ok := p.Extra[k]; ok {
					fmt.Fprintf(&b, " %s=%.3f", k, v)
				}
			}
			b.WriteByte('\n')
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
