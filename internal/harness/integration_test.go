package harness

import (
	"context"
	"net/http/httptest"
	"testing"

	"pushdowndb/internal/engine"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/s3http"
	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/store"
	"pushdowndb/internal/tpch"
)

// The integration test runs PushdownDB against the storage service over
// the real HTTP wire (ranged GETs, multi-range GETs, S3 Select requests)
// and checks it produces exactly the same answers and byte accounting as
// the in-process path.

func TestEngineOverHTTPMatchesInProc(t *testing.T) {
	st := store.New()
	ds, err := tpch.LoadWithIndexes(context.Background(), st, tpch.Dataset{SF: 0.001, Seed: 3, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s3http.NewServer(st))
	defer srv.Close()

	inprocDB, err := engine.Open(ds.Bucket,
		engine.WithBackend("inproc", s3api.NewInProc(st)))
	if err != nil {
		t.Fatal(err)
	}
	httpDB, err := engine.Open(ds.Bucket,
		engine.WithBackend("s3http", s3http.NewClient(srv.URL, srv.Client())))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("TPCHQueries", func(t *testing.T) {
		for _, q := range tpch.Queries() {
			a, ea, err := q.Optimized(inprocDB)
			if err != nil {
				t.Fatalf("%s in-proc: %v", q.Name, err)
			}
			b, eb, err := q.Optimized(httpDB)
			if err != nil {
				t.Fatalf("%s over HTTP: %v", q.Name, err)
			}
			if len(a.Rows) != len(b.Rows) {
				t.Fatalf("%s: %d rows in-proc vs %d over HTTP", q.Name, len(a.Rows), len(b.Rows))
			}
			for i := range a.Rows {
				for j := range a.Rows[i] {
					av, bv := a.Rows[i][j].String(), b.Rows[i][j].String()
					if av != bv {
						t.Fatalf("%s row %d col %d: %q vs %q", q.Name, i, j, av, bv)
					}
				}
			}
			// Byte accounting must be identical: the wire changes nothing
			// about what the storage side scanned or returned.
			_, aScan, aRet, aGet := ea.Metrics.Totals()
			_, bScan, bRet, bGet := eb.Metrics.Totals()
			if aScan != bScan || aRet != bRet || aGet != bGet {
				t.Errorf("%s accounting differs: inproc(%d,%d,%d) http(%d,%d,%d)",
					q.Name, aScan, aRet, aGet, bScan, bRet, bGet)
			}
		}
	})

	t.Run("IndexFilter", func(t *testing.T) {
		for _, multi := range []bool{false, true} {
			e := httpDB.NewExec()
			rel, err := e.IndexFilter("lineitem", "l_extendedprice", "value <= 2000",
				engine.IndexFilterOptions{MultiRange: multi})
			if err != nil {
				t.Fatalf("multi=%v: %v", multi, err)
			}
			want, err := inprocDB.NewExec().S3SideFilter("lineitem", "l_extendedprice <= 2000", "*")
			if err != nil {
				t.Fatal(err)
			}
			if len(rel.Rows) != len(want.Rows) {
				t.Fatalf("multi=%v: %d rows vs %d", multi, len(rel.Rows), len(want.Rows))
			}
		}
	})

	t.Run("GroupByAndTopK", func(t *testing.T) {
		aggs := []engine.GroupAgg{{Func: sqlparse.AggSum, Expr: "o_totalprice", As: "total"}}
		a, err := inprocDB.NewExec().S3SideGroupBy("orders", "o_orderpriority", aggs, "")
		if err != nil {
			t.Fatal(err)
		}
		b, err := httpDB.NewExec().S3SideGroupBy("orders", "o_orderpriority", aggs, "")
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Rows) != len(b.Rows) {
			t.Fatalf("group counts differ: %d vs %d", len(a.Rows), len(b.Rows))
		}

		ta, err := inprocDB.NewExec().SamplingTopK("lineitem", "l_extendedprice", 7, true,
			engine.SamplingTopKOptions{SampleSize: 200})
		if err != nil {
			t.Fatal(err)
		}
		tb, err := httpDB.NewExec().SamplingTopK("lineitem", "l_extendedprice", 7, true,
			engine.SamplingTopKOptions{SampleSize: 200})
		if err != nil {
			t.Fatal(err)
		}
		vi := ta.ColIndex("l_extendedprice")
		for i := range ta.Rows {
			x, _ := ta.Rows[i][vi].Num()
			y, _ := tb.Rows[i][vi].Num()
			if x != y {
				t.Fatalf("top-K row %d differs over HTTP: %v vs %v", i, x, y)
			}
		}
	})

	t.Run("SQLFrontEnd", func(t *testing.T) {
		sql := "SELECT o_orderpriority, COUNT(*) AS n FROM orders GROUP BY o_orderpriority ORDER BY o_orderpriority"
		a, _, err := inprocDB.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := httpDB.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("SQL results differ over HTTP:\n%s\nvs\n%s", a, b)
		}
	})
}
