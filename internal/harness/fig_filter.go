package harness

import (
	"context"
	"fmt"
	"math"

	"pushdowndb/internal/engine"
	"pushdowndb/internal/tpch"
)

// Fig1Selectivities is the paper's x-axis: 1e-7 .. 1e-2.
var Fig1Selectivities = []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2}

// RunFig1 reproduces Fig. 1: runtime and cost of the three filter
// strategies (server-side, S3-side, indexing) as selectivity grows. The
// filter is a range predicate over lineitem's order key, whose dense
// uniform values make "l_orderkey <= X" select exactly the target
// fraction of rows.
func RunFig1(ctx context.Context, env *Env) (*Result, error) {
	db, err := env.TPCH(ctx)
	if err != nil {
		return nil, err
	}
	maxOrder := tpch.SizesFor(env.Scale.TPCHSF).Orders
	res := &Result{
		ID:     "Fig1",
		Title:  "Filter algorithms vs selectivity",
		XLabel: "selectivity",
	}
	for _, sel := range Fig1Selectivities {
		x := fmt.Sprintf("%.0e", sel)
		threshold := int(math.Ceil(sel * float64(maxOrder)))
		if threshold < 1 {
			threshold = 1
		}
		pred := fmt.Sprintf("l_orderkey <= %d", threshold)

		e1 := db.NewExecContext(ctx)
		serverRel, err := e1.ServerSideFilter("lineitem", pred, "")
		if err != nil {
			return nil, err
		}
		res.add("Server-Side Filter", x, e1, nil)

		e2 := db.NewExecContext(ctx)
		s3Rel, err := e2.S3SideFilter("lineitem", pred, "*")
		if err != nil {
			return nil, err
		}
		res.add("S3-Side Filter", x, e2, nil)

		e3 := db.NewExecContext(ctx)
		idxRel, err := e3.IndexFilter("lineitem", "l_orderkey",
			fmt.Sprintf("value <= %d", threshold), engine.IndexFilterOptions{})
		if err != nil {
			return nil, err
		}
		res.add("Indexing", x, e3, map[string]float64{"rows": float64(len(idxRel.Rows))})

		if len(serverRel.Rows) != len(s3Rel.Rows) || len(serverRel.Rows) != len(idxRel.Rows) {
			return nil, fmt.Errorf("harness: Fig1 row mismatch at %s: %d/%d/%d",
				x, len(serverRel.Rows), len(s3Rel.Rows), len(idxRel.Rows))
		}
	}
	res.Notes = append(res.Notes,
		"predicate: l_orderkey <= selectivity * |orders| (dense keys make selectivity exact)")
	return res, nil
}

// RunFig1MultiRange is the Suggestion-1 ablation: indexing with one GET
// per row (the 2020 S3 API) vs one multi-range GET per partition.
func RunFig1MultiRange(ctx context.Context, env *Env) (*Result, error) {
	db, err := env.TPCH(ctx)
	if err != nil {
		return nil, err
	}
	maxOrder := tpch.SizesFor(env.Scale.TPCHSF).Orders
	res := &Result{
		ID:     "Fig1-S1",
		Title:  "Indexing: per-row GETs vs multi-range GET (Suggestion 1)",
		XLabel: "selectivity",
	}
	for _, sel := range Fig1Selectivities {
		x := fmt.Sprintf("%.0e", sel)
		threshold := int(math.Ceil(sel * float64(maxOrder)))
		if threshold < 1 {
			threshold = 1
		}
		pred := fmt.Sprintf("value <= %d", threshold)

		e1 := db.NewExecContext(ctx)
		if _, err := e1.IndexFilter("lineitem", "l_orderkey", pred, engine.IndexFilterOptions{}); err != nil {
			return nil, err
		}
		res.add("Per-Row GETs", x, e1, nil)

		e2 := db.NewExecContext(ctx)
		if _, err := e2.IndexFilter("lineitem", "l_orderkey", pred, engine.IndexFilterOptions{MultiRange: true}); err != nil {
			return nil, err
		}
		res.add("Multi-Range GET", x, e2, nil)
	}
	return res, nil
}
