package harness

import (
	"context"
	"fmt"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/engine"
	"pushdowndb/internal/s3api"
)

// cacheFigBudget is the result-cache byte budget the Cache figure runs
// with — comfortably larger than any scan the figure repeats.
const cacheFigBudget = 256 << 20

// cacheFigQueries are the repeated workloads: a single-table filter +
// group-by (always select-based, on every profile) and the Listing-2 join
// (whose strategy the planner picks per profile — on fast free tiers it may
// plan a GET-based baseline join that owes the select cache nothing, which
// the figure reports rather than hides).
func cacheFigQueries() []struct{ name, sql string } {
	acctbal := Fig2Acctbals[len(Fig2Acctbals)-1]
	return []struct{ name, sql string }{
		{"scan", "SELECT l_returnflag, COUNT(*) AS n, SUM(l_extendedprice) AS total " +
			"FROM lineitem WHERE l_quantity < 30 GROUP BY l_returnflag ORDER BY l_returnflag"},
		{"join", fmt.Sprintf("SELECT SUM(o.o_totalprice) AS total, COUNT(*) AS n "+
			"FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey "+
			"WHERE c.c_acctbal <= %s", acctbal)},
	}
}

// RunCache measures the select-result cache (benchfig -fig Cache): each
// query runs cold and then warm against the same DB on each backend
// profile. Warm repeats are served from the compute tier — zero storage
// Select requests, no scan/transfer dollars, only the response re-parse on
// the virtual clock — so the warm cost curve sits strictly below the cold
// one on every metered profile, with the gap widest where the wire is
// slowest and egress is billed (cross-region S3).
func RunCache(ctx context.Context, env *Env) (*Result, error) {
	res := &Result{
		ID:     "Cache",
		Title:  "Cold vs warm result cache per backend profile",
		XLabel: "backend",
	}
	profiles := []cloudsim.Profile{
		cloudsim.S3Profile(),
		cloudsim.CrossRegionS3Profile(),
		cloudsim.LocalFSProfile(),
	}
	for _, profile := range profiles {
		db, err := env.TPCHWith(ctx, 
			[]engine.Option{engine.WithResultCache(cacheFigBudget)},
			s3api.WithProfile(profile))
		if err != nil {
			return nil, err
		}
		for _, q := range cacheFigQueries() {
			cold, e1, err := db.QueryContext(ctx, q.sql)
			if err != nil {
				return nil, fmt.Errorf("harness: cache %s cold on %s: %w", q.name, profile.Name, err)
			}
			warm, e2, err := db.QueryContext(ctx, q.sql)
			if err != nil {
				return nil, fmt.Errorf("harness: cache %s warm on %s: %w", q.name, profile.Name, err)
			}
			if cold.String() != warm.String() {
				return nil, fmt.Errorf("harness: cache %s on %s changed the answer between cold and warm",
					q.name, profile.Name)
			}
			coldReq, _, _, _ := e1.Metrics.Totals()
			warmReq, _, _, _ := e2.Metrics.Totals()
			hits, hitBytes := e2.Metrics.CacheTotals()
			res.add(q.name+" cold", profile.Name, e1, map[string]float64{
				"requests": float64(coldReq),
			})
			res.add(q.name+" warm", profile.Name, e2, map[string]float64{
				"requests":   float64(warmReq),
				"cache_hits": float64(hits),
				"cache_MB":   float64(hitBytes) / 1e6,
			})
		}
	}
	res.Notes = append(res.Notes,
		"same DB per profile: the cold run fills the result cache, the warm run repeats the query",
		"warm scans are served from the compute tier: no Select requests, no scan/transfer dollars, decode only",
		"the join row reports whatever strategy the planner picked per profile; a GET-based baseline join is unaffected by the select cache beyond free planning")
	return res, nil
}
