package harness

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/engine"
	"pushdowndb/internal/scanshare"
	"pushdowndb/internal/server"
)

// serveFigClientCounts is the concurrency sweep (benchfig -fig Serve).
var serveFigClientCounts = []int{1, 2, 4, 8}

// serveRound is one measured round of the Serve figure: every client ran
// every query once through the wire.
type serveRound struct {
	queries    int
	runtimeSec float64 // summed virtual runtimes
	cost       cloudsim.CostBreakdown
	requests   int64
	cacheHits  int64
}

// runServeRound drives n concurrent clients through the server, each
// running the whole query set once, and sums the per-query meter readings
// the server reports. Each client accumulates into its own slot and the
// slots fold in client order after the barrier — summing shared floats in
// goroutine-completion order would make the figure's totals vary run to
// run. Canceling ctx aborts every client's in-flight request.
func runServeRound(ctx context.Context, base string, n int, queries []struct{ name, sql string }) (*serveRound, error) {
	rounds := make([]serveRound, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := server.NewClient(base)
			cl.Tenant = fmt.Sprintf("client-%d", c)
			mine := &rounds[c]
			for _, q := range queries {
				res, err := cl.Query(ctx, q.sql)
				if err != nil {
					errs[c] = fmt.Errorf("client %d %s: %w", c, q.name, err)
					return
				}
				mine.queries++
				mine.runtimeSec += res.RuntimeSec
				mine.cost = mine.cost.Add(res.Cost)
				mine.requests += res.Requests
				mine.cacheHits += res.CacheHits
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var round serveRound
	for _, r := range rounds {
		round.queries += r.queries
		round.runtimeSec += r.runtimeSec
		round.cost = round.cost.Add(r.cost)
		round.requests += r.requests
		round.cacheHits += r.cacheHits
	}
	return &round, nil
}

// add renders a round as one figure point: simulated cost and virtual
// runtime per query, averaged over everything the round's clients ran.
func (r *serveRound) add(res *Result, series string, clients int) {
	per := 1.0 / float64(r.queries)
	res.Points = append(res.Points, Point{
		Series:     series,
		X:          fmt.Sprint(clients),
		RuntimeSec: r.runtimeSec * per,
		Cost:       r.cost.Scale(per),
		Extra: map[string]float64{
			"requests_per_query": float64(r.requests) * per,
			"cache_hits":         float64(r.cacheHits),
		},
	})
}

// RunServe measures pushdownd under concurrency (benchfig -fig Serve):
// for each client count, a fresh server over a fresh shared DB (result
// cache on) runs the Cache figure's workload twice — a cold round that
// fills the shared cache and a warm round that repeats it. The figure
// reports simulated cost per query: cold cost falls as clients grow
// (concurrent clients share one cache and one stats cache, so later
// arrivals ride fills paid by earlier ones) and the warm curve sits
// strictly below cold at every width — the whole point of putting one
// long-lived daemon in front of many clients instead of giving each its
// own engine.
func RunServe(ctx context.Context, env *Env) (*Result, error) {
	res := &Result{
		ID:     "Serve",
		Title:  "pushdownd: simulated cost per query vs concurrent clients, cold vs warm cache",
		XLabel: "clients",
	}
	queries := cacheFigQueries()
	for _, n := range serveFigClientCounts {
		// Result cache plus scan sharing at its defaults — the same pair
		// pushdownd ships with. Sharing only changes the cold round: cache
		// misses arriving together coalesce, and the non-leaders show up as
		// in-flight dedups on the cache stats rather than hits.
		db, err := env.TPCHWith(ctx, []engine.Option{
			engine.WithResultCache(cacheFigBudget),
			engine.WithScanSharing(scanshare.Config{}),
		})
		if err != nil {
			return nil, err
		}
		srv := server.New(db, server.Config{
			MaxClients:     2 * n,
			RequestTimeout: time.Minute,
		})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		serveDone := make(chan struct{})
		go func() { _ = srv.Serve(l); close(serveDone) }()
		base := "http://" + l.Addr().String()

		cold, err := runServeRound(ctx, base, n, queries)
		if err == nil {
			var warm *serveRound
			warm, err = runServeRound(ctx, base, n, queries)
			if err == nil {
				cold.add(res, "cold", n)
				warm.add(res, "warm", n)
				// Split the refill dedups out of the hit count on the warm
				// point, so the figure distinguishes "served from cache"
				// from "rode a neighbor's in-flight miss".
				if cs, ok := db.ResultCacheStats(); ok {
					res.Points[len(res.Points)-1].Extra["inflight_dedup"] = float64(cs.InflightDedup)
				}
			}
		}
		sdctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		sderr := srv.Shutdown(sdctx)
		cancel()
		<-serveDone
		if err != nil {
			return nil, err
		}
		if sderr != nil {
			return nil, fmt.Errorf("harness: serve shutdown at %d clients: %w", n, sderr)
		}
	}
	res.Notes = append(res.Notes,
		"fresh server + DB per client count; every client runs the scan and join workloads once per round over HTTP",
		"cold round: concurrent clients share one result cache and one stats cache, so later arrivals ride earlier fills",
		"warm round: repeats are served from the compute tier — no Select requests, no scan/transfer dollars")
	return res, nil
}
