package harness

import (
	"context"
	"strings"
	"testing"
)

func TestPlannerFigure(t *testing.T) {
	env := testEnv(t)
	r, err := RunPlanner(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + r.String())

	if len(r.Points) != len(Fig2Acctbals) {
		t.Fatalf("points = %d, want %d", len(r.Points), len(Fig2Acctbals))
	}
	// At the paper's TPC-H scale the Bloom join dominates the Fig. 2
	// sweep (it wins at every selectivity in the paper); the planner must
	// pick it at least at the most selective point.
	tightest := r.Points[0]
	if !strings.Contains(tightest.Series, "bloom") {
		t.Errorf("at %s the planner chose %q, expected the Bloom join", tightest.X, tightest.Series)
	}
	// Every point carries a real execution: positive runtime and cost.
	for _, p := range r.Points {
		if p.RuntimeSec <= 0 || p.Cost.Total() <= 0 {
			t.Errorf("point (%s, %s) has no metered execution", p.Series, p.X)
		}
	}
}
