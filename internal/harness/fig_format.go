package harness

import (
	"context"
	"fmt"
)

// Fig11Selectivities is the paper's x-axis (fraction of rows returned).
var Fig11Selectivities = []float64{0, 0.01, 0.1, 0.5, 1}

// Fig11ColumnCounts is the paper's three table widths.
var Fig11ColumnCounts = []int{1, 10, 20}

// RunFig11 reproduces Fig. 11: filter runtime over CSV vs columnar
// ("Parquet" stand-in) tables of 1, 10 and 20 float columns, returning a
// single filtered column. The c1 values are uniform in [0,1), so the
// predicate c1 < x has selectivity exactly x.
func RunFig11(ctx context.Context, env *Env) (*Result, error) {
	res := &Result{
		ID:     "Fig11",
		Title:  "CSV vs Parquet(stand-in) filter scans",
		XLabel: "selectivity",
	}
	for _, cols := range Fig11ColumnCounts {
		db, err := env.FloatTables(ctx, cols)
		if err != nil {
			return nil, err
		}
		for _, sel := range Fig11Selectivities {
			x := fmt.Sprintf("%g", sel)
			sql := fmt.Sprintf("SELECT c1 FROM S3Object WHERE c1 < %.4f", sel)

			e1 := db.NewExecContext(ctx)
			csvRel, err := e1.SelectRows("csv scan", e1.NextStage(), "fcsv", sql)
			if err != nil {
				return nil, err
			}
			res.add(fmt.Sprintf("CSV %d-col", cols), x, e1, nil)

			e2 := db.NewExecContext(ctx)
			colRel, err := e2.SelectRows("columnar scan", e2.NextStage(), "fcol", sql)
			if err != nil {
				return nil, err
			}
			_, scanned, _, _ := e2.Metrics.Totals()
			res.add(fmt.Sprintf("Parquet %d-col", cols), x, e2,
				map[string]float64{"scannedMB": float64(scanned) / 1e6})

			if len(csvRel.Rows) != len(colRel.Rows) {
				return nil, fmt.Errorf("harness: Fig11 cols=%d sel=%s: CSV %d rows vs columnar %d",
					cols, x, len(csvRel.Rows), len(colRel.Rows))
			}
		}
	}
	res.Notes = append(res.Notes,
		"columnar results are still returned CSV-encoded (the paper's observed S3 Select behaviour), so transfer-bound points converge")
	return res, nil
}

// AllFigures runs every reproduced figure in paper order. Canceling ctx
// stops between (and, through the engine, inside) figure runs.
func AllFigures(ctx context.Context, env *Env) ([]*Result, error) {
	runs := []func(context.Context, *Env) (*Result, error){
		RunFig1, RunFig2, RunFig3, RunFig4, RunFig5, RunFig6, RunFig7,
		RunFig8, RunFig9, RunFig10, RunFig11, RunParallel, RunBackends,
	}
	var out []*Result
	for _, run := range runs {
		r, err := run(ctx, env)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// AblationFigures runs the Section-X extension ablations.
func AblationFigures(ctx context.Context, env *Env) ([]*Result, error) {
	runs := []func(context.Context, *Env) (*Result, error){
		RunFig1MultiRange, RunFig4Bitwise, RunFig6PartialGroupBy, RunTopKModel,
		RunSec9TPCHFormats, RunS5Pricing,
	}
	var out []*Result
	for _, run := range runs {
		r, err := run(ctx, env)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
