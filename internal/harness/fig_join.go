package harness

import (
	"context"
	"fmt"

	"pushdowndb/internal/engine"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/selectengine"
)

// The paper's Listing-2 evaluation query:
//
//	SELECT SUM(o_totalprice) FROM customer, orders
//	WHERE o_custkey = c_custkey
//	  AND c_acctbal <= upper_c_acctbal
//	  AND o_orderdate < upper_o_orderdate
const joinAggItems = "SUM(o_totalprice) AS total"

func listing2Spec(upperAcctbal string, upperOrderdate string, fpr float64) engine.JoinSpec {
	js := engine.JoinSpec{
		LeftTable: "customer", RightTable: "orders",
		LeftKey: "c_custkey", RightKey: "o_custkey",
		LeftFilter:  "c_acctbal <= " + upperAcctbal,
		LeftProject: []string{"c_custkey"},
		TargetFPR:   fpr,
		Seed:        2,
	}
	if upperOrderdate != "" {
		js.RightFilter = "o_orderdate < '" + upperOrderdate + "'"
	}
	return js
}

func runJoinPoint(ctx context.Context, res *Result, db *engine.DB, x string, js engine.JoinSpec, algorithms []string) error {
	var counts []int
	for _, algo := range algorithms {
		e := db.NewExecContext(ctx)
		rel, err := e.JoinAggregate(js, algo, joinAggItems+", COUNT(*) AS n")
		if err != nil {
			return fmt.Errorf("harness: %s join at %s: %w", algo, x, err)
		}
		n, _ := rel.Rows[0][1].IntNum()
		counts = append(counts, int(n))
		series := map[string]string{
			"baseline": "Baseline Join", "filtered": "Filtered Join", "bloom": "Bloom Join",
		}[algo]
		res.add(series, x, e, nil)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] != counts[0] {
			return fmt.Errorf("harness: join algorithms disagree at %s: %v", x, counts)
		}
	}
	return nil
}

// Fig2Acctbals is the paper's customer-selectivity sweep.
var Fig2Acctbals = []string{"-950", "-850", "-750", "-650", "-550", "-450"}

// RunFig2 reproduces Fig. 2: the three join algorithms as the customer
// filter (c_acctbal <= X) loosens. The orders side is unfiltered.
func RunFig2(ctx context.Context, env *Env) (*Result, error) {
	db, err := env.TPCH(ctx)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "Fig2",
		Title:  "Join algorithms vs customer selectivity (c_acctbal <= ?)",
		XLabel: "c_acctbal <=",
	}
	for _, ub := range Fig2Acctbals {
		js := listing2Spec(ub, "", 0.01)
		if err := runJoinPoint(ctx, res, db, ub, js, []string{"baseline", "filtered", "bloom"}); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Fig3Orderdates is the paper's orders-selectivity sweep ("None" = no
// orders filter).
var Fig3Orderdates = []string{"1992-03-01", "1992-06-01", "1993-01-01", "1994-01-01", "1995-01-01", "None"}

// RunFig3 reproduces Fig. 3: the join algorithms as the orders filter
// (o_orderdate < D) loosens, with the customer filter fixed at -950.
func RunFig3(ctx context.Context, env *Env) (*Result, error) {
	db, err := env.TPCH(ctx)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "Fig3",
		Title:  "Join algorithms vs orders selectivity (o_orderdate < ?)",
		XLabel: "o_orderdate <",
	}
	for _, d := range Fig3Orderdates {
		date := d
		if d == "None" {
			date = ""
		}
		js := listing2Spec("-950", date, 0.01)
		if err := runJoinPoint(ctx, res, db, d, js, []string{"baseline", "filtered", "bloom"}); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Fig4FPRs is the paper's Bloom-filter false-positive-rate sweep.
var Fig4FPRs = []float64{0.0001, 0.001, 0.01, 0.1, 0.3, 0.5}

// RunFig4 reproduces Fig. 4: Bloom join across false-positive rates, with
// baseline and filtered joins as flat references. Customer filter fixed at
// -950, orders unfiltered.
func RunFig4(ctx context.Context, env *Env) (*Result, error) {
	db, err := env.TPCH(ctx)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "Fig4",
		Title:  "Bloom join vs false positive rate",
		XLabel: "FPR",
	}
	// References measured once, reported at every x for plotting parity.
	baseExec := db.NewExecContext(ctx)
	if _, err := baseExec.JoinAggregate(listing2Spec("-950", "", 0.01), "baseline", joinAggItems); err != nil {
		return nil, err
	}
	filtExec := db.NewExecContext(ctx)
	if _, err := filtExec.JoinAggregate(listing2Spec("-950", "", 0.01), "filtered", joinAggItems); err != nil {
		return nil, err
	}
	for _, fpr := range Fig4FPRs {
		x := fmt.Sprintf("%g", fpr)
		res.add("Baseline Join", x, baseExec, nil)
		res.add("Filtered Join", x, filtExec, nil)
		e := db.NewExecContext(ctx)
		if _, err := e.JoinAggregate(listing2Spec("-950", "", fpr), "bloom", joinAggItems); err != nil {
			return nil, err
		}
		_, _, returned, _ := e.Metrics.Totals()
		res.add("Bloom Join", x, e, map[string]float64{"returnedMB": float64(returned) / 1e6})
	}
	return res, nil
}

// RunFig4Bitwise is the Suggestion-3 ablation: the '0'/'1'-string Bloom
// predicate (the paper's encoding) vs the BLOOM_CONTAINS bitwise form at
// the same FPR.
func RunFig4Bitwise(ctx context.Context, env *Env) (*Result, error) {
	// The bitwise predicate needs a storage side that supports
	// BLOOM_CONTAINS: ask for a backend advertising the capability.
	db, err := env.TPCH(ctx, s3api.WithCapabilities(
		selectengine.Capabilities{AllowBloomContains: true}))
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "Fig4-S3",
		Title:  "Bloom predicate encoding: '0'/'1' string vs bitwise (Suggestion 3)",
		XLabel: "FPR",
	}
	for _, fpr := range []float64{0.0001, 0.01, 0.3} {
		x := fmt.Sprintf("%g", fpr)
		e1 := db.NewExecContext(ctx)
		if _, err := e1.JoinAggregate(listing2Spec("-950", "", fpr), "bloom", joinAggItems); err != nil {
			return nil, err
		}
		res.add("String Bloom", x, e1, nil)

		js := listing2Spec("-950", "", fpr)
		js.Bitwise = true
		e2 := db.NewExecContext(ctx)
		if _, err := e2.JoinAggregate(js, "bloom", joinAggItems); err != nil {
			return nil, err
		}
		res.add("Bitwise Bloom", x, e2, nil)
	}
	return res, nil
}
