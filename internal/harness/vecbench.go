package harness

import (
	"context"
	"fmt"
	"runtime"

	"pushdowndb/internal/engine"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/store"
	"pushdowndb/internal/tpch"
)

// The vectorized-vs-row local operator benchmark: one fixture and one case
// list shared by the root bench_vec_test.go (go test -bench=BenchmarkVec)
// and cmd/benchvec (which times the same cases and writes BENCH_vec.json).
// The cases run the engine's actual operator entry points — the vectorized
// twins convert only the referenced columns, exactly as query execution
// does — over a materialized TPC-H lineitem/part at the requested scale
// factor, so the measured gap is the local execution gap, not scan or
// decode differences.

// VecBenchFixture holds the materialized relations the cases run over.
type VecBenchFixture struct {
	Lineitem *engine.Relation
	Part     *engine.Relation
	Workers  int
}

// VecBenchCase is one operator comparison: Run executes the operator once
// through the chosen path and reports the output row count (a cheap
// checksum the callers compare across paths).
type VecBenchCase struct {
	Name string
	Run  func(f *VecBenchFixture, vectorized bool) (int, error)
}

// NewVecBenchFixture generates the TPC-H tables at sf (deterministic seed
// 42, 4 partitions) and materializes lineitem and part.
func NewVecBenchFixture(ctx context.Context, sf float64) (*VecBenchFixture, error) {
	st := store.New()
	ds, err := tpch.Load(ctx, st, tpch.Dataset{SF: sf, Seed: 42, Bucket: "vecbench", Partitions: 4})
	if err != nil {
		return nil, err
	}
	db, err := engine.Open(ds.Bucket, engine.WithBackend("s3sim", s3api.NewInProc(st)))
	if err != nil {
		return nil, err
	}
	e := db.NewExec()
	lineitem, err := e.LoadTable("load lineitem", 0, "lineitem")
	if err != nil {
		return nil, err
	}
	part, err := e.LoadTable("load part", 0, "part")
	if err != nil {
		return nil, err
	}
	return &VecBenchFixture{Lineitem: lineitem, Part: part, Workers: runtime.NumCPU()}, nil
}

// vecBenchPred is the Q6-shaped filter: a date range plus a numeric bound,
// the selection shape Fig. 1 sweeps.
const vecBenchPred = "l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01' AND l_quantity < 24"

// vecBenchGroupItems is the Q1-shaped aggregation over the two flag
// columns; SUM over the integer quantity column exercises the exact
// accumulator on its cheap path.
const vecBenchGroupItems = "l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty, COUNT(*) AS count_order"

// VecBenchCases is the benchmark case list: filter, group-by and hash join
// through the row-at-a-time or vectorized local operators.
func VecBenchCases() []VecBenchCase {
	return []VecBenchCase{
		{Name: "filter", Run: func(f *VecBenchFixture, vectorized bool) (int, error) {
			op := engine.FilterLocalN
			if vectorized {
				op = engine.VecFilterLocalN
			}
			out, err := op(f.Lineitem, vecBenchPred, f.Workers)
			if err != nil {
				return 0, err
			}
			return len(out.Rows), nil
		}},
		{Name: "groupby", Run: func(f *VecBenchFixture, vectorized bool) (int, error) {
			op := engine.GroupByLocalN
			if vectorized {
				op = engine.VecGroupByLocalN
			}
			out, err := op(f.Lineitem, "l_returnflag, l_linestatus", vecBenchGroupItems, f.Workers)
			if err != nil {
				return 0, err
			}
			return len(out.Rows), nil
		}},
		{Name: "join", Run: func(f *VecBenchFixture, vectorized bool) (int, error) {
			op := engine.HashJoinLocalN
			if vectorized {
				op = engine.VecHashJoinLocalN
			}
			out, err := op(f.Part, f.Lineitem, "p_partkey", "l_partkey", f.Workers)
			if err != nil {
				return 0, err
			}
			return len(out.Rows), nil
		}},
	}
}

// VecBenchVerify runs every case through both paths and errors unless the
// outputs agree — the cheap cross-check cmd/benchvec applies before timing.
func VecBenchVerify(f *VecBenchFixture) error {
	for _, c := range VecBenchCases() {
		rowN, err := c.Run(f, false)
		if err != nil {
			return fmt.Errorf("%s (row): %w", c.Name, err)
		}
		vecN, err := c.Run(f, true)
		if err != nil {
			return fmt.Errorf("%s (vec): %w", c.Name, err)
		}
		if rowN != vecN {
			return fmt.Errorf("%s: row path returned %d rows, vectorized %d", c.Name, rowN, vecN)
		}
	}
	return nil
}
