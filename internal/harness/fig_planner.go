package harness

import (
	"context"
	"fmt"

	"pushdowndb/internal/engine"
)

// RunPlanner exercises the SQL join planner over the paper's Listing-2
// workload: as the customer filter loosens, the cost model should move
// from the Bloom join (selective build side, pushdown pays off) toward
// the baseline join. Each point runs the full SQL query end-to-end —
// planning probes included — and cross-checks the answer against the
// explicit BloomJoin operator call, so the series shows what the planner
// actually chose and what it actually cost.
func RunPlanner(ctx context.Context, env *Env) (*Result, error) {
	db, err := env.TPCH(ctx)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "Planner",
		Title:  "Cost-based join strategy selection vs customer selectivity (c_acctbal <= ?)",
		XLabel: "c_acctbal <=",
	}
	for _, ub := range Fig2Acctbals {
		sql := fmt.Sprintf(
			"SELECT SUM(o.o_totalprice) AS total, COUNT(*) AS n "+
				"FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey "+
				"WHERE c.c_acctbal <= %s", ub)
		rel, e, err := db.QueryContext(ctx, sql)
		if err != nil {
			return nil, fmt.Errorf("harness: planner at %s: %w", ub, err)
		}
		plan := e.QueryPlan()
		if plan == nil || len(plan.Steps) != 1 {
			return nil, fmt.Errorf("harness: planner at %s produced no join plan", ub)
		}
		step := plan.Steps[0]

		// Cross-check against the explicit operator API.
		opExec := db.NewExecContext(ctx)
		want, err := opExec.JoinAggregate(listing2Spec(ub, "", 0.01), "bloom",
			"SUM(o_totalprice) AS total, COUNT(*) AS n")
		if err != nil {
			return nil, err
		}
		n, _ := rel.Rows[0][1].IntNum()
		wn, _ := want.Rows[0][1].IntNum()
		if n != wn {
			return nil, fmt.Errorf("harness: planner at %s: SQL count %d != operator count %d", ub, n, wn)
		}

		strategyCode := map[string]float64{
			engine.StrategyBaseline: 0, engine.StrategyBloom: 1,
		}[step.Strategy]
		res.add("Planner ("+step.Strategy+")", ub, e, map[string]float64{"bloom": strategyCode})
	}
	res.Notes = append(res.Notes,
		"series name records the strategy the cost model picked at each selectivity",
		"runtime/cost include the planner's own COUNT(*) statistics probes")
	return res, nil
}
