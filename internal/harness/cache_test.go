package harness

import (
	"context"
	"strings"
	"testing"
)

// TestRunCacheWarmBeatsCold is the acceptance check for the Cache figure:
// on the metered S3 and CrossRegionS3 profiles, the warm repeat of every
// query must cost strictly less (and run no slower) than its cold run.
func TestRunCacheWarmBeatsCold(t *testing.T) {
	env := NewEnv(SmallScale())
	res, err := RunCache(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{"scan", "join"}
	for _, profile := range []string{"s3", "s3-cross-region"} {
		for _, q := range queries {
			cold, ok1 := res.Get(q+" cold", profile)
			warm, ok2 := res.Get(q+" warm", profile)
			if !ok1 || !ok2 {
				t.Fatalf("missing %s points for %s:\n%s", q, profile, res)
			}
			if warm.Cost.Total() >= cold.Cost.Total() {
				t.Errorf("%s on %s: warm cost $%.8f not strictly below cold $%.8f",
					q, profile, warm.Cost.Total(), cold.Cost.Total())
			}
			if warm.RuntimeSec > cold.RuntimeSec {
				t.Errorf("%s on %s: warm runtime %.3fs above cold %.3fs",
					q, profile, warm.RuntimeSec, cold.RuntimeSec)
			}
		}
		// The scan workload is always select-based, so its warm repeat must
		// actually have been served from the cache.
		warm, _ := res.Get("scan warm", profile)
		if warm.Extra["cache_hits"] == 0 {
			t.Errorf("scan warm on %s recorded no cache hits", profile)
		}
	}
	// The figure carries the localfs tier too (cost there is compute-only).
	if _, ok := res.Get("scan warm", "localfs"); !ok {
		t.Errorf("localfs points missing:\n%s", res)
	}
	if !strings.Contains(res.String(), "Cache") {
		t.Error("result does not render")
	}
}
