package harness

import (
	"context"
	"testing"

	"pushdowndb/internal/engine"
)

// TestRunBackends: the backend sweep must run, keep answers identical, and
// show the planner's strategy reacting to the storage tier — the local
// NVMe end of the sweep and the thin-WAN end must not agree everywhere.
func TestRunBackends(t *testing.T) {
	env := NewEnv(SmallScale())
	res, err := RunBackends(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	profiles := BackendProfiles()
	if len(res.Points) != len(profiles) {
		t.Fatalf("points = %d, want one per backend profile", len(res.Points))
	}
	choice := map[string]float64{}
	for _, p := range res.Points {
		choice[p.X] = p.Extra["bloom"]
		if p.RuntimeSec <= 0 {
			t.Errorf("backend %s: runtime %f", p.X, p.RuntimeSec)
		}
	}
	first, last := profiles[0].Name, profiles[len(profiles)-1].Name
	if choice[first] == choice[last] {
		t.Errorf("strategy choice identical on %s and %s; the planner should react to the backend profile (choices: %v)",
			first, last, choice)
	}
	// The thin-WAN tier must pick the pushdown join (shrinking the
	// transfer is the whole point there).
	if choice["thin-wan"] != 1 {
		t.Errorf("thin-wan backend did not choose the %s strategy: %v", engine.StrategyBloom, choice)
	}
}
