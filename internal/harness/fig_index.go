package harness

import (
	"context"
	"fmt"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/tpch"
)

// indexFigFracs are the swept selectivities: the paper's index-vs-scan
// crossover (Fig. 1) lives between the selective regime, where probing a
// narrow index object and fetching a handful of byte ranges beats paying
// the scan rate over the whole table, and the unselective regime, where
// millions of scattered ranges drown the strategy in per-range overhead.
var indexFigFracs = []float64{0.001, 0.01, 0.10, 0.50}

// RunIndex regenerates the index-vs-scan selectivity crossover through the
// manifest-backed secondary-index subsystem (benchfig -fig Index): on each
// metered profile, a `l_partkey <= T` filter over lineitem runs as a
// forced IndexScan (index-object probe → coalesced multi-range GETs →
// local re-filter), a forced S3-side filtered scan and the server-side
// baseline, plus the SQL path whose access-path planner picks among the
// three. l_partkey is uniformly scattered through lineitem, so coalescing
// cannot collapse the unselective fetches — the shape the paper plots.
func RunIndex(ctx context.Context, env *Env) (*Result, error) {
	res := &Result{
		ID:     "Index",
		Title:  "IndexScan vs filtered scan vs baseline over selectivity (lineitem, l_partkey <= ?)",
		XLabel: "selectivity",
	}
	maxPartkey := tpch.SizesFor(env.Scale.TPCHSF).Parts
	profiles := []cloudsim.Profile{
		cloudsim.S3Profile(),
		cloudsim.CrossRegionS3Profile(),
	}
	const proj = "l_orderkey, l_partkey"
	for _, profile := range profiles {
		db, err := env.TPCH(ctx, s3api.WithProfile(profile))
		if err != nil {
			return nil, err
		}
		// Build (idempotently rebuild) the index through the engine's own
		// catalog path; the manifest persists in the shared store.
		if err := db.CreateIndex(ctx, "lineitem", "l_partkey"); err != nil {
			return nil, err
		}
		for _, frac := range indexFigFracs {
			threshold := int(frac * float64(maxPartkey))
			if threshold < 1 {
				threshold = 1
			}
			pred := fmt.Sprintf("l_partkey <= %d", threshold)
			x := fmt.Sprintf("%g%% %s", frac*100, profile.Name)

			e1 := db.NewExecContext(ctx)
			idxRel, gets, err := e1.IndexScanFilter("lineitem", "l_partkey", pred, proj)
			if err != nil {
				return nil, fmt.Errorf("harness: index at %s: %w", x, err)
			}
			e2 := db.NewExecContext(ctx)
			scanRel, err := e2.S3SideFilter("lineitem", pred, proj)
			if err != nil {
				return nil, err
			}
			e3 := db.NewExecContext(ctx)
			baseRel, err := e3.ServerSideFilter("lineitem", pred, proj)
			if err != nil {
				return nil, err
			}
			if len(idxRel.Rows) != len(scanRel.Rows) || len(idxRel.Rows) != len(baseRel.Rows) {
				return nil, fmt.Errorf("harness: strategies disagree at %s: index %d, scan %d, baseline %d rows",
					x, len(idxRel.Rows), len(scanRel.Rows), len(baseRel.Rows))
			}
			res.add("IndexScan", x, e1, map[string]float64{
				"rows": float64(len(idxRel.Rows)), "ranged_gets": float64(gets),
			})
			res.add("S3-side filter", x, e2, nil)
			res.add("Baseline", x, e3, nil)

			// The SQL path: the access planner picks a strategy and pays
			// for its own statistics probes.
			sql := fmt.Sprintf("SELECT COUNT(*) AS n FROM lineitem WHERE %s", pred)
			rel, e, err := db.QueryContext(ctx, sql)
			if err != nil {
				return nil, err
			}
			ap := e.Access()
			if ap == nil {
				return nil, fmt.Errorf("harness: no access plan at %s", x)
			}
			if n, _ := rel.Rows[0][0].IntNum(); int(n) != len(idxRel.Rows) {
				return nil, fmt.Errorf("harness: SQL count %d != operator rows %d at %s", n, len(idxRel.Rows), x)
			}
			res.add("Planner ("+ap.Strategy+")", x, e, map[string]float64{
				"est_ranged_gets": float64(ap.EstRangedGets),
			})
		}
	}
	res.Notes = append(res.Notes,
		"IndexScan: pushed probe of the sorted index objects, coalesced multi-range GETs, local re-filter",
		"the crossover: IndexScan wins while few scattered ranges are fetched, loses when per-range overhead scales with matches",
		"Planner series records the access-path choice of the SQL front end (its cost includes the stats probes)")
	return res, nil
}
