package harness

import (
	"context"
	"fmt"

	"pushdowndb/internal/engine"
)

// ParallelWorkerCounts is the worker-budget sweep of the parallel-execution
// figure: 1 (the sequential seed server) up to the paper node's 32 cores.
var ParallelWorkerCounts = []int{1, 2, 4, 8, 16, 32}

// RunParallel sweeps the server's worker budget and reports (a) the
// server-side group-by baseline, whose load-parse and row work dominate
// and therefore speed up with the budget until the network transfer
// bound, and (b) what the cost-based join planner chooses for the
// Listing-2 join at the same budgets. A faster server makes the baseline
// join's full-table loads cheaper relative to S3-side pushdown, so the
// planner's strategy flips from bloom toward baseline as workers grow —
// the pushdown-vs-server-parallelism trade-off the paper's follow-up
// work weighs.
func RunParallel(ctx context.Context, env *Env) (*Result, error) {
	gdb, err := env.GroupTable(ctx, -1)
	if err != nil {
		return nil, err
	}
	jdb, err := env.TPCH(ctx)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "Parallel",
		Title:  "Server-side operators vs worker budget (32-core node)",
		XLabel: "workers",
	}
	// The loosest Fig. 2 customer filter: the least selective build side,
	// where the bloom-vs-baseline decision is closest and parallelism can
	// tip it.
	acctbal := Fig2Acctbals[len(Fig2Acctbals)-1]
	joinSQL := fmt.Sprintf(
		"SELECT SUM(o.o_totalprice) AS total, COUNT(*) AS n "+
			"FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey "+
			"WHERE c.c_acctbal <= %s", acctbal)

	var seq *engine.Relation
	for _, w := range ParallelWorkerCounts {
		x := fmt.Sprint(w)
		gdb.Cfg.Workers = w

		e1 := gdb.NewExecContext(ctx)
		out, err := e1.ServerSideGroupBy("groups", "g5", fig5Aggs(), "")
		if err != nil {
			return nil, fmt.Errorf("harness: parallel group-by at %d workers: %w", w, err)
		}
		if seq == nil {
			seq = out
		} else if out.String() != seq.String() {
			return nil, fmt.Errorf("harness: parallel group-by at %d workers changed the result", w)
		}
		res.add("Server-Side Group-By", x, e1, nil)

		jdb.Cfg.Workers = w
		plan, pe, err := jdb.PlanContext(ctx, joinSQL)
		if err != nil {
			return nil, fmt.Errorf("harness: planning join at %d workers: %w", w, err)
		}
		if plan == nil || len(plan.Steps) != 1 {
			return nil, fmt.Errorf("harness: join at %d workers produced no plan", w)
		}
		step := plan.Steps[0]
		strategyCode := map[string]float64{
			engine.StrategyBaseline: 0, engine.StrategyBloom: 1,
		}[step.Strategy]
		res.add("Planner ("+step.Strategy+")", x, pe, map[string]float64{
			"bloom":        strategyCode,
			"baseline_est": step.Estimates[engine.StrategyBaseline].Seconds,
			"bloom_est":    step.Estimates[engine.StrategyBloom].Seconds,
		})
	}
	res.Notes = append(res.Notes,
		"group-by results are byte-identical at every worker count (deterministic merge order)",
		fmt.Sprintf("planner series records the strategy chosen for the Listing-2 join at c_acctbal <= %s; est columns are its per-strategy runtime estimates", acctbal),
		"row work and load parsing divide their wall-clock across the worker budget; request issuance, network transfer and S3-side scans do not")
	return res, nil
}
