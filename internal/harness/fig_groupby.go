package harness

import (
	"context"
	"fmt"
	"math"

	"pushdowndb/internal/engine"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/selectengine"
	"pushdowndb/internal/sqlparse"
)

// fig5Aggs are the four aggregated value columns of Section VI-C1.
func fig5Aggs() []engine.GroupAgg {
	return []engine.GroupAgg{
		{Func: sqlparse.AggSum, Expr: "v1", As: "s1"},
		{Func: sqlparse.AggSum, Expr: "v2", As: "s2"},
		{Func: sqlparse.AggSum, Expr: "v3", As: "s3"},
		{Func: sqlparse.AggSum, Expr: "v4", As: "s4"},
	}
}

// Fig5GroupCounts is the paper's x-axis: 2..32 groups. Group column gI has
// 2^I distinct groups in the uniform synthetic table.
var Fig5GroupCounts = []int{2, 4, 8, 16, 32}

// RunFig5 reproduces Fig. 5: server-side, filtered and S3-side group-by as
// the number of groups grows (uniform group sizes).
func RunFig5(ctx context.Context, env *Env) (*Result, error) {
	db, err := env.GroupTable(ctx, -1)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "Fig5",
		Title:  "Group-by algorithms vs number of groups (uniform sizes)",
		XLabel: "groups",
	}
	for i, g := range Fig5GroupCounts {
		x := fmt.Sprint(g)
		groupCol := fmt.Sprintf("g%d", i+1) // g1 has 2 groups, g5 has 32

		e1 := db.NewExecContext(ctx)
		server, err := e1.ServerSideGroupBy("groups", groupCol, fig5Aggs(), "")
		if err != nil {
			return nil, err
		}
		res.add("Server-Side Group-By", x, e1, nil)

		e2 := db.NewExecContext(ctx)
		filtered, err := e2.FilteredGroupBy("groups", groupCol, fig5Aggs(), "")
		if err != nil {
			return nil, err
		}
		res.add("Filtered Group-By", x, e2, nil)

		e3 := db.NewExecContext(ctx)
		s3side, err := e3.S3SideGroupBy("groups", groupCol, fig5Aggs(), "")
		if err != nil {
			return nil, err
		}
		res.add("S3-Side Group-By", x, e3, nil)

		if len(server.Rows) != len(filtered.Rows) || len(server.Rows) != len(s3side.Rows) {
			return nil, fmt.Errorf("harness: Fig5 group counts disagree at %s: %d/%d/%d",
				x, len(server.Rows), len(filtered.Rows), len(s3side.Rows))
		}
	}
	return res, nil
}

// Fig6S3Groups is the paper's sweep of how many groups hybrid group-by
// aggregates in S3.
var Fig6S3Groups = []int{1, 4, 6, 8, 10, 12}

// RunFig6 reproduces Fig. 6: within hybrid group-by (skew θ=1.1), the
// server-side time, the S3-side time and the bytes returned as more groups
// are aggregated in S3. The query's runtime is the max of the two bars.
func RunFig6(ctx context.Context, env *Env) (*Result, error) {
	db, err := env.GroupTable(ctx, 1.1)
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "Fig6",
		Title:  "Hybrid group-by: server- vs S3-side aggregation split (θ=1.1)",
		XLabel: "groups in S3",
	}
	for _, k := range Fig6S3Groups {
		x := fmt.Sprint(k)
		e := db.NewExecContext(ctx)
		if _, err := e.HybridGroupBy("groups", "g1", fig5Aggs(),
			engine.HybridGroupByOptions{S3Groups: k, SampleFraction: 0.01}); err != nil {
			return nil, err
		}
		extra := map[string]float64{
			"s3SideSec":     e.Metrics.PhaseSeconds("s3 big groups"),
			"serverSideSec": e.Metrics.PhaseSeconds("tail scan"),
			"returnedGB":    float64(e.Metrics.PhaseReturnedBytes("")) / 1e9,
		}
		res.add("Hybrid Group-By", x, e, extra)
	}
	res.Notes = append(res.Notes,
		"s3SideSec/serverSideSec are the two phase-2 bars of the paper's Fig. 6; returnedGB is the line")
	return res, nil
}

// Fig7Thetas is the paper's skew sweep.
var Fig7Thetas = []float64{0, 0.6, 0.9, 1.1, 1.3}

// RunFig7 reproduces Fig. 7: server-side, filtered and hybrid group-by as
// group-size skew grows (100 groups, Zipfian θ).
func RunFig7(ctx context.Context, env *Env) (*Result, error) {
	res := &Result{
		ID:     "Fig7",
		Title:  "Group-by algorithms vs skew (Zipf θ)",
		XLabel: "θ",
	}
	for _, theta := range Fig7Thetas {
		db, err := env.GroupTable(ctx, theta)
		if err != nil {
			return nil, err
		}
		x := fmt.Sprintf("%g", theta)

		e1 := db.NewExecContext(ctx)
		server, err := e1.ServerSideGroupBy("groups", "g1", fig5Aggs(), "")
		if err != nil {
			return nil, err
		}
		res.add("Server-Side Group-By", x, e1, nil)

		e2 := db.NewExecContext(ctx)
		filtered, err := e2.FilteredGroupBy("groups", "g1", fig5Aggs(), "")
		if err != nil {
			return nil, err
		}
		res.add("Filtered Group-By", x, e2, nil)

		e3 := db.NewExecContext(ctx)
		hybrid, err := e3.HybridGroupBy("groups", "g1", fig5Aggs(),
			engine.HybridGroupByOptions{S3Groups: 8, SampleFraction: 0.01})
		if err != nil {
			return nil, err
		}
		res.add("Hybrid Group-By", x, e3, nil)

		if err := sameGroupTotals(server, filtered, hybrid); err != nil {
			return nil, fmt.Errorf("harness: Fig7 at θ=%s: %w", x, err)
		}
	}
	return res, nil
}

// sameGroupTotals cross-checks that the algorithms agree on the grand
// total of the first aggregate (group order may differ).
func sameGroupTotals(rels ...*engine.Relation) error {
	var totals []float64
	for _, rel := range rels {
		var t float64
		for _, r := range rel.Rows {
			v, _ := r[1].Num()
			t += v
		}
		totals = append(totals, t)
	}
	for i := 1; i < len(totals); i++ {
		if math.Abs(totals[i]-totals[0]) > math.Abs(totals[0])*1e-6+1e-6 {
			return fmt.Errorf("aggregate totals disagree: %v", totals)
		}
	}
	return nil
}

// RunFig6PartialGroupBy is the Suggestion-4 ablation: hybrid group-by with
// the CASE encoding vs a real partial GROUP BY pushed to the storage side.
func RunFig6PartialGroupBy(ctx context.Context, env *Env) (*Result, error) {
	// The partial-group-by path needs a storage side advertising the
	// Suggestion-4 capability.
	db, err := env.GroupTable(ctx, 1.1, s3api.WithCapabilities(
		selectengine.Capabilities{AllowGroupBy: true}))
	if err != nil {
		return nil, err
	}
	res := &Result{
		ID:     "Fig6-S4",
		Title:  "Hybrid group-by: CASE encoding vs partial GROUP BY (Suggestion 4)",
		XLabel: "groups in S3",
	}
	for _, k := range []int{4, 8, 12} {
		x := fmt.Sprint(k)
		e1 := db.NewExecContext(ctx)
		if _, err := e1.HybridGroupBy("groups", "g1", fig5Aggs(),
			engine.HybridGroupByOptions{S3Groups: k}); err != nil {
			return nil, err
		}
		res.add("CASE Encoding", x, e1, nil)

		e2 := db.NewExecContext(ctx)
		if _, err := e2.HybridGroupBy("groups", "g1", fig5Aggs(),
			engine.HybridGroupByOptions{S3Groups: k, UsePartialGroupBy: true}); err != nil {
			return nil, err
		}
		res.add("Partial Group-By", x, e2, nil)
	}
	return res, nil
}
