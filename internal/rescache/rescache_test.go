package rescache

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"pushdowndb/internal/selectengine"
)

func res(fields ...string) *selectengine.Result {
	rows := make([][]string, len(fields))
	for i, f := range fields {
		rows[i] = []string{f}
	}
	return &selectengine.Result{Columns: []string{"x"}, Rows: rows}
}

func key(object, query string) Key {
	return Key{Backend: "b", Bucket: "bkt", Object: object, Query: query}
}

func fill(c *Cache, k Key, r *selectengine.Result) {
	c.Put(k, c.Generation(k.Bucket, k.Object), r)
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(1 << 20)
	k := key("t/part0000.csv", "SELECT * FROM S3Object")
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache reported a hit")
	}
	want := res("1", "2")
	fill(c, k, want)
	got, ok := c.Get(k)
	if !ok || got != want {
		t.Fatalf("Get = %v, %v; want the stored result", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 put / 1 entry", st)
	}
}

// entrySize is what one test entry charges against the budget.
func entrySize(k Key, r *selectengine.Result) int64 { return resultSize(r) + keySize(k) }

func TestLRUEvictionOrder(t *testing.T) {
	per := entrySize(key("t/part0000.csv", "q"), res("payload"))
	c := New(3 * per) // room for exactly three entries
	for i := 0; i < 3; i++ {
		fill(c, key(fmt.Sprintf("t/part%04d.csv", i), "q"), res("payload"))
	}
	// Touch entry 0 so entry 1 is the LRU victim.
	if _, ok := c.Get(key("t/part0000.csv", "q")); !ok {
		t.Fatal("entry 0 missing before eviction")
	}
	fill(c, key("t/part0003.csv", "q"), res("payload"))
	if _, ok := c.Get(key("t/part0001.csv", "q")); ok {
		t.Error("LRU entry 1 survived an over-budget insert")
	}
	for _, obj := range []string{"t/part0000.csv", "t/part0002.csv", "t/part0003.csv"} {
		if _, ok := c.Get(key(obj, "q")); !ok {
			t.Errorf("entry %s evicted out of LRU order", obj)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestOversizedResponseNotCached(t *testing.T) {
	c := New(64)
	k := key("t/part0000.csv", "q")
	fill(c, k, res("a very long field value that cannot possibly fit the tiny budget"))
	if _, ok := c.Get(k); ok {
		t.Error("an entry larger than the whole budget was cached")
	}
	if st := c.Stats(); st.UsedBytes != 0 || st.Entries != 0 {
		t.Errorf("stats = %+v, want an empty cache", st)
	}
}

// TestKeyChargedAgainstBudget: the query fingerprint (which can carry a
// 256 KB Bloom predicate) counts toward the budget, so a tiny response
// under a huge key cannot blow past the configured bytes.
func TestKeyChargedAgainstBudget(t *testing.T) {
	c := New(4 << 10)
	hugeQuery := strings.Repeat("p", 8<<10)
	k := key("t/part0000.csv", hugeQuery)
	fill(c, k, res("tiny"))
	if _, ok := c.Get(k); ok {
		t.Error("an entry whose key alone exceeds the budget was cached")
	}
	if st := c.Stats(); st.UsedBytes != 0 {
		t.Errorf("used = %d, want 0", st.UsedBytes)
	}
}

func TestGenerationInvalidatesInFlightFill(t *testing.T) {
	c := New(1 << 20)
	k := key("t/part0000.csv", "q")
	gen := c.Generation(k.Bucket, k.Object) // fill snapshots the generation...
	c.InvalidatePrefix(k.Bucket, "t/part")  // ...table reloads while the request is in flight
	c.Put(k, gen, res("stale"))
	if _, ok := c.Get(k); ok {
		t.Error("a fill that raced an invalidation landed in the cache")
	}
	// A fresh fill at the new generation works.
	fill(c, k, res("fresh"))
	if got, ok := c.Get(k); !ok || got.Rows[0][0] != "fresh" {
		t.Errorf("post-invalidation fill: got %v, %v", got, ok)
	}
}

func TestInvalidatePrefixScopesToTable(t *testing.T) {
	c := New(1 << 20)
	ka := key("a/part0000.csv", "q")
	kb := key("b/part0000.csv", "q")
	fill(c, ka, res("a"))
	fill(c, kb, res("b"))
	c.InvalidatePrefix("bkt", "a/part")
	if _, ok := c.Get(ka); ok {
		t.Error("invalidated table a still resident")
	}
	if _, ok := c.Get(kb); !ok {
		t.Error("invalidating table a dropped table b")
	}
	// A different bucket is untouched.
	other := Key{Backend: "b", Bucket: "other", Object: "a/part0000.csv", Query: "q"}
	fill(c, other, res("o"))
	c.InvalidatePrefix("bkt", "a/part")
	if _, ok := c.Get(other); !ok {
		t.Error("invalidation crossed buckets")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := New(1 << 20)
	k := key("t/part0000.csv", "q")
	gen := c.Generation(k.Bucket, k.Object)
	fill(c, k, res("x"))
	c.InvalidateAll()
	if _, ok := c.Get(k); ok {
		t.Error("InvalidateAll left an entry resident")
	}
	c.Put(k, gen, res("stale"))
	if _, ok := c.Get(k); ok {
		t.Error("a pre-InvalidateAll fill landed afterwards")
	}
	if st := c.Stats(); st.UsedBytes != 0 {
		t.Errorf("used = %d after InvalidateAll, want 0", st.UsedBytes)
	}
}

func TestContainsDoesNotPromoteOrCount(t *testing.T) {
	c := New(2 * entrySize(key("t/part0000.csv", "q"), res("p")))
	k0, k1 := key("t/part0000.csv", "q"), key("t/part0001.csv", "q")
	fill(c, k0, res("p"))
	fill(c, k1, res("p"))
	before := c.Stats()
	if !c.Contains(k0) || c.Contains(key("t/part0002.csv", "q")) {
		t.Fatal("Contains answered wrong")
	}
	after := c.Stats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Errorf("Contains moved the hit/miss counters: %+v -> %+v", before, after)
	}
	// k0 was Contains-checked but not promoted: it is still the LRU victim.
	fill(c, key("t/part0002.csv", "q"), res("p"))
	if c.Contains(k0) {
		t.Error("Contains promoted the entry it peeked at")
	}
}

func TestZeroBudgetNeverStores(t *testing.T) {
	c := New(0)
	k := key("t/part0000.csv", "q")
	fill(c, k, res("x"))
	if _, ok := c.Get(k); ok {
		t.Error("zero-budget cache stored an entry")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(fmt.Sprintf("t/part%04d.csv", i%16), fmt.Sprintf("q%d", g%3))
				if _, ok := c.Get(k); !ok {
					fill(c, k, res(fmt.Sprintf("row-%d-%d", g, i)))
				}
				if i%50 == 0 {
					c.InvalidatePrefix("bkt", "t/part")
				}
				c.Contains(k)
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.UsedBytes < 0 || int64(st.Entries) < 0 {
		t.Errorf("corrupted accounting: %+v", st)
	}
}

// --- second-touch admission policy ---

func TestSecondTouchAdmission(t *testing.T) {
	c := New(1<<20, WithSecondTouchAdmission())
	k := key("t/part0000.csv", "q")
	r := res("1")

	// First touch: parked in the ghost set, nothing stored.
	fill(c, k, r)
	if _, ok := c.Get(k); ok {
		t.Fatal("first-touch Put must not be resident")
	}
	st := c.Stats()
	if st.AdmissionRejects != 1 || st.Admissions != 0 || st.Entries != 0 {
		t.Fatalf("after first touch: %+v", st)
	}

	// Second touch: admitted.
	fill(c, k, r)
	if got, ok := c.Get(k); !ok || got != r {
		t.Fatal("second-touch Put must be resident")
	}
	st = c.Stats()
	if st.Admissions != 1 || st.AdmissionRejects != 1 || st.Puts != 1 {
		t.Fatalf("after second touch: %+v", st)
	}

	// Re-fills of a resident key stay admitted (concurrent miss refill).
	fill(c, k, res("2"))
	if st := c.Stats(); st.Puts != 2 || st.Admissions != 1 {
		t.Fatalf("resident refill: %+v", st)
	}
}

func TestSecondTouchOneOffsDoNotEvictHotEntries(t *testing.T) {
	// Budget fits ~2 small entries. The hot key is admitted, then a long
	// stream of one-off keys passes through; the hot entry must survive.
	c := New(700, WithSecondTouchAdmission())
	hot := key("t/part0000.csv", "hot")
	fill(c, hot, res("1"))
	fill(c, hot, res("1"))
	if _, ok := c.Get(hot); !ok {
		t.Fatal("hot key not admitted on second touch")
	}
	for i := 0; i < 200; i++ {
		fill(c, key("t/part0000.csv", fmt.Sprintf("oneoff-%03d", i)), res("x"))
	}
	if _, ok := c.Get(hot); !ok {
		t.Fatal("one-off stream evicted the hot entry")
	}
	st := c.Stats()
	if st.AdmissionRejects < 200 {
		t.Errorf("one-offs were not rejected: %+v", st)
	}
	// Without the policy the same stream evicts the hot entry.
	lru := New(700)
	fill(lru, hot, res("1"))
	for i := 0; i < 200; i++ {
		fill(lru, key("t/part0000.csv", fmt.Sprintf("oneoff-%03d", i)), res("x"))
	}
	if _, ok := lru.Get(hot); ok {
		t.Fatal("plain LRU unexpectedly kept the hot entry; the policy test proves nothing")
	}
}

func TestSecondTouchGhostInvalidatedByGeneration(t *testing.T) {
	c := New(1<<20, WithSecondTouchAdmission())
	k := key("t/part0000.csv", "q")
	fill(c, k, res("old"))
	// The object is reloaded between the two touches: the ghost entry is
	// from a dead generation, so the next Put is a first touch again.
	c.InvalidatePrefix("bkt", "t/part")
	fill(c, k, res("new"))
	if _, ok := c.Get(k); ok {
		t.Fatal("post-invalidation Put treated a stale ghost as a second touch")
	}
	fill(c, k, res("new"))
	if got, ok := c.Get(k); !ok || got.Rows[0][0] != "new" {
		t.Fatalf("second post-invalidation touch must admit: %v %v", got, ok)
	}
	if st := c.Stats(); st.Admissions != 1 || st.AdmissionRejects != 2 {
		t.Errorf("generation-aware ghost counters: %+v", st)
	}
}

func TestGhostSetBounded(t *testing.T) {
	c := New(1<<20, WithSecondTouchAdmission())
	for i := 0; i < ghostCap+100; i++ {
		fill(c, key("t/part0000.csv", fmt.Sprintf("q-%05d", i)), res("x"))
	}
	if n := len(c.ghost); n != ghostCap {
		t.Errorf("ghost set grew to %d, cap is %d", n, ghostCap)
	}
	// The oldest touch fell off the FIFO: touching it again is a reject.
	old := key("t/part0000.csv", "q-00000")
	fill(c, old, res("x"))
	if _, ok := c.Get(old); ok {
		t.Error("evicted ghost behaved like a second touch")
	}
}

func TestStatsHitRate(t *testing.T) {
	if r := (Stats{}).HitRate(); r != 0 {
		t.Fatalf("zero stats hit rate: %g", r)
	}
	c := New(1 << 20)
	k := key("t/part0000.csv", "q")
	c.Get(k) // miss
	fill(c, k, res("x"))
	c.Get(k) // hit
	c.Get(k) // hit
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("counters: %+v", st)
	}
	if got := st.HitRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("hit rate: %g", got)
	}
}

func TestNoteInflightDedup(t *testing.T) {
	c := New(1 << 20)
	if s := c.Stats(); s.InflightDedup != 0 {
		t.Fatalf("fresh cache InflightDedup = %d", s.InflightDedup)
	}
	c.NoteInflightDedup()
	c.NoteInflightDedup()
	if s := c.Stats(); s.InflightDedup != 2 {
		t.Fatalf("InflightDedup = %d, want 2", s.InflightDedup)
	}
}
