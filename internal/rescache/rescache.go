// Package rescache caches S3 Select responses across queries. The paper
// pays the storage service's request/scan/transfer rates on every query,
// so repeated analytical queries re-buy the same pushed-down work; the
// follow-up "Enhancing Computation Pushdown for Cloud OLAP Databases"
// caches pushdown results at the compute tier and makes cached responses
// the cheapest scan of all. This package is that compute-tier cache: an
// LRU over per-(backend, bucket, object, select-expression) responses,
// bounded by a byte budget, with generation counters per (bucket, object)
// so a table reload can atomically invalidate everything cached for its
// partitions — including fills that were in flight when the reload
// happened.
//
// Cached *selectengine.Result values are shared between the cache and
// every reader; they are treated as immutable after insertion.
package rescache

import (
	"container/list"
	"strings"
	"sync"

	"pushdowndb/internal/selectengine"
)

// Key identifies one cached select response: the object coordinates the
// response was computed from, plus the canonical query string (SQL and
// request flags — header mode, scan range, capabilities) that produced it.
type Key struct {
	// Backend is the registered backend name the request ran against (the
	// same object bytes may legitimately live on several backends).
	Backend string
	// Bucket and Object locate the scanned object.
	Bucket, Object string
	// Query is the canonical request fingerprint: the select SQL plus any
	// request parameters that change the response (engine.selectCacheQuery
	// builds it).
	Query string
}

type entry struct {
	key  Key
	gen  uint64
	res  *selectengine.Result
	size int64
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	Hits, Misses int64
	Puts         int64
	// Evictions counts entries dropped to fit the byte budget;
	// Invalidations counts entries dropped by generation bumps.
	Evictions, Invalidations int64
	// Admissions and AdmissionRejects track the second-touch policy (both
	// zero when the policy is off): an admission is a Put accepted because
	// its key was seen before; a reject is a first-touch Put parked in the
	// ghost set instead of the cache.
	Admissions, AdmissionRejects int64
	// InflightDedup counts lookups that missed the cache but were served
	// by joining another query's in-flight backend request (scanshare
	// singleflight), so /stats can tell "the response was resident" from
	// "the response was being fetched and we rode along".
	InflightDedup          int64
	Entries                int
	UsedBytes, BudgetBytes int64
}

// HitRate is the fraction of lookups served from the cache, in [0, 1]
// (0 before any lookup). Long-lived servers surface it per stats poll so
// operators can see whether the shared cache is actually carrying the
// workload.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a byte-budgeted LRU of select responses. All methods are safe
// for concurrent use.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	ll      *list.List // front = most recently used; values are *entry
	entries map[Key]*list.Element
	// gens maps bucket\x00object to its current generation. An entry is
	// valid only while its recorded generation matches; Invalidate* bumps
	// generations, which also voids fills that started before the bump.
	gens map[string]uint64

	// secondTouch enables the admission policy: a response is stored only
	// on its second Put (the ghost set remembers first touches), so a
	// one-off scan cannot evict entries the workload actually repeats.
	secondTouch bool
	// ghost maps first-touched keys to their FIFO element (carrying the
	// touch generation); ghostFIFO bounds it to ghostCap keys, oldest
	// evicted first.
	ghost     map[Key]*list.Element
	ghostFIFO *list.List // values are ghostEntry

	hits, misses, puts, evictions, invalidations int64
	admissions, admissionRejects                 int64
	inflightDedup                                int64
}

// ghostCap bounds the second-touch ghost set: keys are small (no response
// payload), so a few thousand first touches of history cost little.
const ghostCap = 4096

// Option configures New.
type Option func(*Cache)

// WithSecondTouchAdmission turns on the second-touch admission policy:
// Put stores a response only when its key was already Put (and rejected)
// once before at the same generation. One-off scans park in a small
// ghost-key set and never displace resident entries; anything the
// workload repeats is admitted on its second fill.
func WithSecondTouchAdmission() Option {
	return func(c *Cache) { c.secondTouch = true }
}

// New returns a cache holding at most budgetBytes of response payload.
// A budget <= 0 yields a cache that never stores anything (every Put is
// dropped), which keeps call sites branch-free.
func New(budgetBytes int64, opts ...Option) *Cache {
	c := &Cache{
		budget:    budgetBytes,
		ll:        list.New(),
		entries:   map[Key]*list.Element{},
		gens:      map[string]uint64{},
		ghost:     map[Key]*list.Element{},
		ghostFIFO: list.New(),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

func genKey(bucket, object string) string { return bucket + "\x00" + object }

// Generation returns the current generation of (bucket, object), creating
// it at zero if unseen. Fill paths snapshot the generation *before* issuing
// the storage request and pass it to Put, so a response that raced with an
// invalidation is discarded instead of resurrecting stale rows.
func (c *Cache) Generation(bucket, object string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	gk := genKey(bucket, object)
	if _, ok := c.gens[gk]; !ok {
		// Materialize the zero generation so a later InvalidatePrefix sees
		// (and bumps) this object even before any Put lands.
		c.gens[gk] = 0
	}
	return c.gens[gk]
}

// Get returns the cached response for k, promoting it to most recently
// used. Entries whose object generation moved since insertion are dropped
// and reported as misses.
func (c *Cache) Get(k Key) (*selectengine.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil, false
	}
	ent := el.Value.(*entry)
	if ent.gen != c.gens[genKey(k.Bucket, k.Object)] {
		c.removeLocked(el)
		c.invalidations++
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return ent.res, true
}

// Contains reports whether k is resident and current, without promoting it
// or touching the hit/miss counters — the planner uses it to estimate hit
// ratios without distorting LRU order.
func (c *Cache) Contains(k Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return false
	}
	return el.Value.(*entry).gen == c.gens[genKey(k.Bucket, k.Object)]
}

// Put stores res under k if gen still matches the object's current
// generation (see Generation). Responses larger than the whole budget are
// not cached; older entries are evicted LRU-first to fit the budget.
func (c *Cache) Put(k Key, gen uint64, res *selectengine.Result) {
	// The key is charged too: Bloom-probe fingerprints carry pushed
	// predicates up to the select engine's 256 KB expression limit, which
	// can dwarf a small response payload.
	size := resultSize(res) + keySize(k)
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget {
		return
	}
	if gen != c.gens[genKey(k.Bucket, k.Object)] {
		return // invalidated while the fill was in flight
	}
	if !c.admitLocked(k, gen) {
		return
	}
	if el, ok := c.entries[k]; ok {
		// Same key re-filled (e.g. two concurrent misses): keep the newer
		// response, which was produced at the same generation.
		c.removeLocked(el)
	}
	ent := &entry{key: k, gen: gen, res: res, size: size}
	c.entries[k] = c.ll.PushFront(ent)
	c.used += size
	c.puts++
	for c.used > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions++
	}
}

// admitLocked applies the second-touch policy to a Put of k at gen: true
// admits the fill. First touches are parked in the bounded ghost set; a
// ghost hit from an older generation counts as a fresh first touch (the
// object changed in between). Re-fills of resident keys always pass — the
// key earned admission already. Caller holds mu.
func (c *Cache) admitLocked(k Key, gen uint64) bool {
	if !c.secondTouch {
		return true
	}
	if _, resident := c.entries[k]; resident {
		return true
	}
	if el, seen := c.ghost[k]; seen {
		g := el.Value.(ghostEntry).gen
		delete(c.ghost, k)
		c.ghostFIFO.Remove(el)
		if g == gen {
			c.admissions++
			return true
		}
		// Stale ghost: fall through and re-park at the current generation.
	}
	c.ghost[k] = c.ghostFIFO.PushBack(ghostEntry{key: k, gen: gen})
	for c.ghostFIFO.Len() > ghostCap {
		oldest := c.ghostFIFO.Front()
		delete(c.ghost, oldest.Value.(ghostEntry).key)
		c.ghostFIFO.Remove(oldest)
	}
	c.admissionRejects++
	return false
}

// ghostEntry is one parked first touch.
type ghostEntry struct {
	key Key
	gen uint64
}

// removeLocked unlinks el from the LRU and the index. Caller holds mu.
func (c *Cache) removeLocked(el *list.Element) {
	ent := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.entries, ent.key)
	c.used -= ent.size
}

// InvalidatePrefix voids every cached response for objects of bucket whose
// key starts with prefix: resident entries are dropped immediately and the
// objects' generations are bumped so in-flight fills for them cannot land.
// A table reload invalidates with the table's partition prefix.
func (c *Cache) InvalidatePrefix(bucket, prefix string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	gp := genKey(bucket, prefix)
	for gk := range c.gens {
		if strings.HasPrefix(gk, gp) {
			c.gens[gk]++
		}
	}
	var drop []*list.Element
	for k, el := range c.entries {
		if k.Bucket == bucket && strings.HasPrefix(k.Object, prefix) {
			drop = append(drop, el)
			// The object may never have gone through Generation(); bump it
			// so pre-bump fills racing this invalidation are rejected.
			if _, seen := c.gens[genKey(k.Bucket, k.Object)]; !seen {
				c.gens[genKey(k.Bucket, k.Object)]++
			}
		}
	}
	for _, el := range drop {
		c.removeLocked(el)
		c.invalidations++
	}
}

// InvalidateAll voids the entire cache (and any in-flight fills).
func (c *Cache) InvalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for gk := range c.gens {
		c.gens[gk]++
	}
	for _, el := range c.entries {
		ent := el.Value.(*entry)
		gk := genKey(ent.key.Bucket, ent.key.Object)
		if _, seen := c.gens[gk]; !seen {
			c.gens[gk] = 1
		}
	}
	c.invalidations += int64(c.ll.Len())
	c.ll.Init()
	c.entries = map[Key]*list.Element{}
	c.used = 0
}

// NoteInflightDedup records one miss that was nonetheless served without
// a new storage request, by joining an in-flight fill for the same key
// (scanshare singleflight). The miss itself was already counted by Get;
// this distinguishes its resolution in the stats.
func (c *Cache) NoteInflightDedup() {
	c.mu.Lock()
	c.inflightDedup++
	c.mu.Unlock()
}

// Len returns the number of resident entries (cheaper than Stats when the
// caller only needs to know whether the cache holds anything at all).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Puts: c.puts,
		Evictions: c.evictions, Invalidations: c.invalidations,
		Admissions: c.admissions, AdmissionRejects: c.admissionRejects,
		InflightDedup: c.inflightDedup,
		Entries:       c.ll.Len(), UsedBytes: c.used, BudgetBytes: c.budget,
	}
}

// keySize approximates the footprint of a cache key (the Query string —
// the full pushed SQL — dominates).
func keySize(k Key) int64 {
	return int64(len(k.Backend) + len(k.Bucket) + len(k.Object) + len(k.Query))
}

// resultSize approximates the memory footprint of a cached response:
// string payloads plus per-row and per-field slice/header overheads.
func resultSize(r *selectengine.Result) int64 {
	const (
		entryOverhead = 128
		rowOverhead   = 24
		fieldOverhead = 16
	)
	n := int64(entryOverhead)
	for _, col := range r.Columns {
		n += int64(len(col)) + fieldOverhead
	}
	for _, row := range r.Rows {
		n += rowOverhead
		for _, f := range row {
			n += int64(len(f)) + fieldOverhead
		}
	}
	return n
}
