package vec

import "sync"

// span is one worker's contiguous half-open range [lo, hi). Row-range
// partitioning mirrors engine.rowSpans exactly: result order never
// depends on the split, and the error surfaced by a fallback evaluation
// (first error in worker order) matches the row path's.
type span struct{ lo, hi int }

// rowSpans partitions n rows into at most workers contiguous spans of
// near-equal size, ascending; identical to the row path's partitioning.
func rowSpans(n, workers int) []span {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return nil
	}
	sps := make([]span, 0, workers)
	per := n / workers
	extra := n % workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + per
		if w < extra {
			hi++
		}
		sps = append(sps, span{lo: lo, hi: hi})
		lo = hi
	}
	return sps
}

// alignedSpans partitions n rows on 64-bit word boundaries so concurrent
// bitmap kernels never share a word. Only used for error-free compiled
// kernels, where the split cannot affect results.
func alignedSpans(n, workers int) []span {
	sps := rowSpans((n+63)/64, workers)
	for i := range sps {
		sps[i].lo <<= 6
		sps[i].hi <<= 6
	}
	if len(sps) > 0 && sps[len(sps)-1].hi > n {
		sps[len(sps)-1].hi = n
	}
	return sps
}

// colSpans partitions column indexes across workers (column-parallel
// decode and conversion).
func colSpans(cols, workers int) []span { return rowSpans(cols, workers) }

// runSpans executes fn over every span, one goroutine per span, returning
// the first error in span order — the same contract as the row path's.
func runSpans(sps []span, fn func(w int, sp span) error) error {
	if len(sps) == 0 {
		return nil
	}
	if len(sps) == 1 {
		return fn(0, sps[0])
	}
	errs := make([]error, len(sps))
	var wg sync.WaitGroup
	for w := range sps {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = fn(w, sps[w])
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
