package vec

import (
	"math"
	"strconv"
	"strings"
	"time"

	"pushdowndb/internal/expr"
	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/value"
)

// The filter kernel compiles a predicate tree into bitmap evaluators when
// every leaf is a supported shape (column/literal comparisons, BETWEEN,
// IN over literals, IS NULL, LIKE, and AND/OR/NOT over those). Compiled
// leaves cannot error, so evaluating them eagerly over the whole batch
// preserves the row path's short-circuit semantics exactly. Any other
// shape makes the whole predicate fall back to per-row evaluation with
// the shared expression interpreter, which reproduces the row path's
// behavior — including its errors — verbatim.

// node is one compiled predicate: three-valued logic as a (true, null)
// bitmap pair; false is the remainder.
type node struct {
	t, n *Bitmap
	a, b *node
	eval func(nd *node, lo, hi int)
}

// Filter evaluates pred over the batch and returns the kept row indexes,
// ascending — the selection the row path's FilterLocalN would keep.
func Filter(b *Batch, pred sqlparse.Expr, workers int) ([]int, error) {
	n := b.Len()
	if root, post, ok := compilePred(pred, b); ok {
		_ = runSpans(alignedSpans(n, workers), func(w int, sp span) error {
			for _, nd := range post {
				nd.eval(nd, sp.lo, sp.hi)
			}
			return nil
		})
		return root.t.Indices(), nil
	}
	// Whole-predicate fallback: the same spans, evaluator and first-error
	// contract as FilterLocalN.
	sps := rowSpans(n, workers)
	kept := make([][]int, len(sps))
	err := runSpans(sps, func(w int, sp span) error {
		ev := expr.New()
		env := &rowEnv{b: b}
		for i := sp.lo; i < sp.hi; i++ {
			env.i = i
			ok, err := ev.EvalBool(pred, env)
			if err != nil {
				return err
			}
			if ok {
				kept[w] = append(kept[w], i)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, n)
	for _, k := range kept {
		out = append(out, k...)
	}
	return out, nil
}

// compilePred compiles e into a bitmap-evaluator tree over b. The post
// slice lists nodes in evaluation (children-first) order. ok is false
// when any part of the tree is not a supported kernel shape.
func compilePred(e sqlparse.Expr, b *Batch) (root *node, post []*node, ok bool) {
	var build func(e sqlparse.Expr) *node
	alloc := func(eval func(nd *node, lo, hi int)) *node {
		nd := &node{t: NewBitmap(b.Len()), n: NewBitmap(b.Len()), eval: eval}
		post = append(post, nd)
		return nd
	}
	build = func(e sqlparse.Expr) *node {
		switch t := e.(type) {
		case *sqlparse.Binary:
			switch t.Op {
			case sqlparse.OpAnd, sqlparse.OpOr:
				a := build(t.L)
				if a == nil {
					return nil
				}
				c := build(t.R)
				if c == nil {
					return nil
				}
				isAnd := t.Op == sqlparse.OpAnd
				nd := alloc(func(nd *node, lo, hi int) { evalLogic(nd, lo, hi, isAnd) })
				nd.a, nd.b = a, c
				return nd
			case sqlparse.OpEq, sqlparse.OpNe, sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpGt, sqlparse.OpGe:
				return compileCmp(t, b, alloc)
			}
			return nil
		case *sqlparse.Unary:
			if t.Op != "NOT" {
				return nil
			}
			a := build(t.X)
			if a == nil {
				return nil
			}
			nd := alloc(evalNot)
			nd.a = a
			return nd
		case *sqlparse.Between:
			return compileBetween(t, b, alloc)
		case *sqlparse.In:
			return compileIn(t, b, alloc)
		case *sqlparse.IsNull:
			return compileIsNull(t, b, alloc)
		case *sqlparse.Like:
			return compileLike(t, b, alloc)
		case *sqlparse.Column:
			return compileBoolColumn(t, b, alloc)
		case *sqlparse.Literal:
			return compileBoolLiteral(t, alloc)
		}
		return nil
	}
	root = build(e)
	return root, post, root != nil
}

// evalLogic combines two children with Kleene AND/OR at word granularity.
// Operands are predicate results, so their domain is {true, false, null}
// — exactly the domain the row path's AND/OR sees for compilable shapes.
func evalLogic(nd *node, lo, hi int, isAnd bool) {
	lw, hw := lo>>6, (hi+63)>>6
	at, an := nd.a.t.words, nd.a.n.words
	bt, bn := nd.b.t.words, nd.b.n.words
	t, n := nd.t.words, nd.n.words
	for w := lw; w < hw; w++ {
		var tw, fw uint64
		if isAnd {
			tw = at[w] & bt[w]
			fw = ^(at[w] | an[w]) | ^(bt[w] | bn[w])
		} else {
			tw = at[w] | bt[w]
			fw = ^(at[w] | an[w]) & ^(bt[w] | bn[w])
		}
		t[w] = tw
		n[w] = ^(tw | fw)
	}
	if hi == nd.t.n {
		nd.t.maskTail()
		nd.n.maskTail()
	}
}

// evalNot flips true and false, keeping null.
func evalNot(nd *node, lo, hi int) {
	lw, hw := lo>>6, (hi+63)>>6
	at, an := nd.a.t.words, nd.a.n.words
	for w := lw; w < hw; w++ {
		nd.t.words[w] = ^(at[w] | an[w])
		nd.n.words[w] = an[w]
	}
	if hi == nd.t.n {
		nd.t.maskTail()
		nd.n.maskTail()
	}
}

// operand is one side of a comparison: a column vector or a literal.
type operand struct {
	vec *Vector
	lit value.Value
}

func compileOperand(e sqlparse.Expr, b *Batch) (operand, bool) {
	switch t := e.(type) {
	case *sqlparse.Literal:
		return operand{lit: t.Val}, true
	case *sqlparse.Column:
		// Qualifiers are ignored, as in the row path's Env lookup.
		j := b.ColIndex(t.Name)
		if j < 0 {
			return operand{}, false
		}
		return operand{vec: b.Vecs[j]}, true
	}
	return operand{}, false
}

func opHolds(op sqlparse.BinaryOp, c int) bool {
	switch op {
	case sqlparse.OpEq:
		return c == 0
	case sqlparse.OpNe:
		return c != 0
	case sqlparse.OpLt:
		return c < 0
	case sqlparse.OpLe:
		return c <= 0
	case sqlparse.OpGt:
		return c > 0
	case sqlparse.OpGe:
		return c >= 0
	}
	return false
}

func compileCmp(t *sqlparse.Binary, b *Batch, alloc func(func(*node, int, int)) *node) *node {
	l, lok := compileOperand(t.L, b)
	r, rok := compileOperand(t.R, b)
	if !lok || !rok {
		return nil
	}
	op := t.Op
	switch {
	case l.vec == nil && r.vec == nil: // literal vs literal
		if l.lit.IsNull() || r.lit.IsNull() {
			return alloc(evalAllNull)
		}
		hold := opHolds(op, value.Compare(l.lit, r.lit))
		return alloc(func(nd *node, lo, hi int) {
			if hold {
				for i := lo; i < hi; i++ {
					nd.t.Set(i)
				}
			}
		})
	case l.vec != nil && r.vec != nil: // column vs column
		lv, rv := l.vec, r.vec
		return alloc(func(nd *node, lo, hi int) {
			for i := lo; i < hi; i++ {
				if lv.IsNull(i) || rv.IsNull(i) {
					nd.n.Set(i)
					continue
				}
				if opHolds(op, value.Compare(lv.Value(i), rv.Value(i))) {
					nd.t.Set(i)
				}
			}
		})
	case l.vec != nil: // column vs literal
		if r.lit.IsNull() {
			return alloc(evalAllNull)
		}
		cmp := cmpAgainst(l.vec, r.lit)
		v := l.vec
		return alloc(func(nd *node, lo, hi int) {
			for i := lo; i < hi; i++ {
				if v.IsNull(i) {
					nd.n.Set(i)
					continue
				}
				if opHolds(op, cmp(i)) {
					nd.t.Set(i)
				}
			}
		})
	default: // literal vs column
		if l.lit.IsNull() {
			return alloc(evalAllNull)
		}
		v, lit := r.vec, l.lit
		return alloc(func(nd *node, lo, hi int) {
			for i := lo; i < hi; i++ {
				if v.IsNull(i) {
					nd.n.Set(i)
					continue
				}
				if opHolds(op, value.Compare(lit, v.Value(i))) {
					nd.t.Set(i)
				}
			}
		})
	}
}

func evalAllNull(nd *node, lo, hi int) {
	for i := lo; i < hi; i++ {
		nd.n.Set(i)
	}
}

// fourDigitYearDays bounds the days-since-epoch range whose YYYY-MM-DD
// rendering is a zero-padded 10-character string, within which
// lexicographic order equals chronological order.
var minFourDigitDays = time.Date(1, time.January, 1, 0, 0, 0, 0, time.UTC).Unix() / 86400
var maxFourDigitDays = time.Date(9999, time.December, 31, 0, 0, 0, 0, time.UTC).Unix() / 86400

// cmpAgainst builds a per-row comparator returning value.Compare(row, lit)
// for non-NULL rows. Typed fast paths replicate value.Compare's exact
// branch for that kind pairing; everything else reconstructs the value and
// calls value.Compare itself.
func cmpAgainst(v *Vector, lit value.Value) func(i int) int {
	if v.Boxed == nil && v.Kind != value.KindNull {
		switch v.Kind {
		case value.KindInt, value.KindBool, value.KindDate:
			if lit.Kind() != value.KindString {
				// numeric vs numeric: cmpFloat over Num() coercions.
				lf, _ := lit.Num()
				ints := v.Ints
				return func(i int) int { return cmpFloat(float64(ints[i]), lf) }
			}
			if v.Kind == value.KindDate {
				// DATE vs string literal: value.Compare compares the rendered
				// forms. When the literal is a canonical YYYY-MM-DD and the
				// row's year has four digits, that equals comparing days.
				litS := lit.AsString()
				if value.LooksLikeDate(litS) {
					if d, err := value.ParseDate(litS); err == nil && value.FormatDays(d.Days()) == litS {
						litDays := d.Days()
						ints := v.Ints
						return func(i int) int {
							days := ints[i]
							if days >= minFourDigitDays && days <= maxFourDigitDays {
								switch {
								case days < litDays:
									return -1
								case days > litDays:
									return 1
								}
								return 0
							}
							return value.Compare(value.Date(days), lit)
						}
					}
				}
				break // generic
			}
			// INT/BOOL vs string: numeric when the string parses, else
			// rendered-form string comparison (generic covers the latter).
			if lf, ok := parseNum(lit.AsString()); ok {
				ints := v.Ints
				return func(i int) int { return cmpFloat(float64(ints[i]), lf) }
			}
		case value.KindFloat:
			if lit.Kind() != value.KindString {
				lf, _ := lit.Num()
				floats := v.Floats
				return func(i int) int { return cmpFloat(floats[i], lf) }
			}
			if lf, ok := parseNum(lit.AsString()); ok {
				floats := v.Floats
				return func(i int) int { return cmpFloat(floats[i], lf) }
			}
		case value.KindString:
			strs := v.Strs
			switch lit.Kind() {
			case value.KindString:
				litS := lit.AsString()
				lf, litOk := parseNum(litS)
				if !litOk {
					// Neither side can compare numerically: raw string order.
					return func(i int) int { return strings.Compare(strs[i], litS) }
				}
				return func(i int) int {
					if rf, ok := parseNum(strs[i]); ok {
						return cmpFloat(rf, lf)
					}
					return strings.Compare(strs[i], litS)
				}
			case value.KindDate:
				// string vs DATE: rendered-form comparison, no parsing.
				litS := lit.String()
				return func(i int) int { return strings.Compare(strs[i], litS) }
			default: // INT, FLOAT, BOOL
				lf, _ := lit.Num()
				litS := lit.String()
				return func(i int) int {
					if rf, ok := parseNum(strs[i]); ok {
						return cmpFloat(rf, lf)
					}
					return strings.Compare(strs[i], litS)
				}
			}
		}
	}
	return func(i int) int { return value.Compare(v.Value(i), lit) }
}

// parseNum replicates value's string-to-number coercion (coerceNum).
func parseNum(s string) (float64, bool) {
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	return f, err == nil
}

// cmpFloat replicates value's total float order: NaN equals only NaN and
// sorts after every number.
func cmpFloat(a, b float64) int {
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return 1
	case bn:
		return -1
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compileBetween(t *sqlparse.Between, b *Batch, alloc func(func(*node, int, int)) *node) *node {
	x, ok := compileOperand(t.X, b)
	if !ok || x.vec == nil {
		return nil
	}
	lo, lok := t.Lo.(*sqlparse.Literal)
	hi, hok := t.Hi.(*sqlparse.Literal)
	if !lok || !hok {
		return nil
	}
	if lo.Val.IsNull() || hi.Val.IsNull() {
		return alloc(evalAllNull)
	}
	cmpLo := cmpAgainst(x.vec, lo.Val)
	cmpHi := cmpAgainst(x.vec, hi.Val)
	v, not := x.vec, t.Not
	return alloc(func(nd *node, l, h int) {
		for i := l; i < h; i++ {
			if v.IsNull(i) {
				nd.n.Set(i)
				continue
			}
			in := cmpLo(i) >= 0 && cmpHi(i) <= 0
			if not {
				in = !in
			}
			if in {
				nd.t.Set(i)
			}
		}
	})
}

func compileIn(t *sqlparse.In, b *Batch, alloc func(func(*node, int, int)) *node) *node {
	x, ok := compileOperand(t.X, b)
	if !ok || x.vec == nil {
		return nil
	}
	lits := make([]value.Value, len(t.List))
	for i, item := range t.List {
		l, isLit := item.(*sqlparse.Literal)
		if !isLit {
			return nil
		}
		lits[i] = l.Val
	}
	v, not := x.vec, t.Not
	return alloc(func(nd *node, lo, hi int) {
		for i := lo; i < hi; i++ {
			if v.IsNull(i) {
				nd.n.Set(i)
				continue
			}
			xv := v.Value(i)
			found := false
			for _, l := range lits {
				if value.Equal(xv, l) {
					found = true
					break
				}
			}
			if not {
				found = !found
			}
			if found {
				nd.t.Set(i)
			}
		}
	})
}

func compileIsNull(t *sqlparse.IsNull, b *Batch, alloc func(func(*node, int, int)) *node) *node {
	x, ok := compileOperand(t.X, b)
	if !ok {
		return nil
	}
	if x.vec == nil { // IS NULL over a literal: constant
		hold := x.lit.IsNull() != t.Not
		return alloc(func(nd *node, lo, hi int) {
			if hold {
				for i := lo; i < hi; i++ {
					nd.t.Set(i)
				}
			}
		})
	}
	v, not := x.vec, t.Not
	return alloc(func(nd *node, lo, hi int) {
		for i := lo; i < hi; i++ {
			if v.IsNull(i) != not {
				nd.t.Set(i)
			}
		}
	})
}

func compileLike(t *sqlparse.Like, b *Batch, alloc func(func(*node, int, int)) *node) *node {
	x, ok := compileOperand(t.X, b)
	if !ok || x.vec == nil {
		return nil
	}
	p, isLit := t.Pattern.(*sqlparse.Literal)
	if !isLit || p.Val.Kind() != value.KindString {
		return nil
	}
	pattern := p.Val.AsString()
	v, not := x.vec, t.Not
	if v.typed(value.KindString) {
		strs := v.Strs
		return alloc(func(nd *node, lo, hi int) {
			for i := lo; i < hi; i++ {
				if v.IsNull(i) {
					nd.n.Set(i)
					continue
				}
				if expr.LikeMatch(pattern, strs[i]) != not {
					nd.t.Set(i)
				}
			}
		})
	}
	return alloc(func(nd *node, lo, hi int) {
		for i := lo; i < hi; i++ {
			if v.IsNull(i) {
				nd.n.Set(i)
				continue
			}
			if expr.LikeMatch(pattern, v.Value(i).String()) != not {
				nd.t.Set(i)
			}
		}
	})
}

// compileBoolColumn compiles a bare boolean column used as a predicate.
// Non-boolean bare columns are left to the fallback, which reproduces the
// row path's behavior for those shapes.
func compileBoolColumn(t *sqlparse.Column, b *Batch, alloc func(func(*node, int, int)) *node) *node {
	j := b.ColIndex(t.Name)
	if j < 0 {
		return nil
	}
	v := b.Vecs[j]
	if v.Boxed == nil && v.Kind == value.KindNull {
		return alloc(evalAllNull)
	}
	if !v.typed(value.KindBool) {
		return nil
	}
	ints := v.Ints
	return alloc(func(nd *node, lo, hi int) {
		for i := lo; i < hi; i++ {
			if v.IsNull(i) {
				nd.n.Set(i)
			} else if ints[i] != 0 {
				nd.t.Set(i)
			}
		}
	})
}

func compileBoolLiteral(t *sqlparse.Literal, alloc func(func(*node, int, int)) *node) *node {
	switch t.Val.Kind() {
	case value.KindNull:
		return alloc(evalAllNull)
	case value.KindBool:
		hold := t.Val.AsBool()
		return alloc(func(nd *node, lo, hi int) {
			if hold {
				for i := lo; i < hi; i++ {
					nd.t.Set(i)
				}
			}
		})
	}
	return nil
}
