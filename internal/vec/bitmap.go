// Package vec implements batched columnar execution for PushdownDB's
// local operators: typed column vectors (int64/float64/string/bool/date
// payloads plus null bitmaps), selection bitmaps, and filter/project/
// hash-join/group-by kernels that process a column of values per step
// instead of dispatching an expression interpreter per row.
//
// Every kernel is a semantic mirror of the corresponding row-at-a-time
// operator in internal/engine (FilterLocalN, ProjectLocalN, and so on):
// the same values, the same order, the same errors, at any worker count.
// The row path stays the reference implementation; the differential and
// fuzz tests pin the two paths byte-identical.
package vec

import "math/bits"

// Bitmap is a fixed-length bitset used for both null masks (set bit =
// NULL) and selection masks (set bit = row kept).
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns an all-zero bitmap of n bits.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits.
func (b *Bitmap) Len() int { return b.n }

// Get reports bit i.
func (b *Bitmap) Get(i int) bool {
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// Set sets bit i.
func (b *Bitmap) Set(i int) {
	b.words[i>>6] |= 1 << uint(i&63)
}

// Clear clears bit i.
func (b *Bitmap) Clear(i int) {
	b.words[i>>6] &^= 1 << uint(i&63)
}

// SetAll sets every bit.
func (b *Bitmap) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.maskTail()
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// maskTail zeroes the unused bits of the final word so word-level
// operations (Count, Any) stay exact.
func (b *Bitmap) maskTail() {
	if r := b.n & 63; r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(r)) - 1
	}
}

// Indices appends the positions of all set bits, ascending.
func (b *Bitmap) Indices() []int {
	out := make([]int, 0, b.Count())
	for wi, w := range b.words {
		base := wi << 6
		for w != 0 {
			out = append(out, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}
