package vec_test

import (
	"fmt"
	"testing"

	"pushdowndb/internal/engine"
	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/value"
	"pushdowndb/internal/vec"
)

// The differential battery: every kernel must agree with its row-path
// twin byte-for-byte on data that exercises the value layer's coercion
// corners — NULLs, NaN, dates, numeric-looking strings, space padding,
// and mixed-kind (boxed) columns — at several worker counts, including
// counts that split rows mid-word.

var workerCounts = []int{1, 2, 3, 7}

// nastyData builds a CSV-shaped table:
//
//	id    dense ints 1..n
//	qty   ints with NULLs
//	price floats with NaN and NULLs
//	ship  dates with NULLs
//	flag  pure strings (typed string vector)
//	name  strings mixed with numeric-looking cells (boxed vector)
//	mix   alternating int/float/string (boxed vector)
func nastyData() ([]string, [][]string) {
	cols := []string{"id", "qty", "price", "ship", "flag", "name", "mix"}
	seed := uint64(42)
	next := func(m int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int((seed >> 33) % uint64(m))
	}
	dates := []string{"1993-12-31", "1994-03-15", "1994-07-01", "1995-01-01", "1996-10-09"}
	flags := []string{"A", "R", "N", "a"}
	names := []string{"item alpha", "item beta", "ITEM gamma", " 7", "7", "00501", "", "naNish"}
	var rows [][]string
	for i := 0; i < 137; i++ {
		qty := ""
		if next(10) != 0 {
			qty = fmt.Sprint(next(50))
		}
		var price string
		switch next(12) {
		case 0:
			price = "NaN"
		case 1:
			price = ""
		default:
			price = fmt.Sprintf("%d.%02d", next(900), next(100))
		}
		ship := ""
		if next(8) != 0 {
			ship = dates[next(len(dates))]
		}
		var mix string
		switch i % 3 {
		case 0:
			mix = fmt.Sprint(next(5))
		case 1:
			mix = fmt.Sprintf("%d.5", next(5))
		default:
			mix = "x" + fmt.Sprint(next(5))
		}
		rows = append(rows, []string{
			fmt.Sprint(i + 1), qty, price, ship,
			flags[next(len(flags))], names[next(len(names))], mix,
		})
	}
	return cols, rows
}

// sameVal is the byte-identity check: same kind, same rendered form.
// (Compare would call " 7" and "7" equal; the renderer does not.)
func sameVal(a, b value.Value) bool {
	return a.Kind() == b.Kind() && a.String() == b.String()
}

func sameErr(t *testing.T, label string, want, got error) bool {
	t.Helper()
	if (want != nil) != (got != nil) {
		t.Errorf("%s: row err=%v vec err=%v", label, want, got)
		return false
	}
	if want != nil {
		if want.Error() != got.Error() {
			t.Errorf("%s: row err=%q vec err=%q", label, want, got)
		}
		return false
	}
	return true
}

func TestFromStringsDiff(t *testing.T) {
	cols, srows := nastyData()
	for _, w := range workerCounts {
		rel := engine.FromStringsN(cols, srows, w)
		b, ok := vec.FromStrings(cols, srows, w)
		if !ok {
			t.Fatalf("w=%d: FromStrings refused rectangular data", w)
		}
		if b.Len() != len(rel.Rows) || len(b.Vecs) != len(rel.Cols) {
			t.Fatalf("w=%d: shape %dx%d want %dx%d", w, b.Len(), len(b.Vecs), len(rel.Rows), len(rel.Cols))
		}
		for i := range rel.Rows {
			for c := range cols {
				if want, got := rel.Rows[i][c], b.Vecs[c].Value(i); !sameVal(want, got) {
					t.Fatalf("w=%d: cell[%d][%s]: row=%#v vec=%#v", w, i, cols[c], want, got)
				}
			}
		}
	}
	// Ragged rows must refuse vectorization: the row path's short rows
	// produce lookup misses that a rectangular batch cannot reproduce.
	ragged := [][]string{{"1", "2"}, {"3"}}
	if _, ok := vec.FromStrings([]string{"a", "b"}, ragged, 2); ok {
		t.Fatalf("ragged rows vectorized")
	}
}

func TestFilterDiff(t *testing.T) {
	cols, srows := nastyData()
	preds := []string{
		// compiled comparisons, typed fast paths
		"qty > 24",
		"qty >= 24 AND qty <= 30",
		"price < 100.5 OR price > 800",
		"price = 'NaN'",
		"ship >= '1994-01-01' AND ship < '1995-01-01'",
		"ship = '1994-03-15'",
		"flag = 'A' OR flag = 'R'",
		"flag <> 'a'",
		"name = '7'",
		"name = ' 7'",
		// compiled BETWEEN / IN / IS NULL / LIKE / NOT
		"qty BETWEEN 10 AND 40",
		"qty NOT BETWEEN 10 AND 40",
		"flag IN ('A', 'N')",
		"flag NOT IN ('A', 'N')",
		"qty IS NULL",
		"qty IS NOT NULL AND price > 1",
		"name LIKE 'item%'",
		"name NOT LIKE '%a'",
		"flag LIKE '_'",
		"NOT (flag = 'A')",
		// boxed columns and column-vs-column
		"mix > 2",
		"mix = '1.5'",
		"id = mix",
		"name > flag",
		// constants
		"1 = 1",
		"1 = 0 OR flag = 'A'",
		// fallback shapes (arithmetic, non-literal LIKE pattern — the row
		// path evaluates the pattern on the first row each worker sees and
		// caches it; identical spans make that deterministic in both paths)
		"qty + 1 > 25",
		"id - 1 < 100 AND qty > 24",
		"name LIKE flag",
	}
	for _, w := range workerCounts {
		rel := engine.FromStringsN(cols, srows, w)
		b, _ := vec.FromStrings(cols, srows, w)
		for _, pred := range preds {
			label := fmt.Sprintf("w=%d pred=%q", w, pred)
			want, wantErr := engine.FilterLocalN(rel, pred, w)
			pe, perr := sqlparse.ParseExpr(pred)
			if perr != nil {
				t.Fatalf("%s: parse: %v", label, perr)
			}
			idx, gotErr := vec.Filter(b, pe, w)
			if !sameErr(t, label, wantErr, gotErr) {
				continue
			}
			if len(idx) != len(want.Rows) {
				t.Errorf("%s: kept %d rows, row path kept %d", label, len(idx), len(want.Rows))
				continue
			}
			for r, i := range idx {
				for c := range cols {
					if wv, gv := want.Rows[r][c], b.Vecs[c].Value(i); !sameVal(wv, gv) {
						t.Fatalf("%s: row %d col %s: row=%#v vec=%#v", label, r, cols[c], wv, gv)
					}
				}
			}
		}
	}
}

func TestFilterErrDiff(t *testing.T) {
	cols, srows := nastyData()
	rel := engine.FromStringsN(cols, srows, 3)
	b, _ := vec.FromStrings(cols, srows, 3)
	// NOT over a non-boolean column errors in the evaluator; the vec path
	// must fall back and surface the identical first-in-worker-order error.
	pred := "NOT name"
	_, wantErr := engine.FilterLocalN(rel, pred, 3)
	pe, err := sqlparse.ParseExpr(pred)
	if err != nil {
		t.Fatal(err)
	}
	_, gotErr := vec.Filter(b, pe, 3)
	if wantErr == nil || gotErr == nil || wantErr.Error() != gotErr.Error() {
		t.Fatalf("row err=%v vec err=%v", wantErr, gotErr)
	}
}

func TestProjectDiff(t *testing.T) {
	cols, srows := nastyData()
	itemLists := []string{
		"*",
		"id, flag",
		"flag AS f, qty",
		"id, qty + 1 AS q1, price * 2 AS p2",
		"'x' AS lit, id",
		"ship, mix, name",
	}
	for _, w := range workerCounts {
		rel := engine.FromStringsN(cols, srows, w)
		b, _ := vec.FromStrings(cols, srows, w)
		for _, items := range itemLists {
			label := fmt.Sprintf("w=%d items=%q", w, items)
			want, wantErr := engine.ProjectLocalN(rel, items, w)
			sel, perr := sqlparse.Parse("SELECT " + items + " FROM t")
			if perr != nil {
				t.Fatalf("%s: parse: %v", label, perr)
			}
			out, gotErr := vec.Project(b, sel, w)
			if !sameErr(t, label, wantErr, gotErr) {
				continue
			}
			if fmt.Sprint(out.Cols) != fmt.Sprint(want.Cols) {
				t.Errorf("%s: cols %v want %v", label, out.Cols, want.Cols)
				continue
			}
			rows := out.ToRows()
			if len(rows) != len(want.Rows) {
				t.Errorf("%s: %d rows want %d", label, len(rows), len(want.Rows))
				continue
			}
			for i := range rows {
				for c := range want.Cols {
					if !sameVal(want.Rows[i][c], rows[i][c]) {
						t.Fatalf("%s: cell[%d][%d]: row=%#v vec=%#v", label, i, c, want.Rows[i][c], rows[i][c])
					}
				}
			}
		}
	}
}

func TestGroupByDiff(t *testing.T) {
	cols, srows := nastyData()
	cases := []struct{ groupBy, items string }{
		{"flag", "flag, COUNT(*) AS n, SUM(qty) AS sq, AVG(price) AS ap, MIN(name) AS mn, MAX(ship) AS mx"},
		{"flag, ship", "flag, ship, COUNT(*) AS n, SUM(price) AS sp"},
		{"qty", "qty, COUNT(*) AS n"},
		{"mix", "mix, SUM(id) AS s"},
		{"flag", "flag, SUM(qty + 1) AS s1, AVG(qty) AS aq"},
	}
	for _, w := range workerCounts {
		rel := engine.FromStringsN(cols, srows, w)
		b, _ := vec.FromStrings(cols, srows, w)
		for _, tc := range cases {
			label := fmt.Sprintf("w=%d group=%q items=%q", w, tc.groupBy, tc.items)
			want, wantErr := engine.GroupByLocalN(rel, tc.groupBy, tc.items, w)
			sel, perr := sqlparse.Parse("SELECT " + tc.items + " FROM t GROUP BY " + tc.groupBy)
			if perr != nil {
				t.Fatalf("%s: parse: %v", label, perr)
			}
			gotCols, gotRows, gotErr := vec.GroupBy(b, sel, w)
			if !sameErr(t, label, wantErr, gotErr) {
				continue
			}
			if fmt.Sprint(gotCols) != fmt.Sprint(want.Cols) {
				t.Errorf("%s: cols %v want %v", label, gotCols, want.Cols)
				continue
			}
			if len(gotRows) != len(want.Rows) {
				t.Errorf("%s: %d groups want %d", label, len(gotRows), len(want.Rows))
				continue
			}
			for i := range gotRows {
				for c := range want.Cols {
					if !sameVal(want.Rows[i][c], gotRows[i][c]) {
						t.Fatalf("%s: group %d col %s: row=%#v vec=%#v",
							label, i, want.Cols[c], want.Rows[i][c], gotRows[i][c])
					}
				}
			}
		}
	}
}

func TestJoinPairsDiff(t *testing.T) {
	cols, srows := nastyData()
	rcols := []string{"rid", "tag"}
	var rrows [][]string
	for i := 0; i < 53; i++ {
		rid := fmt.Sprint(i * 3 % 140) // overlaps id range, with misses
		switch i % 7 {
		case 0:
			rid = "" // NULL key: never joins
		case 1:
			rid = fmt.Sprint(i % 9) // duplicate keys
		case 2:
			rid = "x" + fmt.Sprint(i) // string key
		}
		rrows = append(rrows, []string{rid, fmt.Sprintf("tag%d", i)})
	}
	for _, w := range workerCounts {
		left := engine.FromStringsN(cols, srows, w)
		right := engine.FromStringsN(rcols, rrows, w)
		lb, _ := vec.FromStrings(cols, srows, w)
		rb, _ := vec.FromStrings(rcols, rrows, w)
		for _, key := range []string{"id", "mix"} {
			label := fmt.Sprintf("w=%d key=%s", w, key)
			want, err := engine.HashJoinLocalN(left, right, key, "rid", w)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			bi, pi := vec.JoinPairs(lb.Vecs[lb.ColIndex(key)], rb.Vecs[rb.ColIndex("rid")], w)
			if len(bi) != len(want.Rows) {
				t.Fatalf("%s: %d pairs, row path %d", label, len(bi), len(want.Rows))
			}
			for k := range bi {
				for c := range cols {
					if !sameVal(want.Rows[k][c], lb.Vecs[c].Value(bi[k])) {
						t.Fatalf("%s: pair %d left col %s mismatch", label, k, cols[c])
					}
				}
				for c := range rcols {
					if !sameVal(want.Rows[k][len(cols)+c], rb.Vecs[c].Value(pi[k])) {
						t.Fatalf("%s: pair %d right col %s mismatch", label, k, rcols[c])
					}
				}
			}
		}
	}
}

func TestEmptyRelations(t *testing.T) {
	cols := []string{"a", "b"}
	rel := engine.FromStringsN(cols, nil, 3)
	b, ok := vec.FromStrings(cols, nil, 3)
	if !ok || b.Len() != 0 {
		t.Fatalf("empty FromStrings: ok=%v len=%d", ok, b.Len())
	}
	pe, _ := sqlparse.ParseExpr("a > 1")
	idx, err := vec.Filter(b, pe, 3)
	if err != nil || len(idx) != 0 {
		t.Fatalf("empty filter: idx=%v err=%v", idx, err)
	}
	want, _ := engine.GroupByLocalN(rel, "a", "a, COUNT(*) AS n", 3)
	sel, _ := sqlparse.Parse("SELECT a, COUNT(*) AS n FROM t GROUP BY a")
	gotCols, gotRows, err := vec.GroupBy(b, sel, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotRows) != len(want.Rows) || fmt.Sprint(gotCols) != fmt.Sprint(want.Cols) {
		t.Fatalf("empty group-by: %v/%v want %v/%v", gotCols, gotRows, want.Cols, want.Rows)
	}
}
