package vec

import (
	"strconv"
	"strings"

	"pushdowndb/internal/expr"
	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/value"
)

// GroupBy mirrors the row path's GroupByLocalN over a batch: contiguous
// worker spans each build a partial group map, partials merge in worker
// order (reproducing the sequential first-seen group order), and the
// aggregate states are the exact big.Float accumulators the row path
// uses. The speedup comes from rendering group keys straight from typed
// payloads and feeding aggregate inputs without per-row environment
// lookups. Returns the output column names and rows.
func GroupBy(b *Batch, sel *sqlparse.Select, workers int) ([]string, [][]value.Value, error) {
	itemExprs := make([]sqlparse.Expr, len(sel.Items))
	for i, it := range sel.Items {
		itemExprs[i] = it.Expr
	}
	// Classify each group key: a resolvable bare column renders its key
	// bytes from the typed payload; anything else evaluates per row.
	type keySrc struct {
		col int // -1: evaluate expr
		e   sqlparse.Expr
	}
	keys := make([]keySrc, len(sel.GroupBy))
	for j, g := range sel.GroupBy {
		keys[j] = keySrc{col: -1, e: g}
		if c, ok := g.(*sqlparse.Column); ok {
			if idx := b.ColIndex(c.Name); idx >= 0 {
				keys[j].col = idx
			}
		}
	}
	// Classify each aggregate argument the same way. The classification is
	// over the aggregate nodes CollectAggregates finds, in the same order
	// every runner's States() uses.
	aggNodes := expr.CollectAggregates(itemExprs)
	type aggSrc struct {
		star bool
		col  int // -1: evaluate expr
		e    sqlparse.Expr
	}
	aggSrcs := make([]aggSrc, len(aggNodes))
	for k, a := range aggNodes {
		if _, isStar := a.X.(*sqlparse.Star); isStar {
			aggSrcs[k] = aggSrc{star: true}
			continue
		}
		aggSrcs[k] = aggSrc{col: -1, e: a.X}
		if c, ok := a.X.(*sqlparse.Column); ok {
			if idx := b.ColIndex(c.Name); idx >= 0 {
				aggSrcs[k].col = idx
			}
		}
	}

	type vgroup struct {
		keyVals []value.Value
		runner  *expr.AggRunner
	}
	type partial struct {
		groups map[string]*vgroup
		order  []string
	}
	sps := rowSpans(b.Len(), workers)
	parts := make([]partial, len(sps))
	err := runSpans(sps, func(w int, sp span) error {
		ev := expr.New()
		env := &rowEnv{b: b}
		p := partial{groups: map[string]*vgroup{}}
		var buf []byte
		var memoDays int64
		var memoStr string
		memoOK := false
		for i := sp.lo; i < sp.hi; i++ {
			env.i = i
			buf = buf[:0]
			for j := range keys {
				if c := keys[j].col; c >= 0 {
					v := b.Vecs[c]
					if v.Boxed == nil && !v.IsNull(i) {
						switch v.Kind {
						case value.KindInt:
							buf = strconv.AppendInt(buf, v.Ints[i], 10)
						case value.KindFloat:
							buf = strconv.AppendFloat(buf, v.Floats[i], 'f', -1, 64)
						case value.KindString:
							buf = append(buf, v.Strs[i]...)
						case value.KindBool:
							if v.Ints[i] != 0 {
								buf = append(buf, "true"...)
							} else {
								buf = append(buf, "false"...)
							}
						case value.KindDate:
							if !memoOK || v.Ints[i] != memoDays {
								memoDays, memoStr, memoOK = v.Ints[i], value.FormatDays(v.Ints[i]), true
							}
							buf = append(buf, memoStr...)
						}
					} else if v.Boxed != nil {
						buf = append(buf, v.Boxed[i].String()...)
					}
					// NULL renders as the empty string: append nothing.
				} else {
					v, err := ev.Eval(keys[j].e, env)
					if err != nil {
						return err
					}
					buf = append(buf, v.String()...)
				}
				buf = append(buf, 0)
			}
			// Map lookup keyed by string(buf) compiles without the string
			// allocation; the key is only materialized on first sight.
			gs, ok := p.groups[string(buf)]
			if !ok {
				k := string(buf)
				keyVals := make([]value.Value, len(keys))
				for j := range keys {
					if c := keys[j].col; c >= 0 {
						keyVals[j] = b.Vecs[c].Value(i)
					} else {
						v, err := ev.Eval(keys[j].e, env)
						if err != nil {
							return err
						}
						keyVals[j] = v
					}
				}
				gs = &vgroup{keyVals: keyVals, runner: expr.NewAggRunner(ev, itemExprs)}
				p.groups[k] = gs
				p.order = append(p.order, k)
			}
			states := gs.runner.States()
			for a := range aggSrcs {
				switch {
				case aggSrcs[a].star:
					if err := states[a].Add(value.Int(1)); err != nil {
						return err
					}
				case aggSrcs[a].col >= 0:
					if err := states[a].Add(b.Vecs[aggSrcs[a].col].Value(i)); err != nil {
						return err
					}
				default:
					v, err := ev.Eval(aggSrcs[a].e, env)
					if err != nil {
						return err
					}
					if err := states[a].Add(v); err != nil {
						return err
					}
				}
			}
		}
		parts[w] = p
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	merged := map[string]*vgroup{}
	var order []string
	for _, p := range parts {
		for _, k := range p.order {
			g := p.groups[k]
			if m, ok := merged[k]; ok {
				if err := m.runner.Merge(g.runner); err != nil {
					return nil, nil, err
				}
			} else {
				merged[k] = g
				order = append(order, k)
			}
		}
	}

	cols := make([]string, len(sel.Items))
	for i, it := range sel.Items {
		cols[i] = itemName(it)
	}
	rows := make([][]value.Value, 0, len(order))
	for _, k := range order {
		gs := merged[k]
		genv := &groupKeyEnv{exprs: sel.GroupBy, vals: gs.keyVals}
		row := make([]value.Value, len(sel.Items))
		for j, it := range sel.Items {
			v, err := gs.runner.Final(it.Expr, genv)
			if err != nil {
				return nil, nil, err
			}
			row[j] = v
		}
		rows = append(rows, row)
	}
	return cols, rows, nil
}

// itemName mirrors the row path's output-column naming.
func itemName(it sqlparse.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(*sqlparse.Column); ok {
		return c.Name
	}
	return it.Expr.String()
}

// groupKeyEnv mirrors the row path's group-key environment: finalization
// resolves bare group-by columns to the group's key values.
type groupKeyEnv struct {
	exprs []sqlparse.Expr
	vals  []value.Value
}

func (g *groupKeyEnv) Lookup(_, name string) (value.Value, bool) {
	for i, e := range g.exprs {
		if c, ok := e.(*sqlparse.Column); ok && strings.EqualFold(c.Name, name) {
			return g.vals[i], true
		}
	}
	return value.Null(), false
}
