package vec

import (
	"strings"

	"pushdowndb/internal/value"
)

// Vector is one column of values. A vector is either typed — a single
// payload slice of the column's uniform Kind plus an optional null bitmap
// — or boxed, holding []value.Value verbatim for mixed-kind columns.
// Boxed is authoritative when non-nil.
//
// Typed payloads: KindInt and KindDate store in Ints (dates as days since
// epoch), KindBool stores 0/1 in Ints, KindFloat in Floats, KindString in
// Strs. Null slots hold the zero payload and are flagged in Nulls; a nil
// Nulls means the column has no NULLs. A column that is entirely NULL is
// typed with Kind==KindNull and no payload.
type Vector struct {
	Kind   value.Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	Nulls  *Bitmap
	Boxed  []value.Value
	n      int
}

// Len returns the number of rows.
func (v *Vector) Len() int { return v.n }

// IsNull reports whether row i is NULL.
func (v *Vector) IsNull(i int) bool {
	if v.Boxed != nil {
		return v.Boxed[i].IsNull()
	}
	if v.Kind == value.KindNull {
		return true
	}
	return v.Nulls != nil && v.Nulls.Get(i)
}

// Value reconstructs row i as the exact value.Value the column was built
// from. The returned struct is stack-allocated, so Value-based fallbacks
// in the kernels are allocation-free and byte-identical to the row path
// by construction.
func (v *Vector) Value(i int) value.Value {
	if v.Boxed != nil {
		return v.Boxed[i]
	}
	if v.Kind == value.KindNull || (v.Nulls != nil && v.Nulls.Get(i)) {
		return value.Null()
	}
	switch v.Kind {
	case value.KindInt:
		return value.Int(v.Ints[i])
	case value.KindFloat:
		return value.Float(v.Floats[i])
	case value.KindString:
		return value.Str(v.Strs[i])
	case value.KindBool:
		return value.Bool(v.Ints[i] != 0)
	case value.KindDate:
		return value.Date(v.Ints[i])
	}
	return value.Null()
}

// typed reports whether the vector has a uniform payload of kind k with
// direct slice access (boxed and all-null vectors are not typed).
func (v *Vector) typed(k value.Kind) bool {
	return v.Boxed == nil && v.Kind == k
}

// FromValues builds a vector from a column of values: typed when every
// non-NULL value shares one Kind, boxed otherwise. The input slice is
// retained when boxing.
func FromValues(vals []value.Value) *Vector {
	n := len(vals)
	kind := value.KindNull
	for _, v := range vals {
		if v.IsNull() {
			continue
		}
		if kind == value.KindNull {
			kind = v.Kind()
		} else if v.Kind() != kind {
			return &Vector{Boxed: vals, n: n}
		}
	}
	out := &Vector{Kind: kind, n: n}
	if kind == value.KindNull {
		return out // entirely NULL
	}
	var nulls *Bitmap
	switch kind {
	case value.KindInt, value.KindDate, value.KindBool:
		out.Ints = make([]int64, n)
		for i, v := range vals {
			if v.IsNull() {
				if nulls == nil {
					nulls = NewBitmap(n)
				}
				nulls.Set(i)
				continue
			}
			if kind == value.KindBool {
				if v.AsBool() {
					out.Ints[i] = 1
				}
			} else {
				out.Ints[i] = v.AsInt()
			}
		}
	case value.KindFloat:
		out.Floats = make([]float64, n)
		for i, v := range vals {
			if v.IsNull() {
				if nulls == nil {
					nulls = NewBitmap(n)
				}
				nulls.Set(i)
				continue
			}
			out.Floats[i] = v.AsFloat()
		}
	case value.KindString:
		out.Strs = make([]string, n)
		for i, v := range vals {
			if v.IsNull() {
				if nulls == nil {
					nulls = NewBitmap(n)
				}
				nulls.Set(i)
				continue
			}
			out.Strs[i] = v.AsString()
		}
	}
	out.Nulls = nulls
	return out
}

// Gather returns a new vector holding rows idx (in order).
func (v *Vector) Gather(idx []int) *Vector {
	if v.Boxed != nil {
		out := make([]value.Value, len(idx))
		for o, i := range idx {
			out[o] = v.Boxed[i]
		}
		return &Vector{Boxed: out, n: len(idx)}
	}
	out := &Vector{Kind: v.Kind, n: len(idx)}
	var nulls *Bitmap
	if v.Nulls != nil {
		for o, i := range idx {
			if v.Nulls.Get(i) {
				if nulls == nil {
					nulls = NewBitmap(len(idx))
				}
				nulls.Set(o)
			}
		}
	}
	out.Nulls = nulls
	switch {
	case v.Ints != nil:
		out.Ints = make([]int64, len(idx))
		for o, i := range idx {
			out.Ints[o] = v.Ints[i]
		}
	case v.Floats != nil:
		out.Floats = make([]float64, len(idx))
		for o, i := range idx {
			out.Floats[o] = v.Floats[i]
		}
	case v.Strs != nil:
		out.Strs = make([]string, len(idx))
		for o, i := range idx {
			out.Strs[o] = v.Strs[i]
		}
	}
	return out
}

// Batch is a set of equal-length column vectors with named columns — the
// columnar counterpart of engine.Relation.
type Batch struct {
	Cols []string
	Vecs []*Vector
	n    int
	idx  map[string]int // lower-cased name -> first column index
}

// NewBatch assembles a batch. All vectors must share one length.
func NewBatch(cols []string, vecs []*Vector) *Batch {
	b := &Batch{Cols: cols, Vecs: vecs}
	if len(vecs) > 0 {
		b.n = vecs[0].Len()
	}
	b.idx = make(map[string]int, len(cols))
	for i, c := range cols {
		key := strings.ToLower(c)
		if _, ok := b.idx[key]; !ok {
			b.idx[key] = i // first-wins, like Relation.ColIndex
		}
	}
	return b
}

// Len returns the row count.
func (b *Batch) Len() int { return b.n }

// ColIndex resolves a column name case-insensitively to its first match,
// or -1 — the same resolution rule as engine.Relation.ColIndex, answered
// from a map instead of a per-call linear scan.
func (b *Batch) ColIndex(name string) int {
	if i, ok := b.idx[strings.ToLower(name)]; ok {
		return i
	}
	// ToLower and EqualFold can disagree on exotic Unicode; fall back to
	// the row path's exact rule so resolution never diverges.
	for i, c := range b.Cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// FromRows builds a batch from row-major values. ok is false when the
// rows are ragged (some row length differs from the column count); ragged
// relations keep the row path's lookup-miss semantics, so callers must
// fall back to row-at-a-time execution. Generic over the row type so the
// engine's []Row passes without reslicing.
func FromRows[R ~[]value.Value](cols []string, rows []R, workers int) (*Batch, bool) {
	for _, r := range rows {
		if len(r) != len(cols) {
			return nil, false
		}
	}
	vecs := make([]*Vector, len(cols))
	runSpans(colSpans(len(cols), workers), func(w int, sp span) error {
		for c := sp.lo; c < sp.hi; c++ {
			vecs[c] = columnVector(rows, c)
		}
		return nil
	})
	b := NewBatch(cols, vecs)
	if len(cols) == 0 {
		b.n = len(rows)
	}
	return b, true
}

// columnVector builds one column's vector straight from row-major input —
// the same typed/boxed decision FromValues makes, fused into two row-major
// passes with no intermediate []value.Value.
func columnVector[R ~[]value.Value](rows []R, c int) *Vector {
	n := len(rows)
	kind := value.KindNull
	for _, r := range rows {
		v := r[c]
		if v.IsNull() {
			continue
		}
		if kind == value.KindNull {
			kind = v.Kind()
		} else if v.Kind() != kind {
			vals := make([]value.Value, n)
			for i, r := range rows {
				vals[i] = r[c]
			}
			return &Vector{Boxed: vals, n: n}
		}
	}
	out := &Vector{Kind: kind, n: n}
	if kind == value.KindNull {
		return out // entirely NULL
	}
	var nulls *Bitmap
	null := func(i int) {
		if nulls == nil {
			nulls = NewBitmap(n)
		}
		nulls.Set(i)
	}
	switch kind {
	case value.KindInt, value.KindDate, value.KindBool:
		out.Ints = make([]int64, n)
		for i, r := range rows {
			v := r[c]
			switch {
			case v.IsNull():
				null(i)
			case kind == value.KindBool:
				if v.AsBool() {
					out.Ints[i] = 1
				}
			default:
				out.Ints[i] = v.AsInt()
			}
		}
	case value.KindFloat:
		out.Floats = make([]float64, n)
		for i, r := range rows {
			if v := r[c]; v.IsNull() {
				null(i)
			} else {
				out.Floats[i] = v.AsFloat()
			}
		}
	case value.KindString:
		out.Strs = make([]string, n)
		for i, r := range rows {
			if v := r[c]; v.IsNull() {
				null(i)
			} else {
				out.Strs[i] = v.AsString()
			}
		}
	}
	out.Nulls = nulls
	return out
}

// FromRowsProjected is FromRows restricted to columns keep (indices into
// allCols): only those columns are decoded into vectors, which is what
// makes vectorized filtering cheap on wide relations — a predicate over 2
// of 16 columns converts 2, not 16. The raggedness contract is FromRows':
// every row must span all of allCols, or ok is false and the caller falls
// back to the row path.
func FromRowsProjected[R ~[]value.Value](allCols []string, rows []R, keep []int, workers int) (*Batch, bool) {
	for _, r := range rows {
		if len(r) != len(allCols) {
			return nil, false
		}
	}
	cols := make([]string, len(keep))
	vecs := make([]*Vector, len(keep))
	runSpans(colSpans(len(keep), workers), func(w int, sp span) error {
		for k := sp.lo; k < sp.hi; k++ {
			c := keep[k]
			cols[k] = allCols[c]
			vecs[k] = columnVector(rows, c)
		}
		return nil
	})
	b := NewBatch(cols, vecs)
	b.n = len(rows)
	return b, true
}

// ToRows materializes the batch row-major.
func (b *Batch) ToRows() [][]value.Value {
	rows := make([][]value.Value, b.n)
	flat := make([]value.Value, b.n*len(b.Vecs))
	for i := range rows {
		row := flat[i*len(b.Vecs) : (i+1)*len(b.Vecs) : (i+1)*len(b.Vecs)]
		for c, v := range b.Vecs {
			row[c] = v.Value(i)
		}
		rows[i] = row
	}
	return rows
}

// rowEnv adapts one batch row to expr.Env for the kernels' expression
// fallbacks. Reused across rows by mutating i, so per-row evaluation
// allocates no environment.
type rowEnv struct {
	b *Batch
	i int
}

func (e *rowEnv) Lookup(_, name string) (value.Value, bool) {
	j := e.b.ColIndex(name)
	if j < 0 {
		return value.Null(), false
	}
	return e.b.Vecs[j].Value(e.i), true
}
