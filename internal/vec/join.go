package vec

import (
	"pushdowndb/internal/value"
)

// JoinPairs runs the hash-join build+probe kernel over two key vectors
// and returns the matched (build, probe) index pairs in the row path's
// exact output order: probe rows ascending, and for each probe row its
// build matches ascending. Hashing and equality go through the same
// value.Hash/value.Equal the row path uses, so hash collisions and
// numeric-vs-string key coercions behave identically.
func JoinPairs(build, probe *Vector, workers int) (bi, pi []int) {
	buildSpans := rowSpans(build.Len(), workers)
	partMaps := make([]map[uint64][]int, len(buildSpans))
	_ = runSpans(buildSpans, func(w int, sp span) error {
		m := map[uint64][]int{}
		for i := sp.lo; i < sp.hi; i++ {
			if build.IsNull(i) {
				continue
			}
			h := build.Value(i).Hash()
			m[h] = append(m[h], i)
		}
		partMaps[w] = m
		return nil
	})
	table := map[uint64][]int{}
	if len(partMaps) > 0 {
		table = partMaps[0]
		for _, m := range partMaps[1:] {
			// Deterministic despite map iteration: per-worker index lists are
			// ascending and merge in span order, so table[h] is ascending
			// regardless of which key merges first (same argument as the row
			// path's build merge).
			//lint:ignore mapdeterminism per-key append order is fixed by the worker-span order, not the map order
			for h, idxs := range m {
				table[h] = append(table[h], idxs...)
			}
		}
	}
	sps := rowSpans(probe.Len(), workers)
	type pair struct{ b, p int }
	parts := make([][]pair, len(sps))
	_ = runSpans(sps, func(w int, sp span) error {
		for p := sp.lo; p < sp.hi; p++ {
			if probe.IsNull(p) {
				continue
			}
			pv := probe.Value(p)
			for _, i := range table[pv.Hash()] {
				if value.Equal(build.Value(i), pv) {
					parts[w] = append(parts[w], pair{b: i, p: p})
				}
			}
		}
		return nil
	})
	total := 0
	for _, ps := range parts {
		total += len(ps)
	}
	bi = make([]int, 0, total)
	pi = make([]int, 0, total)
	for _, ps := range parts {
		for _, pr := range ps {
			bi = append(bi, pr.b)
			pi = append(pi, pr.p)
		}
	}
	return bi, pi
}
