package vec_test

import (
	"fmt"
	"testing"

	"pushdowndb/internal/colformat"
	"pushdowndb/internal/csvx"
	"pushdowndb/internal/engine"
	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/value"
	"pushdowndb/internal/vec"
)

// FuzzVecDecode feeds arbitrary bytes through both vectorized decode
// routes. The columnar route must never panic (random footers, truncated
// chunks, bogus null bitmaps all surface as errors); the CSV route must
// agree cell-for-cell and kernel-for-kernel with the row-at-a-time
// reference.
func FuzzVecDecode(f *testing.F) {
	f.Add([]byte("a,b\n1,2\n3,\n"))
	f.Add([]byte("h\nNaN\n 7\n1994-03-15\n00501\n"))
	f.Add([]byte{0x00, 0xff, 'P', 'C', 'O', 'L', '1'})
	if seed, err := colformat.Encode(
		colformat.Schema{{Name: "x", Kind: value.KindInt}},
		[][]value.Value{{value.Int(7)}, {value.Null()}}, 1, true); err == nil {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Columnar route: decode errors are fine, panics are findings.
		if b, err := vec.FromColumnar(data, 3); err == nil {
			for _, v := range b.Vecs {
				for i := 0; i < b.Len(); i++ {
					_ = v.Value(i)
					_ = v.IsNull(i)
				}
			}
		}

		// CSV route, against the row path. Synthetic column names keep
		// fuzz-shaped headers out of the SQL strings.
		header, rows, err := csvx.Decode(data, true)
		if err != nil || len(header) == 0 {
			return
		}
		cols := make([]string, len(header))
		for i := range cols {
			cols[i] = fmt.Sprintf("c%d", i)
		}
		b, ok := vec.FromStrings(cols, rows, 3)
		rel := engine.FromStringsN(cols, rows, 3)
		if !ok {
			// Refusal is only allowed for genuinely ragged input.
			for _, r := range rows {
				if len(r) != len(cols) {
					return
				}
			}
			t.Fatalf("FromStrings refused rectangular %d x %d", len(rows), len(cols))
		}
		if b.Len() != len(rel.Rows) {
			t.Fatalf("decoded %d rows, reference %d", b.Len(), len(rel.Rows))
		}
		for i := range rel.Rows {
			for c := range cols {
				w, g := rel.Rows[i][c], b.Vecs[c].Value(i)
				if w.Kind() != g.Kind() || w.String() != g.String() {
					t.Fatalf("cell[%d][%d]: row=%#v vec=%#v", i, c, w, g)
				}
			}
		}

		// Kernels over the decoded batch.
		pred, _ := sqlparse.ParseExpr("c0 IS NOT NULL AND c0 >= '3'")
		idx, err := vec.Filter(b, pred, 3)
		want, wantErr := engine.FilterLocalN(rel, "c0 IS NOT NULL AND c0 >= '3'", 3)
		if (err != nil) != (wantErr != nil) {
			t.Fatalf("filter err: vec=%v row=%v", err, wantErr)
		}
		if err == nil && len(idx) != len(want.Rows) {
			t.Fatalf("filter kept %d, reference %d", len(idx), len(want.Rows))
		}
		sel, _ := sqlparse.Parse("SELECT c0, COUNT(*) AS n FROM t GROUP BY c0")
		gotCols, gotRows, err := vec.GroupBy(b, sel, 3)
		wantG, wantErr := engine.GroupByLocalN(rel, "c0", "c0, COUNT(*) AS n", 3)
		if (err != nil) != (wantErr != nil) {
			t.Fatalf("group-by err: vec=%v row=%v", err, wantErr)
		}
		if err == nil {
			if len(gotRows) != len(wantG.Rows) || len(gotCols) != len(wantG.Cols) {
				t.Fatalf("group-by %d x %d, reference %d x %d",
					len(gotRows), len(gotCols), len(wantG.Rows), len(wantG.Cols))
			}
			for i := range gotRows {
				for c := range gotCols {
					w, g := wantG.Rows[i][c], gotRows[i][c]
					if w.Kind() != g.Kind() || w.String() != g.String() {
						t.Fatalf("group[%d][%d]: row=%#v vec=%#v", i, c, w, g)
					}
				}
			}
		}
	})
}
