package vec

import (
	"math"
	"reflect"
	"testing"

	"pushdowndb/internal/value"
)

func TestBitmapBasics(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 1000} {
		b := NewBitmap(n)
		if b.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, b.Len())
		}
		if b.Count() != 0 || b.Any() {
			t.Fatalf("n=%d: fresh bitmap not empty", n)
		}
		b.SetAll()
		if b.Count() != n {
			t.Fatalf("n=%d: SetAll count=%d", n, b.Count())
		}
		idx := b.Indices()
		if len(idx) != n {
			t.Fatalf("n=%d: Indices len=%d", n, len(idx))
		}
		for i, v := range idx {
			if v != i {
				t.Fatalf("n=%d: Indices[%d]=%d", n, i, v)
			}
		}
		if n > 0 {
			b.Clear(n - 1)
			if b.Get(n-1) || b.Count() != n-1 {
				t.Fatalf("n=%d: Clear failed", n)
			}
			b.Set(n - 1)
			if !b.Get(n - 1) {
				t.Fatalf("n=%d: Set failed", n)
			}
		}
	}
}

func TestBitmapIndicesSparse(t *testing.T) {
	b := NewBitmap(200)
	want := []int{0, 1, 63, 64, 65, 126, 127, 128, 199}
	for _, i := range want {
		b.Set(i)
	}
	if got := b.Indices(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Indices=%v want %v", got, want)
	}
}

func TestRowSpans(t *testing.T) {
	cases := []struct {
		n, w int
		want []span
	}{
		{0, 4, nil},
		{10, 1, []span{{0, 10}}},
		{10, 3, []span{{0, 4}, {4, 7}, {7, 10}}},
		{3, 8, []span{{0, 1}, {1, 2}, {2, 3}}},
	}
	for _, c := range cases {
		got := rowSpans(c.n, c.w)
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("rowSpans(%d,%d)=%v want %v", c.n, c.w, got, c.want)
		}
	}
}

func TestAlignedSpans(t *testing.T) {
	for _, n := range []int{0, 1, 64, 65, 130, 1000} {
		for _, w := range []int{1, 2, 3, 7} {
			sps := alignedSpans(n, w)
			next := 0
			for _, sp := range sps {
				if sp.lo != next {
					t.Fatalf("n=%d w=%d: gap at %d (spans %v)", n, w, next, sps)
				}
				if sp.lo%64 != 0 {
					t.Fatalf("n=%d w=%d: span start %d not word-aligned", n, w, sp.lo)
				}
				if sp.hi <= sp.lo {
					t.Fatalf("n=%d w=%d: empty span %v", n, w, sp)
				}
				next = sp.hi
			}
			if next != n {
				t.Fatalf("n=%d w=%d: spans cover to %d, want %d", n, w, next, n)
			}
		}
	}
}

func TestFromValuesRoundTrip(t *testing.T) {
	cases := map[string][]value.Value{
		"ints":    {value.Int(1), value.Int(-7), value.Int(0)},
		"floats":  {value.Float(1.5), value.Float(math.NaN()), value.Float(math.Inf(1))},
		"strings": {value.Str("a"), value.Str(""), value.Str(" 7")},
		"bools":   {value.Bool(true), value.Bool(false)},
		"dates":   {value.Date(8840), value.Date(0), value.Date(-1)},
		"nulls":   {value.Null(), value.Null()},
		"intsWithNulls": {
			value.Int(3), value.Null(), value.Int(5),
		},
		"mixedKinds": {
			value.Int(1), value.Float(1.0), value.Str("x"), value.Null(),
		},
	}
	same := func(a, b value.Value) bool {
		// reflect.DeepEqual is wrong for NaN payloads; kind + total-order
		// compare is the identity the engine actually depends on.
		return a.Kind() == b.Kind() && value.Compare(a, b) == 0
	}
	for name, vals := range cases {
		v := FromValues(vals)
		if v.Len() != len(vals) {
			t.Fatalf("%s: Len=%d want %d", name, v.Len(), len(vals))
		}
		for i, want := range vals {
			got := v.Value(i)
			if !same(got, want) {
				t.Fatalf("%s[%d]: Value=%#v want %#v", name, i, got, want)
			}
			if v.IsNull(i) != (want.Kind() == value.KindNull) {
				t.Fatalf("%s[%d]: IsNull=%v", name, i, v.IsNull(i))
			}
		}
	}
	// A uniform-kind column must take the typed representation; a
	// mixed-kind one must stay boxed (Int vs Float matters to AggState).
	if v := FromValues(cases["ints"]); v.Boxed != nil || v.Kind != value.KindInt {
		t.Fatalf("ints not typed: kind=%v boxed=%v", v.Kind, v.Boxed != nil)
	}
	if v := FromValues(cases["mixedKinds"]); v.Boxed == nil {
		t.Fatalf("mixed kinds not boxed")
	}
}

func TestGather(t *testing.T) {
	vals := []value.Value{value.Int(10), value.Null(), value.Int(30), value.Int(40)}
	v := FromValues(vals)
	g := v.Gather([]int{3, 1, 1, 0})
	want := []value.Value{value.Int(40), value.Null(), value.Null(), value.Int(10)}
	for i, w := range want {
		if got := g.Value(i); !reflect.DeepEqual(got, w) {
			t.Fatalf("gather[%d]=%#v want %#v", i, got, w)
		}
	}
}

func TestBatchColIndex(t *testing.T) {
	b := NewBatch([]string{"A", "a", "b"}, []*Vector{
		FromValues([]value.Value{value.Int(1)}),
		FromValues([]value.Value{value.Int(2)}),
		FromValues([]value.Value{value.Int(3)}),
	})
	// First case-insensitive match wins, like Relation.ColIndex.
	if i := b.ColIndex("a"); i != 0 {
		t.Fatalf("ColIndex(a)=%d want 0", i)
	}
	if i := b.ColIndex("B"); i != 2 {
		t.Fatalf("ColIndex(B)=%d want 2", i)
	}
	if i := b.ColIndex("missing"); i != -1 {
		t.Fatalf("ColIndex(missing)=%d want -1", i)
	}
}

func TestFromRowsRagged(t *testing.T) {
	rows := [][]value.Value{
		{value.Int(1), value.Int(2)},
		{value.Int(3)}, // short row: the row path would miss lookups here
	}
	if _, ok := FromRows([]string{"a", "b"}, rows, 2); ok {
		t.Fatalf("ragged rows must refuse vectorization")
	}
	rows[1] = []value.Value{value.Int(3), value.Int(4)}
	b, ok := FromRows([]string{"a", "b"}, rows, 2)
	if !ok {
		t.Fatalf("rectangular rows refused")
	}
	if b.Len() != 2 || len(b.Vecs) != 2 {
		t.Fatalf("batch shape %d x %d", b.Len(), len(b.Vecs))
	}
	back := b.ToRows()
	if !reflect.DeepEqual(back, rows) {
		t.Fatalf("ToRows=%v want %v", back, rows)
	}
}
