package vec

import (
	"fmt"

	"pushdowndb/internal/colformat"
	"pushdowndb/internal/value"
)

// FromStrings decodes CSV cells straight into typed column vectors: each
// cell goes through value.FromCSV exactly once (the same typing rule the
// row path's FromStringsN applies), then each column is laid out typed.
// ok is false for ragged input, which must keep the row path's
// short-row lookup semantics.
func FromStrings(cols []string, rows [][]string, workers int) (*Batch, bool) {
	for _, r := range rows {
		if len(r) != len(cols) {
			return nil, false
		}
	}
	vecs := make([]*Vector, len(cols))
	runSpans(colSpans(len(cols), workers), func(w int, sp span) error {
		for c := sp.lo; c < sp.hi; c++ {
			vals := make([]value.Value, len(rows))
			for i, r := range rows {
				vals[i] = value.FromCSV(r[c])
			}
			vecs[c] = FromValues(vals)
		}
		return nil
	})
	b := NewBatch(cols, vecs)
	if len(cols) == 0 {
		b.n = len(rows)
	}
	return b, true
}

// FromColumnar decodes a colformat object (the paper's Fig. 11 columnar
// layout) into vectors without ever materializing rows: each column's
// chunks decode directly into one typed payload slice.
func FromColumnar(data []byte, workers int) (*Batch, error) {
	r, err := colformat.Open(data)
	if err != nil {
		return nil, err
	}
	schema := r.Schema()
	cols := make([]string, len(schema))
	for i, c := range schema {
		cols[i] = c.Name
	}
	vecs := make([]*Vector, len(schema))
	n := int(r.NumRows())
	err = runSpans(colSpans(len(schema), workers), func(w int, sp span) error {
		for c := sp.lo; c < sp.hi; c++ {
			vals := make([]value.Value, 0, n)
			for g := 0; g < r.NumRowGroups(); g++ {
				chunk, _, err := r.ReadColumn(g, c)
				if err != nil {
					return err
				}
				vals = append(vals, chunk...)
			}
			if len(vals) != n {
				return fmt.Errorf("vec: column %q decoded %d rows, footer says %d", cols[c], len(vals), n)
			}
			vecs[c] = FromValues(vals)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	b := NewBatch(cols, vecs)
	b.n = n
	return b, nil
}
