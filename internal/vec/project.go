package vec

import (
	"pushdowndb/internal/expr"
	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/value"
)

// Project evaluates the select items of sel over the batch. Bare column
// items and * share the input vectors without copying; anything else
// evaluates per row with the shared interpreter, in the row path's
// row-major order so the first error (if any) is the same one
// ProjectLocalN would surface.
func Project(b *Batch, sel *sqlparse.Select, workers int) (*Batch, error) {
	var cols []string
	var vecs []*Vector
	type pending struct {
		out int // index into vecs
		e   sqlparse.Expr
	}
	var evals []pending
	for _, it := range sel.Items {
		if _, isStar := it.Expr.(*sqlparse.Star); isStar {
			cols = append(cols, b.Cols...)
			vecs = append(vecs, b.Vecs...)
			continue
		}
		name := it.Alias
		if name == "" {
			if c, ok := it.Expr.(*sqlparse.Column); ok {
				name = c.Name
			} else {
				name = it.Expr.String()
			}
		}
		cols = append(cols, name)
		if c, ok := it.Expr.(*sqlparse.Column); ok {
			if j := b.ColIndex(c.Name); j >= 0 {
				vecs = append(vecs, b.Vecs[j])
				continue
			}
		}
		vecs = append(vecs, nil)
		evals = append(evals, pending{out: len(vecs) - 1, e: it.Expr})
	}
	if len(evals) > 0 {
		n := b.Len()
		colVals := make([][]value.Value, len(evals))
		for k := range colVals {
			colVals[k] = make([]value.Value, n)
		}
		err := runSpans(rowSpans(n, workers), func(w int, sp span) error {
			ev := expr.New()
			env := &rowEnv{b: b}
			for i := sp.lo; i < sp.hi; i++ {
				env.i = i
				for k := range evals {
					v, err := ev.Eval(evals[k].e, env)
					if err != nil {
						return err
					}
					colVals[k][i] = v
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		for k, p := range evals {
			vecs[p.out] = FromValues(colVals[k])
		}
	}
	out := NewBatch(cols, vecs)
	out.n = b.Len()
	return out, nil
}
