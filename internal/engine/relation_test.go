package engine

import (
	"strings"
	"testing"
	"testing/quick"

	"pushdowndb/internal/value"
)

func TestColIndexCaseInsensitive(t *testing.T) {
	rel := &Relation{Cols: []string{"C_CustKey", "val"}}
	if rel.ColIndex("c_custkey") != 0 || rel.ColIndex("VAL") != 1 || rel.ColIndex("zzz") != -1 {
		t.Error("ColIndex case-insensitivity broken")
	}
}

func TestFromStringsTyping(t *testing.T) {
	rel := FromStrings([]string{"i", "f", "d", "s", "n"},
		[][]string{{"42", "2.5", "1994-01-01", "text", ""}})
	row := rel.Rows[0]
	kinds := []value.Kind{value.KindInt, value.KindFloat, value.KindDate, value.KindString, value.KindNull}
	for i, k := range kinds {
		if row[i].Kind() != k {
			t.Errorf("col %d kind = %v, want %v", i, row[i].Kind(), k)
		}
	}
}

func TestProjectLocalStar(t *testing.T) {
	rel := FromStrings([]string{"a", "b"}, [][]string{{"1", "2"}})
	out, err := ProjectLocal(rel, "*, a + b AS s")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Cols) != 3 || out.Cols[2] != "s" {
		t.Fatalf("cols = %v", out.Cols)
	}
	if out.Rows[0][2].AsInt() != 3 {
		t.Errorf("computed col = %v", out.Rows[0][2])
	}
}

func TestProjectLocalErrors(t *testing.T) {
	rel := FromStrings([]string{"a"}, [][]string{{"1"}})
	if _, err := ProjectLocal(rel, "nosuch + 1"); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := ProjectLocal(rel, "((("); err == nil {
		t.Error("bad projection should error")
	}
}

func TestSortLocalStableTies(t *testing.T) {
	rel := FromStrings([]string{"k", "tag"}, [][]string{
		{"1", "first"}, {"2", "x"}, {"1", "second"}, {"1", "third"},
	})
	out, err := SortLocal(rel, "k")
	if err != nil {
		t.Fatal(err)
	}
	// Stable sort keeps equal keys in input order.
	var tags []string
	for _, r := range out.Rows {
		if r[0].AsInt() == 1 {
			tags = append(tags, r[1].String())
		}
	}
	if strings.Join(tags, ",") != "first,second,third" {
		t.Errorf("tie order = %v", tags)
	}
}

func TestSortLocalMultiKey(t *testing.T) {
	rel := FromStrings([]string{"a", "b"}, [][]string{
		{"2", "1"}, {"1", "9"}, {"2", "0"}, {"1", "3"},
	})
	out, err := SortLocal(rel, "a ASC, b DESC")
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int64{{1, 9}, {1, 3}, {2, 1}, {2, 0}}
	for i, w := range want {
		a, _ := out.Rows[i][0].IntNum()
		b, _ := out.Rows[i][1].IntNum()
		if a != w[0] || b != w[1] {
			t.Fatalf("row %d = (%d,%d), want %v", i, a, b, w)
		}
	}
}

func TestSortLocalErrors(t *testing.T) {
	rel := FromStrings([]string{"a"}, [][]string{{"1"}})
	if _, err := SortLocal(rel, "nosuch"); err == nil {
		t.Error("unknown sort column should error")
	}
	if _, err := SortLocal(rel, ""); err == nil {
		t.Error("empty order-by should error")
	}
}

func TestConcatArityMismatch(t *testing.T) {
	a := FromStrings([]string{"x"}, [][]string{{"1"}})
	b := FromStrings([]string{"x", "y"}, [][]string{{"1", "2"}})
	if err := a.Concat(b); err == nil {
		t.Error("arity mismatch should error")
	}
	empty := &Relation{}
	if err := empty.Concat(b); err != nil || len(empty.Cols) != 2 {
		t.Error("concat into empty relation should adopt columns")
	}
}

func TestRelationStringTruncates(t *testing.T) {
	rel := &Relation{Cols: []string{"x"}}
	for i := 0; i < 50; i++ {
		rel.Rows = append(rel.Rows, Row{value.Int(int64(i))})
	}
	s := rel.String()
	if !strings.Contains(s, "50 rows total") {
		t.Errorf("large relation should truncate with a row count:\n%s", s)
	}
}

func TestGroupByLocalCompositeAndExpressions(t *testing.T) {
	rel := FromStrings([]string{"a", "b", "v"}, [][]string{
		{"x", "1", "10"}, {"x", "2", "20"}, {"x", "1", "30"}, {"y", "1", "40"},
	})
	out, err := GroupByLocal(rel, "a, b", "a, b, SUM(v) AS s")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 3 {
		t.Fatalf("groups = %d, want 3", len(out.Rows))
	}
	// Expression-over-aggregates items.
	out2, err := GroupByLocal(rel, "a", "a, SUM(v) / COUNT(*) AS mean")
	if err != nil {
		t.Fatal(err)
	}
	means := map[string]float64{}
	for _, r := range out2.Rows {
		f, _ := r[1].Num()
		means[r[0].String()] = f
	}
	if means["x"] != 20 || means["y"] != 40 {
		t.Errorf("means = %v", means)
	}
}

func TestAggregateLocalEmptyInput(t *testing.T) {
	rel := &Relation{Cols: []string{"v"}}
	out, err := AggregateLocal(rel, "SUM(v) AS s, COUNT(*) AS n")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 {
		t.Fatalf("rows = %v", out.Rows)
	}
	if !out.Rows[0][0].IsNull() {
		t.Error("SUM over empty should be NULL")
	}
}

func TestHashJoinLocalNullKeys(t *testing.T) {
	left := FromStrings([]string{"k", "l"}, [][]string{{"", "a"}, {"1", "b"}})
	right := FromStrings([]string{"k2", "r"}, [][]string{{"", "x"}, {"1", "y"}})
	out, err := HashJoinLocal(left, right, "k", "k2")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 1 {
		t.Errorf("NULL keys must not join: %v", out.Rows)
	}
}

// Property: FilterLocal(p) + FilterLocal(NOT p) partitions the relation.
func TestQuickFilterPartition(t *testing.T) {
	f := func(vals []int16, threshold int16) bool {
		rows := make([][]string, len(vals))
		for i, v := range vals {
			rows[i] = []string{value.Int(int64(v)).String()}
		}
		rel := FromStrings([]string{"x"}, rows)
		pred := "x <= " + value.Int(int64(threshold)).String()
		yes, err1 := FilterLocal(rel, pred)
		no, err2 := FilterLocal(rel, "NOT ("+pred+")")
		if err1 != nil || err2 != nil {
			return false
		}
		return len(yes.Rows)+len(no.Rows) == len(rel.Rows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: TopK(k) equals Sort + Limit(k) on the key column.
func TestQuickTopKMatchesSortLimit(t *testing.T) {
	f := func(vals []int16, kRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		k := int(kRaw)%len(vals) + 1
		rows := make([][]string, len(vals))
		for i, v := range vals {
			rows[i] = []string{value.Int(int64(v)).String()}
		}
		rel := FromStrings([]string{"x"}, rows)
		top, err := topKLocal(rel, "x", k, true)
		if err != nil {
			return false
		}
		sorted, err := SortLocal(rel, "x")
		if err != nil {
			return false
		}
		want := LimitLocal(sorted, k)
		if len(top.Rows) != len(want.Rows) {
			return false
		}
		for i := range want.Rows {
			a, _ := top.Rows[i][0].IntNum()
			b, _ := want.Rows[i][0].IntNum()
			if a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
