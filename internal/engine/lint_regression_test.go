package engine

// Regression tests for the violations the pushdownlint sweep surfaced:
// each pins a nontrivial fix so the invariant holds even if the analyzer
// is ever loosened.

import (
	"context"
	"testing"
	"time"

	"pushdowndb/internal/s3api"
)

// TestExplainHonorsContextDeadline pins the ctxflow fix in ExplainContext:
// the cached-scan residency probe used to run on context.Background(), so
// a stalled backend listing hung Explain past any caller deadline. Now the
// caller's context reaches the listing and the deadline cuts it.
func TestExplainHonorsContextDeadline(t *testing.T) {
	st := newTestStore(t)
	fault := s3api.NewFault(s3api.NewInProc(st))
	counting := s3api.NewCounting(fault) // counts even calls the fault cuts
	db, err := Open(testBucket, WithBackend("fault", counting), WithResultCache(testCacheBudget))
	if err != nil {
		t.Fatal(err)
	}
	// Warm the result cache: with an empty cache the residency check
	// short-circuits before the backend listing it must be cut from.
	if _, _, err := db.Query("SELECT * FROM cust WHERE bal <= 0"); err != nil {
		t.Fatal(err)
	}
	if db.resultCache.Len() == 0 {
		t.Fatal("result cache still empty after the warming query")
	}
	listsBefore := counting.Lists()

	fault.OnOps("list")
	fault.StallFor(30 * time.Second)

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, eerr := db.ExplainContext(ctx, "SELECT * FROM cust WHERE bal <= 0")
	elapsed := time.Since(start)

	if counting.Lists() == listsBefore {
		t.Fatal("Explain never reached the backend listing; the stall was not exercised")
	}
	// The cut may surface as an error (access planning) or as a silent 0%
	// cached report (residency probe): promptness is the invariant.
	if elapsed > 5*time.Second {
		t.Fatalf("ExplainContext ran %v against a stalled listing (err=%v); the deadline did not cut the probe", elapsed, eerr)
	}
}

// TestUnknownTableErrorCarriesNotFoundKind pins the errkind fix in
// DB.parts: a query over a missing table must carry s3api.KindNotFound so
// the server reports it as the client's mistake, not a 500.
func TestUnknownTableErrorCarriesNotFoundKind(t *testing.T) {
	db, _ := newTestDB(t)
	_, _, err := db.Query("SELECT * FROM nosuchtable")
	if err == nil {
		t.Fatal("query over a missing table succeeded")
	}
	if !s3api.IsNotFound(err) {
		t.Fatalf("unknown table error kind = %q, want %q (err: %v)", s3api.KindOf(err), s3api.KindNotFound, err)
	}
}

// TestTopKProbeSizesAreMetered pins the metered fix in approxRowCount:
// the per-partition Size probes are priced requests and must enter the
// cost model alongside the row-probe Selects.
func TestTopKProbeSizesAreMetered(t *testing.T) {
	st := newTestStore(t)
	counting := s3api.NewCounting(s3api.NewInProc(st))
	db, err := Open(testBucket, WithBackend("s3sim", counting))
	if err != nil {
		t.Fatal(err)
	}
	e := db.NewExec()
	if _, err := e.approxRowCount(e.NextStage(), "events"); err != nil {
		t.Fatal(err)
	}
	requests, _, _, _ := e.Metrics.Totals()
	sizes, selects := counting.Sizes(), counting.Selects()
	if sizes == 0 {
		t.Fatal("probe issued no Size calls; the test exercises nothing")
	}
	// Before the fix the size probes escaped the model: requests counted
	// only the Selects.
	if requests < sizes+selects {
		t.Errorf("probe metered %d requests for %d Size + %d Select backend calls; Size probes escape the cost model",
			requests, sizes, selects)
	}
}
