package engine

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/csvx"
	"pushdowndb/internal/expr"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/selectengine"
	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/value"
)

// DB is a PushdownDB instance bound to one bucket of the storage service.
type DB struct {
	Client  s3api.Client
	Bucket  string
	Cfg     cloudsim.Config
	Pricing cloudsim.Pricing
	// Sim maps this run onto the paper's testbed dimensions for the
	// virtual clock and pricing (unit scale by default).
	Sim cloudsim.Scale
	// Caps are the S3 Select capabilities the storage service advertises;
	// the Section-X extensions are off by default, matching 2020 AWS.
	Caps selectengine.Capabilities
	// MaxScanParallel bounds concurrent partition requests (compute node
	// connection limit). Zero means one goroutine per partition.
	MaxScanParallel int

	// statsCache holds planner table statistics keyed by
	// bucket/table/filter, so repeated queries plan from cached stats
	// instead of re-issuing COUNT(*) probes.
	statsMu    sync.Mutex
	statsCache map[string]cloudsim.PlanTableStats
}

// InvalidateStats drops the planner's cached table statistics (call after
// loading or mutating tables).
func (db *DB) InvalidateStats() {
	db.statsMu.Lock()
	db.statsCache = nil
	db.statsMu.Unlock()
}

// Open returns a DB with the paper's default cost model and pricing.
func Open(client s3api.Client, bucket string) *DB {
	return &DB{
		Client:  client,
		Bucket:  bucket,
		Cfg:     cloudsim.DefaultConfig(),
		Pricing: cloudsim.DefaultPricing(),
		Sim:     cloudsim.Unit(),
	}
}

// Exec is the context of a single query execution: a virtual clock plus a
// stage counter. Operators allocate stages in order; phases within one
// stage overlap on the clock.
type Exec struct {
	db *DB
	// Metrics is the query's virtual clock and cost accumulator.
	Metrics *cloudsim.Metrics

	// plan is the join plan Query built for this execution (nil for
	// single-table queries and explicit operator calls).
	plan *QueryPlan

	mu    sync.Mutex
	stage int
}

// QueryPlan returns the join plan this execution ran (nil when the query
// was single-table or driven through the explicit operator APIs).
func (e *Exec) QueryPlan() *QueryPlan { return e.plan }

// NewExec starts a query execution context.
func (db *DB) NewExec() *Exec {
	return &Exec{db: db, Metrics: cloudsim.NewMetricsScaled(db.Cfg, db.Sim)}
}

// DB returns the owning database.
func (e *Exec) DB() *DB { return e.db }

// workers is the server-side parallelism budget local operators run with
// (the cost model's Workers knob, capped at Cores).
func (e *Exec) workers() int { return e.db.Cfg.WorkerBudget() }

// NextStage allocates the next sequential stage index.
func (e *Exec) NextStage() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stage
	e.stage++
	return s
}

// RuntimeSeconds returns the query's virtual runtime so far.
func (e *Exec) RuntimeSeconds() float64 { return e.Metrics.RuntimeSeconds() }

// Cost returns the query's cost so far under the DB's pricing.
func (e *Exec) Cost() cloudsim.CostBreakdown { return e.Metrics.Cost(e.db.Pricing) }

// parts lists the partition objects of a table.
func (e *Exec) parts(table string) ([]string, error) {
	keys, err := e.db.Client.List(e.db.Bucket, table+"/part")
	if err != nil {
		return nil, err
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("engine: table %q has no partitions in bucket %q", table, e.db.Bucket)
	}
	return keys, nil
}

// forEachPart runs fn over every partition with bounded parallelism,
// collecting the first error.
func (e *Exec) forEachPart(keys []string, fn func(i int, key string) error) error {
	limit := e.db.MaxScanParallel
	if limit <= 0 || limit > len(keys) {
		limit = len(keys)
	}
	sem := make(chan struct{}, limit)
	errCh := make(chan error, len(keys))
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, k string) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := fn(i, k); err != nil {
				errCh <- err
			}
		}(i, k)
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

// LoadTable fetches every partition with plain GETs and parses the CSV on
// the server — the paper's "server-side" baseline path.
func (e *Exec) LoadTable(phaseName string, stage int, table string) (*Relation, error) {
	keys, err := e.parts(table)
	if err != nil {
		return nil, err
	}
	phase := e.Metrics.Phase(phaseName, stage)
	rels := make([]*Relation, len(keys))
	// The per-partition decodes already run concurrently under
	// forEachPart; split the worker budget across that fan-out so total
	// decode concurrency matches the Cores budget the cost model prices.
	fanout := e.db.MaxScanParallel
	if fanout <= 0 || fanout > len(keys) {
		fanout = len(keys)
	}
	decodeWorkers := e.workers() / fanout
	if decodeWorkers < 1 {
		decodeWorkers = 1
	}
	err = e.forEachPart(keys, func(i int, key string) error {
		data, err := e.db.Client.Get(e.db.Bucket, key)
		if err != nil {
			return err
		}
		phase.AddGetRequest(int64(len(data)))
		header, rows, err := csvx.Decode(data, true)
		if err != nil {
			return err
		}
		rels[i] = FromStringsN(header, rows, decodeWorkers)
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &Relation{}
	for _, r := range rels {
		if err := out.Concat(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// selectOnParts runs the same S3 Select SQL against every partition and
// returns the per-partition results, recording request metrics.
func (e *Exec) selectOnParts(phase *cloudsim.Phase, table, sql string, mutate func(i int, req *selectengine.Request)) ([]*selectengine.Result, error) {
	keys, err := e.parts(table)
	if err != nil {
		return nil, err
	}
	results := make([]*selectengine.Result, len(keys))
	err = e.forEachPart(keys, func(i int, key string) error {
		req := selectengine.Request{SQL: sql, HasHeader: true, Capabilities: e.db.Caps}
		if mutate != nil {
			mutate(i, &req)
		}
		res, err := e.db.Client.Select(e.db.Bucket, key, req)
		if err != nil {
			return fmt.Errorf("engine: select on %s: %w", key, err)
		}
		phase.AddSelectRequest(selectReqStats(res.Stats))
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// SelectRows runs sql on every partition of table and concatenates the
// returned rows into a typed relation.
func (e *Exec) SelectRows(phaseName string, stage int, table, sql string) (*Relation, error) {
	phase := e.Metrics.Phase(phaseName, stage)
	results, err := e.selectOnParts(phase, table, sql, nil)
	if err != nil {
		return nil, err
	}
	out := &Relation{}
	for _, res := range results {
		if err := out.Concat(FromStringsN(res.Columns, res.Rows, e.workers())); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SelectRowsLimit runs sql with a per-partition LIMIT so that the combined
// row count approaches total (used by sampling operators).
func (e *Exec) SelectRowsLimit(phaseName string, stage int, table, sql string, total int64) (*Relation, error) {
	keys, err := e.parts(table)
	if err != nil {
		return nil, err
	}
	per := total / int64(len(keys))
	if per < 1 {
		per = 1
	}
	limited := fmt.Sprintf("%s LIMIT %d", sql, per)
	phase := e.Metrics.Phase(phaseName, stage)
	results, err := e.selectOnParts(phase, table, limited, nil)
	if err != nil {
		return nil, err
	}
	out := &Relation{}
	for _, res := range results {
		if err := out.Concat(FromStringsN(res.Columns, res.Rows, e.workers())); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SelectAgg runs an aggregate-only sql on every partition and merges the
// single-row results column-wise using the given aggregate functions
// (SUM and COUNT merge by addition, MIN/MAX by comparison).
func (e *Exec) SelectAgg(phaseName string, stage int, table, sql string, merge []sqlparse.AggFunc) (Row, error) {
	phase := e.Metrics.Phase(phaseName, stage)
	results, err := e.selectOnParts(phase, table, sql, nil)
	if err != nil {
		return nil, err
	}
	states := make([]*expr.AggState, len(merge))
	for i, fn := range merge {
		// COUNT partial results merge by summation.
		if fn == sqlparse.AggCount {
			fn = sqlparse.AggSum
		}
		states[i] = expr.NewAggState(fn)
	}
	for _, res := range results {
		if len(res.Rows) != 1 {
			return nil, fmt.Errorf("engine: aggregate select returned %d rows", len(res.Rows))
		}
		if len(res.Rows[0]) != len(merge) {
			return nil, fmt.Errorf("engine: aggregate select returned %d columns, expected %d",
				len(res.Rows[0]), len(merge))
		}
		for j, f := range res.Rows[0] {
			if err := states[j].Add(value.FromCSV(f)); err != nil {
				return nil, err
			}
		}
	}
	out := make(Row, len(merge))
	for j, st := range states {
		out[j] = st.Final()
	}
	return out, nil
}

// TableHeader reads a table's column names with a small ranged GET against
// the first partition (the partitions all share a header row).
func (e *Exec) TableHeader(phaseName string, stage int, table string) ([]string, error) {
	keys, err := e.parts(table)
	if err != nil {
		return nil, err
	}
	const headerProbe = 4096
	data, err := e.db.Client.GetRange(e.db.Bucket, keys[0], 0, headerProbe-1)
	if err != nil {
		return nil, err
	}
	phase := e.Metrics.Phase(phaseName, stage)
	phase.AddGetRequest(int64(len(data)))
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("engine: no header row within first %d bytes of %s", headerProbe, keys[0])
	}
	header, _, err := csvx.Decode(data[:nl+1], true)
	return header, err
}

// selectReqStats converts select-engine stats into the cost model's
// request record.
func selectReqStats(s selectengine.Stats) cloudsim.SelectReq {
	return cloudsim.SelectReq{
		ScanBytes:       s.BytesScanned,
		ReturnedBytes:   s.BytesReturned,
		Rows:            s.RowsScanned,
		ExprNodes:       s.ExprNodes,
		Cells:           s.CellsDecoded,
		DecompressBytes: s.DecompressBytes,
	}
}

// sqlQuote renders a string as a SQL literal.
func sqlQuote(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// sqlLiteral renders a group value for embedding in a CASE/NOT IN clause
// or a top-K threshold predicate: bare only when the text round-trips
// canonically as a SQL numeric literal, quoted otherwise. Values that
// merely parse as numbers are not safe bare: "00501" would re-render as
// 501 and stop matching the stored zip-code text, and "NaN"/"Inf"/"0x1p2"
// would be misread as identifiers or fail to parse at all.
func sqlLiteral(s string) string {
	if i, err := strconv.ParseInt(s, 10, 64); err == nil && strconv.FormatInt(i, 10) == s {
		return s
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil &&
		!math.IsNaN(f) && !math.IsInf(f, 0) &&
		strconv.FormatFloat(f, 'f', -1, 64) == s {
		return s
	}
	return sqlQuote(s)
}
