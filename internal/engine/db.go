package engine

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/colformat"
	"pushdowndb/internal/csvx"
	"pushdowndb/internal/expr"
	"pushdowndb/internal/index"
	"pushdowndb/internal/obs"
	"pushdowndb/internal/rescache"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/scanshare"
	"pushdowndb/internal/selectengine"
	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/value"
	"pushdowndb/internal/vec"
)

// DB is a PushdownDB instance bound to one bucket name served by one or
// more storage backends. Backends are registered at Open time with
// functional options; a table→backend catalog routes each table to the
// backend its objects live on, and everything the engine needs to know
// about a backend — its S3 Select capabilities, its network/pricing
// profile, its error semantics — comes from the backend itself
// (s3api.Backend is self-describing), not from DB fields.
type DB struct {
	bucket      string
	backends    map[string]s3api.Backend
	defaultName string
	catalog     map[string]string // lower(table) -> backend name

	// Cfg holds the compute node's cost-model constants; per-backend
	// network and RTT terms come from each backend's Profile.
	Cfg cloudsim.Config
	// Pricing is the base price book; per-backend request/transfer rates
	// come from each backend's Profile.
	Pricing cloudsim.Pricing
	// Sim maps this run onto the paper's testbed dimensions for the
	// virtual clock and pricing (unit scale by default).
	Sim cloudsim.Scale
	// MaxScanParallel bounds concurrent partition requests (compute node
	// connection limit). Zero means one goroutine per partition.
	MaxScanParallel int

	// vectorized selects the batched columnar local operator path (the
	// default). WithVectorized(false) pins the row-at-a-time operators —
	// the two paths are byte-identical by contract, so the row path
	// survives as the differential-testing reference.
	vectorized bool

	// statsCache holds planner table statistics keyed by
	// backend/bucket/table/filter/index-predicate, so repeated queries plan
	// from cached stats instead of re-issuing COUNT(*) probes.
	statsMu    sync.Mutex
	statsCache map[string]cachedStats

	// idxMu guards idxMemo, the per-table cache of validated index
	// manifests (see indexManifest). Keyed by lower(table); an empty
	// manifest records "no indexes" so unindexed tables cost one catalog
	// read per DB, not one per query.
	idxMu   sync.Mutex
	idxMemo map[string]*index.Manifest

	// resultCache caches S3 Select responses across queries (WithResultCache;
	// nil = caching off). Hits skip the backend entirely and are metered as
	// free decodes (cloudsim.Phase.AddCacheHit).
	resultCache *rescache.Cache

	// scanShare coalesces concurrent S3 Selects into shared backend
	// passes (WithScanSharing; nil = off). It sits below the result
	// cache: cache hits never reach it, cache misses share one pass.
	scanShare *scanshare.Coordinator

	// hookMu guards queryHook: a long-lived server installs its audit hook
	// after Open while queries may already be in flight.
	hookMu    sync.RWMutex
	queryHook QueryHook
}

// QueryHook observes every SQL statement executed through the DB's text
// entry points (Query/QueryContext/ExecStatement): the statement, the
// execution's metrics (nil for DDL and for statements rejected before an
// execution started) and the outcome. Hooks run synchronously on the
// query's goroutine after the statement finishes — a server's audit log
// and per-tenant billing hang off this, keyed by whatever it stashed in
// ctx. Hooks must be safe for concurrent use.
type QueryHook func(ctx context.Context, sql string, exec *Exec, err error)

// WithQueryHook installs a query hook at Open time.
func WithQueryHook(h QueryHook) Option {
	return func(db *DB) error {
		db.queryHook = h
		return nil
	}
}

// SetQueryHook installs (or, with nil, removes) the query hook on a live
// DB. Safe to call while queries are running; statements already past
// their hook point are unaffected.
func (db *DB) SetQueryHook(h QueryHook) {
	db.hookMu.Lock()
	db.queryHook = h
	db.hookMu.Unlock()
}

// fireQueryHook invokes the installed hook, if any.
func (db *DB) fireQueryHook(ctx context.Context, sql string, exec *Exec, err error) {
	db.hookMu.RLock()
	h := db.queryHook
	db.hookMu.RUnlock()
	if h != nil {
		h(ctx, sql, exec, err)
	}
}

// Option configures Open.
type Option func(*DB) error

// WithBackend registers a storage backend under a name. The first
// registered backend becomes the default unless WithDefaultBackend says
// otherwise.
func WithBackend(name string, b s3api.Backend) Option {
	return func(db *DB) error {
		if name == "" || b == nil {
			return fmt.Errorf("engine: WithBackend needs a name and a backend")
		}
		if _, dup := db.backends[name]; dup {
			return fmt.Errorf("engine: backend %q registered twice", name)
		}
		db.backends[name] = b
		if db.defaultName == "" {
			db.defaultName = name
		}
		return nil
	}
}

// WithDefaultBackend names the backend tables use when the catalog has no
// entry for them.
func WithDefaultBackend(name string) Option {
	return func(db *DB) error {
		db.defaultName = name
		return nil
	}
}

// WithTableBackend maps a table to the backend its partitions live on.
func WithTableBackend(table, backend string) Option {
	return func(db *DB) error {
		db.catalog[strings.ToLower(table)] = backend
		return nil
	}
}

// WithConfig replaces the cost-model constants (default: the paper's
// calibrated DefaultConfig).
func WithConfig(cfg cloudsim.Config) Option {
	return func(db *DB) error {
		db.Cfg = cfg
		return nil
	}
}

// WithPricing replaces the base price book (default DefaultPricing).
func WithPricing(p cloudsim.Pricing) Option {
	return func(db *DB) error {
		db.Pricing = p
		return nil
	}
}

// WithScale sets the simulation scale mapping this run onto paper-size
// data for the virtual clock and cost model.
func WithScale(s cloudsim.Scale) Option {
	return func(db *DB) error {
		db.Sim = s
		return nil
	}
}

// WithWorkers sets the server-side worker budget (Config.Workers).
func WithWorkers(n int) Option {
	return func(db *DB) error {
		db.Cfg.Workers = n
		return nil
	}
}

// WithMaxScanParallel bounds concurrent partition requests.
func WithMaxScanParallel(n int) Option {
	return func(db *DB) error {
		db.MaxScanParallel = n
		return nil
	}
}

// WithResultCache enables the compute-tier select-result cache with the
// given byte budget: S3 Select responses are cached per (backend, bucket,
// partition, canonical select expression) and repeated scans are served
// locally — no storage request, nothing billed, only the response re-parse
// on the virtual clock. The planner sees residency through
// cloudsim.PlanTableStats.CachedFrac and can flip join strategy when a
// probe side is already resident. A budget <= 0 leaves caching off.
func WithResultCache(budgetBytes int64) Option {
	return func(db *DB) error {
		if budgetBytes > 0 {
			db.resultCache = rescache.New(budgetBytes)
		}
		return nil
	}
}

// WithResultCacheAdmission is WithResultCache with the second-touch
// admission policy: a select result is only cached when the same request
// misses twice, so one-off exploratory scans pass through a small ghost-key
// set instead of evicting entries the workload actually repeats.
// ResultCacheStats reports admissions vs rejections.
func WithResultCacheAdmission(budgetBytes int64) Option {
	return func(db *DB) error {
		if budgetBytes > 0 {
			db.resultCache = rescache.New(budgetBytes, rescache.WithSecondTouchAdmission())
		}
		return nil
	}
}

// WithScanSharing enables the scan-sharing coordinator: concurrent
// identical S3 Selects coalesce into one in-flight backend call
// (singleflight), and — within cfg.Window — compatible simple scans on
// the same partition merge into one pushed Select carrying the OR of
// their filters and the union of their columns, with each query's own
// predicate re-applied locally. Shared passes are billed once and split
// across sharers (cloudsim.Phase.AddSharedSelectRequest), so under
// concurrency the per-query cost of touching a hot table falls with the
// number of queries touching it. Composes with WithResultCache: hits
// skip sharing entirely; misses share the refill.
func WithScanSharing(cfg scanshare.Config) Option {
	return func(db *DB) error {
		db.scanShare = scanshare.New(cfg)
		return nil
	}
}

// WithVectorized selects between the vectorized (default) and
// row-at-a-time local operator paths. The results are byte-identical;
// WithVectorized(false) exists for differential tests and benchmarks.
func WithVectorized(on bool) Option {
	return func(db *DB) error {
		db.vectorized = on
		return nil
	}
}

// Open returns a DB over the named bucket with the paper's default cost
// model and pricing. At least one backend must be registered via
// WithBackend; the table catalog and the default backend must reference
// registered names.
func Open(bucket string, opts ...Option) (*DB, error) {
	db := &DB{
		bucket:     bucket,
		backends:   map[string]s3api.Backend{},
		catalog:    map[string]string{},
		Cfg:        cloudsim.DefaultConfig(),
		Pricing:    cloudsim.DefaultPricing(),
		Sim:        cloudsim.Unit(),
		vectorized: true,
	}
	for _, o := range opts {
		if err := o(db); err != nil {
			return nil, err
		}
	}
	if len(db.backends) == 0 {
		return nil, fmt.Errorf("engine: Open needs at least one WithBackend")
	}
	if _, ok := db.backends[db.defaultName]; !ok {
		return nil, fmt.Errorf("engine: default backend %q is not registered", db.defaultName)
	}
	for table, name := range db.catalog {
		if _, ok := db.backends[name]; !ok {
			return nil, fmt.Errorf("engine: table %q is mapped to unregistered backend %q", table, name)
		}
	}
	return db, nil
}

// Bucket returns the bucket name this DB reads tables from.
func (db *DB) Bucket() string { return db.bucket }

// BackendNames lists the registered backends, sorted, default first.
func (db *DB) BackendNames() []string {
	names := make([]string, 0, len(db.backends))
	for n := range db.backends {
		if n != db.defaultName {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return append([]string{db.defaultName}, names...)
}

// baseTable maps an object-namespace name to the catalog table owning it:
// index pseudo-tables ("t/_index/col") resolve to "t", so index objects
// always live — and are priced — on their data table's backend.
func baseTable(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return name
}

// BackendFor resolves the backend a table's objects live on: the catalog
// entry if present, the default backend otherwise. Index pseudo-tables
// resolve through their data table.
func (db *DB) BackendFor(table string) (string, s3api.Backend) {
	if name, ok := db.catalog[strings.ToLower(baseTable(table))]; ok {
		return name, db.backends[name]
	}
	return db.defaultName, db.backends[db.defaultName]
}

// backendFor is BackendFor without the name.
func (db *DB) backendFor(table string) s3api.Backend {
	_, b := db.BackendFor(table)
	return b
}

// profileFor returns the cost profile of the table's backend.
func (db *DB) profileFor(table string) cloudsim.Profile {
	return db.backendFor(table).Profile()
}

// InvalidateStats drops everything the DB has cached across queries: the
// planner's table statistics AND all cached select results. This is the
// invalidation contract: loading, reloading or mutating any table must be
// followed by InvalidateStats (or the targeted InvalidateTable) before the
// next query, otherwise the planner may plan from stale cardinalities and —
// with WithResultCache enabled — scans may serve rows of the old table
// bytes. Invalidation also voids cache fills that are in flight when it
// runs (generation counters in rescache), so a racing query cannot
// resurrect pre-reload rows.
func (db *DB) InvalidateStats() {
	db.statsMu.Lock()
	db.statsCache = nil
	db.statsMu.Unlock()
	db.idxMu.Lock()
	db.idxMemo = nil
	db.idxMu.Unlock()
	if db.resultCache != nil {
		db.resultCache.InvalidateAll()
	}
	if db.scanShare != nil {
		// Post-invalidation queries must not join passes started against
		// the old table bytes.
		db.scanShare.Invalidate()
	}
}

// InvalidateTable drops the cached planner statistics, cached select
// results and the in-memory index-manifest view of one table only (same
// contract as InvalidateStats, scoped to the table whose objects changed).
// The name is case-sensitive, exactly as queries reference it: partition
// objects live under "<table>/part..." and the caches key by that same
// spelling; index artifacts under "<table>/_index/..." are covered too, so
// a reloaded table cannot serve byte ranges through a pre-reload index —
// the manifest is re-read and entries whose recorded data-partition sizes
// no longer match are dropped until CREATE INDEX rebuilds them.
func (db *DB) InvalidateTable(table string) {
	db.statsMu.Lock()
	for k := range db.statsCache {
		// Stats keys are backend\x00bucket\x00table\x00filter[\x00...];
		// index pseudo-tables ("table/_index/col") invalidate with their
		// data table.
		parts := strings.SplitN(k, "\x00", 4)
		if len(parts) == 4 && baseTable(parts[2]) == table {
			delete(db.statsCache, k)
		}
	}
	db.statsMu.Unlock()
	db.idxMu.Lock()
	delete(db.idxMemo, strings.ToLower(table))
	db.idxMu.Unlock()
	if db.resultCache != nil {
		db.resultCache.InvalidatePrefix(db.bucket, table+"/")
	}
	if db.scanShare != nil {
		// The share epoch is coordinator-wide (cheap and always correct);
		// per-object precision comes from the cache generation in the
		// share key when a result cache is configured.
		db.scanShare.Invalidate()
	}
}

// ResultCacheStats snapshots the select-result cache's counters; ok is
// false when the DB was opened without WithResultCache.
func (db *DB) ResultCacheStats() (s rescache.Stats, ok bool) {
	if db.resultCache == nil {
		return rescache.Stats{}, false
	}
	return db.resultCache.Stats(), true
}

// ScanShareStats snapshots the scan-sharing coordinator's counters; ok is
// false when the DB was opened without WithScanSharing.
func (db *DB) ScanShareStats() (s scanshare.Stats, ok bool) {
	if db.scanShare == nil {
		return scanshare.Stats{}, false
	}
	return db.scanShare.Stats(), true
}

// Exec is the context of a single query execution: a cancellation context,
// a virtual clock, and a stage counter. Operators allocate stages in
// order; phases within one stage overlap on the clock.
type Exec struct {
	db  *DB
	ctx context.Context
	// Metrics is the query's virtual clock and cost accumulator.
	Metrics *cloudsim.Metrics

	// plan is the join plan Query built for this execution (nil for
	// single-table queries and explicit operator calls).
	plan *QueryPlan

	// access is the single-table access-path decision (nil when the query
	// was a join, ran through explicit operators, or its table had no
	// usable secondary index).
	access *AccessPlan

	// partsMemo caches partition listings per table for this execution, so
	// planning (header probes, statistics, cache-residency checks) and the
	// execution scans share one List call per table instead of re-listing.
	partsMu   sync.Mutex
	partsMemo map[string][]string

	// trace is the query's obs span tree, picked up from the context in
	// NewExecContext; nil when the caller attached none (the untraced
	// fast path: every span helper short-circuits on this pointer).
	trace *obs.Trace
	// spanParent is the span sequential statement code attaches children
	// to (the trace root until a statement span installs itself).
	spanMu     sync.Mutex
	spanParent *obs.Span

	mu    sync.Mutex
	stage int
}

// QueryPlan returns the join plan this execution ran (nil when the query
// was single-table or driven through the explicit operator APIs).
func (e *Exec) QueryPlan() *QueryPlan { return e.plan }

// Access returns the single-table access-path plan this execution ran
// (nil when no secondary index was considered).
func (e *Exec) Access() *AccessPlan { return e.access }

// NewExec starts a query execution context with background cancellation.
func (db *DB) NewExec() *Exec {
	//lint:ignore ctxflow context-free compatibility wrapper; the root context is born here
	return db.NewExecContext(context.Background())
}

// NewExecContext starts a query execution context; canceling ctx aborts
// the execution's storage fan-outs.
func (db *DB) NewExecContext(ctx context.Context) *Exec {
	if ctx == nil {
		//lint:ignore ctxflow nil-guard: a nil ctx must degrade to Background, not panic
		ctx = context.Background()
	}
	return &Exec{
		db: db, ctx: ctx,
		Metrics: cloudsim.NewMetricsScaled(db.Cfg, db.Sim),
		trace:   obs.FromContext(ctx),
	}
}

// DB returns the owning database.
func (e *Exec) DB() *DB { return e.db }

// Context returns the execution's cancellation context.
func (e *Exec) Context() context.Context { return e.ctx }

// workers is the server-side parallelism budget local operators run with
// (the cost model's Workers knob, capped at Cores).
func (e *Exec) workers() int { return e.db.Cfg.WorkerBudget() }

// NextStage allocates the next sequential stage index.
func (e *Exec) NextStage() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stage
	e.stage++
	return s
}

// RuntimeSeconds returns the query's virtual runtime so far.
func (e *Exec) RuntimeSeconds() float64 { return e.Metrics.RuntimeSeconds() }

// Cost returns the query's cost so far under the DB's pricing (phases run
// against a backend bill at that backend's profile rates).
func (e *Exec) Cost() cloudsim.CostBreakdown { return e.Metrics.Cost(e.db.Pricing) }

// tablePhase opens a metrics phase whose storage requests run against the
// table's backend, so the phase is timed and priced under that backend's
// profile.
func (e *Exec) tablePhase(name string, stage int, table string) *cloudsim.Phase {
	return e.Metrics.PhaseProfile(name, stage, e.db.profileFor(table))
}

// parts lists the partition objects of a table on its backend, memoized
// for the lifetime of this execution (tables must not change mid-query —
// the invalidation contract requires InvalidateStats/InvalidateTable
// between a mutation and the next query anyway).
func (e *Exec) parts(table string) ([]string, error) {
	e.partsMu.Lock()
	if keys, ok := e.partsMemo[table]; ok {
		e.partsMu.Unlock()
		return keys, nil
	}
	e.partsMu.Unlock()
	keys, err := e.db.backendFor(table).List(e.ctx, e.db.bucket, table+"/part")
	if err != nil {
		return nil, err
	}
	if len(keys) == 0 {
		// A kinded not-found, so an unknown table surfaces at the server as
		// bad_request rather than a 500 "internal".
		name, _ := e.db.BackendFor(table)
		return nil, s3api.NewError("list", e.db.bucket, table+"/part", s3api.KindNotFound,
			fmt.Errorf("engine: table %q has no partitions in bucket %q on backend %q",
				table, e.db.bucket, name))
	}
	e.partsMu.Lock()
	if e.partsMemo == nil {
		e.partsMemo = map[string][]string{}
	}
	e.partsMemo[table] = keys
	e.partsMu.Unlock()
	return keys, nil
}

// forEachPart runs fn over every partition with bounded parallelism. The
// first error cancels the shared context and stops new partitions from
// launching; in-flight calls see the cancellation through ctx. Canceling
// the execution's own context aborts the fan-out the same way.
func (e *Exec) forEachPart(keys []string, fn func(ctx context.Context, i int, key string) error) error {
	limit := e.db.MaxScanParallel
	if limit <= 0 || limit > len(keys) {
		limit = len(keys)
	}
	ctx, cancel := context.WithCancel(e.ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}
	sem := make(chan struct{}, limit)
launch:
	for i, k := range keys {
		// Acquire a slot, bailing out as soon as the fan-out is canceled
		// (by an earlier error or by the caller) instead of queuing more
		// work behind it.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break launch
		}
		if ctx.Err() != nil {
			break launch
		}
		wg.Add(1)
		go func(i int, k string) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := fn(ctx, i, k); err != nil {
				fail(err)
			}
		}(i, k)
	}
	wg.Wait()
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	// All launched work succeeded, but the caller's context may have
	// stopped the loop before every partition ran.
	return e.ctx.Err()
}

// LoadTable fetches every partition with plain GETs and parses the CSV on
// the server — the paper's "server-side" baseline path.
func (e *Exec) LoadTable(phaseName string, stage int, table string) (*Relation, error) {
	keys, err := e.parts(table)
	if err != nil {
		return nil, err
	}
	backend := e.db.backendFor(table)
	sp := e.beginSpan(phaseName)
	phase := e.tablePhase(phaseName, stage, table)
	rels := make([]*Relation, len(keys))
	// The per-partition decodes already run concurrently under
	// forEachPart; split the worker budget across that fan-out so total
	// decode concurrency matches the Cores budget the cost model prices.
	fanout := e.db.MaxScanParallel
	if fanout <= 0 || fanout > len(keys) {
		fanout = len(keys)
	}
	decodeWorkers := e.workers() / fanout
	if decodeWorkers < 1 {
		decodeWorkers = 1
	}
	err = e.forEachPart(keys, func(ctx context.Context, i int, key string) error {
		psp := sp.Child("get " + key)
		defer psp.End()
		data, err := backend.Get(ctx, e.db.bucket, key)
		if err != nil {
			return err
		}
		phase.AddGetRequest(int64(len(data)))
		psp.SetInt("bytes", int64(len(data)))
		if colformat.IsColumnar(data) {
			// Columnar partitions decode straight into typed vectors; the
			// CSV decoder would mis-parse the binary layout.
			b, err := vec.FromColumnar(data, decodeWorkers)
			if err != nil {
				return err
			}
			rel := &Relation{Cols: b.Cols, Rows: make([]Row, b.Len())}
			for j, r := range b.ToRows() {
				rel.Rows[j] = r
			}
			rels[i] = rel
			return nil
		}
		header, rows, err := csvx.Decode(data, true)
		if err != nil {
			return err
		}
		rels[i] = FromStringsN(header, rows, decodeWorkers)
		return nil
	})
	if err != nil {
		endSpanErr(sp, err)
		return nil, err
	}
	out := &Relation{}
	for _, r := range rels {
		if err := out.Concat(r); err != nil {
			endSpanErr(sp, err)
			return nil, err
		}
	}
	sp.SetInt("rows", int64(len(out.Rows)))
	e.endPhaseSpan(sp, phase)
	return out, nil
}

// selectOnParts runs the same S3 Select SQL against every partition of the
// table on its backend (with the backend's advertised capabilities) and
// returns the per-partition results, recording request metrics. Requests
// are served through the DB's result cache when one is configured. Each
// partition select becomes a child span of sp (nil when untraced).
func (e *Exec) selectOnParts(phase *cloudsim.Phase, sp *obs.Span, table, sql string, mutate func(i int, req *selectengine.Request)) ([]*selectengine.Result, error) {
	keys, err := e.parts(table)
	if err != nil {
		return nil, err
	}
	backendName, backend := e.db.BackendFor(table)
	caps := backend.Capabilities()
	results := make([]*selectengine.Result, len(keys))
	err = e.forEachPart(keys, func(ctx context.Context, i int, key string) error {
		req := selectengine.Request{SQL: sql, HasHeader: true, Capabilities: caps}
		if mutate != nil {
			mutate(i, &req)
		}
		psp := sp.Child("select " + key)
		res, err := e.doSelect(ctx, phase, psp, backendName, backend, key, req)
		psp.End()
		if err != nil {
			return fmt.Errorf("engine: select on %s: %w", key, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// doSelect issues one S3 Select against an object, consulting the result
// cache first. A hit skips the backend and is metered as a free local
// decode; a miss runs the request, meters it normally and fills the cache
// at the generation snapshotted before the request (so a fill racing a
// table invalidation is discarded). When scan sharing is on, the miss
// path routes through the coordinator: concurrent misses on the same
// object share one backend pass, each sharer is billed its fraction, and
// only the pass leader fills the cache (the other sharers record an
// in-flight dedup on the cache stats). Cached results are shared across
// queries — callers must not mutate them.
func (e *Exec) doSelect(ctx context.Context, phase *cloudsim.Phase, sp *obs.Span, backendName string, backend s3api.Backend, key string, req selectengine.Request) (*selectengine.Result, error) {
	c := e.db.resultCache
	var (
		ck  rescache.Key
		gen uint64
	)
	if c != nil {
		ck = rescache.Key{
			Backend: backendName, Bucket: e.db.bucket, Object: key,
			Query: selectCacheQuery(req),
		}
		if res, ok := c.Get(ck); ok {
			phase.AddCacheHit(res.Stats.BytesReturned)
			sp.SetStr("cache", "hit")
			sp.SetInt("rows", int64(len(res.Rows)))
			sp.SetInt("bytes", res.Stats.BytesReturned)
			return res, nil
		}
		gen = c.Generation(e.db.bucket, key)
		sp.SetStr("cache", "miss")
	}
	sh := e.db.scanShare
	if sh == nil {
		res, err := backend.Select(ctx, e.db.bucket, key, req)
		if err != nil {
			return nil, err
		}
		phase.AddSelectRequest(selectReqStats(res.Stats))
		sp.SetInt("rows", int64(len(res.Rows)))
		sp.SetInt("bytes", res.Stats.BytesReturned)
		if c != nil {
			c.Put(ck, gen, res)
		}
		return res, nil
	}
	out, err := sh.Select(ctx, scanshare.ObjectKey{
		Backend: backendName, Bucket: e.db.bucket, Object: key, Gen: gen,
	}, req, func(ctx context.Context, r selectengine.Request) (*selectengine.Result, error) {
		return backend.Select(ctx, e.db.bucket, key, r)
	})
	if err != nil {
		return nil, err
	}
	if out.Sharers > 1 {
		phase.AddSharedSelectRequest(selectReqStats(out.Pass), int64(out.Sharers), out.LocalRows)
		sp.SetInt("sharers", int64(out.Sharers))
	} else {
		phase.AddSelectRequest(selectReqStats(out.Pass))
	}
	if out.Leader {
		sp.SetStr("share", "leader")
	} else {
		sp.SetStr("share", "sharer")
	}
	sp.SetInt("rows", int64(len(out.Res.Rows)))
	sp.SetInt("bytes", out.Res.Stats.BytesReturned)
	if c != nil {
		if out.Leader {
			c.Put(ck, gen, out.Res)
		} else {
			c.NoteInflightDedup()
		}
	}
	return out.Res, nil
}

// selectCacheQuery renders the canonical cache fingerprint of a select
// request: the SQL plus every request parameter that changes the response
// (header mode, capability flags, scan range).
func selectCacheQuery(req selectengine.Request) string {
	var b strings.Builder
	b.WriteString(req.SQL)
	fmt.Fprintf(&b, "\x00h=%t\x00g=%t\x00b=%t",
		req.HasHeader, req.Capabilities.AllowGroupBy, req.Capabilities.AllowBloomContains)
	if req.ScanRange != nil {
		fmt.Fprintf(&b, "\x00r=%d-%d", req.ScanRange.Start, req.ScanRange.End)
	}
	return b.String()
}

// SelectRows runs sql on every partition of table and concatenates the
// returned rows into a typed relation.
func (e *Exec) SelectRows(phaseName string, stage int, table, sql string) (*Relation, error) {
	sp := e.beginSpan(phaseName)
	phase := e.tablePhase(phaseName, stage, table)
	results, err := e.selectOnParts(phase, sp, table, sql, nil)
	if err != nil {
		endSpanErr(sp, err)
		return nil, err
	}
	dec := sp.Child("decode")
	out := &Relation{}
	for _, res := range results {
		if err := out.Concat(FromStringsN(res.Columns, res.Rows, e.workers())); err != nil {
			endSpanErr(dec, err)
			endSpanErr(sp, err)
			return nil, err
		}
	}
	dec.SetInt("rows", int64(len(out.Rows)))
	dec.End()
	sp.SetInt("rows", int64(len(out.Rows)))
	e.endPhaseSpan(sp, phase)
	return out, nil
}

// SelectRowsLimit runs sql with a per-partition LIMIT so that the combined
// row count approaches total (used by sampling operators).
func (e *Exec) SelectRowsLimit(phaseName string, stage int, table, sql string, total int64) (*Relation, error) {
	keys, err := e.parts(table)
	if err != nil {
		return nil, err
	}
	per := total / int64(len(keys))
	if per < 1 {
		per = 1
	}
	limited := fmt.Sprintf("%s LIMIT %d", sql, per)
	sp := e.beginSpan(phaseName)
	phase := e.tablePhase(phaseName, stage, table)
	results, err := e.selectOnParts(phase, sp, table, limited, nil)
	if err != nil {
		endSpanErr(sp, err)
		return nil, err
	}
	out := &Relation{}
	for _, res := range results {
		if err := out.Concat(FromStringsN(res.Columns, res.Rows, e.workers())); err != nil {
			endSpanErr(sp, err)
			return nil, err
		}
	}
	sp.SetInt("rows", int64(len(out.Rows)))
	e.endPhaseSpan(sp, phase)
	return out, nil
}

// SelectAgg runs an aggregate-only sql on every partition and merges the
// single-row results column-wise using the given aggregate functions
// (SUM and COUNT merge by addition, MIN/MAX by comparison).
func (e *Exec) SelectAgg(phaseName string, stage int, table, sql string, merge []sqlparse.AggFunc) (Row, error) {
	sp := e.beginSpan(phaseName)
	phase := e.tablePhase(phaseName, stage, table)
	defer func() { e.endPhaseSpan(sp, phase) }()
	results, err := e.selectOnParts(phase, sp, table, sql, nil)
	if err != nil {
		return nil, err
	}
	states := make([]*expr.AggState, len(merge))
	for i, fn := range merge {
		// COUNT partial results merge by summation.
		if fn == sqlparse.AggCount {
			fn = sqlparse.AggSum
		}
		states[i] = expr.NewAggState(fn)
	}
	for _, res := range results {
		if len(res.Rows) != 1 {
			return nil, fmt.Errorf("engine: aggregate select returned %d rows", len(res.Rows))
		}
		if len(res.Rows[0]) != len(merge) {
			return nil, fmt.Errorf("engine: aggregate select returned %d columns, expected %d",
				len(res.Rows[0]), len(merge))
		}
		for j, f := range res.Rows[0] {
			if err := states[j].Add(value.FromCSV(f)); err != nil {
				return nil, err
			}
		}
	}
	out := make(Row, len(merge))
	for j, st := range states {
		out[j] = st.Final()
	}
	return out, nil
}

// headerProbe is TableHeader's initial ranged-GET size.
const headerProbe = 4096

// TableHeader reads a table's column names with a small ranged GET against
// the first partition (the partitions all share a header row). Header rows
// longer than the probe retry with a doubled range until a newline turns
// up or the object is exhausted (a header-only object with no trailing
// newline is accepted whole).
func (e *Exec) TableHeader(phaseName string, stage int, table string) ([]string, error) {
	keys, err := e.parts(table)
	if err != nil {
		return nil, err
	}
	backend := e.db.backendFor(table)
	sp := e.beginSpan("header " + table)
	phase := e.tablePhase(phaseName, stage, table)
	defer func() { e.endPhaseSpan(sp, phase) }()
	for probe := int64(headerProbe); ; probe *= 2 {
		data, err := backend.GetRange(e.ctx, e.db.bucket, keys[0], 0, probe-1)
		if err != nil {
			return nil, err
		}
		phase.AddGetRequest(int64(len(data)))
		sp.AddInt("bytes", int64(len(data)))
		if int64(len(data)) < probe && colformat.IsColumnar(data) {
			// The whole object fit in the probe and carries the columnar
			// magic (which is tail-only, so detection needs the complete
			// object): answer from the footer schema. Larger columnar
			// objects would need an extra tail request, which would shift
			// the metered request counts this path is priced on.
			r, err := colformat.Open(data)
			if err != nil {
				return nil, err
			}
			schema := r.Schema()
			header := make([]string, len(schema))
			for i, c := range schema {
				header[i] = c.Name
			}
			return header, nil
		}
		if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
			header, _, err := csvx.Decode(data[:nl+1], true)
			return header, err
		}
		if int64(len(data)) < probe {
			// The whole object fit in the probe and holds no newline: it
			// is a single (unterminated) header line.
			header, _, err := csvx.Decode(data, true)
			return header, err
		}
	}
}

// cachedScanFrac reports what fraction of a table's partitions have the
// given pushed scan SQL resident in the result cache (0 with caching off).
// Used by Explain, which has no execution context; the planning path goes
// through Exec.cachedScanFrac to reuse the execution's memoized listing.
// Residency is peeked without promoting entries.
func (db *DB) cachedScanFrac(ctx context.Context, table, sql string) float64 {
	c := db.resultCache
	if c == nil || c.Len() == 0 {
		// Empty cache: skip the listing round trip entirely.
		return 0
	}
	keys, err := db.backendFor(table).List(ctx, db.bucket, table+"/part")
	if err != nil {
		return 0
	}
	return db.cachedFracForKeys(table, keys, sql)
}

// cachedScanFrac is the Exec-side residency check: it shares the
// execution's partition-listing memo, so planning adds no extra List call.
func (e *Exec) cachedScanFrac(table, sql string) float64 {
	c := e.db.resultCache
	if c == nil || c.Len() == 0 {
		// Empty cache: skip even the (memoized) listing — this runs on
		// every plan of every table, including fully cold first queries.
		return 0
	}
	keys, err := e.parts(table)
	if err != nil {
		return 0
	}
	return e.db.cachedFracForKeys(table, keys, sql)
}

// cachedFracForKeys counts how many of the given partition objects hold
// the table's pushed scan SQL in the result cache.
func (db *DB) cachedFracForKeys(table string, keys []string, sql string) float64 {
	if len(keys) == 0 {
		return 0
	}
	backendName, backend := db.BackendFor(table)
	q := selectCacheQuery(selectengine.Request{
		SQL: sql, HasHeader: true, Capabilities: backend.Capabilities(),
	})
	hits := 0
	for _, k := range keys {
		if db.resultCache.Contains(rescache.Key{Backend: backendName, Bucket: db.bucket, Object: k, Query: q}) {
			hits++
		}
	}
	return float64(hits) / float64(len(keys))
}

// selectReqStats converts select-engine stats into the cost model's
// request record.
func selectReqStats(s selectengine.Stats) cloudsim.SelectReq {
	return cloudsim.SelectReq{
		ScanBytes:       s.BytesScanned,
		ReturnedBytes:   s.BytesReturned,
		Rows:            s.RowsScanned,
		ExprNodes:       s.ExprNodes,
		Cells:           s.CellsDecoded,
		DecompressBytes: s.DecompressBytes,
	}
}

// sqlQuote renders a string as a SQL literal.
func sqlQuote(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// sqlLiteral renders a group value for embedding in a CASE/NOT IN clause
// or a top-K threshold predicate: bare only when the text round-trips
// canonically as a SQL numeric literal, quoted otherwise. Values that
// merely parse as numbers are not safe bare: "00501" would re-render as
// 501 and stop matching the stored zip-code text, and "NaN"/"Inf"/"0x1p2"
// would be misread as identifiers or fail to parse at all.
func sqlLiteral(s string) string {
	if i, err := strconv.ParseInt(s, 10, 64); err == nil && strconv.FormatInt(i, 10) == s {
		return s
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil &&
		!math.IsNaN(f) && !math.IsInf(f, 0) &&
		strconv.FormatFloat(f, 'f', -1, 64) == s {
		return s
	}
	return sqlQuote(s)
}
