package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"pushdowndb/internal/s3api"
	"pushdowndb/internal/selectengine"
	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/store"
)

// flakyBackend injects failures into selected operations to verify the
// engine propagates storage errors instead of hanging or corrupting
// results.
type flakyBackend struct {
	s3api.Backend
	failSelects   int32 // fail the first N Select calls
	failGets      int32
	failGetRanges bool
}

func (f *flakyBackend) Select(ctx context.Context, bucket, key string, req selectengine.Request) (*selectengine.Result, error) {
	if atomic.AddInt32(&f.failSelects, -1) >= 0 {
		return nil, fmt.Errorf("injected select failure on %s", key)
	}
	return f.Backend.Select(ctx, bucket, key, req)
}

func (f *flakyBackend) Get(ctx context.Context, bucket, key string) ([]byte, error) {
	if atomic.AddInt32(&f.failGets, -1) >= 0 {
		return nil, fmt.Errorf("injected get failure on %s", key)
	}
	return f.Backend.Get(ctx, bucket, key)
}

func (f *flakyBackend) GetRanges(ctx context.Context, bucket, key string, ranges [][2]int64) ([][]byte, error) {
	if f.failGetRanges {
		return nil, fmt.Errorf("injected multi-range failure on %s", key)
	}
	return f.Backend.GetRanges(ctx, bucket, key, ranges)
}

func flakyDB(t *testing.T, mutate func(*flakyBackend)) *DB {
	t.Helper()
	st := newTestStore(t)
	fc := &flakyBackend{Backend: s3api.NewInProc(st)}
	mutate(fc)
	db, err := Open(testBucket, WithBackend("flaky", fc))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSelectFailurePropagates(t *testing.T) {
	db := flakyDB(t, func(f *flakyBackend) { f.failSelects = 1 })
	_, err := db.NewExec().S3SideFilter("events", "v < 0", "*")
	if err == nil || !strings.Contains(err.Error(), "injected select failure") {
		t.Fatalf("err = %v", err)
	}
}

func TestGetFailurePropagates(t *testing.T) {
	db := flakyDB(t, func(f *flakyBackend) { f.failGets = 2 })
	_, err := db.NewExec().ServerSideFilter("events", "v < 0", "")
	if err == nil || !strings.Contains(err.Error(), "injected get failure") {
		t.Fatalf("err = %v", err)
	}
}

func TestMultiRangeFailurePropagates(t *testing.T) {
	db := flakyDB(t, func(f *flakyBackend) { f.failGetRanges = true })
	_, err := db.NewExec().IndexFilter("events", "v", "value <= -40",
		IndexFilterOptions{MultiRange: true})
	if err == nil || !strings.Contains(err.Error(), "injected multi-range failure") {
		t.Fatalf("err = %v", err)
	}
}

func TestJoinFailurePropagates(t *testing.T) {
	db := flakyDB(t, func(f *flakyBackend) { f.failSelects = 1 })
	_, err := db.NewExec().BloomJoin(joinSpec())
	if err == nil {
		t.Fatal("bloom join should surface the injected failure")
	}
	// Baseline join uses plain GETs; injected GET failures surface too.
	db2 := flakyDB(t, func(f *flakyBackend) { f.failGets = 1 })
	if _, err := db2.NewExec().BaselineJoin(joinSpec()); err == nil {
		t.Fatal("baseline join should surface the injected failure")
	}
}

func TestGroupByFailurePropagates(t *testing.T) {
	db := flakyDB(t, func(f *flakyBackend) { f.failSelects = 3 })
	if _, err := db.NewExec().S3SideGroupBy("events", "g", groupAggs(), ""); err == nil {
		t.Fatal("s3-side group-by should surface the injected failure")
	}
	db2 := flakyDB(t, func(f *flakyBackend) { f.failSelects = 6 })
	if _, err := db2.NewExec().HybridGroupBy("events", "g", groupAggs(),
		HybridGroupByOptions{}); err == nil {
		t.Fatal("hybrid group-by should surface the injected failure")
	}
}

func TestCorruptPartitionSurfaceserror(t *testing.T) {
	db, st := newTestDB(t)
	// Overwrite one partition with garbage that fails CSV scanning
	// (an unterminated quote).
	st.Put(testBucket, "events/part0001.csv", []byte("k,g,v\n\"unterminated"))
	if _, err := db.NewExec().SelectRows("s", 0, "events", "SELECT * FROM S3Object"); err == nil {
		t.Fatal("corrupt partition should surface an error")
	}
}

// Partition-count invariance: the same data split differently must give
// identical answers (the paper: "the techniques ... do not make any
// assumptions about how the data is partitioned").
func TestPartitionCountInvariance(t *testing.T) {
	results := map[int][]string{}
	for _, parts := range []int{1, 3, 7} {
		db := eventsDB(t, parts)
		var outs []string
		rel, err := db.NewExec().S3SideFilter("events", "v <= -40", "k")
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, fmt.Sprint(len(rel.Rows)))
		g, err := db.NewExec().S3SideGroupBy("events", "g", groupAggs(), "")
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, normGroups(g))
		tk, err := db.NewExec().SamplingTopK("events", "v", 5, true,
			SamplingTopKOptions{SampleSize: 100})
		if err != nil {
			t.Fatal(err)
		}
		vi := tk.ColIndex("v")
		for _, r := range tk.Rows {
			outs = append(outs, r[vi].String())
		}
		results[parts] = outs
	}
	want := fmt.Sprint(results[1])
	for _, parts := range []int{3, 7} {
		if got := fmt.Sprint(results[parts]); got != want {
			t.Errorf("results differ at %d partitions:\n%s\nvs\n%s", parts, got, want)
		}
	}
}

// normGroups renders group rows with numeric rounding: different
// partition splits legitimately sum floats in different orders.
func normGroups(rel *Relation) string {
	out := make([]string, 0, len(rel.Rows))
	for _, r := range rel.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			if f, ok := v.Num(); ok {
				parts[j] = fmt.Sprintf("%.2f", f)
			} else {
				parts[j] = v.String()
			}
		}
		out = append(out, strings.Join(parts, "|"))
	}
	sort.Strings(out)
	return strings.Join(out, ";")
}

// eventsDB regenerates the events table (same seed as newTestDB) with the
// given partition count.
func eventsDB(t *testing.T, parts int) *DB {
	t.Helper()
	st := store.New()
	rng := rand.New(rand.NewSource(12345))
	var events [][]string
	for i := 0; i < 1000; i++ {
		events = append(events, []string{
			fmt.Sprint(i),
			fmt.Sprint(rng.Intn(10)),
			fmt.Sprintf("%.2f", rng.Float64()*100-50),
		})
	}
	if err := PartitionTable(context.Background(), st, testBucket, "events", []string{"k", "g", "v"}, events, parts); err != nil {
		t.Fatal(err)
	}
	return openTestDB(t, st)
}

// TestSerialModeMatchesParallel pins MaxScanParallel=1 (the paper's serial
// execution mode) and checks results and accounting match the parallel
// mode.
func TestSerialModeMatchesParallel(t *testing.T) {
	db, _ := newTestDB(t)
	par, err := db.NewExec().S3SideGroupBy("events", "g", groupAggs(), "")
	if err != nil {
		t.Fatal(err)
	}
	db.MaxScanParallel = 1
	ser, err := db.NewExec().S3SideGroupBy("events", "g", groupAggs(), "")
	if err != nil {
		t.Fatal(err)
	}
	if normGroups(par) != normGroups(ser) {
		t.Error("serial mode changed results")
	}
}

func TestS3SideGroupByRejectsTooManyGroups(t *testing.T) {
	db, _ := newTestDB(t)
	// Force an enormous CASE query by grouping on the (distinct) key
	// column — 1000 groups x aggregates exceeds the expression budget.
	aggs := []GroupAgg{{Func: sqlparse.AggSum, Expr: "v", As: "s"}}
	_, err := db.NewExec().S3SideGroupBy("events", "k", aggs, "")
	if err == nil {
		t.Skip("expression fit at this scale; not an error")
	}
	if !strings.Contains(err.Error(), "expression limit") {
		t.Errorf("unexpected error: %v", err)
	}
}
