package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"pushdowndb/internal/bloom"
	"pushdowndb/internal/expr"
	"pushdowndb/internal/selectengine"
	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/value"
)

// ErrNonIntegerJoinKey reports a Bloom join attempted over a key column
// that is not integer-typed; the filter encodings hash int64 keys. The
// planner uses it (via errors.Is) to degrade a planned Bloom join to the
// baseline/filtered strategy at run time.
var ErrNonIntegerJoinKey = errors.New("bloom join requires integer keys")

// Section V: join algorithms. All three implement a hash join whose build
// side is the (smaller) left table; they differ in how much work is pushed
// into S3.

// JoinSpec describes a two-table equi-join.
type JoinSpec struct {
	LeftTable, RightTable string
	LeftKey, RightKey     string
	// LeftFilter / RightFilter are SQL predicates over each table's
	// columns ("" = none).
	LeftFilter, RightFilter string
	// LeftProject / RightProject are the columns needed downstream
	// (nil = all). Only the Bloom join pushes projections (the paper's
	// filtered join pushes selection only; see Section V-B1).
	LeftProject, RightProject []string
	// TargetFPR is the Bloom filter's target false-positive rate
	// (default 0.01, the paper's sweet spot in Fig. 4).
	TargetFPR float64
	// Bitwise uses the Suggestion-3 BLOOM_CONTAINS predicate instead of
	// the '0'/'1'-string SUBSTRING encoding. Requires the DB's
	// capabilities to allow it.
	Bitwise bool
	// Seed makes the Bloom hash functions deterministic.
	Seed int64
}

func (js JoinSpec) fpr() float64 {
	if js.TargetFPR <= 0 {
		return 0.01
	}
	return js.TargetFPR
}

// BaselineJoin loads both tables in full with plain GETs and evaluates
// filters and the join locally. No S3 Select anywhere.
func (e *Exec) BaselineJoin(js JoinSpec) (*Relation, error) {
	sp := e.beginSpan("baseline join")
	defer sp.End()
	prev := e.setSpanParent(sp)
	defer e.restoreSpanParent(prev)
	stage := e.NextStage()
	var left, right *Relation
	errs := make(chan error, 2)
	go func() {
		var err error
		left, err = e.LoadTable("load "+js.LeftTable, stage, js.LeftTable)
		errs <- err
	}()
	go func() {
		var err error
		right, err = e.LoadTable("load "+js.RightTable, stage, js.RightTable)
		errs <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			return nil, err
		}
	}
	// The server-side filter pass touches every loaded row; meter it in
	// the load phases so execution matches the planner's baseline
	// estimate (cloudsim.EstimateBaselineJoin).
	e.Metrics.Phase("load "+js.LeftTable, stage).AddServerRows(int64(len(left.Rows)))
	e.Metrics.Phase("load "+js.RightTable, stage).AddServerRows(int64(len(right.Rows)))
	var err error
	if left, err = e.filterLocal(left, js.LeftFilter, e.workers()); err != nil {
		return nil, err
	}
	if right, err = e.filterLocal(right, js.RightFilter, e.workers()); err != nil {
		return nil, err
	}
	return e.hashJoin(stage, js, left, right)
}

// FilteredJoin pushes each side's selection (not projection) into S3
// Select and joins locally. Both scans run in parallel, like the paper's
// filtered join.
func (e *Exec) FilteredJoin(js JoinSpec) (*Relation, error) {
	stage := e.NextStage()
	var left, right *Relation
	errs := make(chan error, 2)
	go func() {
		var err error
		left, err = e.SelectRows("filtered scan "+js.LeftTable, stage, js.LeftTable, selectAllSQL(js.LeftFilter))
		errs <- err
	}()
	go func() {
		var err error
		right, err = e.SelectRows("filtered scan "+js.RightTable, stage, js.RightTable, selectAllSQL(js.RightFilter))
		errs <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			return nil, err
		}
	}
	return e.hashJoin(stage, js, left, right)
}

func selectAllSQL(filter string) string {
	sql := "SELECT * FROM S3Object"
	if filter != "" {
		sql += " WHERE " + filter
	}
	return sql
}

func projectionSQL(cols []string, filter string) string {
	proj := "*"
	if len(cols) > 0 {
		proj = strings.Join(cols, ", ")
	}
	sql := "SELECT " + proj + " FROM S3Object"
	if filter != "" {
		sql += " WHERE " + filter
	}
	return sql
}

// BloomJoin implements Section V-A2: load the build side with selection
// and projection pushed down, construct a Bloom filter over its join keys,
// then ship the filter to S3 as a predicate on the probe side. When the
// filter cannot fit S3 Select's 256 KB expression limit even after FPR
// degradation, it falls back to a filtered join whose two scans are forced
// serial (the paper's "degraded Bloom join").
func (e *Exec) BloomJoin(js JoinSpec) (*Relation, error) {
	sp := e.beginSpan("bloom join")
	defer sp.End()
	prev := e.setSpanParent(sp)
	defer e.restoreSpanParent(prev)
	// Phase 1: build side with pushdown.
	stage1 := e.NextStage()
	left, err := e.SelectRows("bloom build "+js.LeftTable, stage1,
		js.LeftTable, projectionSQL(js.LeftProject, js.LeftFilter))
	if err != nil {
		return nil, err
	}
	e.Metrics.Phase("bloom build "+js.LeftTable, stage1).
		AddServerRows(int64(len(left.Rows)) * 2) // hash table + filter insert
	right, stage2, err := e.BloomProbe(left, js.LeftKey, js.RightTable, js.RightKey,
		js.RightFilter, js.RightProject, js.fpr(), js.Bitwise, js.Seed)
	if err != nil {
		return nil, err
	}
	// The final hash join overlaps the probe scan; the probe's own stage
	// keeps the attribution correct even when concurrent work allocates
	// stages on this Exec.
	return e.hashJoin(stage2, js, left, right)
}

// BloomProbe builds a Bloom filter over left's key column and scans
// rightTable with the filter (plus rightFilter) pushed to S3 Select. It is
// the reusable second half of BloomJoin, used directly by multi-join
// queries (e.g. TPC-H Q3) whose build side is an intermediate relation.
// When the filter cannot fit the 256 KB expression limit even after FPR
// degradation, the probe degrades to a plain filtered scan. The returned
// int is the stage the probe scan ran in, so callers can attribute
// follow-on work (the hash join) to the same stage.
func (e *Exec) BloomProbe(left *Relation, leftKey, rightTable, rightKey, rightFilter string, rightProject []string, fpr float64, bitwise bool, seed int64) (*Relation, int, error) {
	li := left.ColIndex(leftKey)
	if li < 0 {
		return nil, 0, fmt.Errorf("engine: bloom join key %q not in %v", leftKey, left.Cols)
	}
	// Key extraction partitions across the worker budget; the per-span
	// slices concatenate in worker order, so the key sequence (and hence
	// the fitted filter) matches the sequential walk exactly.
	sps := rowSpans(len(left.Rows), e.workers())
	keyParts := make([][]int64, len(sps))
	if err := runSpans(sps, func(w int, sp span) error {
		part := make([]int64, 0, sp.hi-sp.lo)
		for i := sp.lo; i < sp.hi; i++ {
			row := left.Rows[i]
			if row[li].IsNull() {
				continue
			}
			k, ok := row[li].IntNum()
			if !ok {
				return fmt.Errorf("engine: %w, got %s (%v)",
					ErrNonIntegerJoinKey, row[li].Kind(), row[li])
			}
			part = append(part, k)
		}
		keyParts[w] = part
		return nil
	}); err != nil {
		return nil, 0, err
	}
	keys := make([]int64, 0, len(left.Rows))
	for _, part := range keyParts {
		keys = append(keys, part...)
	}

	rng := rand.New(rand.NewSource(seed + 1))
	var predicate string
	if len(keys) > 0 {
		if bitwise {
			f := bloom.New(len(keys), fpr, rng)
			for _, k := range keys {
				f.Add(k)
			}
			predicate = f.SQLPredicateBitwise(rightKey)
			if len(predicate) > selectengine.MaxSQLBytes {
				predicate = ""
			}
		} else {
			// The 256 KB expression limit binds at deployment scale: when
			// the run simulates a larger dataset (Sim.DataRatio > 1), the
			// FPR degradation decision is made against the paper-scale key
			// count, so Section V-B1's behaviour appears at the right
			// selectivities (e.g. Fig. 2's loose customer filters).
			effKeys := int(float64(len(keys)) * maxf(e.db.Sim.DataRatio, 1))
			degraded, ok := bloom.DegradeFPR(effKeys, fpr, selectengine.MaxSQLBytes-1024)
			if ok {
				if _, sql, _, ok2 := bloom.Fit(keys, degraded, rightKey, selectengine.MaxSQLBytes-1024, rng); ok2 {
					predicate = sql
				}
			}
		}
	} else {
		// Empty build side: nothing can match; probe with a false
		// predicate to keep the pipeline shape (S3 still scans).
		predicate = "1 = 0"
	}

	// Probe phase is serial after the build (the paper's degraded Bloom
	// join keeps this serialization even when falling back).
	stage2 := e.NextStage()
	probeSQL := projectionSQL(rightProject, rightFilter)
	if predicate != "" {
		where := predicate
		if rightFilter != "" {
			where = "(" + rightFilter + ") AND (" + predicate + ")"
		}
		probeSQL = projectionSQL(rightProject, where)
	}
	rel, err := e.SelectRows("bloom probe "+rightTable, stage2, rightTable, probeSQL)
	return rel, stage2, err
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// hashJoin performs the local build/probe and accounts the row work.
func (e *Exec) hashJoin(stage int, js JoinSpec, left, right *Relation) (*Relation, error) {
	sp := e.opSpan("hash join", len(left.Rows)+len(right.Rows))
	phase := e.Metrics.Phase("hash join", stage)
	phase.AddServerRows(int64(len(left.Rows)) + int64(len(right.Rows)))
	out, err := e.hashJoinLocal(left, right, js.LeftKey, js.RightKey, e.workers())
	endOpSpan(sp, out, err)
	return out, err
}

// JoinAggregate is a convenience for the paper's evaluation query
// (Listing 2): run the join with the chosen algorithm and return the
// aggregate of an expression over the join result, e.g. SUM(o_totalprice).
func (e *Exec) JoinAggregate(js JoinSpec, algorithm string, aggItems string) (*Relation, error) {
	var (
		joined *Relation
		err    error
	)
	switch algorithm {
	case "baseline":
		joined, err = e.BaselineJoin(js)
	case "filtered":
		joined, err = e.FilteredJoin(js)
	case "bloom":
		joined, err = e.BloomJoin(js)
	default:
		return nil, fmt.Errorf("engine: unknown join algorithm %q", algorithm)
	}
	if err != nil {
		return nil, err
	}
	return e.aggregateLocal(joined, aggItems, e.workers())
}

// AggregateLocal evaluates aggregate-only select items over a relation,
// returning a single-row relation. (GroupByLocal with a constant group
// gives a single-row aggregate; see AggregateLocalN.)
func AggregateLocal(rel *Relation, items string) (*Relation, error) {
	return AggregateLocalN(rel, items, 1)
}

// emptyAggregateRow builds the single result row of an aggregation over
// zero input rows with standard SQL semantics: aggregate nodes evaluate
// to COUNT = 0 / others NULL, and any arithmetic around them is applied
// (so COUNT(*) + 0 is 0, not NULL).
func emptyAggregateRow(inputCols []string, items string) (*Relation, error) {
	sel, err := sqlparse.Parse("SELECT " + items + " FROM t")
	if err != nil {
		return nil, fmt.Errorf("engine: bad aggregate items %q: %w", items, err)
	}
	zero := func(a *sqlparse.Aggregate) sqlparse.Expr {
		if a.Func == sqlparse.AggCount {
			return &sqlparse.Literal{Val: value.Int(0)}
		}
		return &sqlparse.Literal{Val: value.Null()}
	}
	// Columns of the (empty) input look up as NULL.
	nulls := make(Row, len(inputCols))
	for i := range nulls {
		nulls[i] = value.Null()
	}
	env := &rowEnv{rel: &Relation{Cols: inputCols}, row: nulls}
	ev := expr.New()
	out := &Relation{}
	var row Row
	for _, it := range sel.Items {
		if _, isStar := it.Expr.(*sqlparse.Star); isStar {
			out.Cols = append(out.Cols, inputCols...)
			row = append(row, nulls...)
			continue
		}
		name := it.Alias
		if name == "" {
			if c, ok := it.Expr.(*sqlparse.Column); ok {
				name = c.Name
			} else {
				name = it.Expr.String()
			}
		}
		out.Cols = append(out.Cols, name)
		v, err := ev.Eval(sqlparse.MapAggregates(it.Expr, zero), env)
		if err != nil {
			// Same error a non-empty input would raise evaluating this item.
			return nil, err
		}
		row = append(row, v)
	}
	out.Rows = []Row{row}
	return out, nil
}
