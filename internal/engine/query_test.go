package engine

import (
	"strings"
	"testing"
)

func TestQueryFullPushdown(t *testing.T) {
	db, _ := newTestDB(t)
	rel, e, err := db.Query("SELECT k, v FROM events WHERE v <= -45 LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) > 5 {
		t.Fatalf("limit not applied: %d rows", len(rel.Rows))
	}
	if len(rel.Cols) != 2 {
		t.Fatalf("cols = %v", rel.Cols)
	}
	// Fully pushed: returned bytes should be tiny vs the table.
	_, _, returned, get := e.Metrics.Totals()
	if get != 0 {
		t.Error("full pushdown should not use plain GETs")
	}
	if returned > 2000 {
		t.Errorf("returned %d bytes, expected a handful of rows", returned)
	}
}

func TestQueryGroupByOrderBy(t *testing.T) {
	db, _ := newTestDB(t)
	rel, _, err := db.Query("SELECT g, SUM(v) AS total, COUNT(*) AS n FROM events GROUP BY g ORDER BY g")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 10 {
		t.Fatalf("groups = %d", len(rel.Rows))
	}
	// ORDER BY g ascending.
	for i := 1; i < len(rel.Rows); i++ {
		a, _ := rel.Rows[i-1][0].IntNum()
		b, _ := rel.Rows[i][0].IntNum()
		if a > b {
			t.Fatal("not sorted")
		}
	}
	// Cross-check against the operator API.
	want, err := db.NewExec().ServerSideGroupBy("events", "g", groupAggs(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) != len(rel.Rows) {
		t.Fatalf("row count mismatch vs operator API")
	}
}

func TestQueryAggregateOnly(t *testing.T) {
	db, _ := newTestDB(t)
	rel, _, err := db.Query("SELECT COUNT(*) AS n, MIN(v) AS mn FROM events WHERE g = 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 1 || mustInt(rel.Rows[0][0]) <= 0 {
		t.Fatalf("agg result = %v", rel)
	}
}

func TestQueryOrderByAlias(t *testing.T) {
	db, _ := newTestDB(t)
	rel, _, err := db.Query("SELECT g, SUM(v) AS total FROM events GROUP BY g ORDER BY total DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 3 {
		t.Fatalf("rows = %d", len(rel.Rows))
	}
	a, _ := rel.Rows[0][1].Num()
	b, _ := rel.Rows[2][1].Num()
	if a < b {
		t.Error("not sorted by alias desc")
	}
}

func TestQueryErrors(t *testing.T) {
	db, _ := newTestDB(t)
	if _, _, err := db.Query("not sql"); err == nil {
		t.Error("bad sql should error")
	}
	if _, _, err := db.Query("SELECT x FROM nosuchtable"); err == nil {
		t.Error("missing table should error")
	}
}

func TestExplain(t *testing.T) {
	db, _ := newTestDB(t)
	plan, err := db.Explain("SELECT k FROM events WHERE v < 0 LIMIT 3")
	if err != nil || !strings.Contains(plan, "full pushdown") {
		t.Errorf("plan = %q, %v", plan, err)
	}
	plan, err = db.Explain("SELECT g, SUM(v) FROM events GROUP BY g ORDER BY g LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"projection pushdown", "GROUP BY", "ORDER BY", "LIMIT 2"} {
		if !strings.Contains(plan, frag) {
			t.Errorf("plan missing %q:\n%s", frag, plan)
		}
	}
	if _, err := db.Explain("garbage"); err == nil {
		t.Error("bad sql should error")
	}
}
