package engine

import (
	"fmt"

	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/value"
	"pushdowndb/internal/vec"
)

// The vectorized local operator path: each VecXxxLocalN is a drop-in twin
// of XxxLocalN that decodes the relation into typed column vectors and
// runs the internal/vec batched kernels. The twins parse the identical
// SQL fragments, produce the identical error strings and return
// byte-identical relations — the row path stays as the differential
// reference (WithVectorized(false)) and as the fallback for ragged
// relations, which the columnar layout cannot represent.

// referencedCols resolves every column the expressions reference against
// the relation (first-match, case-insensitive — the row path's rule) and
// returns the distinct column indices in first-seen order. Names that do
// not resolve are dropped: they are lookup misses in both paths.
func referencedCols(rel *Relation, exprs []sqlparse.Expr) []int {
	seen := map[int]bool{}
	var keep []int
	for _, e := range exprs {
		for _, name := range sqlparse.Columns(e) {
			if j := rel.ColIndex(name); j >= 0 && !seen[j] {
				seen[j] = true
				keep = append(keep, j)
			}
		}
	}
	return keep
}

// VecFilterLocalN is the vectorized FilterLocalN. Kept rows share the
// input's row slices, exactly like the row path; only the predicate's
// columns are decoded into vectors.
func VecFilterLocalN(rel *Relation, predicate string, workers int) (*Relation, error) {
	if predicate == "" {
		return rel, nil
	}
	pred, err := sqlparse.ParseExpr(predicate)
	if err != nil {
		return nil, fmt.Errorf("engine: bad predicate %q: %w", predicate, err)
	}
	b, ok := vec.FromRowsProjected(rel.Cols, rel.Rows, referencedCols(rel, []sqlparse.Expr{pred}), workers)
	if !ok {
		return FilterLocalN(rel, predicate, workers)
	}
	idx, err := vec.Filter(b, pred, workers)
	if err != nil {
		return nil, err
	}
	out := &Relation{Cols: rel.Cols, Rows: make([]Row, len(idx))}
	for k, i := range idx {
		out.Rows[k] = rel.Rows[i]
	}
	return out, nil
}

// VecProjectLocalN is the vectorized ProjectLocalN.
func VecProjectLocalN(rel *Relation, items string, workers int) (*Relation, error) {
	sel, err := sqlparse.Parse("SELECT " + items + " FROM t")
	if err != nil {
		return nil, fmt.Errorf("engine: bad projection %q: %w", items, err)
	}
	b, ok := projectionBatch(rel, sel, workers)
	if !ok {
		return ProjectLocalN(rel, items, workers)
	}
	out, err := vec.Project(b, sel, workers)
	if err != nil {
		return nil, err
	}
	rel2 := &Relation{Cols: out.Cols, Rows: make([]Row, out.Len())}
	for i, r := range out.ToRows() {
		rel2.Rows[i] = r
	}
	return rel2, nil
}

// VecGroupByLocalN is the vectorized GroupByLocalN.
func VecGroupByLocalN(rel *Relation, groupBy, items string, workers int) (*Relation, error) {
	sel, err := sqlparse.Parse("SELECT " + items + " FROM t GROUP BY " + groupBy)
	if err != nil {
		return nil, fmt.Errorf("engine: bad group-by: %w", err)
	}
	exprs := make([]sqlparse.Expr, 0, len(sel.Items)+len(sel.GroupBy))
	for _, it := range sel.Items {
		exprs = append(exprs, it.Expr)
	}
	exprs = append(exprs, sel.GroupBy...)
	b, ok := vec.FromRowsProjected(rel.Cols, rel.Rows, referencedCols(rel, exprs), workers)
	if !ok {
		return GroupByLocalN(rel, groupBy, items, workers)
	}
	cols, rows, err := vec.GroupBy(b, sel, workers)
	if err != nil {
		return nil, err
	}
	out := &Relation{Cols: cols, Rows: make([]Row, len(rows))}
	for i, r := range rows {
		out.Rows[i] = r
	}
	return out, nil
}

// VecAggregateLocalN is the vectorized AggregateLocalN: the same
// constant-key group-by trick, the same empty-input synthesis.
func VecAggregateLocalN(rel *Relation, items string, workers int) (*Relation, error) {
	out, err := VecGroupByLocalN(rel, "'all'", "'all' AS g, "+items, workers)
	if err != nil {
		return nil, err
	}
	if len(out.Rows) == 0 {
		return emptyAggregateRow(rel.Cols, items)
	}
	trimmed := &Relation{Cols: out.Cols[1:]}
	for _, r := range out.Rows {
		trimmed.Rows = append(trimmed.Rows, r[1:])
	}
	return trimmed, nil
}

// VecHashJoinLocalN is the vectorized HashJoinLocalN: key columns decode
// to vectors for the build/probe kernel, joined rows concatenate the
// original row slices in the row path's probe order.
func VecHashJoinLocalN(left, right *Relation, leftKey, rightKey string, workers int) (*Relation, error) {
	li, ri := left.ColIndex(leftKey), right.ColIndex(rightKey)
	if li < 0 {
		return nil, fmt.Errorf("engine: join key %q not in left relation %v", leftKey, left.Cols)
	}
	if ri < 0 {
		return nil, fmt.Errorf("engine: join key %q not in right relation %v", rightKey, right.Cols)
	}
	lk, lok := keyVector(left, li)
	rk, rok := keyVector(right, ri)
	if !lok || !rok {
		return HashJoinLocalN(left, right, leftKey, rightKey, workers)
	}
	bi, pi := vec.JoinPairs(lk, rk, workers)
	out := &Relation{
		Cols: append(append([]string{}, left.Cols...), right.Cols...),
		Rows: make([]Row, len(bi)),
	}
	// Materializing the joined rows is pure memory traffic with a fixed
	// output slot per pair, so it parallelizes over contiguous spans.
	runSpans(rowSpans(len(bi), workers), func(w int, sp span) error {
		for k := sp.lo; k < sp.hi; k++ {
			lrow, rrow := left.Rows[bi[k]], right.Rows[pi[k]]
			joined := make(Row, 0, len(lrow)+len(rrow))
			joined = append(joined, lrow...)
			joined = append(joined, rrow...)
			out.Rows[k] = joined
		}
		return nil
	})
	return out, nil
}

// projectionBatch builds the batch a projection needs: the whole relation
// when an item is *, only the referenced columns otherwise.
func projectionBatch(rel *Relation, sel *sqlparse.Select, workers int) (*vec.Batch, bool) {
	var exprs []sqlparse.Expr
	for _, it := range sel.Items {
		if _, isStar := it.Expr.(*sqlparse.Star); isStar {
			return vec.FromRows(rel.Cols, rel.Rows, workers)
		}
		exprs = append(exprs, it.Expr)
	}
	return vec.FromRowsProjected(rel.Cols, rel.Rows, referencedCols(rel, exprs), workers)
}

// keyVector extracts column c of a relation as a vector. ok is false for
// rows too short to hold the column — those rows' keys are lookup misses
// in the row path, which the fallback reproduces.
func keyVector(rel *Relation, c int) (*vec.Vector, bool) {
	vals := make([]value.Value, len(rel.Rows))
	for i, r := range rel.Rows {
		if c >= len(r) {
			return nil, false
		}
		vals[i] = r[c]
	}
	return vec.FromValues(vals), true
}

// Dispatchers: the execution paths call these; WithVectorized(false)
// pins the row path for differential testing.

func (e *Exec) filterLocal(rel *Relation, predicate string, workers int) (*Relation, error) {
	sp := e.opSpan("filter", len(rel.Rows))
	var out *Relation
	var err error
	if e.db.vectorized {
		out, err = VecFilterLocalN(rel, predicate, workers)
	} else {
		out, err = FilterLocalN(rel, predicate, workers)
	}
	endOpSpan(sp, out, err)
	return out, err
}

func (e *Exec) projectLocal(rel *Relation, items string, workers int) (*Relation, error) {
	sp := e.opSpan("project", len(rel.Rows))
	var out *Relation
	var err error
	if e.db.vectorized {
		out, err = VecProjectLocalN(rel, items, workers)
	} else {
		out, err = ProjectLocalN(rel, items, workers)
	}
	endOpSpan(sp, out, err)
	return out, err
}

func (e *Exec) groupByLocal(rel *Relation, groupBy, items string, workers int) (*Relation, error) {
	sp := e.opSpan("groupby", len(rel.Rows))
	var out *Relation
	var err error
	if e.db.vectorized {
		out, err = VecGroupByLocalN(rel, groupBy, items, workers)
	} else {
		out, err = GroupByLocalN(rel, groupBy, items, workers)
	}
	endOpSpan(sp, out, err)
	return out, err
}

func (e *Exec) aggregateLocal(rel *Relation, items string, workers int) (*Relation, error) {
	sp := e.opSpan("aggregate", len(rel.Rows))
	var out *Relation
	var err error
	if e.db.vectorized {
		out, err = VecAggregateLocalN(rel, items, workers)
	} else {
		out, err = AggregateLocalN(rel, items, workers)
	}
	endOpSpan(sp, out, err)
	return out, err
}

func (e *Exec) hashJoinLocal(left, right *Relation, leftKey, rightKey string, workers int) (*Relation, error) {
	sp := e.opSpan("hash join local", len(left.Rows)+len(right.Rows))
	var out *Relation
	var err error
	if e.db.vectorized {
		out, err = VecHashJoinLocalN(left, right, leftKey, rightKey, workers)
	} else {
		out, err = HashJoinLocalN(left, right, leftKey, rightKey, workers)
	}
	endOpSpan(sp, out, err)
	return out, err
}
