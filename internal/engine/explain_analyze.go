package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"pushdowndb/internal/obs"
	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/value"
)

// EXPLAIN [ANALYZE] execution. Plain EXPLAIN renders the planner's
// estimates without running the query; ANALYZE executes it under an obs
// trace and annotates every plan step with what actually happened —
// estimated vs. actual rows, bytes and cost. The render is deterministic
// except for the single wall-clock line (golden tests mask it), because it
// is built from the plan steps and the cloudsim phase table, not from the
// concurrently-ordered raw span tree.

// runExplain executes an EXPLAIN statement. Plain EXPLAIN returns the
// estimate render and no execution (nothing was metered); ANALYZE returns
// the annotated render together with the Exec that ran the query, so
// runtime and billing ride the server wire like any SELECT's.
func (db *DB) runExplain(ctx context.Context, ex *sqlparse.Explain) (*Relation, *Exec, error) {
	if !ex.Analyze {
		text, err := db.explainSelect(ctx, ex.Sel)
		if err != nil {
			return nil, nil, err
		}
		return textRelation(text), nil, nil
	}
	// ANALYZE always runs traced: reuse the caller's trace (the daemon
	// attaches one per request) or start a private one.
	if obs.FromContext(ctx) == nil {
		ctx = obs.WithTrace(ctx, obs.New("explain", "query"))
	}
	rel, e, err := db.runSelectStatement(ctx, ex.Sel)
	if err != nil {
		return nil, nil, err
	}
	return textRelation(renderAnalyze(ex.Sel, rel, e)), e, nil
}

// textRelation wraps a multi-line render as a one-column relation, so
// EXPLAIN output flows through every surface (pushdownsql, the server
// wire) that already knows how to carry rows.
func textRelation(text string) *Relation {
	rel := &Relation{Cols: []string{"plan"}}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		rel.Rows = append(rel.Rows, Row{value.Str(line)})
	}
	return rel
}

// renderAnalyze builds the EXPLAIN ANALYZE report from the executed plan
// and its metrics.
func renderAnalyze(sel *sqlparse.Select, rel *Relation, e *Exec) string {
	var b strings.Builder
	b.WriteString("EXPLAIN ANALYZE\n")
	if p := e.QueryPlan(); p != nil {
		b.WriteString(p.AnalyzeString())
	} else {
		renderAnalyzeSingle(&b, sel, rel, e)
	}
	b.WriteString("phases:\n")
	for _, line := range strings.Split(strings.TrimRight(e.Metrics.Report(), "\n"), "\n") {
		b.WriteString("  " + line + "\n")
	}
	_, _, retBytes, getBytes := e.Metrics.Totals()
	cost := e.Cost()
	fmt.Fprintf(&b, "totals: %d rows, %d bytes returned, %.3fs virtual, %s\n",
		len(rel.Rows), retBytes+getBytes, e.RuntimeSeconds(), cost)
	fmt.Fprintf(&b, "wall: %s\n", wallOf(e))
	return b.String()
}

// renderAnalyzeSingle annotates a single-table query: the access strategy
// that ran and its actual output.
func renderAnalyzeSingle(b *strings.Builder, sel *sqlparse.Select, rel *Relation, e *Exec) {
	if ap := e.Access(); ap != nil {
		b.WriteString(ap.String())
		fmt.Fprintf(b, "  actual: %d rows out\n", len(rel.Rows))
		return
	}
	fmt.Fprintf(b, "scan %s: %s\n", sel.Table, pushedScanSQL(sel))
	fmt.Fprintf(b, "  actual: %d rows out\n", len(rel.Rows))
}

// wallOf renders the traced query's wall-clock duration; "n/a" when the
// execution ran untraced (EXPLAIN ANALYZE always traces, but the render is
// also reachable from tests that build an Exec directly).
func wallOf(e *Exec) string {
	d := e.Trace().Snapshot()
	if d == nil || d.Root == nil {
		return "n/a"
	}
	return fmt.Sprintf("%.3fms", float64(d.Root.DurUS)/1000)
}

// AnalyzeString renders the plan like String, with each join step
// additionally annotated with its actuals: output rows next to the
// estimate, and the step's measured virtual seconds, dollars and returned
// bytes next to the per-strategy estimates that drove the decision.
func (p *QueryPlan) AnalyzeString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "join plan (%d tables)\n", len(p.Scans))
	for _, sc := range p.Scans {
		fmt.Fprintf(&b, "  scan %s: S3 Select: %s", sc.Name(),
			projectionSQL(sc.Project, exprStr(sc.Filter)))
		fmt.Fprintf(&b, "  [est %d rows, %d after filter]\n",
			sc.Stats.Rows, sc.Stats.FilteredRows)
	}
	for i, st := range p.Steps {
		fmt.Fprintf(&b, "  join %d: %s.%s = %s.%s\n",
			i+1, st.BuildName, st.BuildKey, st.ProbeName, st.ProbeKey)
		fmt.Fprintf(&b, "    strategy: %s — %s\n", st.Strategy, st.Reason)
		fmt.Fprintf(&b, "    rows:   est ~%d, actual %d\n", st.EstRows, st.ActualRows)
		if est, ok := st.Estimates[st.Strategy]; ok {
			fmt.Fprintf(&b, "    cost:   est %.3fs $%.6f, actual %.3fs $%.6f\n",
				est.Seconds, est.USD, st.ActualSec, st.ActualUSD)
		} else {
			fmt.Fprintf(&b, "    cost:   actual %.3fs $%.6f\n", st.ActualSec, st.ActualUSD)
		}
		fmt.Fprintf(&b, "    bytes:  actual %d returned\n", st.ActualBytes)
		names := make([]string, 0, len(st.Estimates))
		for name := range st.Estimates {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			est := st.Estimates[name]
			fmt.Fprintf(&b, "    est %-8s %8.3fs  $%.6f\n", name+":", est.Seconds, est.USD)
		}
	}
	if p.Residual != nil {
		fmt.Fprintf(&b, "  server: filter %s\n", p.Residual.String())
	}
	sel := p.Sel
	if len(sel.GroupBy) > 0 {
		fmt.Fprintf(&b, "  server: GROUP BY %s\n", renderExprs(sel.GroupBy))
	} else if sel.HasAggregates() {
		fmt.Fprintf(&b, "  server: aggregate\n")
	}
	if len(sel.OrderBy) > 0 {
		fmt.Fprintf(&b, "  server: ORDER BY\n")
	}
	if sel.Limit >= 0 {
		fmt.Fprintf(&b, "  server: LIMIT %d\n", sel.Limit)
	}
	return b.String()
}

// ExplainAnalyze runs `EXPLAIN ANALYZE sql` directly (convenience for
// tests and tools that bypass ExecStatement).
func (db *DB) ExplainAnalyze(ctx context.Context, sql string) (string, *Exec, error) {
	sel, err := sqlparse.Parse(sql)
	if err != nil {
		return "", nil, err
	}
	rel, e, err := db.runExplain(ctx, &sqlparse.Explain{Analyze: true, Sel: sel})
	if err != nil {
		return "", nil, err
	}
	var lines []string
	for _, r := range rel.Rows {
		lines = append(lines, r[0].AsString())
	}
	return strings.Join(lines, "\n") + "\n", e, nil
}
