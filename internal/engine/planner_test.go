package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"pushdowndb/internal/cloudsim"
)

// bigSim makes the tiny test tables behave like a deployment-scale
// dataset: transfer/parse terms dominate, so pushdown pays off.
func bigSim() cloudsim.Scale {
	return cloudsim.Scale{DataRatio: 1e5, PartRatio: 8}
}

func TestPlannerPicksBloomJoinWhenSelective(t *testing.T) {
	db, _ := newTestDB(t)
	db.Sim = bigSim()
	sql := "SELECT SUM(o.price) AS total, COUNT(*) AS n FROM cust c JOIN ords o ON c.ck = o.ck WHERE c.bal <= -500"
	rel, e, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	plan := e.QueryPlan()
	if plan == nil || len(plan.Steps) != 1 {
		t.Fatalf("plan = %+v", plan)
	}
	step := plan.Steps[0]
	if step.Strategy != StrategyBloom {
		t.Errorf("strategy = %s, want bloom\nestimates: %+v\nreason: %s",
			step.Strategy, step.Estimates, step.Reason)
	}
	if step.BuildName != "c" {
		t.Errorf("build side = %s, want the filtered customer side", step.BuildName)
	}

	// The SQL answer must match the explicit BloomJoin operator call.
	opDB, _ := newTestDB(t)
	opDB.Sim = bigSim()
	want, err := opDB.NewExec().JoinAggregate(joinSpec(), "bloom", "SUM(price) AS total, COUNT(*) AS n")
	if err != nil {
		t.Fatal(err)
	}
	assertSameAgg(t, rel, want)
}

func TestPlannerPicksBaselineJoinWhenUnselective(t *testing.T) {
	db, _ := newTestDB(t)
	// Unit scale, no filters: pushdown scans cost money while plain GETs
	// transfer for free in-region, so baseline wins.
	sql := "SELECT COUNT(*) AS n FROM cust c JOIN ords o ON c.ck = o.ck"
	rel, e, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	step := e.QueryPlan().Steps[0]
	if step.Strategy != StrategyBaseline {
		t.Errorf("strategy = %s, want baseline\nestimates: %+v", step.Strategy, step.Estimates)
	}

	js := joinSpec()
	js.LeftFilter = ""
	want, err := db.NewExec().JoinAggregate(js, "baseline", "COUNT(*) AS n")
	if err != nil {
		t.Fatal(err)
	}
	assertSameAgg(t, rel, want)
}

func assertSameAgg(t *testing.T, got, want *Relation) {
	t.Helper()
	if len(got.Rows) != 1 || len(want.Rows) != 1 {
		t.Fatalf("agg rows: got %d, want %d", len(got.Rows), len(want.Rows))
	}
	for i := range want.Rows[0] {
		a, _ := want.Rows[0][i].Num()
		b, _ := got.Rows[0][i].Num()
		if diff := a - b; diff > 0.01 || diff < -0.01 {
			t.Errorf("agg item %d: %v != %v", i, b, a)
		}
	}
}

func TestPlannerCommaJoin(t *testing.T) {
	db, _ := newTestDB(t)
	db.Sim = bigSim()
	rel, e, err := db.Query(
		"SELECT COUNT(*) AS n FROM cust c, ords o WHERE c.ck = o.ck AND c.bal <= -500")
	if err != nil {
		t.Fatal(err)
	}
	if e.QueryPlan() == nil {
		t.Fatal("comma join should go through the planner")
	}
	want, err := db.NewExec().JoinAggregate(joinSpec(), "baseline", "COUNT(*) AS n")
	if err != nil {
		t.Fatal(err)
	}
	assertSameAgg(t, rel, want)
}

func TestPlannerJoinGroupByOrderByLimit(t *testing.T) {
	db, _ := newTestDB(t)
	rel, _, err := db.Query(
		"SELECT c.ck, SUM(o.price) AS total FROM cust c JOIN ords o ON c.ck = o.ck GROUP BY c.ck ORDER BY total DESC LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 5 || len(rel.Cols) != 2 {
		t.Fatalf("shape = %v %d rows", rel.Cols, len(rel.Rows))
	}
	a, _ := rel.Rows[0][1].Num()
	b, _ := rel.Rows[4][1].Num()
	if a < b {
		t.Error("not sorted by total desc")
	}
}

func TestPlannerResidualPredicate(t *testing.T) {
	db, _ := newTestDB(t)
	// bal < price compares columns of different tables: not pushable, not
	// an equi-join key — must be evaluated locally after the join.
	rel, e, err := db.Query(
		"SELECT COUNT(*) AS n FROM cust c JOIN ords o ON c.ck = o.ck WHERE c.bal < o.price")
	if err != nil {
		t.Fatal(err)
	}
	if e.QueryPlan().Residual == nil {
		t.Error("expected a residual predicate in the plan")
	}
	// Cross-check by hand.
	join, err := db.NewExec().BaselineJoin(JoinSpec{
		LeftTable: "cust", RightTable: "ords", LeftKey: "ck", RightKey: "ck"})
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := FilterLocal(join, "bal < price")
	if err != nil {
		t.Fatal(err)
	}
	if mustInt(rel.Rows[0][0]) != int64(len(filtered.Rows)) {
		t.Errorf("residual count = %v, want %d", rel.Rows[0][0], len(filtered.Rows))
	}
}

func TestPlannerThreeTableChain(t *testing.T) {
	db, st := newTestDB(t)
	// A third table keyed by order: items(ok, qty).
	var items [][]string
	for i := 0; i < 400; i++ {
		items = append(items, []string{intStr(i), intStr(i % 7)})
	}
	if err := PartitionTable(context.Background(), st, testBucket, "items", []string{"iok", "qty"}, items, 2); err != nil {
		t.Fatal(err)
	}
	db.Sim = bigSim()
	rel, e, err := db.Query(
		"SELECT COUNT(*) AS n, SUM(i.qty) AS q FROM cust c JOIN ords o ON c.ck = o.ck JOIN items i ON o.ok = i.iok WHERE c.bal <= -500")
	if err != nil {
		t.Fatal(err)
	}
	plan := e.QueryPlan()
	if len(plan.Steps) != 2 {
		t.Fatalf("steps = %d", len(plan.Steps))
	}
	if plan.Steps[1].Strategy != StrategyBloom && plan.Steps[1].Strategy != StrategyFiltered {
		t.Errorf("chain step strategy = %q", plan.Steps[1].Strategy)
	}
	// Cross-check with explicit operators.
	join1, err := db.NewExec().BaselineJoin(JoinSpec{
		LeftTable: "cust", RightTable: "ords", LeftKey: "ck", RightKey: "ck",
		LeftFilter: "bal <= -500"})
	if err != nil {
		t.Fatal(err)
	}
	itemsRel, err := db.NewExec().LoadTable("load", 0, "items")
	if err != nil {
		t.Fatal(err)
	}
	join2, err := HashJoinLocal(join1, itemsRel, "ok", "iok")
	if err != nil {
		t.Fatal(err)
	}
	want, err := AggregateLocal(join2, "COUNT(*) AS n, SUM(qty) AS q")
	if err != nil {
		t.Fatal(err)
	}
	assertSameAgg(t, rel, want)
}

func TestPlannerStatsCache(t *testing.T) {
	db, _ := newTestDB(t)
	sql := "SELECT COUNT(*) AS n FROM cust c JOIN ords o ON c.ck = o.ck WHERE c.bal <= -500"
	if _, _, err := db.Query(sql); err != nil {
		t.Fatal(err)
	}
	plan, _, err := db.Plan(sql)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range plan.Scans {
		if !sc.CachedStats {
			t.Errorf("scan %s should reuse cached stats on the second run", sc.Table)
		}
	}
	db.InvalidateStats()
	plan, _, err = db.Plan(sql)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range plan.Scans {
		if sc.CachedStats {
			t.Errorf("scan %s should re-probe after InvalidateStats", sc.Table)
		}
	}
}

func TestPlannerExplain(t *testing.T) {
	db, _ := newTestDB(t)
	db.Sim = bigSim()
	plan, err := db.Explain(
		"SELECT SUM(o.price) AS total FROM cust c JOIN ords o ON c.ck = o.ck WHERE c.bal <= -500 LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"join plan", "scan c:", "scan o:", "strategy:", "est baseline:", "est bloom:", "LIMIT 3"} {
		if !strings.Contains(plan, frag) {
			t.Errorf("explain missing %q:\n%s", frag, plan)
		}
	}
}

func TestPlannerRejectsAmbiguousColumns(t *testing.T) {
	db, st := newTestDB(t)
	// acct(ck2, bal) duplicates cust's "bal" column under a different key.
	var rows [][]string
	for i := 0; i < 50; i++ {
		rows = append(rows, []string{intStr(i), intStr(i * 10)})
	}
	if err := PartitionTable(context.Background(), st, testBucket, "acct", []string{"ck2", "bal"}, rows, 2); err != nil {
		t.Fatal(err)
	}
	// Referencing the duplicated, non-equated "bal" after the join must be
	// rejected: qualifiers are not preserved in the join result, so b.bal
	// would silently bind to cust's copy.
	for _, sql := range []string{
		"SELECT c.bal, b.bal FROM cust c JOIN acct b ON c.ck = b.ck2",
		"SELECT COUNT(*) AS n FROM cust c JOIN acct b ON c.ck = b.ck2 WHERE c.bal < b.bal",
		"SELECT COUNT(*) AS n, bal FROM cust c JOIN acct b ON c.ck = b.ck2 GROUP BY bal",
	} {
		if _, _, err := db.Query(sql); err == nil || !strings.Contains(err.Error(), "ambiguous") {
			t.Errorf("%s: err = %v, want ambiguous-column rejection", sql, err)
		}
	}
	// An unqualified pushed WHERE filter over a duplicated name is the
	// same silent guess and must be rejected too.
	if _, _, err := db.Query(
		"SELECT COUNT(*) AS n FROM cust c JOIN acct b ON c.ck = b.ck2 WHERE bal < 100"); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("unqualified filter over duplicate name: err = %v, want ambiguity rejection", err)
	}
	// A qualified pushed filter names its table explicitly: allowed.
	if _, _, err := db.Query(
		"SELECT COUNT(*) AS n FROM cust c JOIN acct b ON c.ck = b.ck2 WHERE c.bal < 100"); err != nil {
		t.Errorf("qualified pushed filter should be allowed: %v", err)
	}
	// Same-name join keys are exempt: both copies are equal in the result.
	if _, _, err := db.Query(
		"SELECT c.ck, COUNT(*) AS n FROM cust c JOIN ords o ON c.ck = o.ck GROUP BY c.ck"); err != nil {
		t.Errorf("equated duplicate key should be allowed: %v", err)
	}
	// An unqualified filter on an equated key is sound (copies are equal).
	if _, _, err := db.Query(
		"SELECT COUNT(*) AS n FROM cust c JOIN ords o ON c.ck = o.ck WHERE ck < 50"); err != nil {
		t.Errorf("unqualified filter on equated key should be allowed: %v", err)
	}
}

func TestPlannerRejectsAmbiguousChainJoinKey(t *testing.T) {
	db, st := newTestDB(t)
	// Three tables all providing "id"; only b.id = c.id is equated, so a
	// chain key or qualified reference over "id" could bind to a.id.
	mk := func(name string, cols []string, rows [][]string) {
		if err := PartitionTable(context.Background(), st, testBucket, name, cols, rows, 2); err != nil {
			t.Fatal(err)
		}
	}
	mk("ta", []string{"id", "x"}, [][]string{{"100", "1"}, {"200", "2"}})
	mk("tb", []string{"id", "a_x"}, [][]string{{"7", "1"}, {"8", "2"}})
	mk("tc", []string{"id", "y"}, [][]string{{"7", "111"}, {"100", "999"}})
	// The second step's build key "id" is ambiguous on the intermediate
	// (ta.id vs tb.id) — must be rejected, not silently joined on ta.id.
	if _, _, err := db.Query(
		"SELECT c.y FROM ta a JOIN tb b ON a.x = b.a_x JOIN tc c ON b.id = c.id"); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("chain key over duplicated name: err = %v, want ambiguity rejection", err)
	}
	// A qualified reference to a partially-equated duplicate is rejected
	// too: b.id ~ c.id, but a.id is a distinct value in the same rows.
	if _, _, err := db.Query(
		"SELECT b.id FROM ta a JOIN tb b ON a.x = b.a_x JOIN tc c ON b.id = c.id"); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("partially-equated duplicate: err = %v, want ambiguity rejection", err)
	}
}

func TestPlannerEmptyJoinCountIsZero(t *testing.T) {
	db, _ := newTestDB(t)
	rel, _, err := db.Query(
		"SELECT COUNT(*) AS n, SUM(o.price) AS total FROM cust c JOIN ords o ON c.ck = o.ck WHERE c.bal < -99999")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 1 {
		t.Fatalf("rows = %d", len(rel.Rows))
	}
	if n, ok := rel.Rows[0][0].IntNum(); !ok || n != 0 {
		t.Errorf("COUNT(*) over empty join = %v, want 0", rel.Rows[0][0])
	}
	if !rel.Rows[0][1].IsNull() {
		t.Errorf("SUM over empty join = %v, want NULL", rel.Rows[0][1])
	}
	// Arithmetic wrapping a COUNT still evaluates (0 + 0 = 0, not NULL).
	rel, _, err = db.Query(
		"SELECT COUNT(*) + 0 AS n FROM cust c JOIN ords o ON c.ck = o.ck WHERE c.bal < -99999")
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := rel.Rows[0][0].IntNum(); !ok || n != 0 {
		t.Errorf("COUNT(*) + 0 over empty join = %v, want 0", rel.Rows[0][0])
	}
}

func TestPlannerRejectsDuplicateAliases(t *testing.T) {
	db, _ := newTestDB(t)
	for _, sql := range []string{
		"SELECT COUNT(*) AS n FROM cust c JOIN ords c ON c.ck = c.ck",
		"SELECT COUNT(*) AS n FROM cust JOIN cust ON ck = ck",
	} {
		if _, _, err := db.Query(sql); err == nil || !strings.Contains(err.Error(), "duplicate table") {
			t.Errorf("%s: err = %v, want duplicate-alias rejection", sql, err)
		}
	}
}

func TestPlannerRejectsAmbiguousJoinKey(t *testing.T) {
	db, st := newTestDB(t)
	// users(id, name) and torders(id, user_id): unqualified "id" in a join
	// condition could mean either table.
	if err := PartitionTable(context.Background(), st, testBucket, "users",
		[]string{"id", "name"}, [][]string{{"1", "a"}, {"2", "b"}}, 2); err != nil {
		t.Fatal(err)
	}
	if err := PartitionTable(context.Background(), st, testBucket, "torders",
		[]string{"id", "user_id"}, [][]string{{"10", "1"}, {"11", "2"}}, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Query(
		"SELECT COUNT(*) AS n FROM users u JOIN torders o ON id = user_id"); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("unqualified ambiguous join key: err = %v, want ambiguity rejection", err)
	}
	// Same query with the tables flipped mis-classifies the condition as a
	// single-table filter; it must still surface an ambiguity error, not a
	// cross-join complaint.
	if _, _, err := db.Query(
		"SELECT COUNT(*) AS n FROM torders o JOIN users u ON id = user_id"); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("flipped ambiguous join key: err = %v, want ambiguity rejection", err)
	}
	// Qualified keys are fine.
	if _, _, err := db.Query(
		"SELECT COUNT(*) AS n FROM users u JOIN torders o ON u.id = o.user_id"); err != nil {
		t.Errorf("qualified join key should work: %v", err)
	}
}

func TestPlannerErrors(t *testing.T) {
	db, _ := newTestDB(t)
	// No connecting predicate: cross joins are rejected.
	if _, _, err := db.Query("SELECT COUNT(*) AS n FROM cust, ords"); err == nil {
		t.Error("cross join should error")
	}
	// Unknown column in a join condition.
	if _, _, err := db.Query("SELECT COUNT(*) AS n FROM cust c JOIN ords o ON c.nope = o.ck"); err == nil {
		t.Error("unknown join column should error")
	}
	// Unknown qualifier.
	if _, _, err := db.Query("SELECT COUNT(*) AS n FROM cust c JOIN ords o ON x.ck = o.ck"); err == nil {
		t.Error("unknown alias should error")
	}
}

func TestPlannerProbeCostIsAccounted(t *testing.T) {
	db, _ := newTestDB(t)
	_, e, err := db.Query("SELECT COUNT(*) AS n FROM cust c JOIN ords o ON c.ck = o.ck WHERE c.bal <= -500")
	if err != nil {
		t.Fatal(err)
	}
	// The planner's COUNT(*) probes scan both tables; their scan bytes
	// must show up in the query's own metrics.
	_, scan, _, _ := e.Metrics.Totals()
	if scan == 0 {
		t.Error("planning probes should be metered")
	}
}

func intStr(i int) string { return fmt.Sprint(i) }
