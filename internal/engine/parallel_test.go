package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"pushdowndb/internal/cloudsim"
)

func TestRowSpans(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {3, 4}, {4, 4}, {10, 3}, {1000, 8}, {7, 1}, {5, 0},
	} {
		sps := rowSpans(tc.n, tc.workers)
		if tc.n == 0 {
			if len(sps) != 0 {
				t.Errorf("rowSpans(%d,%d) = %v, want none", tc.n, tc.workers, sps)
			}
			continue
		}
		want := tc.workers
		if want < 1 {
			want = 1
		}
		if want > tc.n {
			want = tc.n
		}
		if len(sps) != want {
			t.Errorf("rowSpans(%d,%d) has %d spans, want %d", tc.n, tc.workers, len(sps), want)
		}
		next := 0
		for _, sp := range sps {
			if sp.lo != next || sp.hi <= sp.lo {
				t.Fatalf("rowSpans(%d,%d) = %v: not contiguous ascending", tc.n, tc.workers, sps)
			}
			next = sp.hi
		}
		if next != tc.n {
			t.Errorf("rowSpans(%d,%d) covers [0,%d), want [0,%d)", tc.n, tc.workers, next, tc.n)
		}
	}
}

// parallelTestRelation builds a relation with duplicate keys (top-K ties),
// repeated group values, floats (summation-order sensitivity) and NULLs.
func parallelTestRelation(n int) *Relation {
	rng := rand.New(rand.NewSource(7))
	rows := make([][]string, n)
	for i := range rows {
		v := fmt.Sprintf("%.3f", rng.Float64()*100-50)
		if i%97 == 0 {
			v = "" // NULL
		}
		rows[i] = []string{
			fmt.Sprint(i),
			fmt.Sprint(rng.Intn(7)),     // group / join key
			fmt.Sprint(rng.Intn(5) * 5), // heavily tied sort key
			v,
		}
	}
	return FromStrings([]string{"id", "g", "tie", "v"}, rows)
}

// identicalRel fails unless a and b are byte-identical (columns, row order
// and rendered values all equal).
func identicalRel(t *testing.T, name string, a, b *Relation) {
	t.Helper()
	if !reflect.DeepEqual(a.Cols, b.Cols) {
		t.Fatalf("%s: cols %v vs %v", name, a.Cols, b.Cols)
	}
	if a.String() != b.String() {
		t.Fatalf("%s: relations differ:\n%s\nvs\n%s", name, a.String(), b.String())
	}
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Fatalf("%s: rows differ beyond rendering", name)
	}
}

// TestParallelOperatorsDeterministic is the tentpole's core guarantee:
// every parallel operator yields a byte-identical relation at workers=1
// and workers=N, for several N.
func TestParallelOperatorsDeterministic(t *testing.T) {
	rel := parallelTestRelation(1000)
	right := parallelTestRelation(400)
	for _, workers := range []int{2, 3, 8, 33} {
		seq, err := FilterLocalN(rel, "v > 0 AND g <> 3", 1)
		if err != nil {
			t.Fatal(err)
		}
		par, err := FilterLocalN(rel, "v > 0 AND g <> 3", workers)
		if err != nil {
			t.Fatal(err)
		}
		identicalRel(t, fmt.Sprintf("filter@%d", workers), seq, par)

		seq, err = ProjectLocalN(rel, "id, v * 2 AS dbl, g", 1)
		if err != nil {
			t.Fatal(err)
		}
		par, err = ProjectLocalN(rel, "id, v * 2 AS dbl, g", workers)
		if err != nil {
			t.Fatal(err)
		}
		identicalRel(t, fmt.Sprintf("project@%d", workers), seq, par)

		seq, err = HashJoinLocalN(rel, right, "g", "g", 1)
		if err != nil {
			t.Fatal(err)
		}
		par, err = HashJoinLocalN(rel, right, "g", "g", workers)
		if err != nil {
			t.Fatal(err)
		}
		identicalRel(t, fmt.Sprintf("hashjoin@%d", workers), seq, par)

		const items = "g, SUM(v) AS s, COUNT(*) AS n, MIN(v) AS mn, MAX(v) AS mx, AVG(v) AS av"
		seq, err = GroupByLocalN(rel, "g", items, 1)
		if err != nil {
			t.Fatal(err)
		}
		par, err = GroupByLocalN(rel, "g", items, workers)
		if err != nil {
			t.Fatal(err)
		}
		identicalRel(t, fmt.Sprintf("groupby@%d", workers), seq, par)

		seq, err = AggregateLocalN(rel, "SUM(v) AS s, COUNT(*) AS n", 1)
		if err != nil {
			t.Fatal(err)
		}
		par, err = AggregateLocalN(rel, "SUM(v) AS s, COUNT(*) AS n", workers)
		if err != nil {
			t.Fatal(err)
		}
		identicalRel(t, fmt.Sprintf("aggregate@%d", workers), seq, par)

		// The tie column exercises the (key, row index) total order: rows
		// at the K boundary share key values.
		seq, err = topKLocalN(rel, "tie", 17, true, 1)
		if err != nil {
			t.Fatal(err)
		}
		par, err = topKLocalN(rel, "tie", 17, true, workers)
		if err != nil {
			t.Fatal(err)
		}
		identicalRel(t, fmt.Sprintf("topk-asc@%d", workers), seq, par)

		seq, err = topKLocalN(rel, "v", 17, false, 1)
		if err != nil {
			t.Fatal(err)
		}
		par, err = topKLocalN(rel, "v", 17, false, workers)
		if err != nil {
			t.Fatal(err)
		}
		identicalRel(t, fmt.Sprintf("topk-desc@%d", workers), seq, par)
	}
}

// TestParallelQueriesDeterministic runs end-to-end SQL (and the explicit
// operator APIs) at workers=1 and workers=8 over the same store and
// demands byte-identical results.
func TestParallelQueriesDeterministic(t *testing.T) {
	db, _ := newTestDB(t)
	queries := []string{
		"SELECT g, SUM(v) AS total, COUNT(*) AS n FROM events GROUP BY g ORDER BY g",
		"SELECT k, v FROM events WHERE v > 10 ORDER BY v DESC LIMIT 20",
		"SELECT SUM(o.price) AS total, COUNT(*) AS n FROM cust c JOIN ords o ON c.ck = o.ck WHERE c.bal <= 0",
	}
	for _, sql := range queries {
		db.Cfg.Workers = 1
		db.InvalidateStats()
		seq, _, err := db.Query(sql)
		if err != nil {
			t.Fatalf("%s @1: %v", sql, err)
		}
		db.Cfg.Workers = 8
		db.InvalidateStats()
		par, _, err := db.Query(sql)
		if err != nil {
			t.Fatalf("%s @8: %v", sql, err)
		}
		identicalRel(t, sql, seq, par)
	}

	run := func(workers int) []*Relation {
		db.Cfg.Workers = workers
		var out []*Relation
		for name, f := range map[string]func(*Exec) (*Relation, error){
			"server-groupby": func(e *Exec) (*Relation, error) {
				return e.ServerSideGroupBy("events", "g", groupAggs(), "")
			},
			"hybrid-groupby": func(e *Exec) (*Relation, error) {
				return e.HybridGroupBy("events", "g", groupAggs(),
					HybridGroupByOptions{S3Groups: 4, SampleFraction: 0.05})
			},
			"server-topk": func(e *Exec) (*Relation, error) {
				return e.ServerSideTopK("events", "v", 25, false)
			},
			"sampling-topk": func(e *Exec) (*Relation, error) {
				return e.SamplingTopK("events", "v", 25, false, SamplingTopKOptions{SampleSize: 200})
			},
		} {
			rel, err := f(db.NewExec())
			if err != nil {
				t.Fatalf("%s @%d: %v", name, workers, err)
			}
			out = append(out, rel)
		}
		return out
	}
	// Map iteration order is random; normalize by comparing sorted sets of
	// rendered relations.
	norm := func(rels []*Relation) map[string]bool {
		m := map[string]bool{}
		for _, r := range rels {
			m[r.String()] = true
		}
		return m
	}
	if got, want := norm(run(8)), norm(run(1)); !reflect.DeepEqual(got, want) {
		t.Fatalf("operator APIs differ between workers=1 and workers=8:\n%v\nvs\n%v", got, want)
	}
}

// TestWorkerBudgetShrinksRuntime: the same query gets faster on the
// virtual clock as the worker budget grows (server row work and load
// parsing divide across workers), while byte counters stay identical.
func TestWorkerBudgetShrinksRuntime(t *testing.T) {
	db, _ := newTestDB(t)
	// Simulate a large deployment so parse and row work dominate the
	// request RTT floor.
	db.Sim = cloudsim.Scale{DataRatio: 10000, PartRatio: 1}
	run := func(workers int) (*Exec, *Relation) {
		db.Cfg.Workers = workers
		e := db.NewExec()
		rel, err := e.ServerSideGroupBy("events", "g", groupAggs(), "")
		if err != nil {
			t.Fatal(err)
		}
		return e, rel
	}
	e1, r1 := run(1)
	e8, r8 := run(8)
	identicalRel(t, "groupby", r1, r8)
	if e8.RuntimeSeconds() >= e1.RuntimeSeconds() {
		t.Errorf("8 workers (%.6fs) should beat 1 worker (%.6fs)",
			e8.RuntimeSeconds(), e1.RuntimeSeconds())
	}
	req1, scan1, ret1, get1 := e1.Metrics.Totals()
	req8, scan8, ret8, get8 := e8.Metrics.Totals()
	if req1 != req8 || scan1 != scan8 || ret1 != ret8 || get1 != get8 {
		t.Error("worker budget must not change request or byte accounting")
	}
}
