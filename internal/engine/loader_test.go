package engine

import (
	"context"
	"fmt"
	"strconv"
	"testing"

	"pushdowndb/internal/colformat"
	"pushdowndb/internal/csvx"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/store"
	"pushdowndb/internal/value"
)


func TestPartitionTableSplitsEvenly(t *testing.T) {
	st := store.New()
	var rows [][]string
	for i := 0; i < 10; i++ {
		rows = append(rows, []string{fmt.Sprint(i)})
	}
	if err := PartitionTable(context.Background(), st, "b", "t", []string{"x"}, rows, 4); err != nil {
		t.Fatal(err)
	}
	parts := st.TableParts("b", "t")
	if len(parts) != 4 {
		t.Fatalf("parts = %v", parts)
	}
	// Every partition carries the header; rows are disjoint and complete.
	seen := map[string]bool{}
	for _, key := range parts {
		data, _ := st.Get("b", key)
		header, rs, err := csvx.Decode(data, true)
		if err != nil || header[0] != "x" {
			t.Fatalf("partition %s: %v %v", key, header, err)
		}
		for _, r := range rs {
			if seen[r[0]] {
				t.Fatalf("duplicate row %v", r)
			}
			seen[r[0]] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("rows across partitions = %d", len(seen))
	}
}

func TestPartitionTableMorePartsThanRows(t *testing.T) {
	st := store.New()
	if err := PartitionTable(context.Background(), st, "b", "t", []string{"x"}, [][]string{{"1"}}, 8); err != nil {
		t.Fatal(err)
	}
	// All partitions exist (some empty but with headers).
	parts := st.TableParts("b", "t")
	if len(parts) != 8 {
		t.Fatalf("parts = %d", len(parts))
	}
	db, err := Open("b", WithBackend("s3sim", s3api.NewInProc(st)))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := db.NewExec().SelectRows("s", 0, "t", "SELECT * FROM S3Object")
	if err != nil || len(rel.Rows) != 1 {
		t.Fatalf("scan over sparse partitions: %v %v", rel, err)
	}
}

func TestBuildIndexTableOffsets(t *testing.T) {
	st := store.New()
	rows := [][]string{{"10", "a"}, {"20", "b,with,commas"}, {"30", "c"}}
	if err := PartitionTable(context.Background(), st, "b", "t", []string{"k", "s"}, rows, 1); err != nil {
		t.Fatal(err)
	}
	if err := BuildIndexTable(st, "b", "t", "k"); err != nil {
		t.Fatal(err)
	}
	idxData, err := st.Get("b", store.PartitionKey(IndexTableName("t", "k"), 0))
	if err != nil {
		t.Fatal(err)
	}
	_, idxRows, err := csvx.Decode(idxData, true)
	if err != nil || len(idxRows) != 3 {
		t.Fatalf("index rows = %v, %v", idxRows, err)
	}
	// Each offset range must slice the data partition back to its row.
	data, _ := st.Get("b", store.PartitionKey("t", 0))
	for i, ir := range idxRows {
		first, _ := strconv.ParseInt(ir[1], 10, 64)
		last, _ := strconv.ParseInt(ir[2], 10, 64)
		frag := data[first : last+1]
		_, fr, err := csvx.Decode(frag, false)
		if err != nil || len(fr) != 1 {
			t.Fatalf("row %d fragment %q: %v", i, frag, err)
		}
		if fr[0][0] != rows[i][0] || fr[0][1] != rows[i][1] {
			t.Fatalf("row %d: fragment %v != %v", i, fr[0], rows[i])
		}
		if ir[0] != rows[i][0] {
			t.Fatalf("index value %q != %q", ir[0], rows[i][0])
		}
	}
}

func TestBuildIndexTableErrors(t *testing.T) {
	st := store.New()
	if err := BuildIndexTable(st, "b", "missing", "k"); err == nil {
		t.Error("missing table should error")
	}
	_ = PartitionTable(context.Background(), st, "b", "t", []string{"a"}, [][]string{{"1"}}, 1)
	if err := BuildIndexTable(st, "b", "t", "nosuch"); err == nil {
		t.Error("missing column should error")
	}
}

func TestPartitionTableColumnar(t *testing.T) {
	st := store.New()
	schema := colformat.Schema{{Name: "x", Kind: value.KindInt}}
	var rows [][]value.Value
	for i := 0; i < 20; i++ {
		rows = append(rows, []value.Value{value.Int(int64(i))})
	}
	if err := PartitionTableColumnar(st, "b", "t", schema, rows, 3, 4, true); err != nil {
		t.Fatal(err)
	}
	db, err := Open("b", WithBackend("s3sim", s3api.NewInProc(st)))
	if err != nil {
		t.Fatal(err)
	}
	rel, err := db.NewExec().SelectRows("s", 0, "t", "SELECT x FROM S3Object WHERE x >= 15")
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 5 {
		t.Fatalf("rows = %v", rel.Rows)
	}
}

func TestIndexTableName(t *testing.T) {
	if IndexTableName("lineitem", "l_orderkey") != "lineitem_index_l_orderkey" {
		t.Error("index table naming changed — Fig. 1 setup depends on it")
	}
}
