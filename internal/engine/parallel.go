package engine

import (
	"fmt"
	"strings"
	"sync"

	"pushdowndb/internal/expr"
	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/value"
)

// Parallel server-side execution. The paper's compute node is a 32-core
// r4.8xlarge; pushdown only pays off against a server that is itself
// well-utilized, so the local operators partition their row work across a
// small worker pool governed by the cost model's Cores budget
// (cloudsim.Config.Workers, capped at Cores). Every operator is
// deterministic: workers own contiguous ascending row ranges and partial
// results merge in worker order, so the output is byte-identical to the
// sequential (workers=1) run regardless of the budget.

// span is one worker's contiguous half-open row range [lo, hi).
type span struct{ lo, hi int }

// rowSpans partitions n rows into at most workers contiguous spans of
// near-equal size, in ascending row order.
func rowSpans(n, workers int) []span {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return nil
	}
	sps := make([]span, 0, workers)
	per := n / workers
	extra := n % workers // the first `extra` spans get one more row
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + per
		if w < extra {
			hi++
		}
		sps = append(sps, span{lo: lo, hi: hi})
		lo = hi
	}
	return sps
}

// runSpans executes fn(w, span) for every span, one worker goroutine per
// span, and returns the first error. A single span runs inline.
func runSpans(sps []span, fn func(w int, sp span) error) error {
	if len(sps) == 0 {
		return nil
	}
	if len(sps) == 1 {
		return fn(0, sps[0])
	}
	errs := make([]error, len(sps))
	var wg sync.WaitGroup
	for w := range sps {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = fn(w, sps[w])
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// itemName derives the output column name of one select item.
func itemName(it sqlparse.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(*sqlparse.Column); ok {
		return c.Name
	}
	return it.Expr.String()
}

// FilterLocalN is FilterLocal partitioned across workers goroutines: each
// worker filters its own row range, and the kept ranges concatenate in
// worker (= row) order.
func FilterLocalN(rel *Relation, predicate string, workers int) (*Relation, error) {
	if predicate == "" {
		return rel, nil
	}
	pred, err := sqlparse.ParseExpr(predicate)
	if err != nil {
		return nil, fmt.Errorf("engine: bad predicate %q: %w", predicate, err)
	}
	sps := rowSpans(len(rel.Rows), workers)
	kept := make([][]Row, len(sps))
	err = runSpans(sps, func(w int, sp span) error {
		ev := expr.New() // evaluators cache per-node state; one per worker
		for i := sp.lo; i < sp.hi; i++ {
			ok, err := ev.EvalBool(pred, rel.Env(i))
			if err != nil {
				return err
			}
			if ok {
				kept[w] = append(kept[w], rel.Rows[i])
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &Relation{Cols: rel.Cols}
	for _, rows := range kept {
		out.Rows = append(out.Rows, rows...)
	}
	return out, nil
}

// ProjectLocalN is ProjectLocal partitioned across workers goroutines;
// each output row is written at its input row's index, so the result is
// positionally identical to the sequential projection.
func ProjectLocalN(rel *Relation, items string, workers int) (*Relation, error) {
	sel, err := sqlparse.Parse("SELECT " + items + " FROM t")
	if err != nil {
		return nil, fmt.Errorf("engine: bad projection %q: %w", items, err)
	}
	out := &Relation{}
	for _, it := range sel.Items {
		if _, isStar := it.Expr.(*sqlparse.Star); isStar {
			out.Cols = append(out.Cols, rel.Cols...)
			continue
		}
		out.Cols = append(out.Cols, itemName(it))
	}
	out.Rows = make([]Row, len(rel.Rows))
	err = runSpans(rowSpans(len(rel.Rows), workers), func(w int, sp span) error {
		ev := expr.New()
		for i := sp.lo; i < sp.hi; i++ {
			env := rel.Env(i)
			var row Row
			for _, it := range sel.Items {
				if _, isStar := it.Expr.(*sqlparse.Star); isStar {
					row = append(row, rel.Rows[i]...)
					continue
				}
				v, err := ev.Eval(it.Expr, env)
				if err != nil {
					return err
				}
				row = append(row, v)
			}
			out.Rows[i] = row
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// HashJoinLocalN is HashJoinLocal with a partitioned build and a sharded
// probe: workers hash contiguous build ranges into partial tables merged
// in worker order (per-hash index lists stay ascending, exactly as the
// sequential build appends them), then the probe rows partition across
// workers whose match lists concatenate in worker (= probe row) order.
func HashJoinLocalN(left, right *Relation, leftKey, rightKey string, workers int) (*Relation, error) {
	li, ri := left.ColIndex(leftKey), right.ColIndex(rightKey)
	if li < 0 {
		return nil, fmt.Errorf("engine: join key %q not in left relation %v", leftKey, left.Cols)
	}
	if ri < 0 {
		return nil, fmt.Errorf("engine: join key %q not in right relation %v", rightKey, right.Cols)
	}
	buildSpans := rowSpans(len(left.Rows), workers)
	partMaps := make([]map[uint64][]int, len(buildSpans))
	_ = runSpans(buildSpans, func(w int, sp span) error {
		m := map[uint64][]int{}
		for i := sp.lo; i < sp.hi; i++ {
			row := left.Rows[i]
			if row[li].IsNull() {
				continue
			}
			m[row[li].Hash()] = append(m[row[li].Hash()], i)
		}
		partMaps[w] = m
		return nil
	})
	build := map[uint64][]int{}
	if len(partMaps) > 0 {
		build = partMaps[0]
		for _, m := range partMaps[1:] {
			// Deterministic despite the map iteration: each key gets exactly
			// one append per worker map, worker maps merge in slice (span)
			// order, and every per-worker index list is already ascending —
			// so build[h] is ascending regardless of which key goes first.
			//lint:ignore mapdeterminism per-key append order is fixed by the worker-span order, not the map order
			for h, idxs := range m {
				build[h] = append(build[h], idxs...)
			}
		}
	}
	sps := rowSpans(len(right.Rows), workers)
	parts := make([][]Row, len(sps))
	_ = runSpans(sps, func(w int, sp span) error {
		for p := sp.lo; p < sp.hi; p++ {
			rrow := right.Rows[p]
			if rrow[ri].IsNull() {
				continue
			}
			for _, i := range build[rrow[ri].Hash()] {
				lrow := left.Rows[i]
				if !value.Equal(lrow[li], rrow[ri]) {
					continue
				}
				joined := make(Row, 0, len(lrow)+len(rrow))
				joined = append(joined, lrow...)
				joined = append(joined, rrow...)
				parts[w] = append(parts[w], joined)
			}
		}
		return nil
	})
	out := &Relation{Cols: append(append([]string{}, left.Cols...), right.Cols...)}
	for _, rows := range parts {
		out.Rows = append(out.Rows, rows...)
	}
	return out, nil
}

// localGroup is one group's accumulated state.
type localGroup struct {
	keyVals Row
	agg     *expr.AggRunner
}

// groupPartial is one worker's partial aggregation: its groups plus their
// first-seen order within the worker's row range.
type groupPartial struct {
	groups map[string]*localGroup
	order  []string
}

// GroupByLocalN is GroupByLocal partitioned across workers goroutines:
// each worker aggregates its row range into a partial group map, and the
// partials merge in worker order (aggregate states combine with the same
// merge logic the partition-parallel scans use). Workers own contiguous
// ascending ranges, so merging in worker order reproduces the sequential
// run's global first-seen group order exactly.
func GroupByLocalN(rel *Relation, groupBy, items string, workers int) (*Relation, error) {
	sel, err := sqlparse.Parse("SELECT " + items + " FROM t GROUP BY " + groupBy)
	if err != nil {
		return nil, fmt.Errorf("engine: bad group-by: %w", err)
	}
	itemExprs := make([]sqlparse.Expr, len(sel.Items))
	for i, it := range sel.Items {
		itemExprs[i] = it.Expr
	}
	sps := rowSpans(len(rel.Rows), workers)
	parts := make([]groupPartial, len(sps))
	err = runSpans(sps, func(w int, sp span) error {
		ev := expr.New()
		p := groupPartial{groups: map[string]*localGroup{}}
		for i := sp.lo; i < sp.hi; i++ {
			env := rel.Env(i)
			var kb strings.Builder
			keyVals := make(Row, len(sel.GroupBy))
			for j, g := range sel.GroupBy {
				v, err := ev.Eval(g, env)
				if err != nil {
					return err
				}
				keyVals[j] = v
				kb.WriteString(v.String())
				kb.WriteByte('\x00')
			}
			k := kb.String()
			gs, ok := p.groups[k]
			if !ok {
				gs = &localGroup{keyVals: keyVals, agg: expr.NewAggRunner(ev, itemExprs)}
				p.groups[k] = gs
				p.order = append(p.order, k)
			}
			if err := gs.agg.Add(env); err != nil {
				return err
			}
		}
		parts[w] = p
		return nil
	})
	if err != nil {
		return nil, err
	}

	merged := map[string]*localGroup{}
	var order []string
	for _, p := range parts {
		for _, k := range p.order {
			g := p.groups[k]
			if m, ok := merged[k]; ok {
				if err := m.agg.Merge(g.agg); err != nil {
					return nil, err
				}
			} else {
				merged[k] = g
				order = append(order, k)
			}
		}
	}

	out := &Relation{}
	for _, it := range sel.Items {
		out.Cols = append(out.Cols, itemName(it))
	}
	for _, k := range order {
		gs := merged[k]
		genv := &groupKeyEnv{exprs: sel.GroupBy, vals: gs.keyVals}
		var row Row
		for _, it := range sel.Items {
			v, err := gs.agg.Final(it.Expr, genv)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// AggregateLocalN is AggregateLocal with the row work partitioned across
// workers goroutines.
func AggregateLocalN(rel *Relation, items string, workers int) (*Relation, error) {
	out, err := GroupByLocalN(rel, "'all'", "'all' AS g, "+items, workers)
	if err != nil {
		return nil, err
	}
	if len(out.Rows) == 0 {
		return emptyAggregateRow(rel.Cols, items)
	}
	trimmed := &Relation{Cols: out.Cols[1:]}
	for _, r := range out.Rows {
		trimmed.Rows = append(trimmed.Rows, r[1:])
	}
	return trimmed, nil
}

// FromStringsN is FromStrings with the per-cell CSV value typing
// partitioned across workers goroutines (the loader's decode work).
func FromStringsN(cols []string, rows [][]string, workers int) *Relation {
	rel := &Relation{Cols: cols}
	rel.Rows = make([]Row, len(rows))
	_ = runSpans(rowSpans(len(rows), workers), func(w int, sp span) error {
		for i := sp.lo; i < sp.hi; i++ {
			row := make(Row, len(rows[i]))
			for j, f := range rows[i] {
				row[j] = value.FromCSV(f)
			}
			rel.Rows[i] = row
		}
		return nil
	})
	return rel
}
