package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/store"
)

const testCacheBudget = 64 << 20

// cachedTestDB opens the shared test store behind a counting backend with
// the result cache on, so tests can assert wire-level request counts.
func cachedTestDB(t *testing.T, opts ...Option) (*DB, *s3api.Counting) {
	t.Helper()
	st := newTestStore(t)
	counting := s3api.NewCounting(s3api.NewInProc(st))
	all := append([]Option{
		WithBackend("s3sim", counting),
		WithResultCache(testCacheBudget),
	}, opts...)
	db, err := Open(testBucket, all...)
	if err != nil {
		t.Fatal(err)
	}
	return db, counting
}

// TestWarmJoinRepeatIssuesNoBackendSelects is the acceptance check for the
// result cache: repeating a TPC-H-style join query against a warm cache
// must reach the backend with zero Select requests, and both the virtual
// clock and the bill must come down.
func TestWarmJoinRepeatIssuesNoBackendSelects(t *testing.T) {
	db, counting := cachedTestDB(t, WithScale(bigSim()))
	sql := "SELECT SUM(o.price) AS total, COUNT(*) AS n FROM cust c JOIN ords o ON c.ck = o.ck WHERE c.bal <= -500"

	cold, e1, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	coldSelects := counting.Selects()
	if coldSelects == 0 {
		t.Fatalf("cold run issued no Select requests; the plan (%s) exercises nothing the cache could serve",
			e1.QueryPlan().Steps[0].Strategy)
	}

	warm, e2, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if d := counting.Selects() - coldSelects; d != 0 {
		t.Errorf("warm repeat issued %d backend Select requests, want 0", d)
	}
	hits, bytes := e2.Metrics.CacheTotals()
	if hits == 0 || bytes == 0 {
		t.Errorf("warm run metrics recorded %d cache hits / %d bytes, want > 0", hits, bytes)
	}
	if h1, _ := e1.Metrics.CacheTotals(); h1 != 0 {
		t.Errorf("cold run recorded %d cache hits, want 0", h1)
	}
	sameRows(t, "cold vs warm", cold, warm)

	if c1, c2 := e1.Cost().Total(), e2.Cost().Total(); c2 >= c1 {
		t.Errorf("warm cost $%.8f is not below cold cost $%.8f", c2, c1)
	}
	if r1, r2 := e1.RuntimeSeconds(), e2.RuntimeSeconds(); r2 >= r1 {
		t.Errorf("warm runtime %.3fs is not below cold runtime %.3fs", r2, r1)
	}
}

// TestWarmRepeatSingleTable: the single-table pushdown path (filter +
// group-by) is served from cache on repeat too.
func TestWarmRepeatSingleTable(t *testing.T) {
	db, counting := cachedTestDB(t)
	sql := "SELECT g, COUNT(*) AS n, SUM(v) AS s FROM events WHERE v >= 0 GROUP BY g ORDER BY g"
	cold, _, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	coldSelects := counting.Selects()
	warm, e2, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if d := counting.Selects() - coldSelects; d != 0 {
		t.Errorf("warm repeat issued %d Select requests, want 0", d)
	}
	if hits, _ := e2.Metrics.CacheTotals(); hits == 0 {
		t.Error("warm run recorded no cache hits")
	}
	if cold.String() != warm.String() {
		t.Errorf("warm answer differs:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
}

// TestCacheOffByDefault: without WithResultCache nothing is cached and
// repeats pay full price (the pre-cache behaviour).
func TestCacheOffByDefault(t *testing.T) {
	st := newTestStore(t)
	counting := s3api.NewCounting(s3api.NewInProc(st))
	db, err := Open(testBucket, WithBackend("s3sim", counting))
	if err != nil {
		t.Fatal(err)
	}
	sql := "SELECT k FROM events WHERE v >= 49"
	if _, _, err := db.Query(sql); err != nil {
		t.Fatal(err)
	}
	coldSelects := counting.Selects()
	if _, e, err := db.Query(sql); err != nil {
		t.Fatal(err)
	} else if hits, _ := e.Metrics.CacheTotals(); hits != 0 {
		t.Errorf("cache hits with caching off: %d", hits)
	}
	if d := counting.Selects() - coldSelects; d != coldSelects {
		t.Errorf("uncached repeat issued %d Selects, want %d (same as cold)", d, coldSelects)
	}
	if _, ok := db.ResultCacheStats(); ok {
		t.Error("ResultCacheStats reported a cache on an uncached DB")
	}
}

// TestReloadedTableNeverServesStaleRows is the invalidation-contract
// regression test: after a table's partitions are rewritten, InvalidateStats
// (or InvalidateTable) must prevent any query from seeing pre-reload rows.
func TestReloadedTableNeverServesStaleRows(t *testing.T) {
	st := store.New()
	load := func(vals ...string) {
		var rows [][]string
		for _, v := range vals {
			rows = append(rows, []string{v})
		}
		if err := PartitionTable(context.Background(), st, testBucket, "mut", []string{"v"}, rows, 2); err != nil {
			t.Fatal(err)
		}
	}
	load("old1", "old2", "old3", "old4")
	counting := s3api.NewCounting(s3api.NewInProc(st))
	db, err := Open(testBucket, WithBackend("s3sim", counting), WithResultCache(testCacheBudget))
	if err != nil {
		t.Fatal(err)
	}
	const sql = "SELECT v FROM mut"
	query := func() string {
		rel, _, err := db.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		return strings.Join(sortedRows(rel), ",")
	}
	if got := query(); !strings.Contains(got, "old1") {
		t.Fatalf("setup: got %s", got)
	}

	// Reload WITHOUT invalidating: the repeat is served from cache and
	// still shows the old rows — this is exactly why the contract requires
	// an invalidation call after mutating a table.
	load("new1", "new2", "new3", "new4")
	if got := query(); !strings.Contains(got, "old1") {
		t.Fatalf("cache did not serve the repeat at all (got %s); the invalidation test proves nothing", got)
	}

	db.InvalidateStats()
	if got := query(); strings.Contains(got, "old") {
		t.Errorf("stale rows after InvalidateStats: %s", got)
	}

	// Targeted variant: InvalidateTable drops only the named table.
	load("v3a", "v3b", "v3c", "v3d")
	db.InvalidateTable("mut")
	if got := query(); strings.Contains(got, "new") || strings.Contains(got, "old") {
		t.Errorf("stale rows after InvalidateTable: %s", got)
	}
}

// TestInvalidateTableScopes: invalidating one table leaves another table's
// cached scans resident.
func TestInvalidateTableScopes(t *testing.T) {
	db, counting := cachedTestDB(t)
	warm := func(sql string) {
		if _, _, err := db.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	custSQL := "SELECT ck FROM cust WHERE bal <= 0"
	eventsSQL := "SELECT k FROM events WHERE v >= 0"
	warm(custSQL)
	warm(eventsSQL)
	db.InvalidateTable("cust")

	before := counting.Selects()
	warm(eventsSQL) // still cached
	if d := counting.Selects() - before; d != 0 {
		t.Errorf("events repeat after invalidating cust issued %d Selects, want 0", d)
	}
	before = counting.Selects()
	warm(custSQL) // dropped, must re-scan
	if d := counting.Selects() - before; d == 0 {
		t.Error("cust repeat after InvalidateTable was served from cache")
	}
}

// TestPlannerFlipsToFilteredWhenProbeResident: the chain-join planner must
// flip from the Bloom probe to the plain filtered scan once the probe
// table's pushed scan is resident in the result cache. The string join key
// makes the cold Bloom plan fall back to a filtered scan at run time, which
// is what fills the cache with exactly the scan the warm plan then prices
// as free.
func TestPlannerFlipsToFilteredWhenProbeResident(t *testing.T) {
	st := store.New()
	var ta, tb, tc [][]string
	for i := 0; i < 60; i++ {
		ta = append(ta, []string{fmt.Sprint(i), fmt.Sprint(i)})
	}
	for i := 0; i < 300; i++ {
		tb = append(tb, []string{fmt.Sprint(i), fmt.Sprint(i % 60), fmt.Sprintf("s%03d", i%50)})
	}
	// tc is wide (fat pad column): its scan cost is transfer-dominated, the
	// regime where serving the probe scan from cache decides the strategy.
	pad := strings.Repeat("x", 500)
	for i := 0; i < 100; i++ {
		tc = append(tc, []string{fmt.Sprintf("s%03d", i), fmt.Sprint(i * 2), pad})
	}
	for _, tbl := range []struct {
		name   string
		header []string
		rows   [][]string
	}{
		{"ta", []string{"ak", "af"}, ta},
		{"tb", []string{"bk", "ak", "sk"}, tb},
		{"tc", []string{"sk", "cv", "pad"}, tc},
	} {
		if err := PartitionTable(context.Background(), st, testBucket, tbl.name, tbl.header, tbl.rows, 2); err != nil {
			t.Fatal(err)
		}
	}
	counting := s3api.NewCounting(s3api.NewInProc(st,
		s3api.WithProfile(cloudsim.CrossRegionS3Profile())))
	db, err := Open(testBucket,
		WithBackend("xr", counting),
		WithResultCache(testCacheBudget),
		WithScale(bigSim()))
	if err != nil {
		t.Fatal(err)
	}
	sql := "SELECT COUNT(*) AS n FROM ta JOIN tb ON ta.ak = tb.ak JOIN tc ON tb.sk = tc.sk WHERE ta.af <= 9"

	coldPlan, _, err := db.Plan(sql)
	if err != nil {
		t.Fatal(err)
	}
	chain := coldPlan.Steps[1]
	if chain.Strategy != StrategyBloom {
		t.Fatalf("cold chain strategy = %s, want bloom (estimates %+v) — the flip test needs a cold Bloom plan",
			chain.Strategy, chain.Estimates)
	}

	cold, e1, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	// The string key degrades the executed Bloom probe to a filtered scan,
	// which caches tc's plain pushed scan.
	if got := e1.QueryPlan().Steps[1]; got.Strategy != StrategyFiltered ||
		!strings.Contains(got.Reason, "fell back") {
		t.Fatalf("cold execution did not fall back to filtered: %s (%s)", got.Strategy, got.Reason)
	}

	warmPlan, _, err := db.Plan(sql)
	if err != nil {
		t.Fatal(err)
	}
	wchain := warmPlan.Steps[1]
	if wchain.Strategy != StrategyFiltered {
		t.Errorf("warm chain strategy = %s, want filtered (probe scan is resident)\nestimates: %+v",
			wchain.Strategy, wchain.Estimates)
	}
	tcScan := warmPlan.Scans[2]
	if tcScan.Table != "tc" {
		t.Fatalf("scan order changed: %+v", warmPlan.Scans)
	}
	if tcScan.Stats.CachedFrac != 1 {
		t.Errorf("tc CachedFrac = %.2f, want 1", tcScan.Stats.CachedFrac)
	}
	if s := warmPlan.String(); !strings.Contains(s, "cached scan 100%") {
		t.Errorf("plan tree does not surface the cached scan:\n%s", s)
	}

	warm, e2, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "cold vs warm", cold, warm)
	if hits, _ := e2.Metrics.CacheTotals(); hits == 0 {
		t.Error("warm execution recorded no cache hits")
	}
}

// TestExplainShowsCachedScanSingleTable: db.Explain marks a resident
// single-table pushdown as a cached scan.
func TestExplainShowsCachedScanSingleTable(t *testing.T) {
	db, _ := cachedTestDB(t)
	sql := "SELECT g, COUNT(*) AS n FROM events WHERE v >= 0 GROUP BY g"
	before, err := db.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(before, "cached scan") {
		t.Fatalf("cold Explain already claims a cached scan:\n%s", before)
	}
	if _, _, err := db.Query(sql); err != nil {
		t.Fatal(err)
	}
	after, err := db.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(after, "cached scan 100%") {
		t.Errorf("warm Explain does not mark the cached scan:\n%s", after)
	}
}
