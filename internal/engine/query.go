package engine

import (
	"fmt"
	"strings"

	"pushdowndb/internal/sqlparse"
)

// Query is PushdownDB's minimal SQL front end (the paper's Section III
// "minimal optimizer"): single-table SELECTs with WHERE, GROUP BY,
// ORDER BY and LIMIT. Selection and projection are always pushed into
// S3 Select; grouping, ordering and limiting run on the server. Join
// queries use the explicit operator APIs (BaselineJoin/BloomJoin/...).
func (db *DB) Query(sql string) (*Relation, *Exec, error) {
	sel, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	e := db.NewExec()
	rel, err := e.runSelect(sel)
	return rel, e, err
}

func (e *Exec) runSelect(sel *sqlparse.Select) (*Relation, error) {
	table := sel.Table
	simple := len(sel.GroupBy) == 0 && len(sel.OrderBy) == 0 && !sel.HasAggregates()
	if simple {
		// Fully pushable: selection, projection and LIMIT all go to S3.
		pushed := &sqlparse.Select{
			Items: sel.Items, Table: "S3Object",
			Where: sel.Where, Limit: sel.Limit,
		}
		rel, err := e.SelectRows("scan "+table, e.NextStage(), table, pushed.String())
		if err != nil {
			return nil, err
		}
		if sel.Limit >= 0 {
			rel = LimitLocal(rel, int(sel.Limit))
		}
		return rel, nil
	}

	// Push selection plus the projection of every referenced column; the
	// rest of the query runs locally.
	cols := queryColumns(sel)
	proj := "*"
	if len(cols) > 0 {
		proj = strings.Join(cols, ", ")
	}
	pushedSQL := "SELECT " + proj + " FROM S3Object"
	if sel.Where != nil {
		pushedSQL += " WHERE " + sel.Where.String()
	}
	rel, err := e.SelectRows("scan "+table, e.NextStage(), table, pushedSQL)
	if err != nil {
		return nil, err
	}
	phase := e.Metrics.Phase("local", e.NextStage())
	phase.AddServerRows(int64(len(rel.Rows)))

	items := renderItems(sel.Items)
	switch {
	case len(sel.GroupBy) > 0:
		groupBy := renderExprs(sel.GroupBy)
		rel, err = GroupByLocal(rel, groupBy, items)
	case sel.HasAggregates():
		rel, err = AggregateLocal(rel, items)
	default:
		rel, err = ProjectLocal(rel, items)
	}
	if err != nil {
		return nil, err
	}
	if len(sel.OrderBy) > 0 {
		var parts []string
		for _, o := range sel.OrderBy {
			parts = append(parts, o.String())
		}
		rel, err = SortLocal(rel, strings.Join(parts, ", "))
		if err != nil {
			return nil, err
		}
	}
	if sel.Limit >= 0 {
		rel = LimitLocal(rel, int(sel.Limit))
	}
	return rel, nil
}

// queryColumns collects every column the query references, for projection
// pushdown; returns nil when a * appears anywhere.
func queryColumns(sel *sqlparse.Select) []string {
	var cols []string
	seen := map[string]bool{}
	add := func(names []string) {
		for _, n := range names {
			key := strings.ToLower(n)
			if !seen[key] {
				seen[key] = true
				cols = append(cols, n)
			}
		}
	}
	for _, it := range sel.Items {
		if _, isStar := it.Expr.(*sqlparse.Star); isStar {
			return nil
		}
		add(sqlparse.Columns(it.Expr))
	}
	if sel.Where != nil {
		add(sqlparse.Columns(sel.Where))
	}
	for _, g := range sel.GroupBy {
		add(sqlparse.Columns(g))
	}
	for _, o := range sel.OrderBy {
		// ORDER BY may reference output aliases, which are not table
		// columns; only push genuine table columns that parse as such.
		for _, c := range sqlparse.Columns(o.Expr) {
			if isAlias(sel, c) {
				continue
			}
			add([]string{c})
		}
	}
	return cols
}

func isAlias(sel *sqlparse.Select, name string) bool {
	for _, it := range sel.Items {
		if strings.EqualFold(it.Alias, name) {
			return true
		}
	}
	return false
}

func renderItems(items []sqlparse.SelectItem) string {
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = it.String()
	}
	return strings.Join(parts, ", ")
}

func renderExprs(exprs []sqlparse.Expr) string {
	parts := make([]string, len(exprs))
	for i, e := range exprs {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}

// Explain returns a short description of how Query would execute sql.
func (db *DB) Explain(sql string) (string, error) {
	sel, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	simple := len(sel.GroupBy) == 0 && len(sel.OrderBy) == 0 && !sel.HasAggregates()
	if simple {
		fmt.Fprintf(&b, "S3 Select (full pushdown): %s\n", sel.String())
		return b.String(), nil
	}
	cols := queryColumns(sel)
	proj := "*"
	if len(cols) > 0 {
		proj = strings.Join(cols, ", ")
	}
	fmt.Fprintf(&b, "S3 Select (selection+projection pushdown): SELECT %s FROM S3Object", proj)
	if sel.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", sel.Where.String())
	}
	b.WriteByte('\n')
	if len(sel.GroupBy) > 0 {
		fmt.Fprintf(&b, "server: GROUP BY %s\n", renderExprs(sel.GroupBy))
	} else if sel.HasAggregates() {
		fmt.Fprintf(&b, "server: aggregate\n")
	}
	if len(sel.OrderBy) > 0 {
		fmt.Fprintf(&b, "server: ORDER BY\n")
	}
	if sel.Limit >= 0 {
		fmt.Fprintf(&b, "server: LIMIT %d\n", sel.Limit)
	}
	return b.String(), nil
}
