package engine

import (
	"context"
	"fmt"
	"strings"

	"pushdowndb/internal/expr"
	"pushdowndb/internal/sqlparse"
)

// Query is PushdownDB's SQL front end. Single-table SELECTs (WHERE, GROUP
// BY, ORDER BY, LIMIT) push selection and projection into S3 Select and
// run the rest on the server, as in the paper's Section III "minimal
// optimizer". Multi-table SELECTs (JOIN ... ON, or comma joins with
// equality predicates in WHERE) go through the cost-based join planner
// (plan.go), which picks a Section-V join strategy per join; the chosen
// plan is available from Exec.QueryPlan.
func (db *DB) Query(sql string) (*Relation, *Exec, error) {
	//lint:ignore ctxflow context-free compatibility wrapper; the root context is born here
	return db.QueryContext(context.Background(), sql)
}

// QueryContext is Query with cancellation: canceling ctx aborts the
// query's storage fan-outs promptly.
func (db *DB) QueryContext(ctx context.Context, sql string) (*Relation, *Exec, error) {
	sel, err := sqlparse.Parse(sql)
	if err != nil {
		db.fireQueryHook(ctx, sql, nil, err)
		return nil, nil, err
	}
	rel, e, err := db.runSelectStatement(ctx, sel)
	db.fireQueryHook(ctx, sql, e, err)
	return rel, e, err
}

// runSelectStatement executes an already-parsed SELECT.
func (db *DB) runSelectStatement(ctx context.Context, sel *sqlparse.Select) (*Relation, *Exec, error) {
	e := db.NewExecContext(ctx)
	sp := e.beginSpan("select")
	prev := e.setSpanParent(sp)
	var (
		rel *Relation
		err error
	)
	if len(sel.Joins) > 0 {
		var plan *QueryPlan
		plan, err = e.planJoins(sel)
		if err != nil {
			e.restoreSpanParent(prev)
			endSpanErr(sp, err)
			return nil, nil, err
		}
		e.plan = plan
		rel, err = e.runPlan(plan)
	} else {
		rel, err = e.runSelect(sel)
	}
	e.restoreSpanParent(prev)
	if err != nil {
		endSpanErr(sp, err)
	} else {
		sp.SetInt("rows", int64(len(rel.Rows)))
		sp.End()
	}
	return rel, e, err
}

// ExecStatement runs any supported SQL statement. SELECTs execute exactly
// as QueryContext does; CREATE INDEX and DROP INDEX run the catalog
// operation against the table's storage backend and return a nil relation
// and execution (index maintenance is dataset preparation, not a metered
// query).
func (db *DB) ExecStatement(ctx context.Context, sql string) (*Relation, *Exec, error) {
	rel, e, err := db.execStatement(ctx, sql)
	db.fireQueryHook(ctx, sql, e, err)
	return rel, e, err
}

func (db *DB) execStatement(ctx context.Context, sql string) (*Relation, *Exec, error) {
	st, err := sqlparse.ParseStatement(sql)
	if err != nil {
		return nil, nil, err
	}
	switch t := st.(type) {
	case *sqlparse.Select:
		return db.runSelectStatement(ctx, t)
	case *sqlparse.Explain:
		return db.runExplain(ctx, t)
	case *sqlparse.CreateIndex:
		return nil, nil, db.CreateNamedIndex(ctx, t.Name, t.Table, t.Column)
	case *sqlparse.DropIndex:
		if t.Name != "" {
			return nil, nil, db.DropNamedIndex(ctx, t.Table, t.Name)
		}
		return nil, nil, db.DropIndex(ctx, t.Table, t.Column)
	default:
		return nil, nil, fmt.Errorf("engine: unsupported statement %T", st)
	}
}

// Plan parses sql and builds its execution plan without running it. For
// join queries the returned Exec has already accrued the planning cost
// (header and statistics probes); single-table queries plan for free and
// return a nil QueryPlan (they bypass the join planner).
func (db *DB) Plan(sql string) (*QueryPlan, *Exec, error) {
	//lint:ignore ctxflow context-free compatibility wrapper; the root context is born here
	return db.PlanContext(context.Background(), sql)
}

// PlanContext is Plan with cancellation: the planner's header and
// statistics probes run under ctx.
func (db *DB) PlanContext(ctx context.Context, sql string) (*QueryPlan, *Exec, error) {
	sel, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	return db.planParsed(ctx, sel)
}

func (db *DB) planParsed(ctx context.Context, sel *sqlparse.Select) (*QueryPlan, *Exec, error) {
	e := db.NewExecContext(ctx)
	if len(sel.Joins) == 0 {
		return nil, e, nil
	}
	plan, err := e.planJoins(sel)
	if err != nil {
		return nil, nil, err
	}
	e.plan = plan
	return plan, e, nil
}

func (e *Exec) runSelect(sel *sqlparse.Select) (*Relation, error) {
	table := sel.Table
	// Access-path planning: when the table has a live secondary index that
	// resolves part of the WHERE clause, weigh IndexScan against the
	// pushed filtered scan and the baseline load (metered stats probes,
	// cached on the DB). Unindexed tables skip this entirely.
	ap, err := e.planAccess(sel)
	if err != nil {
		return nil, err
	}
	if ap != nil {
		e.access = ap
		switch ap.Strategy {
		case StrategyIndexScan:
			return e.runIndexScanSelect(sel, ap)
		case StrategyBaseline:
			rel, err := e.ServerSideFilter(table, sqlparse.StripQualifiers(sel.Where).String(), "")
			if err != nil {
				return nil, err
			}
			return e.finishLocal(rel, sel)
		}
		// StrategyFiltered: the legacy pushed scan below.
	}

	simple := len(sel.GroupBy) == 0 && len(sel.OrderBy) == 0 && !sel.HasAggregates()
	rel, err := e.SelectRows("scan "+table, e.NextStage(), table, pushedScanSQL(sel))
	if err != nil {
		return nil, err
	}
	if simple {
		// Fully pushable: selection, projection and LIMIT all went to S3.
		if sel.Limit >= 0 {
			rel = LimitLocal(rel, int(sel.Limit))
		}
		return rel, nil
	}
	return e.finishLocal(rel, sel)
}

// pushedScanSQL renders the S3 Select SQL the pushed-scan path sends for a
// single-table query: the whole statement for fully pushable selects,
// selection plus referenced-column projection otherwise. Explain, the
// access planner's result-cache residency check and execution all use this
// one rendering, so they can never disagree about what the cache holds.
func pushedScanSQL(sel *sqlparse.Select) string {
	simple := len(sel.GroupBy) == 0 && len(sel.OrderBy) == 0 && !sel.HasAggregates()
	if simple {
		pushed := &sqlparse.Select{
			Items: sel.Items, Table: "S3Object",
			Where: sel.Where, Limit: sel.Limit,
		}
		return pushed.String()
	}
	cols := queryColumns(sel)
	proj := "*"
	if len(cols) > 0 {
		proj = strings.Join(cols, ", ")
	}
	sql := "SELECT " + proj + " FROM S3Object"
	if sel.Where != nil {
		sql += " WHERE " + sel.Where.String()
	}
	return sql
}

// finishLocal runs the server-side tail of a query over an already-scanned
// (or joined) relation: grouping/aggregation/projection, ordering and
// limiting, with the row work accounted on the virtual clock.
func (e *Exec) finishLocal(rel *Relation, sel *sqlparse.Select) (*Relation, error) {
	sp := e.beginSpan("local")
	sp.SetInt("rows_in", int64(len(rel.Rows)))
	defer sp.End()
	prevParent := e.setSpanParent(sp)
	defer e.restoreSpanParent(prevParent)
	phase := e.Metrics.Phase("local", e.NextStage())
	phase.AddServerRows(int64(len(rel.Rows)))

	var err error
	items := renderItems(sel.Items)
	workers := e.workers()
	sorted := false
	switch {
	case len(sel.GroupBy) > 0:
		groupBy := renderExprs(sel.GroupBy)
		// ORDER BY may reference group-by expressions the select list
		// drops; carry them through the grouping as hidden trailing items
		// and strip them after the sort.
		augItems, orderBy, hidden := groupSortPlan(sel, items)
		rel, err = e.groupByLocal(rel, groupBy, augItems, workers)
		if err != nil {
			return nil, err
		}
		if len(sel.OrderBy) > 0 {
			rel, err = SortLocal(rel, orderBy)
			if err != nil {
				return nil, err
			}
			if hidden > 0 {
				rel = dropTrailingCols(rel, hidden)
			}
			sorted = true
		}
	case sel.HasAggregates():
		rel, err = e.aggregateLocal(rel, items, workers)
	default:
		// Sort before projecting: the projection may drop a column ORDER
		// BY references (queryColumns pushed it into the scan precisely so
		// it is available here). Aliases are rewritten to their underlying
		// expressions, which the pre-projection relation can evaluate; the
		// projection preserves row order.
		if len(sel.OrderBy) > 0 {
			rel, err = SortLocal(rel, orderByOverInput(sel))
			if err != nil {
				return nil, err
			}
			sorted = true
		}
		rel, err = e.projectLocal(rel, items, workers)
	}
	if err != nil {
		return nil, err
	}
	if len(sel.OrderBy) > 0 && !sorted {
		var parts []string
		for _, o := range sel.OrderBy {
			parts = append(parts, o.String())
		}
		rel, err = SortLocal(rel, strings.Join(parts, ", "))
		if err != nil {
			return nil, err
		}
	}
	if sel.Limit >= 0 {
		rel = LimitLocal(rel, int(sel.Limit))
	}
	return rel, nil
}

// groupSortPlan prepares a grouped query's projection for its ORDER BY.
// Sort expressions the output relation can evaluate (references resolve
// to select-list output names, no aggregates) sort directly; everything
// else — typically a group-by column the select list drops — becomes a
// hidden trailing item evaluated by the grouping and stripped after the
// sort. Returns the augmented select items, the ORDER BY string over the
// grouped output, and the hidden column count.
func groupSortPlan(sel *sqlparse.Select, items string) (augItems, orderBy string, hidden int) {
	outNames := map[string]bool{}
	for _, it := range sel.Items {
		outNames[strings.ToLower(itemName(it))] = true
	}
	augItems = items
	var parts []string
	next := 0
	for _, o := range sel.OrderBy {
		key := o.Expr.String()
		direct := len(expr.CollectAggregates([]sqlparse.Expr{o.Expr})) == 0
		if direct {
			for _, c := range sqlparse.Columns(o.Expr) {
				if !outNames[strings.ToLower(c)] {
					direct = false
					break
				}
			}
		}
		if !direct {
			var name string
			for ; ; next++ {
				name = fmt.Sprintf("sortkey_%d", next)
				if !outNames[name] {
					break
				}
			}
			outNames[name] = true
			augItems += ", " + key + " AS " + name
			hidden++
			key = name
		}
		if o.Desc {
			key += " DESC"
		}
		parts = append(parts, key)
	}
	return augItems, strings.Join(parts, ", "), hidden
}

// dropTrailingCols strips the last n columns of rel (the hidden sort
// keys groupSortPlan appended).
func dropTrailingCols(rel *Relation, n int) *Relation {
	keep := len(rel.Cols) - n
	out := &Relation{Cols: rel.Cols[:keep], Rows: make([]Row, len(rel.Rows))}
	for i, r := range rel.Rows {
		out.Rows[i] = r[:keep]
	}
	return out
}

// orderByOverInput renders sel's ORDER BY for evaluation over the
// pre-projection relation: column references that name select-list
// aliases — bare or nested inside larger expressions — are replaced by
// the aliased expressions.
func orderByOverInput(sel *sqlparse.Select) string {
	subst := func(e sqlparse.Expr) sqlparse.Expr {
		c, ok := e.(*sqlparse.Column)
		if !ok || c.Qualifier != "" {
			return e
		}
		for _, it := range sel.Items {
			if it.Alias != "" && strings.EqualFold(it.Alias, c.Name) {
				return it.Expr
			}
		}
		return e
	}
	parts := make([]string, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		s := sqlparse.Rewrite(o.Expr, subst).String()
		if o.Desc {
			s += " DESC"
		}
		parts[i] = s
	}
	return strings.Join(parts, ", ")
}

// queryColumns collects every column the query references, for projection
// pushdown; returns nil when a * appears anywhere.
func queryColumns(sel *sqlparse.Select) []string {
	var cols []string
	seen := map[string]bool{}
	add := func(names []string) {
		for _, n := range names {
			key := strings.ToLower(n)
			if !seen[key] {
				seen[key] = true
				cols = append(cols, n)
			}
		}
	}
	for _, it := range sel.Items {
		if _, isStar := it.Expr.(*sqlparse.Star); isStar {
			return nil
		}
		add(sqlparse.Columns(it.Expr))
	}
	if sel.Where != nil {
		add(sqlparse.Columns(sel.Where))
	}
	for _, g := range sel.GroupBy {
		add(sqlparse.Columns(g))
	}
	for _, o := range sel.OrderBy {
		// ORDER BY may reference output aliases, which are not table
		// columns; only push genuine table columns that parse as such.
		for _, c := range sqlparse.Columns(o.Expr) {
			if isAlias(sel, c) {
				continue
			}
			add([]string{c})
		}
	}
	return cols
}

func isAlias(sel *sqlparse.Select, name string) bool {
	for _, it := range sel.Items {
		if strings.EqualFold(it.Alias, name) {
			return true
		}
	}
	return false
}

func renderItems(items []sqlparse.SelectItem) string {
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = it.String()
	}
	return strings.Join(parts, ", ")
}

func renderExprs(exprs []sqlparse.Expr) string {
	parts := make([]string, len(exprs))
	for i, e := range exprs {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}

// Explain returns a description of how Query would execute sql: the plan
// tree with per-join strategy decisions for multi-table queries, or the
// pushdown split for single-table ones. Planning a join query issues the
// planner's (cheap) header and statistics probes.
func (db *DB) Explain(sql string) (string, error) {
	//lint:ignore ctxflow context-free compatibility wrapper; the root context is born here
	return db.ExplainContext(context.Background(), sql)
}

// ExplainContext is Explain with cancellation: the planner's probes and
// the cached-scan residency check honor ctx, so a caller's deadline (e.g.
// the server's per-request timeout) cuts a stalled backend listing instead
// of hanging Explain.
func (db *DB) ExplainContext(ctx context.Context, sql string) (string, error) {
	sel, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	return db.explainSelect(ctx, sel)
}

// explainSelect renders the plan of an already-parsed SELECT — the shared
// body of ExplainContext and the EXPLAIN statement.
func (db *DB) explainSelect(ctx context.Context, sel *sqlparse.Select) (string, error) {
	if len(sel.Joins) > 0 {
		plan, _, err := db.planParsed(ctx, sel)
		if err != nil {
			return "", err
		}
		return plan.String(), nil
	}
	var b strings.Builder
	// With a result cache configured, report how much of the pushed scan is
	// already resident ("cached scan") so a warm repeat's near-zero storage
	// bill is visible before running.
	cachedScan := func(pushedSQL string) string {
		frac := db.cachedScanFrac(ctx, sel.Table, pushedSQL)
		if frac <= 0 {
			return ""
		}
		return fmt.Sprintf("  [cached scan %.0f%%]", 100*frac)
	}
	// Access-path planning for indexed tables (issues the planner's metered
	// header/stats probes, like join Explain does).
	ap, err := db.NewExecContext(ctx).planAccess(sel)
	if err != nil {
		return "", err
	}
	if ap != nil {
		b.WriteString(ap.String())
	}
	simple := len(sel.GroupBy) == 0 && len(sel.OrderBy) == 0 && !sel.HasAggregates()
	pushedSQL := pushedScanSQL(sel)
	switch {
	case ap != nil && ap.Strategy == StrategyIndexScan:
		fmt.Fprintf(&b, "IndexScan: probe index %s(%s), fetch ~%d ranges in ~%d multi-range GETs, re-filter %s locally\n",
			sel.Table, ap.Index.Entry.Column, ap.EstRanges, ap.EstRangedGets, sel.Where.String())
	case ap != nil && ap.Strategy == StrategyBaseline:
		fmt.Fprintf(&b, "server-side baseline: GET every partition of %s, filter %s locally\n",
			sel.Table, sel.Where.String())
	case simple:
		fmt.Fprintf(&b, "S3 Select (full pushdown): %s%s\n", sel.String(), cachedScan(pushedSQL))
		return b.String(), nil
	default:
		fmt.Fprintf(&b, "S3 Select (selection+projection pushdown): %s%s\n", pushedSQL, cachedScan(pushedSQL))
	}
	if len(sel.GroupBy) > 0 {
		fmt.Fprintf(&b, "server: GROUP BY %s\n", renderExprs(sel.GroupBy))
	} else if sel.HasAggregates() {
		fmt.Fprintf(&b, "server: aggregate\n")
	}
	if len(sel.OrderBy) > 0 {
		fmt.Fprintf(&b, "server: ORDER BY\n")
	}
	if sel.Limit >= 0 {
		fmt.Fprintf(&b, "server: LIMIT %d\n", sel.Limit)
	}
	return b.String(), nil
}
