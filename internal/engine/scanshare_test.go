package engine

import (
	"sync"
	"testing"
	"time"

	"pushdowndb/internal/s3api"
	"pushdowndb/internal/scanshare"
)

// TestScanSharingDifferential drives N concurrent queries — some identical,
// some merge-compatible scans on the same table — through a scan-sharing DB
// and checks that every relation matches the answer the same query gets on a
// plain DB, while the shared backend saw strictly fewer Selects than the
// plain one. Run under -race this also exercises the coordinator's
// publish/handoff paths from many goroutines.
func TestScanSharingDifferential(t *testing.T) {
	st := newTestStore(t)

	// cust and ords have no secondary indexes, so these queries always take
	// the pushed-scan path where sharing applies.
	queries := []string{
		"SELECT ck, bal FROM cust WHERE bal > 0",
		"SELECT ck, bal FROM cust WHERE bal > 0",
		"SELECT ck, bal FROM cust WHERE bal > 0",
		"SELECT ok, price FROM ords WHERE price < 100",
		"SELECT ok, price FROM ords WHERE price > 400",
		"SELECT ck FROM ords WHERE ok < 50",
		"SELECT COUNT(*) FROM cust",
		"SELECT COUNT(*) FROM cust",
	}

	direct := openTestDB(t, st)
	directCounting := s3api.NewCounting(s3api.NewInProc(st))
	directDB, err := Open(testBucket, WithBackend("s3sim", directCounting))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*Relation, len(queries))
	for i, q := range queries {
		rel, _, err := direct.Query(q)
		if err != nil {
			t.Fatalf("direct %q: %v", q, err)
		}
		want[i] = rel
		// Re-run on the counting DB purely to measure how many Selects the
		// workload costs without sharing.
		if _, _, err := directDB.Query(q); err != nil {
			t.Fatalf("direct counting %q: %v", q, err)
		}
	}

	counting := s3api.NewCounting(s3api.NewInProc(st))
	shared, err := Open(testBucket,
		WithBackend("s3sim", counting),
		WithScanSharing(scanshare.Config{Window: 500 * time.Millisecond}),
	)
	if err != nil {
		t.Fatal(err)
	}

	got := make([]*Relation, len(queries))
	errs := make([]error, len(queries))
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q string) {
			defer wg.Done()
			<-start
			got[i], _, errs[i] = shared.Query(q)
		}(i, q)
	}
	close(start)
	wg.Wait()

	for i, q := range queries {
		if errs[i] != nil {
			t.Fatalf("shared %q: %v", q, errs[i])
		}
		sameRows(t, q, want[i], got[i])
	}

	if s, d := counting.Selects(), directCounting.Selects(); s >= d {
		t.Fatalf("shared backend saw %d Selects, want fewer than the %d an unshared run issues", s, d)
	}
	stats, ok := shared.ScanShareStats()
	if !ok {
		t.Fatal("ScanShareStats: not enabled on a sharing DB")
	}
	if stats.Coalesced == 0 {
		t.Fatalf("no requests coalesced: %+v", stats)
	}
	if stats.BackendSelects >= stats.Selects {
		t.Fatalf("backend selects %d not below coordinated selects %d", stats.BackendSelects, stats.Selects)
	}
	if _, ok := direct.ScanShareStats(); ok {
		t.Fatal("ScanShareStats: reported enabled on a plain DB")
	}
}

// TestScanSharingComposesWithResultCache checks the cache/share interplay:
// concurrent misses share one refill, only the leader fills the cache, the
// other sharers are recorded as in-flight dedups, and a later identical
// query is a pure cache hit that never reaches the coordinator.
func TestScanSharingComposesWithResultCache(t *testing.T) {
	st := newTestStore(t)
	counting := s3api.NewCounting(s3api.NewInProc(st))
	db, err := Open(testBucket,
		WithBackend("s3sim", counting),
		WithResultCache(64<<20),
		WithScanSharing(scanshare.Config{Window: 500 * time.Millisecond}),
	)
	if err != nil {
		t.Fatal(err)
	}

	const q = "SELECT ck, bal FROM cust WHERE bal > 0"
	const clients = 4
	rels := make([]*Relation, clients)
	errs := make([]error, clients)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			rels[i], _, errs[i] = db.Query(q)
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		sameRows(t, q, rels[0], rels[i])
	}

	cs, ok := db.ResultCacheStats()
	if !ok {
		t.Fatal("result cache not enabled")
	}
	if cs.InflightDedup == 0 {
		t.Fatalf("expected in-flight dedups from concurrent misses, got stats %+v", cs)
	}

	before := db.scanShare.Stats().Selects
	if _, _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	cs2, _ := db.ResultCacheStats()
	if cs2.Hits <= cs.Hits {
		t.Fatalf("warm re-run did not hit the cache: %+v -> %+v", cs, cs2)
	}
	if after := db.scanShare.Stats().Selects; after != before {
		t.Fatalf("cache hit reached the coordinator: selects %d -> %d", before, after)
	}

	// Invalidation must split shares from the stale generation: the next
	// query refetches rather than reusing a stale pass or cache entry.
	selectsBefore := counting.Selects()
	db.InvalidateTable("cust")
	if _, _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if counting.Selects() <= selectsBefore {
		t.Fatal("query after InvalidateTable did not reach the backend")
	}
}
