package engine

import (
	"context"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/localfs"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/s3http"
	"pushdowndb/internal/store"
)

// Cross-backend differential suite: the full query corpus must produce
// byte-identical results on the in-process, localfs and s3http backends,
// cold and warm (result cache on), and a warm repeat must reach no backend
// with a Select request. The engine claims backend independence
// (s3api.Backend + the conformance suite) and worker-count-independent
// determinism; this is the end-to-end check of both.

const diffBucket = "diff"

// diffQueries is the corpus: filters, group-bys, top-K, 2- and 3-table
// joins, and NULL/NaN edge cases. ordered marks queries whose row order is
// part of the contract (ORDER BY / LIMIT); unordered results are compared
// as sorted multisets.
var diffQueries = []struct {
	name    string
	sql     string
	ordered bool
}{
	{"filter-eq-zip", "SELECT pk, pname FROM p WHERE zip = '00501'", false},
	{"filter-range", "SELECT pk, score FROM p WHERE score >= 10 AND score < 60", false},
	{"filter-like-in", "SELECT pk, pname FROM p WHERE pname LIKE 'A%' OR zip IN ('00501', '99999')", false},
	{"filter-not-between", "SELECT pk FROM p WHERE NOT (score BETWEEN 20 AND 80)", false},
	{"proj-star", "SELECT * FROM p WHERE pk < 5", false},
	{"null-group", "SELECT ok FROM ord WHERE tag IS NULL", false},
	{"not-null-group", "SELECT ok FROM ord WHERE tag IS NOT NULL AND amount >= 50", false},
	{"groupby-count-sum", "SELECT zip, COUNT(*) AS n, SUM(score) AS s FROM p GROUP BY zip ORDER BY zip", true},
	{"groupby-null-key", "SELECT tag, COUNT(*) AS n, MIN(amount) AS lo, MAX(amount) AS hi, AVG(amount) AS av FROM ord GROUP BY tag ORDER BY n DESC, tag", true},
	{"topk-desc", "SELECT pk, score FROM p ORDER BY score DESC, pk LIMIT 5", true},
	{"topk-asc-nan", "SELECT pk, score FROM p ORDER BY score, pk LIMIT 8", true},
	{"nan-total-order", "SELECT pk, score FROM p ORDER BY score, pk", true},
	{"limit-pushdown", "SELECT pk FROM p WHERE score >= 0 LIMIT 3", true},
	{"agg-empty-input", "SELECT COUNT(*) AS n, SUM(score) AS s FROM p WHERE pk > 1000000", false},
	{"join2-groupby", "SELECT pname, SUM(amount) AS total FROM p JOIN ord ON p.pk = ord.pk GROUP BY pname ORDER BY pname", true},
	{"join2-filters", "SELECT COUNT(*) AS n FROM p JOIN ord ON p.pk = ord.pk WHERE score >= 50 AND amount < 100", false},
	{"join3-groupby", "SELECT pname, COUNT(*) AS n FROM p JOIN ord ON p.pk = ord.pk JOIN item ON ord.ok = item.ok WHERE qty >= 1 GROUP BY pname ORDER BY pname", true},
	{"join3-topk", "SELECT pname, qty FROM p JOIN ord ON p.pk = ord.pk JOIN item ON ord.ok = item.ok ORDER BY qty DESC, pname, ik LIMIT 6", true},
}

// diffRows builds the shared dataset, deliberately nasty: NULLs (empty CSV
// fields), NaN scores, numeric-looking zip strings that must not round-trip
// as numbers, and names containing CSV metacharacters.
func diffLoad(t *testing.T, put s3api.Putter) {
	t.Helper()
	ctx := context.Background()
	people := [][]string{
		{"1", "Alice", "90.5", "00501"},
		{"2", "Bob", "NaN", "10001"},
		{"3", `Smith, Al`, "55", "00501"},
		{"4", `O"Hara`, "-12.25", "99999"},
		{"5", "Ann", "", "10001"}, // NULL score
		{"6", "Ada", "10", ""},    // NULL zip
		{"7", "Burt", "60", "10001"},
		{"8", "Cleo", "0", "00501"},
		{"9", "Ava", "NaN", "99999"},
		{"10", "Dan", "33.125", "10001"},
	}
	orders := [][]string{
		{"100", "1", "50", "web"},
		{"101", "1", "149.99", ""},
		{"102", "2", "75", "web"},
		{"103", "3", "20", "store"},
		{"104", "3", "99.5", ""},
		{"105", "5", "10", "store"},
		{"106", "7", "500", "web"},
		{"107", "8", "1", ""},
		{"108", "10", "42", "phone"},
	}
	items := [][]string{
		{"1000", "100", "2"},
		{"1001", "100", "1"},
		{"1002", "102", "5"},
		{"1003", "103", "3"},
		{"1004", "106", "9"},
		{"1005", "106", "4"},
		{"1006", "108", "7"},
	}
	for _, tbl := range []struct {
		name   string
		header []string
		rows   [][]string
		parts  int
	}{
		{"p", []string{"pk", "pname", "score", "zip"}, people, 3},
		{"ord", []string{"ok", "pk", "amount", "tag"}, orders, 2},
		{"item", []string{"ik", "ok", "qty"}, items, 2},
	} {
		if err := PartitionTableTo(ctx, put, diffBucket, tbl.name, tbl.header, tbl.rows, tbl.parts); err != nil {
			t.Fatal(err)
		}
	}
}

// diffBackends builds the three backend implementations, each seeded with
// the identical dataset and wrapped in a request counter.
func diffBackends(t *testing.T) map[string]*s3api.Counting {
	t.Helper()
	out := map[string]*s3api.Counting{}

	inproc := s3api.NewInProc(store.New())
	diffLoad(t, inproc)
	out["inproc"] = s3api.NewCounting(inproc)

	fs := localfs.New(t.TempDir())
	diffLoad(t, fs)
	out["localfs"] = s3api.NewCounting(fs)

	st := store.New()
	srv := httptest.NewServer(s3http.NewServer(st))
	t.Cleanup(srv.Close)
	client := s3http.NewClient(srv.URL, srv.Client())
	diffLoad(t, client)
	out["s3http"] = s3api.NewCounting(client)

	return out
}

// render canonicalizes a relation: exact row order for ordered queries, a
// sorted multiset otherwise (group/join output order is deterministic per
// engine build, but it is not part of the SQL contract).
func render(rel *Relation, ordered bool) string {
	lines := make([]string, len(rel.Rows))
	for i, row := range rel.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		lines[i] = strings.Join(parts, "|")
	}
	if !ordered {
		sort.Strings(lines)
	}
	return strings.Join(rel.Cols, "|") + "\n" + strings.Join(lines, "\n")
}

func TestDifferentialAcrossBackends(t *testing.T) {
	backends := diffBackends(t)
	// reference[query] = (rendered result, backend that produced it)
	type ref struct{ out, from string }
	reference := map[string]ref{}

	for name, counting := range backends {
		t.Run(name, func(t *testing.T) {
			db, err := Open(diffBucket,
				WithBackend(name, counting),
				WithResultCache(testCacheBudget))
			if err != nil {
				t.Fatal(err)
			}
			var warmHits int64
			for _, q := range diffQueries {
				cold, _, err := db.Query(q.sql)
				if err != nil {
					t.Fatalf("%s (cold): %v", q.name, err)
				}
				coldOut := render(cold, q.ordered)

				selectsBefore := counting.Selects()
				warm, e, err := db.Query(q.sql)
				if err != nil {
					t.Fatalf("%s (warm): %v", q.name, err)
				}
				if warmOut := render(warm, q.ordered); warmOut != coldOut {
					t.Errorf("%s: warm result differs from cold on %s\ncold:\n%s\nwarm:\n%s",
						q.name, name, coldOut, warmOut)
				}
				if d := counting.Selects() - selectsBefore; d != 0 {
					t.Errorf("%s: warm repeat issued %d backend Select requests on %s, want 0", q.name, d, name)
				}
				// Baseline-planned joins scan with plain GETs and owe the
				// select cache nothing, so hits are asserted in aggregate.
				hits, _ := e.Metrics.CacheTotals()
				warmHits += hits

				if r, ok := reference[q.name]; !ok {
					reference[q.name] = ref{out: coldOut, from: name}
				} else if r.out != coldOut {
					t.Errorf("%s: result differs between backends\n%s:\n%s\n%s:\n%s",
						q.name, r.from, r.out, name, coldOut)
				}
			}
			if warmHits == 0 {
				t.Errorf("no warm query on %s was served from the result cache", name)
			}
		})
	}
}

// TestDifferentialIndexedQueries runs index-eligible queries identically
// on all three backends, with the index built through each backend's own
// write path. For every query both the planner-chosen execution and the
// forced IndexScan path (index probe → coalesced multi-range GETs → local
// re-filter) must agree with each other and across backends, and a warm
// planner-path repeat must reach no backend with a Select request — index
// probes are select-cached like any other pushed scan. The dataset is
// deliberately the nasty differential one: NULLs, quoted names, numeric-
// looking strings.
func TestDifferentialIndexedQueries(t *testing.T) {
	ctx := context.Background()
	queries := []struct {
		name, sql              string
		column, pred, projcols string
	}{
		{"idx-eq-int", "SELECT pk, pname FROM p WHERE pk = 7", "pk", "pk = 7", "pk, pname"},
		{"idx-range-int", "SELECT pk, score FROM p WHERE pk <= 4", "pk", "pk <= 4", "pk, score"},
		{"idx-eq-string", "SELECT pk, pname FROM p WHERE zip = '00501'", "zip", "zip = '00501'", "pk, pname"},
		{"idx-residual", "SELECT pk FROM p WHERE pk = 3 AND score >= 10", "pk", "pk = 3 AND score >= 10", "pk"},
	}
	type ref struct{ out, from string }
	reference := map[string]ref{}
	for name, counting := range diffBackends(t) {
		t.Run(name, func(t *testing.T) {
			db, err := Open(diffBucket,
				WithBackend(name, counting),
				WithResultCache(testCacheBudget),
				WithScale(cloudsim.Scale{DataRatio: 50000, PartRatio: 8}))
			if err != nil {
				t.Fatal(err)
			}
			for _, col := range []string{"pk", "zip"} {
				if err := db.CreateIndex(ctx, "p", col); err != nil {
					t.Fatalf("CreateIndex(p, %s) on %s: %v", col, name, err)
				}
			}
			for _, q := range queries {
				cold, e, err := db.Query(q.sql)
				if err != nil {
					t.Fatalf("%s (cold): %v", q.name, err)
				}
				coldOut := render(cold, false)
				// The planner saw the index whatever it chose to run.
				if ap := e.Access(); ap == nil || ap.Index == nil {
					t.Errorf("%s: no index candidate considered on %s", q.name, name)
				}
				// Forced IndexScan must produce the identical relation.
				forced, gets, err := db.NewExec().IndexScanFilter("p", q.column, q.pred, q.projcols)
				if err != nil {
					t.Fatalf("%s (forced index): %v", q.name, err)
				}
				if forcedOut := render(forced, false); forcedOut != coldOut {
					t.Errorf("%s: forced IndexScan differs from planned query on %s\nplanned:\n%s\nindex:\n%s",
						q.name, name, coldOut, forcedOut)
				}
				if len(forced.Rows) > 0 && gets == 0 {
					t.Errorf("%s: forced IndexScan issued no multi-range GETs on %s", q.name, name)
				}
				selectsBefore := counting.Selects()
				warm, _, err := db.Query(q.sql)
				if err != nil {
					t.Fatalf("%s (warm): %v", q.name, err)
				}
				if warmOut := render(warm, false); warmOut != coldOut {
					t.Errorf("%s: warm differs from cold on %s", q.name, name)
				}
				if d := counting.Selects() - selectsBefore; d != 0 {
					t.Errorf("%s: warm repeat issued %d Selects on %s, want 0", q.name, d, name)
				}
				if r, ok := reference[q.name]; !ok {
					reference[q.name] = ref{out: coldOut, from: name}
				} else if r.out != coldOut {
					t.Errorf("%s: result differs between backends\n%s:\n%s\n%s:\n%s",
						q.name, r.from, r.out, name, coldOut)
				}
			}
		})
	}
}
