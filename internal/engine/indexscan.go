package engine

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/csvx"
	"pushdowndb/internal/index"
	"pushdowndb/internal/obs"
	"pushdowndb/internal/selectengine"
	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/value"
)

// The IndexScan access path (paper Section IV-A, grown into a planner
// strategy): resolve the indexable part of a table's predicate against the
// per-partition index objects with one pushed S3 Select each, coalesce the
// returned byte ranges, fetch them with batched multi-range GETs, and
// re-apply the full filter over the decoded candidate rows on the server.
// The re-filter makes gap coalescing safe — a merged range may drag a few
// unmatched neighbour rows along — and costs one local pass the cost model
// prices identically (cloudsim.EstimateIndexScan replays this exact
// request pattern).

// IndexCandidate is a planner-selected index for one table scan: the
// manifest entry plus the conjunction of the scan's filter conjuncts the
// index can resolve.
type IndexCandidate struct {
	Entry index.Entry
	// Pred is the AND of the indexable conjuncts, in data-column form.
	Pred sqlparse.Expr
	// MatchedRows is how many data rows Pred keeps (stats probe).
	MatchedRows int64
}

// indexCandidate inspects a table's validated manifest for an index that
// can resolve part of the filter. When several indexed columns appear in
// the filter, the lexically first column wins (deterministic plans).
func (db *DB) indexCandidate(ctx context.Context, table string, filter sqlparse.Expr) *IndexCandidate {
	if filter == nil || !hasComparableConjunct(filter) {
		return nil
	}
	man := db.indexManifest(ctx, table)
	if len(man.Indexes) == 0 {
		return nil
	}
	conjs := sqlparse.Conjuncts(sqlparse.StripQualifiers(filter))
	cols := make([]string, 0, len(man.Indexes))
	for col := range man.Indexes {
		cols = append(cols, col)
	}
	sort.Strings(cols)
	for _, col := range cols {
		ent := man.Indexes[col]
		if pred := sqlparse.AndAll(indexableConjuncts(conjs, ent.Column)); pred != nil {
			return &IndexCandidate{Entry: ent, Pred: pred}
		}
	}
	return nil
}

// hasComparableConjunct cheaply pre-screens a filter for any shape an
// index could possibly serve, so unindexed-looking queries skip the
// manifest read entirely.
func hasComparableConjunct(filter sqlparse.Expr) bool {
	for _, c := range sqlparse.Conjuncts(filter) {
		switch c.(type) {
		case *sqlparse.Binary, *sqlparse.Between, *sqlparse.In:
			return true
		}
	}
	return false
}

// indexableConjuncts returns the conjuncts an index on column can resolve:
// comparisons, BETWEEN and IN over exactly that column with literal
// operands. Everything else stays in the residual filter.
func indexableConjuncts(conjs []sqlparse.Expr, column string) []sqlparse.Expr {
	var out []sqlparse.Expr
	for _, c := range conjs {
		if isIndexableConjunct(c, column) {
			out = append(out, c)
		}
	}
	return out
}

func isIndexableConjunct(e sqlparse.Expr, column string) bool {
	isCol := func(x sqlparse.Expr) bool {
		c, ok := x.(*sqlparse.Column)
		return ok && strings.EqualFold(c.Name, column)
	}
	isLit := func(x sqlparse.Expr) bool {
		_, ok := x.(*sqlparse.Literal)
		return ok
	}
	switch t := e.(type) {
	case *sqlparse.Binary:
		switch t.Op {
		case sqlparse.OpEq, sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpGt, sqlparse.OpGe:
		default:
			return false
		}
		return (isCol(t.L) && isLit(t.R)) || (isLit(t.L) && isCol(t.R))
	case *sqlparse.Between:
		return !t.Not && isCol(t.X) && isLit(t.Lo) && isLit(t.Hi)
	case *sqlparse.In:
		if t.Not || !isCol(t.X) {
			return false
		}
		for _, x := range t.List {
			if !isLit(x) {
				return false
			}
		}
		return true
	}
	return false
}

// indexValuePred rewrites a data-column predicate into the index objects'
// schema: every reference to the indexed column becomes the "value"
// column.
func indexValuePred(pred sqlparse.Expr) sqlparse.Expr {
	return sqlparse.Rewrite(pred, func(n sqlparse.Expr) sqlparse.Expr {
		if _, ok := n.(*sqlparse.Column); ok {
			return &sqlparse.Column{Name: "value"}
		}
		return n
	})
}

// indexRangeProbe is hop 1 of every index access path (the manifest-backed
// IndexScan and the legacy Fig. 1 IndexFilter): it lists the data and
// index partitions, checks they are aligned, pushes the offsets select
// against every index object (result-cache aware via selectOnParts) and
// parses the matching byte ranges, per data partition and in index order.
func (e *Exec) indexRangeProbe(phase *cloudsim.Phase, sp *obs.Span, table, idxTable, valuePred string) (dataKeys []string, partRanges [][][2]int64, err error) {
	dataKeys, err = e.parts(table)
	if err != nil {
		return nil, nil, err
	}
	idxKeys, err := e.parts(idxTable)
	if err != nil {
		return nil, nil, err
	}
	if len(idxKeys) != len(dataKeys) {
		return nil, nil, fmt.Errorf("engine: index %s has %d partitions, table %s has %d",
			idxTable, len(idxKeys), table, len(dataKeys))
	}
	sql := "SELECT first_byte_offset, last_byte_offset FROM S3Object WHERE " + valuePred
	results, err := e.selectOnParts(phase, sp, idxTable, sql, nil)
	if err != nil {
		return nil, nil, err
	}
	partRanges = make([][][2]int64, len(results))
	for i, res := range results {
		ranges := make([][2]int64, 0, len(res.Rows))
		for _, r := range res.Rows {
			if len(r) != 2 {
				return nil, nil, fmt.Errorf("engine: bad index entry %v in %s", r, idxKeys[i])
			}
			first, err1 := strconv.ParseInt(r[0], 10, 64)
			last, err2 := strconv.ParseInt(r[1], 10, 64)
			if err1 != nil || err2 != nil {
				return nil, nil, fmt.Errorf("engine: bad index entry %v in %s", r, idxKeys[i])
			}
			ranges = append(ranges, [2]int64{first, last})
		}
		partRanges[i] = ranges
	}
	return dataKeys, partRanges, nil
}

// indexFetch runs the two-hop index access: the pushed probe against the
// index objects, then coalesced multi-range fetches of the matching data
// rows. It returns the candidate relation (full-width rows, superset of
// the matches — coalescing gaps may add neighbours), the number of
// multi-range GET requests issued, and the fetch stage (hash joins overlap
// it). Callers must re-apply their filter over the candidates.
func (e *Exec) indexFetch(table string, cand *IndexCandidate) (*Relation, int64, int, error) {
	idxTable := index.Table(table, cand.Entry.Column)

	// Hop 1: predicate pushed to the index objects, plus the data table's
	// header from a tiny ranged GET.
	stage1 := e.NextStage()
	psp := e.beginSpan("index select " + table)
	probe := e.tablePhase("index select "+table, stage1, idxTable)
	dataKeys, partRanges, err := e.indexRangeProbe(probe, psp, table, idxTable, indexValuePred(cand.Pred).String())
	if err != nil {
		endSpanErr(psp, err)
		return nil, 0, 0, err
	}
	e.endPhaseSpan(psp, probe)
	header, err := e.TableHeader("index select "+table, stage1, table)
	if err != nil {
		return nil, 0, 0, err
	}

	// Hop 2: coalesce each partition's ranges and fetch them in batched
	// multi-range GETs.
	stage2 := e.NextStage()
	fetch := e.tablePhase("index fetch "+table, stage2, table)
	fsp := e.beginSpan("index fetch " + table)
	backend := e.db.backendFor(table)
	var gets atomic.Int64
	partRows := make([][][]string, len(dataKeys))
	err = e.forEachPart(dataKeys, func(ctx context.Context, i int, key string) error {
		ranges := index.Coalesce(partRanges[i], index.DefaultCoalesceGap)
		ksp := fsp.Child("fetch " + key)
		defer ksp.End()
		var rows [][]string
		for _, batch := range index.Batches(ranges, index.DefaultMaxRangesPerGet) {
			frags, err := backend.GetRanges(ctx, e.db.bucket, key, batch)
			if err != nil {
				return err
			}
			var total int64
			for _, f := range frags {
				total += int64(len(f))
			}
			fetch.AddRangedGetRequest(total, int64(len(batch)))
			gets.Add(1)
			ksp.AddInt("bytes", total)
			ksp.AddInt("ranges", int64(len(batch)))
			for _, frag := range frags {
				_, rs, err := csvx.Decode(frag, false)
				if err != nil {
					return err
				}
				rows = append(rows, rs...)
			}
		}
		partRows[i] = rows
		return nil
	})
	if err != nil {
		endSpanErr(fsp, err)
		return nil, 0, 0, err
	}
	out := &Relation{Cols: header}
	var candidates int64
	for _, rows := range partRows {
		candidates += int64(len(rows))
		if err := out.Concat(FromStringsN(header, rows, e.workers())); err != nil {
			endSpanErr(fsp, err)
			return nil, 0, 0, err
		}
	}
	out.Cols = header
	fetch.AddServerRows(candidates)
	fsp.SetInt("rows", candidates)
	fsp.SetInt("gets", gets.Load())
	e.endPhaseSpan(fsp, fetch)
	return out, gets.Load(), stage2, nil
}

// IndexScanFilter is the forced IndexScan operator (harness figures and
// tests): it resolves predicate over table through the index on column,
// re-filters the fetched candidates with the full predicate, and projects.
// It fails when no live index on column exists or when the predicate has
// no conjunct the index can resolve. The second return value is the number
// of multi-range GET requests issued.
func (e *Exec) IndexScanFilter(table, column, predicate, projection string) (*Relation, int64, error) {
	pred, err := sqlparse.ParseExpr(predicate)
	if err != nil {
		return nil, 0, err
	}
	man := e.db.indexManifest(e.ctx, table)
	ent, ok := man.Lookup(column)
	if !ok {
		return nil, 0, fmt.Errorf("engine: no live index on %s(%s)", table, column)
	}
	ip := sqlparse.AndAll(indexableConjuncts(sqlparse.Conjuncts(sqlparse.StripQualifiers(pred)), ent.Column))
	if ip == nil {
		return nil, 0, fmt.Errorf("engine: predicate %q has no conjunct the index on %s(%s) can resolve",
			predicate, table, column)
	}
	cand := &IndexCandidate{Entry: ent, Pred: ip}
	rel, gets, _, err := e.indexFetch(table, cand)
	if err != nil {
		return nil, 0, err
	}
	rel, err = e.filterLocal(rel, sqlparse.StripQualifiers(pred).String(), e.workers())
	if err != nil {
		return nil, 0, err
	}
	if projection != "" && projection != "*" {
		rel, err = e.projectLocal(rel, projection, e.workers())
		if err != nil {
			return nil, 0, err
		}
	}
	return rel, gets, nil
}

// AccessPlan records the planner's access-path decision for a single-table
// query whose table has a usable secondary index: the three-way choice
// between the pushed filtered scan, the IndexScan and the server-side
// baseline load, with the estimates that drove it.
type AccessPlan struct {
	Table    string
	Backend  string
	Strategy string // StrategyIndexScan, StrategyFiltered or StrategyBaseline
	Reason   string
	// Index is the chosen (or rejected-but-considered) index candidate.
	Index *IndexCandidate
	// Estimates maps each candidate strategy to its predicted runtime/cost.
	Estimates map[string]cloudsim.PlanEstimate
	// EstRanges and EstRangedGets are the predicted coalesced-range and
	// multi-range-GET counts of the IndexScan strategy.
	EstRanges, EstRangedGets int64
	// RangedGets is the number of multi-range GETs actually issued (filled
	// in by execution when the IndexScan strategy ran).
	RangedGets int64
	// Stats is the planning statistics probe's view of the table.
	Stats       cloudsim.PlanTableStats
	CachedStats bool
}

// String renders the access plan for Explain and -explain.
func (ap *AccessPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "access plan for %s (on %s): %s — %s\n", ap.Table, ap.Backend, ap.Strategy, ap.Reason)
	if ap.Index != nil {
		fmt.Fprintf(&b, "  index %s(%s): predicate %s, ~%d matching rows, ~%d ranges in ~%d multi-range GETs\n",
			ap.Table, ap.Index.Entry.Column, ap.Index.Pred.String(),
			ap.Index.MatchedRows, ap.EstRanges, ap.EstRangedGets)
	}
	names := make([]string, 0, len(ap.Estimates))
	for name := range ap.Estimates {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		est := ap.Estimates[name]
		fmt.Fprintf(&b, "  est %-10s %8.3fs  $%.6f\n", name+":", est.Seconds, est.USD)
	}
	return b.String()
}

// planAccess decides the access path of a single-table SELECT. It returns
// nil — and the legacy pushed-scan path runs untouched, with zero extra
// requests — unless the table has a live index that resolves part of the
// WHERE clause. When it does, the planner pays for its statistics like the
// join planner (a header probe plus one pushed COUNT probe per partition,
// cached on the DB) and weighs IndexScan against the pushed filtered scan
// and the baseline load.
func (e *Exec) planAccess(sel *sqlparse.Select) (*AccessPlan, error) {
	if sel.Where == nil {
		return nil, nil
	}
	table := sel.Table
	filter := sqlparse.StripQualifiers(sel.Where)
	cand := e.db.indexCandidate(e.ctx, table, filter)
	if cand == nil {
		return nil, nil
	}
	backendName, backend := e.db.BackendFor(table)

	stage := e.NextStage()
	cols, err := e.TableHeader("plan header "+table, stage, table)
	if err != nil {
		return nil, err
	}
	pushedSQL := pushedScanSQL(sel)
	st, idxMatched, cached, err := e.probeStats(table, filter.String(), indexProbePred(cand), stage)
	if err != nil {
		return nil, err
	}
	cand.MatchedRows = idxMatched
	st.Cols = len(cols)
	st.FilterNodes = pushedNodes(pushedSQL)
	st.ProjCols = pushedProjCols(sel, len(cols))
	st.Profile = backend.Profile()
	st.CachedFrac = e.cachedScanFrac(table, pushedSQL)

	db := e.db
	ests := map[string]cloudsim.PlanEstimate{
		StrategyIndexScan: cloudsim.EstimateIndexScan(db.Cfg, db.Sim, db.Pricing, st, indexScanStats(cand)),
		StrategyFiltered:  cloudsim.EstimateFilteredScan(db.Cfg, db.Sim, db.Pricing, st),
		StrategyBaseline:  cloudsim.EstimateBaselineScan(db.Cfg, db.Sim, db.Pricing, st),
	}
	strategy := StrategyFiltered
	for _, s := range []string{StrategyBaseline, StrategyIndexScan} {
		if ests[s].Cheaper(ests[strategy]) {
			strategy = s
		}
	}
	ap := &AccessPlan{
		Table: table, Backend: backendName,
		Strategy: strategy, Index: cand,
		Estimates: ests, Stats: st, CachedStats: cached,
	}
	ap.EstRanges = cloudsim.ExpectedCoalescedRanges(idxMatched, st.Rows)
	if ap.EstRanges > 0 {
		parts := int64(max(st.Partitions, 1))
		perPart := (ap.EstRanges + parts - 1) / parts
		ap.EstRangedGets = parts * ((perPart + index.DefaultMaxRangesPerGet - 1) / index.DefaultMaxRangesPerGet)
	}
	ap.Reason = fmt.Sprintf("index on %s matches ~%d of %d rows (%.2f%%); %s estimated cheapest",
		cand.Entry.Column, idxMatched, st.Rows,
		100*float64(idxMatched)/float64(max(st.Rows, 1)), strategy)
	return ap, nil
}

// indexProbePred renders the candidate's predicate for the stats probe.
func indexProbePred(cand *IndexCandidate) string {
	if cand == nil {
		return ""
	}
	return cand.Pred.String()
}

// indexScanStats builds the cost model's view of an index candidate.
func indexScanStats(cand *IndexCandidate) cloudsim.IndexScanStats {
	return cloudsim.IndexScanStats{
		IndexBytes:  cand.Entry.IndexBytes,
		MatchedRows: cand.MatchedRows,
		PredNodes: pushedNodes("SELECT first_byte_offset, last_byte_offset FROM S3Object WHERE " +
			indexValuePred(cand.Pred).String()),
		MaxRangesPerGet: index.DefaultMaxRangesPerGet,
	}
}

// probeStats returns the table's planning statistics plus the row count
// matching idxPred, probing storage once per partition on a stats-cache
// miss: COUNT(*) and per-predicate SUM(CASE ...) counts in a single pushed
// scan. Shape-dependent fields (Cols, FilterNodes, ProjCols, Profile,
// CachedFrac) are left for the caller.
func (e *Exec) probeStats(table, filter, idxPred string, stage int) (st cloudsim.PlanTableStats, idxMatched int64, cached bool, err error) {
	backendName, _ := e.db.BackendFor(table)
	key := backendName + "\x00" + e.db.bucket + "\x00" + table + "\x00" + filter + "\x00idx=" + idxPred
	e.db.statsMu.Lock()
	if cs, ok := e.db.statsCache[key]; ok {
		e.db.statsMu.Unlock()
		return cs.stats, cs.idxMatched, true, nil
	}
	e.db.statsMu.Unlock()

	sums := []string{"COUNT(*)"}
	if filter != "" {
		sums = append(sums, "SUM(CASE WHEN "+filter+" THEN 1 ELSE 0 END)")
	}
	if idxPred != "" {
		sums = append(sums, "SUM(CASE WHEN "+idxPred+" THEN 1 ELSE 0 END)")
	}
	sql := "SELECT " + strings.Join(sums, ", ") + " FROM S3Object"
	sp := e.beginSpan("plan probe " + table)
	phase := e.tablePhase("plan probe "+table, stage, table)
	results, err := e.selectOnParts(phase, sp, table, sql, nil)
	if err != nil {
		endSpanErr(sp, err)
		return st, 0, false, fmt.Errorf("engine: planning probe for %s: %w", table, err)
	}
	e.endPhaseSpan(sp, phase)
	var rows, matched, idxm, bytes int64
	columnar := len(results) > 0
	for _, res := range results {
		if len(res.Rows) != 1 || len(res.Rows[0]) != len(sums) {
			return st, 0, false, fmt.Errorf("engine: planning probe for %s returned unexpected shape", table)
		}
		n, _ := value.FromCSV(res.Rows[0][0]).IntNum()
		rows += n
		col := 1
		if filter != "" {
			if m, ok := value.FromCSV(res.Rows[0][col]).IntNum(); ok {
				matched += m
			}
			col++
		}
		if idxPred != "" {
			if m, ok := value.FromCSV(res.Rows[0][col]).IntNum(); ok {
				idxm += m
			}
		}
		bytes += res.Stats.BytesScanned
		if !res.Columnar {
			columnar = false
		}
	}
	if filter == "" {
		matched = rows
	}
	if idxPred == "" {
		idxm = rows
	}
	st = cloudsim.PlanTableStats{
		Bytes: bytes, Rows: rows, FilteredRows: matched,
		Partitions: len(results), Columnar: columnar,
	}
	e.db.statsMu.Lock()
	if e.db.statsCache == nil {
		e.db.statsCache = map[string]cachedStats{}
	}
	e.db.statsCache[key] = cachedStats{stats: st, idxMatched: idxm}
	e.db.statsMu.Unlock()
	return st, idxm, false, nil
}

// pushedNodes counts the per-row expression work of a pushed SQL string
// (what selectengine meters at run time); 0 when it does not parse.
func pushedNodes(sql string) int64 {
	sel, err := sqlparse.Parse(sql)
	if err != nil {
		return 0
	}
	return selectengine.CountNodes(sel)
}

// pushedProjCols reports how many columns the legacy pushed scan would
// return for sel (0 = all, matching PlanTableStats.ProjCols semantics).
func pushedProjCols(sel *sqlparse.Select, tableCols int) int {
	cols := queryColumns(sel)
	if cols == nil || len(cols) >= tableCols {
		return 0
	}
	return len(cols)
}

// runIndexScanSelect executes a single-table SELECT through the IndexScan
// access path: fetch candidates, re-apply the full WHERE locally, then run
// the usual local tail (grouping, ordering, projection, limit).
func (e *Exec) runIndexScanSelect(sel *sqlparse.Select, ap *AccessPlan) (*Relation, error) {
	rel, gets, _, err := e.indexFetch(sel.Table, ap.Index)
	if err != nil {
		return nil, err
	}
	ap.RangedGets = gets
	rel, err = e.filterLocal(rel, sqlparse.StripQualifiers(sel.Where).String(), e.workers())
	if err != nil {
		return nil, err
	}
	return e.finishLocal(rel, sel)
}
