package engine

import (
	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/obs"
)

// Span plumbing: the engine starts obs spans at its existing cloudsim
// phase boundaries. Every helper short-circuits on e.trace == nil, so an
// untraced execution pays one pointer check per site and allocates
// nothing. Scan-level spans are passed explicitly into the partition
// fan-outs (per-partition children hang off them); the statement-level
// parent for sequential code is carried in spanParent under spanMu.

// Trace returns the obs trace this execution runs under (nil when the
// caller attached none via obs.WithTrace).
func (e *Exec) Trace() *obs.Trace { return e.trace }

// curSpanParent returns the span new sibling spans should attach to: the
// innermost parent installed by setSpanParent, or the trace root.
func (e *Exec) curSpanParent() *obs.Span {
	if e.trace == nil {
		return nil
	}
	e.spanMu.Lock()
	defer e.spanMu.Unlock()
	if e.spanParent != nil {
		return e.spanParent
	}
	return e.trace.Root()
}

// beginSpan starts a child of the current parent span.
func (e *Exec) beginSpan(name string) *obs.Span {
	if e.trace == nil {
		return nil
	}
	return e.curSpanParent().Child(name)
}

// setSpanParent installs sp as the parent of subsequently begun spans and
// returns the previous parent; restore it with restoreSpanParent when the
// enclosing scope ends.
func (e *Exec) setSpanParent(sp *obs.Span) *obs.Span {
	if e.trace == nil {
		return nil
	}
	e.spanMu.Lock()
	defer e.spanMu.Unlock()
	prev := e.spanParent
	e.spanParent = sp
	return prev
}

func (e *Exec) restoreSpanParent(prev *obs.Span) {
	if e.trace == nil {
		return
	}
	e.spanMu.Lock()
	e.spanParent = prev
	e.spanMu.Unlock()
}

// endPhaseSpan stamps the phase's simulated seconds and billed storage
// cost onto sp and ends it — the bridge between a span's wall-clock view
// and the cloudsim roofline view of the same work.
func (e *Exec) endPhaseSpan(sp *obs.Span, ph *cloudsim.Phase) {
	if sp == nil {
		return
	}
	sp.SetFloat("sim_sec", ph.Seconds())
	sp.SetFloat("cost_usd", ph.BilledCost(e.db.Pricing).Total())
	sp.End()
}

// endSpanErr ends sp, recording err when the work failed.
func endSpanErr(sp *obs.Span, err error) {
	if sp == nil {
		return
	}
	if err != nil {
		sp.SetStr("error", err.Error())
	}
	sp.End()
}

// opSpan starts a span for one local operator dispatch, recording the
// input cardinality and whether the vectorized or the row path ran.
func (e *Exec) opSpan(name string, rowsIn int) *obs.Span {
	if e.trace == nil {
		return nil
	}
	sp := e.beginSpan(name)
	sp.SetInt("rows_in", int64(rowsIn))
	if e.db.vectorized {
		sp.SetStr("path", "vec")
	} else {
		sp.SetStr("path", "row")
	}
	return sp
}

// endOpSpan ends an operator span with its output cardinality.
func endOpSpan(sp *obs.Span, out *Relation, err error) {
	if sp == nil {
		return
	}
	if err != nil {
		sp.SetStr("error", err.Error())
	} else if out != nil {
		sp.SetInt("rows_out", int64(len(out.Rows)))
	}
	sp.End()
}
