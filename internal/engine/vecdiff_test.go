package engine

import (
	"testing"

	"pushdowndb/internal/colformat"
	"pushdowndb/internal/localfs"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/store"
	"pushdowndb/internal/value"
)

// Vectorized-vs-row differential suite: the same corpus the cross-backend
// suite runs must produce byte-identical results on the vectorized local
// operator path (the default) and the row-at-a-time path
// (WithVectorized(false)), cold and warm, on both the in-process and the
// localfs backends. This is the end-to-end pin of the vec package's
// byte-identity contract; the operator-level twins are pinned in
// internal/vec's own differential tests.

func TestVecRowDifferentialCorpus(t *testing.T) {
	backends := map[string]s3api.Backend{}
	inproc := s3api.NewInProc(store.New())
	diffLoad(t, inproc)
	backends["inproc"] = inproc
	fs := localfs.New(t.TempDir())
	diffLoad(t, fs)
	backends["localfs"] = fs

	for name, backend := range backends {
		t.Run(name, func(t *testing.T) {
			dbVec, err := Open(diffBucket,
				WithBackend(name, backend),
				WithResultCache(testCacheBudget))
			if err != nil {
				t.Fatal(err)
			}
			dbRow, err := Open(diffBucket,
				WithBackend(name, backend),
				WithResultCache(testCacheBudget),
				WithVectorized(false))
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range diffQueries {
				vecCold, _, err := dbVec.Query(q.sql)
				if err != nil {
					t.Fatalf("%s (vec cold): %v", q.name, err)
				}
				rowCold, _, err := dbRow.Query(q.sql)
				if err != nil {
					t.Fatalf("%s (row cold): %v", q.name, err)
				}
				vecOut, rowOut := render(vecCold, q.ordered), render(rowCold, q.ordered)
				if vecOut != rowOut {
					t.Errorf("%s: vectorized differs from row path (cold)\nvec:\n%s\nrow:\n%s",
						q.name, vecOut, rowOut)
				}
				vecWarm, _, err := dbVec.Query(q.sql)
				if err != nil {
					t.Fatalf("%s (vec warm): %v", q.name, err)
				}
				rowWarm, _, err := dbRow.Query(q.sql)
				if err != nil {
					t.Fatalf("%s (row warm): %v", q.name, err)
				}
				if out := render(vecWarm, q.ordered); out != vecOut {
					t.Errorf("%s: vectorized warm differs from cold\ncold:\n%s\nwarm:\n%s",
						q.name, vecOut, out)
				}
				if out := render(rowWarm, q.ordered); out != rowOut {
					t.Errorf("%s: row warm differs from cold\ncold:\n%s\nwarm:\n%s",
						q.name, rowOut, out)
				}
			}
		})
	}
}

// columnarFixture writes a nasty columnar table: NULLs in every column, a
// numeric-looking string column, dates, floats with a NaN.
func columnarFixture(t *testing.T) *store.Store {
	t.Helper()
	st := store.New()
	schema := colformat.Schema{
		{Name: "id", Kind: value.KindInt},
		{Name: "price", Kind: value.KindFloat},
		{Name: "ship", Kind: value.KindDate},
		{Name: "code", Kind: value.KindString},
	}
	var rows [][]value.Value
	for i := 0; i < 57; i++ {
		row := []value.Value{
			value.Int(int64(i)),
			value.Float(float64(i) * 1.25),
			value.Date(int64(19000 + i%17)),
			value.Str([]string{"00501", "A", " 7", "7"}[i%4]),
		}
		switch i % 9 {
		case 3:
			row[1] = value.Null()
		case 5:
			row[3] = value.Null()
		case 7:
			row[2] = value.Null()
		}
		rows = append(rows, row)
	}
	if err := PartitionTableColumnar(st, diffBucket, "c", schema, rows, 3, 8, true); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestVecRowColumnarTable pins the columnar decode path: queries over a
// colformat table agree between the vectorized and row paths, the plain-GET
// load path decodes the binary layout instead of mis-parsing it as CSV, and
// TableHeader answers from the footer schema.
func TestVecRowColumnarTable(t *testing.T) {
	st := columnarFixture(t)
	queries := []struct {
		name    string
		sql     string
		ordered bool
	}{
		{"col-filter", "SELECT id, price FROM c WHERE price >= 20 AND code = '00501'", false},
		{"col-date", "SELECT id FROM c WHERE ship >= '2022-01-05'", false},
		{"col-null", "SELECT id FROM c WHERE price IS NULL", false},
		{"col-group", "SELECT code, COUNT(*) AS n, SUM(price) AS s FROM c GROUP BY code ORDER BY code", true},
		{"col-agg", "SELECT COUNT(*) AS n, AVG(price) AS av, MIN(ship) AS lo FROM c", false},
	}
	open := func(vectorized bool) *DB {
		db, err := Open(diffBucket,
			WithBackend("inproc", s3api.NewInProc(st)),
			WithVectorized(vectorized))
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	dbVec, dbRow := open(true), open(false)
	for _, q := range queries {
		vecRel, _, err := dbVec.Query(q.sql)
		if err != nil {
			t.Fatalf("%s (vec): %v", q.name, err)
		}
		rowRel, _, err := dbRow.Query(q.sql)
		if err != nil {
			t.Fatalf("%s (row): %v", q.name, err)
		}
		if v, r := render(vecRel, q.ordered), render(rowRel, q.ordered); v != r {
			t.Errorf("%s: vectorized differs from row path over columnar table\nvec:\n%s\nrow:\n%s",
				q.name, v, r)
		}
	}

	// The server-side baseline fetches partitions whole with plain GETs;
	// colformat objects must decode through the columnar reader.
	vecRel, err := dbVec.NewExec().ServerSideFilter("c", "id < 10", "id, code")
	if err != nil {
		t.Fatal(err)
	}
	rowRel, err := dbRow.NewExec().ServerSideFilter("c", "id < 10", "id, code")
	if err != nil {
		t.Fatal(err)
	}
	if v, r := render(vecRel, false), render(rowRel, false); v != r {
		t.Errorf("ServerSideFilter over columnar table: vec\n%s\nrow\n%s", v, r)
	}
	if len(vecRel.Rows) != 10 {
		t.Errorf("ServerSideFilter over columnar table kept %d rows, want 10", len(vecRel.Rows))
	}

	header, err := dbVec.NewExec().TableHeader("hdr", 0, "c")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"id", "price", "ship", "code"}
	if len(header) != len(want) {
		t.Fatalf("TableHeader over columnar table = %v, want %v", header, want)
	}
	for i := range want {
		if header[i] != want[i] {
			t.Fatalf("TableHeader over columnar table = %v, want %v", header, want)
		}
	}
}

// TestProbeStatsColumnar pins the planner's format detection: the stats
// probe marks columnar tables (every partition answered by the columnar
// select path) and leaves CSV tables unmarked — with no extra requests.
func TestProbeStatsColumnar(t *testing.T) {
	st := columnarFixture(t)
	ctxPut := s3api.NewInProc(st)
	diffLoad(t, ctxPut) // CSV tables p/ord/item next to columnar c
	db, err := Open(diffBucket, WithBackend("inproc", ctxPut))
	if err != nil {
		t.Fatal(err)
	}
	e := db.NewExec()
	colStats, _, _, err := e.probeStats("c", "id < 10", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !colStats.Columnar {
		t.Error("probeStats over a colformat table did not set Columnar")
	}
	csvStats, _, _, err := e.probeStats("p", "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if csvStats.Columnar {
		t.Error("probeStats over a CSV table set Columnar")
	}
	// The flag must survive the stats cache.
	again, _, cached, err := e.probeStats("c", "id < 10", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !cached || !again.Columnar {
		t.Errorf("cached probeStats: cached=%v Columnar=%v, want true/true", cached, again.Columnar)
	}
}

// TestVecOperatorWrappers pins wrapper-level edge cases the vec package's
// own differential tests cannot reach: the empty-predicate identity, the
// empty-input aggregate synthesis and the ragged-relation fallback.
func TestVecOperatorWrappers(t *testing.T) {
	rel := &Relation{
		Cols: []string{"a", "b"},
		Rows: []Row{
			{value.Int(1), value.Str("x")},
			{value.Int(2), value.Null()},
			{value.Int(3), value.Str("y")},
		},
	}
	out, err := VecFilterLocalN(rel, "", 2)
	if err != nil || out != rel {
		t.Errorf("VecFilterLocalN with empty predicate: got (%p, %v), want the input relation", out, err)
	}

	empty := &Relation{Cols: []string{"a", "b"}}
	for _, items := range []string{"COUNT(*) AS n, SUM(a) AS s", "COUNT(*) + 0 AS n, AVG(a) AS av"} {
		vecAgg, err := VecAggregateLocalN(empty, items, 2)
		if err != nil {
			t.Fatalf("VecAggregateLocalN(empty, %q): %v", items, err)
		}
		rowAgg, err := AggregateLocalN(empty, items, 2)
		if err != nil {
			t.Fatalf("AggregateLocalN(empty, %q): %v", items, err)
		}
		if v, r := render(vecAgg, true), render(rowAgg, true); v != r {
			t.Errorf("empty-input aggregate %q: vec\n%s\nrow\n%s", items, v, r)
		}
	}

	// Ragged rows must take the row path's short-row semantics via fallback.
	ragged := &Relation{
		Cols: []string{"a", "b"},
		Rows: []Row{
			{value.Int(1), value.Str("x")},
			{value.Int(2)},
		},
	}
	vecOut, vecErr := VecFilterLocalN(ragged, "a >= 1", 2)
	rowOut, rowErr := FilterLocalN(ragged, "a >= 1", 2)
	if (vecErr == nil) != (rowErr == nil) {
		t.Fatalf("ragged filter: vec err %v, row err %v", vecErr, rowErr)
	}
	if v, r := render(vecOut, false), render(rowOut, false); v != r {
		t.Errorf("ragged filter: vec\n%s\nrow\n%s", v, r)
	}
}
