package engine

import (
	"context"

	"pushdowndb/internal/csvx"
)

// Section IV: filter strategies.

// ServerSideFilter loads the whole table with plain GETs and filters
// locally — the baseline of Fig. 1.
func (e *Exec) ServerSideFilter(table, predicate, projection string) (*Relation, error) {
	sp := e.beginSpan("server filter " + table)
	defer sp.End()
	prev := e.setSpanParent(sp)
	defer e.restoreSpanParent(prev)
	stage := e.NextStage()
	rel, err := e.LoadTable("load "+table, stage, table)
	if err != nil {
		return nil, err
	}
	e.Metrics.Phase("load "+table, stage).AddServerRows(int64(len(rel.Rows)))
	filtered, err := e.filterLocal(rel, predicate, e.workers())
	if err != nil {
		return nil, err
	}
	if projection == "" || projection == "*" {
		return filtered, nil
	}
	return e.projectLocal(filtered, projection, e.workers())
}

// S3SideFilter pushes both the predicate and the projection into S3
// Select — the "S3-side filter" of Fig. 1.
func (e *Exec) S3SideFilter(table, predicate, projection string) (*Relation, error) {
	if projection == "" {
		projection = "*"
	}
	sql := "SELECT " + projection + " FROM S3Object"
	if predicate != "" {
		sql += " WHERE " + predicate
	}
	stage := e.NextStage()
	return e.SelectRows("s3 filter "+table, stage, table, sql)
}

// IndexFilterOptions tunes the Section IV-A index strategy.
type IndexFilterOptions struct {
	// MultiRange batches all byte ranges of one partition into a single
	// multi-range GET (the paper's Suggestion 1) instead of one request
	// per selected row.
	MultiRange bool
}

// IndexFilter resolves a predicate over the indexed column against the
// index table (phase 1), then fetches the matching data rows with ranged
// GETs (phase 2) — Section IV-A. indexedPredicate is expressed over the
// index table's "value" column, e.g. "value <= 100".
func (e *Exec) IndexFilter(table, column, indexedPredicate string, opts IndexFilterOptions) (*Relation, error) {
	idxTable := IndexTableName(table, column)

	// Phase 1: push the predicate to the index table via S3 Select. The
	// header comes from a tiny ranged GET (we never load whole partitions
	// in this strategy).
	stage1 := e.NextStage()
	isp := e.beginSpan("index lookup " + table)
	idxPhase := e.tablePhase("index lookup", stage1, idxTable)
	dataKeys, partRanges, err := e.indexRangeProbe(idxPhase, isp, table, idxTable, indexedPredicate)
	if err != nil {
		endSpanErr(isp, err)
		return nil, err
	}
	e.endPhaseSpan(isp, idxPhase)
	header, err := e.TableHeader("index lookup", stage1, table)
	if err != nil {
		return nil, err
	}

	// Phase 2: fetch each matching row by byte range — deliberately
	// without the IndexScan path's coalescing/batching, so the figure can
	// compare per-row GETs against the single multi-range GET.
	stage2 := e.NextStage()
	fetch := e.tablePhase("row fetch", stage2, table)
	fsp := e.beginSpan("row fetch " + table)
	defer func() { e.endPhaseSpan(fsp, fetch) }()
	backend := e.db.backendFor(table)
	out := &Relation{Cols: header}
	partRows := make([][][]string, len(dataKeys))
	err = e.forEachPart(dataKeys, func(ctx context.Context, i int, key string) error {
		ranges := partRanges[i]
		if len(ranges) == 0 {
			return nil
		}
		ksp := fsp.Child("fetch " + key)
		defer ksp.End()
		ksp.SetInt("ranges", int64(len(ranges)))
		var frags [][]byte
		if opts.MultiRange {
			var err error
			frags, err = backend.GetRanges(ctx, e.db.bucket, key, ranges)
			if err != nil {
				return err
			}
			var total int64
			for _, f := range frags {
				total += int64(len(f))
			}
			fetch.AddGetRequest(total)
		} else {
			frags = make([][]byte, len(ranges))
			for j, rg := range ranges {
				frag, err := backend.GetRange(ctx, e.db.bucket, key, rg[0], rg[1])
				if err != nil {
					return err
				}
				fetch.AddRowFetchRequest(int64(len(frag)))
				frags[j] = frag
			}
		}
		var rows [][]string
		for _, frag := range frags {
			_, rs, err := csvx.Decode(frag, false)
			if err != nil {
				return err
			}
			rows = append(rows, rs...)
		}
		partRows[i] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range partRows {
		if err := out.Concat(FromStringsN(header, rows, e.workers())); err != nil {
			return nil, err
		}
	}
	out.Cols = header
	return out, nil
}
