// Package engine implements PushdownDB: a row-based analytical query
// engine (Section III of the paper) whose operators are decomposed to push
// work into the storage service via S3 Select. The package provides
//
//   - local relational operators (filter, project, hash join, group-by,
//     sort, top-K) over in-memory relations;
//   - metered scan primitives (whole-table GET loads, parallel S3 Select
//     scans, ranged GETs) that record their activity in a cloudsim.Metrics
//     virtual clock;
//   - the paper's operator decompositions: S3-side filtering and indexing
//     (Section IV), baseline/filtered/Bloom joins (Section V), server-side/
//     filtered/S3-side/hybrid group-by (Section VI) and server-side/
//     sampling top-K (Section VII).
package engine

import (
	"fmt"
	"sort"
	"strings"

	"pushdowndb/internal/expr"
	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/value"
)

// Row is one tuple.
type Row []value.Value

// Relation is a materialized set of rows with named columns.
type Relation struct {
	Cols []string
	Rows []Row
}

// ColIndex resolves a column name case-insensitively, or -1.
func (r *Relation) ColIndex(name string) int {
	for i, c := range r.Cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// Env returns an expr.Env view of row i.
func (r *Relation) Env(i int) expr.Env {
	return &rowEnv{rel: r, row: r.Rows[i]}
}

type rowEnv struct {
	rel *Relation
	row Row
}

func (e *rowEnv) Lookup(_, name string) (value.Value, bool) {
	i := e.rel.ColIndex(name)
	if i < 0 || i >= len(e.row) {
		return value.Null(), false
	}
	return e.row[i], true
}

// FromStrings builds a typed relation from select-engine results.
func FromStrings(cols []string, rows [][]string) *Relation {
	return FromStringsN(cols, rows, 1)
}

// FilterLocal keeps the rows matching the SQL predicate.
func FilterLocal(rel *Relation, predicate string) (*Relation, error) {
	return FilterLocalN(rel, predicate, 1)
}

// ProjectLocal evaluates the comma-separated select items over each row.
func ProjectLocal(rel *Relation, items string) (*Relation, error) {
	return ProjectLocalN(rel, items, 1)
}

// SortLocal orders rows by the given keys.
func SortLocal(rel *Relation, orderBy string) (*Relation, error) {
	sel, err := sqlparse.Parse("SELECT * FROM t ORDER BY " + orderBy)
	if err != nil {
		return nil, fmt.Errorf("engine: bad order by %q: %w", orderBy, err)
	}
	ev := expr.New()
	type keyed struct {
		keys Row
		row  Row
	}
	ks := make([]keyed, len(rel.Rows))
	for i := range rel.Rows {
		env := rel.Env(i)
		keys := make(Row, len(sel.OrderBy))
		for j, o := range sel.OrderBy {
			v, err := ev.Eval(o.Expr, env)
			if err != nil {
				return nil, err
			}
			keys[j] = v
		}
		ks[i] = keyed{keys: keys, row: rel.Rows[i]}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		for j, o := range sel.OrderBy {
			c := value.Compare(ks[a].keys[j], ks[b].keys[j])
			if o.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	out := &Relation{Cols: rel.Cols, Rows: make([]Row, len(ks))}
	for i, k := range ks {
		out.Rows[i] = k.row
	}
	return out, nil
}

// LimitLocal truncates to n rows.
func LimitLocal(rel *Relation, n int) *Relation {
	if n < 0 || n >= len(rel.Rows) {
		return rel
	}
	return &Relation{Cols: rel.Cols, Rows: rel.Rows[:n]}
}

// HashJoinLocal joins left and right on equality of leftKey/rightKey. The
// output concatenates both sides' columns.
func HashJoinLocal(left, right *Relation, leftKey, rightKey string) (*Relation, error) {
	return HashJoinLocalN(left, right, leftKey, rightKey, 1)
}

// GroupByLocal groups rel by the groupBy expressions and evaluates the
// aggregate select items, e.g. GroupByLocal(rel, "c_nationkey",
// "c_nationkey, SUM(c_acctbal) AS total").
func GroupByLocal(rel *Relation, groupBy, items string) (*Relation, error) {
	return GroupByLocalN(rel, groupBy, items, 1)
}

type groupKeyEnv struct {
	exprs []sqlparse.Expr
	vals  Row
}

func (g *groupKeyEnv) Lookup(_, name string) (value.Value, bool) {
	for i, e := range g.exprs {
		if c, ok := e.(*sqlparse.Column); ok && strings.EqualFold(c.Name, name) {
			return g.vals[i], true
		}
	}
	return value.Null(), false
}

// Concat appends other's rows (columns must match in count).
func (r *Relation) Concat(other *Relation) error {
	if len(r.Cols) == 0 {
		r.Cols = other.Cols
	}
	if len(other.Cols) != len(r.Cols) {
		return fmt.Errorf("engine: concat arity mismatch: %v vs %v", r.Cols, other.Cols)
	}
	r.Rows = append(r.Rows, other.Rows...)
	return nil
}

// String renders a small relation for debugging and examples.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Cols, " | "))
	b.WriteByte('\n')
	for i, row := range r.Rows {
		if i >= 20 {
			fmt.Fprintf(&b, "... (%d rows total)\n", len(r.Rows))
			break
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		b.WriteString(strings.Join(parts, " | "))
		b.WriteByte('\n')
	}
	return b.String()
}
