// Package engine implements PushdownDB: a row-based analytical query
// engine (Section III of the paper) whose operators are decomposed to push
// work into the storage service via S3 Select. The package provides
//
//   - local relational operators (filter, project, hash join, group-by,
//     sort, top-K) over in-memory relations;
//   - metered scan primitives (whole-table GET loads, parallel S3 Select
//     scans, ranged GETs) that record their activity in a cloudsim.Metrics
//     virtual clock;
//   - the paper's operator decompositions: S3-side filtering and indexing
//     (Section IV), baseline/filtered/Bloom joins (Section V), server-side/
//     filtered/S3-side/hybrid group-by (Section VI) and server-side/
//     sampling top-K (Section VII).
package engine

import (
	"fmt"
	"sort"
	"strings"

	"pushdowndb/internal/expr"
	"pushdowndb/internal/sqlparse"
	"pushdowndb/internal/value"
)

// Row is one tuple.
type Row []value.Value

// Relation is a materialized set of rows with named columns.
type Relation struct {
	Cols []string
	Rows []Row
}

// ColIndex resolves a column name case-insensitively, or -1.
func (r *Relation) ColIndex(name string) int {
	for i, c := range r.Cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// Env returns an expr.Env view of row i.
func (r *Relation) Env(i int) expr.Env {
	return &rowEnv{rel: r, row: r.Rows[i]}
}

type rowEnv struct {
	rel *Relation
	row Row
}

func (e *rowEnv) Lookup(_, name string) (value.Value, bool) {
	i := e.rel.ColIndex(name)
	if i < 0 || i >= len(e.row) {
		return value.Null(), false
	}
	return e.row[i], true
}

// FromStrings builds a typed relation from select-engine results.
func FromStrings(cols []string, rows [][]string) *Relation {
	rel := &Relation{Cols: cols}
	rel.Rows = make([]Row, len(rows))
	for i, sr := range rows {
		row := make(Row, len(sr))
		for j, f := range sr {
			row[j] = value.FromCSV(f)
		}
		rel.Rows[i] = row
	}
	return rel
}

// FilterLocal keeps the rows matching the SQL predicate.
func FilterLocal(rel *Relation, predicate string) (*Relation, error) {
	if predicate == "" {
		return rel, nil
	}
	pred, err := sqlparse.ParseExpr(predicate)
	if err != nil {
		return nil, fmt.Errorf("engine: bad predicate %q: %w", predicate, err)
	}
	ev := expr.New()
	out := &Relation{Cols: rel.Cols}
	for i := range rel.Rows {
		ok, err := ev.EvalBool(pred, rel.Env(i))
		if err != nil {
			return nil, err
		}
		if ok {
			out.Rows = append(out.Rows, rel.Rows[i])
		}
	}
	return out, nil
}

// ProjectLocal evaluates the comma-separated select items over each row.
func ProjectLocal(rel *Relation, items string) (*Relation, error) {
	sel, err := sqlparse.Parse("SELECT " + items + " FROM t")
	if err != nil {
		return nil, fmt.Errorf("engine: bad projection %q: %w", items, err)
	}
	ev := expr.New()
	out := &Relation{}
	for _, it := range sel.Items {
		if _, isStar := it.Expr.(*sqlparse.Star); isStar {
			out.Cols = append(out.Cols, rel.Cols...)
			continue
		}
		name := it.Alias
		if name == "" {
			if c, ok := it.Expr.(*sqlparse.Column); ok {
				name = c.Name
			} else {
				name = it.Expr.String()
			}
		}
		out.Cols = append(out.Cols, name)
	}
	for i := range rel.Rows {
		env := rel.Env(i)
		var row Row
		for _, it := range sel.Items {
			if _, isStar := it.Expr.(*sqlparse.Star); isStar {
				row = append(row, rel.Rows[i]...)
				continue
			}
			v, err := ev.Eval(it.Expr, env)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// SortLocal orders rows by the given keys.
func SortLocal(rel *Relation, orderBy string) (*Relation, error) {
	sel, err := sqlparse.Parse("SELECT * FROM t ORDER BY " + orderBy)
	if err != nil {
		return nil, fmt.Errorf("engine: bad order by %q: %w", orderBy, err)
	}
	ev := expr.New()
	type keyed struct {
		keys Row
		row  Row
	}
	ks := make([]keyed, len(rel.Rows))
	for i := range rel.Rows {
		env := rel.Env(i)
		keys := make(Row, len(sel.OrderBy))
		for j, o := range sel.OrderBy {
			v, err := ev.Eval(o.Expr, env)
			if err != nil {
				return nil, err
			}
			keys[j] = v
		}
		ks[i] = keyed{keys: keys, row: rel.Rows[i]}
	}
	sort.SliceStable(ks, func(a, b int) bool {
		for j, o := range sel.OrderBy {
			c := value.Compare(ks[a].keys[j], ks[b].keys[j])
			if o.Desc {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	})
	out := &Relation{Cols: rel.Cols, Rows: make([]Row, len(ks))}
	for i, k := range ks {
		out.Rows[i] = k.row
	}
	return out, nil
}

// LimitLocal truncates to n rows.
func LimitLocal(rel *Relation, n int) *Relation {
	if n < 0 || n >= len(rel.Rows) {
		return rel
	}
	return &Relation{Cols: rel.Cols, Rows: rel.Rows[:n]}
}

// HashJoinLocal joins left and right on equality of leftKey/rightKey. The
// output concatenates both sides' columns.
func HashJoinLocal(left, right *Relation, leftKey, rightKey string) (*Relation, error) {
	li, ri := left.ColIndex(leftKey), right.ColIndex(rightKey)
	if li < 0 {
		return nil, fmt.Errorf("engine: join key %q not in left relation %v", leftKey, left.Cols)
	}
	if ri < 0 {
		return nil, fmt.Errorf("engine: join key %q not in right relation %v", rightKey, right.Cols)
	}
	build := map[uint64][]int{}
	for i, row := range left.Rows {
		if row[li].IsNull() {
			continue
		}
		h := row[li].Hash()
		build[h] = append(build[h], i)
	}
	out := &Relation{Cols: append(append([]string{}, left.Cols...), right.Cols...)}
	for _, rrow := range right.Rows {
		if rrow[ri].IsNull() {
			continue
		}
		for _, i := range build[rrow[ri].Hash()] {
			lrow := left.Rows[i]
			if !value.Equal(lrow[li], rrow[ri]) {
				continue
			}
			joined := make(Row, 0, len(lrow)+len(rrow))
			joined = append(joined, lrow...)
			joined = append(joined, rrow...)
			out.Rows = append(out.Rows, joined)
		}
	}
	return out, nil
}

// GroupByLocal groups rel by the groupBy expressions and evaluates the
// aggregate select items, e.g. GroupByLocal(rel, "c_nationkey",
// "c_nationkey, SUM(c_acctbal) AS total").
func GroupByLocal(rel *Relation, groupBy, items string) (*Relation, error) {
	sel, err := sqlparse.Parse("SELECT " + items + " FROM t GROUP BY " + groupBy)
	if err != nil {
		return nil, fmt.Errorf("engine: bad group-by: %w", err)
	}
	ev := expr.New()
	itemExprs := make([]sqlparse.Expr, len(sel.Items))
	for i, it := range sel.Items {
		itemExprs[i] = it.Expr
	}
	type group struct {
		keyVals Row
		agg     *expr.AggRunner
	}
	groups := map[string]*group{}
	var order []string
	for i := range rel.Rows {
		env := rel.Env(i)
		var kb strings.Builder
		keyVals := make(Row, len(sel.GroupBy))
		for j, g := range sel.GroupBy {
			v, err := ev.Eval(g, env)
			if err != nil {
				return nil, err
			}
			keyVals[j] = v
			kb.WriteString(v.String())
			kb.WriteByte('\x00')
		}
		k := kb.String()
		gs, ok := groups[k]
		if !ok {
			gs = &group{keyVals: keyVals, agg: expr.NewAggRunner(ev, itemExprs)}
			groups[k] = gs
			order = append(order, k)
		}
		if err := gs.agg.Add(env); err != nil {
			return nil, err
		}
	}
	out := &Relation{}
	for _, it := range sel.Items {
		name := it.Alias
		if name == "" {
			if c, ok := it.Expr.(*sqlparse.Column); ok {
				name = c.Name
			} else {
				name = it.Expr.String()
			}
		}
		out.Cols = append(out.Cols, name)
	}
	for _, k := range order {
		gs := groups[k]
		genv := &groupKeyEnv{exprs: sel.GroupBy, vals: gs.keyVals}
		var row Row
		for _, it := range sel.Items {
			v, err := gs.agg.Final(it.Expr, genv)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

type groupKeyEnv struct {
	exprs []sqlparse.Expr
	vals  Row
}

func (g *groupKeyEnv) Lookup(_, name string) (value.Value, bool) {
	for i, e := range g.exprs {
		if c, ok := e.(*sqlparse.Column); ok && strings.EqualFold(c.Name, name) {
			return g.vals[i], true
		}
	}
	return value.Null(), false
}

// Concat appends other's rows (columns must match in count).
func (r *Relation) Concat(other *Relation) error {
	if len(r.Cols) == 0 {
		r.Cols = other.Cols
	}
	if len(other.Cols) != len(r.Cols) {
		return fmt.Errorf("engine: concat arity mismatch: %v vs %v", r.Cols, other.Cols)
	}
	r.Rows = append(r.Rows, other.Rows...)
	return nil
}

// String renders a small relation for debugging and examples.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Cols, " | "))
	b.WriteByte('\n')
	for i, row := range r.Rows {
		if i >= 20 {
			fmt.Fprintf(&b, "... (%d rows total)\n", len(r.Rows))
			break
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		b.WriteString(strings.Join(parts, " | "))
		b.WriteByte('\n')
	}
	return b.String()
}
