package engine

import (
	"context"
	"sync"
	"testing"

	"pushdowndb/internal/s3api"
	"pushdowndb/internal/store"
)

type hookRecord struct {
	sql     string
	hasExec bool
	err     error
	ctxVal  any
}

type hookCtxKey struct{}

func hookDB(t *testing.T) (*DB, *[]hookRecord, *sync.Mutex) {
	t.Helper()
	st := store.New()
	header := []string{"id", "v"}
	rows := [][]string{{"1", "10"}, {"2", "20"}, {"3", "30"}}
	if err := PartitionTable(context.Background(), st, "bkt", "t", header, rows, 2); err != nil {
		t.Fatal(err)
	}
	var (
		mu   sync.Mutex
		recs []hookRecord
	)
	db, err := Open("bkt",
		WithBackend("s3sim", s3api.NewInProc(st)),
		WithQueryHook(func(ctx context.Context, sql string, e *Exec, err error) {
			mu.Lock()
			recs = append(recs, hookRecord{sql: sql, hasExec: e != nil, err: err, ctxVal: ctx.Value(hookCtxKey{})})
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	return db, &recs, &mu
}

// TestQueryHookFiresOnEveryEntryPoint pins the audit surface a query
// server builds on: the hook observes successful queries (with their
// Exec), parse rejections (nil Exec), and statements run through
// ExecStatement — exactly once each, with the caller's context values
// visible.
func TestQueryHookFiresOnEveryEntryPoint(t *testing.T) {
	db, recs, mu := hookDB(t)
	ctx := context.WithValue(context.Background(), hookCtxKey{}, "tenant-42")

	if _, _, err := db.QueryContext(ctx, "SELECT id FROM t WHERE v > 15"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.QueryContext(ctx, "SELEKT nope"); err == nil {
		t.Fatal("bad SQL should fail")
	}
	if _, _, err := db.ExecStatement(ctx, "SELECT COUNT(*) AS n FROM t"); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(*recs) != 3 {
		t.Fatalf("hook fired %d times, want 3: %+v", len(*recs), *recs)
	}
	got := *recs
	if !got[0].hasExec || got[0].err != nil || got[0].ctxVal != "tenant-42" {
		t.Fatalf("success record: %+v", got[0])
	}
	if got[1].hasExec || got[1].err == nil {
		t.Fatalf("parse-failure record should carry nil exec and the error: %+v", got[1])
	}
	if !got[2].hasExec || got[2].err != nil {
		t.Fatalf("ExecStatement record: %+v", got[2])
	}
}

// TestSetQueryHook installs and removes the hook on a live DB.
func TestSetQueryHook(t *testing.T) {
	db, recs, mu := hookDB(t)
	db.SetQueryHook(nil)
	if _, _, err := db.Query("SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := len(*recs)
	mu.Unlock()
	if n != 0 {
		t.Fatalf("removed hook still fired %d times", n)
	}
	var fired bool
	db.SetQueryHook(func(ctx context.Context, sql string, e *Exec, err error) { fired = true })
	if _, _, err := db.Query("SELECT id FROM t"); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("reinstalled hook did not fire")
	}
}
