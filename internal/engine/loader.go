package engine

import (
	"context"
	"fmt"
	"strings"

	"pushdowndb/internal/colformat"
	"pushdowndb/internal/csvx"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/store"
	"pushdowndb/internal/value"
)

// Loading helpers write tables into the store at setup time. They bypass
// the metered client deliberately: dataset preparation is not part of any
// query's cost (the paper pre-loads TPC-H into S3 before measuring).

// PartitionTable writes rows as parts CSV partition objects (each with the
// header row) under table/partNNNN.csv, mirroring how PushdownDB lays out
// S3 data for parallel loading. Canceling ctx stops the load between
// partition writes.
func PartitionTable(ctx context.Context, st *store.Store, bucket, table string, header []string, rows [][]string, parts int) error {
	return PartitionTableTo(ctx, s3api.NewInProc(st), bucket, table, header, rows, parts)
}

// PartitionTableTo writes rows as partition objects through any backend
// that accepts writes (s3api.Putter) — the loading path for backends that
// are not a *store.Store, e.g. localfs.
func PartitionTableTo(ctx context.Context, p s3api.Putter, bucket, table string, header []string, rows [][]string, parts int) error {
	if parts < 1 {
		parts = 1
	}
	per := (len(rows) + parts - 1) / parts
	if per == 0 {
		per = 1
	}
	for i := 0; i < parts; i++ {
		lo, hi := i*per, (i+1)*per
		if lo > len(rows) {
			lo = len(rows)
		}
		if hi > len(rows) {
			hi = len(rows)
		}
		data := csvx.Encode(header, rows[lo:hi])
		if err := p.Put(ctx, bucket, store.PartitionKey(table, i), data); err != nil {
			return err
		}
	}
	return nil
}

// IndexTableName returns the canonical name of the index table for a
// column of a data table.
func IndexTableName(table, column string) string {
	return table + "_index_" + column
}

// BuildIndexTable scans every partition of a data table and writes the
// paper's Section IV-A index table — |value|first_byte_offset|
// last_byte_offset| — partition-aligned with the data table so that byte
// offsets refer to the matching data partition object.
func BuildIndexTable(st *store.Store, bucket, table, column string) error {
	keys := st.TableParts(bucket, table)
	if len(keys) == 0 {
		return fmt.Errorf("engine: no partitions for table %q", table)
	}
	idxTable := IndexTableName(table, column)
	for p, key := range keys {
		data, err := st.Get(bucket, key)
		if err != nil {
			return err
		}
		sc := csvx.NewScanner(data)
		if !sc.Scan() {
			return fmt.Errorf("engine: empty partition %s", key)
		}
		col := -1
		for i, h := range sc.Fields() {
			if strings.EqualFold(h, column) {
				col = i
				break
			}
		}
		if col < 0 {
			return fmt.Errorf("engine: column %q not in %s", column, key)
		}
		var rows [][]string
		for sc.Scan() {
			first, last := sc.Range()
			rows = append(rows, []string{
				sc.Fields()[col],
				fmt.Sprint(first),
				fmt.Sprint(last),
			})
		}
		if err := sc.Err(); err != nil {
			return err
		}
		idxData := csvx.Encode([]string{"value", "first_byte_offset", "last_byte_offset"}, rows)
		st.Put(bucket, store.PartitionKey(idxTable, p), idxData)
	}
	return nil
}

// PartitionTableColumnar writes rows as columnar (Parquet stand-in)
// partitions under table/partNNNN.csv keys. The key suffix stays .csv so
// partition listing is uniform; readers detect the format by magic.
func PartitionTableColumnar(st *store.Store, bucket, table string, schema colformat.Schema, rows [][]value.Value, parts, groupRows int, compress bool) error {
	if parts < 1 {
		parts = 1
	}
	per := (len(rows) + parts - 1) / parts
	if per == 0 {
		per = 1
	}
	for p := 0; p < parts; p++ {
		lo, hi := p*per, (p+1)*per
		if lo > len(rows) {
			lo = len(rows)
		}
		if hi > len(rows) {
			hi = len(rows)
		}
		data, err := colformat.Encode(schema, rows[lo:hi], groupRows, compress)
		if err != nil {
			return err
		}
		st.Put(bucket, store.PartitionKey(table, p), data)
	}
	return nil
}
