package engine

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/selectengine"
	"pushdowndb/internal/sqlparse"
)

// Cost-based join planning (the paper's Section V strategies behind a SQL
// front end). A multi-table SELECT is planned as a left-deep chain of hash
// joins: per-table selection and projection are pushed into S3 Select as
// usual, and for every join the planner consults the cloudsim cost model
// to choose between the baseline join (full GET loads, join on the server)
// and the Bloom join (build-side pushdown scan, Bloom predicate pushed
// into the probe-side scan). Cardinalities come from pushed-down COUNT(*)
// probes whose requests are accounted in the query's own metrics — the
// planner pays for its statistics like everything else — and are cached on
// the DB so repeated queries plan from table stats instead of re-probing.

// Join strategies the planner chooses among.
const (
	// StrategyBaseline loads both tables in full with plain GETs and
	// joins on the server (Section V-A baseline join).
	StrategyBaseline = "baseline"
	// StrategyBloom pushes the build side's scan and a Bloom filter over
	// its join keys into S3 Select (Section V-A2 Bloom join).
	StrategyBloom = "bloom"
	// StrategyFiltered scans the probe table with only its own filter
	// pushed down and joins against the materialized intermediate
	// relation (used for the later joins of a multi-join chain).
	StrategyFiltered = "filtered"
	// StrategyIndexScan resolves the table's indexable predicate against
	// its secondary-index objects and fetches only the matching byte
	// ranges with batched multi-range GETs (Section IV-A as an access
	// path). Available to single-table scans and as the probe side of
	// chain joins whenever a live index matches the pushed filter.
	StrategyIndexScan = "indexscan"
)

// planFPR is the Bloom filter target false-positive rate the planner uses
// (the paper's sweet spot, Fig. 4).
const planFPR = 0.01

// planSeed makes planned Bloom filters deterministic.
const planSeed = 1

// TableScan is one base-table leaf of a query plan: the S3 Select scan
// with the table's pushed-down selection and projection, plus the
// statistics the planner gathered for it.
type TableScan struct {
	Table string
	Alias string // optional alias from the FROM clause
	// Backend names the storage backend the table's partitions live on
	// (its profile is baked into Stats and prices this scan's strategies).
	Backend string
	Cols    []string
	// Filter is the conjunction of the query's single-table predicates
	// over this table, qualifier-stripped so it can be pushed to S3.
	Filter sqlparse.Expr
	// Project lists the columns any part of the query needs from this
	// table (nil = all, e.g. when the select list has a *).
	Project []string
	// Stats are the planner's cardinality and size statistics, from a
	// pushed-down COUNT(*) probe or the DB's stats cache.
	Stats cloudsim.PlanTableStats
	// CachedStats reports whether Stats came from the cache (no probe was
	// issued for this query).
	CachedStats bool
	// Index is the scan's secondary-index candidate: a live index on a
	// filtered column, with the indexable predicate and its matched-row
	// count (nil when the table has none).
	Index *IndexCandidate
}

// Name returns the scan's display name (alias if present).
func (sc *TableScan) Name() string {
	if sc.Alias != "" {
		return sc.Alias
	}
	return sc.Table
}

// JoinStep is one hash join of the plan, with the strategy the cost model
// chose and the per-strategy estimates that drove the decision.
type JoinStep struct {
	BuildName, ProbeName string // display names of the two sides
	BuildKey, ProbeKey   string // equi-join key column names
	Strategy             string
	Reason               string
	// Estimates maps each candidate strategy to its predicted virtual
	// runtime and dollar cost.
	Estimates map[string]cloudsim.PlanEstimate
	// EstRows is the planner's estimate of this join's output cardinality
	// (used to cost the next step of the chain).
	EstRows int64
	// RangedGets is the number of multi-range GET requests the IndexScan
	// strategy actually issued (filled in at execution).
	RangedGets int64

	// Actuals, filled in by runPlan as each step completes (EXPLAIN
	// ANALYZE renders them next to the estimates): the step's output
	// cardinality and its deltas of virtual runtime, billed dollars and
	// returned bytes.
	ActualRows  int64
	ActualSec   float64
	ActualUSD   float64
	ActualBytes int64

	first              bool // joins two base tables via the JoinSpec operators
	buildIdx, probeIdx int  // scan indices (first step)
	scan               int  // scan index of the table joined in (later steps)
}

// QueryPlan is the planned execution of a multi-table SELECT.
type QueryPlan struct {
	Sel      *sqlparse.Select
	Scans    []*TableScan
	Steps    []*JoinStep
	Residual sqlparse.Expr // conjuncts evaluated on the server after all joins
}

func exprStr(e sqlparse.Expr) string {
	if e == nil {
		return ""
	}
	return e.String()
}

// resolve maps a column reference to the index of the scan that provides
// it. Qualified references match the scan's alias or table name;
// unqualified ones match the first scan whose header contains the column.
func (p *QueryPlan) resolve(c *sqlparse.Column) (int, error) {
	if c.Qualifier != "" {
		for i, sc := range p.Scans {
			if strings.EqualFold(c.Qualifier, sc.Alias) || strings.EqualFold(c.Qualifier, sc.Table) {
				if colIndex(sc.Cols, c.Name) < 0 {
					return -1, fmt.Errorf("engine: column %q is not in table %s %v", c.Name, sc.Table, sc.Cols)
				}
				return i, nil
			}
		}
		return -1, fmt.Errorf("engine: unknown table or alias %q", c.Qualifier)
	}
	for i, sc := range p.Scans {
		if colIndex(sc.Cols, c.Name) >= 0 {
			return i, nil
		}
	}
	return -1, fmt.Errorf("engine: column %q is not in any FROM table", c.Name)
}

// scansOf returns the distinct scan indices an expression references.
func (p *QueryPlan) scansOf(e sqlparse.Expr) ([]int, error) {
	seen := map[int]bool{}
	var out []int
	for _, c := range sqlparse.ColumnRefs(e) {
		i, err := p.resolve(c)
		if err != nil {
			return nil, err
		}
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	return out, nil
}

// providerCount reports how many FROM tables have a column named name.
func (p *QueryPlan) providerCount(name string) int {
	n := 0
	for _, sc := range p.Scans {
		if colIndex(sc.Cols, name) >= 0 {
			n++
		}
	}
	return n
}

func colIndex(cols []string, name string) int {
	for i, c := range cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// equiPred is one `a.x = b.y` conjunct between two different tables.
type equiPred struct {
	a, b   int // scan indices
	ak, bk string
	expr   sqlparse.Expr
	used   bool
}

// planJoins builds the cost-based plan for a multi-table select. Planning
// issues real (metered) requests: header probes and, on stats-cache
// misses, one pushed-down COUNT(*) probe per table.
func (e *Exec) planJoins(sel *sqlparse.Select) (*QueryPlan, error) {
	p := &QueryPlan{Sel: sel}
	p.Scans = append(p.Scans, &TableScan{Table: sel.Table, Alias: sel.Alias})
	for _, j := range sel.Joins {
		p.Scans = append(p.Scans, &TableScan{Table: j.Table, Alias: j.Alias})
	}
	names := map[string]bool{}
	for _, sc := range p.Scans {
		k := strings.ToLower(sc.Name())
		if names[k] {
			return nil, fmt.Errorf("engine: duplicate table name or alias %q in FROM; give each table a distinct alias", sc.Name())
		}
		names[k] = true
	}

	// Headers: one cheap ranged GET per table, all in one stage.
	psp := e.beginSpan("plan")
	defer psp.End()
	prevParent := e.setSpanParent(psp)
	defer e.restoreSpanParent(prevParent)
	hdrStage := e.NextStage()
	for _, sc := range p.Scans {
		cols, err := e.TableHeader("plan header "+sc.Table, hdrStage, sc.Table)
		if err != nil {
			return nil, err
		}
		sc.Cols = cols
	}

	// Classify every WHERE / ON conjunct: single-table predicates push
	// down, two-table equalities become join keys, the rest runs locally
	// after the joins.
	var conjuncts []sqlparse.Expr
	conjuncts = append(conjuncts, sqlparse.Conjuncts(sel.Where)...)
	for _, j := range sel.Joins {
		conjuncts = append(conjuncts, sqlparse.Conjuncts(j.Cond)...)
	}
	filters := make([][]sqlparse.Expr, len(p.Scans))
	var equis []*equiPred
	var residual []sqlparse.Expr
	// pushedNames collects unqualified column references inside pushed
	// per-table filters; if such a name exists in several tables, the
	// first-table-wins resolution is a silent guess, so the ambiguity
	// check below must vet it like a post-join reference.
	var pushedNames []string
	for _, c := range conjuncts {
		scans, err := p.scansOf(c)
		if err != nil {
			return nil, err
		}
		switch {
		case len(scans) == 1:
			for _, ref := range sqlparse.ColumnRefs(c) {
				if ref.Qualifier == "" {
					pushedNames = append(pushedNames, ref.Name)
				}
			}
			filters[scans[0]] = append(filters[scans[0]], sqlparse.StripQualifiers(c))
		case len(scans) == 2:
			if b, ok := c.(*sqlparse.Binary); ok && b.Op == sqlparse.OpEq {
				lc, lok := b.L.(*sqlparse.Column)
				rc, rok := b.R.(*sqlparse.Column)
				if lok && rok {
					// Join keys resolve at planning time, so an
					// unqualified key present in several tables is a
					// silent guess — reject it outright (the equated
					// exemption cannot apply to the predicate that would
					// define the equating).
					for _, kc := range []*sqlparse.Column{lc, rc} {
						if kc.Qualifier == "" && p.providerCount(kc.Name) > 1 {
							return nil, fmt.Errorf("engine: join key %q is ambiguous (several FROM tables provide it); qualify it with a table name or alias", kc.Name)
						}
					}
					la, _ := p.resolve(lc)
					ra, _ := p.resolve(rc)
					equis = append(equis, &equiPred{a: la, b: ra, ak: lc.Name, bk: rc.Name, expr: c})
					continue
				}
			}
			residual = append(residual, c)
		default:
			residual = append(residual, c)
		}
	}
	for i, sc := range p.Scans {
		sc.Filter = sqlparse.AndAll(filters[i])
	}

	// Projection pushdown: every column the query touches, mapped to its
	// table. A * in the select list keeps all columns everywhere.
	if err := p.computeProjections(); err != nil {
		return nil, err
	}

	// Statistics: pushed-down COUNT(*) probes (cached on the DB).
	probeStage := e.NextStage()
	for _, sc := range p.Scans {
		if err := e.tableStats(sc, probeStage); err != nil {
			return nil, err
		}
	}

	// Greedy left-deep join chain: each round joins in the connected table
	// with the smallest filtered cardinality, keeping intermediates small.
	joined := map[int]bool{0: true}
	prevRows := p.Scans[0].Stats.FilteredRows
	db := e.db
	// equated tracks which (table, column) pairs are made equal by a used
	// join predicate, so the ambiguity check can tell harmless duplicate
	// names (all copies provably equal) from dangerous ones.
	equated := newColEquiv()
	for len(joined) < len(p.Scans) {
		var eq *equiPred
		var joinedKey, newKey string
		newIdx := -1
		for _, q := range equis {
			if q.used {
				continue
			}
			var candIdx int
			var candJoinedKey, candNewKey string
			switch {
			case joined[q.a] && !joined[q.b]:
				candJoinedKey, candIdx, candNewKey = q.ak, q.b, q.bk
			case joined[q.b] && !joined[q.a]:
				candJoinedKey, candIdx, candNewKey = q.bk, q.a, q.ak
			default:
				continue
			}
			if eq == nil || p.Scans[candIdx].Stats.FilteredRows < p.Scans[newIdx].Stats.FilteredRows {
				eq, joinedKey, newIdx, newKey = q, candJoinedKey, candIdx, candNewKey
			}
		}
		if eq == nil {
			// An ambiguous unqualified reference may have mis-classified
			// the would-be join condition as a single-table filter; prefer
			// that diagnosis over a confusing cross-join error.
			if err := p.checkAmbiguousColumns(equated, pushedNames); err != nil {
				return nil, err
			}
			var missing []string
			for i, sc := range p.Scans {
				if !joined[i] {
					missing = append(missing, sc.Name())
				}
			}
			return nil, fmt.Errorf("engine: no equality predicate connects table(s) %s to the rest of the query (cross joins are not supported)",
				strings.Join(missing, ", "))
		}
		eq.used = true
		equated.union(colNode(eq.a, eq.ak), colNode(eq.b, eq.bk))
		newScan := p.Scans[newIdx]

		var step *JoinStep
		if len(joined) == 1 {
			// First join: two base tables (the joined set is still just
			// scan 0); the smaller filtered side builds, and the strategy
			// is BaselineJoin vs BloomJoin.
			const firstIdx = 0
			buildIdx, probeIdx := firstIdx, newIdx
			buildKey, probeKey := joinedKey, newKey
			if newScan.Stats.FilteredRows < p.Scans[firstIdx].Stats.FilteredRows {
				buildIdx, probeIdx = newIdx, firstIdx
				buildKey, probeKey = newKey, joinedKey
			}
			build, probe := p.Scans[buildIdx], p.Scans[probeIdx]
			matchFrac := build.Stats.Selectivity()
			ests := map[string]cloudsim.PlanEstimate{
				StrategyBaseline: cloudsim.EstimateBaselineJoin(db.Cfg, db.Sim, db.Pricing, build.Stats, probe.Stats),
				StrategyBloom:    cloudsim.EstimateBloomJoin(db.Cfg, db.Sim, db.Pricing, build.Stats, probe.Stats, matchFrac, planFPR),
			}
			strategy := StrategyBaseline
			if ests[StrategyBloom].Cheaper(ests[StrategyBaseline]) {
				strategy = StrategyBloom
			}
			step = &JoinStep{
				BuildName: build.Name(), ProbeName: probe.Name(),
				BuildKey: buildKey, ProbeKey: probeKey,
				Strategy: strategy, Estimates: ests,
				EstRows: int64(float64(probe.Stats.FilteredRows) * matchFrac),
				first:   true, buildIdx: buildIdx, probeIdx: probeIdx,
			}
			step.Reason = fmt.Sprintf(
				"build side %s keeps %d of %d rows (%.1f%%); %s estimated cheapest",
				build.Name(), build.Stats.FilteredRows, build.Stats.Rows,
				100*matchFrac, strategy)
		} else {
			// Later joins: the materialized intermediate builds; the
			// strategy is a plain filtered scan vs a Bloom probe vs — when
			// a live index matches the pushed filter — an IndexScan of the
			// probe side.
			matchFrac := 1.0
			if newScan.Stats.Rows > 0 && prevRows < newScan.Stats.Rows {
				matchFrac = float64(prevRows) / float64(newScan.Stats.Rows)
			}
			ests := map[string]cloudsim.PlanEstimate{
				StrategyFiltered: cloudsim.EstimateScanJoin(db.Cfg, db.Sim, db.Pricing, prevRows, newScan.Stats),
				StrategyBloom:    cloudsim.EstimateBloomProbe(db.Cfg, db.Sim, db.Pricing, prevRows, newScan.Stats, matchFrac, planFPR),
			}
			if newScan.Index != nil {
				ests[StrategyIndexScan] = cloudsim.EstimateIndexScanJoin(
					db.Cfg, db.Sim, db.Pricing, prevRows, newScan.Stats, indexScanStats(newScan.Index))
			}
			strategy := StrategyFiltered
			for _, s := range []string{StrategyBloom, StrategyIndexScan} {
				if est, ok := ests[s]; ok && est.Cheaper(ests[strategy]) {
					strategy = s
				}
			}
			step = &JoinStep{
				BuildName: "(intermediate)", ProbeName: newScan.Name(),
				BuildKey: joinedKey, ProbeKey: newKey,
				Strategy: strategy, Estimates: ests,
				EstRows: int64(float64(newScan.Stats.FilteredRows) * matchFrac),
				scan:    newIdx,
			}
			step.Reason = fmt.Sprintf(
				"intermediate has ~%d rows vs %d filtered %s rows; %s estimated cheapest",
				prevRows, newScan.Stats.FilteredRows, newScan.Name(), strategy)
			if strategy == StrategyIndexScan {
				step.Reason += fmt.Sprintf(" (index on %s, ~%d matching rows)",
					newScan.Index.Entry.Column, newScan.Index.MatchedRows)
			}
		}
		p.Steps = append(p.Steps, step)
		prevRows = step.EstRows
		joined[newIdx] = true
	}

	// Equality predicates between already-joined tables (e.g. a second
	// equi-condition over the same pair) are applied locally.
	for _, q := range equis {
		if !q.used {
			residual = append(residual, q.expr)
		}
	}
	p.Residual = sqlparse.AndAll(residual)

	if err := p.checkAmbiguousColumns(equated, pushedNames); err != nil {
		return nil, err
	}
	return p, nil
}

// colEquiv is a union-find over (scan, column) nodes: two nodes in one
// class are provably equal in every join-result row because a chain of
// used equi-join predicates connects them.
type colEquiv struct{ parent map[string]string }

func newColEquiv() *colEquiv { return &colEquiv{parent: map[string]string{}} }

func colNode(scan int, name string) string {
	return fmt.Sprintf("%d:%s", scan, strings.ToLower(name))
}

func (u *colEquiv) find(x string) string {
	p, ok := u.parent[x]
	if !ok || p == x {
		return x
	}
	root := u.find(p)
	u.parent[x] = root
	return root
}

func (u *colEquiv) union(a, b string) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

// checkAmbiguousColumns rejects queries that resolve a column name
// provided by more than one joined table: the join result concatenates
// bare column names (qualifiers are not preserved), so such a reference —
// or a later-step join key looked up on the intermediate relation — would
// silently bind to whichever copy comes first. The exemption: when every
// table's copy of the name is connected by used equi-join predicates, all
// copies are equal and any binding is correct. Providers are judged on
// full table headers, not pushed projections, because the baseline join
// (including runtime fallbacks to it) materializes every column.
func (p *QueryPlan) checkAmbiguousColumns(equated *colEquiv, pushedNames []string) error {
	names := append([]string{}, pushedNames...)
	add := func(n string) { names = append(names, n) }
	for _, it := range p.Sel.Items {
		if _, ok := it.Expr.(*sqlparse.Star); ok {
			continue // * prints every copy; no name resolution happens
		}
		for _, c := range sqlparse.ColumnRefs(it.Expr) {
			add(c.Name)
		}
	}
	for _, g := range p.Sel.GroupBy {
		for _, c := range sqlparse.ColumnRefs(g) {
			add(c.Name)
		}
	}
	for _, o := range p.Sel.OrderBy {
		for _, c := range sqlparse.ColumnRefs(o.Expr) {
			if _, err := p.resolve(c); err == nil { // aliases are fine
				add(c.Name)
			}
		}
	}
	if p.Residual != nil {
		for _, c := range sqlparse.ColumnRefs(p.Residual) {
			add(c.Name)
		}
	}
	// Later-step build keys are looked up by bare name on the materialized
	// intermediate, so they resolve post-join exactly like query exprs.
	for _, st := range p.Steps {
		if !st.first {
			add(st.BuildKey)
		}
	}
	checked := map[string]bool{}
	for _, n := range names {
		k := strings.ToLower(n)
		if checked[k] {
			continue
		}
		checked[k] = true
		var provs []int
		for i, sc := range p.Scans {
			if colIndex(sc.Cols, n) >= 0 {
				provs = append(provs, i)
			}
		}
		if len(provs) < 2 {
			continue
		}
		root := equated.find(colNode(provs[0], n))
		for _, i := range provs[1:] {
			if equated.find(colNode(i, n)) != root {
				return fmt.Errorf("engine: column %q is ambiguous after the join (several FROM tables provide it and qualifiers are not preserved in the join result); join on it or give the tables distinct column names", n)
			}
		}
	}
	return nil
}

// computeProjections fills each scan's Project with the columns the query
// references from that table.
func (p *QueryPlan) computeProjections() error {
	var refs []*sqlparse.Column
	needAll := false
	for _, it := range p.Sel.Items {
		if _, ok := it.Expr.(*sqlparse.Star); ok {
			needAll = true
			continue
		}
		refs = append(refs, sqlparse.ColumnRefs(it.Expr)...)
	}
	if p.Sel.Where != nil {
		refs = append(refs, sqlparse.ColumnRefs(p.Sel.Where)...)
	}
	for _, g := range p.Sel.GroupBy {
		refs = append(refs, sqlparse.ColumnRefs(g)...)
	}
	for _, j := range p.Sel.Joins {
		if j.Cond != nil {
			refs = append(refs, sqlparse.ColumnRefs(j.Cond)...)
		}
	}
	if needAll {
		return nil // Project stays nil everywhere: keep all columns
	}
	// ORDER BY may reference select-list aliases, which are not table
	// columns; skip references that do not resolve.
	for _, o := range p.Sel.OrderBy {
		for _, c := range sqlparse.ColumnRefs(o.Expr) {
			if _, err := p.resolve(c); err == nil {
				refs = append(refs, c)
			}
		}
	}
	seen := make([]map[string]bool, len(p.Scans))
	for i := range seen {
		seen[i] = map[string]bool{}
	}
	for _, c := range refs {
		i, err := p.resolve(c)
		if err != nil {
			return err
		}
		key := strings.ToLower(c.Name)
		if !seen[i][key] {
			seen[i][key] = true
			p.Scans[i].Project = append(p.Scans[i].Project, c.Name)
		}
	}
	return nil
}

// cachedStats is the DB stats-cache entry: the raw probe output plus the
// row count matching the scan's indexable predicate (0-probe fields like
// FilterNodes, ProjCols, Profile and CachedFrac are recomputed per plan —
// they depend on the query's projection, the backend's current
// self-description and the result cache's contents, not on the probe).
type cachedStats struct {
	stats      cloudsim.PlanTableStats
	idxMatched int64
}

// tableStats fills sc.Stats (and sc.Index) from the DB's stats cache or,
// on a miss, a pushed-down probe: COUNT(*) plus SUM(CASE ...) counts for
// the pushed filter and the indexable predicate, all evaluated
// storage-side in a single scan. The table's backend profile is stamped
// onto the stats so every strategy estimate prices the scan at that
// backend's bandwidth, latency and rates.
func (e *Exec) tableStats(sc *TableScan, stage int) error {
	filter := exprStr(sc.Filter)
	backendName, backend := e.db.BackendFor(sc.Table)
	sc.Backend = backendName
	sc.Index = e.db.indexCandidate(e.ctx, sc.Table, sc.Filter)
	st, idxMatched, cached, err := e.probeStats(sc.Table, filter, indexProbePred(sc.Index), stage)
	if err != nil {
		return err
	}
	if sc.Index != nil {
		sc.Index.MatchedRows = idxMatched
	}
	st.Cols = len(sc.Cols)
	st.FilterNodes = scanFilterNodes(sc.Project, filter)
	st.ProjCols = len(sc.Project)
	st.Profile = backend.Profile()
	st.CachedFrac = e.cachedScanFrac(sc.Table, projectionSQL(sc.Project, filter))
	sc.Stats, sc.CachedStats = st, cached
	return nil
}

// scanFilterNodes counts the per-row expression work of the scan SQL that
// execution will push for this table — select list included, matching
// what selectengine.CountNodes meters for the same request at run time.
func scanFilterNodes(project []string, filter string) int64 {
	sel, err := sqlparse.Parse(projectionSQL(project, filter))
	if err != nil {
		return 0
	}
	return selectengine.CountNodes(sel)
}

// runPlan executes a planned multi-table select, recording each step's
// actual cardinality and cost deltas for EXPLAIN ANALYZE.
func (e *Exec) runPlan(p *QueryPlan) (*Relation, error) {
	var cur *Relation
	var err error
	for i, st := range p.Steps {
		t0 := e.Metrics.RuntimeSeconds()
		c0 := e.Cost().Total()
		_, _, ret0, get0 := e.Metrics.Totals()
		sp := e.beginSpan(fmt.Sprintf("join %d", i+1))
		sp.SetStr("strategy", st.Strategy)
		prev := e.setSpanParent(sp)
		if st.first {
			cur, err = e.runFirstJoin(p, st)
		} else {
			cur, err = e.runChainJoin(p, st, cur)
		}
		e.restoreSpanParent(prev)
		if err != nil {
			endSpanErr(sp, err)
			return nil, err
		}
		st.ActualRows = int64(len(cur.Rows))
		st.ActualSec = e.Metrics.RuntimeSeconds() - t0
		st.ActualUSD = e.Cost().Total() - c0
		_, _, ret1, get1 := e.Metrics.Totals()
		st.ActualBytes = (ret1 + get1) - (ret0 + get0)
		sp.SetInt("rows", st.ActualRows)
		sp.SetFloat("sim_sec", st.ActualSec)
		sp.SetFloat("cost_usd", st.ActualUSD)
		sp.End()
	}
	if p.Residual != nil {
		cur, err = e.filterLocal(cur, p.Residual.String(), e.workers())
		if err != nil {
			return nil, err
		}
	}
	return e.finishLocal(cur, p.Sel)
}

// runFirstJoin executes the first step (two base tables) with the chosen
// JoinSpec operator. A Bloom plan over non-integer keys falls back to the
// baseline join at run time (the probe cannot be built).
func (e *Exec) runFirstJoin(p *QueryPlan, st *JoinStep) (*Relation, error) {
	build, probe := p.Scans[st.buildIdx], p.Scans[st.probeIdx]
	js := JoinSpec{
		LeftTable: build.Table, RightTable: probe.Table,
		LeftKey: st.BuildKey, RightKey: st.ProbeKey,
		LeftFilter: exprStr(build.Filter), RightFilter: exprStr(probe.Filter),
		LeftProject: build.Project, RightProject: probe.Project,
		TargetFPR: planFPR, Seed: planSeed,
	}
	if st.Strategy == StrategyBloom {
		rel, err := e.BloomJoin(js)
		if err == nil || !errors.Is(err, ErrNonIntegerJoinKey) {
			return rel, err
		}
		st.Strategy = StrategyBaseline
		st.Reason += "; fell back to baseline: Bloom filters need integer join keys"
	}
	return e.BaselineJoin(js)
}

// runChainJoin joins the materialized intermediate relation with the
// step's base table.
func (e *Exec) runChainJoin(p *QueryPlan, st *JoinStep, cur *Relation) (*Relation, error) {
	sc := p.Scans[st.scan]
	var right *Relation
	var joinStage int
	var err error
	if st.Strategy == StrategyIndexScan {
		// Probe side through the secondary index: fetch the candidate byte
		// ranges, re-apply the full pushed filter locally, project to what
		// the query needs.
		var gets int64
		right, gets, joinStage, err = e.indexFetch(sc.Table, sc.Index)
		if err != nil {
			return nil, err
		}
		st.RangedGets = gets
		right, err = e.filterLocal(right, exprStr(sc.Filter), e.workers())
		if err != nil {
			return nil, err
		}
		if len(sc.Project) > 0 {
			right, err = e.projectLocal(right, strings.Join(sc.Project, ", "), e.workers())
			if err != nil {
				return nil, err
			}
		}
	}
	if st.Strategy == StrategyBloom {
		// Building the Bloom filter walks every intermediate row; meter
		// it to match cloudsim.EstimateBloomProbe's build charge.
		bsp := e.beginSpan("bloom build intermediate")
		bsp.SetInt("rows_in", int64(len(cur.Rows)))
		bsp.End()
		e.Metrics.Phase("bloom build intermediate", e.NextStage()).
			AddServerRows(int64(len(cur.Rows)))
		right, joinStage, err = e.BloomProbe(cur, st.BuildKey, sc.Table, st.ProbeKey,
			exprStr(sc.Filter), sc.Project, planFPR, false, planSeed)
		if err != nil && errors.Is(err, ErrNonIntegerJoinKey) {
			st.Strategy = StrategyFiltered
			st.Reason += "; fell back to filtered: Bloom filters need integer join keys"
			err = nil
			right = nil
		} else if err != nil {
			return nil, err
		}
	}
	if right == nil {
		joinStage = e.NextStage()
		right, err = e.SelectRows("filtered scan "+sc.Table, joinStage, sc.Table,
			projectionSQL(sc.Project, exprStr(sc.Filter)))
		if err != nil {
			return nil, err
		}
	}
	// The hash join overlaps the scan that produced its probe side; using
	// that scan's own stage keeps attribution correct under concurrency.
	sp := e.opSpan("hash join", len(cur.Rows)+len(right.Rows))
	phase := e.Metrics.Phase("hash join", joinStage)
	phase.AddServerRows(int64(len(cur.Rows)) + int64(len(right.Rows)))
	out, err := e.hashJoinLocal(cur, right, st.BuildKey, st.ProbeKey, e.workers())
	endOpSpan(sp, out, err)
	return out, err
}

// String renders the plan as a readable tree (cmd/pushdownsql -explain).
func (p *QueryPlan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "join plan (%d tables)\n", len(p.Scans))
	for _, sc := range p.Scans {
		fmt.Fprintf(&b, "  scan %s: S3 Select: %s", sc.Name(),
			projectionSQL(sc.Project, exprStr(sc.Filter)))
		cached := ""
		if sc.CachedStats {
			cached = ", cached stats"
		}
		if sc.Stats.CachedFrac > 0 {
			cached += fmt.Sprintf(", cached scan %.0f%%", 100*sc.Stats.CachedFrac)
		}
		backend := ""
		if sc.Backend != "" {
			backend = ", on " + sc.Backend
		}
		fmt.Fprintf(&b, "  [%d rows, %d after filter%s%s]\n",
			sc.Stats.Rows, sc.Stats.FilteredRows, cached, backend)
		if sc.Index != nil {
			fmt.Fprintf(&b, "    index on %s: ~%d rows match %s\n",
				sc.Index.Entry.Column, sc.Index.MatchedRows, sc.Index.Pred.String())
		}
	}
	for i, st := range p.Steps {
		fmt.Fprintf(&b, "  join %d: %s.%s = %s.%s  (~%d rows)\n",
			i+1, st.BuildName, st.BuildKey, st.ProbeName, st.ProbeKey, st.EstRows)
		fmt.Fprintf(&b, "    strategy: %s — %s\n", st.Strategy, st.Reason)
		names := make([]string, 0, len(st.Estimates))
		for name := range st.Estimates {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			est := st.Estimates[name]
			fmt.Fprintf(&b, "    est %-8s %8.3fs  $%.6f\n", name+":", est.Seconds, est.USD)
		}
	}
	if p.Residual != nil {
		fmt.Fprintf(&b, "  server: filter %s\n", p.Residual.String())
	}
	sel := p.Sel
	if len(sel.GroupBy) > 0 {
		fmt.Fprintf(&b, "  server: GROUP BY %s\n", renderExprs(sel.GroupBy))
	} else if sel.HasAggregates() {
		fmt.Fprintf(&b, "  server: aggregate\n")
	}
	if len(sel.OrderBy) > 0 {
		fmt.Fprintf(&b, "  server: ORDER BY\n")
	}
	if sel.Limit >= 0 {
		fmt.Fprintf(&b, "  server: LIMIT %d\n", sel.Limit)
	}
	return b.String()
}
