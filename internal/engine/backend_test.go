package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pushdowndb/internal/cloudsim"
	"pushdowndb/internal/s3api"
	"pushdowndb/internal/selectengine"
	"pushdowndb/internal/store"
)

// --- forEachPart: stop-on-error and context cancellation (satellite) ---

// gatedBackend wraps a backend so Get calls can be counted and stalled
// until their context dies.
type gatedBackend struct {
	s3api.Backend
	gets    int32
	stall   bool  // block Gets until ctx is done
	failGet int32 // 1-indexed call number to fail on (0 = never)
}

func (g *gatedBackend) Get(ctx context.Context, bucket, key string) ([]byte, error) {
	n := atomic.AddInt32(&g.gets, 1)
	if g.failGet > 0 && n >= g.failGet {
		return nil, fmt.Errorf("injected get failure #%d on %s", n, key)
	}
	if g.stall {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return g.Backend.Get(ctx, bucket, key)
}

// manyPartsDB builds a small table split into many partitions behind the
// gated backend.
func manyPartsDB(t *testing.T, g *gatedBackend, parts int) *DB {
	t.Helper()
	st := store.New()
	var rows [][]string
	for i := 0; i < parts*4; i++ {
		rows = append(rows, []string{fmt.Sprint(i)})
	}
	if err := PartitionTable(context.Background(), st, testBucket, "wide", []string{"x"}, rows, parts); err != nil {
		t.Fatal(err)
	}
	g.Backend = s3api.NewInProc(st)
	db, err := Open(testBucket, WithBackend("gated", g), WithMaxScanParallel(1))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestForEachPartStopsLaunchingAfterError: with serial fan-out, a failure
// on the first partition must stop the remaining partitions from being
// fetched at all (the seed ran every partition to completion).
func TestForEachPartStopsLaunchingAfterError(t *testing.T) {
	g := &gatedBackend{failGet: 1}
	db := manyPartsDB(t, g, 16)
	e := db.NewExec()
	_, err := e.LoadTable("load", e.NextStage(), "wide")
	if err == nil || !strings.Contains(err.Error(), "injected get failure") {
		t.Fatalf("err = %v", err)
	}
	// The failing call plus at most one already-admitted launch.
	if n := atomic.LoadInt32(&g.gets); n > 2 {
		t.Errorf("%d partition GETs ran after the first failure; the fan-out must stop", n)
	}
}

// TestCanceledContextAbortsScan: canceling the query context mid-scan must
// abort a multi-partition load promptly, with the cancellation visible in
// the returned error.
func TestCanceledContextAbortsScan(t *testing.T) {
	g := &gatedBackend{stall: true}
	db := manyPartsDB(t, g, 16)
	ctx, cancel := context.WithCancel(context.Background())
	e := db.NewExecContext(ctx)

	done := make(chan error, 1)
	go func() {
		_, err := e.LoadTable("load", e.NextStage(), "wide")
		done <- err
	}()
	// Let the first (stalled) partition start, then cancel.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil || !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled scan did not return promptly")
	}
	if n := atomic.LoadInt32(&g.gets); n >= 16 {
		t.Errorf("all %d partitions were fetched despite cancellation", n)
	}
}

// TestQueryContextCancellation: the public QueryContext surface honours
// cancellation too.
func TestQueryContextCancellation(t *testing.T) {
	db, _ := newTestDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := db.QueryContext(ctx, "SELECT COUNT(*) AS n FROM events")
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// --- TableHeader growth past the fixed probe (satellite) ---

func TestTableHeaderWiderThanProbe(t *testing.T) {
	st := store.New()
	// A header row far wider than the 4096-byte probe.
	var cols []string
	for i := 0; i < 600; i++ {
		cols = append(cols, fmt.Sprintf("very_long_column_name_number_%04d", i))
	}
	rows := [][]string{make([]string, len(cols))}
	for i := range cols {
		rows[0][i] = fmt.Sprint(i)
	}
	if err := PartitionTable(context.Background(), st, testBucket, "widehdr", cols, rows, 1); err != nil {
		t.Fatal(err)
	}
	db := openTestDB(t, st)
	e := db.NewExec()
	got, err := e.TableHeader("hdr", e.NextStage(), "widehdr")
	if err != nil {
		t.Fatalf("wide header: %v", err)
	}
	if len(got) != len(cols) || got[0] != cols[0] || got[len(got)-1] != cols[len(cols)-1] {
		t.Fatalf("header = %d cols, want %d", len(got), len(cols))
	}
	// And the whole query path over it still works.
	rel, _, err := db.Query("SELECT " + cols[599] + " FROM widehdr")
	if err != nil || len(rel.Rows) != 1 {
		t.Fatalf("query over wide-header table: %v %v", rel, err)
	}
}

func TestTableHeaderHeaderOnlyObjectNoNewline(t *testing.T) {
	st := store.New()
	// A single partition holding just a header line with no trailing \n.
	st.Put(testBucket, "bare/part0000.csv", []byte("a,b,c"))
	db := openTestDB(t, st)
	e := db.NewExec()
	got, err := e.TableHeader("hdr", e.NextStage(), "bare")
	if err != nil || len(got) != 3 || got[2] != "c" {
		t.Fatalf("header = %v, %v", got, err)
	}
}

// --- multi-backend DB: catalog, options, cross-backend joins ---

func TestOpenValidation(t *testing.T) {
	st := store.New()
	if _, err := Open("b"); err == nil {
		t.Error("Open without backends must fail")
	}
	if _, err := Open("b",
		WithBackend("a", s3api.NewInProc(st)),
		WithDefaultBackend("nope")); err == nil {
		t.Error("unknown default backend must fail")
	}
	if _, err := Open("b",
		WithBackend("a", s3api.NewInProc(st)),
		WithTableBackend("t", "nope")); err == nil {
		t.Error("catalog referencing an unknown backend must fail")
	}
	if _, err := Open("b",
		WithBackend("a", s3api.NewInProc(st)),
		WithBackend("a", s3api.NewInProc(st))); err == nil {
		t.Error("duplicate backend name must fail")
	}
}

// TestCrossBackendJoin loads the two join tables on two different
// backends and checks the planned SQL join still matches the single-
// backend answer.
func TestCrossBackendJoin(t *testing.T) {
	st := newTestStore(t) // cust + ords together (reference)
	ref := openTestDB(t, st)
	want, _, err := ref.Query(
		"SELECT COUNT(*) AS n, SUM(o.price) AS total FROM cust c JOIN ords o ON c.ck = o.ck WHERE c.bal <= -500")
	if err != nil {
		t.Fatal(err)
	}

	// Split: cust stays on the first store, ords moves to a second one.
	st2 := store.New()
	for _, key := range st.TableParts(testBucket, "ords") {
		data, err := st.Get(testBucket, key)
		if err != nil {
			t.Fatal(err)
		}
		st2.Put(testBucket, key, data)
		st.Delete(testBucket, key)
	}
	db, err := Open(testBucket,
		WithBackend("first", s3api.NewInProc(st)),
		WithBackend("second", s3api.NewInProc(st2)),
		WithTableBackend("ords", "second"))
	if err != nil {
		t.Fatal(err)
	}
	got, e, err := db.Query(
		"SELECT COUNT(*) AS n, SUM(o.price) AS total FROM cust c JOIN ords o ON c.ck = o.ck WHERE c.bal <= -500")
	if err != nil {
		t.Fatal(err)
	}
	assertSameAgg(t, got, want)
	// The plan records which backend each scan ran against.
	plan := e.QueryPlan()
	backends := map[string]string{}
	for _, sc := range plan.Scans {
		backends[sc.Table] = sc.Backend
	}
	if backends["cust"] != "first" || backends["ords"] != "second" {
		t.Errorf("scan backends = %v", backends)
	}
}

// --- per-backend planner pricing (tentpole acceptance) ---

// wanProfile models a congested thin-WAN remote object store: 2 MB/s to
// the compute node, 50 ms round trips, egress billed per GB.
func wanProfile() cloudsim.Profile {
	return cloudsim.Profile{
		Name:               "thin-wan",
		NetworkBytesPerSec: 2e6,
		RequestRTTSec:      0.05,
		RequestPer1000:     0.0004,
		ScanPerGB:          0.002,
		ReturnPerGB:        0.0007,
		TransferPerGB:      0.09,
	}
}

// TestPlannerBackendProfileFlipsStrategy: the same join over the same data
// must pick different strategies on a fast in-region backend vs a slow
// metered remote one — the planner prices per backend now. At this scale
// the baseline join's full-table GETs are cheap over the in-region link
// but dominate runtime and egress dollars over the thin WAN, where
// shrinking the transfer with the Bloom pushdown pays for its extra stage.
func TestPlannerBackendProfileFlipsStrategy(t *testing.T) {
	sql := "SELECT SUM(o.price) AS total FROM cust c JOIN ords o ON c.ck = o.ck WHERE c.bal <= -500"

	strategyOn := func(profile cloudsim.Profile) string {
		t.Helper()
		st := newTestStore(t)
		db := openTestDB(t, st, s3api.WithProfile(profile))
		db.Sim = cloudsim.Scale{DataRatio: 80, PartRatio: 4}
		plan, _, err := db.Plan(sql)
		if err != nil {
			t.Fatal(err)
		}
		if plan == nil || len(plan.Steps) != 1 {
			t.Fatalf("plan = %+v", plan)
		}
		return plan.Steps[0].Strategy
	}

	fast := strategyOn(cloudsim.S3Profile())
	slow := strategyOn(wanProfile())
	if fast == slow {
		t.Fatalf("strategy %q chosen for both the in-region and the thin-WAN profile; the planner must react to the backend", fast)
	}
	if fast != StrategyBaseline {
		t.Errorf("fast in-region backend chose %q, expected the baseline full-load join", fast)
	}
	if slow != StrategyBloom {
		t.Errorf("slow remote backend chose %q, expected the Bloom pushdown join", slow)
	}
}

// TestCostUsesBackendRates: the same bytes cost different dollars on
// different backends (free local vs metered cross-region egress).
func TestCostUsesBackendRates(t *testing.T) {
	run := func(profile cloudsim.Profile) cloudsim.CostBreakdown {
		t.Helper()
		st := newTestStore(t)
		db := openTestDB(t, st, s3api.WithProfile(profile))
		e := db.NewExec()
		if _, err := e.ServerSideFilter("events", "v < 0", ""); err != nil {
			t.Fatal(err)
		}
		return e.Cost()
	}
	local := run(cloudsim.LocalFSProfile())
	remote := run(cloudsim.CrossRegionS3Profile())
	if local.RequestUSD != 0 || local.TransferUSD != 0 || local.ScanUSD != 0 {
		t.Errorf("local backend should bill nothing for storage: %+v", local)
	}
	if remote.TransferUSD <= 0 {
		t.Errorf("cross-region GETs should bill egress: %+v", remote)
	}
	if remote.RequestUSD <= 0 {
		t.Errorf("cross-region requests should bill: %+v", remote)
	}
}

// TestSelectCapabilitiesComeFromBackend: the engine asks the backend for
// its capability set instead of a DB-level flag.
func TestSelectCapabilitiesComeFromBackend(t *testing.T) {
	st := newTestStore(t)
	plain := openTestDB(t, st)
	// Without the capability, the partial group-by path must be rejected.
	_, err := plain.NewExec().HybridGroupBy("events", "g", groupAggs(),
		HybridGroupByOptions{S3Groups: 3, SampleFraction: 0.05, UsePartialGroupBy: true})
	if err == nil {
		t.Fatal("partial group-by without the backend capability should fail")
	}
	enabled := openTestDB(t, st, s3api.WithCapabilities(
		selectengine.Capabilities{AllowGroupBy: true}))
	if _, err := enabled.NewExec().HybridGroupBy("events", "g", groupAggs(),
		HybridGroupByOptions{S3Groups: 3, SampleFraction: 0.05, UsePartialGroupBy: true}); err != nil {
		t.Fatalf("capability-advertising backend: %v", err)
	}
}
